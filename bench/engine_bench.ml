(* End-to-end timing of the evaluation backends against each other on the
   searches they were built for: naive per-candidate evaluation, the
   incremental engine, and the flat (bigarray) kernel. Writes the measured
   speedups to BENCH_engine.json (consumed by EXPERIMENTS.md) and prints a
   human-readable table.

   Run with: FIG=engine dune exec bench/main.exe *)

open Wfc_core
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model

let model = FM.make ~lambda:1e-3 ()

let instance family n =
  let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n ~seed:7) in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  (g, order)

(* median-of-repeats wall time of one thunk, seconds. The major heap is
   drained before each sample so the measurement only carries the thunk's own
   GC work, not slices inherited from whatever ran before — the short
   engine/flat samples are otherwise dominated by leftover collection debt. *)
let time ?(repeats = 5) f =
  let samples =
    List.init repeats (fun _ ->
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        Unix.gettimeofday () -. t0)
  in
  List.nth (List.sort compare samples) (repeats / 2)

(* naive_s and engine_s are optional: the large exact instance is only
   tractable for the flat branch-and-bound. *)
type row = {
  name : string;
  naive_s : float option;
  engine_s : float option;
  flat_s : float;
  detail : string;
}

let ratio num den = Option.map (fun n -> n /. den) num
let flat_vs_naive r = ratio r.naive_s r.flat_s
let flat_vs_engine r = ratio r.engine_s r.flat_s

let bench_local_search () =
  let g, order = instance P.Ligo 200 in
  let flags =
    Heuristics.checkpoint_flags Heuristics.Ckpt_weight g ~order ~n_ckpt:50
  in
  let seed = Schedule.make g ~order ~checkpointed:flags in
  let run backend () = Local_search.improve ~backend model g seed in
  let naive = run Eval_engine.Naive () in
  let engine = run Eval_engine.Incremental () in
  let flat = run Eval_engine.Flat () in
  assert (naive.Local_search.makespan = engine.Local_search.makespan);
  assert (naive.Local_search.makespan = flat.Local_search.makespan);
  {
    name = "local-search/Ligo/n=200";
    naive_s = Some (time ~repeats:3 (run Eval_engine.Naive));
    engine_s = Some (time ~repeats:3 (run Eval_engine.Incremental));
    flat_s = time ~repeats:3 (run Eval_engine.Flat);
    detail =
      Printf.sprintf "%d evaluations, %d flips" naive.Local_search.evaluations
        naive.Local_search.flips;
  }

let bench_ckptw_sweep () =
  let g, order = instance P.Ligo 200 in
  ignore order;
  let run backend () =
    Heuristics.run ~search:Heuristics.Exhaustive ~backend model g
      ~lin:Wfc_dag.Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight
  in
  let naive = run Eval_engine.Naive () in
  let engine = run Eval_engine.Incremental () in
  let flat = run Eval_engine.Flat () in
  assert (naive.Heuristics.makespan = engine.Heuristics.makespan);
  assert (naive.Heuristics.makespan = flat.Heuristics.makespan);
  {
    name = "ckptw-exhaustive/Ligo/n=200";
    naive_s = Some (time ~repeats:3 (run Eval_engine.Naive));
    engine_s = Some (time ~repeats:3 (run Eval_engine.Incremental));
    flat_s = time ~repeats:3 (run Eval_engine.Flat);
    detail = Printf.sprintf "%d candidates" naive.Heuristics.evaluations;
  }

(* node-for-node identical search: the flat backend is configured for strict
   parity (one domain, no dominance, no memo) so the ratio isolates the kernel
   speed rather than pruning power *)
let bench_exact_audit () =
  let g, order = instance P.Genome 20 in
  let run backend () =
    Exact_solver.optimal_checkpoints_within ~backend ~max_nodes:200_000 model g
      ~order
  in
  let run_flat () =
    Exact_solver.optimal_checkpoints_within ~backend:Eval_engine.Flat
      ~domains:1 ~dominance:false ~memo:false ~max_nodes:200_000 model g ~order
  in
  let naive, _ = run Eval_engine.Naive () in
  let engine, _ = run Eval_engine.Incremental () in
  let flat, _ = run_flat () in
  assert (naive.Exact_solver.makespan = engine.Exact_solver.makespan);
  assert (naive.Exact_solver.nodes = engine.Exact_solver.nodes);
  assert (naive.Exact_solver.makespan = flat.Exact_solver.makespan);
  assert (naive.Exact_solver.nodes = flat.Exact_solver.nodes);
  {
    name = "exact-bnb/Genome/n=20";
    naive_s = Some (time ~repeats:3 (run Eval_engine.Naive));
    engine_s = Some (time ~repeats:3 (run Eval_engine.Incremental));
    flat_s = time ~repeats:3 run_flat;
    detail = Printf.sprintf "%d nodes, parity config" naive.Exact_solver.nodes;
  }

(* the full flat branch and bound (dominance + memo + parallel subtrees) on an
   instance far out of reach of the sequential search *)
let bench_exact_large () =
  let g, order = instance P.Ligo 30 in
  let domains = 4 in
  let run () =
    Exact_solver.optimal_checkpoints_within ~backend:Eval_engine.Flat ~domains
      ~max_nodes:50_000_000 model g ~order
  in
  let result, status = run () in
  assert (status = `Optimal);
  {
    name = "exact-bnb-pruned/Ligo/n=30";
    naive_s = None;
    engine_s = None;
    flat_s = time ~repeats:3 run;
    detail =
      Printf.sprintf "%d nodes, dominance+memo, %d domains"
        result.Exact_solver.nodes domains;
  }

let bench_single_flip () =
  let g, order = instance P.Ligo 200 in
  let n = Array.length order in
  let engine = Eval_engine.create model g ~order in
  ignore (Eval_engine.makespan engine);
  let feng = Flat_engine.create model g ~order in
  ignore (Flat_engine.makespan feng);
  let flags = Array.make n false in
  let i = ref 0 in
  let flips = 1000 in
  let engine_s =
    time ~repeats:3 (fun () ->
        for _ = 1 to flips do
          ignore (Eval_engine.flip engine (!i mod n));
          incr i
        done)
    /. float_of_int flips
  in
  let k = ref 0 in
  let flat_s =
    time ~repeats:3 (fun () ->
        for _ = 1 to flips do
          ignore (Flat_engine.flip feng (!k mod n));
          incr k
        done)
    /. float_of_int flips
  in
  let j = ref 0 in
  let naive_s =
    time ~repeats:3 (fun () ->
        for _ = 1 to 20 do
          flags.(!j mod n) <- not flags.(!j mod n);
          incr j;
          ignore
            (Evaluator.expected_makespan model g
               (Schedule.make g ~order ~checkpointed:flags))
        done)
    /. 20.
  in
  {
    name = "single-flip/Ligo/n=200";
    naive_s = Some naive_s;
    engine_s = Some engine_s;
    flat_s;
    detail = "per-flip cost vs one full evaluation";
  }

let json_of_rows rows =
  let opt_num = function
    | Some x -> Wfc_io.Json.Number x
    | None -> Wfc_io.Json.Null
  in
  Wfc_io.Json.Assoc
    [
      ("benchmark", Wfc_io.Json.String "eval_engine");
      ("model", Wfc_io.Json.String "lambda=1e-3, downtime=0, cost=0.1w");
      ( "results",
        Wfc_io.Json.List
          (List.map
             (fun r ->
               Wfc_io.Json.Assoc
                 [
                   ("name", Wfc_io.Json.String r.name);
                   ("naive_seconds", opt_num r.naive_s);
                   ("engine_seconds", opt_num r.engine_s);
                   ("flat_seconds", Wfc_io.Json.Number r.flat_s);
                   ("flat_vs_naive", opt_num (flat_vs_naive r));
                   ("flat_vs_engine", opt_num (flat_vs_engine r));
                   ("detail", Wfc_io.Json.String r.detail);
                 ])
             rows) );
    ]

let run () =
  print_endline "== evaluation backends: naive vs incremental vs flat ==";
  let rows =
    [
      bench_single_flip (); bench_ckptw_sweep (); bench_local_search ();
      bench_exact_audit (); bench_exact_large ();
    ]
  in
  let fmt_opt = function
    | Some s -> Printf.sprintf "%.2f ms" (s *. 1e3)
    | None -> "-"
  in
  let fmt_ratio = function
    | Some x -> Printf.sprintf "%.1fx" x
    | None -> "-"
  in
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "benchmark"; "naive"; "engine"; "flat"; "vs naive"; "vs engine";
          "detail" ]
  in
  List.iter
    (fun r ->
      Wfc_reporting.Table.add_row table
        [
          r.name;
          fmt_opt r.naive_s;
          fmt_opt r.engine_s;
          fmt_opt (Some r.flat_s);
          fmt_ratio (flat_vs_naive r);
          fmt_ratio (flat_vs_engine r);
          r.detail;
        ])
    rows;
  Wfc_reporting.Table.print table;
  let path = "BENCH_engine.json" in
  let oc = open_out path in
  output_string oc (Wfc_io.Json.to_string (json_of_rows rows));
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" path
