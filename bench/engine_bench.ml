(* End-to-end timing of the incremental evaluation engine against the naive
   per-candidate evaluation, on the searches the engine was built for. Writes
   the measured speedups to BENCH_engine.json (consumed by EXPERIMENTS.md)
   and prints a human-readable table.

   Run with: FIG=engine dune exec bench/main.exe *)

open Wfc_core
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model

let model = FM.make ~lambda:1e-3 ()

let instance family n =
  let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n ~seed:7) in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  (g, order)

(* median-of-repeats wall time of one thunk, seconds *)
let time ?(repeats = 5) f =
  let samples =
    List.init repeats (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        Unix.gettimeofday () -. t0)
  in
  List.nth (List.sort compare samples) (repeats / 2)

type row = {
  name : string;
  naive_s : float;
  engine_s : float;
  detail : string;
}

let speedup r = r.naive_s /. r.engine_s

let bench_local_search () =
  let g, order = instance P.Ligo 200 in
  let flags =
    Heuristics.checkpoint_flags Heuristics.Ckpt_weight g ~order ~n_ckpt:50
  in
  let seed = Schedule.make g ~order ~checkpointed:flags in
  let run backend () = Local_search.improve ~backend model g seed in
  let naive = run Eval_engine.Naive () in
  let engine = run Eval_engine.Incremental () in
  assert (naive.Local_search.makespan = engine.Local_search.makespan);
  {
    name = "local-search/Ligo/n=200";
    naive_s = time ~repeats:3 (run Eval_engine.Naive);
    engine_s = time ~repeats:3 (run Eval_engine.Incremental);
    detail =
      Printf.sprintf "%d evaluations, %d flips" naive.Local_search.evaluations
        naive.Local_search.flips;
  }

let bench_ckptw_sweep () =
  let g, order = instance P.Ligo 200 in
  ignore order;
  let run backend () =
    Heuristics.run ~search:Heuristics.Exhaustive ~backend model g
      ~lin:Wfc_dag.Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight
  in
  let naive = run Eval_engine.Naive () in
  let engine = run Eval_engine.Incremental () in
  assert (naive.Heuristics.makespan = engine.Heuristics.makespan);
  {
    name = "ckptw-exhaustive/Ligo/n=200";
    naive_s = time ~repeats:3 (run Eval_engine.Naive);
    engine_s = time ~repeats:3 (run Eval_engine.Incremental);
    detail = Printf.sprintf "%d candidates" naive.Heuristics.evaluations;
  }

let bench_exact_audit () =
  let g, order = instance P.Genome 20 in
  let run backend () =
    Exact_solver.optimal_checkpoints_within ~backend ~max_nodes:200_000 model g
      ~order
  in
  let (naive, _) = run Eval_engine.Naive () in
  let (engine, _) = run Eval_engine.Incremental () in
  assert (naive.Exact_solver.makespan = engine.Exact_solver.makespan);
  assert (naive.Exact_solver.nodes = engine.Exact_solver.nodes);
  {
    name = "exact-bnb/Genome/n=20";
    naive_s = time ~repeats:3 (run Eval_engine.Naive);
    engine_s = time ~repeats:3 (run Eval_engine.Incremental);
    detail = Printf.sprintf "%d nodes" naive.Exact_solver.nodes;
  }

let bench_single_flip () =
  let g, order = instance P.Ligo 200 in
  let n = Array.length order in
  let engine = Eval_engine.create model g ~order in
  ignore (Eval_engine.makespan engine);
  let flags = Array.make n false in
  let i = ref 0 in
  let flips = 1000 in
  let engine_s =
    time ~repeats:3 (fun () ->
        for _ = 1 to flips do
          ignore (Eval_engine.flip engine (!i mod n));
          incr i
        done)
    /. float_of_int flips
  in
  let j = ref 0 in
  let naive_s =
    time ~repeats:3 (fun () ->
        for _ = 1 to 20 do
          flags.(!j mod n) <- not flags.(!j mod n);
          incr j;
          ignore
            (Evaluator.expected_makespan model g
               (Schedule.make g ~order ~checkpointed:flags))
        done)
    /. 20.
  in
  {
    name = "single-flip/Ligo/n=200";
    naive_s;
    engine_s;
    detail = "per-flip cost vs one full evaluation";
  }

let json_of_rows rows =
  Wfc_io.Json.Assoc
    [
      ("benchmark", Wfc_io.Json.String "eval_engine");
      ("model", Wfc_io.Json.String "lambda=1e-3, downtime=0, cost=0.1w");
      ( "results",
        Wfc_io.Json.List
          (List.map
             (fun r ->
               Wfc_io.Json.Assoc
                 [
                   ("name", Wfc_io.Json.String r.name);
                   ("naive_seconds", Wfc_io.Json.Number r.naive_s);
                   ("engine_seconds", Wfc_io.Json.Number r.engine_s);
                   ("speedup", Wfc_io.Json.Number (speedup r));
                   ("detail", Wfc_io.Json.String r.detail);
                 ])
             rows) );
    ]

let run () =
  print_endline "== incremental engine vs naive evaluation ==";
  let rows =
    [
      bench_single_flip (); bench_ckptw_sweep (); bench_local_search ();
      bench_exact_audit ();
    ]
  in
  let table =
    Wfc_reporting.Table.create
      ~columns:[ "benchmark"; "naive"; "engine"; "speedup"; "detail" ]
  in
  List.iter
    (fun r ->
      Wfc_reporting.Table.add_row table
        [
          r.name;
          Printf.sprintf "%.2f ms" (r.naive_s *. 1e3);
          Printf.sprintf "%.2f ms" (r.engine_s *. 1e3);
          Printf.sprintf "%.1fx" (speedup r);
          r.detail;
        ])
    rows;
  Wfc_reporting.Table.print table;
  let path = "BENCH_engine.json" in
  let oc = open_out path in
  output_string oc (Wfc_io.Json.to_string (json_of_rows rows));
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" path
