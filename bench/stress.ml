(* Micro stress campaign: wall-clock cost of the resilience subsystem.

   Not a figure of the paper — a throughput check that fault-injection
   simulation, misspecification campaigns and the degrading solver driver
   stay cheap enough for interactive use. Run with

     FIG=stress dune exec bench/main.exe *)

module D = Wfc_platform.Distribution
module FM = Wfc_platform.Failure_model
module SF = Wfc_simulator.Sim_faults
module MC = Wfc_simulator.Monte_carlo
module Stress = Wfc_resilience.Stress
module Driver = Wfc_resilience.Solver_driver
module Heuristics = Wfc_core.Heuristics
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let prepared n =
  let g = CM.apply (CM.Proportional 0.1) (P.generate P.Montage ~n ~seed:7) in
  let nominal = FM.make ~lambda:2e-3 ~downtime:1. () in
  let outcome =
    Heuristics.run nominal g ~lin:Wfc_dag.Linearize.Depth_first
      ~ckpt:Heuristics.Ckpt_weight
  in
  (g, nominal, outcome.Heuristics.schedule)

let run () =
  print_endline "== stress micro-campaign ==";
  let table =
    Wfc_reporting.Table.create
      ~columns:[ "component"; "n"; "work"; "wall (s)"; "per unit (us)" ]
  in
  let row component n work wall =
    Wfc_reporting.Table.add_row table
      [
        component;
        string_of_int n;
        work;
        Printf.sprintf "%.3f" wall;
        Printf.sprintf "%.1f" (wall /. float_of_int n *. 1e6);
      ]
  in
  List.iter
    (fun n ->
      let g, nominal, sched = prepared n in
      (* fault-injection engine vs. the trusted one *)
      let runs = 2000 in
      let _, clean =
        time (fun () -> MC.estimate ~runs ~seed:3 nominal g sched)
      in
      row "sim (clean)" runs "runs" clean;
      let faulty_params =
        {
          (SF.nominal nominal) with
          SF.p_ckpt_fail = 0.05;
          p_rec_fail = 0.05;
          downtime = D.exponential ~rate:1.;
          max_failures = 10_000;
        }
      in
      let _, faulty =
        time (fun () -> MC.estimate_faults ~runs ~seed:3 faulty_params g sched)
      in
      row "sim (faults)" runs "runs" faulty;
      (* one full default-grid campaign for the schedule *)
      let scenarios = Stress.default_grid nominal in
      let campaign_runs = 500 in
      let report, wall =
        time (fun () ->
            Stress.evaluate ~runs:campaign_runs ~seed:3 ~nominal ~scenarios g
              sched)
      in
      row "stress campaign"
        (campaign_runs * List.length scenarios)
        "runs" wall;
      Printf.printf "  n=%d robustness (worst p99 x): %.2f\n" n
        report.Stress.robustness)
    [ 30; 100 ];
  (* the degrading driver on a budget too small for the exact tier *)
  let g, nominal, _ = prepared 60 in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  let config = { Driver.default_config with Driver.max_nodes = 50_000 } in
  let result, wall = time (fun () -> Driver.solve ~config nominal g ~order) in
  row
    (Printf.sprintf "driver[%s]" (Driver.tier_name result.Driver.tier))
    result.Driver.nodes "nodes" wall;
  Wfc_reporting.Table.print table
