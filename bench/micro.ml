(* Bechamel micro-benchmarks: throughput of the building blocks and the
   ablation of the lost-work computation (the paper's O(n^4) Algorithm 1
   versus this library's O(n |E|) reformulation). *)

open Bechamel
open Toolkit
open Wfc_core
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model

let prepared family n =
  let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n ~seed:7) in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  let flags =
    Heuristics.checkpoint_flags Heuristics.Ckpt_weight g ~order ~n_ckpt:(n / 4)
  in
  (g, Schedule.make g ~order ~checkpointed:flags)

let model = FM.make ~lambda:1e-3 ()

let lost_work_tests =
  List.map
    (fun n ->
      let g, s = prepared P.Cybershake n in
      Test.make
        ~name:(Printf.sprintf "lost_work/optimized/n=%d" n)
        (Staged.stage (fun () -> ignore (Lost_work.compute g s))))
    [ 50; 200 ]

let lost_work_reference_tests =
  (* the literal Algorithm 1, one k-slice; small n only (O(n^3) per slice) *)
  List.map
    (fun n ->
      let g, s = prepared P.Cybershake n in
      Test.make
        ~name:(Printf.sprintf "lost_work/algorithm1-slice/n=%d" n)
        (Staged.stage (fun () ->
             ignore (Lost_work_reference.find_wik_rik g s ~k:(n / 2)))))
    [ 50 ]

let evaluator_tests =
  List.map
    (fun n ->
      let g, s = prepared P.Cybershake n in
      let lost = Lost_work.compute g s in
      [
        Test.make
          ~name:(Printf.sprintf "evaluator/end-to-end/n=%d" n)
          (Staged.stage (fun () ->
               ignore (Evaluator.expected_makespan model g s)));
        Test.make
          ~name:(Printf.sprintf "evaluator/cached-lost-work/n=%d" n)
          (Staged.stage (fun () ->
               ignore (Evaluator.expected_makespan ~lost model g s)));
      ])
    [ 50; 200 ]
  |> List.concat

let simulator_tests =
  List.map
    (fun n ->
      let g, s = prepared P.Cybershake n in
      let rng = Wfc_platform.Rng.create 13 in
      Test.make
        ~name:(Printf.sprintf "simulator/run/n=%d" n)
        (Staged.stage (fun () -> ignore (Wfc_simulator.Sim.run ~rng model g s))))
    [ 50; 200 ]

let heuristic_tests =
  let g = CM.apply (CM.Proportional 0.1) (P.generate P.Montage ~n:100 ~seed:7) in
  [
    Test.make ~name:"heuristic/DF-CkptW/grid16/n=100"
      (Staged.stage (fun () ->
           ignore
             (Heuristics.run ~search:(Heuristics.Grid 16) model g
                ~lin:Wfc_dag.Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight)));
  ]

let engine_tests =
  (* single-flag flip throughput of the incremental engine, against one full
     cached-lost-work evaluation (the naive per-candidate cost) above *)
  List.map
    (fun n ->
      let g, s = prepared P.Cybershake n in
      let engine = Eval_engine.create model g ~order:s.Schedule.order in
      ignore (Eval_engine.makespan engine);
      let i = ref 0 in
      Test.make
        ~name:(Printf.sprintf "engine/flip/n=%d" n)
        (Staged.stage (fun () ->
             incr i;
             ignore (Eval_engine.flip engine (!i mod n)))))
    [ 50; 200 ]

let flat_tests =
  (* flip throughput of the flat kernel, same shape as engine/flip above.
     The steady-state flip path must not allocate: the one-time assertion
     below runs a settled flip cycle and checks the minor allocation
     pointer did not move. *)
  List.map
    (fun n ->
      let g, s = prepared P.Cybershake n in
      let feng = Flat_engine.create model g ~order:s.Schedule.order in
      ignore (Flat_engine.makespan feng);
      let i = ref 0 in
      Test.make
        ~name:(Printf.sprintf "flat/flip/n=%d" n)
        (Staged.stage (fun () ->
             incr i;
             ignore (Flat_engine.flip feng (!i mod n)))))
    [ 50; 200 ]

let assert_flip_zero_alloc () =
  let g, s = prepared P.Cybershake 200 in
  let n = 200 in
  let feng = Flat_engine.create model g ~order:s.Schedule.order in
  ignore (Flat_engine.makespan feng);
  (* settle: first pass may grow the change journal to capacity. flip_quiet
     rather than flip: the latter's boxed float return is the caller's
     allocation, not the kernel's *)
  for v = 0 to n - 1 do
    Flat_engine.flip_quiet feng v;
    Flat_engine.flip_quiet feng v
  done;
  let words0 = Gc.minor_words () in
  for v = 0 to n - 1 do
    Flat_engine.flip_quiet feng v;
    Flat_engine.flip_quiet feng v
  done;
  let words = Gc.minor_words () -. words0 in
  if words > 0. then (
    Printf.printf "FAIL flat/flip allocates: %.0f minor words per %d flips\n"
      words (2 * n);
    exit 1);
  Printf.printf "PASS flat/flip zero-allocation (%d flips, 0 minor words)\n"
    (2 * n)

let generator_tests =
  List.map
    (fun fam ->
      Test.make
        ~name:(Printf.sprintf "generate/%s/n=200" (P.family_name fam))
        (Staged.stage (fun () -> ignore (P.generate fam ~n:200 ~seed:7))))
    P.all

let all_tests () =
  Test.make_grouped ~name:"wfc"
    (lost_work_tests @ lost_work_reference_tests @ evaluator_tests
   @ engine_tests @ flat_tests @ simulator_tests @ heuristic_tests
   @ generator_tests)

let () = Bechamel_notty.Unit.add Instance.monotonic_clock "ns"

let run () =
  assert_flip_zero_alloc ();
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (all_tests ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.eol img |> Notty_unix.output_image
