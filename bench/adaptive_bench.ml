(* Adaptive-vs-static execution under a misspecified failure rate. The
   static schedule is optimized for the planning MTBF; the platform's true
   MTBF is planning/factor for factor in 1, 2, 4, 8. Both policies replay
   the same recorded renewal traces (Robust's shared ensemble), so the gap
   is pure policy. Writes BENCH_adaptive.json and fails loudly if the
   adaptive policy stops beating the static one at >= 4x misspecification,
   or drifts more than 5% from it when the planning model is exact.

   Run with: FIG=adaptive dune exec bench/main.exe
   TRACES=n overrides the per-factor trace count (default 200). *)

open Wfc_core
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model
module Dist = Wfc_platform.Distribution
module SA = Wfc_simulator.Sim_adaptive
module Robust = Wfc_resilience.Robust
module Driver = Wfc_resilience.Solver_driver

let factors = [ 1.; 2.; 4.; 8. ]
let downtime = 1.

type row = {
  factor : float;
  true_mtbf : float;
  static_mean : float;
  adaptive_mean : float;
  exhausted : int;
}

let ratio r = r.adaptive_mean /. r.static_mean

let bench_factor ~g ~total_weight ~planning_mtbf ~traces factor =
  let planning = FM.of_mtbf ~mtbf:planning_mtbf ~downtime () in
  let o =
    Heuristics.run ~search:Heuristics.Exhaustive planning g
      ~lin:Wfc_dag.Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight
  in
  let true_mtbf = planning_mtbf /. factor in
  let scenarios =
    [
      {
        Robust.name = "exponential";
        failures = Dist.exponential ~rate:(1. /. true_mtbf);
        downtime = Dist.constant downtime;
      };
    ]
  in
  let config =
    {
      SA.planning;
      trigger = SA.Every_failure;
      min_observations = 1;
      replan = Some (Driver.replanner ~budget:256 g);
    }
  in
  let candidates =
    [
      Robust.static ~name:"static" g o.Heuristics.schedule;
      Robust.adaptive ~name:"adaptive" config g o.Heuristics.schedule;
    ]
  in
  let r =
    Robust.evaluate ~traces_per_scenario:traces ~seed:11
      ~min_uptime:(100. *. total_weight) ~criterion:Robust.Mean ~scenarios
      candidates
  in
  let mean_of name =
    (List.find (fun s -> s.Robust.candidate = name) r.Robust.scores).Robust.mean
  in
  {
    factor;
    true_mtbf;
    static_mean = mean_of "static";
    adaptive_mean = mean_of "adaptive";
    exhausted =
      List.fold_left (fun acc s -> acc + s.Robust.exhausted) 0 r.Robust.scores;
  }

let json_of ~family ~n ~seed ~planning_mtbf ~traces rows =
  Wfc_io.Json.Assoc
    [
      ("benchmark", Wfc_io.Json.String "adaptive_vs_static");
      ( "workflow",
        Wfc_io.Json.String (Printf.sprintf "%s n=%d seed=%d" family n seed) );
      ("planning_mtbf", Wfc_io.Json.Number planning_mtbf);
      ("downtime", Wfc_io.Json.Number downtime);
      ("traces_per_factor", Wfc_io.Json.Number (float_of_int traces));
      ( "results",
        Wfc_io.Json.List
          (List.map
             (fun r ->
               Wfc_io.Json.Assoc
                 [
                   ("misspecification_factor", Wfc_io.Json.Number r.factor);
                   ("true_mtbf", Wfc_io.Json.Number r.true_mtbf);
                   ("static_mean", Wfc_io.Json.Number r.static_mean);
                   ("adaptive_mean", Wfc_io.Json.Number r.adaptive_mean);
                   ("ratio", Wfc_io.Json.Number (ratio r));
                   ( "exhausted",
                     Wfc_io.Json.Number (float_of_int r.exhausted) );
                 ])
             rows) );
    ]

let run () =
  print_endline "== adaptive vs static under misspecified failure rate ==";
  let family, n, seed = ("Montage", 40, 7) in
  let traces =
    match Sys.getenv_opt "TRACES" with
    | Some s -> Int.max 1 (try int_of_string s with Failure _ -> 200)
    | None -> 200
  in
  let g = CM.apply (CM.Proportional 0.1) (P.generate P.Montage ~n ~seed) in
  let total_weight = Wfc_dag.Dag.total_weight g in
  (* planning MTBF = 4x total work: the static plan checkpoints sparsely,
     which is right when the belief holds and costly when failures are
     really 4-8x more frequent *)
  let planning_mtbf = 4. *. total_weight in
  let rows =
    List.map (bench_factor ~g ~total_weight ~planning_mtbf ~traces) factors
  in
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "lambda x"; "true MTBF"; "static mean"; "adaptive mean"; "ratio" ]
  in
  List.iter
    (fun r ->
      Wfc_reporting.Table.add_row table
        [
          Printf.sprintf "%gx" r.factor;
          Printf.sprintf "%.0f s" r.true_mtbf;
          Printf.sprintf "%.1f s" r.static_mean;
          Printf.sprintf "%.1f s" r.adaptive_mean;
          Printf.sprintf "%.4f" (ratio r);
        ])
    rows;
  Wfc_reporting.Table.print table;
  let path = "BENCH_adaptive.json" in
  let oc = open_out path in
  output_string oc
    (Wfc_io.Json.to_string (json_of ~family ~n ~seed ~planning_mtbf ~traces rows));
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" path;
  (* the regression guard: misspecification >= 4x must favor adaptive
     strictly; an exact belief must stay within noise of the static plan *)
  let failures = ref [] in
  List.iter
    (fun r ->
      if r.exhausted > 0 then
        failures :=
          Printf.sprintf "%gx: %d runs exhausted the recorded horizon"
            r.factor r.exhausted
          :: !failures;
      if r.factor >= 4. && not (ratio r < 1.) then
        failures :=
          Printf.sprintf
            "%gx: adaptive (%.2f) does not strictly beat static (%.2f)"
            r.factor r.adaptive_mean r.static_mean
          :: !failures;
      if r.factor = 1. && ratio r > 1.05 then
        failures :=
          Printf.sprintf
            "1x: adaptive (%.2f) is more than 5%% behind static (%.2f)"
            r.adaptive_mean r.static_mean
          :: !failures)
    rows;
  match !failures with
  | [] -> print_endline "adaptive-vs-static guard: PASS"
  | msgs ->
      List.iter (fun m -> Printf.printf "adaptive-vs-static guard: FAIL %s\n" m)
        (List.rev msgs);
      exit 1
