(* Scale campaign for the flat kernel: Pegasus-family workflows up to
   n=2000 through the flat engine (full evaluation + flip throughput, with
   the incremental engine and the Evaluator oracle as references), the
   dominance-pruned parallel branch and bound at n~30, and a
   parallel-vs-single-domain optimality guard. Writes BENCH_scale.json.

   Run with: FIG=scale dune exec bench/main.exe

   Knobs (for the cram smoke test, which needs a sub-second variant):
     SCALE_NMAX=200     cap the sweep sizes
     SCALE_EXACT_N=12   size of the exact branch-and-bound instance
     SCALE_DOMAINS=2    worker domains for the parallel search *)

open Wfc_core
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model

let model = FM.make ~lambda:1e-3 ()

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string s with Failure _ -> default)
  | None -> default

let instance family n =
  let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n ~seed:7) in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  (g, order)

let time ?(repeats = 3) f =
  let samples =
    List.init repeats (fun _ ->
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        Unix.gettimeofday () -. t0)
  in
  List.nth (List.sort compare samples) (repeats / 2)

type sweep_row = {
  family : string;
  n : int;
  flat_full_ms : float;  (** create + first full evaluation *)
  engine_full_ms : float;
  flat_flip_us : float;
  engine_flip_us : float;
  oracle_rel_err : float;
      (** |flat - Evaluator| / Evaluator on the all-off schedule *)
}

(* One size point: full-evaluation and flip throughput for both engines,
   plus the bitwise flat==incremental guard and an oracle cross-check.
   The failure rate is scale-invariant: lambda * total_work = 50 at every
   size, so the recurrence stays in floating-point range (a fixed lambda
   overflows exp once total work passes ~709/lambda, e.g. Genome n=1000). *)
let sweep_point family n =
  let g, order = instance family n in
  let model = FM.make ~lambda:(50. /. Wfc_dag.Dag.total_weight g) () in
  let flat_full_ms =
    time (fun () -> Flat_engine.makespan (Flat_engine.create model g ~order))
    *. 1e3
  in
  let engine_full_ms =
    time (fun () -> Eval_engine.makespan (Eval_engine.create model g ~order))
    *. 1e3
  in
  let feng = Flat_engine.create model g ~order in
  let eng = Eval_engine.create model g ~order in
  let fm = Flat_engine.makespan feng and em = Eval_engine.makespan eng in
  (* parity wall: the flat kernel is bit-identical to the incremental
     engine at every scale, not just the qcheck sizes *)
  if not (Float.equal fm em) then (
    Printf.printf "FAIL %s n=%d: flat %.17g <> engine %.17g\n"
      (P.family_name family) n fm em;
    exit 1);
  let oracle =
    Evaluator.expected_makespan model g
      (Schedule.make g ~order ~checkpointed:(Array.make n false))
  in
  let oracle_rel_err = Float.abs (fm -. oracle) /. oracle in
  (* a flip costs O(suffix area) ~ n^2, so scale the count down with n to
     keep the per-point budget roughly constant *)
  let flips = Int.max 16 (Int.min n (40_000 / n)) in
  let i = ref 0 in
  let flat_flip_us =
    time (fun () ->
        for _ = 1 to flips do
          ignore (Flat_engine.flip feng (!i * 17 mod n));
          incr i
        done)
    /. float_of_int flips *. 1e6
  in
  let j = ref 0 in
  let engine_flip_us =
    time (fun () ->
        for _ = 1 to flips do
          ignore (Eval_engine.flip eng (!j * 17 mod n));
          incr j
        done)
    /. float_of_int flips *. 1e6
  in
  {
    family = P.family_name family;
    n;
    flat_full_ms;
    engine_full_ms;
    flat_flip_us;
    engine_flip_us;
    oracle_rel_err;
  }

type exact_row = {
  exact_n : int;
  domains : int;
  nodes : int;
  seconds : float;
  optimal : bool;
}

let bench_exact ~n ~domains =
  let g, order = instance P.Ligo n in
  let t0 = Unix.gettimeofday () in
  let sol, status =
    Exact_solver.optimal_checkpoints_within ~backend:Eval_engine.Flat ~domains
      ~max_nodes:50_000_000 model g ~order
  in
  let seconds = Unix.gettimeofday () -. t0 in
  {
    exact_n = n;
    domains;
    nodes = sol.Exact_solver.nodes;
    seconds;
    optimal = status = `Optimal;
  }

(* The parallel split must not change the answer: same optimum (bitwise,
   both are oracle evaluations of their incumbents) from 1 and k domains. *)
let parallel_guard ~n ~domains =
  let g, order = instance P.Genome n in
  let run domains =
    (Exact_solver.optimal_checkpoints_within ~backend:Eval_engine.Flat ~domains
       ~max_nodes:5_000_000 model g ~order
    |> fst)
      .Exact_solver.makespan
  in
  let single = run 1 and multi = run domains in
  if Float.equal single multi then (
    Printf.printf "PASS parallel B&B matches single-domain (n=%d, %d domains)\n"
      n domains;
    true)
  else (
    Printf.printf "FAIL parallel B&B: %d domains %.17g <> single %.17g\n"
      domains multi single;
    false)

let json rows exact guard_ok =
  let open Wfc_io.Json in
  Assoc
    [
      ("benchmark", String "scale");
      ( "model",
        String
          "sweep: lambda=50/total_work, downtime=0, cost=0.1w; exact: \
           lambda=1e-3" );
      ( "sweep",
        List
          (Stdlib.List.map
             (fun r ->
               Assoc
                 [
                   ("family", String r.family);
                   ("n", Number (float_of_int r.n));
                   ("flat_full_ms", Number r.flat_full_ms);
                   ("engine_full_ms", Number r.engine_full_ms);
                   ("flat_flip_us", Number r.flat_flip_us);
                   ("engine_flip_us", Number r.engine_flip_us);
                   ("oracle_rel_err", Number r.oracle_rel_err);
                 ])
             rows) );
      ( "exact",
        Assoc
          [
            ("family", String "Ligo");
            ("n", Number (float_of_int exact.exact_n));
            ("domains", Number (float_of_int exact.domains));
            ("nodes", Number (float_of_int exact.nodes));
            ("seconds", Number exact.seconds);
            ("optimal", Bool exact.optimal);
          ] );
      ("parallel_guard", Bool guard_ok);
    ]

let run () =
  let nmax = getenv_int "SCALE_NMAX" 2000 in
  let exact_n = getenv_int "SCALE_EXACT_N" 30 in
  let domains = getenv_int "SCALE_DOMAINS" 4 in
  print_endline "== flat kernel at scale: Pegasus families to n=2000 ==";
  let sizes = Stdlib.List.filter (fun n -> n <= nmax) [ 200; 500; 1000; 2000 ] in
  let sizes = if sizes = [] then [ nmax ] else sizes in
  let rows =
    Stdlib.List.concat_map
      (fun family ->
        Stdlib.List.filter_map
          (fun n ->
            if n < P.min_size family then None else Some (sweep_point family n))
          sizes)
      P.all
  in
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "family"; "n"; "flat full"; "engine full"; "flat flip"; "engine flip";
          "vs oracle" ]
  in
  Stdlib.List.iter
    (fun r ->
      Wfc_reporting.Table.add_row table
        [
          r.family;
          string_of_int r.n;
          Printf.sprintf "%.2f ms" r.flat_full_ms;
          Printf.sprintf "%.2f ms" r.engine_full_ms;
          Printf.sprintf "%.1f us" r.flat_flip_us;
          Printf.sprintf "%.1f us" r.engine_flip_us;
          Printf.sprintf "%.1e" r.oracle_rel_err;
        ])
    rows;
  Wfc_reporting.Table.print table;
  Printf.printf "PASS flat == incremental (bitwise) on %d instances\n"
    (Stdlib.List.length rows);
  let guard_ok = parallel_guard ~n:(Int.min exact_n 14) ~domains in
  let exact = bench_exact ~n:exact_n ~domains in
  Printf.printf
    "exact B&B: Ligo n=%d, %d nodes, %.1f s, %s (%d domains, dominance+memo)\n"
    exact.exact_n exact.nodes exact.seconds
    (if exact.optimal then "Optimal" else "Budget_exhausted")
    exact.domains;
  if not guard_ok then exit 1;
  let path = "BENCH_scale.json" in
  let oc = open_out path in
  output_string oc (Wfc_io.Json.to_string (json rows exact guard_ok));
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" path
