(* Serving-layer closed-loop bench: drive Server.handle in process with a
   mixed solve/simulate workload and write BENCH_serve.json.

   Half correctness guard, half latency measurement:
   - responses must be byte-identical (exact wire bytes, not the rounded
     rendering) with the warm-engine cache on and off, and across
     daemon-side domain counts 1 and 4 — the serving layer's core
     regression contract;
   - the warm server's median latency must be strictly below the cold
     server's, i.e. the LRU actually buys something on a workload that
     re-solves the same keyed workflows.

   Run with: FIG=serve dune exec bench/main.exe
   Knobs:    SERVE_REPS  repetitions per distinct request (default 20) *)

module Server = Wfc_serve.Server
module Pr = Wfc_serve.Protocol
module Codec = Wfc_serve.Codec
module Json = Wfc_io.Json

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string s with Failure _ -> default)
  | None -> default

(* A few distinct cache keys (family x size x MTBF), re-solved round-robin:
   a plausible "same workflows, parameter studies" service load where warm
   engines pay off. The flat backend at n ~ 800 is the configuration where
   handle construction (bigarray layout + precompute) is a substantial
   fraction of a request, so the cache's effect is well above timer noise;
   a small grid keeps the per-request sweep from drowning it. *)
let workload reps =
  let lines =
    [
      "solve family=montage n=800 mtbf=500 grid=4 engine=flat";
      "solve family=cybershake n=800 mtbf=200 grid=4 engine=flat";
      "solve family=ligo n=750 mtbf=800 grid=4 engine=flat";
      "solve family=genome n=700 mtbf=5000 grid=4 engine=flat";
      "solve family=sipht n=750 mtbf=300 grid=4 engine=flat";
    ]
  in
  let parse l =
    match Pr.request_of_line l with
    | Ok r -> r
    | Error m -> failwith (Printf.sprintf "bad bench request %S: %s" l m)
  in
  let reqs = List.map parse lines in
  (List.length reqs, List.concat (List.init reps (fun _ -> reqs)))

(* exact response bytes, not the 2-decimal rendering *)
let bytes_of r = Codec.encode_response ~id:0L r

let drive config reqs =
  let t = Server.create ~config () in
  let lat = Array.make (List.length reqs) 0. in
  let t0 = Unix.gettimeofday () in
  let responses =
    List.mapi
      (fun i req ->
        let s = Unix.gettimeofday () in
        let r = Server.handle t req in
        lat.(i) <- Unix.gettimeofday () -. s;
        (match r with
        | Pr.Error { message; _ } -> failwith ("bench request failed: " ^ message)
        | _ -> ());
        bytes_of r)
      reqs
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (responses, lat, elapsed)

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(Int.min (n - 1) (int_of_float (p *. float_of_int n)))

let summary lat elapsed =
  let sorted = Array.copy lat in
  Array.sort compare sorted;
  let n = Array.length sorted in
  ( float_of_int n /. elapsed,
    1e3 *. percentile sorted 0.5,
    1e3 *. percentile sorted 0.99 )

let run () =
  print_endline "== serving layer: warm cache vs cold (FIG=serve) ==";
  let reps = getenv_int "SERVE_REPS" 10 in
  let distinct, reqs = workload reps in
  let n = List.length reqs in
  let cold_cfg = { Server.default_config with cache_size = 0 } in
  let warm_cfg = Server.default_config in
  (* one throwaway pass to pay allocation/code warmup outside the timings *)
  ignore (drive cold_cfg (snd (workload 1)));
  let cold, cold_lat, cold_t = drive cold_cfg reqs in
  let warm, warm_lat, warm_t = drive warm_cfg reqs in
  let dom4, _, _ =
    drive { warm_cfg with Server.domains = 4; workers = 4 } reqs
  in
  let ok_bytes = cold = warm && warm = dom4 in
  if not ok_bytes then begin
    print_endline
      "FAIL: responses are not byte-identical across cache/domain configs";
    exit 1
  end;
  let cold_qps, cold_p50, cold_p99 = summary cold_lat cold_t in
  let warm_qps, warm_p50, warm_p99 = summary warm_lat warm_t in
  Printf.printf "%d requests, %d distinct keys\n" n distinct;
  Printf.printf "  cold: %7.1f req/s  p50 %6.3f ms  p99 %6.3f ms\n" cold_qps
    cold_p50 cold_p99;
  Printf.printf "  warm: %7.1f req/s  p50 %6.3f ms  p99 %6.3f ms\n" warm_qps
    warm_p50 warm_p99;
  Printf.printf "  p50 speedup: %.2fx\n" (cold_p50 /. warm_p50);
  if not (warm_p50 < cold_p50) then begin
    print_endline "FAIL: warm median latency is not below cold";
    exit 1
  end;
  let part name qps p50 p99 =
    ( name,
      Json.Assoc
        [ ("qps", Json.Number qps); ("p50_ms", Json.Number p50);
          ("p99_ms", Json.Number p99) ] )
  in
  let doc =
    Json.Assoc
      [ ("bench", Json.String "serve");
        ("requests", Json.Number (float_of_int n));
        part "cold" cold_qps cold_p50 cold_p99;
        part "warm" warm_qps warm_p50 warm_p99;
        ("p50_speedup", Json.Number (cold_p50 /. warm_p50));
        ("byte_identical", Json.Bool true) ]
  in
  let oc = open_out "BENCH_serve.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n');
  print_endline
    "PASS: byte-identical across cache on/off and domains 1|4, warm median \
     below cold; wrote BENCH_serve.json"
