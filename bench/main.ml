(* Benchmark harness: regenerates every figure of the paper's evaluation
   section (Figures 2-7) and runs the Bechamel micro-benchmarks.

   Usage: dune exec bench/main.exe               run everything (fast sweep)
          FIG=3 dune exec bench/main.exe         only Figure 3
          FIG=ablation dune exec bench/main.exe  extension/ablation studies
          FIG=micro dune exec bench/main.exe     only the micro-benchmarks
          FIG=stress dune exec bench/main.exe    resilience stress micro-campaign
          FIG=engine dune exec bench/main.exe    incremental engine vs naive timing
          FIG=scale dune exec bench/main.exe     flat kernel at scale, exact B&B n~30
          FIG=obs dune exec bench/main.exe       observability overhead guard
          FIG=adaptive dune exec bench/main.exe  adaptive vs static, misspecified lambda
          FIG=replication dune exec bench/main.exe  checkpoint-vs-replica CVaR trade-off
          FIG=corpus dune exec bench/main.exe    golden mini-corpus sweep, engine/domain invariance
          FIG=serve dune exec bench/main.exe     serving layer: warm-engine cache vs cold, byte-identity
          FIG=chaos dune exec bench/main.exe     chaos soak: fault injection, watchdog, crash-only guard
          FULL=1 ...                             full 50..700 task range
          SEEDS=3 ...                            average over 3 workflow seeds
          CSV=out ...                            also dump CSV series
          SEED=7 ...                             workflow generation seed *)

let getenv name = Sys.getenv_opt name

let () =
  let cfg =
    {
      Figures.default_config with
      Figures.full = getenv "FULL" = Some "1";
      csv_dir = getenv "CSV";
      seed =
        (match getenv "SEED" with
        | Some s -> ( try int_of_string s with Failure _ -> 42)
        | None -> 42);
      seeds =
        (match getenv "SEEDS" with
        | Some s -> Int.max 1 (try int_of_string s with Failure _ -> 1)
        | None -> 1);
    }
  in
  let fig = getenv "FIG" in
  let t0 = Unix.gettimeofday () in
  (match fig with
  | Some "micro" -> Micro.run ()
  | Some "ablation" -> Ablation.run cfg
  | Some "stress" -> Stress.run ()
  | Some "engine" -> Engine_bench.run ()
  | Some "scale" -> Scale_bench.run ()
  | Some "obs" -> Obs_bench.run ()
  | Some "adaptive" -> Adaptive_bench.run ()
  | Some "replication" -> Replication_bench.run ()
  | Some "corpus" -> Corpus_bench.run ()
  | Some "serve" -> Serve_bench.run ()
  | Some "chaos" -> Chaos_bench.run ()
  | Some id -> (
      match int_of_string_opt id with
      | Some id -> Figures.run cfg (Some id)
      | None ->
          Printf.eprintf
            "FIG must be 2..7, 'ablation', 'micro', 'stress', 'engine', \
             'scale', 'obs', 'adaptive', 'replication', 'corpus', \
             'serve' or 'chaos'\n")
  | None ->
      Figures.run cfg None;
      Ablation.run cfg;
      print_newline ();
      print_endline "== micro-benchmarks (Bechamel) ==";
      Micro.run ());
  Printf.printf "\ntotal wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
