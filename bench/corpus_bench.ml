(* Corpus golden sweep: run the committed mini-corpus through the full
   `wfc corpus` machinery and write BENCH_corpus.json.

   This is a correctness guard, not a timing bench. The whole sweep is
   analytic, so its report must be a pure function of the corpus and the
   configuration; the guard re-runs it under every evaluation backend and
   a different domain count and FAILs unless all reports are byte-identical
   to the incremental single-domain baseline.

   Run with: FIG=corpus dune exec bench/main.exe
   Knobs:    CORPUS_DIR     corpus directory (default test/corpus)
             CORPUS_BUDGET  exact-tier node budget (default 100000) *)

module Corpus = Wfc_corpus.Corpus
module Json = Wfc_io.Json

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string s with Failure _ -> default)
  | None -> default

let config ~budget backend domains =
  {
    Corpus.default_config with
    Corpus.search = Wfc_core.Heuristics.Grid 8;
    backend;
    exact_budget = budget;
    domains;
  }

(* reports compared with the backend column neutralized: the label is the
   only field allowed to differ across engines *)
let fingerprint report =
  Json.to_string (Corpus.to_json { report with Corpus.backend_name = "-" })

let run () =
  print_endline "== corpus golden sweep (FIG=corpus) ==";
  let dir = Option.value (Sys.getenv_opt "CORPUS_DIR") ~default:"test/corpus" in
  let budget = getenv_int "CORPUS_BUDGET" 100_000 in
  match Corpus.load_dir ~cost:(Wfc_workflows.Cost_model.Proportional 0.1) dir with
  | Error msg ->
      Printf.printf "FAIL: cannot read %s: %s\n" dir msg;
      exit 1
  | Ok (instances, skipped) ->
      List.iter
        (fun (p, m) -> Printf.printf "FAIL: cannot load %s: %s\n" p m)
        skipped;
      if skipped <> [] then exit 1;
      if instances = [] then begin
        Printf.printf "FAIL: no workflow files in %s\n" dir;
        exit 1
      end;
      let base =
        Corpus.sweep
          ~config:(config ~budget Wfc_core.Eval_engine.Incremental 1)
          instances
      in
      Corpus.print_report base;
      print_newline ();
      let baseline = fingerprint base in
      let variants =
        [
          ("flat engine", config ~budget Wfc_core.Eval_engine.Flat 1);
          ("naive engine", config ~budget Wfc_core.Eval_engine.Naive 1);
          ("4 domains", config ~budget Wfc_core.Eval_engine.Incremental 4);
        ]
      in
      let ok =
        List.for_all
          (fun (name, cfg) ->
            let same = fingerprint (Corpus.sweep ~config:cfg instances) = baseline in
            if not same then
              Printf.printf "FAIL: %s sweep diverges from the baseline\n" name;
            same)
          variants
      in
      if not ok then exit 1;
      let oc = open_out "BENCH_corpus.json" in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Json.to_string (Corpus.to_json base));
          output_char oc '\n');
      Printf.printf
        "PASS: %d instances x %d scenarios byte-identical across engines and \
         domain counts; wrote BENCH_corpus.json\n"
        (List.length instances)
        (List.length base.Corpus.scenario_names)
