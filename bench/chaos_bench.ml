(* Chaos soak guard: run hundreds of seeded fault-injection schedules
   against a live in-process daemon and write BENCH_chaos.json.

   Pure correctness guard (the numbers are a by-product):
   - every request that completes under chaos must be byte-identical to
     its chaos-free twin, the daemon must survive every schedule and leak
     zero warm engines — the crash-only serving contract;
   - a watchdog-armed server must turn a runaway request into a
     structured [timeout] error, and arming the watchdog must not perturb
     a single byte of responses that finish inside the budget — checked
     cold and warm across daemon-side domain counts 1 and 4.

   Run with: FIG=chaos dune exec bench/main.exe
   Knobs:    CHAOS_SEEDS  seeded schedules to run (default 200) *)

module Chaos = Wfc_serve.Chaos
module Server = Wfc_serve.Server
module Client = Wfc_serve.Client
module Pr = Wfc_serve.Protocol
module Codec = Wfc_serve.Codec
module Json = Wfc_io.Json

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string s with Failure _ -> default)
  | None -> default

(* ---- live daemon -------------------------------------------------------- *)

let with_daemon f =
  let addr = ref None in
  let m = Mutex.create () and c = Condition.create () in
  let th =
    Thread.create
      (fun () ->
        match
          Server.serve
            ~ready:(fun a ->
              Mutex.protect m (fun () ->
                  addr := Some a;
                  Condition.signal c))
            (Server.Tcp 0)
        with
        | Ok () -> ()
        | Error msg -> failwith ("daemon failed to start: " ^ msg))
      ()
  in
  Mutex.protect m (fun () ->
      while !addr = None do
        Condition.wait c m
      done);
  let port =
    match !addr with
    | Some a -> (
        match String.rindex_opt a ':' with
        | Some i ->
            int_of_string (String.sub a (i + 1) (String.length a - i - 1))
        | None -> failwith ("unparsable daemon address " ^ a))
    | None -> assert false
  in
  let target = Server.Tcp port in
  Fun.protect
    ~finally:(fun () ->
      (match Client.connect target with
      | Ok fd ->
          ignore (Client.exchange fd [ "shutdown" ]);
          (try Unix.close fd with Unix.Unix_error _ -> ())
      | Error _ -> ());
      Thread.join th)
    (fun () -> f target)

(* ---- watchdog + byte-identity (in process, like FIG=serve) -------------- *)

let parse l =
  match Pr.request_of_line l with
  | Ok r -> r
  | Error m -> failwith (Printf.sprintf "bad bench request %S: %s" l m)

let bytes_of r = Codec.encode_response ~id:0L r

(* workload small enough to always finish well inside the generous budget *)
let identity_lines =
  [
    "solve family=montage n=60 mtbf=500 grid=3";
    "solve family=cybershake n=60 mtbf=200 grid=3";
    "simulate family=ligo n=50 mtbf=800 runs=50 seed=11";
    "solve family=montage n=60 mtbf=500 grid=3";
  ]

let drive config =
  let t = Server.create ~config () in
  List.map (fun l -> bytes_of (Server.handle t (parse l))) identity_lines

let watchdog_check () =
  (* a runaway request under a tiny budget must answer a structured
     timeout, not an exception and not a partial result *)
  let t =
    Server.create
      ~config:{ Server.default_config with Server.timeout = Some 0.001 }
      ()
  in
  let runaway = parse "solve family=montage n=400 mtbf=500 deadline=50" in
  let cancelled =
    match Server.handle t runaway with
    | Pr.Error { code = Pr.Timeout; _ } -> true
    | _ -> false
  in
  if not cancelled then begin
    print_endline "FAIL: watchdog did not cancel a runaway request";
    exit 1
  end;
  (* the watchdog must not perturb responses that finish inside budget:
     byte-identical with it off / on, cold / warm, domains 1 / 4 *)
  let base = Server.default_config in
  let variants =
    [
      ("no watchdog, cold", { base with Server.cache_size = 0 });
      ("no watchdog, warm", base);
      ("watchdog, warm", { base with Server.timeout = Some 30. });
      ( "watchdog, cold, domains=4",
        {
          base with
          Server.cache_size = 0;
          timeout = Some 30.;
          domains = 4;
          workers = 4;
        } );
    ]
  in
  let results = List.map (fun (name, cfg) -> (name, drive cfg)) variants in
  let _, reference = List.hd results in
  List.iter
    (fun (name, bytes) ->
      if bytes <> reference then begin
        Printf.printf "FAIL: %s responses differ from reference bytes\n" name;
        exit 1
      end)
    results;
  print_endline
    "  watchdog: runaway request -> structured timeout; in-budget responses \
     byte-identical cold/warm, watchdog on/off, domains 1|4"

(* ---- entry -------------------------------------------------------------- *)

let run () =
  print_endline "== chaos soak: crash-only serving invariants (FIG=chaos) ==";
  let nseeds = getenv_int "CHAOS_SEEDS" 200 in
  let seeds = List.init nseeds (fun i -> i) in
  let t0 = Unix.gettimeofday () in
  let r = with_daemon (fun target -> Chaos.soak ~target ~seeds ()) in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf
    "  %d seeded schedules in %.1f s: %d completed, %d structured, %d torn\n"
    r.Chaos.runs elapsed r.Chaos.completed r.Chaos.structured r.Chaos.torn;
  if r.Chaos.mismatched > 0 then begin
    Printf.printf "FAIL: %d completed replies diverged from their chaos-free \
                   twins\n" r.Chaos.mismatched;
    exit 1
  end;
  if r.Chaos.leaked > 0 then begin
    Printf.printf "FAIL: %d warm engines still checked out after the soak\n"
      r.Chaos.leaked;
    exit 1
  end;
  if not r.Chaos.alive then begin
    print_endline "FAIL: daemon stopped answering during the soak";
    exit 1
  end;
  if r.Chaos.runs <> nseeds then begin
    Printf.printf "FAIL: only %d of %d schedules ran\n" r.Chaos.runs nseeds;
    exit 1
  end;
  watchdog_check ();
  let doc =
    Json.Assoc
      [
        ("bench", Json.String "chaos");
        ("seeds", Json.Number (float_of_int r.Chaos.runs));
        ("completed", Json.Number (float_of_int r.Chaos.completed));
        ("structured", Json.Number (float_of_int r.Chaos.structured));
        ("torn", Json.Number (float_of_int r.Chaos.torn));
        ("mismatched", Json.Number (float_of_int r.Chaos.mismatched));
        ("leaked", Json.Number (float_of_int r.Chaos.leaked));
        ("alive", Json.Bool r.Chaos.alive);
        ("watchdog_structured_timeout", Json.Bool true);
        ("byte_identical", Json.Bool true);
        ("elapsed_s", Json.Number elapsed);
      ]
  in
  let oc = open_out "BENCH_chaos.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n');
  print_endline
    "PASS: zero mismatches, zero leaked engines, daemon alive; wrote \
     BENCH_chaos.json"
