(* Checkpoint-vs-replica trade-off: sweep replica cost x failure rate x
   heuristic, scoring checkpoint-only, mixed (checkpoints + replicas) and
   replica-only policies on shared renewal-trace ensembles by CVaR. The
   platform has expensive checkpoints (40% of each task's weight), so at
   high failure rates and cheap replicas the mixed policy should buy tail
   protection that checkpoints alone cannot. Writes BENCH_replication.json
   and fails loudly if no swept cell has a mixed policy beating the best
   checkpoint-only policy on CVaR, or if the most favorable cell (highest
   lambda, cheapest replicas) does not.

   Run with: FIG=replication dune exec bench/main.exe
   TRACES=n overrides the per-cell trace count (default 200). *)

open Wfc_core
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model
module Dist = Wfc_platform.Distribution
module Robust = Wfc_resilience.Robust

let downtime = 1.
let ckpt_fraction = 0.4
let mtbf_factors = [ 0.3; 1.; 4. ]
let rhos = [ 0.1; 0.5; 1. ]
let spec = Replication.Budget 0.5

let heuristics =
  [ Heuristics.Ckpt_weight; Heuristics.Ckpt_always; Heuristics.Ckpt_periodic ]

type policy = { name : string; kind : [ `Ckpt | `Mixed | `Replica ]; cvar : float; mean : float }

type cell = {
  mtbf_factor : float;
  mtbf : float;
  rho : float;
  policies : policy list;
  best_ckpt : float;
  best_mixed : float;
  mixed_wins : bool;
}

let bench_cell ~g ~total_weight ~traces mtbf_factor rho =
  let mtbf = mtbf_factor *. total_weight in
  let model = FM.of_mtbf ~mtbf ~downtime () in
  let outcomes =
    List.map
      (fun ckpt ->
        ( ckpt,
          Heuristics.run ~search:(Heuristics.Grid 12) model g
            ~lin:Wfc_dag.Linearize.Depth_first ~ckpt ))
      heuristics
  in
  (* replica-only: no checkpoints at all, replicas on the DF order *)
  let bare =
    Schedule.no_checkpoints g ~order:(Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g)
  in
  let replica_only =
    Schedule.with_replicas bare
      (Heuristics.replication_counts ~cost:rho spec model g ~sched:bare)
  in
  let candidates =
    List.concat_map
      (fun (ckpt, o) ->
        let base = Heuristics.name Wfc_dag.Linearize.Depth_first ckpt in
        let mixed = Heuristics.replicate ~cost:rho spec model g o in
        Robust.static ~name:base g o.Heuristics.schedule
        ::
        (if Schedule.is_replicated mixed.Heuristics.schedule then
           [
             Robust.static ~replica_cost:rho ~name:(base ^ "+R") g
               mixed.Heuristics.schedule;
           ]
         else []))
      outcomes
    @
    if Schedule.is_replicated replica_only then
      [ Robust.static ~replica_cost:rho ~name:"replica-only" g replica_only ]
    else []
  in
  let scenarios =
    [
      {
        Robust.name = "exponential";
        failures = Dist.exponential ~rate:(1. /. mtbf);
        downtime = Dist.constant downtime;
      };
    ]
  in
  let r =
    Robust.evaluate ~traces_per_scenario:traces ~seed:13
      ~min_uptime:(300. *. total_weight) ~criterion:(Robust.CVaR 0.95)
      ~scenarios candidates
  in
  let policies =
    List.map
      (fun s ->
        let kind =
          if s.Robust.candidate = "replica-only" then `Replica
          else if String.length s.Robust.candidate >= 2
                  && String.sub s.Robust.candidate
                       (String.length s.Robust.candidate - 2)
                       2
                     = "+R"
          then `Mixed
          else `Ckpt
        in
        { name = s.Robust.candidate; kind; cvar = s.Robust.cvar;
          mean = s.Robust.mean })
      r.Robust.scores
  in
  let best kind =
    List.fold_left
      (fun acc p -> if p.kind = kind then Float.min acc p.cvar else acc)
      Float.infinity policies
  in
  let best_ckpt = best `Ckpt and best_mixed = best `Mixed in
  {
    mtbf_factor;
    mtbf;
    rho;
    policies;
    best_ckpt;
    best_mixed;
    mixed_wins = best_mixed < best_ckpt;
  }

let json_of ~family ~n ~seed ~traces cells =
  let module J = Wfc_io.Json in
  J.Assoc
    [
      ("benchmark", J.String "replication_tradeoff");
      ( "workflow",
        J.String (Printf.sprintf "%s n=%d seed=%d" family n seed) );
      ("checkpoint_cost_fraction", J.Number ckpt_fraction);
      ("downtime", J.Number downtime);
      ("replication_policy", J.String (Replication.spec_name spec));
      ("traces_per_cell", J.Number (float_of_int traces));
      ("criterion", J.String "cvar@0.95");
      ( "cells",
        J.List
          (List.map
             (fun c ->
               J.Assoc
                 [
                   ("mtbf_over_total_weight", J.Number c.mtbf_factor);
                   ("mtbf", J.Number c.mtbf);
                   ("replica_cost", J.Number c.rho);
                   ( "policies",
                     J.List
                       (List.map
                          (fun p ->
                            J.Assoc
                              [
                                ("name", J.String p.name);
                                ("cvar", J.Number p.cvar);
                                ("mean", J.Number p.mean);
                              ])
                          c.policies) );
                   ("best_ckpt_cvar", J.Number c.best_ckpt);
                   (* null when the budget placed no replicas in this cell *)
                   ( "best_mixed_cvar",
                     if Float.is_finite c.best_mixed then J.Number c.best_mixed
                     else J.Null );
                   ("mixed_wins", J.Bool c.mixed_wins);
                 ])
             cells) );
    ]

let run () =
  print_endline "== checkpoint-vs-replica trade-off (CVaR on shared traces) ==";
  let family, n, seed = ("Montage", 30, 7) in
  let traces =
    match Sys.getenv_opt "TRACES" with
    | Some s -> Int.max 1 (try int_of_string s with Failure _ -> 200)
    | None -> 200
  in
  let g =
    CM.apply (CM.Proportional ckpt_fraction) (P.generate P.Montage ~n ~seed)
  in
  let total_weight = Wfc_dag.Dag.total_weight g in
  let cells =
    List.concat_map
      (fun f ->
        List.map (fun rho -> bench_cell ~g ~total_weight ~traces f rho) rhos)
      mtbf_factors
  in
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "MTBF/W"; "rho"; "best ckpt cvar"; "best mixed cvar"; "mixed wins" ]
  in
  List.iter
    (fun c ->
      Wfc_reporting.Table.add_row table
        [
          Printf.sprintf "%g" c.mtbf_factor;
          Printf.sprintf "%g" c.rho;
          Printf.sprintf "%.1f" c.best_ckpt;
          (if Float.is_finite c.best_mixed then Printf.sprintf "%.1f" c.best_mixed
           else "(none placed)");
          string_of_bool c.mixed_wins;
        ])
    cells;
  Wfc_reporting.Table.print table;
  let path = "BENCH_replication.json" in
  let oc = open_out path in
  output_string oc (Wfc_io.Json.to_string (json_of ~family ~n ~seed ~traces cells));
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" path;
  (* the regression guard: replication must pay for itself somewhere, and in
     particular in its most favorable cell — frequent failures, cheap
     replicas, expensive checkpoints *)
  let favorable =
    List.find
      (fun c ->
        c.mtbf_factor = List.fold_left Float.min infinity mtbf_factors
        && c.rho = List.fold_left Float.min infinity rhos)
      cells
  in
  let failures = ref [] in
  if not (List.exists (fun c -> c.mixed_wins) cells) then
    failures := "no swept cell has mixed beating checkpoint-only on CVaR" :: !failures;
  if not favorable.mixed_wins then
    failures :=
      Printf.sprintf
        "favorable cell (MTBF/W=%g, rho=%g): mixed cvar %.2f does not beat \
         checkpoint-only cvar %.2f"
        favorable.mtbf_factor favorable.rho favorable.best_mixed
        favorable.best_ckpt
      :: !failures;
  match !failures with
  | [] -> print_endline "replication guard: PASS"
  | msgs ->
      List.iter (fun m -> Printf.printf "replication guard: FAIL %s\n" m) msgs;
      exit 1
