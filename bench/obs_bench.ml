(* Observability overhead guard. Two questions, one run:

   1. With metrics and tracing DISABLED (the default), is the instrumented
      engine still as fast as the pinned BENCH_engine.json baselines? The
      instrumentation must cost one atomic load per flush point, so the
      engine-side timings have to land within noise of the file.
   2. With everything ENABLED, how much does recording actually cost?

   Run with: FIG=obs dune exec bench/main.exe *)

open Wfc_core
module Json = Wfc_io.Json
module Metrics = Wfc_obs.Metrics
module Trace = Wfc_obs.Trace
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model

(* BENCH_engine.json pins medians measured in a separate process; run-to-run
   scheduler noise on shared machines reaches tens of percent, while the
   min-of-N timings below vary by a few. 25% headroom separates
   "instrumentation made the engine slower" from that noise; the on/off
   column, measured back to back in this process, is the precise signal. *)
let tolerance = 0.25

(* Minimum wall time over [repeats] identical executions: the min estimator
   discards scheduler preemptions and GC pauses instead of averaging them
   in, so it is the most repeatable point estimate of the true cost. *)
let time ?(repeats = 5) f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let model = FM.make ~lambda:1e-3 ()

let instance family n =
  let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n ~seed:7) in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  (g, order)

(* The four engine-side workloads of Engine_bench, reduced to thunks whose
   state is identical on every execution so min-of-N compares like with
   like. Names match BENCH_engine.json rows. *)
let workloads () =
  let g200, order200 = instance P.Ligo 200 in
  let g20, order20 = instance P.Genome 20 in
  let n = Array.length order200 in
  let engine = Eval_engine.create model g200 ~order:order200 in
  ignore (Eval_engine.makespan engine);
  let flips = 2 * n * 5 in
  let single_flip () =
    (* an even number of passes over every position leaves the flag vector
       exactly as it started: every execution times the same flip sequence *)
    let i = ref 0 in
    for _ = 1 to flips do
      ignore (Eval_engine.flip engine (!i mod n));
      incr i
    done
  in
  let sweep () =
    Heuristics.run ~search:Heuristics.Exhaustive
      ~backend:Eval_engine.Incremental model g200
      ~lin:Wfc_dag.Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight
  in
  let flags =
    Heuristics.checkpoint_flags Heuristics.Ckpt_weight g200 ~order:order200
      ~n_ckpt:50
  in
  let seed_sched = Schedule.make g200 ~order:order200 ~checkpointed:flags in
  let local_search () =
    Local_search.improve ~backend:Eval_engine.Incremental model g200 seed_sched
  in
  let exact () =
    Exact_solver.optimal_checkpoints_within ~backend:Eval_engine.Incremental
      ~max_nodes:200_000 model g20 ~order:order20
  in
  [
    ( "single-flip/Ligo/n=200",
      fun () -> time single_flip /. float_of_int flips );
    ("ckptw-exhaustive/Ligo/n=200", fun () -> time (fun () -> sweep ()));
    ("local-search/Ligo/n=200", fun () -> time (fun () -> local_search ()));
    ("exact-bnb/Genome/n=20", fun () -> time (fun () -> exact ()));
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* name -> engine_seconds from BENCH_engine.json *)
let baseline () =
  let ( let* ) = Json.( let* ) in
  let decode json =
    let* results = Json.member "results" json in
    let* rows = Json.to_list results in
    List.fold_left
      (fun acc row ->
        let* acc = acc in
        let* name = Json.member "name" row in
        let* name = Json.to_string_value name in
        let* s = Json.member "engine_seconds" row in
        let* s = Json.to_float s in
        Ok ((name, s) :: acc))
      (Ok []) rows
  in
  match Json.of_string (read_file "BENCH_engine.json") with
  | Ok json -> (
      match decode json with
      | Ok rows -> rows
      | Error e -> failwith ("BENCH_engine.json: " ^ e))
  | Error e -> failwith ("BENCH_engine.json: " ^ e)

let run () =
  print_endline "== observability overhead (FIG=obs) ==";
  let pinned = baseline () in
  let ws = workloads () in
  Metrics.set_enabled false;
  Trace.set_enabled false;
  (* one discarded pass so code, data and allocator are warm *)
  List.iter (fun (_, f) -> ignore (f ())) ws;
  let disabled = List.map (fun (name, f) -> (name, f ())) ws in
  Metrics.set_enabled true;
  Trace.set_enabled true;
  let enabled = List.map (fun (name, f) -> (name, f ())) ws in
  Metrics.set_enabled false;
  Trace.set_enabled false;
  Trace.reset ();
  Metrics.reset ();
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "benchmark"; "pinned"; "obs off"; "off/pinned"; "obs on"; "on/off" ]
  in
  let worst = ref 0. in
  List.iter2
    (fun (name, off_s) (_, on_s) ->
      let base =
        match List.assoc_opt name pinned with
        | Some s -> s
        | None -> failwith ("no pinned baseline for " ^ name)
      in
      worst := Float.max !worst ((off_s /. base) -. 1.);
      Wfc_reporting.Table.add_row table
        [
          name;
          Printf.sprintf "%.3f ms" (base *. 1e3);
          Printf.sprintf "%.3f ms" (off_s *. 1e3);
          Printf.sprintf "%.3f" (off_s /. base);
          Printf.sprintf "%.3f ms" (on_s *. 1e3);
          Printf.sprintf "%.3f" (on_s /. off_s);
        ])
    disabled enabled;
  Wfc_reporting.Table.print table;
  if !worst > tolerance then begin
    Printf.printf
      "FAIL: disabled-path overhead %.1f%% exceeds the %.0f%% guard — \
       instrumentation is costing the engine throughput\n"
      (!worst *. 100.) (tolerance *. 100.);
    exit 1
  end
  else
    Printf.printf
      "OK: disabled-path timings within %.0f%% of BENCH_engine.json (worst \
       %+.1f%%)\n"
      (tolerance *. 100.) (!worst *. 100.)
