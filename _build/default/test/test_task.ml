open Wfc_dag

let check = Alcotest.(check bool)

let test_make_defaults () =
  let t = Task.make ~id:3 ~weight:7.5 () in
  Alcotest.(check int) "id" 3 t.Task.id;
  Alcotest.(check string) "label" "T3" t.Task.label;
  Alcotest.(check (float 0.)) "weight" 7.5 t.Task.weight;
  Alcotest.(check (float 0.)) "ckpt" 0. t.Task.checkpoint_cost;
  Alcotest.(check (float 0.)) "rec" 0. t.Task.recovery_cost

let test_make_full () =
  let t =
    Task.make ~id:0 ~label:"mAdd_2" ~weight:18. ~checkpoint_cost:1.8
      ~recovery_cost:1.5 ()
  in
  Alcotest.(check string) "label" "mAdd_2" t.Task.label;
  Alcotest.(check (float 0.)) "ckpt" 1.8 t.Task.checkpoint_cost;
  Alcotest.(check (float 0.)) "rec" 1.5 t.Task.recovery_cost

let test_zero_weight_allowed () =
  let t = Task.make ~id:0 ~weight:0. () in
  Alcotest.(check (float 0.)) "weight" 0. t.Task.weight

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_validation () =
  expect_invalid (fun () -> Task.make ~id:(-1) ~weight:1. ());
  expect_invalid (fun () -> Task.make ~id:0 ~weight:(-1.) ());
  expect_invalid (fun () -> Task.make ~id:0 ~weight:Float.nan ());
  expect_invalid (fun () -> Task.make ~id:0 ~weight:infinity ());
  expect_invalid (fun () -> Task.make ~id:0 ~weight:1. ~checkpoint_cost:(-0.1) ());
  expect_invalid (fun () -> Task.make ~id:0 ~weight:1. ~recovery_cost:Float.nan ())

let test_with_costs () =
  let t = Task.make ~id:1 ~weight:4. () in
  let t' = Task.with_costs t ~checkpoint_cost:0.4 ~recovery_cost:0.3 in
  Alcotest.(check (float 0.)) "new ckpt" 0.4 t'.Task.checkpoint_cost;
  Alcotest.(check (float 0.)) "new rec" 0.3 t'.Task.recovery_cost;
  Alcotest.(check (float 0.)) "old untouched" 0. t.Task.checkpoint_cost;
  expect_invalid (fun () ->
      Task.with_costs t ~checkpoint_cost:(-1.) ~recovery_cost:0.)

let test_with_weight () =
  let t = Task.make ~id:1 ~weight:4. () in
  let t' = Task.with_weight t ~weight:9. in
  Alcotest.(check (float 0.)) "new weight" 9. t'.Task.weight;
  expect_invalid (fun () -> Task.with_weight t ~weight:(-2.))

let test_equal_compare () =
  let a = Task.make ~id:1 ~weight:4. () in
  let b = Task.make ~id:1 ~weight:4. () in
  let c = Task.make ~id:2 ~weight:4. () in
  check "equal" true (Task.equal a b);
  check "not equal" false (Task.equal a c);
  check "relabel differs" false (Task.equal a (Task.relabel a "x"));
  Alcotest.(check int) "compare" (-1) (Task.compare_by_id a c)

let test_pp () =
  let t = Task.make ~id:2 ~weight:10. ~checkpoint_cost:1. ~recovery_cost:0.5 () in
  Alcotest.(check string) "to_string" "T2(w=10,c=1,r=0.5)" (Task.to_string t)

let () =
  Alcotest.run "task"
    [
      ( "task",
        [
          Alcotest.test_case "make defaults" `Quick test_make_defaults;
          Alcotest.test_case "make full" `Quick test_make_full;
          Alcotest.test_case "zero weight allowed" `Quick test_zero_weight_allowed;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "with_costs" `Quick test_with_costs;
          Alcotest.test_case "with_weight" `Quick test_with_weight;
          Alcotest.test_case "equal/compare" `Quick test_equal_compare;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
    ]
