open Wfc_core
open Wfc_simulator
module D = Wfc_platform.Distribution
module Builders = Wfc_dag.Builders
module Stats = Wfc_platform.Stats

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* a failure law that never fires, for deterministic checks *)
let never = D.exponential ~rate:1e-30

let params ?(interference = 0.) ?(failures = never) ?(downtime = 0.) () =
  { Sim_overlap.interference; failures; downtime }

let chain () =
  Builders.chain
    ~weights:[| 5.; 7.; 3.; 6. |]
    ~checkpoint_cost:(fun _ _ -> 2.)
    ~recovery_cost:(fun _ _ -> 1.)
    ()

let all_ckpt g = Schedule.all_checkpoints g ~order:(Array.init (Wfc_dag.Dag.n_tasks g) Fun.id)

let test_validation () =
  let g = chain () in
  let s = all_ckpt g in
  let rng = Wfc_platform.Rng.create 1 in
  expect_invalid (fun () ->
      ignore (Sim_overlap.run ~rng (params ~interference:1.5 ()) g s));
  expect_invalid (fun () ->
      ignore (Sim_overlap.run ~rng (params ~downtime:(-1.) ()) g s))

let test_fail_free_full_overlap () =
  (* interference 0, no failures: checkpoints are free, makespan = W *)
  let g = chain () in
  let s = all_ckpt g in
  let rng = Wfc_platform.Rng.create 1 in
  let r = Sim_overlap.run ~rng (params ()) g s in
  Wfc_test_util.check_close "makespan = W" 21. r.Sim.makespan;
  Alcotest.(check int) "no failures" 0 r.Sim.failures;
  Wfc_test_util.check_close "no waste" 0. r.Sim.wasted

let test_fail_free_full_interference () =
  (* interference 1: compute stalls while the channel writes. Chain of 4
     tasks, c = 2 each: the first three checkpoints serialize (each write
     stalls the next task); the last write happens after the final compute
     and does not count. Expected makespan = W + 3 * c. *)
  let g = chain () in
  let s = all_ckpt g in
  let rng = Wfc_platform.Rng.create 1 in
  let r = Sim_overlap.run ~rng (params ~interference:1. ()) g s in
  Wfc_test_util.check_close "fully serialized writes" (21. +. 6.) r.Sim.makespan

let test_fail_free_between_bounds () =
  let g = chain () in
  let s = all_ckpt g in
  List.iter
    (fun interference ->
      let rng = Wfc_platform.Rng.create 1 in
      let r = Sim_overlap.run ~rng (params ~interference ()) g s in
      if r.Sim.makespan < 21. -. 1e-9 || r.Sim.makespan > 27. +. 1e-9 then
        Alcotest.failf "interference %.1f: makespan %.2f outside [21, 27]"
          interference r.Sim.makespan)
    [ 0.; 0.1; 0.3; 0.5; 0.9; 1. ]

let test_partial_interference_value () =
  (* interference 0.5, chain, all checkpointed, no failures. Task 2's compute
     (7 s at half speed while the 2 s write of task 1 drains, then full
     speed): write takes 2 s wall, during which 1 s of compute is done;
     remaining 6 s at full speed -> 8 s. Same per subsequent task: each
     2 s write delays its successor by 1 s. Makespan = 21 + 3 * 1 = 24. *)
  let g = chain () in
  let s = all_ckpt g in
  let rng = Wfc_platform.Rng.create 1 in
  let r = Sim_overlap.run ~rng (params ~interference:0.5 ()) g s in
  Wfc_test_util.check_close "half interference" 24. r.Sim.makespan

let test_no_checkpoints_ignores_channel () =
  let g = chain () in
  let s = Schedule.no_checkpoints g ~order:[| 0; 1; 2; 3 |] in
  List.iter
    (fun interference ->
      let rng = Wfc_platform.Rng.create 1 in
      let r = Sim_overlap.run ~rng (params ~interference ()) g s in
      Wfc_test_util.check_close "W regardless of interference" 21. r.Sim.makespan)
    [ 0.; 1. ]

let test_overlap_beats_blocking_statistically () =
  (* free overlap (s = 0) must beat blocking checkpoints on average: same
     protection, zero cost *)
  let g =
    Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Proportional 0.1)
      (Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Cybershake ~n:40
         ~seed:6)
  in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  let s = Schedule.all_checkpoints g ~order in
  let lambda = 2e-3 in
  let model = Wfc_platform.Failure_model.make ~lambda () in
  let blocking = Monte_carlo.estimate ~runs:20_000 ~seed:8 model g s in
  let overlap =
    Monte_carlo.estimate_overlap ~runs:20_000 ~seed:8
      (params ~failures:(D.exponential ~rate:lambda) ())
      g s
  in
  let b = Stats.mean blocking.Monte_carlo.makespan in
  let o = Stats.mean overlap.Monte_carlo.makespan in
  Alcotest.(check bool)
    (Printf.sprintf "overlap %.1f < blocking %.1f" o b)
    true (o < b)

let test_failure_aborts_inflight_write () =
  (* Deterministic scenario via a two-point failure process is hard to build
     from a distribution, so check the semantics statistically: with harsh
     failures and slow writes, some runs must pay re-executions of tasks
     whose checkpoint never completed — the wasted time then exceeds the
     fail-free waste of 0. *)
  let g = chain () in
  let s = all_ckpt g in
  let est =
    Monte_carlo.estimate_overlap ~runs:5000 ~seed:10
      (params ~failures:(D.exponential ~rate:0.05) ~downtime:1. ())
      g s
  in
  Alcotest.(check bool) "failures occurred" true
    (Stats.mean est.Monte_carlo.failures > 0.5);
  Alcotest.(check bool) "waste observed" true
    (Stats.mean est.Monte_carlo.wasted > 0.)

let test_makespan_equals_work_plus_waste () =
  let g = chain () in
  let s = all_ckpt g in
  let rng = Wfc_platform.Rng.create 12 in
  for _ = 1 to 100 do
    let r =
      Sim_overlap.run ~rng
        (params ~failures:(D.exponential ~rate:0.02) ~downtime:0.5
           ~interference:0.3 ())
        g s
    in
    Wfc_test_util.check_close "identity" r.Sim.makespan (21. +. r.Sim.wasted)
  done

let () =
  Alcotest.run "overlap"
    [
      ( "overlap",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "fail-free, free overlap" `Quick
            test_fail_free_full_overlap;
          Alcotest.test_case "fail-free, full interference" `Quick
            test_fail_free_full_interference;
          Alcotest.test_case "fail-free bounds" `Quick
            test_fail_free_between_bounds;
          Alcotest.test_case "half interference value" `Quick
            test_partial_interference_value;
          Alcotest.test_case "no checkpoints" `Quick
            test_no_checkpoints_ignores_channel;
          Alcotest.test_case "beats blocking" `Slow
            test_overlap_beats_blocking_statistically;
          Alcotest.test_case "aborted writes cost" `Slow
            test_failure_aborts_inflight_write;
          Alcotest.test_case "waste identity" `Quick
            test_makespan_equals_work_plus_waste;
        ] );
    ]
