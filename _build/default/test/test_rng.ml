module Rng = Wfc_platform.Rng
module Stats = Wfc_platform.Stats

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_split_independence () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  (* drawing from b must not change a's subsequent stream relative to a
     clone of its state *)
  let a' = Rng.copy a in
  for _ = 1 to 10 do
    ignore (Rng.bits64 b)
  done;
  Alcotest.(check int64) "parent unaffected by child draws" (Rng.bits64 a')
    (Rng.bits64 a)

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.fail "out of range"
  done;
  expect_invalid (fun () -> ignore (Rng.int rng 0));
  expect_invalid (fun () -> ignore (Rng.int rng (-3)))

let test_int_covers_all () =
  let rng = Rng.create 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_uniform_range_and_mean () =
  let rng = Rng.create 9 in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    let u = Rng.uniform rng in
    if u < 0. || u >= 1. then Alcotest.fail "uniform out of range";
    Stats.add s u
  done;
  Wfc_test_util.check_close ~eps:0.01 "mean ~ 1/2" 0.5 (Stats.mean s)

let test_float_bound () =
  let rng = Rng.create 10 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 3.5 in
    if x < 0. || x >= 3.5 then Alcotest.fail "float out of range"
  done

let test_exponential_mean () =
  let rng = Rng.create 11 in
  let s = Stats.create () in
  let rate = 0.25 in
  for _ = 1 to 100_000 do
    let x = Rng.exponential rng ~rate in
    if x < 0. then Alcotest.fail "negative exponential";
    Stats.add s x
  done;
  (* mean 4, stderr ~ 4/sqrt(1e5) ~ 0.0126; allow 5 sigma *)
  Wfc_test_util.check_close ~eps:0.02 "mean ~ 1/rate" 4. (Stats.mean s);
  expect_invalid (fun () -> ignore (Rng.exponential rng ~rate:0.))

let test_exponential_memoryless_quantile () =
  (* P(X > t) = e^{-rate t}; check the empirical survival at one point *)
  let rng = Rng.create 12 in
  let rate = 0.5 and t = 3. in
  let n = 100_000 in
  let above = ref 0 in
  for _ = 1 to n do
    if Rng.exponential rng ~rate > t then incr above
  done;
  Wfc_test_util.check_close ~eps:0.01 "survival"
    (Float.exp (-.rate *. t))
    (float_of_int !above /. float_of_int n)

let test_gaussian () =
  let rng = Rng.create 13 in
  let s = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add s (Rng.gaussian rng ~mean:10. ~stddev:2.)
  done;
  Wfc_test_util.check_close ~eps:0.01 "mean" 10. (Stats.mean s);
  Wfc_test_util.check_close ~eps:0.05 "stddev" 2. (Stats.stddev s);
  expect_invalid (fun () -> ignore (Rng.gaussian rng ~mean:0. ~stddev:(-1.)))

let test_truncated_gaussian () =
  let rng = Rng.create 14 in
  for _ = 1 to 10_000 do
    let x = Rng.truncated_gaussian rng ~mean:1. ~stddev:5. ~lo:0.5 in
    if x < 0.5 then Alcotest.fail "below truncation"
  done;
  expect_invalid (fun () ->
      ignore (Rng.truncated_gaussian rng ~mean:0. ~stddev:1. ~lo:1.))

let () =
  Alcotest.run "rng"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int covers all" `Quick test_int_covers_all;
          Alcotest.test_case "uniform" `Quick test_uniform_range_and_mean;
          Alcotest.test_case "float bound" `Quick test_float_bound;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "exponential survival" `Slow
            test_exponential_memoryless_quantile;
          Alcotest.test_case "gaussian" `Slow test_gaussian;
          Alcotest.test_case "truncated gaussian" `Quick test_truncated_gaussian;
        ] );
    ]
