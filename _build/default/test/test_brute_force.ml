open Wfc_core
module Dag = Wfc_dag.Dag
module Builders = Wfc_dag.Builders
module FM = Wfc_platform.Failure_model

let test_linearizations_of_chain () =
  let g = Builders.chain ~weights:[| 1.; 1.; 1. |] () in
  Alcotest.(check int) "unique" 1 (List.length (Brute_force.linearizations g))

let test_linearizations_of_diamond () =
  (* source, 3 interchangeable middles, sink: 3! orders *)
  let g = Builders.diamond ~width:3 () in
  let ls = Brute_force.linearizations g in
  Alcotest.(check int) "3! orders" 6 (List.length ls);
  List.iter
    (fun order ->
      Alcotest.(check bool) "valid" true (Dag.is_linearization g order))
    ls;
  (* all distinct *)
  Alcotest.(check int) "distinct" 6
    (List.length (List.sort_uniq compare ls))

let test_linearizations_of_independent_tasks () =
  let g = Dag.of_weights ~weights:[| 1.; 1.; 1.; 1. |] ~edges:[] () in
  Alcotest.(check int) "4!" 24 (List.length (Brute_force.linearizations g))

let test_linearizations_limit () =
  let g = Dag.of_weights ~weights:(Array.make 8 1.) ~edges:[] () in
  match Brute_force.linearizations ~limit:100 g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "8! > 100 should exceed the limit"

let test_optimal_guards () =
  let big = Dag.of_weights ~weights:(Array.make 10 1.) ~edges:[] () in
  (match Brute_force.optimal (FM.make ~lambda:0.1 ()) big with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 10 should be refused");
  let wide = Dag.of_weights ~weights:(Array.make 17 1.) ~edges:[] () in
  match
    Brute_force.optimal_checkpoints_for_order (FM.make ~lambda:0.1 ()) wide
      ~order:(Array.init 17 Fun.id)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 17 should be refused"

let test_optimal_on_known_instance () =
  (* fail-free: the optimum is any order with zero checkpoints, T_inf *)
  let g = Builders.diamond ~width:2 () in
  let s, m = Brute_force.optimal FM.fail_free g in
  Wfc_test_util.check_close "T_inf" 4. m;
  Alcotest.(check int) "no checkpoints" 0 (Schedule.checkpoint_count s)

let test_optimal_beats_every_heuristic_even_linearization () =
  let g =
    Dag.of_weights
      ~checkpoint_cost:(fun _ w -> 0.3 *. w)
      ~recovery_cost:(fun _ w -> 0.3 *. w)
      ~weights:[| 3.; 1.; 4.; 1.; 5. |]
      ~edges:[ (0, 2); (1, 2); (2, 3); (2, 4) ]
      ()
  in
  let model = FM.make ~lambda:0.15 ~downtime:1. () in
  let _, opt = Brute_force.optimal model g in
  (* exhaustive over every linearization x exact checkpoint subsets via the
     B&B gives the same optimum *)
  let best_via_bnb =
    List.fold_left
      (fun acc order ->
        Float.min acc
          (Exact_solver.optimal_checkpoints model g ~order).Exact_solver.makespan)
      infinity
      (Brute_force.linearizations g)
  in
  Wfc_test_util.check_close ~eps:1e-9 "B&B sweep = brute force" best_via_bnb opt

let () =
  Alcotest.run "brute_force"
    [
      ( "brute_force",
        [
          Alcotest.test_case "chain" `Quick test_linearizations_of_chain;
          Alcotest.test_case "diamond" `Quick test_linearizations_of_diamond;
          Alcotest.test_case "independent" `Quick
            test_linearizations_of_independent_tasks;
          Alcotest.test_case "limit" `Quick test_linearizations_limit;
          Alcotest.test_case "size guards" `Quick test_optimal_guards;
          Alcotest.test_case "known instance" `Quick test_optimal_on_known_instance;
          Alcotest.test_case "B&B sweep agreement" `Slow
            test_optimal_beats_every_heuristic_even_linearization;
        ] );
    ]
