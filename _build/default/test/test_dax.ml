open Wfc_io
module Dag = Wfc_dag.Dag

let expect_error = function
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error"

(* ---- XML parser ---- *)

let parse_ok s =
  match Xml.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_xml_basics () =
  let x = parse_ok "<a b=\"1\" c='two'><d/>text<e>inner</e></a>" in
  Alcotest.(check (option string)) "name" (Some "a") (Xml.name x);
  Alcotest.(check (option string)) "attr b" (Some "1") (Xml.attr "b" x);
  Alcotest.(check (option string)) "attr c" (Some "two") (Xml.attr "c" x);
  Alcotest.(check (option string)) "missing attr" None (Xml.attr "z" x);
  Alcotest.(check int) "children" 3 (List.length (Xml.children x));
  Alcotest.(check int) "elements" 2 (List.length (Xml.elements x));
  Alcotest.(check int) "named" 1 (List.length (Xml.elements ~named:"d" x));
  Alcotest.(check string) "text" "textinner" (Xml.text_content x)

let test_xml_prolog_and_comments () =
  let x =
    parse_ok
      "<?xml version=\"1.0\"?>\n<!-- hello --><root><!-- inner --><a/></root>"
  in
  Alcotest.(check (option string)) "root" (Some "root") (Xml.name x);
  Alcotest.(check int) "comment dropped" 1 (List.length (Xml.children x))

let test_xml_entities () =
  let x = parse_ok "<a t=\"&lt;&amp;&gt;\">x &amp; y &#65;</a>" in
  Alcotest.(check (option string)) "attr entities" (Some "<&>") (Xml.attr "t" x);
  Alcotest.(check string) "text entities" "x & y A" (Xml.text_content x)

let test_xml_cdata () =
  let x = parse_ok "<a><![CDATA[<raw & stuff>]]></a>" in
  Alcotest.(check string) "cdata" "<raw & stuff>" (Xml.text_content x)

let test_xml_errors () =
  List.iter
    (fun s -> expect_error (Xml.of_string s))
    [ ""; "<a>"; "<a></b>"; "<a x></a>"; "<a x=1/>"; "<a/><b/>";
      "<!DOCTYPE html><a/>"; "<a>&unknown;</a>" ]

let test_xml_roundtrip () =
  (* pretty-printing reflows text nodes, so compare modulo trimming *)
  let rec normalize = function
    | Xml.Element (n, a, kids) -> Xml.Element (n, a, List.map normalize kids)
    | Xml.Text t -> Xml.Text (String.trim t)
  in
  let x =
    Xml.Element
      ( "adag",
        [ ("name", "m<o>s&ic") ],
        [
          Xml.Element ("job", [ ("id", "ID1") ], []);
          Xml.Element ("child", [], [ Xml.Text "payload & more" ]);
        ] )
  in
  Alcotest.(check bool) "roundtrip" true
    (normalize (parse_ok (Xml.to_string x)) = normalize x)

(* ---- DAX ---- *)

let sample_dax =
  {|<?xml version="1.0" encoding="UTF-8"?>
<adag name="diamond">
  <job id="ID0000001" name="preprocess" runtime="12.5"/>
  <job id="ID0000002" name="findrange" runtime="4"/>
  <job id="ID0000003" name="findrange" runtime="6"/>
  <job id="ID0000004" name="analyze" runtime="3.25"/>
  <child ref="ID0000002"><parent ref="ID0000001"/></child>
  <child ref="ID0000003"><parent ref="ID0000001"/></child>
  <child ref="ID0000004">
    <parent ref="ID0000002"/>
    <parent ref="ID0000003"/>
  </child>
</adag>|}

let test_dax_import () =
  match Result.bind (Xml.of_string sample_dax) Dax.of_xml with
  | Error e -> Alcotest.failf "import failed: %s" e
  | Ok g ->
      Alcotest.(check int) "tasks" 4 (Dag.n_tasks g);
      Alcotest.(check int) "edges" 4 (Dag.n_edges g);
      Wfc_test_util.check_close "runtime" 12.5 (Dag.weight g 0);
      Alcotest.(check string) "label" "preprocess"
        (Dag.task g 0).Wfc_dag.Task.label;
      Alcotest.(check (list int)) "analyze preds" [ 1; 2 ] (Dag.preds g 3);
      Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources g)

let test_dax_roundtrip () =
  List.iter
    (fun fam ->
      let g = Wfc_workflows.Pegasus.generate fam ~n:40 ~seed:3 in
      let path = Filename.temp_file "wfc" ".dax" in
      Dax.save ~name:(Wfc_workflows.Pegasus.family_name fam) path g;
      (match Dax.load path with
      | Error e -> Alcotest.failf "reload failed: %s" e
      | Ok g' ->
          Alcotest.(check int) "tasks" (Dag.n_tasks g) (Dag.n_tasks g');
          Alcotest.(check bool) "edges equal" true (Dag.edges g = Dag.edges g');
          for v = 0 to Dag.n_tasks g - 1 do
            Wfc_test_util.check_close ~eps:1e-12 "weight" (Dag.weight g v)
              (Dag.weight g' v)
          done);
      Sys.remove path)
    Wfc_workflows.Pegasus.extended

let test_dax_errors () =
  let check s = expect_error (Result.bind (Xml.of_string s) Dax.of_xml) in
  check "<notadag/>";
  check "<adag name=\"x\"/>";
  check {|<adag><job name="a" runtime="1"/></adag>|};
  check {|<adag><job id="a" name="a"/></adag>|};
  check {|<adag><job id="a" runtime="-2"/></adag>|};
  check {|<adag><job id="a" runtime="1"/><job id="a" runtime="1"/></adag>|};
  check {|<adag><job id="a" runtime="1"/><child ref="zz"><parent ref="a"/></child></adag>|};
  (* cycle *)
  check
    {|<adag><job id="a" runtime="1"/><job id="b" runtime="1"/>
      <child ref="a"><parent ref="b"/></child>
      <child ref="b"><parent ref="a"/></child></adag>|}

let test_dax_schedulable_end_to_end () =
  match Result.bind (Xml.of_string sample_dax) Dax.of_xml with
  | Error e -> Alcotest.failf "import failed: %s" e
  | Ok g ->
      let g =
        Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Proportional 0.1) g
      in
      let model = Wfc_platform.Failure_model.make ~lambda:0.01 () in
      let o =
        Wfc_core.Heuristics.run model g ~lin:Wfc_dag.Linearize.Depth_first
          ~ckpt:Wfc_core.Heuristics.Ckpt_weight
      in
      Alcotest.(check bool) "finite makespan" true
        (Float.is_finite o.Wfc_core.Heuristics.makespan)

let () =
  Alcotest.run "dax"
    [
      ( "xml",
        [
          Alcotest.test_case "basics" `Quick test_xml_basics;
          Alcotest.test_case "prolog and comments" `Quick
            test_xml_prolog_and_comments;
          Alcotest.test_case "entities" `Quick test_xml_entities;
          Alcotest.test_case "cdata" `Quick test_xml_cdata;
          Alcotest.test_case "errors" `Quick test_xml_errors;
          Alcotest.test_case "roundtrip" `Quick test_xml_roundtrip;
        ] );
      ( "dax",
        [
          Alcotest.test_case "import" `Quick test_dax_import;
          Alcotest.test_case "roundtrip all families" `Quick test_dax_roundtrip;
          Alcotest.test_case "errors" `Quick test_dax_errors;
          Alcotest.test_case "schedulable end to end" `Quick
            test_dax_schedulable_end_to_end;
        ] );
    ]
