open Wfc_workflows
module Dag = Wfc_dag.Dag

let families = Pegasus.all

let test_exact_size () =
  List.iter
    (fun fam ->
      List.iter
        (fun n ->
          let g = Pegasus.generate fam ~n ~seed:1 in
          Alcotest.(check int)
            (Printf.sprintf "%s n=%d" (Pegasus.family_name fam) n)
            n (Dag.n_tasks g))
        [ 15; 16; 17; 50; 51; 99; 100; 137; 200; 700 ])
    families

let test_min_sizes () =
  List.iter
    (fun fam ->
      let n = Pegasus.min_size fam in
      let g = Pegasus.generate fam ~n ~seed:3 in
      Alcotest.(check int) "min size works" n (Dag.n_tasks g);
      match Pegasus.generate fam ~n:(n - 1) ~seed:3 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "below min size should fail")
    families

let test_validity () =
  List.iter
    (fun fam ->
      let g = Pegasus.generate fam ~n:120 ~seed:5 in
      Alcotest.(check bool) "acyclic and well-formed" true
        (Dag.is_linearization g (Dag.topological_order g));
      (* weights strictly positive *)
      Array.iter
        (fun t ->
          if t.Wfc_dag.Task.weight <= 0. then Alcotest.fail "bad weight")
        (Dag.tasks g);
      (* costs are zero until a cost model is applied *)
      Array.iter
        (fun t ->
          if t.Wfc_dag.Task.checkpoint_cost <> 0. then
            Alcotest.fail "unexpected checkpoint cost")
        (Dag.tasks g))
    families

let test_average_weights () =
  (* paper: Montage ~10 s, Ligo ~220 s, CyberShake ~25 s, Genome > 1000 s *)
  let bands =
    [ (Pegasus.Montage, 8., 14.); (Pegasus.Ligo, 180., 260.);
      (Pegasus.Cybershake, 18., 35.); (Pegasus.Genome, 950., 1400.) ]
  in
  List.iter
    (fun (fam, lo, hi) ->
      List.iter
        (fun n ->
          let g = Pegasus.generate fam ~n ~seed:11 in
          let avg = Dag.total_weight g /. float_of_int n in
          if avg < lo || avg > hi then
            Alcotest.failf "%s n=%d: average weight %g outside [%g, %g]"
              (Pegasus.family_name fam) n avg lo hi)
        [ 50; 200; 700 ])
    bands

let test_determinism () =
  List.iter
    (fun fam ->
      let a = Pegasus.generate fam ~n:80 ~seed:9 in
      let b = Pegasus.generate fam ~n:80 ~seed:9 in
      Alcotest.(check bool) "same structure" true (Dag.edges a = Dag.edges b);
      Alcotest.(check bool) "same weights" true
        (Array.for_all2 Wfc_dag.Task.equal (Dag.tasks a) (Dag.tasks b)))
    families

let test_seed_changes_weights () =
  let a = Pegasus.generate Pegasus.Montage ~n:80 ~seed:1 in
  let b = Pegasus.generate Pegasus.Montage ~n:80 ~seed:2 in
  Alcotest.(check bool) "weights differ" false
    (Array.for_all2 Wfc_dag.Task.equal (Dag.tasks a) (Dag.tasks b))

let test_montage_structure () =
  let g = Pegasus.generate Pegasus.Montage ~n:100 ~seed:1 in
  (* sources are the projections; single final JPEG sink *)
  let sinks = Dag.sinks g in
  Alcotest.(check int) "one sink" 1 (List.length sinks);
  let labels = Array.map (fun t -> t.Wfc_dag.Task.label) (Dag.tasks g) in
  Alcotest.(check bool) "has mProjectPP" true
    (Array.exists (fun l -> String.length l >= 10 && String.sub l 0 10 = "mProjectPP") labels);
  Alcotest.(check bool) "sink is the jpeg" true
    (String.sub labels.(List.hd sinks) 0 5 = "mJPEG")

let test_ligo_structure () =
  let g = Pegasus.generate Pegasus.Ligo ~n:100 ~seed:1 in
  (* sources are the template banks; exits are second-level thincas *)
  List.iter
    (fun v ->
      let l = (Dag.task g v).Wfc_dag.Task.label in
      Alcotest.(check bool) "source is TmpltBank" true
        (String.sub l 0 9 = "TmpltBank"))
    (Dag.sources g);
  Alcotest.(check bool) "several exit thincas" true
    (List.length (Dag.sinks g) >= 2)

let test_cybershake_structure () =
  let g = Pegasus.generate Pegasus.Cybershake ~n:100 ~seed:1 in
  let label v = (Dag.task g v).Wfc_dag.Task.label in
  List.iter
    (fun v ->
      Alcotest.(check bool) "source is ExtractSGT" true
        (String.sub (label v) 0 10 = "ExtractSGT"))
    (Dag.sources g);
  let sinks = Dag.sinks g in
  Alcotest.(check int) "two zips" 2 (List.length sinks)

let test_genome_structure () =
  let g = Pegasus.generate Pegasus.Genome ~n:100 ~seed:1 in
  let label v = (Dag.task g v).Wfc_dag.Task.label in
  let sinks = Dag.sinks g in
  Alcotest.(check int) "single pileup sink" 1 (List.length sinks);
  Alcotest.(check string) "sink label" "pileup_0" (label (List.hd sinks));
  List.iter
    (fun v ->
      Alcotest.(check bool) "source is fastQSplit" true
        (String.sub (label v) 0 10 = "fastQSplit"))
    (Dag.sources g)

let test_family_names () =
  List.iter
    (fun fam ->
      match Pegasus.family_of_string (Pegasus.family_name fam) with
      | Some f when f = fam -> ()
      | _ -> Alcotest.fail "family name round-trip")
    families;
  Alcotest.(check bool) "case insensitive" true
    (Pegasus.family_of_string "cybershake" = Some Pegasus.Cybershake);
  Alcotest.(check bool) "unknown" true (Pegasus.family_of_string "foo" = None)

let test_cost_model () =
  let g = Pegasus.generate Pegasus.Montage ~n:50 ~seed:1 in
  let prop = Cost_model.apply (Cost_model.Proportional 0.1) g in
  Array.iter
    (fun t ->
      Wfc_test_util.check_close "c = w/10" (0.1 *. t.Wfc_dag.Task.weight)
        t.Wfc_dag.Task.checkpoint_cost;
      Wfc_test_util.check_close "r = c" t.Wfc_dag.Task.checkpoint_cost
        t.Wfc_dag.Task.recovery_cost)
    (Dag.tasks prop);
  let const = Cost_model.apply (Cost_model.Constant 5.) g in
  Array.iter
    (fun t ->
      Alcotest.(check (float 0.)) "c = 5" 5. t.Wfc_dag.Task.checkpoint_cost)
    (Dag.tasks const);
  let half = Cost_model.apply ~recovery_factor:0.5 (Cost_model.Constant 4.) g in
  Array.iter
    (fun t ->
      Alcotest.(check (float 0.)) "r = c/2" 2. t.Wfc_dag.Task.recovery_cost)
    (Dag.tasks half);
  Alcotest.(check string) "prop name" "c=0.1w"
    (Cost_model.name (Cost_model.Proportional 0.1));
  Alcotest.(check string) "const name" "c=5s"
    (Cost_model.name (Cost_model.Constant 5.))

let test_job_type () =
  let jt = Job_type.make ~name:"map" ~mean_weight:100. ~cv:0.3 () in
  let rng = Wfc_platform.Rng.create 4 in
  let s = Wfc_platform.Stats.create () in
  for _ = 1 to 20_000 do
    let w = Job_type.sample_weight jt rng in
    if w < 10. then Alcotest.fail "below truncation floor";
    Wfc_platform.Stats.add s w
  done;
  Wfc_test_util.check_close ~eps:0.02 "mean" 100. (Wfc_platform.Stats.mean s);
  (match Job_type.make ~name:"x" ~mean_weight:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero mean accepted")

let test_builder_validation () =
  let rng = Wfc_platform.Rng.create 1 in
  let b = Builder.create ~rng in
  let jt = Job_type.make ~name:"a" ~mean_weight:1. () in
  let t0 = Builder.add_task b jt ~deps:[] in
  Alcotest.(check int) "first id" 0 t0;
  (match Builder.add_task b jt ~deps:[ 5 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "forward dep accepted");
  let b2 = Builder.create ~rng in
  match Builder.finalize b2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty builder finalized"

let () =
  Alcotest.run "workflows"
    [
      ( "workflows",
        [
          Alcotest.test_case "exact sizes" `Quick test_exact_size;
          Alcotest.test_case "min sizes" `Quick test_min_sizes;
          Alcotest.test_case "validity" `Quick test_validity;
          Alcotest.test_case "average weights" `Quick test_average_weights;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed changes weights" `Quick
            test_seed_changes_weights;
          Alcotest.test_case "montage structure" `Quick test_montage_structure;
          Alcotest.test_case "ligo structure" `Quick test_ligo_structure;
          Alcotest.test_case "cybershake structure" `Quick
            test_cybershake_structure;
          Alcotest.test_case "genome structure" `Quick test_genome_structure;
          Alcotest.test_case "family names" `Quick test_family_names;
          Alcotest.test_case "cost models" `Quick test_cost_model;
          Alcotest.test_case "job type sampling" `Slow test_job_type;
          Alcotest.test_case "builder validation" `Quick test_builder_validation;
        ] );
    ]
