open Wfc_core
open Wfc_simulator
module Dag = Wfc_dag.Dag
module Builders = Wfc_dag.Builders
module FM = Wfc_platform.Failure_model
module Stats = Wfc_platform.Stats

let test_fail_free_deterministic () =
  let g =
    Builders.chain ~weights:[| 1.; 2.; 3. |] ~checkpoint_cost:(fun _ _ -> 0.5) ()
  in
  let s =
    Schedule.make g ~order:[| 0; 1; 2 |] ~checkpointed:[| true; false; true |]
  in
  let rng = Wfc_platform.Rng.create 1 in
  let r = Sim.run ~rng FM.fail_free g s in
  Wfc_test_util.check_close "W + checkpoints" 7. r.Sim.makespan;
  Alcotest.(check int) "no failures" 0 r.Sim.failures;
  Alcotest.(check (float 0.)) "no waste" 0. r.Sim.wasted

let test_run_reproducible () =
  let g = Builders.chain ~weights:[| 4.; 5. |] () in
  let s = Schedule.no_checkpoints g ~order:[| 0; 1 |] in
  let model = FM.make ~lambda:0.2 ~downtime:1. () in
  let run seed =
    (Sim.run ~rng:(Wfc_platform.Rng.create seed) model g s).Sim.makespan
  in
  Wfc_test_util.check_close "same seed, same run" (run 5) (run 5)

let test_makespan_bounds () =
  let g = Builders.chain ~weights:[| 4.; 5. |] () in
  let s = Schedule.no_checkpoints g ~order:[| 0; 1 |] in
  let model = FM.make ~lambda:0.1 ~downtime:0.5 () in
  let rng = Wfc_platform.Rng.create 6 in
  for _ = 1 to 200 do
    let r = Sim.run ~rng model g s in
    if r.Sim.makespan < 9. then Alcotest.fail "below fail-free time";
    if r.Sim.wasted < 0. then Alcotest.fail "negative waste";
    Wfc_test_util.check_close "makespan = useful + wasted"
      (9. +. r.Sim.wasted) r.Sim.makespan
  done

let test_downtime_counted () =
  (* harsh rate: failures certain to occur; downtime inflates makespan *)
  let g = Builders.chain ~weights:[| 10. |] () in
  let s = Schedule.no_checkpoints g ~order:[| 0 |] in
  let sample downtime =
    let model = FM.make ~lambda:0.3 ~downtime () in
    let e = Monte_carlo.estimate ~runs:2000 ~seed:3 model g s in
    Stats.mean e.Monte_carlo.makespan
  in
  Alcotest.(check bool) "downtime increases makespan" true
    (sample 5. > sample 0. +. 1.)

let agreement_case name model g s =
  ( name,
    fun () ->
      let expected = Evaluator.expected_makespan model g s in
      let est = Monte_carlo.estimate ~runs:40_000 ~seed:17 model g s in
      if not (Monte_carlo.agrees_with est ~expected ~sigmas:5.) then
        Alcotest.failf "%s: analytic %.6g vs simulated %.6g (se %.3g)" name
          expected
          (Stats.mean est.Monte_carlo.makespan)
          (Stats.std_error est.Monte_carlo.makespan) )

let agreement_cases () =
  let figure1 =
    Dag.of_weights
      ~checkpoint_cost:(fun _ w -> 0.1 *. w)
      ~recovery_cost:(fun _ w -> 0.1 *. w)
      ~weights:[| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |]
      ~edges:[ (0, 3); (3, 4); (3, 5); (4, 6); (5, 6); (1, 2); (2, 7); (6, 7) ]
      ()
  in
  let fig1_sched =
    Schedule.make figure1 ~order:[| 0; 3; 1; 2; 4; 5; 6; 7 |]
      ~checkpointed:[| false; false; false; true; true; false; false; false |]
  in
  let chain =
    Builders.chain ~weights:[| 3.; 5.; 2.; 4. |]
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ~recovery_cost:(fun _ w -> 0.2 *. w)
      ()
  in
  let chain_sched =
    Schedule.make chain ~order:[| 0; 1; 2; 3 |]
      ~checkpointed:[| false; true; false; false |]
  in
  let join =
    Builders.join ~source_weights:[| 3.; 6.; 2. |] ~sink_weight:1.
      ~checkpoint_cost:(fun _ w -> 0.15 *. w)
      ~recovery_cost:(fun _ w -> 0.15 *. w)
      ()
  in
  let join_sched =
    Join_solver.schedule_of join ~ckpt:[| true; false; true; false |]
  in
  [
    agreement_case "figure 1 dag" (FM.make ~lambda:0.04 ~downtime:0.5 ()) figure1
      fig1_sched;
    agreement_case "figure 1 harsh" (FM.make ~lambda:0.15 ()) figure1 fig1_sched;
    agreement_case "chain" (FM.make ~lambda:0.08 ~downtime:1. ()) chain
      chain_sched;
    agreement_case "join" (FM.make ~lambda:0.1 ()) join join_sched;
  ]

let prop_simulator_matches_evaluator =
  (* statistical cross-validation on random DAGs: 5-sigma acceptance with
     fixed seeds keeps the flake probability negligible *)
  Wfc_test_util.qtest ~count:25 "simulated mean matches analytic expectation"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:8 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      let model = FM.make ~lambda:0.05 ~downtime:0.5 () in
      let expected = Evaluator.expected_makespan model g s in
      let est = Monte_carlo.estimate ~runs:20_000 ~seed:23 model g s in
      Monte_carlo.agrees_with est ~expected ~sigmas:5.5)

let test_failure_count_identity () =
  (* with zero downtime, failures strike at rate lambda throughout the whole
     execution, so E[#failures] = lambda * E[makespan] — an identity tying
     the analytic evaluator to the simulator's failure counter *)
  let g =
    Builders.chain ~weights:[| 3.; 5.; 2.; 4. |]
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ~recovery_cost:(fun _ w -> 0.2 *. w)
      ()
  in
  let s =
    Schedule.make g ~order:[| 0; 1; 2; 3 |]
      ~checkpointed:[| true; false; true; false |]
  in
  let lambda = 0.09 in
  let model = FM.make ~lambda () in
  let expected_failures =
    lambda *. Evaluator.expected_makespan model g s
  in
  let est = Monte_carlo.estimate ~runs:40_000 ~seed:15 model g s in
  let mean = Stats.mean est.Monte_carlo.failures in
  let se = Stats.std_error est.Monte_carlo.failures in
  if Float.abs (mean -. expected_failures) > 5. *. se then
    Alcotest.failf "failures %.4f vs lambda * E[T] = %.4f (se %.4f)" mean
      expected_failures se

let test_quantiles_of_makespan () =
  let g = Builders.chain ~weights:[| 5.; 5. |] () in
  let s = Schedule.no_checkpoints g ~order:[| 0; 1 |] in
  let model = FM.make ~lambda:0.05 () in
  let samples = Monte_carlo.makespan_samples ~runs:20_000 ~seed:19 model g s in
  let q50 = Wfc_platform.Sample_set.quantile samples 0.5 in
  let q99 = Wfc_platform.Sample_set.quantile samples 0.99 in
  Alcotest.(check bool) "median >= fail-free" true (q50 >= 10.);
  Alcotest.(check bool) "tail above median" true (q99 > q50);
  (* the mean of the samples agrees with the analytic expectation *)
  let expected = Evaluator.expected_makespan model g s in
  let stats = Wfc_platform.Sample_set.to_stats samples in
  if
    Float.abs (Stats.mean stats -. expected)
    > 5. *. Stats.std_error stats
  then Alcotest.fail "sample mean disagrees with evaluator"

let test_estimate_validation () =
  let g = Builders.chain ~weights:[| 1. |] () in
  let s = Schedule.no_checkpoints g ~order:[| 0 |] in
  match Monte_carlo.estimate ~runs:0 ~seed:1 (FM.make ~lambda:0.1 ()) g s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "runs = 0 accepted"

let test_failures_counted () =
  let g = Builders.chain ~weights:[| 10. |] () in
  let s = Schedule.no_checkpoints g ~order:[| 0 |] in
  let model = FM.make ~lambda:0.2 () in
  let est = Monte_carlo.estimate ~runs:5000 ~seed:9 model g s in
  (* geometric retries: expected failures = e^{lambda w} - 1 = e^2 - 1 *)
  let expected = Float.exp 2. -. 1. in
  let mean = Stats.mean est.Monte_carlo.failures in
  let se = Stats.std_error est.Monte_carlo.failures in
  if Float.abs (mean -. expected) > 5. *. se then
    Alcotest.failf "failure count %.3f vs expected %.3f (se %.3f)" mean expected se

let () =
  Alcotest.run "simulator"
    [
      ( "simulator",
        [
          Alcotest.test_case "fail-free deterministic" `Quick
            test_fail_free_deterministic;
          Alcotest.test_case "reproducible" `Quick test_run_reproducible;
          Alcotest.test_case "makespan bounds" `Quick test_makespan_bounds;
          Alcotest.test_case "downtime counted" `Slow test_downtime_counted;
          Alcotest.test_case "failures counted" `Slow test_failures_counted;
          Alcotest.test_case "failure-count identity" `Slow
            test_failure_count_identity;
          Alcotest.test_case "makespan quantiles" `Slow
            test_quantiles_of_makespan;
          Alcotest.test_case "estimate validation" `Quick test_estimate_validation;
        ] );
      ( "agreement",
        List.map
          (fun (name, f) -> Alcotest.test_case name `Slow f)
          (agreement_cases ())
        @ [ prop_simulator_matches_evaluator ] );
    ]
