open Wfc_dag

let figure1 () =
  Dag.of_weights
    ~weights:[| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |]
    ~edges:[ (0, 1); (0, 3); (1, 2); (3, 4); (2, 5); (4, 5); (4, 6); (2, 7); (6, 7) ]
    ()

let test_strategy_names () =
  List.iter
    (fun s ->
      match Linearize.strategy_of_string (Linearize.strategy_name s) with
      | Some s' when s' = s -> ()
      | _ -> Alcotest.fail "name round-trip failed")
    Linearize.all;
  Alcotest.(check bool) "df lowercase" true
    (Linearize.strategy_of_string "df" = Some Linearize.Depth_first);
  Alcotest.(check bool) "unknown" true (Linearize.strategy_of_string "zz" = None)

let test_all_valid () =
  let g = figure1 () in
  List.iter
    (fun s ->
      let order = Linearize.run s g in
      Alcotest.(check bool)
        (Linearize.strategy_name s ^ " valid")
        true
        (Dag.is_linearization g order))
    Linearize.all

let test_priority () =
  let g = figure1 () in
  let p = Linearize.priority g in
  Alcotest.(check (float 1e-9)) "p0" 6. p.(0);
  Alcotest.(check (float 1e-9)) "p4" 13. p.(4);
  Alcotest.(check (float 1e-9)) "p7" 0. p.(7)

let test_df_goes_deep () =
  (* Two independent chains a: 0->1, b: 2->3; source priorities equal, DF must
     finish the chain it starts before switching. *)
  let g =
    Dag.of_weights ~weights:[| 1.; 1.; 1.; 1. |] ~edges:[ (0, 1); (2, 3) ] ()
  in
  let order = Array.to_list (Linearize.run Linearize.Depth_first g) in
  let pos v = Option.get (List.find_index (Int.equal v) order) in
  Alcotest.(check bool) "chains not interleaved" true
    (abs (pos 1 - pos 0) = 1 && abs (pos 3 - pos 2) = 1)

let test_df_priority_first () =
  (* fork with unequal subtree weights: highest outweight source first *)
  let g =
    Dag.of_weights ~weights:[| 1.; 1.; 10.; 2. |] ~edges:[ (0, 2); (1, 3) ] ()
  in
  let order = Linearize.run Linearize.Depth_first g in
  Alcotest.(check int) "heavy branch first" 0 order.(0);
  Alcotest.(check int) "then its successor" 2 order.(1)

let test_bf_level_order () =
  let g = figure1 () in
  let order = Linearize.run Linearize.Breadth_first g in
  let lv = Dag.levels g in
  let seen = Array.to_list (Array.map (fun v -> lv.(v)) order) in
  (* BF never schedules a deeper task before a shallower ready one; since
     every level is fully ready once the previous one is done, the level
     sequence must be non-decreasing. *)
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "levels non-decreasing" true (non_decreasing seen)

let test_rf_uses_rand () =
  let g = figure1 () in
  let mk seed =
    let rng = Wfc_platform.Rng.create seed in
    Linearize.run ~rand:(fun b -> Wfc_platform.Rng.int rng b)
      Linearize.Random_first g
  in
  Alcotest.(check (array int)) "deterministic given seed" (mk 3) (mk 3);
  let all_valid =
    List.for_all (fun s -> Dag.is_linearization g (mk s))
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  Alcotest.(check bool) "always valid" true all_valid;
  let differs =
    List.exists (fun s -> mk s <> mk 0) [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  Alcotest.(check bool) "seeds explore different orders" true differs

let test_rf_default_deterministic () =
  let g = figure1 () in
  Alcotest.(check (array int)) "default rand fixed"
    (Linearize.run Linearize.Random_first g)
    (Linearize.run Linearize.Random_first g)

let test_single_task () =
  let g = Dag.of_weights ~weights:[| 2. |] ~edges:[] () in
  List.iter
    (fun s -> Alcotest.(check (array int)) "singleton" [| 0 |] (Linearize.run s g))
    Linearize.all

let prop_always_linearization =
  Wfc_test_util.qtest ~count:300 "run produces a linearization (random DAGs)"
    (Wfc_test_util.gen_dag ~max_n:12 ())
    (Format.asprintf "%a" Dag.pp_stats)
    (fun g ->
      List.for_all (fun s -> Dag.is_linearization g (Linearize.run s g))
        Linearize.all)

let () =
  Alcotest.run "linearize"
    [
      ( "linearize",
        [
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
          Alcotest.test_case "all valid on figure 1" `Quick test_all_valid;
          Alcotest.test_case "priority = outweight" `Quick test_priority;
          Alcotest.test_case "DF goes deep" `Quick test_df_goes_deep;
          Alcotest.test_case "DF picks heavy branch" `Quick test_df_priority_first;
          Alcotest.test_case "BF level order" `Quick test_bf_level_order;
          Alcotest.test_case "RF uses rand" `Quick test_rf_uses_rand;
          Alcotest.test_case "RF default deterministic" `Quick
            test_rf_default_deterministic;
          Alcotest.test_case "single task" `Quick test_single_task;
          prop_always_linearization;
        ] );
    ]
