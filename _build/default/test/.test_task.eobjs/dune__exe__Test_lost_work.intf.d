test/test_lost_work.mli:
