test/test_local_search.ml: Alcotest Array Chain_solver Evaluator Fun List Local_search Schedule Wfc_core Wfc_dag Wfc_platform Wfc_test_util Wfc_workflows
