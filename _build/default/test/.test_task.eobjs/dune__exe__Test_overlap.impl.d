test/test_overlap.ml: Alcotest Array Fun List Monte_carlo Printf Schedule Sim Sim_overlap Wfc_core Wfc_dag Wfc_platform Wfc_simulator Wfc_test_util Wfc_workflows
