test/test_periodic.ml: Alcotest Float List Periodic Wfc_core Wfc_platform Wfc_test_util
