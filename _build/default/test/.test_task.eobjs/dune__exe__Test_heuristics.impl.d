test/test_heuristics.ml: Alcotest Array Brute_force Evaluator Float Heuristics List Schedule Wfc_core Wfc_dag Wfc_platform Wfc_test_util Wfc_workflows
