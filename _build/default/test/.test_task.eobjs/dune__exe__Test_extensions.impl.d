test/test_extensions.ml: Alcotest Array Bounds Brute_force Float Format Heuristics List Printf Schedule String Wfc_core Wfc_dag Wfc_platform Wfc_simulator Wfc_test_util Wfc_workflows
