test/test_evaluator.mli:
