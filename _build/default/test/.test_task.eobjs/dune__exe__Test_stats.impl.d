test/test_stats.ml: Alcotest Float List Wfc_platform Wfc_test_util
