test/test_workflows.mli:
