test/test_dot.ml: Alcotest Builders Dot Filename List String Sys Wfc_dag
