test/test_failure_model.mli:
