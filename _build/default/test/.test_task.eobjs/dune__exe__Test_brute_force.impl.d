test/test_brute_force.ml: Alcotest Array Brute_force Exact_solver Float Fun List Schedule Wfc_core Wfc_dag Wfc_platform Wfc_test_util
