test/test_periodic.mli:
