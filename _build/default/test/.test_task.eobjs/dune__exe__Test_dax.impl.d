test/test_dax.ml: Alcotest Dax Filename Float List Result String Sys Wfc_core Wfc_dag Wfc_io Wfc_platform Wfc_test_util Wfc_workflows Xml
