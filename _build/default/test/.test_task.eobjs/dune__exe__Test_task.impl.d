test/test_task.ml: Alcotest Float Task Wfc_dag
