test/test_linearize.ml: Alcotest Array Dag Format Int Linearize List Option Wfc_dag Wfc_platform Wfc_test_util
