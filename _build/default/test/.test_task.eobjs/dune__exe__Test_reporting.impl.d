test/test_reporting.ml: Alcotest Csv Filename List Series String Sys Table Wfc_reporting
