test/test_rng.ml: Alcotest Array Float Fun Int64 Wfc_platform Wfc_test_util
