test/test_simulator.ml: Alcotest Evaluator Float Join_solver List Monte_carlo Schedule Sim Wfc_core Wfc_dag Wfc_platform Wfc_simulator Wfc_test_util
