test/test_dax.mli:
