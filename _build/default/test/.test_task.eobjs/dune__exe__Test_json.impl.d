test/test_json.ml: Alcotest Array Filename Hashtbl Json List QCheck2 Result Sys Wfc_core Wfc_dag Wfc_io Wfc_test_util Wfc_workflows Workflow_format
