test/test_transform.ml: Alcotest Array Builders Dag Format Fun List Printf Task Transform Wfc_core Wfc_dag Wfc_platform Wfc_test_util
