test/test_failure_model.ml: Alcotest Float List Wfc_platform Wfc_test_util
