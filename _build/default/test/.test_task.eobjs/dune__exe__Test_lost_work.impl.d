test/test_lost_work.ml: Alcotest Array List Lost_work Lost_work_reference Printf Schedule Wfc_core Wfc_dag Wfc_test_util
