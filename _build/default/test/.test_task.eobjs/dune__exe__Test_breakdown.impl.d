test/test_breakdown.ml: Alcotest Energy Evaluator Float Monte_carlo Schedule Sim Sim_breakdown Wfc_core Wfc_dag Wfc_platform Wfc_simulator Wfc_test_util
