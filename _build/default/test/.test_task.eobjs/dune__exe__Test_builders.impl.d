test/test_builders.ml: Alcotest Array Builders Dag Int Printf Wfc_dag Wfc_platform
