test/test_solvers.ml: Alcotest Array Brute_force Chain_solver Evaluator Fork_solver Join_solver List Schedule String Wfc_core Wfc_dag Wfc_platform Wfc_test_util
