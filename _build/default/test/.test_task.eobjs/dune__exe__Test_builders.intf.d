test/test_builders.mli:
