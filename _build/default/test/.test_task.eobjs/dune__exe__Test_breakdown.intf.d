test/test_breakdown.mli:
