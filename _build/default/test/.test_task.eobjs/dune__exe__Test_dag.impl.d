test/test_dag.ml: Alcotest Array Dag List Task Wfc_dag
