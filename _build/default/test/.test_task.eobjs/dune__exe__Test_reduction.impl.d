test/test_reduction.ml: Alcotest Array Float Join_solver List Printf Reduction Wfc_core Wfc_dag Wfc_platform Wfc_test_util
