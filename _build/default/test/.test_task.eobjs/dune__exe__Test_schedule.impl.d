test/test_schedule.ml: Alcotest Array Format Schedule Wfc_core Wfc_dag
