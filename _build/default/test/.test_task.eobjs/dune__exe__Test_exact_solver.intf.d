test/test_exact_solver.mli:
