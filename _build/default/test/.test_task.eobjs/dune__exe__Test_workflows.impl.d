test/test_workflows.ml: Alcotest Array Builder Cost_model Job_type List Pegasus Printf String Wfc_dag Wfc_platform Wfc_test_util Wfc_workflows
