test/test_evaluator.ml: Alcotest Array Chain_solver Evaluator Float Join_solver List Lost_work Schedule Wfc_core Wfc_dag Wfc_platform Wfc_test_util
