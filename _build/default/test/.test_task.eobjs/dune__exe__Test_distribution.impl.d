test/test_distribution.ml: Alcotest Float List Printf Wfc_core Wfc_dag Wfc_platform Wfc_simulator Wfc_test_util Wfc_workflows
