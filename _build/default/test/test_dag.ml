open Wfc_dag

(* The DAG of Figure 1 in the paper: T0 -> {T1, T3}; T1 -> T2; T3 -> T4;
   {T2, T4} -> T5; T4 -> T6; {T2, T6} -> T7. *)
let figure1 () =
  Dag.of_weights
    ~weights:[| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |]
    ~edges:[ (0, 1); (0, 3); (1, 2); (3, 4); (2, 5); (4, 5); (4, 6); (2, 7); (6, 7) ]
    ()

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_basic_accessors () =
  let g = figure1 () in
  Alcotest.(check int) "n_tasks" 8 (Dag.n_tasks g);
  Alcotest.(check int) "n_edges" 9 (Dag.n_edges g);
  Alcotest.(check (list int)) "succs 0" [ 1; 3 ] (Dag.succs g 0);
  Alcotest.(check (list int)) "preds 5" [ 2; 4 ] (Dag.preds g 5);
  Alcotest.(check (list int)) "preds 0" [] (Dag.preds g 0);
  Alcotest.(check bool) "edge 0->1" true (Dag.is_edge g 0 1);
  Alcotest.(check bool) "no edge 1->0" false (Dag.is_edge g 1 0);
  Alcotest.(check int) "in_degree 7" 2 (Dag.in_degree g 7);
  Alcotest.(check int) "out_degree 4" 2 (Dag.out_degree g 4);
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources g);
  Alcotest.(check (list int)) "sinks" [ 5; 7 ] (Dag.sinks g)

let test_edges_sorted () =
  let g = figure1 () in
  let e = Dag.edges g in
  Alcotest.(check int) "count" 9 (List.length e);
  Alcotest.(check bool) "sorted" true (List.sort compare e = e)

let test_validation () =
  let t i = Task.make ~id:i ~weight:1. () in
  expect_invalid (fun () -> Dag.create ~tasks:[||] ~edges:[]);
  expect_invalid (fun () ->
      Dag.create ~tasks:[| t 0; t 0 |] ~edges:[]);
  expect_invalid (fun () -> Dag.create ~tasks:[| t 0 |] ~edges:[ (0, 1) ]);
  expect_invalid (fun () -> Dag.create ~tasks:[| t 0 |] ~edges:[ (0, 0) ]);
  expect_invalid (fun () ->
      Dag.create ~tasks:[| t 0; t 1 |] ~edges:[ (0, 1); (0, 1) ]);
  (* cycle *)
  expect_invalid (fun () ->
      Dag.create ~tasks:[| t 0; t 1; t 2 |] ~edges:[ (0, 1); (1, 2); (2, 0) ])

let test_topological_order () =
  let g = figure1 () in
  let order = Dag.topological_order g in
  Alcotest.(check bool) "valid" true (Dag.is_linearization g order);
  (* Kahn with min-id selection is deterministic *)
  Alcotest.(check (array int)) "deterministic"
    (Dag.topological_order g) order

let test_is_linearization () =
  let g = figure1 () in
  Alcotest.(check bool) "good" true
    (Dag.is_linearization g [| 0; 3; 1; 2; 4; 5; 6; 7 |]);
  Alcotest.(check bool) "violates deps" false
    (Dag.is_linearization g [| 1; 0; 3; 2; 4; 5; 6; 7 |]);
  Alcotest.(check bool) "wrong length" false
    (Dag.is_linearization g [| 0; 1; 2 |]);
  Alcotest.(check bool) "duplicate" false
    (Dag.is_linearization g [| 0; 0; 1; 2; 3; 4; 5; 6 |])

let test_levels () =
  let g = figure1 () in
  Alcotest.(check (array int)) "levels"
    [| 0; 1; 2; 1; 2; 3; 3; 4 |] (Dag.levels g)

let test_ancestors_descendants () =
  let g = figure1 () in
  let anc = Dag.ancestors g 5 in
  Alcotest.(check (array bool)) "ancestors of 5"
    [| true; true; true; true; true; false; false; false |] anc;
  let desc = Dag.descendants g 3 in
  Alcotest.(check (array bool)) "descendants of 3"
    [| false; false; false; false; true; true; true; true |] desc

let test_weights () =
  let g = figure1 () in
  Alcotest.(check (float 1e-9)) "total" 36. (Dag.total_weight g);
  Alcotest.(check (float 1e-9)) "outweight 0" 6. (Dag.outweight g 0);
  Alcotest.(check (float 1e-9)) "outweight 4" 13. (Dag.outweight g 4);
  Alcotest.(check (float 1e-9)) "outweight sink" 0. (Dag.outweight g 7);
  (* critical path: 0 -> 3 -> 4 -> 6 -> 7 = 1+4+5+7+8 = 25 *)
  Alcotest.(check (float 1e-9)) "critical path" 25. (Dag.critical_path g)

let test_of_weights_costs () =
  let g =
    Dag.of_weights
      ~checkpoint_cost:(fun _ w -> 0.1 *. w)
      ~recovery_cost:(fun i _ -> float_of_int i)
      ~weights:[| 10.; 20. |] ~edges:[ (0, 1) ] ()
  in
  Alcotest.(check (float 1e-9)) "c0" 1. (Dag.task g 0).Task.checkpoint_cost;
  Alcotest.(check (float 1e-9)) "r1" 1. (Dag.task g 1).Task.recovery_cost

let test_map_tasks () =
  let g = figure1 () in
  let g' = Dag.map_tasks (fun t -> Task.with_weight t ~weight:1.) g in
  Alcotest.(check (float 1e-9)) "scaled" 8. (Dag.total_weight g');
  Alcotest.(check (float 1e-9)) "original intact" 36. (Dag.total_weight g);
  expect_invalid (fun () ->
      Dag.map_tasks
        (fun t -> Task.make ~id:(t.Task.id + 1) ~weight:1. ())
        g)

let test_tasks_copy () =
  let g = figure1 () in
  let ts = Dag.tasks g in
  ts.(0) <- Task.make ~id:0 ~weight:999. ();
  Alcotest.(check (float 1e-9)) "internal state unchanged" 1. (Dag.weight g 0)

let test_single_vertex () =
  let g = Dag.of_weights ~weights:[| 5. |] ~edges:[] () in
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources g);
  Alcotest.(check (list int)) "sinks" [ 0 ] (Dag.sinks g);
  Alcotest.(check (float 1e-9)) "critical" 5. (Dag.critical_path g)

let test_out_of_range () =
  let g = figure1 () in
  expect_invalid (fun () -> Dag.task g 8);
  expect_invalid (fun () -> Dag.task g (-1));
  expect_invalid (fun () -> Dag.succs g 100)

let () =
  Alcotest.run "dag"
    [
      ( "dag",
        [
          Alcotest.test_case "accessors" `Quick test_basic_accessors;
          Alcotest.test_case "edges sorted" `Quick test_edges_sorted;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "is_linearization" `Quick test_is_linearization;
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "ancestors/descendants" `Quick
            test_ancestors_descendants;
          Alcotest.test_case "weights" `Quick test_weights;
          Alcotest.test_case "of_weights costs" `Quick test_of_weights_costs;
          Alcotest.test_case "map_tasks" `Quick test_map_tasks;
          Alcotest.test_case "tasks returns a copy" `Quick test_tasks_copy;
          Alcotest.test_case "single vertex" `Quick test_single_vertex;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
        ] );
    ]
