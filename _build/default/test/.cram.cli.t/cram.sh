  $ ../bin/wfc.exe generate -w montage -n 50 --seed 42
  $ ../bin/wfc.exe evaluate -w cybershake -n 30 --mtbf 500 -s CkptW --grid 8
  $ ../bin/wfc.exe solve chain -n 5 --seed 1 --mtbf 300
  $ ../bin/wfc.exe generate -w nosuch 2>&1 | head -2
  $ echo $?
