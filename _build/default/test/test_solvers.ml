open Wfc_core
module Dag = Wfc_dag.Dag
module Builders = Wfc_dag.Builders
module FM = Wfc_platform.Failure_model

(* ---------- fork (Theorem 1) ---------- *)

let fork_dag () =
  Builders.fork ~source_weight:8. ~sink_weights:[| 2.; 5.; 3. |]
    ~checkpoint_cost:(fun _ w -> 0.25 *. w)
    ~recovery_cost:(fun _ w -> 0.12 *. w)
    ()

let test_is_fork () =
  Alcotest.(check bool) "fork recognized" true
    (Fork_solver.is_fork (fork_dag ()) = Some 0);
  let not_fork = Builders.chain ~weights:[| 1.; 2.; 3. |] () in
  Alcotest.(check bool) "chain rejected" true (Fork_solver.is_fork not_fork = None);
  let join = Builders.join ~source_weights:[| 1.; 2. |] ~sink_weight:1. () in
  Alcotest.(check bool) "join rejected" true (Fork_solver.is_fork join = None)

let test_fork_solver_vs_brute_force () =
  List.iter
    (fun model ->
      let g = fork_dag () in
      let sol = Fork_solver.solve model g in
      let _, brute = Brute_force.optimal model g in
      Wfc_test_util.check_close ~eps:1e-9 "fork optimal = brute force" brute
        sol.Fork_solver.makespan;
      (* the materialized schedule evaluates to the reported makespan *)
      let s = Fork_solver.schedule_of g sol in
      Wfc_test_util.check_close ~eps:1e-9 "schedule matches value"
        sol.Fork_solver.makespan
        (Evaluator.expected_makespan model g s))
    Wfc_test_util.models

let test_fork_decision_flips () =
  (* cheap checkpoint: checkpointing wins; expensive checkpoint: skipping *)
  let mk c =
    Builders.fork ~source_weight:10. ~sink_weights:(Array.make 6 5.)
      ~checkpoint_cost:(fun _ _ -> c)
      ~recovery_cost:(fun _ _ -> 0.5)
      ()
  in
  let model = FM.make ~lambda:0.05 () in
  let cheap = Fork_solver.solve model (mk 0.2) in
  Alcotest.(check bool) "cheap -> checkpoint" true
    cheap.Fork_solver.checkpoint_source;
  let expensive = Fork_solver.solve model (mk 200.) in
  Alcotest.(check bool) "expensive -> skip" false
    expensive.Fork_solver.checkpoint_source

(* ---------- join (Lemma 2, Corollaries, Theorem 2) ---------- *)

let join_dag () =
  Builders.join ~source_weights:[| 4.; 7.; 2.; 5. |] ~sink_weight:3.
    ~checkpoint_cost:(fun _ w -> 0.2 *. w)
    ~recovery_cost:(fun _ w -> 0.1 *. w)
    ()

let test_is_join () =
  Alcotest.(check bool) "join recognized" true
    (Join_solver.is_join (join_dag ()) = Some 4);
  Alcotest.(check bool) "fork rejected" true
    (Join_solver.is_join (fork_dag ()) = None)

let test_corrected_order_is_optimal () =
  (* the corrected exchange-argument order minimizes the expected makespan
     among all permutations of the same checkpoint set (general evaluator as
     the referee) *)
  let g = join_dag () in
  let model = FM.make ~lambda:0.09 ~downtime:0.4 () in
  let ckpt = [| true; true; true; false; false |] in
  let best_formula = Join_solver.expected_makespan model g ~ckpt in
  let perms =
    (* all orders of the three checkpointed sources 0, 1, 2 *)
    [ [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 1; 0; 2 ]; [ 1; 2; 0 ]; [ 2; 0; 1 ]; [ 2; 1; 0 ] ]
  in
  List.iter
    (fun perm ->
      let order = Array.of_list (perm @ [ 3; 4 ]) in
      let s = Schedule.make g ~order ~checkpointed:ckpt in
      let m = Evaluator.expected_makespan model g s in
      if m < best_formula -. 1e-9 then
        Alcotest.failf "permutation %s beats the corrected order: %.12g < %.12g"
          (String.concat "" (List.map string_of_int perm))
          m best_formula;
      (* and Equation (2) agrees with the evaluator on every order *)
      Wfc_test_util.check_close ~eps:1e-9 "Eq. (2) for this permutation" m
        (Join_solver.expected_makespan_order model g ~ckpt ~sigma:perm))
    perms

let test_lemma2_erratum () =
  (* Counterexample to the published Lemma 2 ordering: with heterogeneous
     costs the non-increasing-g order is strictly beaten by the corrected
     order. Found by random search, cross-checked against the Theorem 3
     evaluator (itself validated by Monte Carlo fault injection). *)
  let g =
    Wfc_dag.Builders.join
      ~checkpoint_cost:(fun i _ -> if i < 2 then [| 0.808; 0.913 |].(i) else 0.)
      ~recovery_cost:(fun i _ -> if i < 2 then [| 0.821; 1.545 |].(i) else 0.)
      ~source_weights:[| 0.809; 5.244 |] ~sink_weight:1.568 ()
  in
  let model = FM.make ~lambda:0.102 () in
  let ckpt = [| true; true; false |] in
  let task i = Wfc_dag.Dag.task g i in
  (* the published criterion prefers task 0 first... *)
  Alcotest.(check bool) "g(0) > g(1)" true
    (Join_solver.g_value model (task 0) > Join_solver.g_value model (task 1));
  (* ...but running task 1 first is strictly better *)
  let m_paper = Join_solver.expected_makespan_order model g ~ckpt ~sigma:[ 0; 1 ] in
  let m_fixed = Join_solver.expected_makespan_order model g ~ckpt ~sigma:[ 1; 0 ] in
  Alcotest.(check bool) "corrected order strictly better" true
    (m_fixed < m_paper -. 1e-6);
  (* the corrected key agrees *)
  Alcotest.(check bool) "key(1) < key(0)" true
    (Join_solver.order_key model (task 1) < Join_solver.order_key model (task 0));
  (* and the solver picks the better order *)
  Wfc_test_util.check_close ~eps:1e-12 "solver uses corrected order" m_fixed
    (Join_solver.expected_makespan model g ~ckpt)

let test_join_solver_exact_vs_brute_force () =
  let g = join_dag () in
  List.iter
    (fun model ->
      let sol = Join_solver.solve_exact model g in
      let _, brute = Brute_force.optimal model g in
      Wfc_test_util.check_close ~eps:1e-9 "join exact = brute force" brute
        sol.Join_solver.makespan)
    Wfc_test_util.models

let test_join_uniform_costs () =
  let g =
    Builders.join ~source_weights:[| 6.; 3.; 9.; 4.; 5. |] ~sink_weight:2.
      ~checkpoint_cost:(fun _ _ -> 1.)
      ~recovery_cost:(fun _ _ -> 0.8)
      ()
  in
  List.iter
    (fun model ->
      let sol = Join_solver.solve_uniform_costs model g in
      let exact = Join_solver.solve_exact model g in
      Wfc_test_util.check_close ~eps:1e-9 "Corollary 1 optimal"
        exact.Join_solver.makespan sol.Join_solver.makespan)
    Wfc_test_util.models;
  (* rejects non-uniform costs *)
  match Join_solver.solve_uniform_costs (FM.make ~lambda:0.1 ()) (join_dag ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-uniform costs accepted"

let test_zero_recovery_closed_form () =
  let g =
    Builders.join ~source_weights:[| 4.; 7.; 2. |] ~sink_weight:3.
      ~checkpoint_cost:(fun _ w -> 0.3 *. w)
      ()
  in
  List.iter
    (fun model ->
      List.iter
        (fun flags ->
          let ckpt = Array.of_list flags in
          Wfc_test_util.check_close ~eps:1e-9 "Corollary 2 = Lemma 2 at r = 0"
            (Join_solver.expected_makespan model g ~ckpt)
            (Join_solver.zero_recovery_makespan model g ~ckpt))
        [
          [ false; false; false; false ];
          [ true; true; true; false ];
          [ true; false; true; false ];
        ])
    Wfc_test_util.models

let test_zero_recovery_order_irrelevant () =
  (* Corollary 2: with r = 0 every execution order of the same sets gives the
     same expected makespan *)
  let g =
    Builders.join ~source_weights:[| 4.; 7.; 2. |] ~sink_weight:3.
      ~checkpoint_cost:(fun _ w -> 0.3 *. w)
      ()
  in
  let model = FM.make ~lambda:0.07 () in
  let ckpt = [| true; true; false; false |] in
  let m order =
    Evaluator.expected_makespan model g
      (Schedule.make g ~order ~checkpointed:ckpt)
  in
  Wfc_test_util.check_close ~eps:1e-9 "order swap"
    (m [| 0; 1; 2; 3 |]) (m [| 1; 0; 2; 3 |])

(* ---------- chain (Toueg-Babaoglu baseline) ---------- *)

let chain_dag () =
  Builders.chain
    ~weights:[| 6.; 2.; 8.; 4.; 5. |]
    ~checkpoint_cost:(fun _ w -> 0.2 *. w)
    ~recovery_cost:(fun _ w -> 0.15 *. w)
    ()

let test_is_chain () =
  Alcotest.(check bool) "chain" true (Chain_solver.is_chain (chain_dag ()));
  Alcotest.(check bool) "fork is not" false (Chain_solver.is_chain (fork_dag ()))

let test_chain_dp_vs_brute_force () =
  let g = chain_dag () in
  List.iter
    (fun model ->
      let sol = Chain_solver.solve model g in
      let order = [| 0; 1; 2; 3; 4 |] in
      let _, brute = Brute_force.optimal_checkpoints_for_order model g ~order in
      Wfc_test_util.check_close ~eps:1e-9 "DP = brute force over subsets" brute
        sol.Chain_solver.makespan;
      (* the DP's flags evaluate to its claimed makespan *)
      let s = Schedule.make g ~order ~checkpointed:sol.Chain_solver.checkpointed in
      Wfc_test_util.check_close ~eps:1e-9 "flags match value"
        sol.Chain_solver.makespan
        (Evaluator.expected_makespan model g s))
    Wfc_test_util.models

let test_chain_fail_free_no_checkpoints () =
  let g = chain_dag () in
  let sol = Chain_solver.solve FM.fail_free g in
  Alcotest.(check bool) "no checkpoint when no failures" true
    (Array.for_all not sol.Chain_solver.checkpointed);
  Wfc_test_util.check_close "T_inf" 25. sol.Chain_solver.makespan

let test_chain_harsh_failures_checkpoint_more () =
  let g = chain_dag () in
  let count lambda =
    let sol = Chain_solver.solve (FM.make ~lambda ()) g in
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
      sol.Chain_solver.checkpointed
  in
  Alcotest.(check bool) "more failures, at least as many checkpoints" true
    (count 0.2 >= count 0.001)

let () =
  Alcotest.run "solvers"
    [
      ( "fork",
        [
          Alcotest.test_case "recognition" `Quick test_is_fork;
          Alcotest.test_case "vs brute force" `Slow test_fork_solver_vs_brute_force;
          Alcotest.test_case "decision flips" `Quick test_fork_decision_flips;
        ] );
      ( "join",
        [
          Alcotest.test_case "recognition" `Quick test_is_join;
          Alcotest.test_case "corrected order optimal" `Quick
            test_corrected_order_is_optimal;
          Alcotest.test_case "Lemma 2 erratum" `Quick test_lemma2_erratum;
          Alcotest.test_case "exact vs brute force" `Slow
            test_join_solver_exact_vs_brute_force;
          Alcotest.test_case "uniform costs (Corollary 1)" `Slow
            test_join_uniform_costs;
          Alcotest.test_case "zero recovery (Corollary 2)" `Quick
            test_zero_recovery_closed_form;
          Alcotest.test_case "zero recovery order-free" `Quick
            test_zero_recovery_order_irrelevant;
        ] );
      ( "chain",
        [
          Alcotest.test_case "recognition" `Quick test_is_chain;
          Alcotest.test_case "DP vs brute force" `Slow test_chain_dp_vs_brute_force;
          Alcotest.test_case "fail-free: no checkpoints" `Quick
            test_chain_fail_free_no_checkpoints;
          Alcotest.test_case "harsher failures, more checkpoints" `Quick
            test_chain_harsh_failures_checkpoint_more;
        ] );
    ]
