open Wfc_core
module Dag = Wfc_dag.Dag

(* The example of Figure 1 / Section 3, reconstructed from the narrative:
   sources T0 and T1; T0 -> T3 -> {T4, T5}; T4 -> T6; T5 -> T6;
   T1 -> T2 -> T7; T6 -> T7. T3 and T4 are checkpointed and the linearization
   is T0 T3 T1 T2 T4 T5 T6 T7. The paper walks through a failure during T5:
   T5 retries by recovering T3's checkpoint, T6 recovers T4's checkpoint and
   reuses T5's in-memory output, and T7 re-executes T1 then T2 (no checkpoint
   on that reverse path). *)
let w = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |]
let r3 = 0.45
let r4 = 0.55

let figure1 () =
  let costs = [| 0.; 0.; 0.; r3; r4; 0.; 0.; 0. |] in
  Dag.of_weights
    ~checkpoint_cost:(fun i _ -> if i = 3 then 0.4 else if i = 4 then 0.5 else 0.)
    ~recovery_cost:(fun i _ -> costs.(i))
    ~weights:w
    ~edges:[ (0, 3); (3, 4); (3, 5); (4, 6); (5, 6); (1, 2); (2, 7); (6, 7) ]
    ()

let schedule g =
  let flags = Array.make 8 false in
  flags.(3) <- true;
  flags.(4) <- true;
  Schedule.make g ~order:[| 0; 3; 1; 2; 4; 5; 6; 7 |] ~checkpointed:flags

let replay lw k i = Lost_work.replay_time lw ~last_fault:k ~position:i

let test_paper_narrative () =
  let g = figure1 () in
  let s = schedule g in
  let lw = Lost_work.compute g s in
  (* failure during X_5 (T5 at position 5) *)
  Wfc_test_util.check_close "T5 retries via T3's checkpoint" r3 (replay lw 5 5);
  Wfc_test_util.check_close "T6 recovers T4, reuses T5" r4 (replay lw 5 6);
  Wfc_test_util.check_close "T7 re-executes T1 and T2" (w.(1) +. w.(2))
    (replay lw 5 7)

let test_first_use_exclusion () =
  let g = figure1 () in
  let s = schedule g in
  let lw = Lost_work.compute g s in
  (* failure during X_3 (T2 at position 3) *)
  Wfc_test_util.check_close "T2 re-executes T1" w.(1) (replay lw 3 3);
  Wfc_test_util.check_close "T4 recovers T3" r3 (replay lw 3 4);
  (* T3 was already recovered for T4; T5 reuses it from memory *)
  Wfc_test_util.check_close "T5 reuses recovered T3" 0. (replay lw 3 5);
  Wfc_test_util.check_close "T6 all in memory" 0. (replay lw 3 6);
  Wfc_test_util.check_close "T7 all in memory" 0. (replay lw 3 7)

let test_fault_during_last () =
  let g = figure1 () in
  let s = schedule g in
  let lw = Lost_work.compute g s in
  (* failure during X_7: everything T7 needs is lost *)
  Wfc_test_util.check_close "full replay for T7"
    (w.(2) +. w.(1) +. w.(6) +. r4 +. w.(5) +. r3)
    (replay lw 7 7)

let test_entry_positions () =
  let g = figure1 () in
  let s = schedule g in
  let lw = Lost_work.compute g s in
  Wfc_test_util.check_close "entry task needs nothing" 0. (replay lw 0 0);
  (* fault during X_1 (T3): its retry re-executes the lost T0 *)
  Wfc_test_util.check_close "T3 re-executes T0" w.(0) (replay lw 1 1)

let test_no_fault_is_zero () =
  let g = figure1 () in
  let s = schedule g in
  let lw = Lost_work.compute g s in
  for i = 0 to 7 do
    Wfc_test_util.check_close "k = -1" 0. (replay lw (-1) i)
  done

let test_bounds () =
  let g = figure1 () in
  let s = schedule g in
  let lw = Lost_work.compute g s in
  Alcotest.(check int) "n_positions" 8 (Lost_work.n_positions lw);
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> replay lw 5 3);
  expect_invalid (fun () -> replay lw (-2) 0);
  expect_invalid (fun () -> replay lw 0 8)

let test_reference_agrees_on_figure1 () =
  let g = figure1 () in
  let s = schedule g in
  let lw = Lost_work.compute g s in
  for k = 0 to 7 do
    for i = k to 7 do
      Wfc_test_util.check_close
        (Printf.sprintf "L(%d,%d)" k i)
        (Lost_work_reference.replay_time g s ~last_fault:k ~position:i)
        (replay lw k i)
    done
  done

let test_reference_sets () =
  let g = figure1 () in
  let s = schedule g in
  let sets = Lost_work_reference.replay_sets g s ~k:5 in
  Alcotest.(check (list int)) "T↓5_5" [ 3 ] (List.sort compare sets.(5));
  Alcotest.(check (list int)) "T↓5_6" [ 4 ] (List.sort compare sets.(6));
  Alcotest.(check (list int)) "T↓5_7" [ 1; 2 ] (List.sort compare sets.(7))

let test_checkpoints_cut_propagation () =
  (* chain 0 -> 1 -> 2 -> 3, checkpoint on task 1: a late failure never
     replays tasks 0 or 1's work, only 1's recovery *)
  let g =
    Wfc_dag.Builders.chain ~weights:[| 5.; 6.; 7.; 8. |]
      ~recovery_cost:(fun _ _ -> 1.25) ()
  in
  let s =
    Schedule.make g ~order:[| 0; 1; 2; 3 |]
      ~checkpointed:[| false; true; false; false |]
  in
  let lw = Lost_work.compute g s in
  Wfc_test_util.check_close "retry of 2 recovers 1" 1.25 (replay lw 2 2);
  Wfc_test_util.check_close "fault at 3 replays 2 and recovers 1"
    (7. +. 1.25) (replay lw 3 3);
  Wfc_test_util.check_close "fault at 2, position 3 in memory" 0. (replay lw 2 3)

let prop_optimized_equals_reference =
  Wfc_test_util.qtest ~count:150 "optimized lost work = Algorithm 1 (random)"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:9 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      let lw = Lost_work.compute g s in
      let n = Schedule.n_tasks s in
      let ok = ref true in
      for k = 0 to n - 1 do
        for i = k to n - 1 do
          let a = Lost_work.replay_time lw ~last_fault:k ~position:i in
          let b = Lost_work_reference.replay_time g s ~last_fault:k ~position:i in
          if not (Wfc_test_util.close a b) then ok := false
        done
      done;
      !ok)

let prop_replay_bounded_by_total =
  Wfc_test_util.qtest ~count:150 "replay never exceeds total weight + recoveries"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:10 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      let lw = Lost_work.compute g s in
      let bound =
        Dag.total_weight g
        +. Array.fold_left
             (fun acc t -> acc +. t.Wfc_dag.Task.recovery_cost)
             0. (Dag.tasks g)
      in
      let n = Schedule.n_tasks s in
      let ok = ref true in
      for k = 0 to n - 1 do
        for i = k to n - 1 do
          let l = Lost_work.replay_time lw ~last_fault:k ~position:i in
          if l < 0. || l > bound +. 1e-9 then ok := false
        done
      done;
      !ok)

let prop_full_loss_dominates =
  Wfc_test_util.qtest ~count:150 "L(i,i) >= L(k,i): a fresh fault loses the most"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:10 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      let lw = Lost_work.compute g s in
      let n = Schedule.n_tasks s in
      let ok = ref true in
      for i = 0 to n - 1 do
        let full = Lost_work.replay_time lw ~last_fault:i ~position:i in
        for k = 0 to i do
          if Lost_work.replay_time lw ~last_fault:k ~position:i > full +. 1e-9
          then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "lost_work"
    [
      ( "lost_work",
        [
          Alcotest.test_case "paper narrative (Fig. 1)" `Quick
            test_paper_narrative;
          Alcotest.test_case "first-use exclusion" `Quick
            test_first_use_exclusion;
          Alcotest.test_case "fault during last task" `Quick
            test_fault_during_last;
          Alcotest.test_case "entry positions" `Quick test_entry_positions;
          Alcotest.test_case "no fault yet" `Quick test_no_fault_is_zero;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "reference agrees (Fig. 1)" `Quick
            test_reference_agrees_on_figure1;
          Alcotest.test_case "reference sets (Fig. 1)" `Quick
            test_reference_sets;
          Alcotest.test_case "checkpoints cut propagation" `Quick
            test_checkpoints_cut_propagation;
          prop_optimized_equals_reference;
          prop_replay_bounded_by_total;
          prop_full_loss_dominates;
        ] );
    ]
