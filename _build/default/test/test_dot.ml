open Wfc_dag

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let g () = Builders.fork ~source_weight:2. ~sink_weights:[| 1.; 3. |] ()

let test_nodes_and_edges () =
  let dot = Dot.to_dot (g ()) in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("contains " ^ sub) true (contains ~sub dot))
    [ "digraph"; "n0"; "n1"; "n2"; "n0 -> n1"; "n0 -> n2"; "w=2" ]

let test_checkpoint_shading () =
  let dot = Dot.to_dot ~checkpointed:(fun v -> v = 0) (g ()) in
  Alcotest.(check bool) "shaded" true (contains ~sub:"fillcolor=gray80" dot);
  let plain = Dot.to_dot (g ()) in
  Alcotest.(check bool) "no shading by default" false
    (contains ~sub:"fillcolor" plain)

let test_highlight_order () =
  let dot = Dot.to_dot ~highlight_order:[| 0; 2; 1 |] (g ()) in
  Alcotest.(check bool) "positions shown" true (contains ~sub:"#0" dot);
  Alcotest.(check bool) "positions shown 2" true (contains ~sub:"#2" dot)

let test_name () =
  let dot = Dot.to_dot ~name:"montage" (g ()) in
  Alcotest.(check bool) "named" true (contains ~sub:"\"montage\"" dot)

let test_write_file () =
  let path = Filename.temp_file "wfc_dot" ".dot" in
  Dot.write_file path "digraph x {}\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" "digraph x {}" line

let () =
  Alcotest.run "dot"
    [
      ( "dot",
        [
          Alcotest.test_case "nodes and edges" `Quick test_nodes_and_edges;
          Alcotest.test_case "checkpoint shading" `Quick test_checkpoint_shading;
          Alcotest.test_case "highlight order" `Quick test_highlight_order;
          Alcotest.test_case "graph name" `Quick test_name;
          Alcotest.test_case "write_file" `Quick test_write_file;
        ] );
    ]
