open Wfc_core
module FM = Wfc_platform.Failure_model

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let model = FM.make ~lambda:1e-3 ()

let test_young () =
  (* sqrt(2 * 60 / 1e-3) = sqrt(120000) *)
  Wfc_test_util.check_close "young" (Float.sqrt 120_000.)
    (Periodic.young_period model ~checkpoint:60.);
  expect_invalid (fun () -> Periodic.young_period FM.fail_free ~checkpoint:60.);
  expect_invalid (fun () -> Periodic.young_period model ~checkpoint:0.)

let test_daly () =
  (* no downtime, c << MTBF: Daly ~ Young - c *)
  let young = Periodic.young_period model ~checkpoint:60. in
  let daly = Periodic.daly_period model ~checkpoint:60. in
  Wfc_test_util.check_close ~eps:1e-9 "daly = young - c" (young -. 60.) daly;
  (* downtime increases the period *)
  let with_downtime =
    Periodic.daly_period (FM.make ~lambda:1e-3 ~downtime:100. ()) ~checkpoint:60.
  in
  Alcotest.(check bool) "downtime raises period" true (with_downtime > daly);
  (* degenerate: huge checkpoint clamps at c *)
  let huge = Periodic.daly_period (FM.make ~lambda:1. ()) ~checkpoint:50. in
  Alcotest.(check bool) "clamped" true (huge >= 50.)

let test_divisible_single_segment () =
  (* period >= work: one unchecked segment *)
  Wfc_test_util.check_close "one segment"
    (FM.expected_exec_time model ~work:100. ~checkpoint:0. ~recovery:0.)
    (Periodic.expected_time_divisible model ~work:100. ~checkpoint:5.
       ~recovery:5. ~period:200.)

let test_divisible_exact_split () =
  (* work = 3 periods: segments P+c, P+c, P with recoveries 0, r, r *)
  let p = 50. and c = 4. and r = 3. in
  let e = FM.expected_exec_time model in
  let expected =
    e ~work:p ~checkpoint:c ~recovery:0.
    +. e ~work:p ~checkpoint:c ~recovery:r
    +. e ~work:p ~checkpoint:0. ~recovery:r
  in
  Wfc_test_util.check_close "three segments" expected
    (Periodic.expected_time_divisible model ~work:150. ~checkpoint:c ~recovery:r
       ~period:p)

let test_divisible_remainder () =
  (* work = 2.5 periods: trailing half segment, no final checkpoint *)
  let p = 40. and c = 4. and r = 3. in
  let e = FM.expected_exec_time model in
  let expected =
    e ~work:p ~checkpoint:c ~recovery:0.
    +. e ~work:p ~checkpoint:c ~recovery:r
    +. e ~work:20. ~checkpoint:0. ~recovery:r
  in
  Wfc_test_util.check_close "remainder" expected
    (Periodic.expected_time_divisible model ~work:100. ~checkpoint:c ~recovery:r
       ~period:p);
  expect_invalid (fun () ->
      ignore
        (Periodic.expected_time_divisible model ~work:0. ~checkpoint:1.
           ~recovery:1. ~period:10.))

let test_optimal_period_beats_neighbors () =
  let work = 100_000. and checkpoint = 30. and recovery = 30. in
  let best = Periodic.optimal_period model ~work ~checkpoint ~recovery in
  let cost p =
    Periodic.expected_time_divisible model ~work ~checkpoint ~recovery ~period:p
  in
  let c_best = cost best in
  List.iter
    (fun factor ->
      if cost (best *. factor) < c_best -. 1e-6 then
        Alcotest.failf "period %.1f x%.2f beats the optimum" best factor)
    [ 0.25; 0.5; 0.8; 1.25; 2.; 4. ]

let test_optimal_close_to_daly () =
  (* in the regime where first-order approximations are valid (c << MTBF),
     Young and Daly land within a few percent of the searched optimum *)
  let work = 200_000. and checkpoint = 20. and recovery = 20. in
  let best = Periodic.optimal_period model ~work ~checkpoint ~recovery in
  let cost p =
    Periodic.expected_time_divisible model ~work ~checkpoint ~recovery ~period:p
  in
  let rel p = (cost p -. cost best) /. cost best in
  Alcotest.(check bool) "young within 1%" true
    (rel (Periodic.young_period model ~checkpoint) < 0.01);
  Alcotest.(check bool) "daly within 1%" true
    (rel (Periodic.daly_period model ~checkpoint) < 0.01)

let () =
  Alcotest.run "periodic"
    [
      ( "periodic",
        [
          Alcotest.test_case "young" `Quick test_young;
          Alcotest.test_case "daly" `Quick test_daly;
          Alcotest.test_case "single segment" `Quick test_divisible_single_segment;
          Alcotest.test_case "exact split" `Quick test_divisible_exact_split;
          Alcotest.test_case "remainder" `Quick test_divisible_remainder;
          Alcotest.test_case "optimum beats neighbors" `Quick
            test_optimal_period_beats_neighbors;
          Alcotest.test_case "young/daly near optimum" `Quick
            test_optimal_close_to_daly;
        ] );
    ]
