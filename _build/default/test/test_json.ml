open Wfc_io

let expect_error = function
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error"

let parse_ok s =
  match Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse failed: %s" e

(* ---- parsing ---- *)

let test_parse_scalars () =
  Alcotest.(check bool) "null" true (parse_ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse_ok "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (parse_ok " false " = Json.Bool false);
  Alcotest.(check bool) "int" true (parse_ok "42" = Json.Number 42.);
  Alcotest.(check bool) "negative" true (parse_ok "-3.5" = Json.Number (-3.5));
  Alcotest.(check bool) "exponent" true (parse_ok "1e3" = Json.Number 1000.);
  Alcotest.(check bool) "string" true (parse_ok "\"hi\"" = Json.String "hi")

let test_parse_structures () =
  Alcotest.(check bool) "empty list" true (parse_ok "[]" = Json.List []);
  Alcotest.(check bool) "empty object" true (parse_ok "{}" = Json.Assoc []);
  Alcotest.(check bool) "nested" true
    (parse_ok {|{"a": [1, {"b": null}], "c": "x"}|}
    = Json.Assoc
        [
          ("a", Json.List [ Json.Number 1.; Json.Assoc [ ("b", Json.Null) ] ]);
          ("c", Json.String "x");
        ])

let test_parse_escapes () =
  Alcotest.(check bool) "escapes" true
    (parse_ok {|"a\"b\\c\nd\te"|} = Json.String "a\"b\\c\nd\te");
  Alcotest.(check bool) "unicode" true
    (parse_ok {|"Aé"|} = Json.String "A\xc3\xa9");
  (* surrogate pair: U+1F600 *)
  Alcotest.(check bool) "surrogates" true
    (parse_ok {|"😀"|} = Json.String "\xf0\x9f\x98\x80")

let test_parse_errors () =
  List.iter
    (fun s -> expect_error (Json.of_string s))
    [ ""; "{"; "[1,"; "nul"; "\"unterminated"; "01a"; "{\"a\" 1}"; "[1] extra";
      {|"\u12"|}; {|"\ud83d"|} ]

let test_roundtrip () =
  let v =
    Json.Assoc
      [
        ("name", Json.String "w\"eird\nname");
        ("xs", Json.List [ Json.Number 1.5; Json.Bool false; Json.Null ]);
        ("nested", Json.Assoc [ ("k", Json.List []) ]);
      ]
  in
  Alcotest.(check bool) "pretty roundtrip" true
    (parse_ok (Json.to_string v) = v);
  Alcotest.(check bool) "minified roundtrip" true
    (parse_ok (Json.to_string ~minify:true v) = v)

let test_number_rendering () =
  Alcotest.(check string) "integer" "42" (Json.to_string (Json.Number 42.));
  Alcotest.(check bool) "fraction preserved" true
    (parse_ok (Json.to_string (Json.Number 0.1)) = Json.Number 0.1)

let test_accessors () =
  let v = parse_ok {|{"a": 3, "b": [1, 2], "s": "x"}|} in
  Alcotest.(check bool) "member" true (Json.member "a" v = Ok (Json.Number 3.));
  expect_error (Json.member "z" v);
  Alcotest.(check bool) "to_int" true
    (Result.bind (Json.member "a" v) Json.to_int = Ok 3);
  expect_error (Result.bind (Json.member "s" v) Json.to_int);
  Alcotest.(check bool) "to_list length" true
    (match Result.bind (Json.member "b" v) Json.to_list with
    | Ok l -> List.length l = 2
    | Error _ -> false);
  Alcotest.(check bool) "to_string_value" true
    (Result.bind (Json.member "s" v) Json.to_string_value = Ok "x")

(* random JSON documents round-trip through print + parse *)
let gen_json =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Number (float_of_int i)) (int_range (-1000) 1000);
        map (fun x -> Json.Number x) (float_range (-1e6) 1e6);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            ( 1,
              map (fun xs -> Json.List xs)
                (list_size (int_range 0 4) (self (depth - 1))) );
            ( 1,
              map
                (fun kvs ->
                  (* duplicate keys would not round-trip; dedupe *)
                  let seen = Hashtbl.create 8 in
                  Json.Assoc
                    (List.filter
                       (fun (k, _) ->
                         if Hashtbl.mem seen k then false
                         else begin
                           Hashtbl.add seen k ();
                           true
                         end)
                       kvs))
                (list_size (int_range 0 4)
                   (pair key (self (depth - 1)))) );
          ])
    3

let prop_roundtrip =
  Wfc_test_util.qtest ~count:500 "print/parse round-trip (random documents)"
    gen_json
    (fun v -> Json.to_string ~minify:true v)
    (fun v ->
      Json.of_string (Json.to_string v) = Ok v
      && Json.of_string (Json.to_string ~minify:true v) = Ok v)

(* ---- workflow format ---- *)

let sample_dag () =
  Wfc_dag.Dag.of_weights
    ~checkpoint_cost:(fun _ w -> 0.1 *. w)
    ~recovery_cost:(fun _ w -> 0.05 *. w)
    ~weights:[| 4.; 2.5; 7. |] ~edges:[ (0, 2); (1, 2) ] ()

let test_dag_roundtrip () =
  let g = sample_dag () in
  match Workflow_format.dag_of_json (Workflow_format.dag_to_json g) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok g' ->
      Alcotest.(check bool) "tasks equal" true
        (Array.for_all2 Wfc_dag.Task.equal (Wfc_dag.Dag.tasks g)
           (Wfc_dag.Dag.tasks g'));
      Alcotest.(check bool) "edges equal" true
        (Wfc_dag.Dag.edges g = Wfc_dag.Dag.edges g')

let test_pegasus_roundtrip () =
  List.iter
    (fun fam ->
      let g =
        Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Proportional 0.1)
          (Wfc_workflows.Pegasus.generate fam ~n:60 ~seed:8)
      in
      match Workflow_format.dag_of_json (Workflow_format.dag_to_json g) with
      | Error e -> Alcotest.failf "decode failed: %s" e
      | Ok g' ->
          Alcotest.(check bool)
            (Wfc_workflows.Pegasus.family_name fam ^ " roundtrip")
            true
            (Array.for_all2 Wfc_dag.Task.equal (Wfc_dag.Dag.tasks g)
               (Wfc_dag.Dag.tasks g')
            && Wfc_dag.Dag.edges g = Wfc_dag.Dag.edges g'))
    Wfc_workflows.Pegasus.all

let test_schedule_roundtrip () =
  let g = sample_dag () in
  let s =
    Wfc_core.Schedule.make g ~order:[| 1; 0; 2 |]
      ~checkpointed:[| true; false; true |]
  in
  match Workflow_format.schedule_of_json g (Workflow_format.schedule_to_json s) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok s' ->
      for p = 0 to 2 do
        Alcotest.(check int) "order" (Wfc_core.Schedule.task_at s p)
          (Wfc_core.Schedule.task_at s' p)
      done;
      Alcotest.(check (list int)) "checkpoints"
        (Wfc_core.Schedule.checkpointed_tasks s)
        (Wfc_core.Schedule.checkpointed_tasks s')

let test_file_roundtrip () =
  let g = sample_dag () in
  let path = Filename.temp_file "wfc" ".json" in
  Workflow_format.save_dag path g;
  (match Workflow_format.load_dag path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok g' ->
      Alcotest.(check int) "n" (Wfc_dag.Dag.n_tasks g) (Wfc_dag.Dag.n_tasks g'));
  Sys.remove path

let test_decode_validates () =
  (* cyclic edges must be rejected by the Dag invariants *)
  let bad =
    {|{"name":"x","tasks":[{"id":0,"weight":1},{"id":1,"weight":1}],
       "edges":[[0,1],[1,0]]}|}
  in
  expect_error (Result.bind (Json.of_string bad) Workflow_format.dag_of_json);
  (* schedule violating precedence *)
  let g = sample_dag () in
  let bad_sched = {|{"order":[2,0,1],"checkpointed":[]}|} in
  expect_error
    (Result.bind (Json.of_string bad_sched) (Workflow_format.schedule_of_json g));
  (* checkpoint id out of range *)
  let bad_ckpt = {|{"order":[0,1,2],"checkpointed":[9]}|} in
  expect_error
    (Result.bind (Json.of_string bad_ckpt) (Workflow_format.schedule_of_json g))

let test_missing_costs_default_to_zero () =
  let minimal =
    {|{"tasks":[{"id":0,"weight":2}],"edges":[]}|}
  in
  match Result.bind (Json.of_string minimal) Workflow_format.dag_of_json with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok g ->
      let t = Wfc_dag.Dag.task g 0 in
      Alcotest.(check (float 0.)) "c" 0. t.Wfc_dag.Task.checkpoint_cost;
      Alcotest.(check string) "default label" "T0" t.Wfc_dag.Task.label

let () =
  Alcotest.run "json"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_parse_scalars;
          Alcotest.test_case "structures" `Quick test_parse_structures;
          Alcotest.test_case "escapes" `Quick test_parse_escapes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          prop_roundtrip;
          Alcotest.test_case "numbers" `Quick test_number_rendering;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
      ( "workflow_format",
        [
          Alcotest.test_case "dag roundtrip" `Quick test_dag_roundtrip;
          Alcotest.test_case "pegasus roundtrip" `Quick test_pegasus_roundtrip;
          Alcotest.test_case "schedule roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "decode validates" `Quick test_decode_validates;
          Alcotest.test_case "defaults" `Quick test_missing_costs_default_to_zero;
        ] );
    ]
