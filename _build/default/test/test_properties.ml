(* Cross-cutting properties tying the whole system together on random
   instances: scheduling invariants, consistency between the independent
   implementations, and optimality sanity checks. *)

open Wfc_core
module Dag = Wfc_dag.Dag
module Linearize = Wfc_dag.Linearize
module FM = Wfc_platform.Failure_model

let qtest = Wfc_test_util.qtest

let prop_heuristic_schedules_valid =
  qtest ~count:60 "heuristics emit valid schedules"
    (Wfc_test_util.gen_dag ~max_n:12 ())
    (Format.asprintf "%a" Dag.pp_stats)
    (fun g ->
      let model = FM.make ~lambda:0.05 () in
      List.for_all
        (fun ckpt ->
          List.for_all
            (fun lin ->
              let o = Heuristics.run model g ~lin ~ckpt in
              Dag.is_linearization g
                (Array.init (Dag.n_tasks g)
                   (Schedule.task_at o.Heuristics.schedule)))
            Linearize.all)
        Heuristics.all_ckpt_strategies)

let prop_brute_force_dominates_heuristics =
  qtest ~count:25 "no heuristic beats the exhaustive optimum"
    (Wfc_test_util.gen_dag ~max_n:6 ())
    (Format.asprintf "%a" Dag.pp_stats)
    (fun g ->
      let model = FM.make ~lambda:0.08 ~downtime:0.2 () in
      let _, opt = Brute_force.optimal model g in
      List.for_all
        (fun ckpt ->
          let _, o = Heuristics.best_over_linearizations model g ~ckpt in
          o.Heuristics.makespan >= opt -. 1e-9)
        Heuristics.all_ckpt_strategies)

let prop_checkpoint_never_helps_when_fail_free =
  qtest ~count:100 "lambda = 0: checkpoints only add their cost"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:10 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      let none =
        Schedule.with_checkpoints s (Array.make (Dag.n_tasks g) false)
      in
      Evaluator.expected_makespan FM.fail_free g none
      <= Evaluator.expected_makespan FM.fail_free g s +. 1e-9)

let prop_makespan_increases_with_lambda =
  qtest ~count:60 "expected makespan grows with the failure rate"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:9 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      let at lambda = Evaluator.expected_makespan (FM.make ~lambda ()) g s in
      let ms = List.map at [ 0.; 0.01; 0.05; 0.1; 0.2 ] in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
        | _ -> true
      in
      non_decreasing ms)

let prop_downtime_increases_makespan =
  qtest ~count:60 "downtime only hurts"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:9 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      let at downtime =
        Evaluator.expected_makespan (FM.make ~lambda:0.05 ~downtime ()) g s
      in
      at 0. <= at 1. +. 1e-9 && at 1. <= at 5. +. 1e-9)

let prop_chain_dp_optimal_on_random_chains =
  qtest ~count:40 "chain DP matches subset brute force"
    QCheck2.Gen.(
      let* n = int_range 2 8 in
      let* weights = array_repeat n (float_range 0.5 10.) in
      let* costs = array_repeat n (float_range 0.1 2.) in
      let* lambda = float_range 0.001 0.2 in
      return (weights, costs, lambda))
    (fun (w, c, lambda) ->
      Format.asprintf "n=%d lambda=%g w0=%g c0=%g" (Array.length w) lambda
        w.(0) c.(0))
    (fun (weights, costs, lambda) ->
      let g =
        Wfc_dag.Builders.chain
          ~checkpoint_cost:(fun i _ -> costs.(i))
          ~recovery_cost:(fun i _ -> costs.(i))
          ~weights ()
      in
      let model = FM.make ~lambda () in
      let sol = Chain_solver.solve model g in
      let order = Array.init (Array.length weights) Fun.id in
      let _, brute = Brute_force.optimal_checkpoints_for_order model g ~order in
      Wfc_test_util.close ~eps:1e-9 sol.Chain_solver.makespan brute)

let prop_join_order_beats_permutations =
  qtest ~count:40 "corrected join ordering is optimal on random joins"
    QCheck2.Gen.(
      let* n = int_range 2 5 in
      let* weights = array_repeat n (float_range 0.5 10.) in
      let* costs = array_repeat n (float_range 0.1 2.) in
      let* recs = array_repeat n (float_range 0.0 2.) in
      let* sink = float_range 0.5 5. in
      let* lambda = float_range 0.01 0.3 in
      let* mask = int_range 1 ((1 lsl n) - 1) in
      return (weights, costs, recs, sink, lambda, mask))
    (fun (w, _, _, _, lambda, mask) ->
      Format.asprintf "n=%d lambda=%g mask=%d" (Array.length w) lambda mask)
    (fun (weights, costs, recs, sink, lambda, mask) ->
      let n = Array.length weights in
      let g =
        Wfc_dag.Builders.join
          ~checkpoint_cost:(fun i _ -> if i < n then costs.(i) else 0.)
          ~recovery_cost:(fun i _ -> if i < n then recs.(i) else 0.)
          ~source_weights:weights ~sink_weight:sink ()
      in
      let model = FM.make ~lambda () in
      let ckpt = Array.init (n + 1) (fun v -> v < n && mask land (1 lsl v) <> 0) in
      let formula = Join_solver.expected_makespan model g ~ckpt in
      (* every alternative order of the checkpointed prefix must be no
         better; sample a handful of random permutations via RF *)
      let rng = Wfc_platform.Rng.create mask in
      let ok = ref true in
      for _ = 1 to 10 do
        let ck_list =
          List.filter (fun v -> ckpt.(v)) (List.init n Fun.id)
        in
        let shuffled =
          List.map snd
            (List.sort compare
               (List.map (fun v -> (Wfc_platform.Rng.int rng 1000000, v)) ck_list))
        in
        let rest = List.filter (fun v -> not ckpt.(v)) (List.init n Fun.id) in
        let order = Array.of_list (shuffled @ rest @ [ n ]) in
        let s = Schedule.make g ~order ~checkpointed:ckpt in
        if Evaluator.expected_makespan model g s < formula -. 1e-9 then
          ok := false
      done;
      !ok)

let prop_checkpoint_flags_budget =
  qtest ~count:80 "checkpoint_flags honors its budget"
    QCheck2.Gen.(
      let* g = Wfc_test_util.gen_dag ~max_n:12 () in
      let* n_ckpt = int_range 0 (Dag.n_tasks g) in
      return (g, n_ckpt))
    (fun (g, n_ckpt) -> Format.asprintf "%a n_ckpt=%d" Dag.pp_stats g n_ckpt)
    (fun (g, n_ckpt) ->
      let order = Linearize.run Linearize.Depth_first g in
      let count flags =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 flags
      in
      (* ranking strategies set exactly n_ckpt flags *)
      List.for_all
        (fun strat ->
          count (Heuristics.checkpoint_flags strat g ~order ~n_ckpt) = n_ckpt)
        [ Heuristics.Ckpt_weight; Heuristics.Ckpt_cost; Heuristics.Ckpt_outweight;
          Heuristics.Ckpt_efficiency ]
      (* periodic places at most n_ckpt - 1 checkpoints *)
      && count (Heuristics.checkpoint_flags Heuristics.Ckpt_periodic g ~order ~n_ckpt)
         <= Int.max 0 (n_ckpt - 1))

let prop_simulator_fail_free_identity =
  qtest ~count:100 "simulator at lambda 0 equals evaluator at lambda 0"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:10 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      let rng = Wfc_platform.Rng.create 3 in
      let r = Wfc_simulator.Sim.run ~rng FM.fail_free g s in
      Wfc_test_util.close r.Wfc_simulator.Sim.makespan
        (Evaluator.expected_makespan FM.fail_free g s))

let prop_pegasus_schedulable =
  (* end-to-end: every workflow family linearizes, schedules and evaluates
     to a finite makespan under a mild failure rate *)
  qtest ~count:20 "pegasus workflows schedule end to end"
    QCheck2.Gen.(
      let* fam = oneofl Wfc_workflows.Pegasus.all in
      let* n = int_range 20 60 in
      let* seed = int_range 0 1000 in
      return (fam, n, seed))
    (fun (fam, n, seed) ->
      Printf.sprintf "%s n=%d seed=%d" (Wfc_workflows.Pegasus.family_name fam) n seed)
    (fun (fam, n, seed) ->
      let g = Wfc_workflows.Pegasus.generate fam ~n ~seed in
      let g =
        Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Proportional 0.1) g
      in
      let mean = Wfc_workflows.Pegasus.mean_task_weight fam in
      let model = FM.make ~lambda:(0.01 /. mean) () in
      let o =
        Heuristics.run ~search:(Heuristics.Grid 8) model g
          ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight
      in
      Float.is_finite o.Heuristics.makespan
      && o.Heuristics.makespan >= Evaluator.fail_free_time g)

let () =
  Alcotest.run "properties"
    [
      ( "properties",
        [
          prop_heuristic_schedules_valid;
          prop_brute_force_dominates_heuristics;
          prop_checkpoint_never_helps_when_fail_free;
          prop_makespan_increases_with_lambda;
          prop_downtime_increases_makespan;
          prop_chain_dp_optimal_on_random_chains;
          prop_join_order_beats_permutations;
          prop_checkpoint_flags_budget;
          prop_simulator_fail_free_identity;
          prop_pegasus_schedulable;
        ] );
    ]
