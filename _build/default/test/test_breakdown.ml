(* Parallel Monte Carlo, activity breakdown and the energy model. *)

open Wfc_core
open Wfc_simulator
module Builders = Wfc_dag.Builders
module FM = Wfc_platform.Failure_model
module Stats = Wfc_platform.Stats

let chain () =
  Builders.chain
    ~weights:[| 4.; 6.; 2.; 5. |]
    ~checkpoint_cost:(fun _ _ -> 1.5)
    ~recovery_cost:(fun _ _ -> 1.)
    ()

let sched g =
  Schedule.make g ~order:[| 0; 1; 2; 3 |]
    ~checkpointed:[| true; false; true; false |]

(* ---- parallel Monte Carlo ---- *)

let test_parallel_matches_analytic () =
  let g = chain () in
  let s = sched g in
  let model = FM.make ~lambda:0.06 ~downtime:0.4 () in
  let expected = Evaluator.expected_makespan model g s in
  let est =
    Monte_carlo.estimate_parallel ~runs:40_000 ~domains:4 ~seed:5 model g s
  in
  Alcotest.(check int) "all runs counted" 40_000 (Stats.count est.Monte_carlo.makespan);
  if not (Monte_carlo.agrees_with est ~expected ~sigmas:5.) then
    Alcotest.failf "parallel estimate %.4f vs analytic %.4f"
      (Stats.mean est.Monte_carlo.makespan)
      expected

let test_parallel_deterministic () =
  let g = chain () in
  let s = sched g in
  let model = FM.make ~lambda:0.1 () in
  let run () =
    Stats.mean
      (Monte_carlo.estimate_parallel ~runs:2000 ~domains:3 ~seed:9 model g s)
        .Monte_carlo.makespan
  in
  Wfc_test_util.check_close "deterministic in (seed, domains)" (run ()) (run ())

let test_parallel_validation () =
  let g = chain () in
  let s = sched g in
  let model = FM.make ~lambda:0.1 () in
  (match Monte_carlo.estimate_parallel ~runs:0 ~seed:1 model g s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "runs = 0 accepted");
  match Monte_carlo.estimate_parallel ~runs:10 ~domains:0 ~seed:1 model g s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains = 0 accepted"

let test_parallel_more_domains_than_runs () =
  let g = chain () in
  let s = sched g in
  let model = FM.make ~lambda:0.1 () in
  let est = Monte_carlo.estimate_parallel ~runs:3 ~domains:16 ~seed:2 model g s in
  Alcotest.(check int) "3 runs" 3 (Stats.count est.Monte_carlo.makespan)

(* ---- breakdown ---- *)

let test_breakdown_fail_free () =
  let g = chain () in
  let s = sched g in
  let b = Sim_breakdown.run ~rng:(Wfc_platform.Rng.create 1) FM.fail_free g s in
  Wfc_test_util.check_close "compute = W" 17. b.Sim_breakdown.useful_compute;
  Wfc_test_util.check_close "checkpoint = 2 writes" 3. b.Sim_breakdown.checkpoint;
  Wfc_test_util.check_close "no recompute" 0. b.Sim_breakdown.recompute;
  Wfc_test_util.check_close "no recovery" 0. b.Sim_breakdown.recovery;
  Wfc_test_util.check_close "no loss" 0. b.Sim_breakdown.lost;
  Wfc_test_util.check_close "makespan = W + C" 20. b.Sim_breakdown.makespan

let test_breakdown_identity () =
  let g = chain () in
  let s = sched g in
  let model = FM.make ~lambda:0.08 ~downtime:0.7 () in
  let rng = Wfc_platform.Rng.create 7 in
  for _ = 1 to 300 do
    let b = Sim_breakdown.run ~rng model g s in
    Wfc_test_util.check_close "sum of activities = makespan"
      (b.Sim_breakdown.useful_compute +. b.Sim_breakdown.recompute
      +. b.Sim_breakdown.checkpoint +. b.Sim_breakdown.recovery
      +. b.Sim_breakdown.lost +. b.Sim_breakdown.downtime)
      b.Sim_breakdown.makespan;
    Wfc_test_util.check_close "useful compute is exactly W" 17.
      b.Sim_breakdown.useful_compute;
    Wfc_test_util.check_close "downtime = failures * D"
      (0.7 *. float_of_int b.Sim_breakdown.failures)
      b.Sim_breakdown.downtime
  done

let test_breakdown_same_draws_as_sim () =
  let g = chain () in
  let s = sched g in
  let model = FM.make ~lambda:0.1 ~downtime:1. () in
  let b = Sim_breakdown.run ~rng:(Wfc_platform.Rng.create 11) model g s in
  let r = Sim.run ~rng:(Wfc_platform.Rng.create 11) model g s in
  Wfc_test_util.check_close "same makespan" r.Sim.makespan b.Sim_breakdown.makespan;
  Alcotest.(check int) "same failures" r.Sim.failures b.Sim_breakdown.failures

let test_breakdown_mean_matches_analytic () =
  let g = chain () in
  let s = sched g in
  let model = FM.make ~lambda:0.05 () in
  let rng = Wfc_platform.Rng.create 13 in
  let stats = Stats.create () in
  for _ = 1 to 30_000 do
    Stats.add stats (Sim_breakdown.run ~rng model g s).Sim_breakdown.makespan
  done;
  let expected = Evaluator.expected_makespan model g s in
  if Float.abs (Stats.mean stats -. expected) > 5. *. Stats.std_error stats then
    Alcotest.fail "breakdown engine drifts from the evaluator"

(* ---- energy ---- *)

let test_energy_fail_free () =
  let g = chain () in
  let s = sched g in
  let e =
    Energy.estimate ~runs:10 ~seed:1 FM.fail_free g s
  in
  Wfc_test_util.check_close "deterministic closed form"
    (Energy.fail_free_energy Energy.default_power g s)
    (Stats.mean e.Energy.energy);
  (* 100 W * 17 s + 30 W * 3 s *)
  Wfc_test_util.check_close "value" 1790.
    (Energy.fail_free_energy Energy.default_power g s)

let test_energy_increases_with_failures () =
  let g = chain () in
  let s = sched g in
  let mean lambda =
    Stats.mean
      (Energy.estimate ~runs:5000 ~seed:3 (FM.make ~lambda ()) g s).Energy.energy
  in
  Alcotest.(check bool) "failures cost energy" true (mean 0.1 > mean 0.001)

let test_energy_custom_power () =
  let g = chain () in
  let s = sched g in
  let zero_io = { Energy.default_power with Energy.p_io = 0. } in
  Wfc_test_util.check_close "io excluded" 1700.
    (Energy.fail_free_energy zero_io g s)

let () =
  Alcotest.run "breakdown"
    [
      ( "parallel",
        [
          Alcotest.test_case "matches analytic" `Slow
            test_parallel_matches_analytic;
          Alcotest.test_case "deterministic" `Quick test_parallel_deterministic;
          Alcotest.test_case "validation" `Quick test_parallel_validation;
          Alcotest.test_case "domains > runs" `Quick
            test_parallel_more_domains_than_runs;
        ] );
      ( "breakdown",
        [
          Alcotest.test_case "fail-free" `Quick test_breakdown_fail_free;
          Alcotest.test_case "activity identity" `Quick test_breakdown_identity;
          Alcotest.test_case "same draws as Sim" `Quick
            test_breakdown_same_draws_as_sim;
          Alcotest.test_case "mean matches evaluator" `Slow
            test_breakdown_mean_matches_analytic;
        ] );
      ( "energy",
        [
          Alcotest.test_case "fail-free closed form" `Quick test_energy_fail_free;
          Alcotest.test_case "failures cost energy" `Slow
            test_energy_increases_with_failures;
          Alcotest.test_case "custom power" `Quick test_energy_custom_power;
        ] );
    ]
