open Wfc_dag
module FM = Wfc_platform.Failure_model

(* diamond with a shortcut edge 0 -> 3 implied by 0 -> 1 -> 3 and 0 -> 2 -> 3 *)
let diamond_with_shortcut () =
  Dag.of_weights
    ~weights:[| 1.; 2.; 3.; 4. |]
    ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3); (0, 3) ]
    ()

let test_redundant_edges () =
  let g = diamond_with_shortcut () in
  Alcotest.(check (list (pair int int))) "shortcut found" [ (0, 3) ]
    (Transform.redundant_edges g);
  let chain = Builders.chain ~weights:[| 1.; 1.; 1. |] () in
  Alcotest.(check (list (pair int int))) "chain has none" []
    (Transform.redundant_edges chain)

let test_transitive_reduction () =
  let g = diamond_with_shortcut () in
  let r = Transform.transitive_reduction g in
  Alcotest.(check int) "one edge dropped" 4 (Dag.n_edges r);
  Alcotest.(check bool) "shortcut gone" false (Dag.is_edge r 0 3);
  (* reachability preserved *)
  for v = 0 to 3 do
    Alcotest.(check (array bool))
      (Printf.sprintf "descendants of %d" v)
      (Dag.descendants g v) (Dag.descendants r v)
  done;
  (* idempotent *)
  Alcotest.(check int) "idempotent" 4
    (Dag.n_edges (Transform.transitive_reduction r))

let test_reduction_preserves_unchecked_makespan () =
  let g = diamond_with_shortcut () in
  let r = Transform.transitive_reduction g in
  let model = FM.make ~lambda:0.1 ~downtime:0.5 () in
  let order = [| 0; 1; 2; 3 |] in
  let s g = Wfc_core.Schedule.no_checkpoints g ~order in
  Wfc_test_util.check_close "no-checkpoint makespan invariant"
    (Wfc_core.Evaluator.expected_makespan model g (s g))
    (Wfc_core.Evaluator.expected_makespan model r (s r))

let test_reduction_changes_checkpointed_makespan () =
  (* checkpointing the middle task makes the shortcut edge semantically
     meaningful: the reduced DAG replays less *)
  let g =
    Dag.of_weights
      ~checkpoint_cost:(fun _ _ -> 0.2)
      ~recovery_cost:(fun _ _ -> 0.2)
      ~weights:[| 5.; 1.; 4. |]
      ~edges:[ (0, 1); (1, 2); (0, 2) ]
      ()
  in
  let r = Transform.transitive_reduction g in
  let model = FM.make ~lambda:0.1 () in
  let flags = [| false; true; false |] in
  let order = [| 0; 1; 2 |] in
  let m g = Wfc_core.Evaluator.expected_makespan model g
      (Wfc_core.Schedule.make g ~order ~checkpointed:flags) in
  Alcotest.(check bool) "reduced is strictly cheaper" true (m r < m g -. 1e-9)

let prop_reduction_never_hurts =
  Wfc_test_util.qtest ~count:150 "transitive reduction never increases makespan"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:9 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      let r = Transform.transitive_reduction g in
      let order = Array.init (Wfc_core.Schedule.n_tasks s)
          (Wfc_core.Schedule.task_at s) in
      let flags = Array.init (Dag.n_tasks g)
          (Wfc_core.Schedule.is_checkpointed s) in
      let s_r = Wfc_core.Schedule.make r ~order ~checkpointed:flags in
      List.for_all
        (fun model ->
          Wfc_core.Evaluator.expected_makespan model r s_r
          <= Wfc_core.Evaluator.expected_makespan model g s +. 1e-9)
        Wfc_test_util.models)

(* ---- chain fusion ---- *)

let test_fuse_whole_chain () =
  let g =
    Builders.chain ~weights:[| 1.; 2.; 3. |]
      ~checkpoint_cost:(fun i _ -> float_of_int i +. 1.)
      ~recovery_cost:(fun i _ -> 0.5 *. (float_of_int i +. 1.))
      ()
  in
  let f = Transform.fuse_chains g in
  Alcotest.(check int) "single task" 1 (Dag.n_tasks f.Transform.dag);
  Alcotest.(check (list int)) "members in order" [ 0; 1; 2 ]
    f.Transform.members.(0);
  let t = Dag.task f.Transform.dag 0 in
  Wfc_test_util.check_close "weights add" 6. t.Task.weight;
  Wfc_test_util.check_close "last checkpoint kept" 3. t.Task.checkpoint_cost;
  Wfc_test_util.check_close "last recovery kept" 1.5 t.Task.recovery_cost;
  Alcotest.(check string) "label" "T0+T1+T2" t.Task.label

let test_fuse_respects_branching () =
  (* fork: nothing to fuse at the source (out-degree 2); each branch is a
     2-chain that fuses *)
  let g =
    Dag.of_weights ~weights:[| 1.; 2.; 3.; 4.; 5. |]
      ~edges:[ (0, 1); (1, 2); (0, 3); (3, 4) ] ()
  in
  let f = Transform.fuse_chains g in
  Alcotest.(check int) "three tasks" 3 (Dag.n_tasks f.Transform.dag);
  Alcotest.(check int) "two edges" 2 (Dag.n_edges f.Transform.dag);
  (* total weight preserved *)
  Wfc_test_util.check_close "weight preserved" 15.
    (Dag.total_weight f.Transform.dag);
  (* member lists partition the original tasks *)
  let all = Array.to_list f.Transform.members |> List.concat |> List.sort compare in
  Alcotest.(check (list int)) "partition" [ 0; 1; 2; 3; 4 ] all

let test_fuse_predicate () =
  let g =
    Builders.chain ~weights:[| 1.; 2.; 3. |]
      ~recovery_cost:(fun i w -> if i = 1 then 3. *. w else 0.1 *. w)
      ()
  in
  (* only task 1 has r > w: only it is absorbed *)
  let f = Transform.fuse_unrecoverable g in
  Alcotest.(check int) "two tasks" 2 (Dag.n_tasks f.Transform.dag);
  Alcotest.(check (list int)) "0 and 1 merged" [ 0; 1 ] f.Transform.members.(0);
  Alcotest.(check (list int)) "2 alone" [ 2 ] f.Transform.members.(1)

let test_fuse_diamond_untouched () =
  let g = Builders.diamond ~width:3 () in
  let f = Transform.fuse_chains g in
  Alcotest.(check int) "no fusion possible" (Dag.n_tasks g)
    (Dag.n_tasks f.Transform.dag)

let prop_fusion_valid_dag =
  Wfc_test_util.qtest ~count:150 "fusion yields a valid DAG partitioning the tasks"
    (Wfc_test_util.gen_dag ~max_n:12 ())
    (Format.asprintf "%a" Dag.pp_stats)
    (fun g ->
      let f = Transform.fuse_chains g in
      let dag = f.Transform.dag in
      let all =
        Array.to_list f.Transform.members |> List.concat |> List.sort compare
      in
      all = List.init (Dag.n_tasks g) Fun.id
      && Dag.is_linearization dag (Dag.topological_order dag)
      && Wfc_test_util.close (Dag.total_weight dag) (Dag.total_weight g))

let () =
  Alcotest.run "transform"
    [
      ( "reduction",
        [
          Alcotest.test_case "redundant edges" `Quick test_redundant_edges;
          Alcotest.test_case "reduce" `Quick test_transitive_reduction;
          Alcotest.test_case "no-checkpoint invariance" `Quick
            test_reduction_preserves_unchecked_makespan;
          Alcotest.test_case "checkpointed semantics differ" `Quick
            test_reduction_changes_checkpointed_makespan;
          prop_reduction_never_hurts;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "whole chain" `Quick test_fuse_whole_chain;
          Alcotest.test_case "branching" `Quick test_fuse_respects_branching;
          Alcotest.test_case "predicate" `Quick test_fuse_predicate;
          Alcotest.test_case "diamond untouched" `Quick
            test_fuse_diamond_untouched;
          prop_fusion_valid_dag;
        ] );
    ]
