Deterministic smoke tests of the wfc command-line tool. Everything below is
analytic (no Monte Carlo), so the printed numbers are stable.

Workflow generation summary:

  $ ../bin/wfc.exe generate -w montage -n 50 --seed 42
  dag: 50 tasks, 109 edges, depth 8, weight total 551.923 (avg 11.0385, min 2.25654, max 23.0191)
  sources: 9, sinks: 1, critical path: 117.2 s

The 14 heuristics on a small CyberShake instance:

  $ ../bin/wfc.exe evaluate -w cybershake -n 30 --mtbf 500 -s CkptW --grid 8
  DF-CkptW on CyberShake (30 tasks), platform: lambda=0.002 (MTBF 500 s), downtime 0 s
    E[makespan] = 1106.27 s
    T_inf       = 889.73 s (ratio 1.2434)
    checkpoints = 29 (evaluator calls: 6)

Optimal chain checkpointing (Toueg-Babaoglu DP):

  $ ../bin/wfc.exe solve chain -n 5 --seed 1 --mtbf 300
  random chain of 5 tasks: optimal E[makespan] = 368.51 s
  checkpointed tasks: T0 T1 T2

Unknown workflow families are rejected:

  $ ../bin/wfc.exe generate -w nosuch 2>&1 | head -2
  wfc: option '-w': unknown workflow family "nosuch"
  Usage: wfc generate [OPTION]…
  $ echo $?
  0
