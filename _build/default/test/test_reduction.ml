open Wfc_core

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_build_structure () =
  let inst = Reduction.build ~weights:[| 3; 5; 7 |] ~target:8 in
  let g = inst.Reduction.dag in
  Alcotest.(check int) "n+1 tasks" 4 (Wfc_dag.Dag.n_tasks g);
  Alcotest.(check bool) "is a join" true (Join_solver.is_join g = Some 3);
  Alcotest.(check (float 0.)) "zero-weight sink" 0. (Wfc_dag.Dag.weight g 3);
  (* lambda = 1 / min w *)
  Wfc_test_util.check_close "lambda" (1. /. 3.)
    inst.Reduction.model.Wfc_platform.Failure_model.lambda;
  Array.iter
    (fun (t : Wfc_dag.Task.t) ->
      if t.Wfc_dag.Task.id < 3 then begin
        if t.Wfc_dag.Task.checkpoint_cost <= 0. then
          Alcotest.fail "c_i must be positive";
        Alcotest.(check (float 0.)) "r_i = 0" 0. t.Wfc_dag.Task.recovery_cost
      end)
    (Wfc_dag.Dag.tasks g)

let test_build_validation () =
  expect_invalid (fun () -> Reduction.build ~weights:[||] ~target:1);
  expect_invalid (fun () -> Reduction.build ~weights:[| 0; 2 |] ~target:1);
  expect_invalid (fun () -> Reduction.build ~weights:[| 1; 2 |] ~target:0)

(* the key identity of the proof: e^{lambda (w_i + c_i)} - 1 =
   lambda w_i e^{lambda X} *)
let test_cost_identity () =
  let inst = Reduction.build ~weights:[| 3; 5; 7; 4 |] ~target:9 in
  let lambda = inst.Reduction.model.Wfc_platform.Failure_model.lambda in
  let x = float_of_int inst.Reduction.target in
  Array.iter
    (fun (t : Wfc_dag.Task.t) ->
      if t.Wfc_dag.Task.id < 4 then
        Wfc_test_util.check_close ~eps:1e-9 "identity"
          (lambda *. t.Wfc_dag.Task.weight *. Float.exp (lambda *. x))
          (Float.expm1
             (lambda *. (t.Wfc_dag.Task.weight +. t.Wfc_dag.Task.checkpoint_cost))))
    (Wfc_dag.Dag.tasks inst.Reduction.dag)

(* normalized makespan as a function of the non-checkpointed sum W:
   lambda e^{lambda X} (S - W) + e^{lambda W} - 1, minimized exactly at
   W = X *)
let test_makespan_profile () =
  let weights = [| 3; 5; 7; 4 |] in
  let inst = Reduction.build ~weights ~target:9 in
  let lambda = inst.Reduction.model.Wfc_platform.Failure_model.lambda in
  let s = 19. and x = 9. in
  let closed_form w =
    (lambda *. Float.exp (lambda *. x) *. (s -. w)) +. Float.expm1 (lambda *. w)
  in
  let subsets =
    [ [| false; false; false; false |]  (* W = 0 *)
    ; [| true; false; false; false |]  (* W = 3 *)
    ; [| false; true; true; false |]  (* W = 12 *)
    ; [| false; true; false; true |]  (* W = 9 = X *)
    ; [| true; true; false; false |]  (* W = 8 *)
    ]
  in
  List.iter
    (fun not_ckpt ->
      let w =
        Array.to_list (Array.mapi (fun i b -> if b then weights.(i) else 0) not_ckpt)
        |> List.fold_left ( + ) 0 |> float_of_int
      in
      Wfc_test_util.check_close ~eps:1e-9 "profile"
        (closed_form w)
        (Reduction.normalized_makespan inst ~not_checkpointed:not_ckpt))
    subsets;
  (* threshold is the minimum, attained only at W = X *)
  Wfc_test_util.check_close ~eps:1e-9 "threshold = profile at X"
    (closed_form x) inst.Reduction.threshold

let test_yes_instance () =
  (* 3 + 5 + 4 admits 9 = 5 + 4 *)
  let inst = Reduction.build ~weights:[| 3; 5; 7; 4 |] ~target:9 in
  (match Reduction.solve_subset_sum ~weights:[| 3; 5; 7; 4 |] ~target:9 with
  | None -> Alcotest.fail "subset sum solver missed a witness"
  | Some witness ->
      Alcotest.(check bool) "witness meets threshold" true
        (Reduction.meets_threshold inst ~not_checkpointed:witness));
  (* a wrong subset misses the threshold *)
  Alcotest.(check bool) "W = 8 misses" false
    (Reduction.meets_threshold inst
       ~not_checkpointed:[| true; true; false; false |]);
  Alcotest.(check bool) "W = 12 misses" false
    (Reduction.meets_threshold inst
       ~not_checkpointed:[| false; true; true; false |])

let test_no_instance () =
  (* weights 4, 6, 10 and target 9: no subset sums to 9 *)
  (match Reduction.solve_subset_sum ~weights:[| 4; 6; 10 |] ~target:9 with
  | None -> ()
  | Some _ -> Alcotest.fail "phantom witness");
  let inst = Reduction.build ~weights:[| 4; 6; 10 |] ~target:9 in
  (* no subset meets the threshold *)
  for mask = 0 to 7 do
    let not_ckpt = Array.init 3 (fun i -> mask land (1 lsl i) <> 0) in
    if Reduction.meets_threshold inst ~not_checkpointed:not_ckpt then
      Alcotest.failf "mask %d wrongly meets the threshold" mask
  done

let test_equivalence_exhaustive () =
  (* full equivalence on a batch of small instances: some subset meets the
     threshold iff SUBSET-SUM is a yes-instance *)
  let cases =
    [ ([| 2; 3; 4 |], 5); ([| 2; 3; 4 |], 6); ([| 2; 4; 6 |], 7);
      ([| 5; 5; 5 |], 10); ([| 3; 5; 7; 9 |], 12); ([| 3; 5; 7; 9 |], 13);
      ([| 4; 8; 12 |], 10) ]
  in
  List.iter
    (fun (weights, target) ->
      let n = Array.length weights in
      let inst = Reduction.build ~weights ~target in
      let any_meets = ref false in
      for mask = 0 to (1 lsl n) - 1 do
        let not_ckpt = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
        if Reduction.meets_threshold inst ~not_checkpointed:not_ckpt then
          any_meets := true
      done;
      let has_witness =
        Reduction.solve_subset_sum ~weights ~target <> None
      in
      Alcotest.(check bool)
        (Printf.sprintf "equivalence for target %d" target)
        has_witness !any_meets)
    cases

let test_subset_sum_solver () =
  (match Reduction.solve_subset_sum ~weights:[| 1; 2; 5 |] ~target:8 with
  | Some w -> Alcotest.(check (list bool)) "all items" [ true; true; true ]
                (Array.to_list w)
  | None -> Alcotest.fail "missed 1+2+5");
  (match Reduction.solve_subset_sum ~weights:[| 7; 11 |] ~target:5 with
  | None -> ()
  | Some _ -> Alcotest.fail "impossible target");
  (* witness sums correctly on a larger instance *)
  let weights = [| 13; 4; 9; 21; 7; 2; 16 |] in
  match Reduction.solve_subset_sum ~weights ~target:30 with
  | None -> Alcotest.fail "30 = 21 + 7 + 2 exists"
  | Some w ->
      let total =
        Array.to_list (Array.mapi (fun i b -> if b then weights.(i) else 0) w)
        |> List.fold_left ( + ) 0
      in
      Alcotest.(check int) "witness sums to target" 30 total

let () =
  Alcotest.run "reduction"
    [
      ( "reduction",
        [
          Alcotest.test_case "build structure" `Quick test_build_structure;
          Alcotest.test_case "build validation" `Quick test_build_validation;
          Alcotest.test_case "cost identity" `Quick test_cost_identity;
          Alcotest.test_case "makespan profile" `Quick test_makespan_profile;
          Alcotest.test_case "yes instance" `Quick test_yes_instance;
          Alcotest.test_case "no instance" `Quick test_no_instance;
          Alcotest.test_case "exhaustive equivalence" `Quick
            test_equivalence_exhaustive;
          Alcotest.test_case "subset-sum solver" `Quick test_subset_sum_solver;
        ] );
    ]
