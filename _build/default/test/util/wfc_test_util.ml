(** Shared helpers for the test suites: float comparison, reusable failure
    models, and QCheck generators for random DAGs and schedules. *)

let close ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_close ?eps msg a b =
  if not (close ?eps a b) then
    Alcotest.failf "%s: %.17g <> %.17g" msg a b

let model ?(downtime = 0.) lambda =
  Wfc_platform.Failure_model.make ~lambda ~downtime ()

(* A selection of failure regimes: benign, moderate, harsh, with and without
   downtime. *)
let models =
  [ model 0.; model 1e-4; model 0.01; model ~downtime:0.5 0.05;
    model ~downtime:2. 0.2 ]

(* ---- QCheck generators ---- *)

open QCheck2

(* Random DAG: pick n, then for each vertex a random subset of earlier
   vertices as predecessors (possibly none, so multi-source graphs and
   disconnected vertices both occur). Weights and costs are small positive
   floats. *)
let gen_dag ?(max_n = 10) () =
  let open Gen in
  let* n = int_range 1 max_n in
  let* edge_flags =
    array_repeat (n * n) (frequencyl [ (3, false); (1, true) ])
  in
  let* weights = array_repeat n (float_range 0.5 10.) in
  let* ckpt_costs = array_repeat n (float_range 0.0 2.) in
  let* rec_costs = array_repeat n (float_range 0.0 2.) in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if edge_flags.((u * n) + v) then edges := (u, v) :: !edges
    done
  done;
  return
    (Wfc_dag.Dag.of_weights
       ~checkpoint_cost:(fun i _ -> ckpt_costs.(i))
       ~recovery_cost:(fun i _ -> rec_costs.(i))
       ~weights ~edges:!edges ())

(* Random schedule for a DAG: a random topological order (random priority
   DF/BF mix via random tie-breaking) plus random checkpoint flags. *)
let gen_schedule_for g =
  let open Gen in
  let n = Wfc_dag.Dag.n_tasks g in
  let* seed = int_range 0 1_000_000 in
  let rng = Wfc_platform.Rng.create seed in
  let order =
    Wfc_dag.Linearize.run
      ~rand:(fun b -> Wfc_platform.Rng.int rng b)
      Wfc_dag.Linearize.Random_first g
  in
  let* flags = array_repeat n bool in
  return (Wfc_core.Schedule.make g ~order ~checkpointed:flags)

let gen_dag_and_schedule ?max_n () =
  let open Gen in
  let* g = gen_dag ?max_n () in
  let* s = gen_schedule_for g in
  return (g, s)

let print_dag_schedule (g, s) =
  Format.asprintf "%a / %a" Wfc_dag.Dag.pp_stats g Wfc_core.Schedule.pp s

(* Run a QCheck property as an alcotest case. *)
let qtest ?(count = 200) name gen print prop =
  QCheck_alcotest.to_alcotest
    (Test.make ~count ~name ~print gen prop)
