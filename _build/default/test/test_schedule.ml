open Wfc_core
module Dag = Wfc_dag.Dag
module Builders = Wfc_dag.Builders

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let g () = Builders.chain ~weights:[| 1.; 2.; 3.; 4. |] ()

let test_make () =
  let g = g () in
  let s =
    Schedule.make g ~order:[| 0; 1; 2; 3 |]
      ~checkpointed:[| false; true; false; true |]
  in
  Alcotest.(check int) "n" 4 (Schedule.n_tasks s);
  Alcotest.(check int) "task_at 2" 2 (Schedule.task_at s 2);
  Alcotest.(check int) "position_of 3" 3 (Schedule.position_of s 3);
  Alcotest.(check bool) "ckpt 1" true (Schedule.is_checkpointed s 1);
  Alcotest.(check bool) "ckpt 0" false (Schedule.is_checkpointed s 0);
  Alcotest.(check int) "count" 2 (Schedule.checkpoint_count s);
  Alcotest.(check (list int)) "ckpt tasks" [ 1; 3 ] (Schedule.checkpointed_tasks s)

let test_make_validation () =
  let g = g () in
  expect_invalid (fun () ->
      Schedule.make g ~order:[| 1; 0; 2; 3 |] ~checkpointed:(Array.make 4 false));
  expect_invalid (fun () ->
      Schedule.make g ~order:[| 0; 1; 2; 3 |] ~checkpointed:(Array.make 3 false));
  expect_invalid (fun () ->
      Schedule.make g ~order:[| 0; 1; 2 |] ~checkpointed:(Array.make 4 false))

let test_arrays_copied () =
  let g = g () in
  let order = [| 0; 1; 2; 3 |] and flags = Array.make 4 false in
  let s = Schedule.make g ~order ~checkpointed:flags in
  flags.(0) <- true;
  order.(0) <- 99;
  Alcotest.(check bool) "flags copied" false (Schedule.is_checkpointed s 0);
  Alcotest.(check int) "order copied" 0 (Schedule.task_at s 0)

let test_of_positions () =
  let g = g () in
  let s = Schedule.of_positions g ~order:[| 0; 1; 2; 3 |] ~ckpt_positions:[ 1; 3 ] in
  Alcotest.(check (list int)) "tasks" [ 1; 3 ] (Schedule.checkpointed_tasks s);
  expect_invalid (fun () ->
      Schedule.of_positions g ~order:[| 0; 1; 2; 3 |] ~ckpt_positions:[ 9 ])

let test_with_checkpoints () =
  let g = g () in
  let s = Schedule.no_checkpoints g ~order:[| 0; 1; 2; 3 |] in
  Alcotest.(check int) "none" 0 (Schedule.checkpoint_count s);
  let s' = Schedule.with_checkpoints s [| true; true; true; true |] in
  Alcotest.(check int) "all" 4 (Schedule.checkpoint_count s');
  Alcotest.(check int) "original untouched" 0 (Schedule.checkpoint_count s);
  expect_invalid (fun () -> ignore (Schedule.with_checkpoints s [| true |]))

let test_all_checkpoints () =
  let g = g () in
  let s = Schedule.all_checkpoints g ~order:[| 0; 1; 2; 3 |] in
  Alcotest.(check int) "all" 4 (Schedule.checkpoint_count s)

let test_position_of_roundtrip () =
  let g =
    Wfc_dag.Dag.of_weights ~weights:[| 1.; 1.; 1.; 1. |]
      ~edges:[ (0, 2); (1, 3) ] ()
  in
  let s = Schedule.no_checkpoints g ~order:[| 1; 0; 3; 2 |] in
  for p = 0 to 3 do
    Alcotest.(check int) "roundtrip" p (Schedule.position_of s (Schedule.task_at s p))
  done

let test_pp () =
  let g = g () in
  let s = Schedule.of_positions g ~order:[| 0; 1; 2; 3 |] ~ckpt_positions:[ 1 ] in
  Alcotest.(check string) "pp" "T0 T1* T2 T3" (Format.asprintf "%a" Schedule.pp s)

let () =
  Alcotest.run "schedule"
    [
      ( "schedule",
        [
          Alcotest.test_case "make" `Quick test_make;
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "arrays copied" `Quick test_arrays_copied;
          Alcotest.test_case "of_positions" `Quick test_of_positions;
          Alcotest.test_case "with_checkpoints" `Quick test_with_checkpoints;
          Alcotest.test_case "all_checkpoints" `Quick test_all_checkpoints;
          Alcotest.test_case "position_of roundtrip" `Quick
            test_position_of_roundtrip;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
    ]
