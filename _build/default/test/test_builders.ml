open Wfc_dag

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_chain () =
  let g = Builders.chain ~weights:[| 1.; 2.; 3. |] () in
  Alcotest.(check int) "edges" 2 (Dag.n_edges g);
  Alcotest.(check bool) "0->1" true (Dag.is_edge g 0 1);
  Alcotest.(check bool) "1->2" true (Dag.is_edge g 1 2);
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources g);
  Alcotest.(check (list int)) "sinks" [ 2 ] (Dag.sinks g);
  expect_invalid (fun () -> Builders.chain ~weights:[||] ())

let test_chain_single () =
  let g = Builders.chain ~weights:[| 4. |] () in
  Alcotest.(check int) "edges" 0 (Dag.n_edges g)

let test_fork () =
  let g = Builders.fork ~source_weight:5. ~sink_weights:[| 1.; 2.; 3. |] () in
  Alcotest.(check int) "tasks" 4 (Dag.n_tasks g);
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources g);
  Alcotest.(check (list int)) "sinks" [ 1; 2; 3 ] (Dag.sinks g);
  Alcotest.(check (float 1e-9)) "source w" 5. (Dag.weight g 0);
  Alcotest.(check (list int)) "succ src" [ 1; 2; 3 ] (Dag.succs g 0);
  expect_invalid (fun () -> Builders.fork ~source_weight:1. ~sink_weights:[||] ())

let test_join () =
  let g = Builders.join ~source_weights:[| 1.; 2. |] ~sink_weight:9. () in
  Alcotest.(check int) "tasks" 3 (Dag.n_tasks g);
  Alcotest.(check (list int)) "sources" [ 0; 1 ] (Dag.sources g);
  Alcotest.(check (list int)) "sinks" [ 2 ] (Dag.sinks g);
  Alcotest.(check (float 1e-9)) "sink w" 9. (Dag.weight g 2);
  expect_invalid (fun () -> Builders.join ~source_weights:[||] ~sink_weight:1. ())

let test_fork_join () =
  let g =
    Builders.fork_join ~source_weight:1. ~middle_weights:[| 2.; 3.; 4. |]
      ~sink_weight:5. ()
  in
  Alcotest.(check int) "tasks" 5 (Dag.n_tasks g);
  Alcotest.(check int) "edges" 6 (Dag.n_edges g);
  Alcotest.(check (list int)) "preds sink" [ 1; 2; 3 ] (Dag.preds g 4);
  Alcotest.(check int) "depth" 2 (Array.fold_left Int.max 0 (Dag.levels g))

let test_diamond () =
  let g = Builders.diamond ~width:4 () in
  Alcotest.(check int) "tasks" 6 (Dag.n_tasks g);
  Alcotest.(check (float 1e-9)) "total" 6. (Dag.total_weight g);
  expect_invalid (fun () -> Builders.diamond ~width:0 ())

let test_layered () =
  let rng = Wfc_platform.Rng.create 11 in
  let g =
    Builders.layered
      ~rand:(fun b -> Wfc_platform.Rng.int rng b)
      ~n_layers:4
      ~layer_width:(fun l -> l + 1)
      ~weight:(fun id -> float_of_int (id + 1))
      ()
  in
  Alcotest.(check int) "tasks" 10 (Dag.n_tasks g);
  (* every vertex beyond layer 0 has at least one predecessor *)
  for v = 1 to 9 do
    if v >= 1 then
      Alcotest.(check bool)
        (Printf.sprintf "v%d connected" v)
        true
        (v = 0 || Dag.in_degree g v > 0 || v < 1)
  done;
  let lv = Dag.levels g in
  Alcotest.(check int) "depth" 3 (Array.fold_left Int.max 0 lv);
  Alcotest.(check bool) "valid topo" true
    (Dag.is_linearization g (Dag.topological_order g))

let test_layered_deterministic () =
  let build seed =
    let rng = Wfc_platform.Rng.create seed in
    Builders.layered
      ~rand:(fun b -> Wfc_platform.Rng.int rng b)
      ~n_layers:3
      ~layer_width:(fun _ -> 3)
      ~weight:(fun _ -> 1.)
      ()
  in
  Alcotest.(check (list (pair int int)))
    "same seed same edges"
    (Dag.edges (build 5))
    (Dag.edges (build 5))

let test_layered_validation () =
  let rand _ = 0 in
  expect_invalid (fun () ->
      Builders.layered ~rand ~n_layers:0 ~layer_width:(fun _ -> 1)
        ~weight:(fun _ -> 1.) ());
  expect_invalid (fun () ->
      Builders.layered ~rand ~n_layers:2 ~layer_width:(fun _ -> 0)
        ~weight:(fun _ -> 1.) ());
  expect_invalid (fun () ->
      Builders.layered ~rand ~n_layers:2 ~layer_width:(fun _ -> 1)
        ~weight:(fun _ -> 1.) ~edge_density:0 ())

let () =
  Alcotest.run "builders"
    [
      ( "builders",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "chain single" `Quick test_chain_single;
          Alcotest.test_case "fork" `Quick test_fork;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "fork_join" `Quick test_fork_join;
          Alcotest.test_case "diamond" `Quick test_diamond;
          Alcotest.test_case "layered" `Quick test_layered;
          Alcotest.test_case "layered deterministic" `Quick
            test_layered_deterministic;
          Alcotest.test_case "layered validation" `Quick test_layered_validation;
        ] );
    ]
