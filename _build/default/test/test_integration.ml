(* End-to-end scenarios across libraries: generate -> serialize -> reload ->
   transform -> schedule -> evaluate -> simulate, exactly as a downstream
   user would compose the APIs. *)

open Wfc_core
module Dag = Wfc_dag.Dag
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model
module Linearize = Wfc_dag.Linearize

let test_full_pipeline_via_json () =
  (* generate, persist, reload, schedule, persist the schedule, reload it,
     and check every representation agrees on the expected makespan *)
  let g = CM.apply (CM.Proportional 0.1) (P.generate P.Cybershake ~n:50 ~seed:21) in
  let model = FM.of_mtbf ~mtbf:1500. ~downtime:3. () in
  let o = Heuristics.run ~search:(Heuristics.Grid 16) model g
      ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight in
  let dag_path = Filename.temp_file "wfc_int" ".json" in
  let sched_path = Filename.temp_file "wfc_int_s" ".json" in
  Wfc_io.Workflow_format.save_dag dag_path g;
  Wfc_io.Workflow_format.save_schedule sched_path o.Heuristics.schedule;
  (match Wfc_io.Workflow_format.load_dag dag_path with
  | Error e -> Alcotest.failf "dag reload: %s" e
  | Ok g' -> (
      match Wfc_io.Workflow_format.load_schedule g' sched_path with
      | Error e -> Alcotest.failf "schedule reload: %s" e
      | Ok s' ->
          Wfc_test_util.check_close ~eps:1e-12 "same expected makespan"
            o.Heuristics.makespan
            (Evaluator.expected_makespan model g' s')));
  Sys.remove dag_path;
  Sys.remove sched_path

let test_full_pipeline_via_dax () =
  (* DAX loses costs by design; reapplying the cost model must restore the
     exact same scheduling problem *)
  let g0 = P.generate P.Genome ~n:40 ~seed:22 in
  let path = Filename.temp_file "wfc_int" ".dax" in
  Wfc_io.Dax.save path g0;
  (match Wfc_io.Dax.load path with
  | Error e -> Alcotest.failf "dax reload: %s" e
  | Ok g1 ->
      let cost = CM.Proportional 0.1 in
      let a = CM.apply cost g0 and b = CM.apply cost g1 in
      let model = FM.of_mtbf ~mtbf:20_000. () in
      let run g =
        (Heuristics.run ~search:(Heuristics.Grid 12) model g
           ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight)
          .Heuristics.makespan
      in
      Wfc_test_util.check_close ~eps:1e-9 "identical problem" (run a) (run b));
  Sys.remove path

let test_fusion_then_schedule () =
  (* fusing unrecoverable tasks must not break scheduling, and the fused
     instance should not schedule worse than T_inf scaling suggests *)
  let g =
    Wfc_dag.Builders.chain
      ~weights:[| 10.; 1.; 12.; 2.; 8. |]
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ~recovery_cost:(fun i w -> if i mod 2 = 1 then 3. *. w else 0.2 *. w)
      ()
  in
  let f = Wfc_dag.Transform.fuse_unrecoverable g in
  let fused = f.Wfc_dag.Transform.dag in
  Alcotest.(check bool) "something fused" true (Dag.n_tasks fused < 5);
  Wfc_test_util.check_close "work conserved" (Dag.total_weight g)
    (Dag.total_weight fused);
  let model = FM.make ~lambda:0.02 () in
  let m g = (Chain_solver.solve model g).Chain_solver.makespan in
  (* fusing only removes checkpoint locations, so the fused optimum cannot
     beat the original chain optimum *)
  Alcotest.(check bool) "fusion cannot improve the optimum" true
    (m fused >= m g -. 1e-9)

let test_analytic_vs_all_simulation_engines () =
  (* one schedule, four engines, one truth *)
  let g = CM.apply (CM.Proportional 0.1) (P.generate P.Montage ~n:40 ~seed:23) in
  let model = FM.make ~lambda:2e-3 ~downtime:1. () in
  let order = Linearize.run Linearize.Depth_first g in
  let flags = Heuristics.checkpoint_flags Heuristics.Ckpt_weight g ~order ~n_ckpt:15 in
  let sched = Schedule.make g ~order ~checkpointed:flags in
  let expected = Evaluator.expected_makespan model g sched in
  let runs = 25_000 in
  let check name mean se =
    if Float.abs (mean -. expected) > 5.5 *. Float.max se (1e-12 *. mean) then
      Alcotest.failf "%s: %.2f vs analytic %.2f (se %.3f)" name mean expected se
  in
  let module MC = Wfc_simulator.Monte_carlo in
  let module Stats = Wfc_platform.Stats in
  let e1 = MC.estimate ~runs ~seed:31 model g sched in
  check "memoryless" (Stats.mean e1.MC.makespan) (Stats.std_error e1.MC.makespan);
  let e2 =
    MC.estimate_renewal ~runs ~seed:32
      ~failures:(Wfc_platform.Distribution.exponential ~rate:2e-3) ~downtime:1.
      g sched
  in
  check "renewal" (Stats.mean e2.MC.makespan) (Stats.std_error e2.MC.makespan);
  let e3 = MC.estimate_parallel ~runs ~domains:4 ~seed:33 model g sched in
  check "parallel" (Stats.mean e3.MC.makespan) (Stats.std_error e3.MC.makespan);
  (* trace engine, via its summaries *)
  let rng = Wfc_platform.Rng.create 34 in
  let s = Stats.create () in
  for _ = 1 to runs / 5 do
    let summary, _ = Wfc_simulator.Sim_trace.run ~rng model g sched in
    Stats.add s summary.Wfc_simulator.Sim.makespan
  done;
  check "traced" (Stats.mean s) (Stats.std_error s)

let test_solver_stack_consistency () =
  (* the same join instance through every applicable solver *)
  let g =
    Wfc_dag.Builders.join
      ~source_weights:[| 8.; 3.; 6.; 4. |] ~sink_weight:2.
      ~checkpoint_cost:(fun _ _ -> 1.)
      ~recovery_cost:(fun _ _ -> 1.)
      ()
  in
  let model = FM.make ~lambda:0.07 () in
  let uniform = Join_solver.solve_uniform_costs model g in
  let exact = Join_solver.solve_exact model g in
  let sched = Join_solver.schedule_of ~model g ~ckpt:exact.Join_solver.ckpt in
  let order = Array.init (Dag.n_tasks g) (Schedule.task_at sched) in
  let bnb = Exact_solver.optimal_checkpoints model g ~order in
  let _, brute = Brute_force.optimal model g in
  Wfc_test_util.check_close ~eps:1e-9 "uniform = exact"
    uniform.Join_solver.makespan exact.Join_solver.makespan;
  Wfc_test_util.check_close ~eps:1e-9 "exact = global brute force"
    exact.Join_solver.makespan brute;
  Alcotest.(check bool) "B&B on the optimal order matches" true
    (Wfc_test_util.close ~eps:1e-9 bnb.Exact_solver.makespan brute)

let test_bounds_hold_on_real_workflows () =
  List.iter
    (fun fam ->
      let g = CM.apply (CM.Proportional 0.1) (P.generate fam ~n:60 ~seed:24) in
      let model = FM.make ~lambda:(0.1 /. P.mean_task_weight fam) () in
      let lb = Bounds.lower_bound model g in
      let ub = Bounds.upper_bound model g in
      let o =
        Heuristics.run ~search:(Heuristics.Grid 16) model g
          ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight
      in
      if not (lb <= ub +. 1e-9) then
        Alcotest.failf "%s: lb %.1f above ub %.1f" (P.family_name fam) lb ub;
      if not (lb <= o.Heuristics.makespan +. 1e-9) then
        Alcotest.failf "%s: lb %.1f above heuristic %.1f" (P.family_name fam)
          lb o.Heuristics.makespan;
      (* the searched N never reaches n, so CkptW can land a hair above the
         checkpoint-everything upper bound; allow that sliver *)
      if not (o.Heuristics.makespan <= ub *. 1.01) then
        Alcotest.failf "%s: heuristic %.1f far above the upper bound %.1f"
          (P.family_name fam) o.Heuristics.makespan ub)
    P.extended

let () =
  Alcotest.run "integration"
    [
      ( "integration",
        [
          Alcotest.test_case "json pipeline" `Quick test_full_pipeline_via_json;
          Alcotest.test_case "dax pipeline" `Quick test_full_pipeline_via_dax;
          Alcotest.test_case "fusion then schedule" `Quick
            test_fusion_then_schedule;
          Alcotest.test_case "all simulation engines" `Slow
            test_analytic_vs_all_simulation_engines;
          Alcotest.test_case "solver stack" `Quick test_solver_stack_consistency;
          Alcotest.test_case "bounds on real workflows" `Quick
            test_bounds_hold_on_real_workflows;
        ] );
    ]
