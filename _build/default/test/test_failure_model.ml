module FM = Wfc_platform.Failure_model

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_constructors () =
  let m = FM.make ~lambda:0.01 ~downtime:2. () in
  Alcotest.(check (float 1e-12)) "lambda" 0.01 m.FM.lambda;
  Alcotest.(check (float 1e-12)) "downtime" 2. m.FM.downtime;
  Alcotest.(check (float 1e-9)) "mtbf" 100. (FM.mtbf m);
  let m2 = FM.of_mtbf ~mtbf:1000. () in
  Alcotest.(check (float 1e-12)) "of_mtbf" 0.001 m2.FM.lambda;
  let m3 = FM.of_platform ~processors:100 ~proc_mtbf:1e5 () in
  Alcotest.(check (float 1e-12)) "of_platform" 0.001 m3.FM.lambda;
  Alcotest.(check (float 0.)) "fail_free" 0. FM.fail_free.FM.lambda;
  Alcotest.(check bool) "fail_free mtbf" true (FM.mtbf FM.fail_free = infinity)

let test_validation () =
  expect_invalid (fun () -> FM.make ~lambda:(-1.) ());
  expect_invalid (fun () -> FM.make ~lambda:Float.nan ());
  expect_invalid (fun () -> FM.make ~lambda:1. ~downtime:(-0.1) ());
  expect_invalid (fun () -> FM.of_mtbf ~mtbf:0. ());
  expect_invalid (fun () -> FM.of_platform ~processors:0 ~proc_mtbf:1. ());
  expect_invalid (fun () -> FM.of_platform ~processors:4 ~proc_mtbf:(-1.) ())

let e m ~w ~c ~r = FM.expected_exec_time m ~work:w ~checkpoint:c ~recovery:r

(* Equation (1) computed directly, without expm1 tricks. *)
let reference lambda d ~w ~c ~r =
  Float.exp (lambda *. r) *. ((1. /. lambda) +. d)
  *. (Float.exp (lambda *. (w +. c)) -. 1.)

let test_equation_one () =
  let cases =
    [ (0.01, 0., 10., 1., 2.); (0.1, 0.5, 3., 0., 0.); (1e-4, 0., 100., 10., 5.);
      (0.5, 2., 1., 0.2, 0.7) ]
  in
  List.iter
    (fun (lambda, d, w, c, r) ->
      let m = FM.make ~lambda ~downtime:d () in
      Wfc_test_util.check_close ~eps:1e-12 "E[t] matches Eq. (1)"
        (reference lambda d ~w ~c ~r)
        (e m ~w ~c ~r))
    cases

let test_fail_free_limit () =
  let m = FM.fail_free in
  Alcotest.(check (float 1e-12)) "w+c" 11. (e m ~w:10. ~c:1. ~r:5.);
  (* and continuity: tiny lambda stays close to w+c *)
  let m' = FM.make ~lambda:1e-12 () in
  Wfc_test_util.check_close ~eps:1e-6 "continuous at 0" 11.
    (e m' ~w:10. ~c:1. ~r:5.)

let test_monotonicity () =
  let m = FM.make ~lambda:0.05 ~downtime:1. () in
  let base = e m ~w:10. ~c:1. ~r:2. in
  Alcotest.(check bool) "increasing in w" true (e m ~w:11. ~c:1. ~r:2. > base);
  Alcotest.(check bool) "increasing in c" true (e m ~w:10. ~c:2. ~r:2. > base);
  Alcotest.(check bool) "increasing in r" true (e m ~w:10. ~c:1. ~r:3. > base);
  Alcotest.(check bool) "at least fail-free time" true (base > 11.)

let test_zero_work () =
  let m = FM.make ~lambda:0.05 () in
  Alcotest.(check (float 1e-12)) "zero work, zero ckpt" 0. (e m ~w:0. ~c:0. ~r:3.)

let test_args_validated () =
  let m = FM.make ~lambda:0.05 () in
  expect_invalid (fun () -> ignore (e m ~w:(-1.) ~c:0. ~r:0.));
  expect_invalid (fun () -> ignore (e m ~w:1. ~c:(-1.) ~r:0.));
  expect_invalid (fun () -> ignore (e m ~w:1. ~c:0. ~r:Float.nan))

let test_expected_time_lost () =
  let lambda = 0.1 in
  let m = FM.make ~lambda () in
  (* E[tlost(w)] = 1/lambda - w / (e^{lambda w} - 1) *)
  let w = 7. in
  Wfc_test_util.check_close ~eps:1e-12 "tlost"
    ((1. /. lambda) -. (w /. (Float.exp (lambda *. w) -. 1.)))
    (FM.expected_time_lost m ~work:w);
  (* tlost is below both w and the mean 1/lambda, and grows with w *)
  Alcotest.(check bool) "below w" true (FM.expected_time_lost m ~work:w < w);
  Alcotest.(check bool) "below mean" true
    (FM.expected_time_lost m ~work:50. < 1. /. lambda);
  Alcotest.(check bool) "grows" true
    (FM.expected_time_lost m ~work:8. > FM.expected_time_lost m ~work:7.);
  Alcotest.(check (float 1e-12)) "zero work" 0. (FM.expected_time_lost m ~work:0.);
  expect_invalid (fun () -> ignore (FM.expected_time_lost FM.fail_free ~work:1.))

let test_success_probability () =
  let m = FM.make ~lambda:0.01 () in
  Wfc_test_util.check_close ~eps:1e-12 "e^-lw" (Float.exp (-0.5))
    (FM.success_probability m ~work:50.);
  Alcotest.(check (float 0.)) "certain when fail-free" 1.
    (FM.success_probability FM.fail_free ~work:1e9)

(* The defining property of E[t]: it satisfies the renewal equation
   E = p (w+c+l_s) + (1-p)(l_f + D + r-term...). We verify by Monte Carlo in
   test_simulator; here check the recursive identity
   E[t(w;c;r)] = E[t(w+c;0;0)] evaluated with recovery folded in:
   E[t(w;c;r)] = e^{lambda r} E[t(w;c;0)]. *)
let test_recovery_factorization () =
  let m = FM.make ~lambda:0.07 ~downtime:0.4 () in
  Wfc_test_util.check_close ~eps:1e-12 "factorization"
    (Float.exp (0.07 *. 3.) *. e m ~w:5. ~c:1. ~r:0.)
    (e m ~w:5. ~c:1. ~r:3.)

let () =
  Alcotest.run "failure_model"
    [
      ( "failure_model",
        [
          Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "equation (1)" `Quick test_equation_one;
          Alcotest.test_case "fail-free limit" `Quick test_fail_free_limit;
          Alcotest.test_case "monotonicity" `Quick test_monotonicity;
          Alcotest.test_case "zero work" `Quick test_zero_work;
          Alcotest.test_case "argument validation" `Quick test_args_validated;
          Alcotest.test_case "expected time lost" `Quick test_expected_time_lost;
          Alcotest.test_case "success probability" `Quick
            test_success_probability;
          Alcotest.test_case "recovery factorization" `Quick
            test_recovery_factorization;
        ] );
    ]
