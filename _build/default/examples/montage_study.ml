(* Scheduling study on a realistic Montage workflow: compare all 14
   heuristics of the paper (3 linearizations x 4 searched checkpointing
   strategies + the 2 DF baselines) on one synthetic sky-mosaic DAG.

   Run with: dune exec examples/montage_study.exe [n] [mtbf] *)

open Wfc_core
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module Linearize = Wfc_dag.Linearize
module FM = Wfc_platform.Failure_model

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 150 in
  let mtbf =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 1000.
  in
  let g = CM.apply (CM.Proportional 0.1) (P.generate P.Montage ~n ~seed:3) in
  let model = FM.of_mtbf ~mtbf () in
  Format.printf "Montage, %d tasks, c_i = r_i = w_i/10, %a@.@." n FM.pp model;

  let tinf = Evaluator.fail_free_time g in
  let table =
    Wfc_reporting.Table.create
      ~columns:[ "heuristic"; "E[makespan]"; "ratio"; "checkpoints"; "evals" ]
  in
  let searched = [ Heuristics.Ckpt_weight; Heuristics.Ckpt_cost;
                   Heuristics.Ckpt_outweight; Heuristics.Ckpt_periodic ] in
  let baselines = [ Heuristics.Ckpt_never; Heuristics.Ckpt_always ] in
  let add lin ckpt =
    let o = Heuristics.run ~search:(Heuristics.Grid 48) model g ~lin ~ckpt in
    Wfc_reporting.Table.add_row table
      [
        Heuristics.name lin ckpt;
        Printf.sprintf "%.1f" o.Heuristics.makespan;
        Printf.sprintf "%.4f" (o.Heuristics.makespan /. tinf);
        string_of_int (Schedule.checkpoint_count o.Heuristics.schedule);
        string_of_int o.Heuristics.evaluations;
      ]
  in
  List.iter (add Linearize.Depth_first) baselines;
  List.iter (fun ckpt -> List.iter (fun lin -> add lin ckpt) Linearize.all)
    searched;
  Wfc_reporting.Table.print table;
  Format.printf
    "@.T_inf = %.1f s; every searched heuristic explores the checkpoint \
     count N on a 48-point grid.@."
    tinf
