examples/resilience_tuning.mli:
