examples/quickstart.mli:
