examples/montage_study.mli:
