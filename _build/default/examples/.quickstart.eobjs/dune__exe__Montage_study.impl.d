examples/montage_study.ml: Array Evaluator Format Heuristics List Printf Schedule Sys Wfc_core Wfc_dag Wfc_platform Wfc_reporting Wfc_workflows
