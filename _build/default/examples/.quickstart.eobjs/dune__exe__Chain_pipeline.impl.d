examples/chain_pipeline.ml: Array Chain_solver Evaluator Format Fun Heuristics List Schedule Wfc_core Wfc_dag Wfc_platform
