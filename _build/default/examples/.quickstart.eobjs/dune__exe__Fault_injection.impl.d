examples/fault_injection.ml: Evaluator Float Format Heuristics List Printf Schedule Wfc_core Wfc_dag Wfc_platform Wfc_reporting Wfc_simulator Wfc_workflows
