examples/chain_pipeline.mli:
