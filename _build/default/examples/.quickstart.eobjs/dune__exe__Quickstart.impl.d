examples/quickstart.ml: Evaluator Format Heuristics Schedule Wfc_core Wfc_dag Wfc_platform Wfc_simulator
