examples/resilience_tuning.ml: Bounds Evaluator Format Heuristics List Local_search Printf Schedule Wfc_core Wfc_dag Wfc_platform Wfc_reporting Wfc_simulator Wfc_workflows
