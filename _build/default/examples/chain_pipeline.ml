(* Optimal checkpointing of a linear pipeline: the Toueg-Babaoglu dynamic
   program (the only previously solved case of DAG-ChkptSched) on a
   genomics-style read-processing chain, compared with the paper's searched
   heuristics running on the same chain.

   Run with: dune exec examples/chain_pipeline.exe *)

open Wfc_core
module Builders = Wfc_dag.Builders
module FM = Wfc_platform.Failure_model

let stage_names =
  [| "fastQSplit"; "filterContams"; "sol2sanger"; "fastq2bfq"; "map";
     "mapMerge"; "maqIndex"; "pileup" |]

let weights = [| 400.; 350.; 80.; 180.; 4200.; 900.; 500.; 250. |]

let () =
  let g =
    Builders.chain ~weights
      ~checkpoint_cost:(fun _ w -> 0.1 *. w)
      ~recovery_cost:(fun _ w -> 0.1 *. w)
      ()
  in
  let model = FM.of_mtbf ~mtbf:5000. ~downtime:10. () in
  Format.printf "Epigenomics pipeline as a chain, c_i = r_i = w_i/10, %a@.@."
    FM.pp model;

  let sol = Chain_solver.solve model g in
  Format.printf "Optimal checkpoint placement (dynamic program):@.";
  Array.iteri
    (fun i ck ->
      Format.printf "  %-13s w=%5.0f s  %s@." stage_names.(i) weights.(i)
        (if ck then "CHECKPOINT" else "-"))
    sol.Chain_solver.checkpointed;
  Format.printf "  E[makespan] = %.1f s (T_inf = %.0f s, ratio %.4f)@.@."
    sol.Chain_solver.makespan
    (Evaluator.fail_free_time g)
    (sol.Chain_solver.makespan /. Evaluator.fail_free_time g);

  (* The general-DAG machinery reaches the same value on this chain. *)
  let order = Array.init (Array.length weights) Fun.id in
  let sched = Schedule.make g ~order ~checkpointed:sol.Chain_solver.checkpointed in
  Format.printf "general evaluator on the same schedule: %.1f s@.@."
    (Evaluator.expected_makespan model g sched);

  Format.printf "searched heuristics on the same chain:@.";
  List.iter
    (fun ckpt ->
      let o = Heuristics.run model g ~lin:Wfc_dag.Linearize.Depth_first ~ckpt in
      Format.printf "  %-12s E[makespan] = %8.1f s  (%d checkpoints)@."
        (Heuristics.ckpt_strategy_name ckpt)
        o.Heuristics.makespan
        (Schedule.checkpoint_count o.Heuristics.schedule))
    Heuristics.all_ckpt_strategies;
  Format.printf
    "@.The dynamic program is optimal for chains; the searched heuristics@.\
     land within a few percent of it, topology-aware CkptD closest.@."
