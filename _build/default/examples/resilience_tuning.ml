(* Resilience tuning for one workflow across platform reliabilities: how the
   optimal checkpoint count, the distance to the certified lower bound and
   the makespan tail evolve as the MTBF shrinks — the view an operator
   sizing a platform would want.

   Run with: dune exec examples/resilience_tuning.exe *)

open Wfc_core
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model
module MC = Wfc_simulator.Monte_carlo

let () =
  let g = CM.apply (CM.Proportional 0.1) (P.generate P.Genome ~n:80 ~seed:7) in
  let tinf = Evaluator.fail_free_time g in
  Format.printf "Genome, 80 tasks, c_i = r_i = w_i/10, T_inf = %.0f s@.@." tinf;
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "MTBF (s)"; "checkpoints"; "E[T]/T_inf"; "gap to LB"; "p99/T_inf" ]
  in
  List.iter
    (fun mtbf ->
      let model = FM.of_mtbf ~mtbf () in
      let o =
        Heuristics.run ~search:(Heuristics.Grid 40) model g
          ~lin:Wfc_dag.Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight
      in
      let refined = Local_search.improve ~max_evaluations:500 model g
          o.Heuristics.schedule in
      let gap = Bounds.optimality_gap model g ~makespan:refined.Local_search.makespan in
      let samples =
        MC.makespan_samples ~runs:4000 ~seed:1 model g refined.Local_search.schedule
      in
      Wfc_reporting.Table.add_row table
        [
          Printf.sprintf "%.0f" mtbf;
          string_of_int
            (Schedule.checkpoint_count refined.Local_search.schedule);
          Printf.sprintf "%.4f" (refined.Local_search.makespan /. tinf);
          Printf.sprintf "%.1f%%" (100. *. gap);
          Printf.sprintf "%.4f"
            (Wfc_platform.Sample_set.quantile samples 0.99 /. tinf);
        ])
    [ 1e6; 1e5; 3e4; 1e4; 3e3 ];
  Wfc_reporting.Table.print table;
  Format.printf
    "@.Reading: as failures become frequent the tuned schedule checkpoints@.\
     more aggressively; the certified gap to the dependency-free lower@.\
     bound widens because failures interact with the DAG structure; and@.\
     the 99th percentile tracks the mean closely once checkpoints cap the@.\
     damage a single failure can do.@."
