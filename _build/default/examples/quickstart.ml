(* Quickstart: build a small workflow, pick a schedule, and compare expected
   makespans with and without checkpoints.

   Run with: dune exec examples/quickstart.exe *)

open Wfc_core
module Dag = Wfc_dag.Dag
module Linearize = Wfc_dag.Linearize
module FM = Wfc_platform.Failure_model

let () =
  (* The DAG of Figure 1 in the paper: two entry tasks, one exit task.
     Checkpointing a task costs 10% of its weight; recovery costs the same. *)
  let g =
    Dag.of_weights
      ~checkpoint_cost:(fun _ w -> 0.1 *. w)
      ~recovery_cost:(fun _ w -> 0.1 *. w)
      ~weights:[| 10.; 20.; 30.; 40.; 50.; 60.; 70.; 80. |]
      ~edges:[ (0, 3); (3, 4); (3, 5); (4, 6); (5, 6); (1, 2); (2, 7); (6, 7) ]
      ()
  in
  Format.printf "%a@." Dag.pp_stats g;

  (* A platform with a 1000 s MTBF and no downtime. *)
  let model = FM.of_mtbf ~mtbf:1000. () in
  Format.printf "%a@.@." FM.pp model;

  (* Schedule 1: depth-first order, no checkpoints. *)
  let order = Linearize.run Linearize.Depth_first g in
  let bare = Schedule.no_checkpoints g ~order in
  Format.printf "no checkpoints:   %a@." Schedule.pp bare;
  Format.printf "  E[makespan] = %.2f s (T_inf = %.0f s)@.@."
    (Evaluator.expected_makespan model g bare)
    (Evaluator.fail_free_time g);

  (* Schedule 2: same order, checkpoints chosen by the paper's best
     heuristic, CkptW (exhaustive search over the checkpoint count). *)
  let best = Heuristics.run model g ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight in
  Format.printf "DF-CkptW (N = %d): %a@." best.Heuristics.n_ckpt Schedule.pp
    best.Heuristics.schedule;
  Format.printf "  E[makespan] = %.2f s (ratio %.4f)@.@." best.Heuristics.makespan
    (best.Heuristics.makespan /. Evaluator.fail_free_time g);

  (* Validate the analytic expectation against fault-injection simulation. *)
  let est =
    Wfc_simulator.Monte_carlo.estimate ~runs:20_000 ~seed:1 model g
      best.Heuristics.schedule
  in
  let mean = Wfc_platform.Stats.mean est.Wfc_simulator.Monte_carlo.makespan in
  let lo, hi = Wfc_platform.Stats.confidence95 est.Wfc_simulator.Monte_carlo.makespan in
  Format.printf "Monte Carlo check: %.2f s (95%% CI [%.2f, %.2f], 20k runs)@."
    mean lo hi;

  (* Export the checkpointed schedule for inspection with Graphviz. *)
  let dot =
    Wfc_dag.Dot.to_dot ~name:"quickstart"
      ~checkpointed:(Schedule.is_checkpointed best.Heuristics.schedule)
      ~highlight_order:order g
  in
  Wfc_dag.Dot.write_file "quickstart.dot" dot;
  Format.printf "schedule written to quickstart.dot@."
