(* Cross-validation of the analytic evaluator (Theorem 3) against the
   discrete-event fault-injection simulator, on a CyberShake workflow under
   increasingly harsh failure rates.

   Run with: dune exec examples/fault_injection.exe *)

open Wfc_core
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model
module Stats = Wfc_platform.Stats
module MC = Wfc_simulator.Monte_carlo

let () =
  let g = CM.apply (CM.Proportional 0.1) (P.generate P.Cybershake ~n:60 ~seed:5) in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  let flags =
    Heuristics.checkpoint_flags Heuristics.Ckpt_weight g ~order ~n_ckpt:20
  in
  let sched = Schedule.make g ~order ~checkpointed:flags in
  Format.printf
    "CyberShake, 60 tasks, DF order, 20 checkpoints by decreasing weight@.@.";
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "MTBF (s)"; "analytic E[T]"; "simulated mean"; "95% CI"; "sigma";
          "failures/run" ]
  in
  List.iter
    (fun mtbf ->
      let model = FM.of_mtbf ~mtbf ~downtime:5. () in
      let analytic = Evaluator.expected_makespan model g sched in
      let est = MC.estimate ~runs:20_000 ~seed:11 model g sched in
      let mean = Stats.mean est.MC.makespan in
      let lo, hi = Stats.confidence95 est.MC.makespan in
      let sigma =
        Float.abs (mean -. analytic) /. Stats.std_error est.MC.makespan
      in
      Wfc_reporting.Table.add_row table
        [
          Printf.sprintf "%.0f" mtbf;
          Printf.sprintf "%.1f" analytic;
          Printf.sprintf "%.1f" mean;
          Printf.sprintf "[%.1f, %.1f]" lo hi;
          Printf.sprintf "%.2f" sigma;
          Printf.sprintf "%.2f" (Stats.mean est.MC.failures);
        ])
    [ 10_000.; 3000.; 1000.; 300. ];
  Wfc_reporting.Table.print table;
  Format.printf
    "@.The analytic expectation falls within a few standard errors of the@.\
     simulated mean at every failure rate: Theorem 3's O(n^2) computation@.\
     replaces 20,000 stochastic runs per configuration.@."
