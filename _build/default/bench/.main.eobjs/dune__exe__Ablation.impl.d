bench/ablation.ml: Evaluator Exact_solver Figures Heuristics Int List Local_search Periodic Printf Schedule Wfc_core Wfc_dag Wfc_platform Wfc_reporting Wfc_simulator Wfc_workflows
