bench/figures.ml: Evaluator Filename Heuristics List Option Printf String Wfc_core Wfc_dag Wfc_platform Wfc_reporting Wfc_workflows
