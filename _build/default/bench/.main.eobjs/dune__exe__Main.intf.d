bench/main.mli:
