bench/main.ml: Ablation Figures Int Micro Printf Sys Unix
