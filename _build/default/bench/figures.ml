(* Reproduction of every figure of the paper's evaluation section.

   Each sub-figure is a set of series (one line in the plot); a series maps
   the x axis (task count for Figures 2-6, failure rate for Figure 7) to the
   ratio T / T_inf, where T is the expected makespan of the schedule built by
   one heuristic and T_inf the failure-free, checkpoint-free time.

   Environment knobs (read by [main.ml] and passed here):
   - full:  extend task counts to the paper's 50..700 range (default: a
     faster 50..300 sweep with the same shape);
   - csv:   directory to dump the series as CSV files;
   - seed:  workflow generation seed. *)

open Wfc_core
module Dag = Wfc_dag.Dag
module Linearize = Wfc_dag.Linearize
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model

type config = {
  full : bool;
  csv_dir : string option;
  seed : int;
  seeds : int;  (* number of workflow seeds averaged per point *)
  search : Heuristics.search;
}

let default_config =
  { full = false; csv_dir = None; seed = 42; seeds = 1;
    search = Heuristics.Grid 32 }

(* average a per-seed ratio over cfg.seeds workflow instances *)
let averaged cfg f =
  let acc = ref 0. in
  for s = 0 to cfg.seeds - 1 do
    acc := !acc +. f (cfg.seed + s)
  done;
  !acc /. float_of_int cfg.seeds

let task_counts cfg =
  if cfg.full then [ 50; 100; 200; 300; 400; 500; 600; 700 ]
  else [ 50; 100; 150; 200; 300 ]

(* The failure rates of the evaluation section: lambda = 1e-3 everywhere
   except Genome, whose tasks are an order of magnitude heavier. *)
let lambda_for = function
  | P.Montage | P.Ligo | P.Cybershake -> 1e-3
  (* heavy tasks (Genome's map, SIPHT's Blast) call for a longer MTBF *)
  | P.Genome | P.Sipht -> 1e-4

let lin_name = Linearize.strategy_name
let ck_name = Heuristics.ckpt_strategy_name

(* Deterministic RF linearizations: a fresh stream per (figure, point). *)
let rf_rand cfg ~salt =
  let rng = Wfc_platform.Rng.create (cfg.seed + (salt * 7919)) in
  fun b -> Wfc_platform.Rng.int rng b

let prepared_workflow ?seed cfg family ~n ~cost =
  let seed = Option.value seed ~default:cfg.seed in
  CM.apply cost (P.generate family ~n ~seed)

let ratio_of_outcome g (o : Heuristics.outcome) =
  o.Heuristics.makespan /. Evaluator.fail_free_time g

(* One (linearization, strategy) point. *)
let point_fixed_lin cfg model g ~salt lin ckpt =
  let o =
    Heuristics.run ~search:cfg.search ~rand:(rf_rand cfg ~salt) model g ~lin
      ~ckpt
  in
  ratio_of_outcome g o

(* Best linearization for a strategy, as plotted in Figures 3 and 5-7; the
   paper restricts the CkptNvr and CkptAlws baselines to DF. *)
let point_best_lin cfg model g ~salt ckpt =
  match ckpt with
  | Heuristics.Ckpt_never | Heuristics.Ckpt_always ->
      point_fixed_lin cfg model g ~salt Linearize.Depth_first ckpt
  | _ ->
      let _, o =
        Heuristics.best_over_linearizations ~search:cfg.search
          ~rand:(rf_rand cfg ~salt) model g ~ckpt
      in
      ratio_of_outcome g o

(* ---- figure skeletons ---- *)

let emit cfg ~figure ~title ~x_label series =
  Printf.printf "\n== %s: %s ==\n" figure title;
  Wfc_reporting.Table.print (Wfc_reporting.Series.to_table ~x_label series);
  match cfg.csv_dir with
  | None -> ()
  | Some dir ->
      let file =
        Filename.concat dir
          (String.map (function ' ' | ',' | '=' | '/' -> '_' | c -> c)
             (figure ^ "_" ^ title)
          ^ ".csv")
      in
      Wfc_reporting.Csv.write_file file
        ~header:[ "series"; x_label; "ratio" ]
        ~rows:(Wfc_reporting.Series.to_csv_rows series)

(* Figures 2 and 4: impact of the linearization strategy; series are
   {DF,BF,RF} x {CkptW, CkptC}. *)
let linearization_figure cfg ~figure family ~cost =
  let lambda = lambda_for family in
  let model = FM.make ~lambda () in
  let counts = task_counts cfg in
  let series =
    List.concat_map
      (fun ckpt ->
        List.map
          (fun lin ->
            let points =
              List.mapi
                (fun i n ->
                  ( float_of_int n,
                    averaged cfg (fun seed ->
                        let g = prepared_workflow ~seed cfg family ~n ~cost in
                        point_fixed_lin cfg model g
                          ~salt:((i * 31) + n + seed)
                          lin ckpt) ))
                counts
            in
            Wfc_reporting.Series.make
              ~name:(lin_name lin ^ "-" ^ ck_name ckpt)
              ~points)
          Linearize.all)
      [ Heuristics.Ckpt_weight; Heuristics.Ckpt_cost ]
  in
  emit cfg ~figure
    ~title:
      (Printf.sprintf "%s lambda=%g %s" (P.family_name family) lambda
         (CM.name cost))
    ~x_label:"n" series

(* Figures 3, 5 and 6: impact of the checkpointing strategy (best
   linearization per strategy). *)
let checkpointing_figure cfg ~figure family ~cost =
  let lambda = lambda_for family in
  let model = FM.make ~lambda () in
  let counts = task_counts cfg in
  let series =
    List.map
      (fun ckpt ->
        let points =
          List.mapi
            (fun i n ->
              ( float_of_int n,
                averaged cfg (fun seed ->
                    let g = prepared_workflow ~seed cfg family ~n ~cost in
                    point_best_lin cfg model g ~salt:((i * 17) + n + seed) ckpt)
              ))
            counts
        in
        Wfc_reporting.Series.make ~name:(ck_name ckpt) ~points)
      Heuristics.all_ckpt_strategies
  in
  emit cfg ~figure
    ~title:
      (Printf.sprintf "%s lambda=%g %s" (P.family_name family) lambda
         (CM.name cost))
    ~x_label:"n" series

(* Figure 7: 200-task workflows under a failure-rate sweep. *)
let lambda_sweep_figure cfg ~figure family ~cost =
  let lambdas =
    match family with
    | P.Genome -> [ 1e-6; 5e-5; 9e-5; 1.4e-4; 1.8e-4; 2.3e-4; 2.7e-4 ]
    | _ -> [ 1e-4; 2.5e-4; 3.8e-4; 5.2e-4; 6.6e-4; 8e-4; 9.3e-4 ]
  in
  let n = 200 in
  let series =
    List.map
      (fun ckpt ->
        let points =
          List.mapi
            (fun i lambda ->
              let model = FM.make ~lambda () in
              ( lambda,
                averaged cfg (fun seed ->
                    let g = prepared_workflow ~seed cfg family ~n ~cost in
                    point_best_lin cfg model g ~salt:(i + 1 + seed) ckpt) ))
            lambdas
        in
        Wfc_reporting.Series.make ~name:(ck_name ckpt) ~points)
      Heuristics.all_ckpt_strategies
  in
  emit cfg ~figure
    ~title:(Printf.sprintf "%s %d tasks %s" (P.family_name family) n (CM.name cost))
    ~x_label:"lambda" series

(* ---- the figures themselves ---- *)

let figure2 cfg =
  List.iter
    (fun family ->
      linearization_figure cfg ~figure:"fig2" family ~cost:(CM.Proportional 0.1))
    [ P.Cybershake; P.Ligo; P.Genome ]

let figure3 cfg =
  List.iter
    (fun family ->
      checkpointing_figure cfg ~figure:"fig3" family ~cost:(CM.Proportional 0.1))
    P.all

let figure4 cfg =
  List.iter
    (fun cost -> linearization_figure cfg ~figure:"fig4" P.Cybershake ~cost)
    [ CM.Constant 10.; CM.Constant 5.; CM.Proportional 0.01 ]

let figure5 cfg =
  List.iter
    (fun family ->
      checkpointing_figure cfg ~figure:"fig5" family ~cost:(CM.Proportional 0.01))
    P.all

let figure6 cfg =
  List.iter
    (fun family ->
      checkpointing_figure cfg ~figure:"fig6" family ~cost:(CM.Constant 5.))
    P.all

let figure7 cfg =
  List.iter
    (fun family ->
      lambda_sweep_figure cfg ~figure:"fig7" family ~cost:(CM.Proportional 0.1))
    P.all

let all_figures = [ (2, figure2); (3, figure3); (4, figure4); (5, figure5); (6, figure6); (7, figure7) ]

let run cfg = function
  | Some id -> (
      match List.assoc_opt id all_figures with
      | Some f -> f cfg
      | None -> Printf.eprintf "unknown figure %d (expected 2..7)\n" id)
  | None -> List.iter (fun (_, f) -> f cfg) all_figures
