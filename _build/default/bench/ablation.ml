(* Ablation and extension studies, beyond the paper's figures:

   A1  local-search refinement: how much the paper's one-parameter
       checkpoint families (top-N) leave on the table;
   A2  robustness to the exponential assumption: schedules tuned under
       exponential failures, executed under Weibull renewal processes of
       equal MTBF;
   A3  non-blocking checkpointing (the paper's future-work section):
       simulated gain of overlapping checkpoint I/O with computation;
   A4  the divisible-load periodic theory (Young / Daly) next to the
       DAG-aware CkptPer heuristic. *)

open Wfc_core
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model
module D = Wfc_platform.Distribution
module Stats = Wfc_platform.Stats
module MC = Wfc_simulator.Monte_carlo
module Linearize = Wfc_dag.Linearize

let lambda_for = function
  | P.Montage | P.Ligo | P.Cybershake -> 1e-3
  (* heavy tasks (Genome's map, SIPHT's Blast) call for a longer MTBF *)
  | P.Genome | P.Sipht -> 1e-4

let tuned_schedule cfg family ~n ~cost =
  let g = CM.apply cost (P.generate family ~n ~seed:cfg.Figures.seed) in
  let model = FM.make ~lambda:(lambda_for family) () in
  let o =
    Heuristics.run ~search:cfg.Figures.search model g ~lin:Linearize.Depth_first
      ~ckpt:Heuristics.Ckpt_weight
  in
  (g, model, o)

(* A1: hill climbing on top of each searched heuristic *)
let local_search_study cfg =
  Printf.printf "\n== ablation A1: local-search refinement (n=100, c=0.1w) ==\n";
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "workflow"; "seed heuristic"; "seed ratio"; "refined ratio";
          "gain %"; "flips" ]
  in
  List.iter
    (fun family ->
      let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n:100 ~seed:cfg.Figures.seed) in
      let model = FM.make ~lambda:(lambda_for family) () in
      let tinf = Evaluator.fail_free_time g in
      List.iter
        (fun ckpt ->
          let o =
            Heuristics.run ~search:cfg.Figures.search model g
              ~lin:Linearize.Depth_first ~ckpt
          in
          let r = Local_search.improve ~max_evaluations:800 model g o.Heuristics.schedule in
          Wfc_reporting.Table.add_row table
            [
              P.family_name family;
              Heuristics.ckpt_strategy_name ckpt;
              Printf.sprintf "%.4f" (o.Heuristics.makespan /. tinf);
              Printf.sprintf "%.4f" (r.Local_search.makespan /. tinf);
              Printf.sprintf "%.2f"
                (100. *. (1. -. (r.Local_search.makespan /. o.Heuristics.makespan)));
              string_of_int r.Local_search.flips;
            ])
        [ Heuristics.Ckpt_weight; Heuristics.Ckpt_periodic ])
    P.all;
  Wfc_reporting.Table.print table

(* A2: exponential-tuned schedules under Weibull failures of equal MTBF *)
let weibull_study cfg =
  Printf.printf
    "\n== ablation A2: Weibull robustness (n=60, c=0.1w, 10k runs each) ==\n";
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "workflow"; "analytic exp"; "sim exp"; "sim weibull k=0.7";
          "sim weibull k=1.5" ]
  in
  List.iter
    (fun family ->
      let g, model, o = tuned_schedule cfg family ~n:60 ~cost:(CM.Proportional 0.1) in
      let sched = o.Heuristics.schedule in
      let mtbf = FM.mtbf model in
      let sim dist =
        let est =
          MC.estimate_renewal ~runs:10_000 ~seed:cfg.Figures.seed ~failures:dist
            ~downtime:0. g sched
        in
        Stats.mean est.MC.makespan
      in
      let tinf = Evaluator.fail_free_time g in
      let cell v = Printf.sprintf "%.4f" (v /. tinf) in
      Wfc_reporting.Table.add_row table
        [
          P.family_name family;
          cell o.Heuristics.makespan;
          cell (sim (D.exponential ~rate:(1. /. mtbf)));
          cell (sim (D.weibull_of_mean ~shape:0.7 ~mean:mtbf));
          cell (sim (D.weibull_of_mean ~shape:1.5 ~mean:mtbf));
        ])
    P.all;
  Wfc_reporting.Table.print table;
  Printf.printf
    "(ratios T/T_inf at equal MTBF; the Weibull shape shifts the expected\n\
     \ makespan by only a few percent in either direction, so schedules\n\
     \ tuned under the exponential analysis remain serviceable)\n"

(* A3: non-blocking checkpointing *)
let overlap_study cfg =
  Printf.printf
    "\n== ablation A3: non-blocking checkpointing (n=100, c=0.1w, 10k runs) ==\n";
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "workflow"; "blocking"; "overlap s=0"; "overlap s=0.2";
          "overlap s=0.5"; "overlap s=1" ]
  in
  List.iter
    (fun family ->
      let g, model, o = tuned_schedule cfg family ~n:100 ~cost:(CM.Proportional 0.1) in
      let sched = o.Heuristics.schedule in
      let tinf = Evaluator.fail_free_time g in
      let lambda = model.FM.lambda in
      let overlap interference =
        let est =
          MC.estimate_overlap ~runs:10_000 ~seed:cfg.Figures.seed
            {
              Wfc_simulator.Sim_overlap.interference;
              failures = D.exponential ~rate:lambda;
              downtime = 0.;
            }
            g sched
        in
        Printf.sprintf "%.4f" (Stats.mean est.MC.makespan /. tinf)
      in
      Wfc_reporting.Table.add_row table
        [
          P.family_name family;
          Printf.sprintf "%.4f" (o.Heuristics.makespan /. tinf);
          overlap 0.; overlap 0.2; overlap 0.5; overlap 1.;
        ])
    P.all;
  Wfc_reporting.Table.print table;
  Printf.printf
    "(same DF-CkptW schedules; overlap hides checkpoint cost until\n\
     \ interference makes writes stall computation)\n"

(* A4: divisible-load periodic theory vs the DAG-aware CkptPer *)
let periodic_study cfg =
  Printf.printf "\n== ablation A4: Young/Daly vs CkptPer (c = average w/10) ==\n";
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "workflow"; "W total"; "CkptPer period"; "Young"; "Daly";
          "divisible optimum" ]
  in
  List.iter
    (fun family ->
      let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n:100 ~seed:cfg.Figures.seed) in
      let model = FM.make ~lambda:(lambda_for family) () in
      let o =
        Heuristics.run ~search:Heuristics.Exhaustive model g
          ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_periodic
      in
      let w = Evaluator.fail_free_time g in
      let c = 0.1 *. (w /. 100.) in
      let n_ckpt = Int.max 1 o.Heuristics.n_ckpt in
      Wfc_reporting.Table.add_row table
        [
          P.family_name family;
          Printf.sprintf "%.0f" w;
          Printf.sprintf "%.0f" (w /. float_of_int n_ckpt);
          Printf.sprintf "%.0f" (Periodic.young_period model ~checkpoint:c);
          Printf.sprintf "%.0f" (Periodic.daly_period model ~checkpoint:c);
          Printf.sprintf "%.0f"
            (Periodic.optimal_period model ~work:w ~checkpoint:c ~recovery:c);
        ])
    P.all;
  Wfc_reporting.Table.print table;
  Printf.printf
    "(CkptPer's searched period vs the divisible-load first-order theory;\n\
     \ the DAG-aware search picks much shorter periods because a failure\n\
     \ can also destroy still-needed outputs of earlier tasks)\n"

(* A5: the extended strategies (DF-BL linearization, CkptE checkpointing,
   SIPHT workflow) against the paper's best combinations *)
let extended_strategy_study cfg =
  Printf.printf
    "\n== ablation A5: extended strategies (n=100; c=0.1w and c=5s) ==\n";
  List.iter
    (fun cost ->
      let table =
        Wfc_reporting.Table.create
          ~columns:
            [ "workflow"; "DF-CkptW"; "DF-CkptC"; "DF-CkptE"; "DF-BL-CkptW";
              "DF-BL-CkptE" ]
      in
      List.iter
        (fun family ->
          let g = CM.apply cost (P.generate family ~n:100 ~seed:cfg.Figures.seed) in
          let model = FM.make ~lambda:(lambda_for family) () in
          let tinf = Evaluator.fail_free_time g in
          let cell lin ckpt =
            let o = Heuristics.run ~search:cfg.Figures.search model g ~lin ~ckpt in
            Printf.sprintf "%.4f" (o.Heuristics.makespan /. tinf)
          in
          Wfc_reporting.Table.add_row table
            [
              P.family_name family;
              cell Linearize.Depth_first Heuristics.Ckpt_weight;
              cell Linearize.Depth_first Heuristics.Ckpt_cost;
              cell Linearize.Depth_first Heuristics.Ckpt_efficiency;
              cell Linearize.Depth_first_blevel Heuristics.Ckpt_weight;
              cell Linearize.Depth_first_blevel Heuristics.Ckpt_efficiency;
            ])
        P.extended;
      Printf.printf "-- %s --\n" (CM.name cost);
      Wfc_reporting.Table.print table)
    [ CM.Proportional 0.1; CM.Constant 5. ];
  Printf.printf
    "(CkptE ranks by protected work per checkpoint second; DF-BL uses the\n\
     \ classical bottom-level priority instead of the paper's outweight)\n"

(* A6: tail behaviour — checkpointing buys predictability, not only a lower
   mean. Quantiles of the simulated makespan distribution. *)
let tail_study cfg =
  Printf.printf
    "\n== ablation A6: makespan tail (CyberShake n=100, c=0.1w, 20k runs) ==\n";
  let family = P.Cybershake in
  let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n:100 ~seed:cfg.Figures.seed) in
  let model = FM.make ~lambda:(lambda_for family) () in
  let order = Linearize.run Linearize.Depth_first g in
  let tinf = Evaluator.fail_free_time g in
  let table =
    Wfc_reporting.Table.create
      ~columns:[ "schedule"; "mean"; "median"; "p90"; "p99"; "p99/median" ]
  in
  let row name sched =
    let samples =
      MC.makespan_samples ~runs:20_000 ~seed:cfg.Figures.seed model g sched
    in
    let q p = Wfc_platform.Sample_set.quantile samples p /. tinf in
    Wfc_reporting.Table.add_row table
      [
        name;
        Printf.sprintf "%.3f" (Wfc_platform.Sample_set.mean samples /. tinf);
        Printf.sprintf "%.3f" (q 0.5);
        Printf.sprintf "%.3f" (q 0.9);
        Printf.sprintf "%.3f" (q 0.99);
        Printf.sprintf "%.2f" (q 0.99 /. q 0.5);
      ]
  in
  row "CkptNvr" (Schedule.no_checkpoints g ~order);
  let w =
    Heuristics.run ~search:cfg.Figures.search model g ~lin:Linearize.Depth_first
      ~ckpt:Heuristics.Ckpt_weight
  in
  row "DF-CkptW" w.Heuristics.schedule;
  row "CkptAlws" (Schedule.all_checkpoints g ~order);
  Wfc_reporting.Table.print table;
  Printf.printf
    "(ratios to T_inf; without checkpoints the p99 runs away from the\n\
     \ median — checkpointing compresses the whole distribution)\n"

(* A7: heuristics against the exact branch-and-bound optimum (same DF
   linearization) on instances beyond brute-force reach *)
let exactness_study cfg =
  Printf.printf
    "\n== ablation A7: heuristic gap to the exact optimum (n=20, c=0.1w) ==\n";
  let table =
    Wfc_reporting.Table.create
      ~columns:
        [ "workflow"; "exact"; "CkptW gap %"; "CkptC gap %"; "CkptPer gap %";
          "B&B nodes" ]
  in
  List.iter
    (fun family ->
      let g =
        CM.apply (CM.Proportional 0.1)
          (P.generate family ~n:20 ~seed:cfg.Figures.seed)
      in
      (* a harsher rate than the figures so decisions actually matter at
         this small scale *)
      let model = FM.make ~lambda:(5. *. lambda_for family) () in
      let order = Linearize.run Linearize.Depth_first g in
      let sol = Exact_solver.optimal_checkpoints model g ~order in
      let gap ckpt =
        let o = Heuristics.run model g ~lin:Linearize.Depth_first ~ckpt in
        Printf.sprintf "%.2f"
          (100.
          *. ((o.Heuristics.makespan /. sol.Exact_solver.makespan) -. 1.))
      in
      Wfc_reporting.Table.add_row table
        [
          P.family_name family;
          Printf.sprintf "%.4f"
            (sol.Exact_solver.makespan /. Evaluator.fail_free_time g);
          gap Heuristics.Ckpt_weight;
          gap Heuristics.Ckpt_cost;
          gap Heuristics.Ckpt_periodic;
          string_of_int sol.Exact_solver.nodes;
        ])
    P.all;
  Wfc_reporting.Table.print table;
  Printf.printf
    "(exact = branch-and-bound optimum over all 2^20 checkpoint subsets of\n\
     \ the DF order, under a 5x harsher failure rate; CkptW stays within\n\
     \ ~1%% of optimal while CkptC and CkptPer can be tens of percent off\n\
     \ when failures are frequent — the ranking criterion matters)\n"

(* A8: energy vs checkpoint count — time-optimal is not energy-optimal *)
let energy_study cfg =
  Printf.printf
    "\n== ablation A8: energy vs checkpoint count (Montage n=100, 5k runs) ==\n";
  let family = P.Montage in
  let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n:100 ~seed:cfg.Figures.seed) in
  let model = FM.make ~lambda:(lambda_for family) () in
  let order = Linearize.run Linearize.Depth_first g in
  let tinf = Evaluator.fail_free_time g in
  let e0 =
    Wfc_simulator.Energy.fail_free_energy Wfc_simulator.Energy.default_power g
      (Schedule.no_checkpoints g ~order)
  in
  let table =
    Wfc_reporting.Table.create
      ~columns:[ "checkpoints"; "E[T]/T_inf"; "E[energy]/E_0"; "io share %" ]
  in
  List.iter
    (fun n_ckpt ->
      let flags =
        Heuristics.checkpoint_flags Heuristics.Ckpt_weight g ~order ~n_ckpt
      in
      let sched = Schedule.make g ~order ~checkpointed:flags in
      let est =
        Wfc_simulator.Energy.estimate ~runs:5000 ~seed:cfg.Figures.seed model g
          sched
      in
      let rng = Wfc_platform.Rng.create cfg.Figures.seed in
      let io = Stats.create () in
      for _ = 1 to 2000 do
        let b = Wfc_simulator.Sim_breakdown.run ~rng model g sched in
        Stats.add io
          ((b.Wfc_simulator.Sim_breakdown.checkpoint
           +. b.Wfc_simulator.Sim_breakdown.recovery)
          /. b.Wfc_simulator.Sim_breakdown.makespan)
      done;
      Wfc_reporting.Table.add_row table
        [
          string_of_int n_ckpt;
          Printf.sprintf "%.4f"
            (Stats.mean est.Wfc_simulator.Energy.makespan /. tinf);
          Printf.sprintf "%.4f"
            (Stats.mean est.Wfc_simulator.Energy.energy /. e0);
          Printf.sprintf "%.1f" (100. *. Stats.mean io);
        ])
    [ 0; 10; 25; 50; 75; 100 ];
  Wfc_reporting.Table.print table;
  Printf.printf
    "(E_0 = fail-free, checkpoint-free energy; checkpoints trade cheap I/O\n\
     \ watts against expensive recomputation watts, so the energy-optimal\n\
     \ checkpoint count is at least the time-optimal one)\n"

let run cfg =
  local_search_study cfg;
  weibull_study cfg;
  overlap_study cfg;
  periodic_study cfg;
  extended_strategy_study cfg;
  tail_study cfg;
  exactness_study cfg;
  energy_study cfg
