let check_inputs m ~checkpoint name =
  if m.Wfc_platform.Failure_model.lambda = 0. then
    invalid_arg (Printf.sprintf "Periodic.%s: failure-free platform" name);
  if not (checkpoint > 0.) then
    invalid_arg (Printf.sprintf "Periodic.%s: checkpoint must be positive" name)

let young_period m ~checkpoint =
  check_inputs m ~checkpoint "young_period";
  Float.sqrt (2. *. checkpoint /. m.Wfc_platform.Failure_model.lambda)

let daly_period m ~checkpoint =
  check_inputs m ~checkpoint "daly_period";
  let mtbf = 1. /. m.Wfc_platform.Failure_model.lambda in
  let p =
    Float.sqrt (2. *. checkpoint *. (mtbf +. m.Wfc_platform.Failure_model.downtime))
    -. checkpoint
  in
  Float.max checkpoint p

(* Expected time of [k] equal segments of [work /. k] seconds: a checkpoint
   after every segment but the last, recovery before every retry but within
   the first segment (a restart from scratch re-executes from the start). *)
let equal_segments m ~work ~checkpoint ~recovery k =
  let seg = work /. float_of_int k in
  let e = Wfc_platform.Failure_model.expected_exec_time m in
  let total = ref 0. in
  for i = 1 to k do
    let c = if i < k then checkpoint else 0. in
    let r = if i = 1 then 0. else recovery in
    total := !total +. e ~work:seg ~checkpoint:c ~recovery:r
  done;
  !total

let expected_time_divisible m ~work ~checkpoint ~recovery ~period =
  if not (work > 0.) then
    invalid_arg "Periodic.expected_time_divisible: work must be positive";
  if not (period > 0.) then
    invalid_arg "Periodic.expected_time_divisible: period must be positive";
  let e = Wfc_platform.Failure_model.expected_exec_time m in
  let n_full = int_of_float (work /. period) in
  let remainder = work -. (float_of_int n_full *. period) in
  let remainder = if remainder < 1e-9 *. period then 0. else remainder in
  let total = ref 0. in
  let segments =
    (* lengths of the segments, last one unchecked *)
    List.init n_full (fun _ -> period) @ (if remainder > 0. then [ remainder ] else [])
  in
  List.iteri
    (fun i seg ->
      let last = i = List.length segments - 1 in
      let c = if last then 0. else checkpoint in
      let r = if i = 0 then 0. else recovery in
      total := !total +. e ~work:seg ~checkpoint:c ~recovery:r)
    segments;
  !total

let optimal_period m ~work ~checkpoint ~recovery =
  if not (work > 0.) then
    invalid_arg "Periodic.optimal_period: work must be positive";
  check_inputs m ~checkpoint "optimal_period";
  let eval k = equal_segments m ~work ~checkpoint ~recovery k in
  (* bracket the (unimodal) optimum by doubling, then refine by integer
     ternary search *)
  let rec bracket k best =
    if k > 1 lsl 24 then k
    else
      let v = eval k in
      if v > best then k else bracket (k * 2) v
  in
  let hi = bracket 2 (eval 1) in
  let lo = Int.max 1 (hi / 4) in
  let rec ternary lo hi =
    if hi - lo <= 2 then begin
      let best = ref lo in
      for k = lo + 1 to hi do
        if eval k < eval !best then best := k
      done;
      !best
    end
    else
      let m1 = lo + ((hi - lo) / 3) in
      let m2 = hi - ((hi - lo) / 3) in
      if eval m1 <= eval m2 then ternary lo m2 else ternary m1 hi
  in
  let k = ternary lo hi in
  work /. float_of_int k
