let linearizations ?(limit = 100_000) g =
  let n = Wfc_dag.Dag.n_tasks g in
  let indeg = Array.init n (Wfc_dag.Dag.in_degree g) in
  let current = Array.make n (-1) in
  let acc = ref [] and count = ref 0 in
  let rec extend depth =
    if depth = n then begin
      incr count;
      if !count > limit then
        invalid_arg "Brute_force.linearizations: too many linearizations";
      acc := Array.copy current :: !acc
    end
    else
      for v = 0 to n - 1 do
        if indeg.(v) = 0 then begin
          indeg.(v) <- -1;
          current.(depth) <- v;
          Array.iter
            (fun s -> indeg.(s) <- indeg.(s) - 1)
            (Wfc_dag.Dag.succs_array g v);
          extend (depth + 1);
          Array.iter
            (fun s -> indeg.(s) <- indeg.(s) + 1)
            (Wfc_dag.Dag.succs_array g v);
          indeg.(v) <- 0
        end
      done
  in
  extend 0;
  List.rev !acc

let optimal_checkpoints_for_order model g ~order =
  let n = Wfc_dag.Dag.n_tasks g in
  if n > 16 then
    invalid_arg "Brute_force.optimal_checkpoints_for_order: DAG too large";
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let checkpointed = Array.init n (fun v -> mask land (1 lsl v) <> 0) in
    let sched = Schedule.make g ~order ~checkpointed in
    let makespan = Evaluator.expected_makespan model g sched in
    match !best with
    | Some (_, m) when m <= makespan -> ()
    | _ -> best := Some (sched, makespan)
  done;
  Option.get !best

let optimal model g =
  if Wfc_dag.Dag.n_tasks g > 9 then
    invalid_arg "Brute_force.optimal: DAG too large";
  let best = ref None in
  List.iter
    (fun order ->
      let cand, makespan = optimal_checkpoints_for_order model g ~order in
      match !best with
      | Some (_, m) when m <= makespan -> ()
      | _ -> best := Some (cand, makespan))
    (linearizations g);
  Option.get !best
