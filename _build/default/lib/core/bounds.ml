let lower_bound model g =
  let e = Wfc_platform.Failure_model.expected_exec_time model in
  Array.fold_left
    (fun acc (t : Wfc_dag.Task.t) ->
      acc +. e ~work:t.Wfc_dag.Task.weight ~checkpoint:0. ~recovery:0.)
    0.
    (Wfc_dag.Dag.tasks g)

let upper_bound model g =
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  let sched = Schedule.all_checkpoints g ~order in
  Evaluator.expected_makespan model g sched

let optimality_gap model g ~makespan =
  let lb = lower_bound model g in
  if makespan < lb *. (1. -. 1e-9) then
    invalid_arg "Bounds.optimality_gap: makespan below the lower bound";
  (makespan -. lb) /. lb
