(** Exhaustive search over schedules, for validating heuristics and solvers
    on small instances. Cost grows as [n! * 2^n]; hard guards keep usage
    honest. *)

val linearizations : ?limit:int -> Wfc_dag.Dag.t -> int array list
(** All linearizations of the DAG, in lexicographic order.

    @raise Invalid_argument if their number exceeds [limit] (default
    100_000). *)

val optimal_checkpoints_for_order :
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  order:int array ->
  Schedule.t * float
(** Best checkpoint subset for a fixed linearization, by enumerating all
    [2^n] subsets.

    @raise Invalid_argument if the DAG has more than 16 tasks. *)

val optimal :
  Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> Schedule.t * float
(** Globally optimal schedule: every linearization combined with every
    checkpoint subset.

    @raise Invalid_argument if the DAG has more than 9 tasks. *)
