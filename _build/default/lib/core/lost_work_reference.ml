(* Faithful port of the paper's Algorithm 1. Indices are schedule positions
   (the paper renumbers tasks by execution order); [tab.(i).(j)] takes the
   published sentinel values: -1 unvisited, 0 out of every future set, 1 lost
   non-checkpointed member of T↓k_i, 2 lost checkpointed member. *)

let preds_positions g sched pos l =
  Array.map (fun u -> pos.(u)) (Wfc_dag.Dag.preds_array g (Schedule.task_at sched l))

let run_tab g sched ~k =
  let n = Schedule.n_tasks sched in
  if k < 0 || k >= n then invalid_arg "Lost_work_reference: k out of range";
  let pos = Array.make n (-1) in
  Array.iteri (fun p v -> pos.(v) <- p) sched.Schedule.order;
  let tab = Array.make_matrix n n (-1) in
  let ckpt_at p = Schedule.is_checkpointed sched (Schedule.task_at sched p) in
  let rec traverse l i =
    Array.iter
      (fun j ->
        match tab.(i).(j) with
        | 0 | 1 | 2 -> ()
        | -1 ->
            for r = i + 1 to n - 1 do
              tab.(r).(j) <- 0
            done;
            if j < k then
              if ckpt_at j then tab.(i).(j) <- 2
              else begin
                tab.(i).(j) <- 1;
                traverse j i
              end
            else tab.(i).(j) <- 0
        | _ -> assert false)
      (preds_positions g sched pos l)
  in
  for i = k to n - 1 do
    traverse i i
  done;
  tab

let find_wik_rik g sched ~k =
  let n = Schedule.n_tasks sched in
  let tab = run_tab g sched ~k in
  let w = Array.make n 0. and r = Array.make n 0. in
  for i = k to n - 1 do
    for j = 0 to k - 1 do
      let t = Wfc_dag.Dag.task g (Schedule.task_at sched j) in
      match tab.(i).(j) with
      | 1 -> w.(i) <- w.(i) +. t.Wfc_dag.Task.weight
      | 2 -> r.(i) <- r.(i) +. t.Wfc_dag.Task.recovery_cost
      | _ -> ()
    done
  done;
  (w, r)

let replay_sets g sched ~k =
  let n = Schedule.n_tasks sched in
  let tab = run_tab g sched ~k in
  Array.init n (fun i ->
      if i < k then []
      else
        List.filter_map
          (fun j ->
            match tab.(i).(j) with
            | 1 | 2 -> Some (Schedule.task_at sched j)
            | _ -> None)
          (List.init k Fun.id))

let replay_time g sched ~last_fault:k ~position:i =
  if k = -1 then 0.
  else
    let w, r = find_wik_rik g sched ~k in
    w.(i) +. r.(i)
