(** The SUBSET-SUM reduction behind Theorem 2 (NP-completeness for joins).

    Given positive integers [w_1..w_n] and a target [X], the paper builds a
    join DAG with [w_i = w_i], [r_i = 0],
    [c_i = (X - w_i) + ln(lambda w_i + e^{-lambda X}) / lambda] and a
    zero-weight sink, for any [lambda >= 1 / min_i w_i]. The normalized
    expected makespan of a schedule that does {e not} checkpoint the subset
    [I] equals [lambda e^{lambda X} (S - W) + e^{lambda W} - 1] with
    [W = sum_{i in I} w_i]; it reaches the threshold
    [t_min = lambda e^{lambda X} (S - X) + e^{lambda X} - 1] exactly when
    [W = X]. Hence deciding DAG-ChkptSched on joins decides SUBSET-SUM. *)

type instance = private {
  dag : Wfc_dag.Dag.t;  (** the join DAG of the reduction *)
  model : Wfc_platform.Failure_model.t;
  target : int;  (** the SUBSET-SUM target [X] *)
  weights : int array;  (** the SUBSET-SUM integers *)
  threshold : float;  (** [t_min] *)
}

val build : weights:int array -> target:int -> instance
(** [build ~weights ~target] constructs the reduction instance with
    [lambda = 1 /. min weights].

    @raise Invalid_argument on empty or non-positive weights, or a
    non-positive target. *)

val normalized_makespan : instance -> not_checkpointed:bool array -> float
(** The quantity the proof of Theorem 2 bounds: the expected makespan of the
    schedule leaving the flagged sources unprotected, divided by
    [1/lambda + D]. Flags are indexed by source id [0..n-1]. *)

val meets_threshold : instance -> not_checkpointed:bool array -> bool
(** Whether the schedule's normalized makespan is within [1e-9] of
    [threshold] (the minimum is attained only at exact subset sums, so this
    decides the SUBSET-SUM instance). *)

val solve_subset_sum : weights:int array -> target:int -> bool array option
(** Reference exponential solver for SUBSET-SUM (guarded to 24 items),
    returning a witness subset if one exists. Used by tests to confirm the
    equivalence both ways. *)
