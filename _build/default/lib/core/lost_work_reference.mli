(** Literal transcription of Algorithm 1 ([FindWikRik]) from the paper.

    Kept as an executable specification: it materializes the full [tab_k]
    bookkeeping table exactly as published (hence [O(n^3)] per call and
    [O(n^4)] overall) and additionally exposes the sets [T↓k_i] themselves.
    The production implementation is {!Lost_work}; the test suite checks that
    both agree on every pair [(k, i)]. Use only on small schedules. *)

val find_wik_rik :
  Wfc_dag.Dag.t -> Schedule.t -> k:int -> float array * float array
(** [find_wik_rik g s ~k] returns [(w, r)] where, for every position
    [i >= k], [w.(i) = W^i_k] (lost non-checkpointed work) and
    [r.(i) = R^i_k] (recovery time of lost checkpointed tasks). Entries below
    [k] are [0.]. Positions are schedule positions, matching the paper's
    renumbering. *)

val replay_sets : Wfc_dag.Dag.t -> Schedule.t -> k:int -> int list array
(** [replay_sets g s ~k] gives, for each position [i >= k], the set
    [T↓k_i] as a list of task ids (not positions). *)

val replay_time : Wfc_dag.Dag.t -> Schedule.t -> last_fault:int -> position:int -> float
(** Same contract as {!Lost_work.replay_time}, recomputed from scratch. *)
