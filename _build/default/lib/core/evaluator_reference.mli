(** Literal transcription of the Theorem 3 expectation formulas.

    {!Evaluator} computes the same quantities with incremental prefix sums
    and the optimized lost-work matrix; this module re-derives every
    probability and conditional expectation directly from the published
    recurrences, using the [O(n^4)] {!Lost_work_reference} sets. It exists
    purely as an executable specification for differential testing —
    quadratic caching is deliberately absent. Use on small schedules only. *)

val expected_makespan :
  Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> Schedule.t -> float
(** Same contract as {!Evaluator.expected_makespan}, computed the slow way:

    [E = sum_i sum_{k} P(Z^i_k) E\[t(W^i_k + R^i_k + w_i ; d_i c_i ;
    W^i_i + R^i_i - W^i_k - R^i_k)\]]

    with [P(Z^i_k)] from recurrences (A) and (B). *)
