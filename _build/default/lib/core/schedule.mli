(** Schedules: a linearization of the DAG plus checkpoint decisions.

    Following the paper, a schedule fully determines the fault-tolerant
    execution: tasks run in linearization order on the whole platform, the
    flagged tasks checkpoint their output on completion, and recovery after a
    failure replays the lost, still-needed part of the schedule from the most
    recent checkpoints. *)

type t = private {
  order : int array;  (** [order.(p)] is the task executed at position [p] *)
  checkpointed : bool array;  (** indexed by task id, not by position *)
}

val make : Wfc_dag.Dag.t -> order:int array -> checkpointed:bool array -> t
(** [make g ~order ~checkpointed] validates that [order] is a linearization
    of [g] (see {!Wfc_dag.Dag.is_linearization}) and that [checkpointed] has
    one flag per task.

    @raise Invalid_argument otherwise. The arrays are copied. *)

val of_positions :
  Wfc_dag.Dag.t -> order:int array -> ckpt_positions:int list -> t
(** Same, with checkpoints given as positions in the linearization instead of
    task ids. *)

val n_tasks : t -> int

val task_at : t -> int -> int
(** [task_at s p] is the task executed at position [p]. *)

val position_of : t -> int -> int
(** [position_of s v] is the position of task [v]; inverse of {!task_at}. *)

val is_checkpointed : t -> int -> bool
(** [is_checkpointed s v] tells whether {e task} [v] checkpoints its
    output. *)

val checkpoint_count : t -> int

val checkpointed_tasks : t -> int list
(** Ids of checkpointed tasks, in execution order. *)

val with_checkpoints : t -> bool array -> t
(** Replace the checkpoint flags (indexed by task id).
    @raise Invalid_argument on size mismatch. *)

val no_checkpoints : Wfc_dag.Dag.t -> order:int array -> t
val all_checkpoints : Wfc_dag.Dag.t -> order:int array -> t

val pp : Format.formatter -> t -> unit
(** Prints e.g. ["T0 T3* T1 T2 T4*"] where [*] marks checkpointed tasks. *)
