lib/core/evaluator.mli: Lost_work Schedule Wfc_dag Wfc_platform
