lib/core/lost_work.ml: Array Printf Schedule Wfc_dag
