lib/core/brute_force.mli: Schedule Wfc_dag Wfc_platform
