lib/core/exact_solver.mli: Schedule Wfc_dag Wfc_platform
