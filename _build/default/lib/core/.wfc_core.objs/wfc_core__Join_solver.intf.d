lib/core/join_solver.mli: Schedule Wfc_dag Wfc_platform
