lib/core/reduction.mli: Wfc_dag Wfc_platform
