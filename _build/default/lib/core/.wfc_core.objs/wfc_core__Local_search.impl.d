lib/core/local_search.ml: Array Evaluator Float Schedule
