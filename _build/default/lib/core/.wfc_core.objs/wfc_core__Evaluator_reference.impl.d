lib/core/evaluator_reference.ml: Float Hashtbl Lost_work_reference Schedule Wfc_dag Wfc_platform
