lib/core/lost_work_reference.ml: Array Fun List Schedule Wfc_dag
