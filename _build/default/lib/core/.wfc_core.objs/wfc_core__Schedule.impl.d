lib/core/schedule.ml: Array Format List Wfc_dag
