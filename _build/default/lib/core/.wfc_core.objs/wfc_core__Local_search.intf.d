lib/core/local_search.mli: Schedule Wfc_dag Wfc_platform
