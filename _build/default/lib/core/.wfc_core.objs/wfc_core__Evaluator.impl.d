lib/core/evaluator.ml: Array Float Lost_work Schedule Wfc_dag Wfc_platform
