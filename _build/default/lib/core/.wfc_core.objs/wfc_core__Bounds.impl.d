lib/core/bounds.ml: Array Evaluator Schedule Wfc_dag Wfc_platform
