lib/core/reduction.ml: Array Float Int Join_solver List Printf Wfc_dag Wfc_platform
