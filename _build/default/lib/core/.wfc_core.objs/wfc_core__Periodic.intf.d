lib/core/periodic.mli: Wfc_platform
