lib/core/exact_solver.ml: Array Evaluator Heuristics List Schedule Wfc_dag Wfc_platform
