lib/core/lost_work.mli: Schedule Wfc_dag
