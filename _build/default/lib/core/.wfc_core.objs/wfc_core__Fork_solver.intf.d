lib/core/fork_solver.mli: Schedule Wfc_dag Wfc_platform
