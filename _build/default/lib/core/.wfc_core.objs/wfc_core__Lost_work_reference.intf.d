lib/core/lost_work_reference.mli: Schedule Wfc_dag
