lib/core/chain_solver.mli: Wfc_dag Wfc_platform
