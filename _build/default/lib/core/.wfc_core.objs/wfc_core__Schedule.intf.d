lib/core/schedule.mli: Format Wfc_dag
