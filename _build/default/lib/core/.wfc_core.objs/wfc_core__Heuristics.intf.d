lib/core/heuristics.mli: Schedule Wfc_dag Wfc_platform
