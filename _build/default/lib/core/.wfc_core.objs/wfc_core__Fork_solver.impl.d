lib/core/fork_solver.ml: Array Float Fun List Schedule Wfc_dag Wfc_platform
