lib/core/brute_force.ml: Array Evaluator List Option Schedule Wfc_dag
