lib/core/bounds.mli: Wfc_dag Wfc_platform
