lib/core/chain_solver.ml: Array Printf Wfc_dag Wfc_platform
