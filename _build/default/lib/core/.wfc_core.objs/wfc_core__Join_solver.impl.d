lib/core/join_solver.ml: Array Float Fun Int List Option Schedule Wfc_dag Wfc_platform
