lib/core/evaluator_reference.mli: Schedule Wfc_dag Wfc_platform
