lib/core/heuristics.ml: Array Evaluator Float Fun Int List Option Schedule Set String Wfc_dag
