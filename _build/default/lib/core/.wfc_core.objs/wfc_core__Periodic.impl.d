lib/core/periodic.ml: Float Int List Printf Wfc_platform
