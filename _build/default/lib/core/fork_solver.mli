(** Optimal scheduling of fork DAGs (Theorem 1).

    For a fork — one source whose output feeds [n] independent sinks — the
    only decision is whether to checkpoint the source: sink ordering is
    irrelevant under exponential failures. Comparing

    [E\[t(w_src; c_src; 0)\] + sum_i E\[t(w_i; 0; r_src)\]]  (checkpoint)

    with the same expression at [c_src = 0, r_src = w_src] (re-execute the
    source on every failure) solves the problem in linear time. *)

type solution = {
  checkpoint_source : bool;
  makespan : float;  (** expected makespan of the optimal schedule *)
  makespan_if_checkpointed : float;
  makespan_if_not : float;
}

val is_fork : Wfc_dag.Dag.t -> int option
(** [is_fork g] returns the source id when [g] is a fork DAG with at least
    one sink. *)

val solve : Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> solution
(** @raise Invalid_argument if the DAG is not a fork. *)

val schedule_of : Wfc_dag.Dag.t -> solution -> Schedule.t
(** Materializes the optimal schedule (source first, sinks in id order, only
    the source possibly checkpointed). *)
