type instance = {
  dag : Wfc_dag.Dag.t;
  model : Wfc_platform.Failure_model.t;
  target : int;
  weights : int array;
  threshold : float;
}

let build ~weights ~target =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Reduction.build: no weights";
  Array.iter
    (fun w -> if w <= 0 then invalid_arg "Reduction.build: weights must be positive")
    weights;
  if target <= 0 then invalid_arg "Reduction.build: target must be positive";
  let min_w = Array.fold_left Int.min weights.(0) weights in
  let lambda = 1. /. float_of_int min_w in
  let x = float_of_int target in
  let checkpoint_cost i _ =
    let w = float_of_int weights.(i) in
    let c = x -. w +. (Float.log ((lambda *. w) +. Float.exp (-.lambda *. x)) /. lambda) in
    if c <= 0. then
      invalid_arg
        (Printf.sprintf
           "Reduction.build: instance yields non-positive c_%d = %g \
            (choose a target at least as large as the weights)"
           i c)
    else c
  in
  let source_weights = Array.map float_of_int weights in
  let dag =
    (* join DAG: sources 0..n-1, sink n with zero weight; r_i = 0 *)
    let tasks =
      Array.init (n + 1) (fun id ->
          if id < n then
            Wfc_dag.Task.make ~id ~weight:source_weights.(id)
              ~checkpoint_cost:(checkpoint_cost id source_weights.(id))
              ()
          else Wfc_dag.Task.make ~id ~weight:0. ())
    in
    Wfc_dag.Dag.create ~tasks ~edges:(List.init n (fun i -> (i, n)))
  in
  let model = Wfc_platform.Failure_model.make ~lambda () in
  let s = Array.fold_left (fun acc w -> acc +. float_of_int w) 0. weights in
  let threshold =
    (lambda *. Float.exp (lambda *. x) *. (s -. x)) +. Float.expm1 (lambda *. x)
  in
  { dag; model; target; weights; threshold }

let normalized_makespan inst ~not_checkpointed =
  let n = Array.length inst.weights in
  if Array.length not_checkpointed <> n then
    invalid_arg "Reduction.normalized_makespan: flag size mismatch";
  let ckpt =
    Array.init (n + 1) (fun v -> v < n && not not_checkpointed.(v))
  in
  let lambda = inst.model.Wfc_platform.Failure_model.lambda in
  Join_solver.zero_recovery_makespan inst.model inst.dag ~ckpt
  /. ((1. /. lambda) +. inst.model.Wfc_platform.Failure_model.downtime)

let meets_threshold inst ~not_checkpointed =
  let m = normalized_makespan inst ~not_checkpointed in
  m <= inst.threshold +. (1e-9 *. Float.max 1. inst.threshold)

let solve_subset_sum ~weights ~target =
  let n = Array.length weights in
  if n > 24 then invalid_arg "Reduction.solve_subset_sum: too many items";
  if target < 0 then None
  else begin
    (* classic reachability DP with witness reconstruction *)
    let reach = Array.make (target + 1) (-2) in
    (* reach.(s) = index of the last item used to first reach sum s,
       -1 for the empty sum, -2 for unreachable *)
    reach.(0) <- -1;
    Array.iteri
      (fun i w ->
        if w <= target then
          for s = target - w downto 0 do
            if reach.(s) <> -2 && reach.(s + w) = -2 && reach.(s) < i then
              reach.(s + w) <- i
          done)
      weights;
    if reach.(target) = -2 then None
    else begin
      let flags = Array.make n false in
      let rec unwind s =
        match reach.(s) with
        | -1 -> ()
        | i ->
            flags.(i) <- true;
            unwind (s - weights.(i))
      in
      unwind target;
      Some flags
    end
  end
