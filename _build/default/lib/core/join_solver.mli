(** Join DAGs: structure results of Section 4.1.2.

    For a join — [n] independent sources feeding a single sink — the optimal
    schedule runs the checkpointed sources first (Lemma 1), followed by the
    non-checkpointed sources and the sink in any order. Choosing {e which}
    sources to checkpoint is NP-complete in general (Theorem 2, see
    {!Reduction}).

    {b Erratum.} Lemma 2 of the paper orders the checkpointed sources by
    non-increasing [g(i) = e^{-λ(w_i+c_i+r_i)} + e^{-λ r_i} -
    e^{-λ(w_i+c_i)}]. Redoing the adjacent-exchange argument under the
    paper's own execution semantics (validated here against both the
    Theorem 3 evaluator and Monte Carlo fault injection) yields different
    cross terms: the exchange criterion separates as the per-task key
    [(1 - e^{-λ r_i}) / (1 - e^{-λ (w_i+c_i)})], to be sorted in {e
    increasing} order. The two criteria coincide for uniform checkpoint and
    recovery costs (both reduce to Corollary 1's non-increasing weight), but
    differ on heterogeneous costs, where the published [g]-order is beaten by
    up to a few percent (see the counterexample in the test suite). This
    module therefore schedules by the corrected key and keeps {!g_value}
    exposed for comparison.

    - with uniform checkpoint and recovery costs, trying every prefix of the
      decreasing-weight order is optimal (Corollary 1);
    - with zero recovery costs the makespan has the closed form of
      Corollary 2. *)

val is_join : Wfc_dag.Dag.t -> int option
(** [is_join g] returns the sink id when [g] is a join DAG with at least one
    source. *)

val g_value : Wfc_platform.Failure_model.t -> Wfc_dag.Task.t -> float
(** The ordering criterion [g(i)] published in Lemma 2 (larger would run
    earlier). Kept for reference; see the erratum above. *)

val order_key : Wfc_platform.Failure_model.t -> Wfc_dag.Task.t -> float
(** The corrected ordering key
    [(1 - e^{-λ r}) / (1 - e^{-λ (w+c)})] (smaller runs earlier); for
    [λ = 0] the limit [r / (w+c)] is used. Intuitively: schedule first the
    tasks that are long to (re)compute but cheap to recover. *)

val expected_makespan_order :
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  ckpt:bool array ->
  sigma:int list ->
  float
(** [expected_makespan_order model g ~ckpt ~sigma] is Equation (2): the
    expected makespan of the schedule that runs the checkpointed sources in
    the order [sigma] (a permutation of the flagged sources), then the
    remaining sources and the sink. The sink flag must be [false].

    @raise Invalid_argument if [g] is not a join, on flag size mismatch, if
    the sink is flagged, or if [sigma] is not a permutation of the flagged
    sources. *)

val expected_makespan :
  Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> ckpt:bool array -> float
(** [expected_makespan model g ~ckpt] is {!expected_makespan_order} with the
    checkpointed sources sorted by increasing {!order_key}. *)

val schedule_of :
  ?model:Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  ckpt:bool array ->
  Schedule.t
(** The schedule whose makespan {!expected_makespan} computes: checkpointed
    sources by increasing {!order_key} under [model] (default: a vanishing
    failure rate, i.e. the [r/(w+c)] limit key), then the other sources and
    the sink. *)

type solution = { ckpt : bool array; makespan : float }

val solve_uniform_costs :
  Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> solution
(** Corollary 1: polynomial-time optimum when every source has the same
    checkpoint cost and the same recovery cost.

    @raise Invalid_argument if the DAG is not a join or costs are not
    uniform across sources. *)

val solve_exact : Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> solution
(** Exhaustive search over all checkpoint subsets (exponential; guarded to at
    most 20 sources). Used to validate the structure results. *)

val zero_recovery_makespan :
  Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> ckpt:bool array -> float
(** Corollary 2's closed form; only valid when every [r_i = 0].

    @raise Invalid_argument if some flagged source has [r_i <> 0]. *)
