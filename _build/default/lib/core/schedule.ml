type t = { order : int array; checkpointed : bool array }

let make g ~order ~checkpointed =
  if not (Wfc_dag.Dag.is_linearization g order) then
    invalid_arg "Schedule.make: order is not a linearization of the DAG";
  if Array.length checkpointed <> Wfc_dag.Dag.n_tasks g then
    invalid_arg "Schedule.make: checkpoint flags have the wrong size";
  { order = Array.copy order; checkpointed = Array.copy checkpointed }

let of_positions g ~order ~ckpt_positions =
  let n = Array.length order in
  let checkpointed = Array.make n false in
  List.iter
    (fun p ->
      if p < 0 || p >= n then
        invalid_arg "Schedule.of_positions: position out of range";
      checkpointed.(order.(p)) <- true)
    ckpt_positions;
  make g ~order ~checkpointed

let n_tasks s = Array.length s.order
let task_at s p = s.order.(p)

let position_of s v =
  let n = n_tasks s in
  let rec find p = if p >= n then raise Not_found else
      if s.order.(p) = v then p else find (p + 1)
  in
  find 0

let is_checkpointed s v = s.checkpointed.(v)

let checkpoint_count s =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 s.checkpointed

let checkpointed_tasks s =
  List.filter (fun v -> s.checkpointed.(v)) (Array.to_list s.order)

let with_checkpoints s flags =
  if Array.length flags <> n_tasks s then
    invalid_arg "Schedule.with_checkpoints: size mismatch";
  { order = s.order; checkpointed = Array.copy flags }

let no_checkpoints g ~order =
  make g ~order ~checkpointed:(Array.make (Wfc_dag.Dag.n_tasks g) false)

let all_checkpoints g ~order =
  make g ~order ~checkpointed:(Array.make (Wfc_dag.Dag.n_tasks g) true)

let pp ppf s =
  Array.iteri
    (fun p v ->
      if p > 0 then Format.pp_print_char ppf ' ';
      Format.fprintf ppf "T%d%s" v (if s.checkpointed.(v) then "*" else ""))
    s.order
