(* Direct transcription of Section 4.2. Positions are the paper's indices
   (tasks renumbered along the linearization); [k = -1] encodes the paper's
   Z^i_0 limit case "no fault so far". Everything is recomputed from scratch
   through Lost_work_reference — intentionally naive. *)

let expected_makespan model g sched =
  let n = Schedule.n_tasks sched in
  let weight p =
    (Wfc_dag.Dag.task g (Schedule.task_at sched p)).Wfc_dag.Task.weight
  in
  let ckpt p =
    let v = Schedule.task_at sched p in
    if Schedule.is_checkpointed sched v then
      (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost
    else 0.
  in
  let lost k i =
    Lost_work_reference.replay_time g sched ~last_fault:k ~position:i
  in
  let lambda = model.Wfc_platform.Failure_model.lambda in
  (* P(Z^i_k), memoized by recomputation order: increasing i *)
  let prob = Hashtbl.create (n * n) in
  let p_z i k = Hashtbl.find prob (i, k) in
  for i = 0 to n - 1 do
    (* recurrence (A): no fault during X_{k+1} .. X_{i-1}, each of which
       carries its replay, weight and checkpoint *)
    let separating k =
      let acc = ref 0. in
      for j = k + 1 to i - 1 do
        acc := !acc +. lost k j +. weight j +. ckpt j
      done;
      !acc
    in
    (* k = -1: no fault since the start *)
    let sep_start = ref 0. in
    for j = 0 to i - 1 do
      sep_start := !sep_start +. weight j +. ckpt j
    done;
    Hashtbl.replace prob (i, -1) (Float.exp (-.lambda *. !sep_start));
    for k = 0 to i - 2 do
      (* P(Z^{k+1}_k) is the fault probability of X_k, already computed when
         i reached k + 1 via recurrence (B) *)
      Hashtbl.replace prob (i, k)
        (Float.exp (-.lambda *. separating k) *. p_z (k + 1) k)
    done;
    if i >= 1 then begin
      (* recurrence (B): the events partition the space *)
      let others = ref (p_z i (-1)) in
      for k = 0 to i - 2 do
        others := !others +. p_z i k
      done;
      Hashtbl.replace prob (i, i - 1) (Float.max 0. (1. -. !others))
    end
  done;
  (* property (C): conditional expectations through Equation (1) *)
  let total = ref 0. in
  for i = 0 to n - 1 do
    let full = lost i i in
    for k = -1 to i - 1 do
      let l = if k = -1 then 0. else lost k i in
      let p = p_z i k in
      if p > 0. then
        total :=
          !total
          +. p
             *. Wfc_platform.Failure_model.expected_exec_time model
                  ~work:(l +. weight i) ~checkpoint:(ckpt i)
                  ~recovery:(Float.max 0. (full -. l))
    done
  done;
  !total
