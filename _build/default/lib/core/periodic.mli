(** Classical periodic-checkpointing theory for divisible work.

    The paper's CkptPer heuristic transplants the periodic approach of Young
    [2] and Daly [3] onto DAG schedules. This module provides the classical
    results themselves, both as a baseline to compare CkptPer's searched
    period against and as the exact optimum for divisible (infinitely
    splittable) work under the failure model of Equation (1). *)

val young_period : Wfc_platform.Failure_model.t -> checkpoint:float -> float
(** Young's first-order approximation [sqrt (2 c / lambda)].

    @raise Invalid_argument if [lambda = 0] or [checkpoint <= 0]. *)

val daly_period : Wfc_platform.Failure_model.t -> checkpoint:float -> float
(** Daly's higher-order estimate
    [sqrt (2 c (1/lambda + D)) - c], clamped below at [Young]'s small-c
    validity bound; reduces to Young's period for [D = 0] and small [c
    lambda].

    @raise Invalid_argument if [lambda = 0] or [checkpoint <= 0]. *)

val expected_time_divisible :
  Wfc_platform.Failure_model.t ->
  work:float ->
  checkpoint:float ->
  recovery:float ->
  period:float ->
  float
(** [expected_time_divisible m ~work ~checkpoint ~recovery ~period] is the
    exact expected completion time of [work] seconds of divisible load split
    into segments of [period] seconds, each followed by a checkpoint, with
    recovery before each retry: [ceil (work / period)] segments evaluated by
    Equation (1). The trailing segment is shorter and skips the final
    checkpoint.

    @raise Invalid_argument if [work <= 0] or [period <= 0]. *)

val optimal_period :
  Wfc_platform.Failure_model.t ->
  work:float ->
  checkpoint:float ->
  recovery:float ->
  float
(** Numerically optimal period for {!expected_time_divisible} (golden-section
    search over the segment count); the reference against which Young and
    Daly are first-order approximations. *)
