(** Bounds on the optimal expected makespan of DAG-ChkptSched.

    The problem is NP-complete (Theorem 2), so certified bounds are the only
    scalable way to judge heuristic quality on instances too large for
    {!Brute_force}. *)

val lower_bound : Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> float
(** A lower bound valid for every schedule: each task must at some point
    execute its own weight within a single failure-free stretch, and the
    interval [X_i] of the linearization devoted to it costs at least
    [E\[t(w_i; 0; 0)\]] (replay and checkpoint only add work). Hence

    [sum_i E\[t(w_i; 0; 0)\] <= E\[makespan\]]

    for every linearization and checkpoint set. Reduces to [T_inf] when
    [lambda = 0]. *)

val upper_bound : Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> float
(** The expected makespan of an explicit schedule (depth-first
    linearization, every task checkpointed), hence an upper bound on the
    optimum. *)

val optimality_gap :
  Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> makespan:float -> float
(** [optimality_gap model g ~makespan] is [(makespan - lb) /. lb], an upper
    bound on the relative distance of the given schedule's expected makespan
    from the optimum.

    @raise Invalid_argument if [makespan] is below the lower bound (modulo
    rounding), which would indicate an evaluator inconsistency. *)
