(** Optimal checkpoint placement on linear chains.

    This is the dynamic program of Toueg & Babaoglu (SIAM J. Comput. 1984)
    instantiated for the paper's failure model — the only previously solved
    case of DAG-ChkptSched, used as a correctness baseline. The chain has a
    single linearization, so only the checkpoint set remains: splitting the
    chain into segments ending at checkpointed tasks gives

    [dp(m) = min_{k < m} dp(k) + E\[t(w_{k+1..m}; c_m; r_k)\]]

    with a virtual segment start ([r = 0]) before the first task and an
    optional final unchecked segment. [O(n^2)] time. *)

type solution = {
  checkpointed : bool array;  (** indexed by task id *)
  makespan : float;
}

val is_chain : Wfc_dag.Dag.t -> bool
(** True when the DAG is a single path [0 -> 1 -> ... -> n-1]. *)

val solve : Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> solution
(** @raise Invalid_argument if the DAG is not a chain in id order. *)

val segment_makespan :
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  checkpointed:bool array ->
  float
(** Expected makespan of the chain under a given checkpoint set, computed by
    the segment decomposition (independent of {!Evaluator}, for
    cross-checking). *)
