type result = {
  schedule : Schedule.t;
  makespan : float;
  initial_makespan : float;
  evaluations : int;
  flips : int;
}

let improve ?(max_evaluations = 4000) model g seed =
  let n = Schedule.n_tasks seed in
  let flags = Array.init n (Schedule.is_checkpointed seed) in
  let order = Array.init n (Schedule.task_at seed) in
  let evaluations = ref 0 in
  let evaluate () =
    incr evaluations;
    Evaluator.expected_makespan model g
      (Schedule.make g ~order ~checkpointed:flags)
  in
  let initial_makespan = evaluate () in
  let best = ref initial_makespan in
  let flips = ref 0 in
  let improved = ref true in
  while !improved && !evaluations < max_evaluations do
    improved := false;
    (* sweep in execution order: early flags influence everything after *)
    Array.iter
      (fun v ->
        if !evaluations < max_evaluations then begin
          flags.(v) <- not flags.(v);
          let m = evaluate () in
          if m < !best -. (1e-12 *. Float.abs !best) then begin
            best := m;
            incr flips;
            improved := true
          end
          else flags.(v) <- not flags.(v)
        end)
      order
  done;
  {
    schedule = Schedule.make g ~order ~checkpointed:flags;
    makespan = !best;
    initial_makespan;
    evaluations = !evaluations;
    flips = !flips;
  }
