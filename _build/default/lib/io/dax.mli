(** Pegasus DAX (v3) import and export.

    DAX is the XML workflow description consumed by the Pegasus planner —
    the system whose generated workflows the paper evaluates on. We read the
    subset relevant to scheduling:

    {v
    <adag name="montage">
      <job id="ID0000001" name="mProjectPP" runtime="13.59"/>
      ...
      <child ref="ID0000003">
        <parent ref="ID0000001"/>
        <parent ref="ID0000002"/>
      </child>
    </adag>
    v}

    Task weights come from the [runtime] attribute (seconds); Pegasus also
    emits profile elements, which are ignored. Checkpoint and recovery costs
    are not part of DAX — apply a {!Wfc_workflows.Cost_model.t} after
    loading. Job ids keep their document order, so ids are stable across a
    load/save round trip. *)

val of_xml : Xml.t -> (Wfc_dag.Dag.t, string) result
val to_xml : ?name:string -> Wfc_dag.Dag.t -> Xml.t

val load : string -> (Wfc_dag.Dag.t, string) result
(** Read a [.dax] file. *)

val save : ?name:string -> string -> Wfc_dag.Dag.t -> unit
(** Write a [.dax] file ([adag] root, one [job] per task, one [child] block
    per task with predecessors). *)
