(** JSON serialization of workflows and schedules.

    Workflow files look like:
    {v
    { "name": "montage-50",
      "tasks": [ { "id": 0, "label": "mProjectPP_0", "weight": 12.4,
                   "checkpoint_cost": 1.24, "recovery_cost": 1.24 }, ... ],
      "edges": [ [0, 5], [1, 5], ... ] }
    v}
    and schedule files:
    {v
    { "order": [0, 3, 1, ...], "checkpointed": [3, 4] }
    v}
    ([checkpointed] lists task ids). All decoders validate through
    {!Wfc_dag.Dag.create} / {!Wfc_core.Schedule.make}, so a loaded value
    satisfies the same invariants as a constructed one. *)

val dag_to_json : ?name:string -> Wfc_dag.Dag.t -> Json.t
val dag_of_json : Json.t -> (Wfc_dag.Dag.t, string) result

val schedule_to_json : Wfc_core.Schedule.t -> Json.t

val schedule_of_json :
  Wfc_dag.Dag.t -> Json.t -> (Wfc_core.Schedule.t, string) result

val save_dag : ?name:string -> string -> Wfc_dag.Dag.t -> unit
(** Write the workflow to a file (pretty-printed JSON). *)

val load_dag : string -> (Wfc_dag.Dag.t, string) result

val save_schedule : string -> Wfc_core.Schedule.t -> unit

val load_schedule :
  Wfc_dag.Dag.t -> string -> (Wfc_core.Schedule.t, string) result
