(** Minimal XML subset, sufficient for Pegasus DAX files.

    Supports elements with attributes, text content, comments, processing
    instructions and XML declarations, CDATA, and the five predefined
    entities. Not supported (and rejected where detectable): DTDs and custom
    entities. Namespaces are left as plain prefixed names. *)

type t = Element of string * (string * string) list * t list | Text of string

val of_string : string -> (t, string) result
(** Parse a document; returns its root element. The error string carries a
    character offset. *)

val to_string : t -> string
(** Render with two-space indentation and escaped attribute/text content. *)

(** {1 Accessors} *)

val name : t -> string option
(** Element name, [None] for text nodes. *)

val attr : string -> t -> string option
val children : t -> t list

val elements : ?named:string -> t -> t list
(** Child {e elements} (text dropped), optionally filtered by name. *)

val text_content : t -> string
(** Concatenated text under the node. *)
