lib/io/dax.ml: Array Fun Hashtbl List Printf Result Wfc_dag Xml
