lib/io/json.mli:
