lib/io/workflow_format.mli: Json Wfc_core Wfc_dag
