lib/io/xml.mli:
