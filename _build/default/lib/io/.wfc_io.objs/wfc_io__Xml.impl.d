lib/io/xml.ml: Buffer Char List Printf String
