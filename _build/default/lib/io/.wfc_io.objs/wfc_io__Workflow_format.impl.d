lib/io/workflow_format.ml: Array Fun Json List Printf Result Wfc_core Wfc_dag
