lib/io/dax.mli: Wfc_dag Xml
