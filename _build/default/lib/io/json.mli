(** Minimal self-contained JSON (RFC 8259 subset sufficient for workflow
    files): full parsing and printing of objects, arrays, strings, numbers,
    booleans and null; string escapes including BMP [\uXXXX]. Numbers are
    floats. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render; [minify] defaults to [false] (two-space indentation). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error string carries a character
    offset. *)

(** {1 Accessors} — convenience for decoding, all returning [Result]. *)

val member : string -> t -> (t, string) result
(** Field of an object. *)

val to_float : t -> (float, string) result
val to_int : t -> (int, string) result
val to_list : t -> (t list, string) result
val to_string_value : t -> (string, string) result

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
(** Result bind, for decoder pipelines. *)
