type t = Exponential of float | Weibull of { shape : float; scale : float }

let exponential ~rate =
  if not (rate > 0. && Float.is_finite rate) then
    invalid_arg "Distribution.exponential: rate must be positive";
  Exponential rate

let weibull ~shape ~scale =
  if not (shape > 0. && Float.is_finite shape) then
    invalid_arg "Distribution.weibull: shape must be positive";
  if not (scale > 0. && Float.is_finite scale) then
    invalid_arg "Distribution.weibull: scale must be positive";
  Weibull { shape; scale }

let weibull_of_mean ~shape ~mean =
  if not (mean > 0.) then
    invalid_arg "Distribution.weibull_of_mean: mean must be positive";
  let scale = mean /. Special_functions.gamma (1. +. (1. /. shape)) in
  weibull ~shape ~scale

let mean = function
  | Exponential rate -> 1. /. rate
  | Weibull { shape; scale } ->
      scale *. Special_functions.gamma (1. +. (1. /. shape))

let sample t rng =
  let u = Rng.uniform rng in
  (* -log (1 - u) is a unit exponential draw *)
  let e = -.Float.log (1. -. u) in
  match t with
  | Exponential rate -> e /. rate
  | Weibull { shape; scale } -> scale *. (e ** (1. /. shape))

let survival t x =
  if x <= 0. then 1.
  else
    match t with
    | Exponential rate -> Float.exp (-.rate *. x)
    | Weibull { shape; scale } -> Float.exp (-.((x /. scale) ** shape))

let name = function
  | Exponential rate -> Printf.sprintf "exp(%g)" rate
  | Weibull { shape; scale } -> Printf.sprintf "weibull(k=%g,s=%g)" shape scale
