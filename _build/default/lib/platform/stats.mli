(** Streaming statistics (Welford's online algorithm).

    Used by the Monte Carlo simulator to accumulate makespan samples without
    storing them, and by the test suite to bound the deviation between
    simulated and analytic expectations. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

val mean : t -> float
(** @raise Invalid_argument on an empty accumulator. *)

val variance : t -> float
(** Unbiased sample variance; [0.] when fewer than two samples. *)

val stddev : t -> float

val std_error : t -> float
(** Standard error of the mean, [stddev /. sqrt count]. *)

val confidence95 : t -> float * float
(** Normal-approximation 95% confidence interval for the mean
    ([mean -/+ 1.96 * std_error]). *)

val min_value : t -> float
val max_value : t -> float

val merge : t -> t -> t
(** Combine two accumulators (Chan's parallel update). *)

val pp : Format.formatter -> t -> unit
