(* Lanczos approximation with g = 7, n = 9 (Boost / numerical recipes
   coefficients); relative error below 1e-13 for positive arguments. *)

let coefficients =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if not (x > 0.) then invalid_arg "Special_functions.log_gamma: x <= 0";
  if x < 0.5 then
    (* reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x) *)
    Float.log (Float.pi /. Float.sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref coefficients.(0) in
    for i = 1 to 8 do
      acc := !acc +. (coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. Float.log (2. *. Float.pi))
    +. ((x +. 0.5) *. Float.log t)
    -. t
    +. Float.log !acc
  end

let gamma x = Float.exp (log_gamma x)
