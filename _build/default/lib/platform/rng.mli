(** Deterministic pseudo-random number generator (SplitMix64).

    All stochastic components of the library (workflow generation, random
    linearizations, fault injection) draw from this generator so that every
    experiment is reproducible from an integer seed, independently of the
    OCaml standard library's [Random] implementation. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. Use it to
    give each sub-experiment its own stream so adding draws to one component
    does not perturb another. *)

val copy : t -> t
(** Snapshot of the current state. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** [uniform t] is uniform in [\[0, 1)]. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] draws from the exponential distribution of
    parameter [rate] by inversion; mean [1 /. rate].
    @raise Invalid_argument if [rate <= 0]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller normal draw. @raise Invalid_argument if [stddev < 0]. *)

val truncated_gaussian : t -> mean:float -> stddev:float -> lo:float -> float
(** Gaussian draw resampled (then clamped after 64 tries) to be [>= lo]; used
    for task weights, which must stay positive.
    @raise Invalid_argument if [stddev < 0] or [mean < lo]. *)
