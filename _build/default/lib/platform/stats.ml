type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;  (* sum of squared deviations from the running mean *)
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n

let mean t =
  if t.n = 0 then invalid_arg "Stats.mean: empty accumulator";
  t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = Float.sqrt (variance t)

let std_error t =
  if t.n = 0 then invalid_arg "Stats.std_error: empty accumulator";
  stddev t /. Float.sqrt (float_of_int t.n)

let confidence95 t =
  let half = 1.96 *. std_error t in
  (mean t -. half, mean t +. half)

let min_value t =
  if t.n = 0 then invalid_arg "Stats.min_value: empty accumulator";
  t.min_v

let max_value t =
  if t.n = 0 then invalid_arg "Stats.max_value: empty accumulator";
  t.max_v

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let nf = float_of_int n in
    {
      n;
      mean = a.mean +. (delta *. float_of_int b.n /. nf);
      m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf);
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
    }

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "no samples"
  else
    Format.fprintf ppf "n=%d mean=%g stddev=%g min=%g max=%g" t.n t.mean
      (stddev t) t.min_v t.max_v
