(** Failure inter-arrival distributions.

    The paper's theory is exact for exponential failures; its related work
    (Weibull fits of production logs, e.g. Gelenbe & Hernández 1990) motivates
    checking how exponential-optimal schedules behave under age-dependent
    failure processes. Failures form a renewal process: after each repair the
    inter-arrival clock restarts with a fresh draw. *)

type t =
  | Exponential of float  (** rate [lambda > 0] *)
  | Weibull of { shape : float; scale : float }
      (** hazard increasing for [shape > 1], infant-mortality for
          [shape < 1]; [shape = 1] is [Exponential (1 /. scale)] *)

val exponential : rate:float -> t
(** @raise Invalid_argument if [rate <= 0]. *)

val weibull : shape:float -> scale:float -> t
(** @raise Invalid_argument if either parameter is non-positive. *)

val weibull_of_mean : shape:float -> mean:float -> t
(** The Weibull with the given shape and mean: [scale = mean /.
    Gamma (1. +. 1. /. shape)]. Handy for comparing distributions at equal
    MTBF. *)

val mean : t -> float
(** Expected inter-arrival time (the MTBF). *)

val sample : t -> Rng.t -> float
(** One inter-arrival draw (inverse-CDF). *)

val survival : t -> float -> float
(** [survival d t] is [P(X > t)]. *)

val name : t -> string
(** e.g. ["exp(0.001)"] or ["weibull(k=0.7,s=1354)"]. *)
