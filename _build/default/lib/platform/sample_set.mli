(** In-memory sample collections with order statistics.

    {!Stats} is streaming and keeps no samples; this small companion stores
    them, for quantiles and tail analysis of simulated makespans. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]], by linear interpolation between
    order statistics (type-7, the R default).

    @raise Invalid_argument on an empty set or [q] outside [\[0, 1\]]. *)

val median : t -> float
val sorted : t -> float array

val to_stats : t -> Stats.t
(** Summarize into a streaming accumulator. *)
