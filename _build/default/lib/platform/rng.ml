(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, fast, splittable
   generator with solid statistical quality for simulation purposes. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 (* 63 bits, >= 0 *) in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then
      draw ()
    else Int64.to_int v
  in
  draw ()

let uniform t =
  (* 53 uniform bits into [0, 1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. 0x1.0p-53

let float t bound = bound *. uniform t

let exponential t ~rate =
  if not (rate > 0.) then invalid_arg "Rng.exponential: rate must be positive";
  let u = uniform t in
  (* u in [0,1) so 1 - u in (0,1]; log is finite. *)
  -.Float.log (1. -. u) /. rate

let gaussian t ~mean ~stddev =
  if stddev < 0. then invalid_arg "Rng.gaussian: negative stddev";
  let rec nonzero () =
    let u = uniform t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = uniform t in
  let z = Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2) in
  mean +. (stddev *. z)

let truncated_gaussian t ~mean ~stddev ~lo =
  if mean < lo then invalid_arg "Rng.truncated_gaussian: mean below lo";
  let rec try_draw attempts =
    if attempts = 0 then lo
    else
      let x = gaussian t ~mean ~stddev in
      if x >= lo then x else try_draw (attempts - 1)
  in
  try_draw 64
