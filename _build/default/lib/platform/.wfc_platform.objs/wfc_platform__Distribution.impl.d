lib/platform/distribution.ml: Float Printf Rng Special_functions
