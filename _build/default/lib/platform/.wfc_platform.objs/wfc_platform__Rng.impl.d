lib/platform/rng.ml: Float Int64
