lib/platform/distribution.mli: Rng
