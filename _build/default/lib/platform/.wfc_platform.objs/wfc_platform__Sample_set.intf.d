lib/platform/sample_set.mli: Stats
