lib/platform/failure_model.ml: Float Format Printf
