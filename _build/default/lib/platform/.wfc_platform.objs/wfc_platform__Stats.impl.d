lib/platform/stats.ml: Float Format
