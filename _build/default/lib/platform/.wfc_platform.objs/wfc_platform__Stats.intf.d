lib/platform/stats.mli: Format
