lib/platform/special_functions.ml: Array Float
