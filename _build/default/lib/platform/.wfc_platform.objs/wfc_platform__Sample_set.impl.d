lib/platform/sample_set.ml: Array Float Int Stats
