lib/platform/failure_model.mli: Format
