lib/platform/rng.mli:
