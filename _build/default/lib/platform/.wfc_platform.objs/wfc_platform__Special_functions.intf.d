lib/platform/special_functions.mli:
