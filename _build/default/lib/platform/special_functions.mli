(** Special functions needed by the failure distributions. *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0] (Lanczos approximation,
    accurate to ~1e-13 over the range used here).

    @raise Invalid_argument if [x <= 0]. *)

val gamma : float -> float
(** [gamma x = exp (log_gamma x)]; overflows to [infinity] for large [x]. *)
