let min_size = 11

let t_project = Job_type.make ~name:"mProjectPP" ~mean_weight:13. ()
let t_diff = Job_type.make ~name:"mDiffFit" ~mean_weight:10. ~cv:0.3 ()
let t_concat = Job_type.make ~name:"mConcatFit" ~mean_weight:15. ()
let t_bgmodel = Job_type.make ~name:"mBgModel" ~mean_weight:20. ()
let t_background = Job_type.make ~name:"mBackground" ~mean_weight:11. ()
let t_imgtbl = Job_type.make ~name:"mImgtbl" ~mean_weight:8. ()
let t_add = Job_type.make ~name:"mAdd" ~mean_weight:18. ()
let t_shrink = Job_type.make ~name:"mShrink" ~mean_weight:5. ()
let t_jpeg = Job_type.make ~name:"mJPEG" ~mean_weight:2. ~cv:0.1 ()

(* n = 2*n1 (project + background) + nd (diff) + ns (shrink) + 5 singletons;
   nd absorbs the slack so the total is exact. *)
let layer_sizes n =
  let n1 = ref (Int.max 2 ((n - 5) * 22 / 100)) in
  let ns = ref (Int.max 1 (!n1 / 6)) in
  let nd () = n - 5 - (2 * !n1) - !ns in
  while nd () < 1 && (!n1 > 2 || !ns > 1) do
    if !n1 > 2 then decr n1 else decr ns
  done;
  if nd () < 1 then invalid_arg "Montage.generate: workflow too small";
  (!n1, nd (), !ns)

let generate ~rng ~n =
  if n < min_size then
    invalid_arg
      (Printf.sprintf "Montage.generate: need at least %d tasks" min_size);
  let n1, nd, ns = layer_sizes n in
  let b = Builder.create ~rng in
  let projects = Array.init n1 (fun _ -> Builder.add_task b t_project ~deps:[]) in
  let diffs =
    Array.init nd (fun j ->
        let a = projects.(j mod n1) and c = projects.((j + 1) mod n1) in
        let deps = if a = c then [ a ] else [ a; c ] in
        Builder.add_task b t_diff ~deps)
  in
  let concat = Builder.add_task b t_concat ~deps:(Array.to_list diffs) in
  let bgmodel = Builder.add_task b t_bgmodel ~deps:[ concat ] in
  let backgrounds =
    Array.map (fun p -> Builder.add_task b t_background ~deps:[ bgmodel; p ])
      projects
  in
  let imgtbl = Builder.add_task b t_imgtbl ~deps:(Array.to_list backgrounds) in
  let add = Builder.add_task b t_add ~deps:[ imgtbl ] in
  let shrinks =
    Array.init ns (fun _ -> Builder.add_task b t_shrink ~deps:[ add ])
  in
  let _jpeg = Builder.add_task b t_jpeg ~deps:(Array.to_list shrinks) in
  assert (Builder.size b = n);
  Builder.finalize b
