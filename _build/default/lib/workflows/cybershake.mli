(** Synthetic CyberShake workflows (SCEC seismic hazard characterization).

    Structure: [ExtractSGT] sources feed a wide layer of
    [SeismogramSynthesis] tasks, each followed by a tiny [PeakValCalc]; one
    [ZipSeis] aggregates all seismograms and one [ZipPSA] aggregates all peak
    values. The average task weight is about 25 s, as reported in the
    paper. *)

val min_size : int

val generate : rng:Wfc_platform.Rng.t -> n:int -> Wfc_dag.Dag.t
(** [generate ~rng ~n] builds a CyberShake DAG with exactly [n] tasks.
    @raise Invalid_argument if [n < min_size]. *)
