(** Synthetic LIGO Inspiral Analysis workflows.

    Structure: [TmpltBank] sources feed a bank of heavy [Inspiral] tasks,
    grouped by [Thinca] coincidence tasks; selected triggers spawn
    [TrigBank] -> [Inspiral] refinement pairs, aggregated by a second layer
    of [Thinca]. The average task weight is about 220 s, dominated by the
    [Inspiral] matched-filter stages, as reported in the paper. *)

val min_size : int

val generate : rng:Wfc_platform.Rng.t -> n:int -> Wfc_dag.Dag.t
(** [generate ~rng ~n] builds a Ligo DAG with exactly [n] tasks.
    @raise Invalid_argument if [n < min_size]. *)
