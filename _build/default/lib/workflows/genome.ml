let min_size = 5

let t_split = Job_type.make ~name:"fastQSplit" ~mean_weight:400. ~cv:0.3 ()
let t_filter = Job_type.make ~name:"filterContams" ~mean_weight:350. ()
let t_sol = Job_type.make ~name:"sol2sanger" ~mean_weight:80. ()
let t_bfq = Job_type.make ~name:"fastq2bfq" ~mean_weight:180. ()
let t_map = Job_type.make ~name:"map" ~mean_weight:4200. ~cv:0.3 ()
let t_merge = Job_type.make ~name:"mapMerge" ~mean_weight:900. ()
let t_index = Job_type.make ~name:"maqIndex" ~mean_weight:500. ()
let t_pileup = Job_type.make ~name:"pileup" ~mean_weight:250. ()

(* Stage sequences by chain length; shorter chains skip optional conversion
   stages but always end with the heavy [map]. *)
let chain_stages = function
  | 4 -> [ t_filter; t_sol; t_bfq; t_map ]
  | 3 -> [ t_filter; t_bfq; t_map ]
  | 2 -> [ t_filter; t_map ]
  | 1 -> [ t_map ]
  | _ -> invalid_arg "Genome.chain_stages"

(* Split [budget] tasks into at least [min_chains] chains of length 1 to 4,
   as even as possible. Feasible whenever budget >= min_chains. *)
let chain_lengths ~min_chains budget =
  if budget < min_chains || min_chains < 1 then
    invalid_arg "Genome.chain_lengths: infeasible budget";
  let k = Int.max min_chains ((budget + 3) / 4) in
  let base = budget / k and rem = budget mod k in
  List.init k (fun i -> if i < rem then base + 1 else base)

let generate ~rng ~n =
  if n < min_size then
    invalid_arg
      (Printf.sprintf "Genome.generate: need at least %d tasks" min_size);
  (* n = 2 (index + pileup) + 2 * lanes (split + merge) + chain tasks, and
     every lane needs at least one chain task. *)
  let lanes = Int.max 1 (Int.min (n / 40) ((n - 2) / 3)) in
  let budget = n - 2 - (2 * lanes) in
  let chains = Array.of_list (chain_lengths ~min_chains:lanes budget) in
  let b = Builder.create ~rng in
  let splits =
    Array.init lanes (fun _ -> Builder.add_task b t_split ~deps:[])
  in
  let lane_maps = Array.make lanes [] in
  Array.iteri
    (fun c len ->
      let lane = c mod lanes in
      let last =
        List.fold_left
          (fun dep jt -> Builder.add_task b jt ~deps:[ dep ])
          splits.(lane) (chain_stages len)
      in
      lane_maps.(lane) <- last :: lane_maps.(lane))
    chains;
  let merges =
    Array.init lanes (fun lane ->
        Builder.add_task b t_merge ~deps:lane_maps.(lane))
  in
  let index = Builder.add_task b t_index ~deps:(Array.to_list merges) in
  let _pileup = Builder.add_task b t_pileup ~deps:[ index ] in
  assert (Builder.size b = n);
  Builder.finalize b
