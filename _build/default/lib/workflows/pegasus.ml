type family = Montage | Ligo | Cybershake | Genome | Sipht

(* the four applications of the paper's evaluation section *)
let all = [ Montage; Ligo; Cybershake; Genome ]
let extended = all @ [ Sipht ]

let family_name = function
  | Montage -> "Montage"
  | Ligo -> "Ligo"
  | Cybershake -> "CyberShake"
  | Genome -> "Genome"
  | Sipht -> "Sipht"

let family_of_string s =
  match String.lowercase_ascii s with
  | "montage" -> Some Montage
  | "ligo" -> Some Ligo
  | "cybershake" -> Some Cybershake
  | "genome" -> Some Genome
  | "sipht" -> Some Sipht
  | _ -> None

let min_size = function
  | Montage -> Montage.min_size
  | Ligo -> Ligo.min_size
  | Cybershake -> Cybershake.min_size
  | Genome -> Genome.min_size
  | Sipht -> Sipht.min_size

let mean_task_weight = function
  | Montage -> 10.
  | Ligo -> 220.
  | Cybershake -> 25.
  | Genome -> 1000.
  | Sipht -> 140.

(* Distinct streams per (family, n, seed) so that changing one experiment
   leaves all others byte-identical. *)
let stream_seed family ~n ~seed =
  let tag =
    match family with
    | Montage -> 1
    | Ligo -> 2
    | Cybershake -> 3
    | Genome -> 4
    | Sipht -> 5
  in
  (seed * 1_000_003) + (n * 101) + tag

let generate family ~n ~seed =
  let rng = Wfc_platform.Rng.create (stream_seed family ~n ~seed) in
  match family with
  | Montage -> Montage.generate ~rng ~n
  | Ligo -> Ligo.generate ~rng ~n
  | Cybershake -> Cybershake.generate ~rng ~n
  | Genome -> Genome.generate ~rng ~n
  | Sipht -> Sipht.generate ~rng ~n
