type t = {
  rng : Wfc_platform.Rng.t;
  mutable rev_types : Job_type.t list;
  mutable edges : (int * int) list;
  mutable count : int;
  per_type : (string, int) Hashtbl.t;
}

let create ~rng =
  { rng; rev_types = []; edges = []; count = 0; per_type = Hashtbl.create 8 }

let add_task b (jt : Job_type.t) ~deps =
  let id = b.count in
  List.iter
    (fun d ->
      if d < 0 || d >= id then
        invalid_arg
          (Printf.sprintf "Builder.add_task: dependency %d of task %d" d id))
    deps;
  b.rev_types <- jt :: b.rev_types;
  b.edges <- List.rev_append (List.rev_map (fun d -> (d, id)) deps) b.edges;
  b.count <- id + 1;
  id

let size b = b.count

let finalize b =
  if b.count = 0 then invalid_arg "Builder.finalize: no task added";
  let types = Array.of_list (List.rev b.rev_types) in
  let tasks =
    Array.mapi
      (fun id (jt : Job_type.t) ->
        let k =
          match Hashtbl.find_opt b.per_type jt.Job_type.name with
          | Some k -> k
          | None -> 0
        in
        Hashtbl.replace b.per_type jt.Job_type.name (k + 1);
        let weight = Job_type.sample_weight jt b.rng in
        Wfc_dag.Task.make ~id
          ~label:(Printf.sprintf "%s_%d" jt.Job_type.name k)
          ~weight ())
      types
  in
  Wfc_dag.Dag.create ~tasks ~edges:b.edges
