lib/workflows/builder.ml: Array Hashtbl Job_type List Printf Wfc_dag Wfc_platform
