lib/workflows/cost_model.ml: Float Printf String Wfc_dag
