lib/workflows/ligo.ml: Array Builder Int Job_type List Printf
