lib/workflows/montage.ml: Array Builder Int Job_type Printf
