lib/workflows/builder.mli: Job_type Wfc_dag Wfc_platform
