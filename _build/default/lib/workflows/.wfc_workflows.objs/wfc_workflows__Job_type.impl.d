lib/workflows/job_type.ml: Float Format Wfc_platform
