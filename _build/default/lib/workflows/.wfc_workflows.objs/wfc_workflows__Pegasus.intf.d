lib/workflows/pegasus.mli: Wfc_dag
