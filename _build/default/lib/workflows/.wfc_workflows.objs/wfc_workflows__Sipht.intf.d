lib/workflows/sipht.mli: Wfc_dag Wfc_platform
