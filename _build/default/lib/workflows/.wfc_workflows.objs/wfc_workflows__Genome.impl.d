lib/workflows/genome.ml: Array Builder Int Job_type List Printf
