lib/workflows/pegasus.ml: Cybershake Genome Ligo Montage Sipht String Wfc_platform
