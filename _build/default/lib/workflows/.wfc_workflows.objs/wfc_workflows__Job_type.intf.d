lib/workflows/job_type.mli: Format Wfc_platform
