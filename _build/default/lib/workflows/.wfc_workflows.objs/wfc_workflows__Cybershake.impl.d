lib/workflows/cybershake.ml: Array Builder Int Job_type Printf
