lib/workflows/cybershake.mli: Wfc_dag Wfc_platform
