lib/workflows/montage.mli: Wfc_dag Wfc_platform
