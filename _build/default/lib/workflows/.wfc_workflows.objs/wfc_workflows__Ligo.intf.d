lib/workflows/ligo.mli: Wfc_dag Wfc_platform
