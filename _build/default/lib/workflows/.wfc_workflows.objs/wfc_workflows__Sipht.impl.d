lib/workflows/sipht.ml: Builder Int Job_type List Printf
