lib/workflows/genome.mli: Wfc_dag Wfc_platform
