lib/workflows/cost_model.mli: Wfc_dag
