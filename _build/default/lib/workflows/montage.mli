(** Synthetic Montage workflows (NASA/IPAC sky mosaics).

    Structure follows the Pegasus characterization: a layer of [mProjectPP]
    reprojections feeds pairwise [mDiffFit] tasks, aggregated by one
    [mConcatFit] and one [mBgModel]; per-image [mBackground] tasks then feed
    [mImgtbl], [mAdd], a layer of [mShrink] and a final [mJPEG]. The average
    task weight is about 10 s, as reported in the paper. *)

val min_size : int

val generate : rng:Wfc_platform.Rng.t -> n:int -> Wfc_dag.Dag.t
(** [generate ~rng ~n] builds a Montage DAG with exactly [n] tasks.
    @raise Invalid_argument if [n < min_size]. *)
