(** Incremental construction of workflow DAGs.

    Generators add typed tasks one by one, wiring each to already-added
    dependencies, and finalize into a {!Wfc_dag.Dag.t} whose weights are
    sampled from the job types. *)

type t

val create : rng:Wfc_platform.Rng.t -> t

val add_task : t -> Job_type.t -> deps:int list -> int
(** [add_task b jt ~deps] registers a new task of type [jt] depending on the
    given earlier task ids, and returns its id (ids are consecutive from 0).

    @raise Invalid_argument if a dependency id is not an existing task. *)

val size : t -> int
(** Number of tasks added so far. *)

val finalize : t -> Wfc_dag.Dag.t
(** Build the DAG, sampling every task weight with the builder's RNG; task
    labels are ["<type>_<k>"] where [k] counts tasks of that type.

    @raise Invalid_argument if no task was added. *)
