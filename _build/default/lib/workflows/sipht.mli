(** Synthetic SIPHT workflows (Harvard sRNA identification pipeline).

    The fifth application of the Bharathi et al. characterization, added as
    an extension: the paper's evaluation uses the other four. Structure: one
    independent sub-workflow per replicon, each with a wide layer of tiny
    [Patser] jobs aggregated by [Patser_concate], a heavy search stage
    ([Blast], [Findterm], [RNAMotif], [Transterm]) joined by [SRNA], a fan of
    light secondary blasts, and a final [SRNA_annotate]. Average task weight
    is roughly 140 s, dominated by [Blast] and [Findterm]. Sub-workflows are
    disconnected, which stresses linearization strategies (many exit
    tasks). *)

val min_size : int

val generate : rng:Wfc_platform.Rng.t -> n:int -> Wfc_dag.Dag.t
(** [generate ~rng ~n] builds a SIPHT DAG with exactly [n] tasks.
    @raise Invalid_argument if [n < min_size]. *)
