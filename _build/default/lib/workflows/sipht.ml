let min_size = 13

let t_patser = Job_type.make ~name:"Patser" ~mean_weight:1. ~cv:0.3 ()
let t_concate = Job_type.make ~name:"Patser_concate" ~mean_weight:10. ()
let t_transterm = Job_type.make ~name:"Transterm" ~mean_weight:32. ()
let t_findterm = Job_type.make ~name:"Findterm" ~mean_weight:594. ~cv:0.3 ()
let t_rnamotif = Job_type.make ~name:"RNAMotif" ~mean_weight:25. ()
let t_blast = Job_type.make ~name:"Blast" ~mean_weight:3311. ~cv:0.3 ()
let t_srna = Job_type.make ~name:"SRNA" ~mean_weight:12. ()
let t_ffn = Job_type.make ~name:"FFN_parse" ~mean_weight:0.5 ()
let t_synteny = Job_type.make ~name:"Blast_synteny" ~mean_weight:3.6 ()
let t_candidate = Job_type.make ~name:"Blast_candidate" ~mean_weight:0.6 ()
let t_qrna = Job_type.make ~name:"Blast_QRNA" ~mean_weight:440. ~cv:0.3 ()
let t_paralogues = Job_type.make ~name:"Blast_paralogues" ~mean_weight:0.7 ()
let t_annotate = Job_type.make ~name:"SRNA_annotate" ~mean_weight:0.6 ()

let tasks_per_unit_fixed = 12

(* One replicon sub-workflow with [patsers] Patser jobs. *)
let add_unit b ~patsers =
  let ps =
    List.init patsers (fun _ -> Builder.add_task b t_patser ~deps:[])
  in
  let concate = Builder.add_task b t_concate ~deps:ps in
  let transterm = Builder.add_task b t_transterm ~deps:[] in
  let findterm = Builder.add_task b t_findterm ~deps:[] in
  let rnamotif = Builder.add_task b t_rnamotif ~deps:[] in
  let blast = Builder.add_task b t_blast ~deps:[] in
  let srna =
    Builder.add_task b t_srna
      ~deps:[ concate; transterm; findterm; rnamotif; blast ]
  in
  let ffn = Builder.add_task b t_ffn ~deps:[ srna ] in
  let synteny = Builder.add_task b t_synteny ~deps:[ srna; ffn ] in
  let candidate = Builder.add_task b t_candidate ~deps:[ srna ] in
  let qrna = Builder.add_task b t_qrna ~deps:[ srna ] in
  let paralogues = Builder.add_task b t_paralogues ~deps:[ srna ] in
  ignore
    (Builder.add_task b t_annotate
       ~deps:[ synteny; candidate; qrna; paralogues; concate ])

let generate ~rng ~n =
  if n < min_size then
    invalid_arg
      (Printf.sprintf "Sipht.generate: need at least %d tasks" min_size);
  (* u sub-workflows of 12 fixed tasks + >= 1 Patser each *)
  let units =
    Int.max 1 (Int.min (n / 33) (n / (tasks_per_unit_fixed + 1)))
  in
  let patser_budget = n - (tasks_per_unit_fixed * units) in
  let base = patser_budget / units and rem = patser_budget mod units in
  let b = Builder.create ~rng in
  for u = 0 to units - 1 do
    add_unit b ~patsers:(base + if u < rem then 1 else 0)
  done;
  assert (Builder.size b = n);
  Builder.finalize b
