(** Synthetic Epigenomics ("Genome") workflows (USC Epigenome Center).

    Structure: each sequencing lane starts with a [fastQSplit] that fans out
    into parallel read-processing chains ([filterContams] -> [sol2sanger] ->
    [fastq2bfq] -> [map]); a per-lane [mapMerge] collects the mapped reads,
    and a global [maqIndex] -> [pileup] tail closes the workflow. Task
    weights are dominated by the [map] stage; the workflow-wide average
    exceeds 1000 s, as in the paper. Some chains omit intermediate conversion
    stages so that the requested task count is met exactly. *)

val min_size : int

val generate : rng:Wfc_platform.Rng.t -> n:int -> Wfc_dag.Dag.t
(** [generate ~rng ~n] builds a Genome DAG with exactly [n] tasks.
    @raise Invalid_argument if [n < min_size]. *)
