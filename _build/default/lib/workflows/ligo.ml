let min_size = 8

let t_bank = Job_type.make ~name:"TmpltBank" ~mean_weight:35. ~cv:0.2 ()
let t_inspiral = Job_type.make ~name:"Inspiral" ~mean_weight:450. ()
let t_thinca = Job_type.make ~name:"Thinca" ~mean_weight:8. ~cv:0.3 ()
let t_trigbank = Job_type.make ~name:"TrigBank" ~mean_weight:10. ~cv:0.3 ()

let group_size = 5
let n_groups k = (k + group_size - 1) / group_size

(* The first coincidence layer has a group count fixed by [nb] so that extra
   first-stage inspirals (the padding that makes the task count exact) each
   add exactly one task; they just enlarge existing groups. *)
let total nb ni m = nb + ni + n_groups nb + (2 * m) + n_groups m

let generate ~rng ~n =
  if n < min_size then
    invalid_arg (Printf.sprintf "Ligo.generate: need at least %d tasks" min_size);
  let nb =
    let guess = Int.max 2 (n / 5) in
    if total guess guess 1 > n then 2 else guess
  in
  if total nb nb 1 > n then invalid_arg "Ligo.generate: workflow too small";
  (* Grow the refinement stage while it fits (each step adds 2 or 3 tasks),
     then pad with extra first-stage inspirals (one task each). *)
  let m = ref 1 in
  while total nb nb (!m + 1) <= n do
    incr m
  done;
  let m = !m in
  let ni = nb + (n - total nb nb m) in
  let t1 = n_groups nb in
  let b = Builder.create ~rng in
  let banks = Array.init nb (fun _ -> Builder.add_task b t_bank ~deps:[]) in
  let inspirals1 =
    Array.init ni (fun j ->
        Builder.add_task b t_inspiral ~deps:[ banks.(j mod nb) ])
  in
  let thincas1 =
    Array.init t1 (fun g ->
        let members =
          List.filteri (fun j _ -> j mod t1 = g)
            (Array.to_list inspirals1)
        in
        Builder.add_task b t_thinca ~deps:members)
  in
  let trigbanks =
    Array.init m (fun j ->
        Builder.add_task b t_trigbank ~deps:[ thincas1.(j mod t1) ])
  in
  let inspirals2 =
    Array.map (fun tb -> Builder.add_task b t_inspiral ~deps:[ tb ]) trigbanks
  in
  let _thincas2 =
    Array.init (n_groups m) (fun g ->
        let members =
          Array.to_list
            (Array.sub inspirals2 (g * group_size)
               (Int.min group_size (m - (g * group_size))))
        in
        Builder.add_task b t_thinca ~deps:members)
  in
  assert (Builder.size b = n);
  Builder.finalize b
