(** Entry point of the synthetic Pegasus workflow generator.

    Mirrors the four applications used in the paper's evaluation (Section 6):
    Montage (average task weight ~10 s), Ligo (~220 s), CyberShake (~25 s)
    and Genome (>= 1000 s) — plus SIPHT (~140 s) from the same
    characterization, as an extension. Generated weights are random but fully
    deterministic in the seed. Checkpoint/recovery costs are all zero; apply
    a {!Cost_model.t} to set them. *)

type family = Montage | Ligo | Cybershake | Genome | Sipht

val all : family list
(** The paper's four evaluation workflows (no SIPHT) — what the figure
    harness sweeps. *)

val extended : family list
(** [all] plus [Sipht]. *)

val family_name : family -> string
(** "Montage", "Ligo", "CyberShake" or "Genome". *)

val family_of_string : string -> family option
(** Case-insensitive inverse of {!family_name}. *)

val min_size : family -> int

val mean_task_weight : family -> float
(** Indicative average task weight of the family (used to scale MTBFs in
    experiments; the paper quotes 10 s / 220 s / 25 s / > 1000 s). *)

val generate : family -> n:int -> seed:int -> Wfc_dag.Dag.t
(** [generate f ~n ~seed] builds a workflow of family [f] with exactly [n]
    tasks. Equal arguments produce identical DAGs.

    @raise Invalid_argument if [n < min_size f]. *)
