type t = { name : string; mean_weight : float; cv : float }

let make ~name ~mean_weight ?(cv = 0.25) () =
  if not (Float.is_finite mean_weight && mean_weight > 0.) then
    invalid_arg "Job_type.make: mean_weight must be positive";
  if not (Float.is_finite cv && cv >= 0.) then
    invalid_arg "Job_type.make: cv must be non-negative";
  { name; mean_weight; cv }

let sample_weight t rng =
  Wfc_platform.Rng.truncated_gaussian rng ~mean:t.mean_weight
    ~stddev:(t.cv *. t.mean_weight) ~lo:(t.mean_weight /. 10.)

let pp ppf t =
  Format.fprintf ppf "%s(mean=%g,cv=%g)" t.name t.mean_weight t.cv
