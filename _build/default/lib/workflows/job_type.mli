(** Job types of the synthetic scientific workflows.

    Each Pegasus workflow is made of a small number of job types (e.g.
    Montage's [mProjectPP], [mDiffFit], ...). A job type carries the mean
    runtime of its tasks and a coefficient of variation; individual task
    weights are drawn from a Gaussian truncated away from zero, following the
    workflow characterization of Bharathi et al. (WORKS 2008). *)

type t = private {
  name : string;
  mean_weight : float;  (** mean runtime in seconds, > 0 *)
  cv : float;  (** coefficient of variation (stddev / mean), >= 0 *)
}

val make : name:string -> mean_weight:float -> ?cv:float -> unit -> t
(** [cv] defaults to [0.25].
    @raise Invalid_argument on non-positive mean or negative cv. *)

val sample_weight : t -> Wfc_platform.Rng.t -> float
(** Draw one task weight: Gaussian of mean [mean_weight] and stddev
    [cv *. mean_weight], truncated below at [mean_weight /. 10.]. *)

val pp : Format.formatter -> t -> unit
