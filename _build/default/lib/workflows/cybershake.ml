let min_size = 6

let t_extract = Job_type.make ~name:"ExtractSGT" ~mean_weight:95. ~cv:0.4 ()
let t_synth =
  Job_type.make ~name:"SeismogramSynthesis" ~mean_weight:28. ~cv:0.4 ()
let t_peak = Job_type.make ~name:"PeakValCalc" ~mean_weight:1.5 ~cv:0.3 ()
let t_zipseis = Job_type.make ~name:"ZipSeis" ~mean_weight:40. ()
let t_zippsa = Job_type.make ~name:"ZipPSA" ~mean_weight:40. ()

let generate ~rng ~n =
  if n < min_size then
    invalid_arg
      (Printf.sprintf "Cybershake.generate: need at least %d tasks" min_size);
  (* n = ne + 2 * ns + 2; ne's parity is adjusted so ns is integral. *)
  let ne =
    let guess = Int.max 2 (n / 10) in
    if (n - guess) mod 2 <> 0 then guess + 1 else guess
  in
  let ns = (n - ne - 2) / 2 in
  if ns < 1 then invalid_arg "Cybershake.generate: workflow too small";
  let b = Builder.create ~rng in
  let extracts =
    Array.init ne (fun _ -> Builder.add_task b t_extract ~deps:[])
  in
  let synths =
    Array.init ns (fun j ->
        let a = extracts.(j mod ne) and c = extracts.((j + 1) mod ne) in
        let deps = if a = c then [ a ] else [ a; c ] in
        Builder.add_task b t_synth ~deps)
  in
  let peaks =
    Array.map (fun s -> Builder.add_task b t_peak ~deps:[ s ]) synths
  in
  let _zipseis = Builder.add_task b t_zipseis ~deps:(Array.to_list synths) in
  let _zippsa = Builder.add_task b t_zippsa ~deps:(Array.to_list peaks) in
  assert (Builder.size b = n);
  Builder.finalize b
