(** Tasks of a computational workflow.

    A task is a tightly-coupled parallel computation that executes on the
    whole platform. Besides its computational weight [w] (failure-free
    execution time, in seconds), a task carries the cost [c] of checkpointing
    its output and the cost [r] of recovering that output from a checkpoint,
    following the model of Aupy, Benoit, Casanova & Robert (IPDPS 2015). *)

type t = private {
  id : int;  (** index of the task in its DAG, [0 <= id < n] *)
  label : string;  (** human-readable name, e.g. ["mProjectPP_3"] *)
  weight : float;
      (** failure-free execution time [w_i >= 0], seconds (zero-weight tasks
          appear in reductions and as structural markers) *)
  checkpoint_cost : float;  (** time [c_i >= 0] to checkpoint the output *)
  recovery_cost : float;  (** time [r_i >= 0] to reload the checkpoint *)
}

val make :
  id:int ->
  ?label:string ->
  weight:float ->
  ?checkpoint_cost:float ->
  ?recovery_cost:float ->
  unit ->
  t
(** [make ~id ~weight ()] builds a task. [label] defaults to ["T<id>"];
    [checkpoint_cost] and [recovery_cost] default to [0.].

    @raise Invalid_argument if [id < 0], [weight < 0], or either cost is
    negative or not finite. *)

val with_costs : t -> checkpoint_cost:float -> recovery_cost:float -> t
(** [with_costs t ~checkpoint_cost ~recovery_cost] is [t] with both costs
    replaced. Same validity constraints as {!make}. *)

val with_weight : t -> weight:float -> t
(** [with_weight t ~weight] is [t] with its weight replaced. *)

val relabel : t -> string -> t
(** [relabel t label] is [t] with label [label]. *)

val equal : t -> t -> bool
(** Structural equality (all fields). *)

val compare_by_id : t -> t -> int
(** Orders tasks by [id]. *)

val pp : Format.formatter -> t -> unit
(** [pp ppf t] prints [t] as ["T3(w=10.0,c=1.0,r=1.0)"]. *)

val to_string : t -> string
