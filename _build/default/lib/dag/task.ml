type t = {
  id : int;
  label : string;
  weight : float;
  checkpoint_cost : float;
  recovery_cost : float;
}

let is_valid_cost x = Float.is_finite x && x >= 0.

let check_fields ~id ~weight ~checkpoint_cost ~recovery_cost =
  if id < 0 then invalid_arg "Task.make: id must be non-negative";
  if not (Float.is_finite weight && weight >= 0.) then
    invalid_arg "Task.make: weight must be non-negative and finite";
  if not (is_valid_cost checkpoint_cost) then
    invalid_arg "Task.make: checkpoint_cost must be non-negative and finite";
  if not (is_valid_cost recovery_cost) then
    invalid_arg "Task.make: recovery_cost must be non-negative and finite"

let make ~id ?label ~weight ?(checkpoint_cost = 0.) ?(recovery_cost = 0.) () =
  check_fields ~id ~weight ~checkpoint_cost ~recovery_cost;
  let label = match label with Some l -> l | None -> "T" ^ string_of_int id in
  { id; label; weight; checkpoint_cost; recovery_cost }

let with_costs t ~checkpoint_cost ~recovery_cost =
  check_fields ~id:t.id ~weight:t.weight ~checkpoint_cost ~recovery_cost;
  { t with checkpoint_cost; recovery_cost }

let with_weight t ~weight =
  check_fields ~id:t.id ~weight ~checkpoint_cost:t.checkpoint_cost
    ~recovery_cost:t.recovery_cost;
  { t with weight }

let relabel t label = { t with label }

let equal a b =
  a.id = b.id && String.equal a.label b.label
  && Float.equal a.weight b.weight
  && Float.equal a.checkpoint_cost b.checkpoint_cost
  && Float.equal a.recovery_cost b.recovery_cost

let compare_by_id a b = Int.compare a.id b.id

let pp ppf t =
  Format.fprintf ppf "T%d(w=%g,c=%g,r=%g)" t.id t.weight t.checkpoint_cost
    t.recovery_cost

let to_string t = Format.asprintf "%a" pp t
