(** Structure-preserving DAG transformations.

    Pre-processing passes used before scheduling:

    - {!transitive_reduction} removes edges implied by longer paths. Note
      that a redundant edge still matters to fault tolerance: if [u -> v] is
      implied by [u -> w -> v] and [w] is checkpointed, recovering [w] does
      not bring back [u]'s output, which [v] reads directly. Reduction is
      therefore a {e modeling choice} — appropriate when the direct edge was
      bookkeeping rather than a data flow. It never increases the expected
      makespan of a schedule (replay sets only shrink), and leaves it exactly
      unchanged for checkpoint-free schedules;
    - {!fuse_chains} merges runs of single-successor/single-predecessor
      tasks into one task (weights add; the checkpoint/recovery costs of the
      last task are kept), reflecting the paper's remark that a task whose
      recovery is dearer than its re-execution "could be fused with some of
      its predecessors".

    Both passes return the mapping from new task ids to the original ids
    they cover. *)

val transitive_reduction : Dag.t -> Dag.t
(** Smallest sub-DAG with the same reachability relation (unique for DAGs).
    Task ids and attributes are unchanged. *)

val redundant_edges : Dag.t -> (int * int) list
(** The edges {!transitive_reduction} would delete. *)

type fusion = {
  dag : Dag.t;  (** the fused DAG *)
  members : int list array;
      (** [members.(new_id)] lists the original ids merged into the new
          task, in execution order *)
}

val fuse_chains : ?should_fuse:(Task.t -> bool) -> Dag.t -> fusion
(** [fuse_chains g] contracts every maximal linear run [a -> b -> ...] in
    which each interior link has out-degree 1 into [a] and in-degree 1 out
    of [b]. A task is absorbed into its predecessor only when [should_fuse]
    accepts it (default: always). The fused task's weight is the sum of the
    members' weights; its checkpoint and recovery costs are those of the
    {e last} member (its output is the fused output); its label joins the
    member labels with ["+"]. *)

val fuse_unrecoverable : Dag.t -> fusion
(** {!fuse_chains} restricted to tasks whose recovery cost exceeds their own
    weight — the fusions the paper says "make little sense" to keep
    separate. *)
