let to_dot ?(name = "workflow") ?(checkpointed = fun _ -> false)
    ?highlight_order g =
  let buf = Buffer.create 1024 in
  let position =
    match highlight_order with
    | None -> fun _ -> None
    | Some order ->
        let pos = Array.make (Dag.n_tasks g) (-1) in
        Array.iteri (fun p v -> pos.(v) <- p) order;
        fun v -> if pos.(v) >= 0 then Some pos.(v) else None
  in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=ellipse];\n";
  for v = 0 to Dag.n_tasks g - 1 do
    let t = Dag.task g v in
    let label =
      let base = Printf.sprintf "%s\\nw=%g" t.Task.label t.Task.weight in
      match position v with
      | None -> base
      | Some p -> Printf.sprintf "%s\\n#%d" base p
    in
    let style =
      if checkpointed v then ", style=filled, fillcolor=gray80" else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"%s];\n" v label style)
  done;
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    (Dag.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
