lib/dag/linearize.ml: Array Dag Float Fun Int List Random Set String
