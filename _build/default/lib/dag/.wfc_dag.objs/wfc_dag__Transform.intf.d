lib/dag/transform.mli: Dag Task
