lib/dag/linearize.mli: Dag
