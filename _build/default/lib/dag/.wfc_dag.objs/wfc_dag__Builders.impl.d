lib/dag/builders.ml: Array Dag Hashtbl List
