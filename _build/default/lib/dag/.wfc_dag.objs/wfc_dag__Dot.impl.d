lib/dag/dot.ml: Array Buffer Dag Fun List Printf Task
