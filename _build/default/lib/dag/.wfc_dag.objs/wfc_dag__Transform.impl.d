lib/dag/transform.ml: Array Dag Hashtbl List String Task
