lib/dag/dag.ml: Array Float Format Fun Hashtbl Int List Printf Set Task
