lib/dag/builders.mli: Dag
