lib/dag/task.ml: Float Format Int String
