let redundant_edges g =
  let n = Dag.n_tasks g in
  (* strict descendants of every vertex, as bitsets *)
  let desc = Array.init n (Dag.descendants g) in
  let redundant = ref [] in
  for u = 0 to n - 1 do
    Array.iter
      (fun v ->
        let implied =
          Array.exists
            (fun w -> w <> v && desc.(w).(v))
            (Dag.succs_array g u)
        in
        if implied then redundant := (u, v) :: !redundant)
      (Dag.succs_array g u)
  done;
  List.rev !redundant

let transitive_reduction g =
  let drop = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace drop e ()) (redundant_edges g);
  let edges =
    List.filter (fun e -> not (Hashtbl.mem drop e)) (Dag.edges g)
  in
  Dag.create ~tasks:(Dag.tasks g) ~edges

type fusion = { dag : Dag.t; members : int list array }

let fuse_chains ?(should_fuse = fun _ -> true) g =
  let n = Dag.n_tasks g in
  (* [absorbed.(b)] holds when b is merged into its unique predecessor *)
  let absorbed =
    Array.init n (fun b ->
        Dag.in_degree g b = 1
        &&
        let a = (Dag.preds_array g b).(0) in
        Dag.out_degree g a = 1 && should_fuse (Dag.task g b))
  in
  (* chains in topological order: heads first, members appended in order *)
  let order = Dag.topological_order g in
  let new_id_of = Array.make n (-1) in
  let rev_groups = ref [] and count = ref 0 in
  Array.iter
    (fun v ->
      if not absorbed.(v) then begin
        new_id_of.(v) <- !count;
        incr count;
        rev_groups := ref [ v ] :: !rev_groups
      end)
    order;
  let groups = Array.of_list (List.rev !rev_groups) in
  Array.iter
    (fun v ->
      if absorbed.(v) then begin
        let a = (Dag.preds_array g v).(0) in
        (* topological order guarantees a was processed before v *)
        new_id_of.(v) <- new_id_of.(a);
        let cell = groups.(new_id_of.(v)) in
        cell := v :: !cell
      end)
    order;
  let members =
    Array.map (fun cell -> List.rev !cell) groups
  in
  let tasks =
    Array.mapi
      (fun id member_list ->
        let ts = List.map (Dag.task g) member_list in
        let weight =
          List.fold_left (fun acc t -> acc +. t.Task.weight) 0. ts
        in
        let last = List.nth ts (List.length ts - 1) in
        let label = String.concat "+" (List.map (fun t -> t.Task.label) ts) in
        Task.make ~id ~label ~weight
          ~checkpoint_cost:last.Task.checkpoint_cost
          ~recovery_cost:last.Task.recovery_cost ())
      members
  in
  let edge_set = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      if not absorbed.(v) then
        Hashtbl.replace edge_set (new_id_of.(u), new_id_of.(v)) ())
    (Dag.edges g);
  let edges = Hashtbl.fold (fun e () acc -> e :: acc) edge_set [] in
  { dag = Dag.create ~tasks ~edges; members }

let fuse_unrecoverable g =
  fuse_chains
    ~should_fuse:(fun t -> t.Task.recovery_cost > t.Task.weight)
    g
