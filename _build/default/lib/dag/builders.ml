type cost_fn = int -> float -> float

let zero_cost _ _ = 0.

let build ?(checkpoint_cost = zero_cost) ?(recovery_cost = zero_cost) weights
    edges =
  Dag.of_weights ~checkpoint_cost ~recovery_cost ~weights ~edges ()

let chain ?checkpoint_cost ?recovery_cost ~weights () =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Builders.chain: empty chain";
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  build ?checkpoint_cost ?recovery_cost weights edges

let fork ?checkpoint_cost ?recovery_cost ~source_weight ~sink_weights () =
  let n = Array.length sink_weights in
  if n = 0 then invalid_arg "Builders.fork: no sink tasks";
  let weights = Array.append [| source_weight |] sink_weights in
  let edges = List.init n (fun i -> (0, i + 1)) in
  build ?checkpoint_cost ?recovery_cost weights edges

let join ?checkpoint_cost ?recovery_cost ~source_weights ~sink_weight () =
  let n = Array.length source_weights in
  if n = 0 then invalid_arg "Builders.join: no source tasks";
  let weights = Array.append source_weights [| sink_weight |] in
  let edges = List.init n (fun i -> (i, n)) in
  build ?checkpoint_cost ?recovery_cost weights edges

let fork_join ?checkpoint_cost ?recovery_cost ~source_weight ~middle_weights
    ~sink_weight () =
  let n = Array.length middle_weights in
  if n = 0 then invalid_arg "Builders.fork_join: no middle tasks";
  let weights =
    Array.concat [ [| source_weight |]; middle_weights; [| sink_weight |] ]
  in
  let edges =
    List.init n (fun i -> (0, i + 1))
    @ List.init n (fun i -> (i + 1, n + 1))
  in
  build ?checkpoint_cost ?recovery_cost weights edges

let diamond ?checkpoint_cost ?recovery_cost ~width () =
  if width <= 0 then invalid_arg "Builders.diamond: width must be positive";
  fork_join ?checkpoint_cost ?recovery_cost ~source_weight:1.
    ~middle_weights:(Array.make width 1.) ~sink_weight:1. ()

let layered ~rand ~n_layers ~layer_width ~weight ?checkpoint_cost
    ?recovery_cost ?(edge_density = 3) () =
  if n_layers <= 0 then
    invalid_arg "Builders.layered: n_layers must be positive";
  if edge_density <= 0 then
    invalid_arg "Builders.layered: edge_density must be positive";
  (* First vertex ids of each layer. *)
  let widths =
    Array.init n_layers (fun l ->
        let w = layer_width l in
        if w < 1 then invalid_arg "Builders.layered: empty layer";
        w)
  in
  let offsets = Array.make n_layers 0 in
  for l = 1 to n_layers - 1 do
    offsets.(l) <- offsets.(l - 1) + widths.(l - 1)
  done;
  let n = offsets.(n_layers - 1) + widths.(n_layers - 1) in
  let weights = Array.init n weight in
  let edges = ref [] in
  for l = 0 to n_layers - 2 do
    for j = 0 to widths.(l + 1) - 1 do
      let v = offsets.(l + 1) + j in
      let k = 1 + rand edge_density in
      let chosen = Hashtbl.create k in
      for _ = 1 to k do
        let u = offsets.(l) + rand widths.(l) in
        if not (Hashtbl.mem chosen u) then begin
          Hashtbl.add chosen u ();
          edges := (u, v) :: !edges
        end
      done
    done
  done;
  build ?checkpoint_cost ?recovery_cost weights !edges
