(** Structured DAG constructors used by the theory (chains, forks, joins) and
    by the test suites (layered random DAGs).

    All constructors accept per-task weights and optional cost callbacks of
    the form [fun id weight -> cost], defaulting to zero costs. *)

type cost_fn = int -> float -> float

val chain :
  ?checkpoint_cost:cost_fn ->
  ?recovery_cost:cost_fn ->
  weights:float array ->
  unit ->
  Dag.t
(** Linear chain [T0 -> T1 -> ... -> T(n-1)]. Needs at least one task. *)

val fork :
  ?checkpoint_cost:cost_fn ->
  ?recovery_cost:cost_fn ->
  source_weight:float ->
  sink_weights:float array ->
  unit ->
  Dag.t
(** Fork DAG: task 0 is the source; tasks [1..n] are its independent
    successors (Section 4.1.1 of the paper). *)

val join :
  ?checkpoint_cost:cost_fn ->
  ?recovery_cost:cost_fn ->
  source_weights:float array ->
  sink_weight:float ->
  unit ->
  Dag.t
(** Join DAG: tasks [0..n-1] are independent sources; task [n] is the single
    sink consuming all of them (Section 4.1.2 of the paper). *)

val fork_join :
  ?checkpoint_cost:cost_fn ->
  ?recovery_cost:cost_fn ->
  source_weight:float ->
  middle_weights:float array ->
  sink_weight:float ->
  unit ->
  Dag.t
(** Source, a layer of independent tasks, and a sink. *)

val diamond :
  ?checkpoint_cost:cost_fn -> ?recovery_cost:cost_fn -> width:int -> unit ->
  Dag.t
(** Unit-weight fork-join of the given middle-layer width (testing helper). *)

val layered :
  rand:(int -> int) ->
  n_layers:int ->
  layer_width:(int -> int) ->
  weight:(int -> float) ->
  ?checkpoint_cost:cost_fn ->
  ?recovery_cost:cost_fn ->
  ?edge_density:int ->
  unit ->
  Dag.t
(** [layered ~rand ~n_layers ~layer_width ~weight ()] builds a random layered
    DAG: layer [l] has [layer_width l >= 1] vertices and every vertex of
    layer [l+1] receives between 1 and [edge_density] (default 3) edges from
    uniformly drawn vertices of layer [l]. [rand b] must return a uniform
    integer in [\[0, b)]; [weight id] gives each task weight. *)
