(** Graphviz export of workflow DAGs, for inspection and documentation. *)

val to_dot :
  ?name:string ->
  ?checkpointed:(int -> bool) ->
  ?highlight_order:int array ->
  Dag.t ->
  string
(** [to_dot g] renders [g] in DOT syntax. Checkpointed tasks (per the
    [checkpointed] predicate) are drawn shaded, matching Figure 1 of the
    paper. When [highlight_order] is given, each node label carries its
    position in that linearization. *)

val write_file : string -> string -> unit
(** [write_file path contents] writes [contents] to [path]. *)
