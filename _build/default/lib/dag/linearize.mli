(** Linearization strategies (Section 5 of the paper, plus one extension).

    A linearization is a total execution order of the DAG respecting
    precedence. DF and BF prioritize ready tasks by decreasing outweight —
    the sum of the weights of their direct successors — so that tasks with
    heavy subtrees run first; RF picks ready tasks uniformly at random.
    DF-BL is an extension: depth-first with the classical bottom-level
    priority (heaviest remaining downward path) instead of the outweight. *)

type strategy =
  | Depth_first  (** follow the most recently completed task's successors *)
  | Breadth_first  (** exhaust a level before starting the next one *)
  | Random_first  (** uniform choice among ready tasks *)
  | Depth_first_blevel
      (** extension: depth-first prioritized by bottom level *)

val all : strategy list
(** The paper's [DF; BF; RF] (what the figure harness sweeps). *)

val extended : strategy list
(** [all] plus [Depth_first_blevel]. *)

val strategy_name : strategy -> string
(** "DF", "BF", "RF" or "DF-BL". *)

val strategy_of_string : string -> strategy option
(** Inverse of {!strategy_name} (case-insensitive). *)

val run : ?rand:(int -> int) -> strategy -> Dag.t -> int array
(** [run strategy g] computes a linearization of [g]; the result always
    satisfies {!Dag.is_linearization}. [rand b] must return a uniform integer
    in [\[0, b)] and is only consulted by [Random_first] (defaults to a fixed
    deterministic generator).

    @raise Invalid_argument if [Random_first] is used while [rand]
    misbehaves (returns out-of-range values). *)

val priority : Dag.t -> float array
(** The outweight of every task (exposed for tests and for the CkptD
    checkpointing strategy). *)

val bottom_level : Dag.t -> float array
(** [bottom_level g] maps each task to the weight of the heaviest path from
    it to an exit task, inclusive of both endpoints (the DF-BL priority). *)
