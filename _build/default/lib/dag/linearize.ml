type strategy =
  | Depth_first
  | Breadth_first
  | Random_first
  | Depth_first_blevel

let all = [ Depth_first; Breadth_first; Random_first ]
let extended = all @ [ Depth_first_blevel ]

let strategy_name = function
  | Depth_first -> "DF"
  | Breadth_first -> "BF"
  | Random_first -> "RF"
  | Depth_first_blevel -> "DF-BL"

let strategy_of_string s =
  match String.uppercase_ascii s with
  | "DF" -> Some Depth_first
  | "BF" -> Some Breadth_first
  | "RF" -> Some Random_first
  | "DF-BL" | "DFBL" -> Some Depth_first_blevel
  | _ -> None

let priority g = Array.init (Dag.n_tasks g) (Dag.outweight g)

let bottom_level g =
  let order = Dag.topological_order g in
  let bl = Array.make (Dag.n_tasks g) 0. in
  (* reverse topological order: successors are final when a task is visited *)
  for i = Dag.n_tasks g - 1 downto 0 do
    let v = order.(i) in
    let best =
      Array.fold_left
        (fun acc s -> Float.max acc bl.(s))
        0. (Dag.succs_array g v)
    in
    bl.(v) <- best +. Dag.weight g v
  done;
  bl

(* Ties on priority are broken by smaller id so every strategy is
   deterministic for a given [rand]. *)
let higher_priority prio a b =
  prio.(a) > prio.(b) || (Float.equal prio.(a) prio.(b) && a < b)

let run ?rand strategy g =
  let n = Dag.n_tasks g in
  let prio =
    match strategy with
    | Depth_first_blevel -> bottom_level g
    | Depth_first | Breadth_first | Random_first -> priority g
  in
  let indeg = Array.init n (Dag.in_degree g) in
  let order = Array.make n (-1) in
  let count = ref 0 in
  let release v register =
    Array.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then register s)
      (Dag.succs_array g v)
  in
  (match strategy with
  | Depth_first | Depth_first_blevel ->
      (* Stack of ready tasks. Newly ready successors of the task just
         executed are pushed sorted so that the highest priority is on top:
         the walk goes deep behind recently completed work. *)
      let stack = ref [] in
      let scheduled = Array.make n false in
      let push_ready vs =
        let sorted =
          List.sort
            (fun a b -> if higher_priority prio a b then 1 else -1)
            vs
        in
        List.iter (fun v -> stack := v :: !stack) sorted
      in
      push_ready (List.filter (fun i -> indeg.(i) = 0) (List.init n Fun.id));
      while !count < n do
        match !stack with
        | [] -> invalid_arg "Linearize.run: ready stack exhausted early"
        | v :: rest ->
            stack := rest;
            if not scheduled.(v) then begin
              scheduled.(v) <- true;
              order.(!count) <- v;
              incr count;
              let fresh = ref [] in
              release v (fun s -> fresh := s :: !fresh);
              push_ready !fresh
            end
      done
  | Breadth_first ->
      (* Exhaust shallow levels first; inside a level pick by priority. *)
      let lvl = Dag.levels g in
      let module Key = struct
        type t = int * int (* level, id *)

        let compare (l1, v1) (l2, v2) =
          match Int.compare l1 l2 with
          | 0 ->
              if v1 = v2 then 0
              else if higher_priority prio v1 v2 then -1
              else 1
          | c -> c
      end in
      let module Ready = Set.Make (Key) in
      let ready = ref Ready.empty in
      let register v = ready := Ready.add (lvl.(v), v) !ready in
      for i = 0 to n - 1 do
        if indeg.(i) = 0 then register i
      done;
      while !count < n do
        let ((_, v) as key) = Ready.min_elt !ready in
        ready := Ready.remove key !ready;
        order.(!count) <- v;
        incr count;
        release v register
      done
  | Random_first ->
      let rand =
        match rand with
        | Some r -> r
        | None ->
            let state = Random.State.make [| 0x5f1c; 0x2e |] in
            fun b -> Random.State.int state b
      in
      let ready = ref [] and n_ready = ref 0 in
      let register v =
        ready := v :: !ready;
        incr n_ready
      in
      for i = 0 to n - 1 do
        if indeg.(i) = 0 then register i
      done;
      while !count < n do
        let k = rand !n_ready in
        if k < 0 || k >= !n_ready then
          invalid_arg "Linearize.run: rand returned out-of-range value";
        let v = List.nth !ready k in
        ready := List.filteri (fun i _ -> i <> k) !ready;
        decr n_ready;
        order.(!count) <- v;
        incr count;
        release v register
      done);
  order
