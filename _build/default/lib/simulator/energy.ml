type power = { p_compute : float; p_io : float; p_idle : float }

let default_power = { p_compute = 100.; p_io = 30.; p_idle = 10. }

let of_breakdown power (b : Sim_breakdown.t) =
  (power.p_compute *. (b.Sim_breakdown.useful_compute +. b.Sim_breakdown.recompute))
  +. (power.p_io *. (b.Sim_breakdown.checkpoint +. b.Sim_breakdown.recovery))
  +. (power.p_idle *. (b.Sim_breakdown.lost +. b.Sim_breakdown.downtime))

type estimate = {
  energy : Wfc_platform.Stats.t;
  makespan : Wfc_platform.Stats.t;
}

let estimate ?(runs = 1000) ?(power = default_power) ~seed model g sched =
  if runs <= 0 then invalid_arg "Energy.estimate: runs must be positive";
  let rng = Wfc_platform.Rng.create seed in
  let energy = Wfc_platform.Stats.create () in
  let makespan = Wfc_platform.Stats.create () in
  for _ = 1 to runs do
    let b = Sim_breakdown.run ~rng model g sched in
    Wfc_platform.Stats.add energy (of_breakdown power b);
    Wfc_platform.Stats.add makespan b.Sim_breakdown.makespan
  done;
  { energy; makespan }

let fail_free_energy power g sched =
  let ckpt_total = ref 0. in
  for v = 0 to Wfc_dag.Dag.n_tasks g - 1 do
    if Wfc_core.Schedule.is_checkpointed sched v then
      ckpt_total :=
        !ckpt_total +. (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost
  done;
  (power.p_compute *. Wfc_dag.Dag.total_weight g)
  +. (power.p_io *. !ckpt_total)
