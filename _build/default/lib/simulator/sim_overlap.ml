type params = {
  interference : float;
  failures : Wfc_platform.Distribution.t;
  downtime : float;
}

type channel_entry = { task : int; mutable remaining : float }

let run ~rng params g sched =
  if not (params.interference >= 0. && params.interference <= 1.) then
    invalid_arg "Sim_overlap.run: interference must lie in [0, 1]";
  if params.downtime < 0. then invalid_arg "Sim_overlap.run: negative downtime";
  let n = Wfc_core.Schedule.n_tasks sched in
  let weight v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.weight in
  let ckpt_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost in
  let rec_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.recovery_cost in
  let in_memory = Array.make n false in
  let on_disk = Array.make n false in
  let queue : channel_entry Queue.t = Queue.create () in
  let time = ref 0. and failures = ref 0 in
  let next_fail = ref (Wfc_platform.Distribution.sample params.failures rng) in
  let restored = ref [] in
  let replay_cost v =
    restored := [];
    let seen = Array.make n false in
    let cost = ref 0. in
    let rec visit v =
      Array.iter
        (fun u ->
          if (not in_memory.(u)) && not seen.(u) then begin
            seen.(u) <- true;
            restored := u :: !restored;
            if on_disk.(u) then cost := !cost +. rec_cost u
            else begin
              cost := !cost +. weight u;
              visit u
            end
          end)
        (Wfc_dag.Dag.preds_array g v)
    in
    visit v;
    !cost
  in
  let handle_failure () =
    time := !time +. params.downtime;
    incr failures;
    Array.fill in_memory 0 n false;
    Queue.clear queue;
    next_fail := Wfc_platform.Distribution.sample params.failures rng
  in
  (* Advance wall-clock until [work] compute-seconds are done; the channel
     drains concurrently and slows computation down while busy. Returns
     [false] if a failure interrupted the segment. *)
  let rec advance_compute work =
    if work <= 1e-12 then true
    else if Queue.is_empty queue then begin
      (* full speed, nothing in flight *)
      if !next_fail >= work then begin
        time := !time +. work;
        next_fail := !next_fail -. work;
        true
      end
      else begin
        time := !time +. !next_fail;
        handle_failure ();
        false
      end
    end
    else begin
      let head = Queue.peek queue in
      let rate = 1. -. params.interference in
      let t_head = head.remaining in
      let t_work = if rate > 0. then work /. rate else infinity in
      let dt = Float.min (Float.min t_head t_work) !next_fail in
      time := !time +. dt;
      next_fail := !next_fail -. dt;
      head.remaining <- head.remaining -. dt;
      let work = work -. (dt *. rate) in
      if head.remaining <= 1e-12 then begin
        ignore (Queue.pop queue);
        (* the write completed while its source was still in memory (any
           failure would have cleared the queue first) *)
        on_disk.(head.task) <- true
      end;
      if !next_fail <= 1e-12 then begin
        handle_failure ();
        false
      end
      else advance_compute work
    end
  in
  for p = 0 to n - 1 do
    let v = Wfc_core.Schedule.task_at sched p in
    let finished = ref false in
    while not !finished do
      let replay = replay_cost v in
      if advance_compute (replay +. weight v) then begin
        List.iter (fun u -> in_memory.(u) <- true) !restored;
        in_memory.(v) <- true;
        if Wfc_core.Schedule.is_checkpointed sched v then
          Queue.push { task = v; remaining = ckpt_cost v } queue;
        finished := true
      end
    done
  done;
  let total_work = Wfc_dag.Dag.total_weight g in
  {
    Sim.makespan = !time;
    failures = !failures;
    wasted = !time -. total_work;
  }
