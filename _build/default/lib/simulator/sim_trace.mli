(** Event-traced simulation: the blocking engine of {!Sim}, additionally
    recording a timeline of what happened — useful to inspect individual
    runs, to debug recovery semantics, and to illustrate the execution model
    in documentation. *)

type event =
  | Attempt of {
      position : int;
      task : int;
      start : float;
      replay : float;  (** replay work (recoveries + recomputation) *)
      work : float;  (** total segment: replay + weight + checkpoint *)
    }  (** a segment attempt begins *)
  | Completion of {
      position : int;
      task : int;
      time : float;
      checkpointed : bool;
    }  (** the attempt succeeded; the task's output is in memory *)
  | Failure of {
      position : int;
      task : int;
      time : float;  (** instant of the failure (before downtime) *)
      elapsed : float;  (** time lost in the aborted attempt *)
    }  (** a failure struck during the attempt; memory is wiped *)

val run :
  rng:Wfc_platform.Rng.t ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  Sim.run * event list
(** One simulated execution with its full event log (chronological). The
    [Sim.run] summary is identical to what {!Sim.run} would return for the
    same random draws. *)

val pp_event : Format.formatter -> event -> unit
(** e.g. ["\[  12.3s\] FAIL    during T4 (pos 3), 5.1s lost"]. *)

val render_timeline : ?width:int -> event list -> string
(** ASCII Gantt strip of a run: one lane per schedule position, time on the
    horizontal axis ([width] columns, default 72). Successful attempt spans
    print as [=], aborted spans as [.], failures as [x]:

    {v
    pos  0 T3 |===x..====                                    |
    pos  1 T1 |          =====                               |
    v} *)
