(** Discrete-event fault injection: executes a schedule once against randomly
    drawn exponential failures, reproducing the paper's recovery semantics
    exactly.

    State: the set of task outputs currently in memory (all lost on every
    failure) and the set of checkpoints on stable storage (never lost, only
    appended when a checkpointed task's segment completes). Each position of
    the linearization is executed as a segment — replay of lost, still-needed
    ancestors (recoveries for checkpointed ones, recomputation for the rest),
    the task's own work and its optional checkpoint. A failure inside the
    segment wipes memory, costs the elapsed time plus the downtime, and the
    segment restarts from the surviving checkpoints.

    Cross-validating the mean of many runs against {!Wfc_core.Evaluator} is
    the strongest correctness argument for both implementations. *)

type run = {
  makespan : float;  (** total simulated execution time *)
  failures : int;  (** number of failures injected *)
  wasted : float;  (** time spent on lost attempts, downtime and replays *)
}

val run :
  rng:Wfc_platform.Rng.t ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  run
(** One simulated execution. With [lambda = 0] the result is
    deterministic: the failure-free time plus all checkpoint costs. *)

val run_renewal :
  rng:Wfc_platform.Rng.t ->
  failures:Wfc_platform.Distribution.t ->
  downtime:float ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  run
(** Same execution semantics, but failures arrive as a {e renewal process}:
    one inter-arrival draw from [failures] at start and after every repair,
    instead of a fresh memoryless draw per attempt. For
    [Distribution.Exponential] this is statistically identical to {!run};
    for Weibull and other age-dependent laws it is the meaningful model.

    @raise Invalid_argument if [downtime < 0]. *)
