type event =
  | Attempt of {
      position : int;
      task : int;
      start : float;
      replay : float;
      work : float;
    }
  | Completion of { position : int; task : int; time : float; checkpointed : bool }
  | Failure of { position : int; task : int; time : float; elapsed : float }

(* Mirrors Sim.run with the same draw sequence, accumulating events. *)
let run ~rng model g sched =
  let n = Wfc_core.Schedule.n_tasks sched in
  let lambda = model.Wfc_platform.Failure_model.lambda in
  let downtime = model.Wfc_platform.Failure_model.downtime in
  let weight v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.weight in
  let ckpt_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost in
  let rec_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.recovery_cost in
  let in_memory = Array.make n false in
  let on_disk = Array.make n false in
  let time = ref 0. and failures = ref 0 and wasted = ref 0. in
  let events = ref [] in
  let emit e = events := e :: !events in
  let restored = ref [] in
  let replay_cost v =
    restored := [];
    let seen = Array.make n false in
    let cost = ref 0. in
    let rec visit v =
      Array.iter
        (fun u ->
          if (not in_memory.(u)) && not seen.(u) then begin
            seen.(u) <- true;
            restored := u :: !restored;
            if on_disk.(u) then cost := !cost +. rec_cost u
            else begin
              cost := !cost +. weight u;
              visit u
            end
          end)
        (Wfc_dag.Dag.preds_array g v)
    in
    visit v;
    !cost
  in
  for p = 0 to n - 1 do
    let v = Wfc_core.Schedule.task_at sched p in
    let checkpointing = Wfc_core.Schedule.is_checkpointed sched v in
    let finished = ref false in
    while not !finished do
      let replay = replay_cost v in
      let segment =
        replay +. weight v +. (if checkpointing then ckpt_cost v else 0.)
      in
      emit (Attempt { position = p; task = v; start = !time; replay; work = segment });
      let fail_after =
        if lambda = 0. then infinity
        else Wfc_platform.Rng.exponential rng ~rate:lambda
      in
      if fail_after >= segment then begin
        time := !time +. segment;
        wasted := !wasted +. replay;
        List.iter (fun u -> in_memory.(u) <- true) !restored;
        in_memory.(v) <- true;
        if checkpointing then on_disk.(v) <- true;
        emit (Completion { position = p; task = v; time = !time;
                           checkpointed = checkpointing });
        finished := true
      end
      else begin
        time := !time +. fail_after;
        emit (Failure { position = p; task = v; time = !time; elapsed = fail_after });
        time := !time +. downtime;
        wasted := !wasted +. fail_after +. downtime;
        incr failures;
        Array.fill in_memory 0 n false
      end
    done
  done;
  ( { Sim.makespan = !time; failures = !failures; wasted = !wasted },
    List.rev !events )

let render_timeline ?(width = 72) events =
  if width < 8 then invalid_arg "Sim_trace.render_timeline: width too small";
  (* reconstruct attempt spans: each Attempt is closed by the next
     Completion or Failure (events are chronological and sequential) *)
  let spans = ref [] and pending = ref None and horizon = ref 0. in
  List.iter
    (fun e ->
      match (e, !pending) with
      | Attempt { position; task; start; _ }, _ ->
          pending := Some (position, task, start)
      | Completion { time; _ }, Some (p, t, start) ->
          spans := (p, t, start, time, `Ok) :: !spans;
          pending := None;
          horizon := Float.max !horizon time
      | Failure { time; _ }, Some (p, t, start) ->
          spans := (p, t, start, time, `Fail) :: !spans;
          pending := None;
          horizon := Float.max !horizon time
      | (Completion _ | Failure _), None -> ())
    events;
  let spans = List.rev !spans in
  if spans = [] then "(empty trace)\n"
  else begin
    let n_pos =
      1 + List.fold_left (fun acc (p, _, _, _, _) -> Int.max acc p) 0 spans
    in
    let task_of = Array.make n_pos 0 in
    let lanes = Array.init n_pos (fun _ -> Bytes.make width ' ') in
    let col time =
      Int.min (width - 1)
        (int_of_float (float_of_int width *. time /. Float.max 1e-9 !horizon))
    in
    List.iter
      (fun (p, t, start, stop, outcome) ->
        task_of.(p) <- t;
        let c0 = col start and c1 = Int.max (col start) (col stop) in
        let fill = match outcome with `Ok -> '=' | `Fail -> '.' in
        for c = c0 to c1 do
          Bytes.set lanes.(p) c fill
        done;
        if outcome = `Fail then Bytes.set lanes.(p) c1 'x')
      spans;
    let buf = Buffer.create (n_pos * (width + 16)) in
    Array.iteri
      (fun p lane ->
        Buffer.add_string buf
          (Printf.sprintf "pos %3d T%-4d |%s|\n" p task_of.(p)
             (Bytes.to_string lane)))
      lanes;
    Buffer.add_string buf
      (Printf.sprintf "%d spans over %.1f s\n" (List.length spans) !horizon);
    Buffer.contents buf
  end

let pp_event ppf = function
  | Attempt { position; task; start; replay; work } ->
      Format.fprintf ppf "[%8.1fs] ATTEMPT T%d (pos %d): %.1fs segment (%.1fs replay)"
        start task position work replay
  | Completion { position; task; time; checkpointed } ->
      Format.fprintf ppf "[%8.1fs] DONE    T%d (pos %d)%s" time task position
        (if checkpointed then " + checkpoint" else "")
  | Failure { position; task; time; elapsed } ->
      Format.fprintf ppf "[%8.1fs] FAIL    during T%d (pos %d), %.1fs lost" time
        task position elapsed
