type t = {
  makespan : float;
  useful_compute : float;
  recompute : float;
  checkpoint : float;
  recovery : float;
  lost : float;
  downtime : float;
  failures : int;
}

let run ~rng model g sched =
  let n = Wfc_core.Schedule.n_tasks sched in
  let lambda = model.Wfc_platform.Failure_model.lambda in
  let d = model.Wfc_platform.Failure_model.downtime in
  let weight v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.weight in
  let ckpt_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost in
  let rec_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.recovery_cost in
  let in_memory = Array.make n false in
  let on_disk = Array.make n false in
  let acc =
    ref
      {
        makespan = 0.; useful_compute = 0.; recompute = 0.; checkpoint = 0.;
        recovery = 0.; lost = 0.; downtime = 0.; failures = 0;
      }
  in
  let restored = ref [] in
  (* split replay cost into recomputation and recovery components *)
  let replay_cost v =
    restored := [];
    let seen = Array.make n false in
    let rec_total = ref 0. and comp_total = ref 0. in
    let rec visit v =
      Array.iter
        (fun u ->
          if (not in_memory.(u)) && not seen.(u) then begin
            seen.(u) <- true;
            restored := u :: !restored;
            if on_disk.(u) then rec_total := !rec_total +. rec_cost u
            else begin
              comp_total := !comp_total +. weight u;
              visit u
            end
          end)
        (Wfc_dag.Dag.preds_array g v)
    in
    visit v;
    (!comp_total, !rec_total)
  in
  for p = 0 to n - 1 do
    let v = Wfc_core.Schedule.task_at sched p in
    let checkpointing = Wfc_core.Schedule.is_checkpointed sched v in
    let finished = ref false in
    while not !finished do
      let recompute, recovery = replay_cost v in
      let ck = if checkpointing then ckpt_cost v else 0. in
      let segment = recompute +. recovery +. weight v +. ck in
      let fail_after =
        if lambda = 0. then infinity
        else Wfc_platform.Rng.exponential rng ~rate:lambda
      in
      if fail_after >= segment then begin
        acc :=
          {
            !acc with
            makespan = !acc.makespan +. segment;
            useful_compute = !acc.useful_compute +. weight v;
            recompute = !acc.recompute +. recompute;
            recovery = !acc.recovery +. recovery;
            checkpoint = !acc.checkpoint +. ck;
          };
        List.iter (fun u -> in_memory.(u) <- true) !restored;
        in_memory.(v) <- true;
        if checkpointing then on_disk.(v) <- true;
        finished := true
      end
      else begin
        acc :=
          {
            !acc with
            makespan = !acc.makespan +. fail_after +. d;
            lost = !acc.lost +. fail_after;
            downtime = !acc.downtime +. d;
            failures = !acc.failures + 1;
          };
        Array.fill in_memory 0 n false
      end
    done
  done;
  !acc
