(** Activity-level accounting of a simulated execution.

    Splits a run's wall-clock time into what the platform was doing:

    - [useful_compute]: first-time execution of task weights;
    - [recompute]: re-execution of lost, non-checkpointed tasks;
    - [checkpoint]: writing checkpoints (complete or aborted);
    - [recovery]: reading checkpoints during replay (complete or aborted);
    - [lost]: partial attempt time destroyed by failures, attributed to the
      activities above when they completed, and counted here only for the
      instants that belong to no completed activity — to keep the
      decomposition simple we count the whole aborted attempt here;
    - [downtime]: platform repair time.

    The invariant [makespan = useful_compute + recompute + checkpoint +
    recovery + lost + downtime] holds exactly; it feeds the {!Energy}
    model. *)

type t = {
  makespan : float;
  useful_compute : float;
  recompute : float;
  checkpoint : float;
  recovery : float;
  lost : float;
  downtime : float;
  failures : int;
}

val run :
  rng:Wfc_platform.Rng.t ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  t
(** Same execution semantics and draw sequence as {!Sim.run}. *)
