lib/simulator/energy.mli: Sim_breakdown Wfc_core Wfc_dag Wfc_platform
