lib/simulator/sim.mli: Wfc_core Wfc_dag Wfc_platform
