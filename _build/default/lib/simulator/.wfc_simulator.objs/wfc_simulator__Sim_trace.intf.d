lib/simulator/sim_trace.mli: Format Sim Wfc_core Wfc_dag Wfc_platform
