lib/simulator/monte_carlo.ml: Domain Float Int List Sim Sim_overlap Wfc_platform
