lib/simulator/sim_overlap.mli: Sim Wfc_core Wfc_dag Wfc_platform
