lib/simulator/sim_breakdown.mli: Wfc_core Wfc_dag Wfc_platform
