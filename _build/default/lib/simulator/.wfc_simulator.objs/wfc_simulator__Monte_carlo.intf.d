lib/simulator/monte_carlo.mli: Sim_overlap Wfc_core Wfc_dag Wfc_platform
