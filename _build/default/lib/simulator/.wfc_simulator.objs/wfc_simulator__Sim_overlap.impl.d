lib/simulator/sim_overlap.ml: Array Float List Queue Sim Wfc_core Wfc_dag Wfc_platform
