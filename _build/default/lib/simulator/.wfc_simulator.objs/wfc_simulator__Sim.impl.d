lib/simulator/sim.ml: Array List Wfc_core Wfc_dag Wfc_platform
