lib/simulator/sim_trace.ml: Array Buffer Bytes Float Format Int List Printf Sim Wfc_core Wfc_dag Wfc_platform
