lib/simulator/sim_breakdown.ml: Array List Wfc_core Wfc_dag Wfc_platform
