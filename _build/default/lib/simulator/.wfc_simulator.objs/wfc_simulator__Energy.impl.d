lib/simulator/energy.ml: Sim_breakdown Wfc_core Wfc_dag Wfc_platform
