(** Non-blocking checkpointing — the extension sketched in the paper's
    conclusion ("a processor can compute a task, perhaps at a reduced speed,
    while checkpointing a previously executed task").

    Model: completed checkpointable outputs are enqueued on a single
    background I/O channel (FIFO, one write in flight). While the channel is
    busy, computation proceeds at a fraction [1 - interference] of full
    speed. A failure wipes memory and aborts every queued or in-flight write
    (their source data is gone); completed checkpoints persist. Replay
    (recoveries and recomputation of lost ancestors) is compute-side work,
    executed inside the task's segment exactly as in the blocking model. The
    makespan ends with the last task's computation — trailing writes do not
    delay it.

    [interference = 0] gives free checkpointing (pure overlap);
    [interference = 1] fully serializes computation behind the channel.
    There is no analytic evaluator for this model — that is precisely the
    open problem the paper leaves — so the study is simulation-only. *)

type params = {
  interference : float;  (** compute slowdown while the channel is busy, in [0, 1] *)
  failures : Wfc_platform.Distribution.t;
  downtime : float;
}

val run :
  rng:Wfc_platform.Rng.t -> params -> Wfc_dag.Dag.t -> Wfc_core.Schedule.t ->
  Sim.run
(** One simulated execution; [wasted] reports [makespan - total task work]
    (everything attributable to failures, replays, interference and
    downtime).

    @raise Invalid_argument if [interference] is outside [0, 1] or
    [downtime < 0]. *)
