(** Energy accounting on top of {!Sim_breakdown} — an extension in the
    spirit of the authors' follow-up work on energy-aware checkpointing.

    The platform draws [p_compute] watts while executing task work (first
    runs and re-executions alike), [p_io] during checkpoint writes and
    recovery reads, and [p_idle] during failed-attempt tails and repair
    downtime. Expected energy then follows from the expected time spent in
    each activity. *)

type power = {
  p_compute : float;  (** W while computing *)
  p_io : float;  (** W while checkpointing or recovering *)
  p_idle : float;  (** W while lost/down *)
}

val default_power : power
(** 100 W compute, 30 W I/O, 10 W idle — an arbitrary but plausible blade
    profile; pass your own for real studies. *)

val of_breakdown : power -> Sim_breakdown.t -> float
(** Energy (joules) of one simulated run. *)

type estimate = {
  energy : Wfc_platform.Stats.t;  (** joules per run *)
  makespan : Wfc_platform.Stats.t;
}

val estimate :
  ?runs:int ->
  ?power:power ->
  seed:int ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  estimate
(** Monte Carlo expected energy and makespan (default 1000 runs,
    {!default_power}). Deterministic in [seed]. *)

val fail_free_energy : power -> Wfc_dag.Dag.t -> Wfc_core.Schedule.t -> float
(** Closed form at [lambda = 0]: compute the weights, write the checkpoints,
    waste nothing. *)
