(** Figure series: named sequences of (x, y) points, the unit in which every
    experiment of the paper reports its results. *)

type t = private { name : string; points : (float * float) list }

val make : name:string -> points:(float * float) list -> t

val name : t -> string
val points : t -> (float * float) list

val ys : t -> float list
val min_y : t -> float
val max_y : t -> float

val to_table :
  x_label:string -> t list -> Table.t
(** Tabulate several series sharing the same x values: one row per x, one
    column per series.

    @raise Invalid_argument if the series do not share x values. *)

val to_csv_rows : t list -> string list list
(** Long-format rows [series; x; y] for {!Csv.write_file}. *)
