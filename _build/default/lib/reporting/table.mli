(** Aligned text tables for experiment output. *)

type t

val create : columns:string list -> t
(** [create ~columns] starts a table with the given header.
    @raise Invalid_argument on an empty column list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label xs] adds [label] followed by [xs] printed with
    [%.4g]. *)

val render : t -> string
(** The whole table with aligned columns and a separator under the header. *)

val print : t -> unit
(** [render] to stdout. *)
