type t = { name : string; points : (float * float) list }

let make ~name ~points = { name; points }
let name t = t.name
let points t = t.points
let ys t = List.map snd t.points

let min_y t = List.fold_left Float.min infinity (ys t)
let max_y t = List.fold_left Float.max neg_infinity (ys t)

let float_cell x =
  if Float.is_integer x && Float.abs x < 1e9 then string_of_int (int_of_float x)
  else Printf.sprintf "%.4g" x

let to_table ~x_label series =
  let xs =
    match series with
    | [] -> invalid_arg "Series.to_table: no series"
    | s :: _ -> List.map fst s.points
  in
  List.iter
    (fun s ->
      if List.map fst s.points <> xs then
        invalid_arg "Series.to_table: mismatched x values")
    series;
  let table = Table.create ~columns:(x_label :: List.map (fun s -> s.name) series) in
  List.iteri
    (fun i x ->
      Table.add_row table
        (float_cell x
        :: List.map (fun s -> Printf.sprintf "%.4f" (snd (List.nth s.points i)))
             series))
    xs;
  table

let to_csv_rows series =
  List.concat_map
    (fun s ->
      List.map
        (fun (x, y) -> [ s.name; Printf.sprintf "%.17g" x; Printf.sprintf "%.17g" y ])
        s.points)
    series
