lib/reporting/table.mli:
