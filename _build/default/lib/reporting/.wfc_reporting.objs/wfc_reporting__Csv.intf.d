lib/reporting/csv.mli:
