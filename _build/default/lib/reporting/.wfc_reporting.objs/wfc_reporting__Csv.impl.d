lib/reporting/csv.ml: Filename Fun List String Sys
