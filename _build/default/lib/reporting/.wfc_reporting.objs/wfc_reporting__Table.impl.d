lib/reporting/table.ml: Buffer Float Int List Printf String
