lib/reporting/series.mli: Table
