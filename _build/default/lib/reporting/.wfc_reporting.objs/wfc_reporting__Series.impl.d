lib/reporting/series.ml: Float List Printf Table
