let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let line fields = String.concat "," (List.map escape fields)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write_file path ~header ~rows =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (line header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (line row);
          output_char oc '\n')
        rows)
