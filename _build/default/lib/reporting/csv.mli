(** Minimal CSV emission (RFC-4180 quoting) for experiment series. *)

val escape : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val line : string list -> string
(** One CSV record, without trailing newline. *)

val write_file : string -> header:string list -> rows:string list list -> unit
(** Write a whole CSV file; creates parent directories as needed. *)
