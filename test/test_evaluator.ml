open Wfc_core
module Dag = Wfc_dag.Dag
module Builders = Wfc_dag.Builders
module FM = Wfc_platform.Failure_model

let e model ~w ~c ~r = FM.expected_exec_time model ~work:w ~checkpoint:c ~recovery:r

let test_single_task () =
  let g = Dag.of_weights ~weights:[| 10. |] ~edges:[] () in
  let model = FM.make ~lambda:0.03 ~downtime:1. () in
  let s = Schedule.no_checkpoints g ~order:[| 0 |] in
  Wfc_test_util.check_close "E[t(w;0;0)]"
    (e model ~w:10. ~c:0. ~r:0.)
    (Evaluator.expected_makespan model g s);
  let s' = Schedule.all_checkpoints g ~order:[| 0 |] in
  Wfc_test_util.check_close "E[t(w;c;0)] with checkpoint"
    (e model ~w:10. ~c:0. ~r:0.)
    (Evaluator.expected_makespan model g s');
  (* with a nonzero checkpoint cost the checkpointed version is slower *)
  let g2 =
    Dag.of_weights ~checkpoint_cost:(fun _ _ -> 2.) ~weights:[| 10. |] ~edges:[] ()
  in
  let s2 = Schedule.all_checkpoints g2 ~order:[| 0 |] in
  Wfc_test_util.check_close "checkpoint included"
    (e model ~w:10. ~c:2. ~r:0.)
    (Evaluator.expected_makespan model g2 s2)

let test_fail_free_no_checkpoint () =
  let g = Builders.chain ~weights:[| 1.; 2.; 3. |] () in
  let s = Schedule.no_checkpoints g ~order:[| 0; 1; 2 |] in
  Wfc_test_util.check_close "lambda = 0 gives T_inf" 6.
    (Evaluator.expected_makespan FM.fail_free g s);
  Wfc_test_util.check_close "T_inf" 6. (Evaluator.fail_free_time g)

let test_fail_free_with_checkpoints () =
  let g =
    Builders.chain ~weights:[| 1.; 2.; 3. |] ~checkpoint_cost:(fun _ _ -> 0.5) ()
  in
  let s = Schedule.all_checkpoints g ~order:[| 0; 1; 2 |] in
  Wfc_test_util.check_close "W + all checkpoints" 7.5
    (Evaluator.expected_makespan FM.fail_free g s)

(* independent tasks with no checkpoints: X_i are independent segments whose
   retries restart only the task itself (nothing else is needed by anyone) *)
let test_independent_tasks () =
  let g = Dag.of_weights ~weights:[| 4.; 7.; 2. |] ~edges:[] () in
  let model = FM.make ~lambda:0.08 ~downtime:0.25 () in
  let s = Schedule.no_checkpoints g ~order:[| 2; 0; 1 |] in
  let expected =
    e model ~w:4. ~c:0. ~r:0. +. e model ~w:7. ~c:0. ~r:0.
    +. e model ~w:2. ~c:0. ~r:0.
  in
  Wfc_test_util.check_close "sum of independent segments" expected
    (Evaluator.expected_makespan model g s)

(* chain without checkpoints: a single all-or-nothing segment *)
let test_chain_no_checkpoint_is_one_segment () =
  let g = Builders.chain ~weights:[| 3.; 4.; 5. |] () in
  let model = FM.make ~lambda:0.06 ~downtime:0.5 () in
  let s = Schedule.no_checkpoints g ~order:[| 0; 1; 2 |] in
  Wfc_test_util.check_close "E[t(W;0;0)]"
    (e model ~w:12. ~c:0. ~r:0.)
    (Evaluator.expected_makespan model g s)

let test_chain_matches_segment_formula () =
  let g =
    Builders.chain ~weights:[| 3.; 5.; 2.; 4.; 6. |]
      ~checkpoint_cost:(fun _ w -> 0.1 *. w)
      ~recovery_cost:(fun _ w -> 0.15 *. w)
      ()
  in
  List.iter
    (fun model ->
      List.iter
        (fun flags ->
          let flags = Array.of_list flags in
          let s = Schedule.make g ~order:[| 0; 1; 2; 3; 4 |] ~checkpointed:flags in
          Wfc_test_util.check_close ~eps:1e-9 "evaluator = segment decomposition"
            (Chain_solver.segment_makespan model g ~checkpointed:flags)
            (Evaluator.expected_makespan model g s))
        [
          [ false; false; false; false; false ];
          [ true; true; true; true; true ];
          [ false; true; false; true; false ];
          [ true; false; false; false; true ];
        ])
    Wfc_test_util.models

let test_fork_matches_theorem1_forms () =
  let g =
    Builders.fork ~source_weight:6. ~sink_weights:[| 2.; 3.; 4. |]
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ~recovery_cost:(fun _ w -> 0.1 *. w)
      ()
  in
  let model = FM.make ~lambda:0.07 ~downtime:0.3 () in
  (* checkpointing the source *)
  let s_ck =
    Schedule.make g ~order:[| 0; 1; 2; 3 |]
      ~checkpointed:[| true; false; false; false |]
  in
  let expected_ck =
    e model ~w:6. ~c:1.2 ~r:0.
    +. e model ~w:2. ~c:0. ~r:0.6
    +. e model ~w:3. ~c:0. ~r:0.6
    +. e model ~w:4. ~c:0. ~r:0.6
  in
  Wfc_test_util.check_close "fork with checkpointed source" expected_ck
    (Evaluator.expected_makespan model g s_ck);
  (* not checkpointing: recovery = re-executing the source *)
  let s_no = Schedule.no_checkpoints g ~order:[| 0; 1; 2; 3 |] in
  let expected_no =
    e model ~w:6. ~c:0. ~r:0.
    +. e model ~w:2. ~c:0. ~r:6.
    +. e model ~w:3. ~c:0. ~r:6.
    +. e model ~w:4. ~c:0. ~r:6.
  in
  Wfc_test_util.check_close "fork without checkpoint" expected_no
    (Evaluator.expected_makespan model g s_no)

let test_fork_order_irrelevant () =
  let g =
    Builders.fork ~source_weight:6. ~sink_weights:[| 2.; 3.; 4. |]
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ~recovery_cost:(fun _ w -> 0.1 *. w)
      ()
  in
  let model = FM.make ~lambda:0.07 () in
  let m order =
    Evaluator.expected_makespan model g
      (Schedule.make g ~order
         ~checkpointed:[| true; false; false; false |])
  in
  Wfc_test_util.check_close "sink permutation invariant"
    (m [| 0; 1; 2; 3 |]) (m [| 0; 3; 1; 2 |])

let test_join_matches_lemma2_formula () =
  let g =
    Builders.join ~source_weights:[| 3.; 6.; 2.; 4. |] ~sink_weight:1.5
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ~recovery_cost:(fun _ w -> 0.1 *. w)
      ()
  in
  List.iter
    (fun model ->
      List.iter
        (fun flags ->
          let ckpt = Array.of_list flags in
          let s = Join_solver.schedule_of g ~ckpt in
          Wfc_test_util.check_close ~eps:1e-9 "evaluator = Eq. (2)"
            (Join_solver.expected_makespan model g ~ckpt)
            (Evaluator.expected_makespan model g s))
        [
          [ false; false; false; false; false ];
          [ true; true; true; true; false ];
          [ true; false; true; false; false ];
          [ false; true; false; false; false ];
        ])
    Wfc_test_util.models

let test_probabilities () =
  let g =
    Builders.chain ~weights:[| 3.; 5.; 2. |] ~checkpoint_cost:(fun _ _ -> 0.5) ()
  in
  let model = FM.make ~lambda:0.1 () in
  let s = Schedule.of_positions g ~order:[| 0; 1; 2 |] ~ckpt_positions:[ 1 ] in
  let r = Evaluator.evaluate model g s in
  (* fault probability of X_0: first attempt is w_0 = 3 *)
  Wfc_test_util.check_close "P(F(X_0))"
    (1. -. Float.exp (-0.1 *. 3.))
    r.Evaluator.fault_probability.(0);
  Array.iter
    (fun p ->
      if p < 0. || p > 1. then Alcotest.failf "probability out of range: %g" p)
    r.Evaluator.fault_probability;
  (* per-position expectations sum to the makespan *)
  Wfc_test_util.check_close "sum of E[X_i]"
    (Array.fold_left ( +. ) 0. r.Evaluator.per_position)
    r.Evaluator.makespan

let test_figure1_example_sanity () =
  (* the Section 3 example: sanity-check monotonicity in lambda *)
  let g =
    Dag.of_weights
      ~checkpoint_cost:(fun _ w -> 0.1 *. w)
      ~recovery_cost:(fun _ w -> 0.1 *. w)
      ~weights:[| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |]
      ~edges:[ (0, 3); (3, 4); (3, 5); (4, 6); (5, 6); (1, 2); (2, 7); (6, 7) ]
      ()
  in
  let s =
    Schedule.make g ~order:[| 0; 3; 1; 2; 4; 5; 6; 7 |]
      ~checkpointed:[| false; false; false; true; true; false; false; false |]
  in
  let at lambda = Evaluator.expected_makespan (FM.make ~lambda ()) g s in
  let prev = ref (at 0.) in
  Wfc_test_util.check_close "lambda 0 = W + c3 + c4" (36. +. 0.4 +. 0.5) !prev;
  List.iter
    (fun lambda ->
      let m = at lambda in
      if m <= !prev then Alcotest.fail "makespan must increase with lambda";
      prev := m)
    [ 1e-4; 1e-3; 1e-2; 0.1; 0.3 ]

let test_reuses_precomputed_lost_work () =
  let g = Builders.chain ~weights:[| 2.; 3. |] () in
  let model = FM.make ~lambda:0.05 () in
  let s = Schedule.no_checkpoints g ~order:[| 0; 1 |] in
  let lost = Lost_work.compute g s in
  Wfc_test_util.check_close "same result with cached lost work"
    (Evaluator.expected_makespan model g s)
    (Evaluator.expected_makespan ~lost model g s)

let prop_at_least_fail_free =
  Wfc_test_util.qtest ~count:200 "makespan >= fail-free time"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:10 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      List.for_all
        (fun model ->
          Evaluator.expected_makespan model g s
          >= Evaluator.fail_free_time g -. 1e-9)
        Wfc_test_util.models)

let prop_fail_free_exact =
  Wfc_test_util.qtest ~count:200 "lambda = 0: makespan = W + checkpoints"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:10 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      let expected =
        Dag.total_weight g
        +. Array.fold_left
             (fun acc (t : Wfc_dag.Task.t) ->
               if Schedule.is_checkpointed s t.Wfc_dag.Task.id then
                 acc +. t.Wfc_dag.Task.checkpoint_cost
               else acc)
             0. (Dag.tasks g)
      in
      Wfc_test_util.close expected
        (Evaluator.expected_makespan FM.fail_free g s))

let prop_probabilities_valid =
  Wfc_test_util.qtest ~count:200 "fault probabilities lie in [0, 1]"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:10 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      List.for_all
        (fun model ->
          let r = Evaluator.evaluate model g s in
          Array.for_all
            (fun p -> p >= 0. && p <= 1. +. 1e-12)
            r.Evaluator.fault_probability)
        Wfc_test_util.models)

(* a zero-total-weight DAG used to make ratio return NaN (0/0); pin the
   repaired behavior instead *)
let test_ratio_zero_weight () =
  let g_free =
    Wfc_dag.Builders.chain ~weights:[| 0.; 0.; 0. |] ()
  in
  let order = [| 0; 1; 2 |] in
  let m = Wfc_platform.Failure_model.make ~lambda:0.1 ~downtime:1. () in
  Alcotest.(check (float 0.)) "no work, no overhead: ratio 1" 1.
    (Evaluator.ratio m g_free (Schedule.no_checkpoints g_free ~order));
  let g_ckpt =
    Wfc_dag.Builders.chain ~weights:[| 0.; 0.; 0. |]
      ~checkpoint_cost:(fun _ _ -> 2.)
      ~recovery_cost:(fun _ _ -> 1.)
      ()
  in
  let all = Schedule.make g_ckpt ~order ~checkpointed:[| true; true; true |] in
  Alcotest.(check bool) "overhead on zero work: infinite ratio" true
    (Evaluator.ratio m g_ckpt all = Float.infinity);
  (* and never NaN in either case *)
  Alcotest.(check bool) "never NaN" false
    (Float.is_nan (Evaluator.ratio m g_free (Schedule.no_checkpoints g_free ~order))
    || Float.is_nan (Evaluator.ratio m g_ckpt all));
  (* the ordinary positive-weight path is untouched *)
  let g = Wfc_dag.Builders.chain ~weights:[| 2.; 3. |] () in
  let s = Schedule.no_checkpoints g ~order:[| 0; 1 |] in
  Wfc_test_util.check_close "positive weights unchanged"
    (Evaluator.expected_makespan m g s /. 5.)
    (Evaluator.ratio m g s)

let () =
  Alcotest.run "evaluator"
    [
      ( "evaluator",
        [
          Alcotest.test_case "single task" `Quick test_single_task;
          Alcotest.test_case "fail-free, no ckpt" `Quick
            test_fail_free_no_checkpoint;
          Alcotest.test_case "fail-free, with ckpts" `Quick
            test_fail_free_with_checkpoints;
          Alcotest.test_case "independent tasks" `Quick test_independent_tasks;
          Alcotest.test_case "chain = one segment" `Quick
            test_chain_no_checkpoint_is_one_segment;
          Alcotest.test_case "chain = segment formula" `Quick
            test_chain_matches_segment_formula;
          Alcotest.test_case "fork = Theorem 1 forms" `Quick
            test_fork_matches_theorem1_forms;
          Alcotest.test_case "fork order irrelevant" `Quick
            test_fork_order_irrelevant;
          Alcotest.test_case "join = Lemma 2 formula" `Quick
            test_join_matches_lemma2_formula;
          Alcotest.test_case "probabilities" `Quick test_probabilities;
          Alcotest.test_case "Figure 1 sanity" `Quick test_figure1_example_sanity;
          Alcotest.test_case "cached lost work" `Quick
            test_reuses_precomputed_lost_work;
          Alcotest.test_case "ratio on zero weight" `Quick
            test_ratio_zero_weight;
          prop_at_least_fail_free;
          prop_fail_free_exact;
          prop_probabilities_valid;
        ] );
    ]
