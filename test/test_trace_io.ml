module D = Wfc_platform.Distribution
module FM = Wfc_platform.Failure_model
module Rng = Wfc_platform.Rng
module Sim = Wfc_simulator.Sim
module SF = Wfc_simulator.Sim_faults
module ST = Wfc_simulator.Sim_trace
module T = Wfc_simulator.Trace_io

let same_run (a : Sim.run) (b : Sim.run) =
  (* exact float equality: replay must be bit-identical, not close *)
  a.Sim.makespan = b.Sim.makespan
  && a.Sim.failures = b.Sim.failures
  && a.Sim.wasted = b.Sim.wasted

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---- record/replay determinism (qcheck differentials) ---- *)

let gen_case = QCheck2.Gen.(pair (Wfc_test_util.gen_dag_and_schedule ~max_n:8 ()) nat)
let print_case ((g, s), seed) =
  Printf.sprintf "%s seed=%d" (Wfc_test_util.print_dag_schedule (g, s)) seed

let prop_record_replay_bit_identical =
  Wfc_test_util.qtest ~count:150 "record_run then replay = Sim.run, bit for bit"
    gen_case print_case
    (fun ((g, s), seed) ->
      List.for_all
        (fun model ->
          let reference = Sim.run ~rng:(Rng.create seed) model g s in
          let recorded, trace = T.record_run ~rng:(Rng.create seed) model g s in
          same_run reference recorded
          && same_run reference (T.replay trace g s))
        Wfc_test_util.models)

let prop_serialization_round_trip =
  Wfc_test_util.qtest ~count:100 "save/load round-trips bit for bit"
    gen_case print_case
    (fun ((g, s), seed) ->
      List.for_all
        (fun model ->
          let reference, trace = T.record_run ~rng:(Rng.create seed) model g s in
          match T.of_string (T.to_string trace) with
          | Error e -> QCheck2.Test.fail_reportf "loader rejected: %s" e
          | Ok trace' ->
              trace = trace' && same_run reference (T.replay trace' g s))
        Wfc_test_util.models)

let prop_renewal_record_replay =
  Wfc_test_util.qtest ~count:100 "renewal record then replay, bit for bit"
    gen_case print_case
    (fun ((g, s), seed) ->
      List.for_all
        (fun failures ->
          let downtime = D.constant 0.3 in
          let reference, trace =
            T.record_renewal ~rng:(Rng.create seed) ~failures ~downtime g s
          in
          let replayed = T.replay trace g s in
          let state = T.replay_source trace in
          let replayed' = Sim.run_with_source state.T.source g s in
          same_run reference replayed
          && same_run reference replayed'
          && not (state.T.exhausted ()))
        [
          D.exponential ~rate:0.05;
          D.weibull ~shape:0.7 ~scale:30.;
          D.hyperexponential ~p:0.1 ~rate1:1. ~rate2:0.01;
        ])

(* Satellite: the Sim_trace event log, converted, replays to the exact
   Sim.run summary on the same stream. *)
let prop_event_log_replay =
  Wfc_test_util.qtest ~count:150 "Sim_trace event log replays bit for bit"
    gen_case print_case
    (fun ((g, s), seed) ->
      List.for_all
        (fun model ->
          let reference = Sim.run ~rng:(Rng.create seed) model g s in
          let traced, events = ST.run ~rng:(Rng.create seed) model g s in
          let trace =
            T.of_events ~downtime:model.FM.downtime events
          in
          same_run reference traced && same_run reference (T.replay trace g s))
        Wfc_test_util.models)

let prop_sim_faults_source_replay =
  Wfc_test_util.qtest ~count:100 "Sim_faults failure process records and replays"
    gen_case print_case
    (fun ((g, s), seed) ->
      (* fault bernoullis off: the rng stream feeds only the failure
         source, so a replayed source reproduces the run exactly *)
      let params =
        {
          SF.failures = D.weibull ~shape:2. ~scale:25.;
          downtime = D.exponential ~rate:2.;
          p_ckpt_fail = 0.;
          p_rec_fail = 0.;
          max_failures = 0;
        }
      in
      let rng = Rng.create seed in
      let r = T.recorder () in
      let src = T.recording_source r (SF.source_of_params ~rng params) in
      let reference = SF.run ~source:src ~rng params g s in
      let state = T.replay_source (T.recorded r) in
      let replayed = SF.run ~source:state.T.source ~rng:(Rng.create seed) params g s in
      reference.SF.makespan = replayed.SF.makespan
      && reference.SF.failures = replayed.SF.failures
      && reference.SF.wasted = replayed.SF.wasted)

(* ---- crafted exact cases ---- *)

let single_task () =
  let g =
    Wfc_dag.Builders.chain ~weights:[| 5. |]
      ~checkpoint_cost:(fun _ _ -> 1.)
      ~recovery_cost:(fun _ _ -> 1.)
      ()
  in
  let s =
    Wfc_core.Schedule.make g ~order:[| 0 |] ~checkpointed:[| false |]
  in
  (g, s)

let test_closed_form () =
  let g, s = single_task () in
  let trace =
    T.Attempts [| T.Failed { after = 2.; downtime = 1. }; T.Survived 10. |]
  in
  let r = T.replay trace g s in
  Alcotest.(check (float 0.)) "makespan" 8. r.Sim.makespan;
  Alcotest.(check int) "failures" 1 r.Sim.failures;
  Alcotest.(check (float 0.)) "wasted" 3. r.Sim.wasted

let test_divergence () =
  let g, s = single_task () in
  (* the recorded attempt survived 1s, but the executing segment is 5s
     long: the replayed schedule fails where the recorded one survived *)
  let short = T.Attempts [| T.Survived 1. |] in
  (match T.replay short g s with
  | exception T.Divergence _ -> ()
  | _ -> Alcotest.fail "expected Divergence on recorded survival");
  (* recorded a failure at 10s, but the 5s segment completes first *)
  let late = T.Attempts [| T.Failed { after = 10.; downtime = 1. } |] in
  match T.replay late g s with
  | exception T.Divergence _ -> ()
  | _ -> Alcotest.fail "expected Divergence on recorded failure"

let test_exhaustion () =
  let g, s = single_task () in
  (* renewal horizon shorter than the work: past the last uptime the
     platform is failure-free and the run is flagged exhausted *)
  let trace = T.Renewal { uptimes = [| 3. |]; downtimes = [||] } in
  let state = T.replay_source trace in
  let r = Sim.run_with_source state.T.source g s in
  Alcotest.(check (float 0.)) "makespan" 5. r.Sim.makespan;
  Alcotest.(check int) "failures" 0 r.Sim.failures;
  Alcotest.(check bool) "exhausted" true (state.T.exhausted ());
  (* a comfortable horizon is not exhausted *)
  let wide = T.Renewal { uptimes = [| 30. |]; downtimes = [||] } in
  let state = T.replay_source wide in
  ignore (Sim.run_with_source state.T.source g s);
  Alcotest.(check bool) "not exhausted" false (state.T.exhausted ())

let test_draw_renewal () =
  let rng = Rng.create 42 in
  let t =
    T.draw_renewal ~rng ~failures:(D.exponential ~rate:0.1)
      ~downtime:(D.constant 1.) ~min_uptime:500.
  in
  (match t with
  | T.Renewal { uptimes; downtimes } ->
      Alcotest.(check int) "one more uptime than downtime"
        (Array.length downtimes + 1)
        (Array.length uptimes);
      let cum = Array.fold_left ( +. ) 0. uptimes in
      Alcotest.(check bool) "covers the horizon" true (cum >= 500.)
  | T.Attempts _ | T.Replicated _ -> Alcotest.fail "expected a renewal trace");
  expect_invalid (fun () ->
      ignore
        (T.draw_renewal ~rng ~failures:(D.exponential ~rate:0.1)
           ~downtime:(D.constant 1.) ~min_uptime:0.))

let test_accessors () =
  let a =
    T.Attempts [| T.Survived 1.; T.Failed { after = 1.; downtime = 2. } |]
  in
  let r = T.Renewal { uptimes = [| 1.; 2. |]; downtimes = [| 3. |] } in
  Alcotest.(check string) "kind a" "attempts" (T.kind_name a);
  Alcotest.(check string) "kind r" "renewal" (T.kind_name r);
  Alcotest.(check int) "events a" 2 (T.n_events a);
  Alcotest.(check int) "events r" 3 (T.n_events r);
  Alcotest.(check int) "failures a" 1 (T.n_failures a);
  Alcotest.(check int) "failures r" 1 (T.n_failures r)

(* ---- loader validation ---- *)

let expect_load_error what s =
  match T.of_string s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "loader accepted %s" what

let header ?(kind = "attempts") ?(version = 1) () =
  Printf.sprintf "{\"format\":\"wfc-trace\",\"version\":%d,\"kind\":%S}" version
    kind

let test_loader_validation () =
  expect_load_error "empty input" "";
  expect_load_error "garbage" "not json\n";
  expect_load_error "wrong format"
    "{\"format\":\"other\",\"version\":1,\"kind\":\"attempts\"}\n";
  expect_load_error "future version" (header ~version:99 ());
  expect_load_error "unknown kind" (header ~kind:"martian" ());
  expect_load_error "unparseable float"
    (header () ^ "\n{\"s\":\"zebra\"}\n");
  expect_load_error "nan float" (header () ^ "\n{\"s\":\"nan\"}\n");
  expect_load_error "negative downtime"
    (header () ^ "\n{\"f\":\"0x1p+0\",\"d\":\"-0x1p+0\"}\n");
  expect_load_error "infinite failure time"
    (header () ^ "\n{\"f\":\"infinity\",\"d\":\"0x1p+0\"}\n");
  expect_load_error "renewal with no uptime" (header ~kind:"renewal" ());
  expect_load_error "renewal ending on a downtime"
    (header ~kind:"renewal" () ^ "\n{\"u\":\"0x1p+0\"}\n{\"d\":\"0x1p+0\"}\n");
  expect_load_error "renewal with two uptimes in a row"
    (header ~kind:"renewal" () ^ "\n{\"u\":\"0x1p+0\"}\n{\"u\":\"0x1p+0\"}\n");
  (* the empty attempts trace is legitimate: a fail-free platform *)
  match T.of_string (header () ^ "\n") with
  | Ok (T.Attempts [||]) -> ()
  | Ok _ -> Alcotest.fail "expected an empty attempts trace"
  | Error e -> Alcotest.failf "empty attempts trace rejected: %s" e

(* ---- replicated traces ---- *)

let replicated_case () =
  let g =
    Wfc_dag.Builders.chain ~weights:[| 5.; 3. |]
      ~checkpoint_cost:(fun _ _ -> 1.)
      ~recovery_cost:(fun _ _ -> 1.)
      ()
  in
  let s =
    Wfc_core.Schedule.make ~replicas:[| 2; 1 |] g ~order:[| 0; 1 |]
      ~checkpointed:[| true; false |]
  in
  (g, s)

let test_replicated_record_replay () =
  let g, s = replicated_case () in
  let model = FM.make ~lambda:0.3 ~downtime:1. () in
  let reference, trace = T.record_run ~rng:(Rng.create 11) model g s in
  Alcotest.(check string) "kind" "attempts-replicated" (T.kind_name trace);
  Alcotest.(check bool) "replay bit-identical" true
    (same_run reference (T.replay trace g s));
  (* and through the serialized form *)
  match T.of_string (T.to_string trace) with
  | Error e -> Alcotest.failf "loader rejected: %s" e
  | Ok trace' ->
      Alcotest.(check bool) "serialization round-trip" true (trace = trace');
      Alcotest.(check bool) "replay of loaded trace" true
        (same_run reference (T.replay trace' g s))

let expect_divergence what f =
  match f () with
  | exception T.Divergence _ -> ()
  | _ -> Alcotest.failf "expected Divergence on %s" what

let test_replicated_divergence () =
  let g, s = replicated_case () in
  let model = FM.make ~lambda:0.3 ~downtime:1. () in
  let _, trace = T.record_run ~rng:(Rng.create 11) model g s in
  (* same order and flags, different replica counts: the recorded stream
     would be sliced into the wrong copies, so replay must refuse *)
  expect_divergence "replica-count mismatch" (fun () ->
      T.replay trace g (Wfc_core.Schedule.with_replicas s [| 3; 1 |]));
  expect_divergence "unreplicated schedule against a replicated trace"
    (fun () ->
      T.replay trace g (Wfc_core.Schedule.with_replicas s [| 1; 1 |]));
  (* a single-lane trace cannot feed a replicated schedule either way *)
  let attempts = T.Attempts [| T.Survived infinity; T.Survived infinity |] in
  expect_divergence "attempts trace against a replicated schedule" (fun () ->
      T.replay attempts g s);
  let renewal = T.Renewal { uptimes = [| 1e6 |]; downtimes = [||] } in
  expect_divergence "renewal trace against a replicated schedule" (fun () ->
      T.replay renewal g s)

let test_save_load_files () =
  let g, s = single_task () in
  let _, trace =
    T.record_run
      ~rng:(Rng.create 7)
      (FM.make ~lambda:0.3 ~downtime:1. ())
      g s
  in
  let path = Filename.temp_file "wfc_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.save path trace;
      match T.load path with
      | Ok t -> Alcotest.(check bool) "round-trip" true (t = trace)
      | Error e -> Alcotest.failf "load failed: %s" e);
  match T.load "/nonexistent/wfc/trace.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing file"

let () =
  Alcotest.run "trace_io"
    [
      ( "determinism",
        [
          prop_record_replay_bit_identical;
          prop_serialization_round_trip;
          prop_renewal_record_replay;
          prop_event_log_replay;
          prop_sim_faults_source_replay;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "closed form" `Quick test_closed_form;
          Alcotest.test_case "divergence" `Quick test_divergence;
          Alcotest.test_case "exhaustion" `Quick test_exhaustion;
          Alcotest.test_case "draw_renewal" `Quick test_draw_renewal;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
      ( "replication",
        [
          Alcotest.test_case "record/replay" `Quick
            test_replicated_record_replay;
          Alcotest.test_case "divergence" `Quick test_replicated_divergence;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "loader validation" `Quick test_loader_validation;
          Alcotest.test_case "files" `Quick test_save_load_files;
        ] );
    ]
