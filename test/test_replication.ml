(* Differential pins for the replication axis.

   The load-bearing invariant: an all-ones replica vector is the paper's
   unreplicated model, and must be indistinguishable from it — analytically
   (Replication.evaluate vs Evaluator, engine handles with and without
   ~replicas) and in simulation (one failure lane vs run_with_source, the
   fault engine at zero fault probability vs the plain lane engine). On top
   of that, the generalized per-attempt math must agree with the paper's
   Eq. (1) at r = 1 and with Monte Carlo at r > 1. *)

module FM = Wfc_platform.Failure_model
module D = Wfc_platform.Distribution
module Rng = Wfc_platform.Rng
module Sim = Wfc_simulator.Sim
module SF = Wfc_simulator.Sim_faults
module T = Wfc_simulator.Trace_io
open Wfc_core

let gen_case = QCheck2.Gen.(pair (Wfc_test_util.gen_dag_and_schedule ~max_n:8 ()) nat)

let print_case ((g, s), seed) =
  Printf.sprintf "%s seed=%d" (Wfc_test_util.print_dag_schedule (g, s)) seed

(* random replica counts in 1..3 on top of a random schedule *)
let gen_replicated =
  QCheck2.Gen.(
    let* (g, s), seed = gen_case in
    let n = Wfc_dag.Dag.n_tasks g in
    let* reps = array_repeat n (int_range 1 3) in
    (* at least one task genuinely replicated: the laned engines reject
       ?lanes on unreplicated schedules by design *)
    if Array.for_all (( = ) 1) reps then reps.(n - 1) <- 2;
    return ((g, Schedule.with_replicas s reps), seed))

let same_run (a : Sim.run) (b : Sim.run) =
  a.Sim.makespan = b.Sim.makespan
  && a.Sim.failures = b.Sim.failures
  && a.Sim.wasted = b.Sim.wasted

(* ---- all-ones is the unreplicated model ---- *)

let prop_all_ones_evaluator =
  Wfc_test_util.qtest ~count:200
    "Replication.evaluate at all-ones = Evaluator within 1e-9"
    gen_case print_case
    (fun ((g, s), _) ->
      List.for_all
        (fun model ->
          let r = Replication.evaluate model g s in
          let e = Evaluator.evaluate model g s in
          Wfc_test_util.close r.Replication.makespan e.Evaluator.makespan
          && Array.for_all2 Wfc_test_util.close r.Replication.per_position
               e.Evaluator.per_position
          && Array.for_all2 Wfc_test_util.close
               r.Replication.fault_probability e.Evaluator.fault_probability)
        Wfc_test_util.models)

let prop_all_ones_engine =
  Wfc_test_util.qtest ~count:150
    "handle ~replicas:all-ones is bit-identical to handle without"
    gen_case print_case
    (fun ((g, s), _) ->
      let n = Wfc_dag.Dag.n_tasks g in
      let order = Array.init n (Schedule.task_at s) in
      let flags = Array.init n (Schedule.is_checkpointed s) in
      let ones = Array.make n 1 in
      List.for_all
        (fun model ->
          List.for_all
            (fun backend ->
              let plain =
                Eval_engine.handle ~flags backend model g ~order
              in
              let with_ones =
                Eval_engine.handle ~flags ~replicas:ones backend model g ~order
              in
              Eval_engine.h_makespan plain = Eval_engine.h_makespan with_ones)
            [ Eval_engine.Incremental; Eval_engine.Flat ])
        Wfc_test_util.models)

let prop_one_lane_is_run_with_source =
  Wfc_test_util.qtest ~count:150
    "run_with_lanes with one lane = run_with_source, bit for bit"
    gen_case print_case
    (fun ((g, s), seed) ->
      let trace =
        T.draw_renewal
          ~rng:(Rng.create seed)
          ~failures:(D.exponential ~rate:0.05)
          ~downtime:(D.constant 0.4) ~min_uptime:5_000.
      in
      let reference =
        Sim.run_with_source (T.replay_source trace).T.source g s
      in
      let laned =
        Sim.run_with_lanes [| (T.replay_source trace).T.source |] g s
      in
      same_run reference laned)

let prop_run_dispatch_unchanged =
  Wfc_test_util.qtest ~count:150
    "Sim.run on an unreplicated schedule ignores the replication plumbing"
    gen_case print_case
    (fun ((g, s), seed) ->
      List.for_all
        (fun model ->
          same_run
            (Sim.run ~rng:(Rng.create seed) model g s)
            (Sim.run ~replica_cost:0.25 ~rng:(Rng.create seed) model g s))
        Wfc_test_util.models)

(* ---- replicated fault engine at zero fault probability ---- *)

let prop_sim_faults_zero_faults =
  Wfc_test_util.qtest ~count:100
    "replicated Sim_faults at p=0 = Sim.run_with_lanes, bit for bit"
    gen_replicated print_case
    (fun ((g, s), seed) ->
      let max_r = Schedule.max_replica_count s in
      let draw lane =
        T.draw_renewal
          ~rng:(Rng.create (seed + (lane * 7919)))
          ~failures:(D.weibull ~shape:1.3 ~scale:40.)
          ~downtime:(D.exponential ~rate:1.5) ~min_uptime:20_000.
      in
      let traces = Array.init max_r draw in
      let lanes () =
        Array.map (fun t -> (T.replay_source t).T.source) traces
      in
      let params =
        {
          SF.failures = D.exponential ~rate:0.02;
          downtime = D.constant 0.1;
          p_ckpt_fail = 0.;
          p_rec_fail = 0.;
          max_failures = 0;
        }
      in
      let faulty =
        SF.run ~lanes:(lanes ()) ~rng:(Rng.create seed) params g s
      in
      let plain = Sim.run_with_lanes (lanes ()) g s in
      faulty.SF.makespan = plain.Sim.makespan
      && faulty.SF.failures = plain.Sim.failures
      && faulty.SF.wasted = plain.Sim.wasted
      && faulty.SF.corrupt_reads = 0
      && faulty.SF.failed_recoveries = 0)

(* ---- the per-attempt math ---- *)

let prop_attempt_time_r1 =
  Wfc_test_util.qtest ~count:300 "expected_attempt_time at r=1 = Eq. (1)"
    QCheck2.Gen.(
      tup5 (float_range 1e-4 0.3) (float_range 0. 3.) (float_range 0.5 50.)
        (float_range 0. 5.) (float_range 0. 5.))
    (fun (lambda, downtime, work, checkpoint, recovery) ->
      Printf.sprintf "l=%g d=%g w=%g c=%g r=%g" lambda downtime work checkpoint
        recovery)
    (fun (lambda, downtime, work, checkpoint, recovery) ->
      let model = FM.make ~lambda ~downtime () in
      Wfc_test_util.close
        (Replication.expected_attempt_time ~lambda ~downtime ~r:1 ~work
           ~checkpoint ~recovery)
        (FM.expected_exec_time model ~work ~checkpoint ~recovery))

let prop_replication_never_hurts_reliability =
  Wfc_test_util.qtest ~count:300
    "attempt failure probability decreases in r"
    QCheck2.Gen.(pair (float_range 1e-4 0.5) (float_range 0.1 100.))
    (fun (lambda, t) -> Printf.sprintf "l=%g t=%g" lambda t)
    (fun (lambda, t) ->
      let q r = Replication.attempt_failure_probability ~lambda ~r t in
      q 2 <= q 1 && q 3 <= q 2 && q 4 <= q 3 && q 1 <= 1. && q 4 >= 0.)

let test_free_replicas_at_zero_cost () =
  (* with cost 0 an extra replica never increases the effective weight *)
  Wfc_test_util.check_close "cost 0" 5.
    (Replication.effective_weight ~cost:0. ~weight:5. ~r:3);
  Wfc_test_util.check_close "cost 1 r 3" 15.
    (Replication.effective_weight ~cost:1. ~weight:5. ~r:3);
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Replication: negative replica cost") (fun () ->
      ignore (Replication.effective_weight ~cost:(-0.1) ~weight:1. ~r:2))

(* a two-task chain where replication must help: harsh failures, cheap
   copies — the replicated makespan is strictly below the unreplicated *)
let test_replication_helps_when_cheap () =
  let g =
    Wfc_dag.Builders.chain ~weights:[| 30.; 30. |]
      ~checkpoint_cost:(fun _ w -> 0.5 *. w)
      ~recovery_cost:(fun _ w -> 0.5 *. w)
      ()
  in
  let model = FM.make ~lambda:0.05 ~downtime:1. () in
  let s = Schedule.make g ~order:[| 0; 1 |] ~checkpointed:[| true; false |] in
  let plain = Evaluator.expected_makespan model g s in
  let replicated =
    Evaluator.expected_makespan ~replica_cost:0.1 model g
      (Schedule.with_replicas s [| 3; 3 |])
  in
  if not (replicated < plain) then
    Alcotest.failf "replication did not help: %.4f >= %.4f" replicated plain

(* ---- Monte Carlo cross-validation of the replicated evaluator ---- *)

let test_mc_cross_validation () =
  let g =
    Wfc_dag.Builders.chain ~weights:[| 12.; 20.; 8. |]
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ~recovery_cost:(fun _ w -> 0.2 *. w)
      ()
  in
  let model = FM.make ~lambda:0.03 ~downtime:0.5 () in
  let s =
    Schedule.make ~replicas:[| 2; 3; 1 |] g ~order:[| 0; 1; 2 |]
      ~checkpointed:[| true; false; true |]
  in
  let cost = 0.3 in
  let analytic = Evaluator.expected_makespan ~replica_cost:cost model g s in
  let est =
    Wfc_simulator.Monte_carlo.estimate ~replica_cost:cost ~runs:60_000 ~seed:5
      model g s
  in
  let mean = Wfc_platform.Stats.mean est.Wfc_simulator.Monte_carlo.makespan in
  let lo, hi = Wfc_platform.Stats.confidence95 est.Wfc_simulator.Monte_carlo.makespan in
  (* 3x the CI half-width, plus a small absolute floor *)
  let slack = (3. *. ((hi -. lo) /. 2.)) +. 0.05 in
  if Float.abs (analytic -. mean) > slack then
    Alcotest.failf "analytic %.4f vs simulated %.4f (CI [%.4f, %.4f])" analytic
      mean lo hi

(* ---- policy machinery ---- *)

let test_spec_parsing () =
  let check s expected =
    Alcotest.(check bool)
      (Printf.sprintf "parse %S" s) true
      (Replication.spec_of_string s = expected)
  in
  check "auto" (Some Replication.Auto);
  check "NONE" (Some Replication.No_replication);
  check "k:3" (Some (Replication.Heavy 3));
  check "budget:0.25" (Some (Replication.Budget 0.25));
  check "k:0" None;
  check "budget:-1" None;
  check "budget:nan" None;
  check "zebra" None;
  check "k:two" None

let test_replication_counts () =
  let g =
    Wfc_dag.Builders.chain ~weights:[| 5.; 40.; 10.; 25. |]
      ~checkpoint_cost:(fun _ w -> 0.3 *. w)
      ~recovery_cost:(fun _ w -> 0.3 *. w)
      ()
  in
  let model = FM.make ~lambda:0.04 ~downtime:1. () in
  let sched = Schedule.no_checkpoints g ~order:[| 0; 1; 2; 3 |] in
  let none =
    Heuristics.replication_counts Replication.No_replication model g ~sched
  in
  Alcotest.(check bool) "none = all ones" true (Array.for_all (( = ) 1) none);
  let heavy =
    Heuristics.replication_counts (Replication.Heavy 2) model g ~sched
  in
  Alcotest.(check int) "heavy picks T1" 2 heavy.(1);
  Alcotest.(check int) "heavy picks T3" 2 heavy.(3);
  Alcotest.(check int) "heavy skips T0" 1 heavy.(0);
  let budget =
    Heuristics.replication_counts ~cost:0.1 (Replication.Budget 0.5) model g
      ~sched
  in
  (* the greedy spend never exceeds the budget: sum of extra work <= f * W *)
  let spent = ref 0. in
  Array.iteri
    (fun v r ->
      spent :=
        !spent
        +. (0.1 *. (Wfc_dag.Dag.task g v).Wfc_dag.Task.weight
            *. float_of_int (r - 1)))
    budget;
  Alcotest.(check bool) "budget respected" true
    (!spent <= (0.5 *. Wfc_dag.Dag.total_weight g) +. 1e-9)

let test_local_search_replicated () =
  let g =
    Wfc_dag.Builders.chain ~weights:[| 15.; 25.; 10. |]
      ~checkpoint_cost:(fun _ w -> 0.4 *. w)
      ~recovery_cost:(fun _ w -> 0.4 *. w)
      ()
  in
  let model = FM.make ~lambda:0.05 ~downtime:1. () in
  let seed =
    Schedule.make ~replicas:[| 2; 1; 1 |] g ~order:[| 0; 1; 2 |]
      ~checkpointed:[| false; false; false |]
  in
  let r = Local_search.improve ~replica_cost:0.15 model g seed in
  Alcotest.(check bool) "never degrades" true
    (r.Local_search.makespan <= r.Local_search.initial_makespan);
  (* the reported makespan is the replication-aware oracle's *)
  Wfc_test_util.check_close "oracle value" r.Local_search.makespan
    (Evaluator.expected_makespan ~replica_cost:0.15 model g
       r.Local_search.schedule)

let () =
  Alcotest.run "replication"
    [
      ( "all-ones parity",
        [
          prop_all_ones_evaluator;
          prop_all_ones_engine;
          prop_one_lane_is_run_with_source;
          prop_run_dispatch_unchanged;
        ] );
      ( "fault engine",
        [ prop_sim_faults_zero_faults ] );
      ( "attempt math",
        [
          prop_attempt_time_r1;
          prop_replication_never_hurts_reliability;
          Alcotest.test_case "effective weight" `Quick
            test_free_replicas_at_zero_cost;
          Alcotest.test_case "replication helps when cheap" `Quick
            test_replication_helps_when_cheap;
          Alcotest.test_case "Monte Carlo cross-validation" `Slow
            test_mc_cross_validation;
        ] );
      ( "policies",
        [
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "replication_counts" `Quick
            test_replication_counts;
          Alcotest.test_case "local search" `Quick
            test_local_search_replicated;
        ] );
    ]
