open Wfc_core
module Builders = Wfc_dag.Builders
module FM = Wfc_platform.Failure_model

let model = FM.make ~lambda:0.05 ~downtime:0.2 ()

let chain () =
  Builders.chain
    ~weights:[| 6.; 2.; 8.; 4.; 5.; 3. |]
    ~checkpoint_cost:(fun _ w -> 0.2 *. w)
    ~recovery_cost:(fun _ w -> 0.2 *. w)
    ()

let test_never_degrades () =
  let g = chain () in
  let order = Array.init 6 Fun.id in
  List.iter
    (fun flags ->
      let seed = Schedule.make g ~order ~checkpointed:(Array.of_list flags) in
      let r = Local_search.improve model g seed in
      Alcotest.(check bool) "improved or equal" true
        (r.Local_search.makespan <= r.Local_search.initial_makespan +. 1e-12);
      Wfc_test_util.check_close "initial recorded"
        (Evaluator.expected_makespan model g seed)
        r.Local_search.initial_makespan)
    [
      [ false; false; false; false; false; false ];
      [ true; true; true; true; true; true ];
      [ true; false; true; false; true; false ];
    ]

let test_reaches_local_optimum () =
  (* after convergence, no single flip improves *)
  let g = chain () in
  let order = Array.init 6 Fun.id in
  let seed = Schedule.no_checkpoints g ~order in
  let r = Local_search.improve model g seed in
  let flags = Array.init 6 (Schedule.is_checkpointed r.Local_search.schedule) in
  for v = 0 to 5 do
    let flipped = Array.copy flags in
    flipped.(v) <- not flipped.(v);
    let m =
      Evaluator.expected_makespan model g
        (Schedule.make g ~order ~checkpointed:flipped)
    in
    if m < r.Local_search.makespan -. 1e-9 then
      Alcotest.failf "flip of %d still improves" v
  done

let test_finds_chain_optimum () =
  (* single flips reach the global optimum on this small chain (checked
     against the DP) *)
  let g = chain () in
  let order = Array.init 6 Fun.id in
  let seed = Schedule.no_checkpoints g ~order in
  let r = Local_search.improve model g seed in
  let dp = Chain_solver.solve model g in
  Wfc_test_util.check_close ~eps:1e-9 "matches chain DP"
    dp.Chain_solver.makespan r.Local_search.makespan

let test_budget_respected () =
  let g = chain () in
  let seed = Schedule.no_checkpoints g ~order:(Array.init 6 Fun.id) in
  let r = Local_search.improve ~max_evaluations:3 model g seed in
  Alcotest.(check bool) "stopped at budget" true (r.Local_search.evaluations <= 3)

let test_improves_bad_seed_on_workflow () =
  let g =
    Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Constant 5.)
      (Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Montage ~n:40 ~seed:2)
  in
  let model = FM.make ~lambda:1e-3 () in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  let seed = Schedule.all_checkpoints g ~order in
  let r = Local_search.improve model g seed in
  Alcotest.(check bool) "strictly improves all-checkpoint seed" true
    (r.Local_search.makespan < r.Local_search.initial_makespan);
  Alcotest.(check bool) "some flips recorded" true (r.Local_search.flips > 0)

let test_keeps_linearization () =
  let g = chain () in
  let order = Array.init 6 Fun.id in
  let seed = Schedule.no_checkpoints g ~order in
  let r = Local_search.improve model g seed in
  for p = 0 to 5 do
    Alcotest.(check int) "order unchanged" (Schedule.task_at seed p)
      (Schedule.task_at r.Local_search.schedule p)
  done

(* the engine backend must retrace the naive hill-climb exactly: same flip
   decisions, same final schedule, same reported numbers, on realistic
   50-task instances *)
let test_backend_invariance () =
  let module P = Wfc_workflows.Pegasus in
  let module CM = Wfc_workflows.Cost_model in
  let model = FM.make ~lambda:1e-3 ~downtime:1. () in
  List.iter
    (fun (family, seed, ckpt) ->
      let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n:50 ~seed) in
      let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
      let flags = Heuristics.checkpoint_flags ckpt g ~order ~n_ckpt:10 in
      let seed_sched = Schedule.make g ~order ~checkpointed:flags in
      let naive =
        Local_search.improve ~backend:Eval_engine.Naive model g seed_sched
      in
      List.iter
        (fun backend ->
          let engine = Local_search.improve ~backend model g seed_sched in
          let name = Eval_engine.backend_name backend in
          Alcotest.(check bool) (name ^ " same flags") true
            (naive.Local_search.schedule.Schedule.checkpointed
            = engine.Local_search.schedule.Schedule.checkpointed);
          Alcotest.(check (float 0.))
            (name ^ " same makespan") naive.Local_search.makespan
            engine.Local_search.makespan;
          Alcotest.(check (float 0.))
            (name ^ " same initial") naive.Local_search.initial_makespan
            engine.Local_search.initial_makespan;
          Alcotest.(check int)
            (name ^ " same flips") naive.Local_search.flips
            engine.Local_search.flips;
          Alcotest.(check int)
            (name ^ " same evaluations") naive.Local_search.evaluations
            engine.Local_search.evaluations)
        [ Eval_engine.Incremental; Eval_engine.Flat ])
    [
      (P.Montage, 5, Heuristics.Ckpt_weight);
      (P.Ligo, 9, Heuristics.Ckpt_never);
      (P.Cybershake, 3, Heuristics.Ckpt_always);
    ]

let () =
  Alcotest.run "local_search"
    [
      ( "local_search",
        [
          Alcotest.test_case "never degrades" `Quick test_never_degrades;
          Alcotest.test_case "local optimum" `Quick test_reaches_local_optimum;
          Alcotest.test_case "finds chain optimum" `Quick test_finds_chain_optimum;
          Alcotest.test_case "budget respected" `Quick test_budget_respected;
          Alcotest.test_case "improves bad seed" `Quick
            test_improves_bad_seed_on_workflow;
          Alcotest.test_case "keeps linearization" `Quick test_keeps_linearization;
          Alcotest.test_case "backend invariance" `Quick
            test_backend_invariance;
        ] );
    ]
