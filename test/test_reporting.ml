open Wfc_reporting

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---- Table ---- *)

let test_table_render () =
  let t = Table.create ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22.5" ];
  let rendered = Table.render t in
  Alcotest.(check string) "aligned"
    "name   value\n-----  -----\nalpha  1\nb      22.5\n" rendered

let test_table_validation () =
  expect_invalid (fun () -> Table.create ~columns:[]);
  let t = Table.create ~columns:[ "a"; "b" ] in
  expect_invalid (fun () -> Table.add_row t [ "only-one" ])

let test_table_float_row () =
  let t = Table.create ~columns:[ "x"; "y"; "z" ] in
  Table.add_float_row t "row" [ 1.; 0.123456 ];
  let rendered = Table.render t in
  Alcotest.(check bool) "integer printed plainly" true
    (String.length rendered > 0
    && contains rendered "1"
    && contains rendered "0.1235")

(* ---- Csv ---- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_line () =
  Alcotest.(check string) "joined" "a,\"b,c\",d" (Csv.line [ "a"; "b,c"; "d" ])

let test_csv_write_file () =
  let dir = Filename.temp_file "wfc_csv" "" in
  Sys.remove dir;
  let path = Filename.concat (Filename.concat dir "sub") "out.csv" in
  Csv.write_file path ~header:[ "h1"; "h2" ] ~rows:[ [ "1"; "2" ]; [ "3"; "4" ] ];
  let ic = open_in path in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Alcotest.(check (list string)) "contents" [ "h1,h2"; "1,2"; "3,4" ] lines

(* ---- Series ---- *)

let s1 = Series.make ~name:"a" ~points:[ (1., 10.); (2., 20.) ]
let s2 = Series.make ~name:"b" ~points:[ (1., 5.); (2., 40.) ]

let test_series_accessors () =
  Alcotest.(check string) "name" "a" (Series.name s1);
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "points"
    [ (1., 10.); (2., 20.) ] (Series.points s1);
  Alcotest.(check (float 0.)) "min" 10. (Series.min_y s1);
  Alcotest.(check (float 0.)) "max" 20. (Series.max_y s1)

let test_series_table () =
  let t = Series.to_table ~x_label:"n" [ s1; s2 ] in
  let rendered = Table.render t in
  Alcotest.(check bool) "has values" true
    (contains rendered "10.0000"
    && contains rendered "40.0000");
  let s3 = Series.make ~name:"c" ~points:[ (9., 1.) ] in
  expect_invalid (fun () -> ignore (Series.to_table ~x_label:"n" [ s1; s3 ]));
  expect_invalid (fun () -> ignore (Series.to_table ~x_label:"n" []))

let test_series_csv_rows () =
  let rows = Series.to_csv_rows [ s1; s2 ] in
  Alcotest.(check int) "row count" 4 (List.length rows);
  match rows with
  | [ "a"; x; y ] :: _ ->
      Alcotest.(check string) "x" "1" x;
      Alcotest.(check string) "y" "10" y
  | _ -> Alcotest.fail "unexpected first row"

let () =
  Alcotest.run "reporting"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "validation" `Quick test_table_validation;
          Alcotest.test_case "float row" `Quick test_table_float_row;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "line" `Quick test_csv_line;
          Alcotest.test_case "write file" `Quick test_csv_write_file;
        ] );
      ( "series",
        [
          Alcotest.test_case "accessors" `Quick test_series_accessors;
          Alcotest.test_case "table" `Quick test_series_table;
          Alcotest.test_case "csv rows" `Quick test_series_csv_rows;
        ] );
    ]
