(* Differential harness for the flat kernel. The contract is stronger than
   the incremental engine's: Flat_engine must agree with the Evaluator
   oracle at 1e-9 AND with Eval_engine bit for bit — same float operations
   in the same order, only the storage changes — after any interleaving of
   flips, batch assignments, rollbacks, commits and prefix queries. *)

open Wfc_core
module Builders = Wfc_dag.Builders
module FM = Wfc_platform.Failure_model

let rel_close a b = Wfc_test_util.close ~eps:1e-9 a b

let oracle model g ~order flags =
  Evaluator.expected_makespan model g
    (Schedule.make g ~order:(Array.copy order) ~checkpointed:(Array.copy flags))

(* ---- differential qcheck suite: flat = incremental (bitwise) = oracle --- *)

type op =
  | Flip of int
  | Set_all of bool array
  | Rollback
  | Commit
  | Prefix of int
  | Quiet_flip of int

let gen_scenario =
  let open QCheck2.Gen in
  let* g = Wfc_test_util.gen_dag ~max_n:9 () in
  let n = Wfc_dag.Dag.n_tasks g in
  let* model_idx = int_range 0 (List.length Wfc_test_util.models - 1) in
  let* ops =
    list_size (int_range 1 25)
      (frequency
         [
           (5, map (fun v -> Flip v) (int_range 0 (n - 1)));
           (2, map (fun v -> Quiet_flip v) (int_range 0 (n - 1)));
           (2, map (fun f -> Set_all f) (array_repeat n bool));
           (1, return Rollback);
           (1, return Commit);
           (2, map (fun i -> Prefix i) (int_range 0 n));
         ])
  in
  return (g, model_idx, ops)

let print_scenario (g, model_idx, ops) =
  Format.asprintf "%a model#%d ops[%s]" Wfc_dag.Dag.pp_stats g model_idx
    (String.concat "; "
       (List.map
          (function
            | Flip v -> Printf.sprintf "flip %d" v
            | Quiet_flip v -> Printf.sprintf "qflip %d" v
            | Set_all f ->
                Printf.sprintf "set %s"
                  (String.concat ""
                     (List.map (fun b -> if b then "1" else "0")
                        (Array.to_list f)))
            | Rollback -> "rollback"
            | Commit -> "commit"
            | Prefix i -> Printf.sprintf "prefix %d" i)
          ops))

let run_scenario (g, model_idx, ops) =
  let model = List.nth Wfc_test_util.models model_idx in
  let order = Wfc_dag.Dag.topological_order g in
  let flat = Flat_engine.create model g ~order in
  let inc = Eval_engine.create model g ~order in
  List.iter
    (fun op ->
      (match op with
      | Flip v ->
          let mf = Flat_engine.flip flat v in
          let mi = Eval_engine.flip inc v in
          if mf <> mi then
            Alcotest.failf "flip %d: flat %.17g <> inc %.17g" v mf mi
      | Quiet_flip v ->
          Flat_engine.flip_quiet flat v;
          let mi = Eval_engine.flip inc v in
          let mf = Flat_engine.current_makespan flat in
          if mf <> mi then
            Alcotest.failf "quiet flip %d: flat %.17g <> inc %.17g" v mf mi
      | Set_all f ->
          Flat_engine.set_flags flat f;
          Eval_engine.set_flags inc f
      | Rollback ->
          Flat_engine.rollback flat;
          Eval_engine.rollback inc
      | Commit ->
          Flat_engine.commit flat;
          Eval_engine.commit inc
      | Prefix upto ->
          let pf = Flat_engine.prefix_makespan flat ~upto in
          let pi = Eval_engine.prefix_makespan inc ~upto in
          if pf <> pi then
            Alcotest.failf "prefix %d: flat %.17g <> inc %.17g" upto pf pi);
      if Flat_engine.flags flat <> Eval_engine.flags inc then
        Alcotest.fail "flag vectors diverged";
      let mf = Flat_engine.makespan flat in
      let mi = Eval_engine.makespan inc in
      if mf <> mi then
        Alcotest.failf "makespan: flat %.17g <> inc %.17g" mf mi;
      let m' = oracle model g ~order (Flat_engine.flags flat) in
      if not (rel_close mf m') then
        Alcotest.failf "flat %.17g oracle %.17g" mf m')
    ops;
  true

let differential =
  Wfc_test_util.qtest ~count:500
    "any flip/set/rollback interleaving: flat = incremental (bitwise) = oracle"
    gen_scenario print_scenario run_scenario

let vectors_bitwise =
  Wfc_test_util.qtest ~count:200 "per-position and fault vectors bitwise"
    gen_scenario print_scenario (fun (g, model_idx, ops) ->
      let model = List.nth Wfc_test_util.models model_idx in
      let order = Wfc_dag.Dag.topological_order g in
      let flat = Flat_engine.create model g ~order in
      let inc = Eval_engine.create model g ~order in
      List.iter
        (function
          | Flip v | Quiet_flip v ->
              Flat_engine.flip_quiet flat v;
              ignore (Eval_engine.flip inc v)
          | Set_all f ->
              Flat_engine.set_flags flat f;
              Eval_engine.set_flags inc f
          | Rollback ->
              Flat_engine.rollback flat;
              Eval_engine.rollback inc
          | Commit ->
              Flat_engine.commit flat;
              Eval_engine.commit inc
          | Prefix _ -> ())
        ops;
      Flat_engine.per_position flat = Eval_engine.per_position inc
      && Flat_engine.fault_probability flat = Eval_engine.fault_probability inc
      && Flat_engine.suffix_makespan flat ~from:0
         = Eval_engine.suffix_makespan inc ~from:0)

(* the kernel's replay entries must be Lost_work's, bit for bit *)
let lost_entries_bitwise =
  Wfc_test_util.qtest ~count:200 "replay matrix bitwise = Lost_work"
    QCheck2.Gen.(
      pair (Wfc_test_util.gen_dag ~max_n:9 ()) (int_range 0 max_int))
    (fun (g, bits) -> Format.asprintf "%a bits=%d" Wfc_dag.Dag.pp_stats g bits)
    (fun (g, bits) ->
      let n = Wfc_dag.Dag.n_tasks g in
      let order = Wfc_dag.Dag.topological_order g in
      let flags = Array.init n (fun v -> (bits lsr (v mod 30)) land 1 = 1) in
      let model = List.hd Wfc_test_util.models in
      let flat = Flat_engine.create ~flags model g ~order in
      let lw =
        Lost_work.compute g (Schedule.make g ~order ~checkpointed:flags)
      in
      let ok = ref true in
      for i = 0 to n - 1 do
        for k = 0 to i do
          if
            Flat_engine.lost_entry flat ~last_fault:k ~position:i
            <> Lost_work.replay_time lw ~last_fault:k ~position:i
          then ok := false
        done
      done;
      !ok)

(* ---- structured fixed cases ---- *)

let flip_walk model g =
  let order = Wfc_dag.Dag.topological_order g in
  let n = Wfc_dag.Dag.n_tasks g in
  let flat = Flat_engine.create model g ~order in
  let inc = Eval_engine.create model g ~order in
  let check msg =
    let mf = Flat_engine.makespan flat and mi = Eval_engine.makespan inc in
    if mf <> mi then Alcotest.failf "%s: flat %.17g <> inc %.17g" msg mf mi;
    let m' = oracle model g ~order (Flat_engine.flags flat) in
    if not (rel_close mf m') then
      Alcotest.failf "%s: flat %.17g oracle %.17g" msg mf m'
  in
  check "initial";
  for v = 0 to n - 1 do
    Flat_engine.flip_quiet flat v;
    ignore (Eval_engine.flip inc v);
    check (Printf.sprintf "flip on %d" v)
  done;
  for v = n - 1 downto 0 do
    Flat_engine.flip_quiet flat v;
    ignore (Eval_engine.flip inc v);
    check (Printf.sprintf "flip off %d" v)
  done

let test_chain () =
  let g =
    Builders.chain
      ~weights:[| 6.; 2.; 8.; 4.; 5.; 3. |]
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ~recovery_cost:(fun _ w -> 0.15 *. w)
      ()
  in
  List.iter (fun model -> flip_walk model g) Wfc_test_util.models

let test_fork_and_join () =
  let fork =
    Builders.fork ~source_weight:5. ~sink_weights:[| 1.; 2.; 3.; 4. |]
      ~checkpoint_cost:(fun _ w -> 0.3 *. w)
      ~recovery_cost:(fun _ w -> 0.3 *. w)
      ()
  in
  let join =
    Builders.join
      ~source_weights:[| 4.; 3.; 2.; 1. |]
      ~sink_weight:6.
      ~checkpoint_cost:(fun _ w -> 0.1 *. w)
      ~recovery_cost:(fun _ w -> 0.1 *. w)
      ()
  in
  List.iter
    (fun model ->
      flip_walk model fork;
      flip_walk model join)
    Wfc_test_util.models

let test_single_task () =
  let g = Builders.chain ~weights:[| 7. |] ~checkpoint_cost:(fun _ _ -> 1.5) () in
  List.iter (fun model -> flip_walk model g) Wfc_test_util.models

let test_lambda_zero () =
  let g =
    Builders.chain
      ~weights:[| 2.; 3.; 4. |]
      ~checkpoint_cost:(fun _ _ -> 0.5)
      ()
  in
  let model = FM.make ~lambda:0. () in
  let engine = Flat_engine.create model g ~order:[| 0; 1; 2 |] in
  Alcotest.(check (float 1e-12)) "no flags" 9. (Flat_engine.makespan engine);
  ignore (Flat_engine.flip engine 1);
  Alcotest.(check (float 1e-12)) "one flag" 9.5 (Flat_engine.makespan engine);
  Flat_engine.set_flags engine [| true; true; true |];
  Alcotest.(check (float 1e-12)) "all flags" 10.5 (Flat_engine.makespan engine)

let test_rollback_is_bitwise () =
  let g =
    Builders.fork_join ~source_weight:4. ~middle_weights:[| 2.; 6. |]
      ~sink_weight:3.
      ~checkpoint_cost:(fun _ w -> 0.25 *. w)
      ()
  in
  let model = FM.make ~lambda:0.05 ~downtime:0.3 () in
  let order = Wfc_dag.Dag.topological_order g in
  let engine = Flat_engine.create model g ~order in
  let m0 = Flat_engine.makespan engine in
  Flat_engine.commit engine;
  ignore (Flat_engine.flip engine 0);
  ignore (Flat_engine.flip engine 2);
  Flat_engine.rollback engine;
  Alcotest.(check (float 0.)) "rollback restores bitwise" m0
    (Flat_engine.makespan engine);
  let fresh = Flat_engine.create model g ~order in
  ignore (Flat_engine.flip fresh 3);
  ignore (Flat_engine.flip engine 3);
  Alcotest.(check (float 0.)) "path-independent" (Flat_engine.makespan fresh)
    (Flat_engine.makespan engine)

let test_prefix_cursor () =
  (* the branch-and-bound access pattern: assign flags left to right asking
     only for prefix costs, with backtracking; flat and incremental cursors
     must hold bit-equal values at every horizon *)
  let g =
    let rng = Wfc_platform.Rng.create 11 in
    Builders.layered
      ~rand:(fun b -> Wfc_platform.Rng.int rng b)
      ~n_layers:3
      ~layer_width:(fun l -> if l = 1 then 3 else 2)
      ~weight:(fun i -> 2. +. float_of_int (i mod 3))
      ~checkpoint_cost:(fun _ _ -> 0.7)
      ~recovery_cost:(fun _ _ -> 0.4)
      ()
  in
  let model = FM.make ~lambda:0.08 ~downtime:0.1 () in
  let order = Wfc_dag.Dag.topological_order g in
  let n = Array.length order in
  let flat = Flat_engine.create model g ~order in
  let inc = Eval_engine.create model g ~order in
  let check_prefix upto =
    let pf = Flat_engine.prefix_makespan flat ~upto in
    let pi = Eval_engine.prefix_makespan inc ~upto in
    if pf <> pi then
      Alcotest.failf "prefix %d: flat %.17g <> inc %.17g" upto pf pi
  in
  let rec walk i =
    if i < n then begin
      List.iter
        (fun b ->
          Flat_engine.set_flag_at flat ~pos:i b;
          Eval_engine.set_flag_at inc ~pos:i b;
          check_prefix (i + 1);
          if i < 3 then walk (i + 1))
        [ true; false ]
    end
  in
  walk 0;
  check_prefix n

(* ---- model rebinding ---- *)

let test_set_model () =
  let g =
    Builders.fork_join ~source_weight:2. ~middle_weights:[| 3.; 1.; 4. |]
      ~sink_weight:2.
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ()
  in
  let order = Wfc_dag.Dag.topological_order g in
  let m0 = FM.make ~lambda:1e-3 ~downtime:1. () in
  let m1 = FM.make ~lambda:0.07 ~downtime:0.4 () in
  let flat = Flat_engine.create m0 g ~order in
  let inc = Eval_engine.create m0 g ~order in
  ignore (Flat_engine.flip flat 1);
  ignore (Eval_engine.flip inc 1);
  Flat_engine.set_model flat m1;
  Eval_engine.set_model inc m1;
  ignore (Flat_engine.flip flat 3);
  ignore (Eval_engine.flip inc 3);
  Alcotest.(check (float 0.)) "post-rebind bitwise" (Eval_engine.makespan inc)
    (Flat_engine.makespan flat);
  (* and a rebind to lambda = 0 and back *)
  Flat_engine.set_model flat (FM.make ~lambda:0. ());
  Eval_engine.set_model inc (FM.make ~lambda:0. ());
  Alcotest.(check (float 0.)) "lambda 0 bitwise" (Eval_engine.makespan inc)
    (Flat_engine.makespan flat);
  Flat_engine.set_model flat m1;
  Eval_engine.set_model inc m1;
  Alcotest.(check (float 0.)) "back again" (Eval_engine.makespan inc)
    (Flat_engine.makespan flat)

(* ---- allocation guard ---- *)

let test_flip_allocates_nothing () =
  (* the whole steady-state move — flip_quiet + full revalidation — must not
     touch the minor heap. Only meaningful under ocamlopt; the bytecode
     runtime boxes freely. *)
  if Sys.backend_type <> Sys.Native then ()
  else begin
    let rng = Wfc_platform.Rng.create 3 in
    let g =
      Builders.layered
        ~rand:(fun b -> Wfc_platform.Rng.int rng b)
        ~n_layers:5
        ~layer_width:(fun _ -> 6)
        ~weight:(fun i -> 1. +. float_of_int (i mod 7))
        ~checkpoint_cost:(fun _ w -> 0.2 *. w)
        ~recovery_cost:(fun _ w -> 0.1 *. w)
        ()
    in
    let model = FM.make ~lambda:0.02 ~downtime:0.5 () in
    let order = Wfc_dag.Dag.topological_order g in
    let n = Array.length order in
    let engine = Flat_engine.create model g ~order in
    ignore (Flat_engine.makespan engine);
    (* warm every code path once (rebuilds, transforms, steps) *)
    for v = 0 to n - 1 do
      Flat_engine.flip_quiet engine v
    done;
    let rounds = 1000 in
    let before = Gc.minor_words () in
    for j = 0 to rounds - 1 do
      Flat_engine.flip_quiet engine (j mod n)
    done;
    let after = Gc.minor_words () in
    let per_flip = (after -. before) /. float_of_int rounds in
    if per_flip > 0.5 then
      Alcotest.failf "flip_quiet allocates %.2f minor words per flip" per_flip
  end

let () =
  Alcotest.run "flat_engine"
    [
      ( "differential",
        [ differential; vectors_bitwise; lost_entries_bitwise ] );
      ( "structures",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "fork and join" `Quick test_fork_and_join;
          Alcotest.test_case "single task" `Quick test_single_task;
          Alcotest.test_case "lambda = 0" `Quick test_lambda_zero;
        ] );
      ( "state",
        [
          Alcotest.test_case "rollback bitwise" `Quick test_rollback_is_bitwise;
          Alcotest.test_case "prefix cursor" `Quick test_prefix_cursor;
          Alcotest.test_case "set_model" `Quick test_set_model;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "flip_quiet is allocation-free" `Quick
            test_flip_allocates_nothing;
        ] );
    ]
