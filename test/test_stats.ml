module Stats = Wfc_platform.Stats

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let of_list xs =
  let s = Stats.create () in
  List.iter (Stats.add s) xs;
  s

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  expect_invalid (fun () -> ignore (Stats.mean s));
  expect_invalid (fun () -> ignore (Stats.std_error s));
  expect_invalid (fun () -> ignore (Stats.min_value s))

let test_known_values () =
  let s = of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check int) "count" 8 (Stats.count s);
  Wfc_test_util.check_close "mean" 5. (Stats.mean s);
  (* sample variance with Bessel correction: sum sq dev = 32, / 7 *)
  Wfc_test_util.check_close "variance" (32. /. 7.) (Stats.variance s);
  Wfc_test_util.check_close "stddev" (Float.sqrt (32. /. 7.)) (Stats.stddev s);
  Alcotest.(check (float 1e-12)) "min" 2. (Stats.min_value s);
  Alcotest.(check (float 1e-12)) "max" 9. (Stats.max_value s)

let test_single_sample () =
  let s = of_list [ 3.5 ] in
  Wfc_test_util.check_close "mean" 3.5 (Stats.mean s);
  Alcotest.(check (float 0.)) "variance" 0. (Stats.variance s)

let test_std_error_and_ci () =
  let s = of_list [ 1.; 2.; 3.; 4.; 5. ] in
  let se = Stats.std_error s in
  Wfc_test_util.check_close "stderr" (Stats.stddev s /. Float.sqrt 5.) se;
  let lo, hi = Stats.confidence95 s in
  Wfc_test_util.check_close "ci lo" (3. -. (1.96 *. se)) lo;
  Wfc_test_util.check_close "ci hi" (3. +. (1.96 *. se)) hi

let test_merge () =
  let a = of_list [ 1.; 2.; 3. ] and b = of_list [ 10.; 20. ] in
  let m = Stats.merge a b in
  let direct = of_list [ 1.; 2.; 3.; 10.; 20. ] in
  Alcotest.(check int) "count" 5 (Stats.count m);
  Wfc_test_util.check_close "mean" (Stats.mean direct) (Stats.mean m);
  Wfc_test_util.check_close "variance" (Stats.variance direct) (Stats.variance m);
  Alcotest.(check (float 0.)) "min" 1. (Stats.min_value m);
  Alcotest.(check (float 0.)) "max" 20. (Stats.max_value m)

let test_merge_empty () =
  let a = of_list [ 1.; 2. ] and e = Stats.create () in
  Wfc_test_util.check_close "left empty" (Stats.mean a)
    (Stats.mean (Stats.merge e a));
  Wfc_test_util.check_close "right empty" (Stats.mean a)
    (Stats.mean (Stats.merge a e))

let test_numerical_stability () =
  (* Welford must not lose the variance of tiny fluctuations around a huge
     offset. *)
  let offset = 1e9 in
  let s = of_list (List.init 1000 (fun i -> offset +. float_of_int (i mod 2))) in
  Wfc_test_util.check_close ~eps:1e-6 "variance of 0/1 pattern"
    (0.25 *. 1000. /. 999.)
    (Stats.variance s)

(* ---- Sample_set ---- *)

module SS = Wfc_platform.Sample_set

let sample_of_list xs =
  let t = SS.create () in
  List.iter (SS.add t) xs;
  t

let test_sample_set_basics () =
  let t = sample_of_list [ 5.; 1.; 3.; 2.; 4. ] in
  Alcotest.(check int) "count" 5 (SS.count t);
  Wfc_test_util.check_close "mean" 3. (SS.mean t);
  Alcotest.(check (array (float 0.))) "sorted" [| 1.; 2.; 3.; 4.; 5. |]
    (SS.sorted t);
  Wfc_test_util.check_close "median" 3. (SS.median t);
  (* adding after sorting keeps working *)
  SS.add t 0.;
  Alcotest.(check (array (float 0.))) "resorted" [| 0.; 1.; 2.; 3.; 4.; 5. |]
    (SS.sorted t)

let test_sample_set_quantiles () =
  let t = sample_of_list [ 10.; 20.; 30.; 40. ] in
  Wfc_test_util.check_close "q0" 10. (SS.quantile t 0.);
  Wfc_test_util.check_close "q1" 40. (SS.quantile t 1.);
  (* type-7 interpolation: h = 0.5 * 3 = 1.5 -> 20 + 0.5 * 10 *)
  Wfc_test_util.check_close "median interpolated" 25. (SS.quantile t 0.5);
  Wfc_test_util.check_close "q 1/3" 20. (SS.quantile t (1. /. 3.));
  expect_invalid (fun () -> ignore (SS.quantile t 1.5));
  expect_invalid (fun () -> ignore (SS.quantile (SS.create ()) 0.5))

let test_sample_set_cvar () =
  let t = sample_of_list [ 10.; 20.; 30.; 40. ] in
  (* by hand on the type-7 interpolant: Q(0.5) = 25, and the tail integral
     is 0.5 * (25 + 30) / 2 + (30 + 40) / 2 = 48.75 over index mass 1.5 *)
  Wfc_test_util.check_close "cvar 0.5" 32.5 (SS.cvar t 0.5);
  (* cvar 0 is the mean of the interpolated distribution *)
  Wfc_test_util.check_close "cvar 0" 25. (SS.cvar t 0.);
  Wfc_test_util.check_close "cvar 1 = max" 40. (SS.cvar t 1.);
  (* dominates the quantile at every level *)
  List.iter
    (fun q ->
      if SS.cvar t q < SS.quantile t q then
        Alcotest.failf "cvar %g below quantile" q)
    [ 0.; 0.25; 0.5; 0.75; 0.9; 1. ];
  let single = sample_of_list [ 7. ] in
  Wfc_test_util.check_close "singleton" 7. (SS.cvar single 0.3);
  expect_invalid (fun () -> ignore (SS.cvar t 1.5));
  expect_invalid (fun () -> ignore (SS.cvar (SS.create ()) 0.5))

let test_cvar_exponential_tail () =
  (* for Exp(rate) the closed forms are VaR_q = ln(1/(1-q)) / rate and
     CVaR_q = VaR_q + 1/rate; 200k samples pin both to a percent or so *)
  let rate = 0.5 in
  let rng = Wfc_platform.Rng.create 42 in
  let t = SS.create () in
  for _ = 1 to 200_000 do
    SS.add t (Wfc_platform.Rng.exponential rng ~rate)
  done;
  List.iter
    (fun q ->
      let var = Float.log (1. /. (1. -. q)) /. rate in
      Wfc_test_util.check_close ~eps:0.02
        (Printf.sprintf "VaR %g" q)
        var (SS.quantile t q);
      Wfc_test_util.check_close ~eps:0.02
        (Printf.sprintf "CVaR %g" q)
        (var +. (1. /. rate))
        (SS.cvar t q))
    [ 0.9; 0.95; 0.99 ]

let test_sample_set_to_stats () =
  let t = sample_of_list [ 1.; 2.; 3. ] in
  let s = SS.to_stats t in
  Alcotest.(check int) "count" 3 (Stats.count s);
  Wfc_test_util.check_close "mean" 2. (Stats.mean s)

let test_sample_set_growth () =
  let t = SS.create () in
  for i = 1 to 1000 do
    SS.add t (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (SS.count t);
  Wfc_test_util.check_close "q99" 990.01 (SS.quantile t 0.99)

let () =
  Alcotest.run "stats"
    [
      ( "sample_set",
        [
          Alcotest.test_case "basics" `Quick test_sample_set_basics;
          Alcotest.test_case "quantiles" `Quick test_sample_set_quantiles;
          Alcotest.test_case "cvar" `Quick test_sample_set_cvar;
          Alcotest.test_case "cvar exponential tail" `Quick
            test_cvar_exponential_tail;
          Alcotest.test_case "to_stats" `Quick test_sample_set_to_stats;
          Alcotest.test_case "growth" `Quick test_sample_set_growth;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "known values" `Quick test_known_values;
          Alcotest.test_case "single sample" `Quick test_single_sample;
          Alcotest.test_case "std error and CI" `Quick test_std_error_and_ci;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "merge with empty" `Quick test_merge_empty;
          Alcotest.test_case "numerical stability" `Quick
            test_numerical_stability;
        ] );
    ]
