Golden corpus regression rig. The committed mini-corpus under corpus/
(two Pegasus DAX files, one WfCommons instance, one native JSON file)
is swept across the relative-MTBF scenario grid; the sweep is fully
analytic, so these tables are byte-stable pins: any drift in the
loaders, the evaluator or the heuristics shows up as a diff here.

  $ ../bin/wfc.exe corpus corpus --grid 8 --exact-budget 100000
  scenario mtbf=0.1W (backend incremental)
  workflow            fmt        n   DF-CkptNvr  DF-CkptAlws  DF-CkptW  DF-CkptC  DF-CkptD  DF-CkptPer  best      exact
  ------------------  ---------  --  ----------  -----------  --------  --------  --------  ----------  --------  -------------
  cybershake-12.json  json       12  1080.7358   5.0503       5.0637    21.2768   4.9937    6.1998      DF-CkptD  exact 4.9389
  diamond.dax         dax        4   2202.5466   14.2857      14.2282   37.0902   14.2282   79.7892     DF-CkptW  exact 14.2282
  epigenomics-7.json  wfcommons  7   2202.5466   11.1148      11.2028   20.1204   11.1093   21.4268     DF-CkptD  exact 11.1093
  montage-20.dax      dax        20  2202.5466   1.8502       1.8492    2.1903    1.8492    2.1438      DF-CkptW  exact 1.8491
  
  scenario mtbf=1W (backend incremental)
  workflow            fmt        n   DF-CkptNvr  DF-CkptAlws  DF-CkptW  DF-CkptC  DF-CkptD  DF-CkptPer  best      exact
  ------------------  ---------  --  ----------  -----------  --------  --------  --------  ----------  --------  ------------
  cybershake-12.json  json       12  1.6805      1.2443       1.2444    1.3508    1.2185    1.2895      DF-CkptD  exact 1.2170
  diamond.dax         dax        4   1.7183      1.3453       1.3334    1.4744    1.3322    1.4986      DF-CkptD  exact 1.3322
  epigenomics-7.json  wfcommons  7   1.7183      1.3147       1.3177    1.4524    1.3037    1.3528      DF-CkptD  exact 1.2928
  montage-20.dax      dax        20  1.7183      1.1631       1.1622    1.1635    1.1549    1.1668      DF-CkptD  exact 1.1519
  
  scenario mtbf=10W (backend incremental)
  workflow            fmt        n   DF-CkptNvr  DF-CkptAlws  DF-CkptW  DF-CkptC  DF-CkptD  DF-CkptPer  best        exact
  ------------------  ---------  --  ----------  -----------  --------  --------  --------  ----------  ----------  ------------
  cybershake-12.json  json       12  1.0500      1.1136       1.0644    1.0502    1.0509    1.0500      DF-CkptNvr  exact 1.0500
  diamond.dax         dax        4   1.0517      1.1220       1.0789    1.0628    1.0570    1.0517      DF-CkptNvr  exact 1.0517
  epigenomics-7.json  wfcommons  7   1.0517      1.1196       1.0670    1.0519    1.0531    1.0517      DF-CkptNvr  exact 1.0517
  montage-20.dax      dax        20  1.0517      1.1063       1.0450    1.0526    1.0525    1.0463      DF-CkptW    exact 1.0440

The report is byte-identical across runs and domain counts:

  $ ../bin/wfc.exe corpus corpus --grid 8 --exact-budget 100000 > base.txt
  $ ../bin/wfc.exe corpus corpus --grid 8 --exact-budget 100000 --domains 4 > par.txt
  $ cmp base.txt par.txt

...and across evaluation backends (only the backend label may differ):

  $ ../bin/wfc.exe corpus corpus --grid 8 --exact-budget 100000 --engine flat \
  >   | sed 's/backend flat/backend incremental/' > flat.txt
  $ cmp base.txt flat.txt
  $ ../bin/wfc.exe corpus corpus --grid 8 --exact-budget 100000 --engine naive \
  >   | sed 's/backend naive/backend incremental/' > naive.txt
  $ cmp base.txt naive.txt

The JSON report is deterministic too:

  $ ../bin/wfc.exe corpus corpus --json r1.json > /dev/null
  $ ../bin/wfc.exe corpus corpus --json r2.json --domains 4 > /dev/null
  $ cmp r1.json r2.json

Undecodable files are reported and skipped; the sweep continues:

  $ mkdir mixed
  $ cp corpus/diamond.dax mixed/
  $ printf '{ broken' > mixed/bad.json
  $ ../bin/wfc.exe corpus mixed --mtbf-ratios 1 --grid 8
  skipped mixed/bad.json: mixed/bad.json: JSON parse error at offset 2: expected "
  scenario mtbf=1W (backend incremental)
  workflow     fmt  n  DF-CkptNvr  DF-CkptAlws  DF-CkptW  DF-CkptC  DF-CkptD  DF-CkptPer  best
  -----------  ---  -  ----------  -----------  --------  --------  --------  ----------  --------
  diamond.dax  dax  4  1.7183      1.3453       1.3334    1.4744    1.3322    1.4986      DF-CkptD

Nonsense options die as one-line usage errors (exit 124), never as
exceptions:

  $ ../bin/wfc.exe corpus corpus --mtbf-ratios 0.1,-2
  wfc: option '--mtbf-ratios': invalid MTBF ratio "-2": expected positive
       multiples of the total weight (e.g. 0.1,1,10) or 'none'
  Usage: wfc corpus [OPTION]… DIR
  Try 'wfc corpus --help' or 'wfc --help' for more information.
  [124]
  $ ../bin/wfc.exe corpus corpus --failures exp:-1
  wfc: option '--failures': Distribution.exponential: rate must be positive
  Usage: wfc corpus [OPTION]… DIR
  Try 'wfc corpus --help' or 'wfc --help' for more information.
  [124]
  $ ../bin/wfc.exe corpus corpus --replicas k:0
  wfc: option '--replicas': invalid replication policy "k:0": expected auto,
       none, k:N (N >= 1) or budget:F (F > 0)
  Usage: wfc corpus [OPTION]… DIR
  Try 'wfc corpus --help' or 'wfc --help' for more information.
  [124]
  $ ../bin/wfc.exe corpus corpus --engine turbo
  wfc: option '--engine': unknown engine 'turbo' (naive, incremental or flat)
  Usage: wfc corpus [OPTION]… DIR
  Try 'wfc corpus --help' or 'wfc --help' for more information.
  [124]
  $ ../bin/wfc.exe corpus /no/such/dir
  wfc: DIR argument: no '/no/such/dir' directory
  Usage: wfc corpus [OPTION]… DIR
  Try 'wfc corpus --help' or 'wfc --help' for more information.
  [124]
  $ ../bin/wfc.exe corpus corpus --mtbf-ratios none
  no failure scenarios: give --mtbf-ratios or --failures
  [1]

The FIG=corpus bench guard re-runs the sweep under every backend and a
different domain count, requires byte-identical reports, and writes
BENCH_corpus.json:

  $ CORPUS_DIR=corpus CORPUS_BUDGET=20000 FIG=corpus ../bench/main.exe | grep PASS
  PASS: 4 instances x 3 scenarios byte-identical across engines and domain counts; wrote BENCH_corpus.json
