(* Observability layer: registry exactness under concurrent recording,
   histogram merge laws, span nesting, and export round-trips — plus the
   end-to-end guarantees the CLI relies on (valid Chrome JSON from a real
   solver run, engine-independent simulator counts). *)

open Wfc_core
module Metrics = Wfc_obs.Metrics
module Trace = Wfc_obs.Trace
module Json = Wfc_io.Json
module Pool = Wfc_platform.Domain_pool

let qtest = Wfc_test_util.qtest

(* Each test arms the layer, runs, then disarms and wipes so the suites
   stay independent (the registry and trace buffers are process-global). *)
let with_obs f =
  Metrics.set_enabled true;
  Trace.set_enabled true;
  Metrics.reset ();
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Trace.set_enabled false;
      Trace.set_clock (fun () -> Unix.gettimeofday ());
      Metrics.reset ();
      Trace.reset ())
    f

(* ---- metrics: counters under concurrency ------------------------------ *)

let test_counter_concurrent =
  qtest ~count:30 "counters are exact under concurrent recording"
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 5_000))
    QCheck2.Print.(pair int int)
    (fun (domains, per_domain) ->
      with_obs @@ fun () ->
      let c = Metrics.counter "obs.test.concurrent" in
      ignore
        (Pool.run ~domains (fun i ->
             for _ = 1 to per_domain do
               Metrics.incr c
             done;
             Metrics.add c i));
      Metrics.counter_value c
      = (domains * per_domain) + (domains * (domains - 1) / 2))

(* ---- metrics: histogram bucketing and merge laws ----------------------- *)

(* Reference snapshot computed sequentially, against which the sharded
   implementation must agree however recording was interleaved. *)
let snap_of samples =
  let buckets = Array.make Metrics.n_buckets 0 in
  List.iter
    (fun x ->
      let b = Metrics.bucket_of x in
      buckets.(b) <- buckets.(b) + 1)
    samples;
  {
    Metrics.hcount = List.length samples;
    hsum = List.fold_left ( +. ) 0. samples;
    buckets;
  }

let same_hist a b =
  a.Metrics.hcount = b.Metrics.hcount
  && a.Metrics.buckets = b.Metrics.buckets
  && Wfc_test_util.close ~eps:1e-9 a.Metrics.hsum b.Metrics.hsum

let gen_samples =
  QCheck2.Gen.(list_size (int_range 0 200) (float_range 1e-6 1e6))

let test_hist_merge_assoc =
  qtest ~count:100 "histogram merge is associative and commutative"
    QCheck2.Gen.(triple gen_samples gen_samples gen_samples)
    QCheck2.Print.(triple (list float) (list float) (list float))
    (fun (xs, ys, zs) ->
      let a = snap_of xs and b = snap_of ys and c = snap_of zs in
      let m = Metrics.hist_merge in
      same_hist (m (m a b) c) (m a (m b c))
      && same_hist (m a b) (m b a)
      && same_hist (m a Metrics.hist_empty) a
      && same_hist (m Metrics.hist_empty a) a)

let test_hist_shards_order_invariant =
  qtest ~count:30 "sharded histogram equals sequential reference"
    QCheck2.Gen.(pair (int_range 1 6) gen_samples)
    QCheck2.Print.(pair int (list float))
    (fun (domains, samples) ->
      with_obs @@ fun () ->
      let h = Metrics.histogram "obs.test.hist" in
      let arr = Array.of_list samples in
      let slices = Pool.chunks ~total:(Array.length arr) ~domains in
      (if Array.length slices > 0 then
         ignore
           (Pool.run ~domains:(Array.length slices) (fun i ->
                let start, len = slices.(i) in
                for j = start to start + len - 1 do
                  Metrics.observe h arr.(j)
                done)));
      same_hist (Metrics.hist_value h) (snap_of samples))

let test_hist_quantile () =
  with_obs @@ fun () ->
  let h = Metrics.histogram "obs.test.quantile" in
  List.iter (Metrics.observe h) [ 1.; 2.; 4.; 1000. ];
  let s = Metrics.hist_value h in
  (* quantiles are bucket upper bounds: monotone and bracketing the data *)
  let q50 = Metrics.hist_quantile s 0.5 and q99 = Metrics.hist_quantile s 0.99 in
  Alcotest.(check bool) "p50 <= p99" true (q50 <= q99);
  Alcotest.(check bool) "p50 bounds the median sample" true (q50 >= 2.);
  Alcotest.(check bool) "p99 bounds the top sample" true (q99 >= 1000.);
  Alcotest.(check (float 0.)) "empty histogram quantile" 0.
    (Metrics.hist_quantile Metrics.hist_empty 0.5)

(* ---- trace: span nesting ----------------------------------------------- *)

(* Random span tree, executed under a deterministic strictly-increasing
   clock; every recorded span must sit properly inside its parent. *)
type span_tree = Node of span_tree list

let gen_tree =
  QCheck2.Gen.(
    sized_size (int_range 1 40) @@ fix (fun self n ->
        if n <= 1 then return (Node [])
        else
          let* k = int_range 0 3 in
          let* children = list_size (return k) (self (n / 4)) in
          return (Node children)))

let rec count_nodes (Node children) =
  1 + List.fold_left (fun acc t -> acc + count_nodes t) 0 children

let rec exec_tree (Node children) =
  Trace.with_span "node" (fun () -> List.iter exec_tree children)

let laminar (a : Trace.event) (b : Trace.event) =
  let s1 = a.Trace.ts and e1 = a.Trace.ts +. a.Trace.dur in
  let s2 = b.Trace.ts and e2 = b.Trace.ts +. b.Trace.dur in
  let nested = s2 >= s1 && e2 <= e1 in
  let contains = s1 >= s2 && e1 <= e2 in
  let disjoint = e1 <= s2 || e2 <= s1 in
  nested || contains || disjoint

let properly_nested evs =
  List.for_all
    (fun (e : Trace.event) ->
      e.Trace.depth = 0
      || List.exists
           (fun (p : Trace.event) ->
             p.Trace.depth = e.Trace.depth - 1
             && p.Trace.ts <= e.Trace.ts
             && e.Trace.ts +. e.Trace.dur <= p.Trace.ts +. p.Trace.dur)
           evs)
    evs

let test_span_nesting =
  qtest ~count:100 "spans nest properly under a deterministic clock" gen_tree
    (fun t -> string_of_int (count_nodes t))
    (fun tree ->
      with_obs @@ fun () ->
      let tick = ref 0. in
      Trace.set_clock (fun () -> tick := !tick +. 1.; !tick);
      Trace.reset ();
      exec_tree tree;
      let evs = Trace.events () in
      List.length evs = count_nodes tree
      && List.for_all (fun a -> List.for_all (laminar a) evs) evs
      && properly_nested evs)

let test_span_records_on_raise () =
  with_obs @@ fun () ->
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span recorded despite the raise" 1 (Trace.event_count ());
  match Trace.events () with
  | [ e ] -> Alcotest.(check string) "name" "boom" e.Trace.name
  | _ -> Alcotest.fail "expected exactly one event"

(* ---- trace: JSONL round-trip ------------------------------------------- *)

let field name j =
  match Json.member name j with
  | Ok v -> v
  | Error e -> Alcotest.failf "missing %s: %s" name e

let to_str j =
  match Json.to_string_value j with Ok s -> s | Error e -> Alcotest.fail e

let to_num j =
  match Json.to_float j with Ok f -> f | Error e -> Alcotest.fail e

let event_of_jsonl line =
  match Json.of_string line with
  | Error e -> Alcotest.failf "unparsable JSONL line %S: %s" line e
  | Ok j ->
      {
        Trace.name = to_str (field "name" j);
        ts = to_num (field "ts" j);
        dur = to_num (field "dur" j);
        kind =
          (match to_str (field "type" j) with
          | "span" -> `Span
          | "instant" -> `Instant
          | k -> Alcotest.failf "unknown event type %S" k);
        tid = int_of_float (to_num (field "tid" j));
        depth = int_of_float (to_num (field "depth" j));
        args =
          (match Json.member "args" j with
          | Ok (Json.Assoc kvs) -> List.map (fun (k, v) -> (k, to_str v)) kvs
          | _ -> []);
      }

let test_jsonl_round_trip () =
  with_obs @@ fun () ->
  let tick = ref 0. in
  Trace.set_clock (fun () -> tick := !tick +. 0.125; !tick);
  Trace.reset ();
  Trace.with_span "outer" ~args:[ ("k", "v\"quoted\""); ("n", "2") ]
    (fun () ->
      Trace.instant "mark" ~args:[ ("tab", "a\tb") ];
      Trace.with_span "inner" (fun () -> ()));
  let original = Trace.events () in
  let lines =
    String.split_on_char '\n' (Trace.to_jsonl ())
    |> List.filter (fun l -> l <> "")
  in
  let parsed = List.map event_of_jsonl lines in
  Alcotest.(check int) "event count survives" (List.length original)
    (List.length parsed);
  List.iter2
    (fun (a : Trace.event) (b : Trace.event) ->
      Alcotest.(check string) "name" a.Trace.name b.Trace.name;
      Alcotest.(check (float 0.)) "ts exact" a.Trace.ts b.Trace.ts;
      Alcotest.(check (float 0.)) "dur exact" a.Trace.dur b.Trace.dur;
      Alcotest.(check int) "tid" a.Trace.tid b.Trace.tid;
      Alcotest.(check int) "depth" a.Trace.depth b.Trace.depth;
      Alcotest.(check bool) "kind" true (a.Trace.kind = b.Trace.kind);
      Alcotest.(check (list (pair string string))) "args" a.Trace.args b.Trace.args)
    original parsed

let test_jsonl_random_round_trip =
  qtest ~count:50 "JSONL export round-trips random span trees" gen_tree
    (fun t -> string_of_int (count_nodes t))
    (fun tree ->
      with_obs @@ fun () ->
      let tick = ref 0. in
      (* awkward increments so ts/dur exercise full float precision *)
      Trace.set_clock (fun () -> tick := !tick +. 0.1; !tick);
      Trace.reset ();
      exec_tree tree;
      let original = Trace.events () in
      let parsed =
        String.split_on_char '\n' (Trace.to_jsonl ())
        |> List.filter (fun l -> l <> "")
        |> List.map event_of_jsonl
      in
      original = parsed)

(* ---- end to end: Chrome trace of a real solver run --------------------- *)

let genome n =
  Wfc_workflows.Cost_model.apply
    (Wfc_workflows.Cost_model.Proportional 0.1)
    (Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Genome ~n ~seed:7)

let fm = Wfc_platform.Failure_model.make ~lambda:1e-3 ()

let test_chrome_export_valid () =
  with_obs @@ fun () ->
  let g = genome 12 in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  let d = Wfc_resilience.Solver_driver.solve fm g ~order in
  ignore
    (Wfc_simulator.Monte_carlo.estimate ~runs:100 ~seed:3 fm g
       d.Wfc_resilience.Solver_driver.schedule);
  (* the exported JSON must parse and carry well-formed events *)
  let json =
    match Json.of_string (Trace.to_chrome ()) with
    | Ok j -> j
    | Error e -> Alcotest.failf "Chrome export is not valid JSON: %s" e
  in
  let evs =
    match Json.to_list (field "traceEvents" json) with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "has events" true (List.length evs > 0);
  let last_ts = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let ph = to_str (field "ph" e) in
      Alcotest.(check bool) "ph is X or i" true (ph = "X" || ph = "i");
      let tid = int_of_float (to_num (field "tid" e)) in
      let ts = to_num (field "ts" e) in
      Alcotest.(check bool) "ts non-negative" true (ts >= 0.);
      (match Hashtbl.find_opt last_ts tid with
      | Some prev ->
          Alcotest.(check bool) "ts monotone within tid" true (ts >= prev)
      | None -> ());
      Hashtbl.replace last_ts tid ts;
      if ph = "X" then
        Alcotest.(check bool) "dur non-negative" true
          (to_num (field "dur" e) >= 0.))
    evs;
  (* and the recorded spans must form a laminar family per domain *)
  let spans =
    List.filter (fun (e : Trace.event) -> e.Trace.kind = `Span) (Trace.events ())
  in
  Alcotest.(check bool) "driver span present" true
    (List.exists (fun (e : Trace.event) -> e.Trace.name = "driver.solve") spans);
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a.Trace.tid = b.Trace.tid && not (laminar a b) then
            Alcotest.failf "spans %s and %s overlap without nesting"
              a.Trace.name b.Trace.name)
        spans)
    spans

let counter_at snapshot name =
  match List.assoc_opt name snapshot.Metrics.counters with
  | Some v -> v
  | None -> 0

let test_solver_counters_nonzero () =
  with_obs @@ fun () ->
  let g = genome 12 in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  let sol, status =
    Exact_solver.optimal_checkpoints_within ~max_nodes:100_000
      ~backend:Eval_engine.Incremental fm g ~order
  in
  Alcotest.(check bool) "solved" true (status = `Optimal);
  let s = Metrics.snapshot () in
  Alcotest.(check int) "bnb.nodes matches the solver's own count"
    sol.Exact_solver.nodes (counter_at s "bnb.nodes");
  Alcotest.(check bool) "bnb nodes recorded" true (counter_at s "bnb.nodes" > 0);
  Alcotest.(check bool) "engine cache hits recorded" true
    (counter_at s "engine.row_hits" > 0);
  Alcotest.(check bool) "engine queries recorded" true
    (counter_at s "engine.queries" > 0)

(* ---- end to end: simulator counts are engine-independent --------------- *)

let sim_counters backend =
  Metrics.reset ();
  let g = genome 14 in
  let o =
    Heuristics.run ~backend fm g ~lin:Wfc_dag.Linearize.Depth_first
      ~ckpt:Heuristics.Ckpt_weight
  in
  ignore
    (Wfc_simulator.Monte_carlo.estimate ~runs:400 ~seed:5 fm g
       o.Heuristics.schedule);
  let s = Metrics.snapshot () in
  List.filter (fun (name, _) -> String.starts_with ~prefix:"sim." name)
    s.Metrics.counters

let test_sim_counts_engine_independent () =
  with_obs @@ fun () ->
  let naive = sim_counters Eval_engine.Naive in
  let incr = sim_counters Eval_engine.Incremental in
  Alcotest.(check (list (pair string int)))
    "replica/failure/recovery counts identical across engines" naive incr;
  Alcotest.(check bool) "replicas recorded" true
    (List.assoc "sim.replicas" naive = 400)

(* ---- near-zero disabled cost ------------------------------------------- *)

let test_disabled_records_nothing () =
  Metrics.set_enabled false;
  Trace.set_enabled false;
  Metrics.reset ();
  Trace.reset ();
  let c = Metrics.counter "obs.test.disabled" in
  Metrics.incr c;
  Metrics.add c 41;
  Trace.with_span "ignored" (fun () -> Trace.instant "also ignored");
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check int) "no events" 0 (Trace.event_count ())

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          test_counter_concurrent;
          test_hist_merge_assoc;
          test_hist_shards_order_invariant;
          Alcotest.test_case "histogram quantiles" `Quick test_hist_quantile;
          Alcotest.test_case "disabled layer records nothing" `Quick
            test_disabled_records_nothing;
        ] );
      ( "trace",
        [
          test_span_nesting;
          Alcotest.test_case "span recorded on raise" `Quick
            test_span_records_on_raise;
          Alcotest.test_case "JSONL round-trip (crafted)" `Quick
            test_jsonl_round_trip;
          test_jsonl_random_round_trip;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "Chrome export parses and nests" `Quick
            test_chrome_export_valid;
          Alcotest.test_case "solver counters nonzero" `Quick
            test_solver_counters_nonzero;
          Alcotest.test_case "sim counts engine-independent" `Quick
            test_sim_counts_engine_independent;
        ] );
    ]
