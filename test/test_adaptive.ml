(* The adaptive executor: determinism when replanning is off, suffix-replan
   backend agreement, trigger/estimation semantics, plan validation, and the
   headline property — adaptivity beats a misspecified static plan. *)

module D = Wfc_platform.Distribution
module FM = Wfc_platform.Failure_model
module Rng = Wfc_platform.Rng
module Sim = Wfc_simulator.Sim
module SA = Wfc_simulator.Sim_adaptive
module T = Wfc_simulator.Trace_io
module SD = Wfc_resilience.Solver_driver
module E = Wfc_core.Eval_engine

let same_run (a : Sim.run) (b : Sim.run) =
  a.Sim.makespan = b.Sim.makespan
  && a.Sim.failures = b.Sim.failures
  && a.Sim.wasted = b.Sim.wasted

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let no_replan planning = { (SA.default_config planning) with SA.replan = None }

(* ---- determinism: replanning disabled = the static engine -------------- *)

let prop_disabled_is_static =
  Wfc_test_util.qtest ~count:120 "replay with replanning off = static run"
    QCheck2.Gen.(pair (Wfc_test_util.gen_dag_and_schedule ~max_n:8 ()) nat)
    (fun ((g, s), seed) ->
      Printf.sprintf "%s seed=%d" (Wfc_test_util.print_dag_schedule (g, s)) seed)
    (fun ((g, s), seed) ->
      let attempts_ok =
        List.for_all
          (fun model ->
            let reference, trace =
              T.record_run ~rng:(Rng.create seed) model g s
            in
            let state = T.replay_source trace in
            let r = SA.run (no_replan model) ~source:state.T.source g s in
            same_run reference r.SA.run && r.SA.replans = 0)
          Wfc_test_util.models
      in
      (* the renewal replay of a countdown execution also matches *)
      let reference, renewal =
        T.record_renewal ~rng:(Rng.create seed)
          ~failures:(D.weibull ~shape:1.4 ~scale:40.)
          ~downtime:(D.constant 0.5) g s
      in
      let state = T.replay_source renewal in
      let planning = List.hd Wfc_test_util.models in
      let r = SA.run (no_replan planning) ~source:state.T.source g s in
      attempts_ok && same_run reference r.SA.run)

(* ---- suffix replans: reused engine vs from-scratch, at 1e-9 ------------ *)

let prop_suffix_backends_agree =
  Wfc_test_util.qtest ~count:100 "solve_suffix: engine reuse = from-scratch"
    QCheck2.Gen.(pair (Wfc_test_util.gen_dag_and_schedule ~max_n:8 ()) nat)
    (fun ((g, s), from) ->
      Printf.sprintf "%s from=%d" (Wfc_test_util.print_dag_schedule (g, s)) from)
    (fun ((g, s), from) ->
      let n = Wfc_core.Schedule.n_tasks s in
      let order = Array.init n (Wfc_core.Schedule.task_at s) in
      let flags = Array.init n (Wfc_core.Schedule.is_checkpointed s) in
      let from = from mod (n + 1) in
      let planning = FM.make ~lambda:1e-3 ~downtime:1. () in
      let model = FM.make ~lambda:0.08 ~downtime:0.5 () in
      (* the reused engine starts bound to another model and warm rows:
         set_model must rebind it without corrupting the cache *)
      let engine = E.handle ~flags E.Incremental planning g ~order in
      ignore (E.h_makespan engine);
      let reused =
        SD.solve_suffix ~budget:64 ~engine model g ~order ~flags ~from
      in
      let fresh = SD.solve_suffix ~budget:64 model g ~order ~flags ~from in
      let flat =
        SD.solve_suffix ~budget:64 ~backend:E.Flat model g ~order ~flags ~from
      in
      let naive =
        SD.solve_suffix ~budget:64 ~backend:E.Naive model g ~order ~flags ~from
      in
      (* engines take bit-identical search paths; the oracle agrees at 1e-9 *)
      reused.SD.flags = fresh.SD.flags
      && reused.SD.expected_remaining = fresh.SD.expected_remaining
      && reused.SD.evaluations = fresh.SD.evaluations
      && flat.SD.flags = fresh.SD.flags
      && flat.SD.expected_remaining = fresh.SD.expected_remaining
      && flat.SD.evaluations = fresh.SD.evaluations
      && Wfc_test_util.close reused.SD.expected_remaining
           naive.SD.expected_remaining
      && reused.SD.evaluations <= 64
      && (* prefix flags pinned *)
      Array.for_all
        (fun p -> reused.SD.flags.(order.(p)) = flags.(order.(p)))
        (Array.init from (fun p -> p))
      && (* the engine is left holding the chosen flags *)
      E.h_flags engine = reused.SD.flags)

let prop_suffix_never_worse =
  Wfc_test_util.qtest ~count:100 "solve_suffix never worsens the incumbent"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:8 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      let n = Wfc_core.Schedule.n_tasks s in
      let order = Array.init n (Wfc_core.Schedule.task_at s) in
      let flags = Array.init n (Wfc_core.Schedule.is_checkpointed s) in
      let model = FM.make ~lambda:0.05 ~downtime:1. () in
      let e = E.create ~flags model g ~order in
      let incumbent = E.suffix_makespan e ~from:0 in
      let r = SD.solve_suffix ~budget:32 model g ~order ~flags ~from:0 in
      r.SD.expected_remaining <= incumbent)

(* ---- crafted renewal traces make the trigger semantics exact ----------- *)

let one_task ~weight =
  let g =
    Wfc_dag.Builders.chain ~weights:[| weight |]
      ~checkpoint_cost:(fun _ _ -> 0.5)
      ~recovery_cost:(fun _ _ -> 0.5)
      ()
  in
  (g, Wfc_core.Schedule.no_checkpoints g ~order:[| 0 |])

(* six failures 2s in, then a window wide enough to finish a 10s task *)
let six_failures_trace () =
  T.Renewal
    {
      uptimes = [| 2.; 2.; 2.; 2.; 2.; 2.; 20. |];
      downtimes = [| 1.; 1.; 1.; 1.; 1.; 1. |];
    }

let counting_replanner calls result =
 fun ~model:_ ~order ~flags ~from:_ ->
  incr calls;
  match result with
  | `Keep -> None
  | `Identity -> Some { SA.order; flags }

let run_counting ~trigger ~min_observations ~planning result =
  let g, s = one_task ~weight:10. in
  let calls = ref 0 in
  let config =
    {
      SA.planning;
      trigger;
      min_observations;
      replan = Some (counting_replanner calls result);
    }
  in
  let state = T.replay_source (six_failures_trace ()) in
  let r = SA.run config ~source:state.T.source g s in
  (r, !calls)

let test_triggers () =
  (* the trace's MLE is exactly 0.5: f failures over 2f uptime seconds *)
  let planning = FM.make ~lambda:0.5 ~downtime:1. () in
  let r, calls =
    run_counting ~trigger:SA.Every_failure ~min_observations:1 ~planning `Keep
  in
  Alcotest.(check int) "six failures" 6 r.SA.run.Sim.failures;
  Alcotest.(check int) "every failure" 6 calls;
  Alcotest.(check int) "kept plans are not replans" 0 r.SA.replans;
  let _, calls =
    run_counting ~trigger:SA.Every_failure ~min_observations:4 ~planning `Keep
  in
  Alcotest.(check int) "min_observations delays the first call" 3 calls;
  let r, calls =
    run_counting ~trigger:(SA.Every_k 2) ~min_observations:1 ~planning
      `Identity
  in
  Alcotest.(check int) "every 2nd failure" 3 calls;
  Alcotest.(check int) "identity plans count as replans" 3 r.SA.replans;
  (* planning 5x off the estimate: drift fires once, the replan rebases the
     comparison at lambda_hat and no further call fires *)
  let mis = FM.make ~lambda:0.1 ~downtime:1. () in
  let r, calls =
    run_counting ~trigger:(SA.On_drift 2.) ~min_observations:1 ~planning:mis
      `Identity
  in
  Alcotest.(check int) "drift fires once, then rebased" 1 calls;
  Alcotest.(check int) "one replan" 1 r.SA.replans;
  (* exactly-specified planning never drifts *)
  let _, calls =
    run_counting ~trigger:(SA.On_drift 2.) ~min_observations:1 ~planning `Keep
  in
  Alcotest.(check int) "no drift when exact" 0 calls

let test_estimation () =
  let g, s = one_task ~weight:10. in
  let planning = FM.make ~lambda:0.25 ~downtime:9. () in
  let config = { (no_replan planning) with SA.min_observations = 1 } in
  let state = T.replay_source (six_failures_trace ()) in
  let r = SA.run config ~source:state.T.source g s in
  (* last estimate is at the 6th failure: 6 failures over 12 observed
     uptime seconds *)
  Wfc_test_util.check_close "lambda MLE" 0.5 r.SA.estimated.FM.lambda;
  Wfc_test_util.check_close "downtime mean" 1. r.SA.estimated.FM.downtime;
  Alcotest.(check int) "reestimates" 6 r.SA.reestimates;
  (* nothing observed: the planning belief survives *)
  let quiet = T.Renewal { uptimes = [| 50. |]; downtimes = [||] } in
  let state = T.replay_source quiet in
  let r = SA.run config ~source:state.T.source g s in
  Alcotest.(check bool) "belief kept" true (r.SA.estimated = planning);
  Alcotest.(check int) "no reestimates" 0 r.SA.reestimates

let test_validation () =
  let g, s = one_task ~weight:10. in
  let planning = FM.make ~lambda:0.5 ~downtime:1. () in
  let source () = (T.replay_source (six_failures_trace ())).T.source in
  let run config = ignore (SA.run config ~source:(source ()) g s) in
  expect_invalid (fun () ->
      run { (no_replan planning) with SA.trigger = SA.Every_k 0 });
  expect_invalid (fun () ->
      run { (no_replan planning) with SA.trigger = SA.On_drift 1. });
  expect_invalid (fun () ->
      run { (no_replan planning) with SA.min_observations = 0 });
  (* a plan that tampers with the completed prefix is rejected *)
  let g2 =
    Wfc_dag.Builders.chain ~weights:[| 10.; 10. |]
      ~checkpoint_cost:(fun _ _ -> 0.5)
      ~recovery_cost:(fun _ _ -> 0.5)
      ()
  in
  let s2 =
    Wfc_core.Schedule.make g2 ~order:[| 0; 1 |] ~checkpointed:[| true; false |]
  in
  (* task 0 (10.5s with its checkpoint) survives the 12s window; task 1
     fails 1.5s in, so the replan sees from = 1 *)
  let trace =
    T.Renewal { uptimes = [| 12.; 2.; 2.; 30. |]; downtimes = [| 1.; 1.; 1. |] }
  in
  let bad_plan mutate ~model:_ ~order ~flags ~from:_ =
    let order = Array.copy order and flags = Array.copy flags in
    mutate order flags;
    Some { SA.order; flags }
  in
  let run_with replan =
    let config =
      {
        SA.planning;
        trigger = SA.Every_failure;
        min_observations = 1;
        replan = Some replan;
      }
    in
    ignore (SA.run config ~source:(T.replay_source trace).T.source g2 s2)
  in
  expect_invalid (fun () ->
      run_with
        (bad_plan (fun order _ ->
             let t = order.(0) in
             order.(0) <- order.(1);
             order.(1) <- t)));
  expect_invalid (fun () ->
      run_with (bad_plan (fun order flags -> flags.(order.(0)) <- false)))

(* ---- the point of all this: adaptivity beats a misspecified plan ------- *)

let test_adaptive_beats_misspecified_static () =
  let n = 12 in
  let g =
    Wfc_dag.Builders.chain
      ~weights:(Array.make n 5.)
      ~checkpoint_cost:(fun _ _ -> 0.3)
      ~recovery_cost:(fun _ _ -> 0.3)
      ()
  in
  let order = Array.init n (fun i -> i) in
  (* planned for an almost fail-free platform: no checkpoints *)
  let static = Wfc_core.Schedule.no_checkpoints g ~order in
  let planning = FM.make ~lambda:1e-4 ~downtime:1. () in
  let truth = D.exponential ~rate:0.08 in
  let replanner = SD.replanner ~budget:64 g in
  let traces =
    List.init 25 (fun i ->
        T.draw_renewal
          ~rng:(Rng.create (1000 + i))
          ~failures:truth ~downtime:(D.constant 1.) ~min_uptime:20_000.)
  in
  let static_sum, adaptive_sum, replans =
    List.fold_left
      (fun (sm, am, rp) trace ->
        let s_state = T.replay_source trace in
        let s_run = Sim.run_with_source s_state.T.source g static in
        let a_state = T.replay_source trace in
        let config =
          {
            SA.planning;
            trigger = SA.Every_failure;
            min_observations = 3;
            replan = Some replanner;
          }
        in
        let a = SA.run config ~source:a_state.T.source g static in
        Alcotest.(check bool) "static within horizon" false
          (s_state.T.exhausted ());
        Alcotest.(check bool) "adaptive within horizon" false
          (a_state.T.exhausted ());
        ( sm +. s_run.Sim.makespan,
          am +. a.SA.run.Sim.makespan,
          rp + a.SA.replans ))
      (0., 0., 0) traces
  in
  let k = float_of_int (List.length traces) in
  let static_mean = static_sum /. k and adaptive_mean = adaptive_sum /. k in
  Alcotest.(check bool) "adaptive actually replanned" true (replans > 0);
  if not (adaptive_mean < static_mean) then
    Alcotest.failf "adaptive %.1f not better than static %.1f" adaptive_mean
      static_mean

let test_relinearize_runs () =
  (* fork-join with slack: relinearization may propose a different suffix
     order, and the executed plan must stay a valid linearization *)
  let g =
    Wfc_dag.Builders.fork_join ~source_weight:2.
      ~middle_weights:[| 3.; 4.; 5.; 6. |] ~sink_weight:2.
      ~checkpoint_cost:(fun _ _ -> 0.2)
      ~recovery_cost:(fun _ _ -> 0.2)
      ()
  in
  let n = Wfc_dag.Dag.n_tasks g in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Breadth_first g in
  let s = Wfc_core.Schedule.no_checkpoints g ~order in
  let planning = FM.make ~lambda:1e-4 ~downtime:1. () in
  let replanner =
    SD.replanner ~budget:32 ~relinearize:Wfc_dag.Linearize.Depth_first g
  in
  let config =
    {
      SA.planning;
      trigger = SA.Every_failure;
      min_observations = 1;
      replan = Some replanner;
    }
  in
  let trace =
    T.draw_renewal ~rng:(Rng.create 7)
      ~failures:(D.exponential ~rate:0.2)
      ~downtime:(D.constant 0.5) ~min_uptime:5_000.
  in
  let state = T.replay_source trace in
  let r = SA.run config ~source:state.T.source g s in
  Alcotest.(check int) "all tasks kept" n (Array.length r.SA.final_order);
  Alcotest.(check bool) "valid final order" true
    (Wfc_dag.Dag.is_linearization g r.SA.final_order);
  Alcotest.(check bool) "within horizon" false (state.T.exhausted ());
  Alcotest.(check bool) "finite makespan" true
    (Float.is_finite r.SA.run.Sim.makespan)

let () =
  Alcotest.run "adaptive"
    [
      ( "determinism",
        [
          prop_disabled_is_static;
          prop_suffix_backends_agree;
          prop_suffix_never_worse;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "triggers" `Quick test_triggers;
          Alcotest.test_case "estimation" `Quick test_estimation;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "relinearize" `Quick test_relinearize_runs;
        ] );
      ( "adaptivity",
        [
          Alcotest.test_case "beats misspecified static" `Quick
            test_adaptive_beats_misspecified_static;
        ] );
    ]
