Deterministic smoke tests of the wfc command-line tool. Everything below is
analytic (no Monte Carlo), so the printed numbers are stable.

Workflow generation summary:

  $ ../bin/wfc.exe generate -w montage -n 50 --seed 42
  dag: 50 tasks, 109 edges, depth 8, weight total 551.923 (avg 11.0385, min 2.25654, max 23.0191)
  sources: 9, sinks: 1, critical path: 117.2 s

The 14 heuristics on a small CyberShake instance:

  $ ../bin/wfc.exe evaluate -w cybershake -n 30 --mtbf 500 -s CkptW --grid 8
  DF-CkptW on CyberShake (30 tasks), platform: lambda=0.002 (MTBF 500 s), downtime 0 s
    E[makespan] = 1106.27 s
    T_inf       = 889.73 s (ratio 1.2434)
    checkpoints = 29 (evaluator calls: 6)

Optimal chain checkpointing (Toueg-Babaoglu DP):

  $ ../bin/wfc.exe solve chain -n 5 --seed 1 --mtbf 300
  random chain of 5 tasks: optimal E[makespan] = 368.51 s
  checkpointed tasks: T0 T1 T2

Unknown workflow families are rejected:

  $ ../bin/wfc.exe generate -w nosuch 2>&1 | head -2
  wfc: option '-w': unknown workflow family "nosuch"
  Usage: wfc generate [OPTION]…
  $ echo $?
  0

Nonsensical platform or workflow parameters die with a one-line parse error
(cmdliner's exit code 124) instead of a traceback deep inside the library:

  $ ../bin/wfc.exe evaluate -w montage -n 12 --mtbf 0 2>&1 | head -1
  wfc: option '--mtbf': MTBF must be positive (got '0')
  $ ../bin/wfc.exe evaluate -w montage -n 12 --mtbf 0 2>/dev/null; echo "exit: $?"
  exit: 124
  $ ../bin/wfc.exe evaluate -w montage -n 12 --mtbf 500 --downtime=-1 2>&1 | head -1
  wfc: option '--downtime': downtime must be non-negative (got '-1')
  $ ../bin/wfc.exe evaluate -w montage -n 12 --mtbf 500 --downtime=-1 2>/dev/null; echo "exit: $?"
  exit: 124
  $ ../bin/wfc.exe evaluate -w montage -n 0 --mtbf 500 2>&1 | head -1
  wfc: option '-n': task count must be at least 1 (got '0')
  $ ../bin/wfc.exe evaluate -w montage -n 0 --mtbf 500 2>/dev/null; echo "exit: $?"
  exit: 124

A misspecification stress campaign: simulation-backed, but deterministic in
the seed — and bit-identical for any --domains value, so the pinned output
below is stable on any machine:

  $ ../bin/wfc.exe stress -w montage -n 12 --mtbf 300 --runs 100 --seed 3 --domains 2 --exact-budget 5000
  stress campaign: Montage (12 tasks), nominal platform: lambda=0.00333333 (MTBF 300 s), downtime 0 s
  12 scenarios x 7 schedules, 100 runs each, seed 3
  
  exact driver: tier exact, E[makespan] 144.78 s (branch and bound completed within budget (367 nodes))
  
  rank  schedule         E[T] nominal  worst mean x  worst p99 x  divergent
  ----  ---------------  ------------  ------------  -----------  ---------
  1     DF-CkptAlws      148.7         1.338         1.973        0
  2     DF-CkptW         147.7         1.361         2.042        0
  3     DF-CkptD         144.8         1.623         2.688        0
  4     DF-CkptC         145.9         1.583         2.996        0
  5     DF-CkptPer       148.6         1.937         4.938        0
  6     DF-exact[exact]  144.8         1.966         4.973        0
  7     DF-CkptNvr       164.1         13.703        41.904       0
  
  per-scenario tail behavior of DF-CkptAlws:
  
  scenario            mean   p95    p99    mean x  p99 x  divergent
  ------------------  -----  -----  -----  ------  -----  ---------
  nominal             149.1  164.8  169.6  1.003   1.141  0
  mtbf/2              152.9  177.9  183.3  1.028   1.233  0
  mtbf/10             198.9  254.4  291.4  1.338   1.959  0
  mtbf*2              146.4  158.8  163.3  0.984   1.098  0
  mtbf*10             144.4  144.8  160.6  0.971   1.080  0
  weibull k=0.7       150.4  172.7  179.9  1.011   1.210  0
  weibull k=1.5       146.8  158.9  169.5  0.988   1.140  0
  bursty              155.7  181.2  190.2  1.047   1.279  0
  random downtime     149.2  172.2  177.7  1.003   1.195  0
  corrupt ckpt 10%    151.0  174.9  185.5  1.015   1.247  0
  flaky recovery 10%  149.6  164.7  173.6  1.006   1.167  0
  hostile             179.1  258.0  293.4  1.204   1.973  0

The same campaign with a different --domains split is bit-identical:

  $ ../bin/wfc.exe stress -w montage -n 12 --mtbf 300 --runs 100 --seed 3 --domains 2 --exact-budget 5000 > split2.out
  $ ../bin/wfc.exe stress -w montage -n 12 --mtbf 300 --runs 100 --seed 3 --domains 1 --exact-budget 5000 > split1.out
  $ cmp split1.out split2.out && echo bit-identical
  bit-identical

Workflow JSON round-trip: a generated file reloads to the same instance, so
the loaded evaluation matches the generated one:

  $ ../bin/wfc.exe generate -w cybershake -n 30 --seed 42 --json wf.json
  wrote wf.json
  $ ../bin/wfc.exe evaluate --load wf.json --mtbf 500 -s CkptW --grid 8
  DF-CkptW on wf.json (30 tasks), platform: lambda=0.002 (MTBF 500 s), downtime 0 s
    E[makespan] = 1106.27 s
    T_inf       = 889.73 s (ratio 1.2434)
    checkpoints = 29 (evaluator calls: 6)

Optimal fork and join solvers:

  $ ../bin/wfc.exe solve fork -n 5 --seed 2 --mtbf 300
  random fork (1 + 4 tasks): checkpoint source? true
    with ckpt 240.28 s, without 267.20 s
  $ ../bin/wfc.exe solve join -n 5 --seed 2 --mtbf 300
  random join (4 + 1 tasks): optimal E[makespan] = 174.00 s
  checkpointed sources: T1 T2 T3

Unknown structures are a usage error, not a silent default:

  $ ../bin/wfc.exe solve pyramid 2>&1 | head -1
  wfc: STRUCTURE argument: unknown structure "pyramid" (chain, fork or join)
  $ ../bin/wfc.exe solve pyramid 2>/dev/null; echo "exit: $?"
  exit: 124

Invalid run counts on the Monte Carlo surfaces die the same way:

  $ ../bin/wfc.exe simulate -w montage -n 12 --runs 0 2>&1 | head -1
  wfc: option '--runs': run count must be at least 1 (got '0')
  $ ../bin/wfc.exe simulate -w montage -n 12 --runs 0 2>/dev/null; echo "exit: $?"
  exit: 124
  $ ../bin/wfc.exe profile -w montage -n 12 --runs -3 2>&1 | head -1
  wfc: unknown option '-3'.
  $ ../bin/wfc.exe profile -w montage -n 12 --runs -3 2>/dev/null; echo "exit: $?"
  exit: 124

--metrics appends the internal-counter table after the normal output; the
analytic evaluate path is deterministic, so the counts are pinned:

  $ ../bin/wfc.exe evaluate -w cybershake -n 30 --mtbf 500 -s CkptW --grid 8 --metrics
  DF-CkptW on CyberShake (30 tasks), platform: lambda=0.002 (MTBF 500 s), downtime 0 s
    E[makespan] = 1106.27 s
    T_inf       = 889.73 s (ratio 1.2434)
    checkpoints = 29 (evaluator calls: 6)
  
  -- metrics --
  metric                    kind     value
  ------------------------  -------  -----
  engine.queries            counter  6
  engine.row_hits           counter  40
  engine.rows_recomputed    counter  140
  engine.snapshot_restores  counter  5
  engine.steps              counter  145
  search.candidates         counter  6
  search.candidates.CkptW   counter  6
  search.runs               counter  1

A first few simulated events of one run (--events), deterministic in the seed:

  $ ../bin/wfc.exe simulate -w montage -n 12 --runs 10 --seed 3 --events 3 | head -4
  -- trace of one run (3 of 24 events) --
  [     0.0s] ATTEMPT T0 (pos 0): 11.4s segment (0.0s replay)
  [    11.4s] DONE    T0 (pos 0)
  [    11.4s] ATTEMPT T1 (pos 1): 13.6s segment (0.0s replay)

Simulator metric counts are a property of the schedule and the seed, not of
the search backend: both engines must inject exactly the same faults.

  $ ../bin/wfc.exe simulate -w genome -n 14 --runs 200 --seed 5 --engine naive --metrics | grep '^sim\.' | tr -s ' ' > naive.metrics
  $ ../bin/wfc.exe simulate -w genome -n 14 --runs 200 --seed 5 --engine incremental --metrics | grep '^sim\.' | tr -s ' ' > incr.metrics
  $ cmp naive.metrics incr.metrics && echo engines-agree
  engines-agree
  $ grep -c '^sim\.replicas' naive.metrics
  1

--trace writes Chrome trace-event JSON (or JSONL for .jsonl paths):

  $ ../bin/wfc.exe schedule -w ligo -n 20 --trace trace.json > /dev/null
  $ head -c 16 trace.json; echo
  {"traceEvents":[
  $ grep -c '"ph":"X"' trace.json
  14
  $ ../bin/wfc.exe schedule -w ligo -n 20 --trace trace.jsonl > /dev/null
  $ wc -l < trace.jsonl
  14
  $ grep -c '"type":"span"' trace.jsonl
  14

wfc profile runs an instrumented end-to-end workload; the search counters it
reports must be live (nonzero B&B nodes, nonzero engine cache hits):

  $ ../bin/wfc.exe profile -w genome -n 20 --runs 50 --seed 7 > profile.out
  $ grep -q 'driver tier exact' profile.out && echo exact-tier
  exact-tier
  $ awk '$1 == "bnb.nodes" && $3 > 0 { print "bnb.nodes live" }' profile.out
  bnb.nodes live
  $ awk '$1 == "engine.row_hits" && $3 > 0 { print "cache hits live" }' profile.out
  cache hits live
  $ ../bin/wfc.exe profile -w montage -n 12 --runs 20 --seed 1 --csv metrics.csv > /dev/null
  $ head -1 metrics.csv
  metric,kind,value
  $ grep -c '^bnb.nodes,counter,' metrics.csv
  1

The shared --failures converter accepts the four renewal laws and rejects
everything else with a one-line usage error:

  $ ../bin/wfc.exe simulate -w montage -n 12 --mtbf 300 --runs 200 --seed 5 --failures weibull:1.5,300
  DF-CkptW on Montage (12 tasks), platform: lambda=0.00333333 (MTBF 300 s), downtime 0 s, failures weibull(k=1.5,s=300)
    analytic E[makespan] : 140.70 s (exponential, blocking model)
    simulated mean       : 138.32 s  (95% CI [137.31, 139.33], 200 runs)
    failures per run     : 0.23 (max 2)
    wasted time per run  : 3.23 s
  $ ../bin/wfc.exe simulate -n 12 --failures banana 2>&1 | head -1
  wfc: option '--failures': invalid failure law "banana": expected exp:RATE,
  $ ../bin/wfc.exe simulate -n 12 --failures banana 2>/dev/null; echo "exit: $?"
  exit: 124
  $ ../bin/wfc.exe simulate -n 12 --failures weibull:0,5 2>&1 | head -1
  wfc: option '--failures': Distribution.weibull: shape must be positive
  $ ../bin/wfc.exe simulate -n 12 --failures weibull:0,5 2>/dev/null; echo "exit: $?"
  exit: 124

stress accepts the same grammar, adding one custom scenario to the grid:

  $ ../bin/wfc.exe stress -w montage -n 12 --mtbf 300 --runs 50 --seed 3 --failures hyper:0.9,0.01,0.0005 2>&1 | sed -n '2p'
  13 scenarios x 6 schedules, 50 runs each, seed 3
  $ ../bin/wfc.exe stress -n 12 --failures const:abc 2>/dev/null; echo "exit: $?"
  exit: 124

wfc replay records a failure trace to JSONL and replays it bit-exactly; an
attempts-kind trace is conditioned on the recorded schedule, so replaying it
against a different one diverges instead of answering nonsense:

  $ ../bin/wfc.exe replay -w montage -n 12 --mtbf 80 --downtime 2 --kind attempts --record trace9.jsonl
  recorded attempts trace: 19 events, 7 failures
    makespan 217.39 s, 7 failures, 82.36 s wasted
  wrote trace9.jsonl
  $ head -1 trace9.jsonl
  {"format":"wfc-trace","version":1,"kind":"attempts"}
  $ ../bin/wfc.exe replay -w montage -n 12 --mtbf 80 --downtime 2 --kind attempts --input trace9.jsonl
  loaded attempts trace: 19 events, 7 failures
    makespan 217.39 s, 7 failures, 82.36 s wasted
  $ ../bin/wfc.exe replay -w montage -n 12 --mtbf 80 --downtime 2 -s CkptNvr --input trace9.jsonl 2>&1
  loaded attempts trace: 19 events, 7 failures
  replay diverged (schedule differs from the recorded one): attempt 1: segment survived a recorded failure
  [1]

A renewal-kind trace is policy-independent and can carry any --failures law:

  $ ../bin/wfc.exe replay -w montage -n 12 --mtbf 150 --downtime 2 --seed 9 --kind renewal --failures weibull:1.5,60 --record renew.jsonl
  recorded renewal trace: 5 events, 2 failures
    makespan 170.55 s, 2 failures, 22.04 s wasted
  wrote renew.jsonl
  $ ../bin/wfc.exe replay -w montage -n 12 --mtbf 150 --downtime 2 --seed 9 --input renew.jsonl
  loaded renewal trace: 5 events, 2 failures
    makespan 170.55 s, 2 failures, 22.04 s wasted

Exactly one of --record / --input, and the trace kind is validated:

  $ ../bin/wfc.exe replay -n 12 2>&1
  wfc replay: exactly one of --record or --input is required
  [124]
  $ ../bin/wfc.exe replay -n 12 --kind zigzag --record x.jsonl 2>/dev/null; echo "exit: $?"
  exit: 124
  $ ../bin/wfc.exe replay -n 12 --input no-such-trace.jsonl 2>&1
  cannot load no-such-trace.jsonl: no-such-trace.jsonl: No such file or directory
  [1]

wfc adapt scores the static schedule against the adaptive executor on shared
recorded traces (deterministic in the seed) and picks by risk criterion:

  $ ../bin/wfc.exe adapt -w montage -n 12 --mtbf 5000 --true-mtbf 400 --downtime 1 --traces 10 --horizon 400
  adaptive selection: Montage (12 tasks), planning platform: lambda=0.0002 (MTBF 5000 s), downtime 1 s, true MTBF 400 s
  criterion cvar@0.95, 4 scenarios x 10 traces, seed 42
  
  policy    mean   cvar@0.95  worst  max regret  exhausted
  --------  -----  ---------  -----  ----------  ---------
  DF-CkptW  143.3  240.7      302.9  1.6         0
  adaptive  142.9  236.6      286.7  0.0         0
  
  per-scenario mean makespan and regret:
  
  policy    scenario       mean   regret
  --------  -------------  -----  ------
  DF-CkptW  exponential    125.9  0.0
  DF-CkptW  weibull k=0.7  164.9  1.6
  DF-CkptW  weibull k=1.5  125.9  0.0
  DF-CkptW  bursty         156.4  0.0
  adaptive  exponential    125.9  0.0
  adaptive  weibull k=0.7  163.3  0.0
  adaptive  weibull k=1.5  125.9  0.0
  adaptive  bursty         156.4  0.0
  
  selected: adaptive by cvar@0.95





Malformed triggers and criteria are usage errors, not tracebacks:

  $ ../bin/wfc.exe adapt -n 12 --trigger k:0 2>&1 | head -1
  wfc: option '--trigger': invalid trigger "k:0": expected every, k:N (N >= 1)
  $ ../bin/wfc.exe adapt -n 12 --trigger k:0 2>/dev/null; echo "exit: $?"
  exit: 124
  $ ../bin/wfc.exe adapt -n 12 --criterion p99 2>&1 | head -1
  wfc: option '--criterion': unknown criterion "p99": expected mean, worst,
  $ ../bin/wfc.exe adapt -n 12 --criterion p99 2>/dev/null; echo "exit: $?"
  exit: 124

The adaptive-vs-static regression guard: under a >= 4x misspecified failure
rate the adaptive policy must strictly beat the static plan on the shared
trace ensemble (full run: FIG=adaptive dune exec bench/main.exe):

  $ TRACES=30 FIG=adaptive ../bench/main.exe | grep guard
  adaptive-vs-static guard: PASS

The shared --replicas converter: replication rides along on the analytic and
Monte Carlo surfaces (deterministic in the seed), and nonsense policies are a
one-line usage error:

  $ ../bin/wfc.exe simulate -w montage -n 12 --mtbf 300 --runs 200 --seed 5 --replicas k:3 --replica-cost 0.2
  DF-CkptW on Montage (12 tasks), platform: lambda=0.00333333 (MTBF 300 s), downtime 0 s, failures exp(0.00333333)
    analytic E[makespan] : 148.43 s (exponential, blocking model)
    replication          : k:3 (3 extra copies, 0.2 weight each)
    simulated mean       : 148.48 s  (95% CI [147.51, 149.44], 200 runs)
    failures per run     : 0.32 (max 3)
    wasted time per run  : 3.07 s
  $ ../bin/wfc.exe solve chain -n 5 --seed 1 --mtbf 300 --replicas k:2 --replica-cost 0.1
  random chain of 5 tasks: optimal E[makespan] = 368.51 s
  checkpointed tasks: T0 T1 T2
  with replication k:2: E[makespan] = 366.42 s (2 extra copies)
  $ ../bin/wfc.exe simulate -n 12 --replicas banana 2>&1 | head -1
  wfc: option '--replicas': invalid replication policy "banana": expected auto,
  $ ../bin/wfc.exe simulate -n 12 --replicas banana 2>/dev/null; echo "exit: $?"
  exit: 124
  $ ../bin/wfc.exe simulate -n 12 --replicas k:0 2>/dev/null; echo "exit: $?"
  exit: 124
  $ ../bin/wfc.exe simulate -n 12 --replicas budget:-1 2>/dev/null; echo "exit: $?"
  exit: 124

The checkpoint-vs-replica regression guard: with expensive checkpoints and
cheap replicas under frequent failures, a mixed policy must beat the best
checkpoint-only policy on CVaR (full run: FIG=replication dune exec
bench/main.exe):

  $ TRACES=30 FIG=replication ../bench/main.exe | grep guard
  replication guard: PASS

The flat engine is a drop-in third backend: same faults as the naive and
incremental searches on the simulate path, and the option is validated:

  $ ../bin/wfc.exe simulate -w genome -n 14 --runs 200 --seed 5 --engine flat --metrics | grep '^sim\.' | tr -s ' ' > flat.metrics
  $ cmp naive.metrics flat.metrics && echo flat-agrees
  flat-agrees
  $ ../bin/wfc.exe evaluate -n 12 --engine turbo 2>&1 | grep -o "(naive, incremental or flat)"
  (naive, incremental or flat)
  $ ../bin/wfc.exe evaluate -n 12 --engine turbo 2>/dev/null; echo "exit: $?"
  exit: 124

The scale campaign's invariants at smoke size: bitwise flat==incremental on
every sweep instance, and the parallel branch and bound returns the
single-domain optimum (full run: FIG=scale dune exec bench/main.exe):

  $ SCALE_NMAX=60 SCALE_EXACT_N=10 SCALE_DOMAINS=2 FIG=scale ../bench/main.exe | grep -E '^(PASS|FAIL)'
  PASS flat == incremental (bitwise) on 4 instances
  PASS parallel B&B matches single-domain (n=10, 2 domains)
