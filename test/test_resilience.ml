module D = Wfc_platform.Distribution
module FM = Wfc_platform.Failure_model
module Heuristics = Wfc_core.Heuristics
module Stress = Wfc_resilience.Stress
module Driver = Wfc_resilience.Solver_driver

let workflow n =
  Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Proportional 0.1)
    (Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Montage ~n ~seed:4)

let nominal = FM.make ~lambda:5e-3 ~downtime:1. ()

let df_order g = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g

(* ---- solver driver: graceful degradation ---- *)

let test_driver_exact_tier () =
  let g = workflow 12 in
  let order = df_order g in
  let r = Driver.solve nominal g ~order in
  Alcotest.(check string) "tier" "exact" (Driver.tier_name r.Driver.tier);
  let sol = Wfc_core.Exact_solver.optimal_checkpoints nominal g ~order in
  Wfc_test_util.check_close "matches the raising solver"
    sol.Wfc_core.Exact_solver.makespan r.Driver.makespan;
  Alcotest.(check bool) "reason mentions completion" true
    (String.length r.Driver.reason > 0)

let test_driver_degrades () =
  (* 25 tasks under a 100-node budget: the exact tier cannot finish, but the
     driver must still return a schedule no worse than its best fallback *)
  let g = workflow 25 in
  let order = df_order g in
  let config = { Driver.default_config with Driver.max_nodes = 100 } in
  let r = Driver.solve ~config nominal g ~order in
  Alcotest.(check bool) "not the exact tier" true (r.Driver.tier <> Driver.Exact);
  Alcotest.(check bool) "non-empty reason" true (String.length r.Driver.reason > 0);
  let best_fallback =
    List.fold_left
      (fun acc (lin, ckpt) ->
        Float.min acc (Heuristics.run nominal g ~lin ~ckpt).Heuristics.makespan)
      infinity config.Driver.fallbacks
  in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f <= best fallback %.2f" r.Driver.makespan best_fallback)
    true
    (r.Driver.makespan <= best_fallback +. 1e-9);
  (* the returned expectation matches its own schedule *)
  Wfc_test_util.check_close "self-consistent"
    (Wfc_core.Evaluator.expected_makespan nominal g r.Driver.schedule)
    r.Driver.makespan

let test_driver_deadline () =
  (* an already-elapsed deadline forces immediate degradation *)
  let g = workflow 25 in
  let r =
    Driver.solve
      ~config:{ Driver.default_config with Driver.deadline = Some 0. }
      nominal g ~order:(df_order g)
  in
  Alcotest.(check bool) "degraded" true (r.Driver.tier <> Driver.Exact)

(* ---- stress campaigns ---- *)

let stress_fixture () =
  let g = workflow 12 in
  let outcome =
    Heuristics.run nominal g ~lin:Wfc_dag.Linearize.Depth_first
      ~ckpt:Heuristics.Ckpt_weight
  in
  (g, outcome.Heuristics.schedule)

let test_evaluate_deterministic_and_domain_invariant () =
  let g, s = stress_fixture () in
  let scenarios = Stress.default_grid nominal in
  let eval domains =
    Stress.evaluate ~runs:200 ~domains ~seed:5 ~nominal ~scenarios g s
  in
  let a = eval 1 and b = eval 1 and c = eval 3 in
  List.iter2
    (fun (x : Stress.scenario_result) (y : Stress.scenario_result) ->
      Alcotest.(check (float 0.)) "mean" x.Stress.mean y.Stress.mean;
      Alcotest.(check (float 0.)) "p99" x.Stress.p99 y.Stress.p99;
      Alcotest.(check int) "divergent" x.Stress.divergent y.Stress.divergent)
    a.Stress.results b.Stress.results;
  (* bit-identical across domain counts, not merely statistically equal *)
  List.iter2
    (fun (x : Stress.scenario_result) (y : Stress.scenario_result) ->
      Alcotest.(check (float 0.)) "mean across domains" x.Stress.mean
        y.Stress.mean;
      Alcotest.(check (float 0.)) "p99 across domains" x.Stress.p99 y.Stress.p99)
    a.Stress.results c.Stress.results

let test_evaluate_degradations () =
  let g, s = stress_fixture () in
  let scenarios = Stress.default_grid nominal in
  let report = Stress.evaluate ~runs:2000 ~domains:2 ~seed:9 ~nominal ~scenarios g s in
  let find name =
    List.find
      (fun r -> r.Stress.scenario.Stress.name = name)
      report.Stress.results
  in
  let nom = find "nominal" in
  Alcotest.(check bool)
    (Printf.sprintf "nominal mean ratio %.3f close to 1" nom.Stress.mean_degradation)
    true
    (Float.abs (nom.Stress.mean_degradation -. 1.) < 0.05);
  let harsh = find "mtbf/10" in
  Alcotest.(check bool) "mtbf/10 is worse than nominal" true
    (harsh.Stress.mean > nom.Stress.mean);
  Alcotest.(check bool) "tail dominates mean" true
    (List.for_all
       (fun r -> r.Stress.tail_degradation >= r.Stress.mean_degradation)
       report.Stress.results);
  Alcotest.(check bool) "robustness is the worst tail" true
    (Float.equal report.Stress.robustness
       (List.fold_left
          (fun acc r -> Float.max acc r.Stress.tail_degradation)
          0. report.Stress.results))

let test_rank_sorted () =
  let g, _ = stress_fixture () in
  let scenarios = Stress.default_grid nominal in
  let ranked =
    Stress.rank ~runs:300 ~domains:2 ~seed:5 ~nominal ~scenarios g
      [
        (Wfc_dag.Linearize.Depth_first, Heuristics.Ckpt_never);
        (Wfc_dag.Linearize.Depth_first, Heuristics.Ckpt_weight);
        (Wfc_dag.Linearize.Depth_first, Heuristics.Ckpt_periodic);
      ]
  in
  Alcotest.(check int) "all ranked" 3 (List.length ranked);
  let scores = List.map (fun r -> r.Stress.report.Stress.robustness) ranked in
  Alcotest.(check bool) "ascending robustness" true
    (List.sort Float.compare scores = scores);
  (* a checkpointing heuristic must beat restart-only under the harsh grid *)
  let first = List.hd ranked in
  Alcotest.(check bool)
    (Printf.sprintf "%s is not CkptNvr" first.Stress.heuristic)
    true
    (first.Stress.heuristic <> "DF-CkptNvr")

let test_divergence_disqualifies () =
  (* a restart-only schedule that cannot finish under a harsh scenario gets
     truncated makespans — lower bounds that would otherwise look "robust".
     Divergence must force the score to infinity *)
  let g = Wfc_dag.Builders.chain ~weights:(Array.make 8 100.) () in
  let s =
    Wfc_core.Schedule.make g ~order:(Array.init 8 Fun.id)
      ~checkpointed:(Array.make 8 false)
  in
  let harsh =
    {
      Stress.name = "harsh";
      params =
        Wfc_simulator.Sim_faults.nominal (FM.make ~lambda:0.05 ~downtime:0. ());
    }
  in
  let report =
    Stress.evaluate ~runs:20 ~domains:1 ~max_failures:100 ~seed:3
      ~nominal:(FM.make ~lambda:1e-4 ())
      ~scenarios:[ harsh ] g s
  in
  let r = List.hd report.Stress.results in
  Alcotest.(check bool) "runs diverged" true (r.Stress.divergent > 0);
  Alcotest.(check bool) "score disqualified" true
    (report.Stress.robustness = Float.infinity)

let test_validation () =
  let g, s = stress_fixture () in
  let scenarios = Stress.default_grid nominal in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> ignore (Stress.default_grid FM.fail_free));
  expect_invalid (fun () ->
      ignore (Stress.evaluate ~runs:0 ~seed:1 ~nominal ~scenarios g s));
  expect_invalid (fun () ->
      ignore (Stress.evaluate ~domains:0 ~seed:1 ~nominal ~scenarios g s));
  expect_invalid (fun () ->
      ignore (Stress.evaluate ~max_failures:0 ~seed:1 ~nominal ~scenarios g s));
  expect_invalid (fun () ->
      ignore (Stress.evaluate ~seed:1 ~nominal ~scenarios:[] g s))

(* ---- robust: risk-aware selection over shared trace ensembles ---- *)

module Robust = Wfc_resilience.Robust

let test_robust_scenarios () =
  let scs = Robust.default_scenarios nominal in
  Alcotest.(check int) "four laws" 4 (List.length scs);
  (* equal MTBF by construction: shape varies, scale does not *)
  List.iter
    (fun (sc : Robust.scenario) ->
      Wfc_test_util.check_close ~eps:1e-6
        (Printf.sprintf "MTBF of %s" sc.Robust.name)
        (1. /. nominal.FM.lambda)
        (D.mean sc.Robust.failures))
    scs;
  (match Robust.default_scenarios FM.fail_free with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fail-free nominal must be rejected")

let test_criterion_parsing () =
  let check s expect =
    match (Robust.criterion_of_string s, expect) with
    | None, None -> ()
    | Some c, Some c' when c = c' -> ()
    | got, _ ->
        Alcotest.failf "%s parsed as %s" s
          (match got with
          | None -> "None"
          | Some c -> Robust.criterion_name c)
  in
  check "mean" (Some Robust.Mean);
  check "worst" (Some Robust.Worst);
  check "cvar" (Some (Robust.CVaR 0.95));
  check "cvar:0.9" (Some (Robust.CVaR 0.9));
  check "CVAR:0.5" (Some (Robust.CVaR 0.5));
  check "cvar:1.5" None;
  check "p99" None

let robust_fixture () =
  let g = workflow 12 in
  let order = df_order g in
  (g, order)

let test_robust_evaluate () =
  let g, order = robust_fixture () in
  (* a harsh platform (MTBF = half the total work): checkpointing everything
     should beat checkpointing nothing under every law of the ensemble, and
     even the no-checkpoint run finishes well within the recorded horizon *)
  let harsh =
    FM.make ~lambda:(2. /. Wfc_dag.Dag.total_weight g) ~downtime:1. ()
  in
  let candidates =
    [
      Robust.static ~name:"none" g (Wfc_core.Schedule.no_checkpoints g ~order);
      Robust.static ~name:"all" g (Wfc_core.Schedule.all_checkpoints g ~order);
    ]
  in
  let min_uptime = 500. *. Wfc_dag.Dag.total_weight g in
  let eval () =
    Robust.evaluate ~traces_per_scenario:20 ~seed:11 ~min_uptime
      ~criterion:(Robust.CVaR 0.9)
      ~scenarios:(Robust.default_scenarios harsh)
      candidates
  in
  let r = eval () in
  Alcotest.(check string) "all checkpoints wins" "all"
    r.Robust.winner.Robust.candidate;
  (* the ensemble is shared and deterministic: same seed, same report *)
  let r' = eval () in
  Alcotest.(check bool) "deterministic" true (r.Robust.scores = r'.Robust.scores);
  List.iter
    (fun (s : Robust.score) ->
      Alcotest.(check int) "no exhausted runs" 0 s.Robust.exhausted;
      Alcotest.(check int) "one regret entry per scenario" 4
        (List.length s.Robust.regret);
      List.iter
        (fun (_, reg) ->
          Alcotest.(check bool) "regret non-negative" true (reg >= 0.))
        s.Robust.regret;
      Alcotest.(check bool) "cvar dominates mean" true
        (s.Robust.cvar >= s.Robust.mean);
      Alcotest.(check bool) "worst dominates cvar" true
        (s.Robust.worst >= s.Robust.cvar))
    r.Robust.scores;
  (* the per-scenario winner has zero regret somewhere *)
  let winner_regrets = List.map snd r.Robust.winner.Robust.regret in
  Alcotest.(check bool) "winner touches zero regret" true
    (List.exists (fun reg -> reg = 0.) winner_regrets)

let test_robust_adaptive_candidate () =
  (* the adaptive policy rides the same ensemble as the statics *)
  let g, order = robust_fixture () in
  let s = Wfc_core.Schedule.no_checkpoints g ~order in
  let planning = FM.make ~lambda:1e-4 ~downtime:1. () in
  let config =
    {
      (Wfc_simulator.Sim_adaptive.default_config planning) with
      Wfc_simulator.Sim_adaptive.replan = Some (Driver.replanner ~budget:64 g);
    }
  in
  let harsh =
    FM.make ~lambda:(2. /. Wfc_dag.Dag.total_weight g) ~downtime:1. ()
  in
  let r =
    Robust.evaluate ~traces_per_scenario:10 ~seed:3
      ~min_uptime:(1000. *. Wfc_dag.Dag.total_weight g)
      ~criterion:Robust.Mean
      ~scenarios:(Robust.default_scenarios harsh)
      [
        Robust.static ~name:"static-misspecified" g s;
        Robust.adaptive ~name:"adaptive" config g s;
      ]
  in
  Alcotest.(check string) "adaptive wins under misspecification" "adaptive"
    r.Robust.winner.Robust.candidate

let test_robust_validation () =
  let g, order = robust_fixture () in
  let s = Wfc_core.Schedule.no_checkpoints g ~order in
  let cand = [ Robust.static ~name:"s" g s ] in
  let scenarios = Robust.default_scenarios nominal in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  let eval ?(candidates = cand) ?(scenarios = scenarios) ?traces ?alpha
      ?(criterion = Robust.Mean) ?(min_uptime = 1e4) () =
    ignore
      (Robust.evaluate ?traces_per_scenario:traces ?alpha ~seed:1 ~min_uptime
         ~criterion ~scenarios candidates)
  in
  expect_invalid (fun () -> eval ~candidates:[] ());
  expect_invalid (fun () -> eval ~scenarios:[] ());
  expect_invalid (fun () -> eval ~traces:0 ());
  expect_invalid (fun () -> eval ~alpha:1.5 ());
  expect_invalid (fun () -> eval ~criterion:(Robust.CVaR 2.) ());
  expect_invalid (fun () -> eval ~min_uptime:0. ())

let () =
  Alcotest.run "resilience"
    [
      ( "solver driver",
        [
          Alcotest.test_case "exact tier" `Quick test_driver_exact_tier;
          Alcotest.test_case "graceful degradation" `Slow test_driver_degrades;
          Alcotest.test_case "deadline" `Quick test_driver_deadline;
        ] );
      ( "stress",
        [
          Alcotest.test_case "deterministic, domain-invariant" `Quick
            test_evaluate_deterministic_and_domain_invariant;
          Alcotest.test_case "degradation ratios" `Slow
            test_evaluate_degradations;
          Alcotest.test_case "ranking sorted" `Slow test_rank_sorted;
          Alcotest.test_case "divergence disqualifies" `Quick
            test_divergence_disqualifies;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "robust",
        [
          Alcotest.test_case "equal-MTBF scenarios" `Quick test_robust_scenarios;
          Alcotest.test_case "criterion parsing" `Quick test_criterion_parsing;
          Alcotest.test_case "shared-ensemble selection" `Slow
            test_robust_evaluate;
          Alcotest.test_case "adaptive candidate" `Slow
            test_robust_adaptive_candidate;
          Alcotest.test_case "validation" `Quick test_robust_validation;
        ] );
    ]
