(* Differential test harness for the incremental evaluation engine: after any
   interleaving of flips, batch assignments, rollbacks and commits, the
   engine's makespan must agree with Evaluator.expected_makespan on the
   materialized schedule. The oracle stays the single source of truth; the
   engine earns its keep purely on speed. *)

open Wfc_core
module Builders = Wfc_dag.Builders
module FM = Wfc_platform.Failure_model

let rel_close a b =
  (* 1e-9 relative: the engine's expm1 rearrangement costs a few ulps, not
     more *)
  Wfc_test_util.close ~eps:1e-9 a b

let oracle model g ~order flags =
  Evaluator.expected_makespan model g
    (Schedule.make g ~order:(Array.copy order) ~checkpointed:(Array.copy flags))

let check_against_oracle ?(msg = "engine = oracle") model g ~order engine =
  let m = Eval_engine.makespan engine in
  let m' = oracle model g ~order (Eval_engine.flags engine) in
  if not (rel_close m m') then
    Alcotest.failf "%s: engine %.17g oracle %.17g" msg m m'

(* ---- differential qcheck suite ---- *)

type op =
  | Flip of int
  | Set_all of bool array
  | Rollback
  | Commit
  | Prefix of int

let gen_scenario =
  let open QCheck2.Gen in
  let* g = Wfc_test_util.gen_dag ~max_n:9 () in
  let n = Wfc_dag.Dag.n_tasks g in
  let* model_idx = int_range 0 (List.length Wfc_test_util.models - 1) in
  let* ops =
    list_size (int_range 1 25)
      (frequency
         [
           (6, map (fun v -> Flip v) (int_range 0 (n - 1)));
           (2, map (fun f -> Set_all f) (array_repeat n bool));
           (1, return Rollback);
           (1, return Commit);
           (2, map (fun i -> Prefix i) (int_range 0 n));
         ])
  in
  return (g, model_idx, ops)

let print_scenario (g, model_idx, ops) =
  Format.asprintf "%a model#%d ops[%s]" Wfc_dag.Dag.pp_stats g model_idx
    (String.concat "; "
       (List.map
          (function
            | Flip v -> Printf.sprintf "flip %d" v
            | Set_all f ->
                Printf.sprintf "set %s"
                  (String.concat ""
                     (List.map (fun b -> if b then "1" else "0")
                        (Array.to_list f)))
            | Rollback -> "rollback"
            | Commit -> "commit"
            | Prefix i -> Printf.sprintf "prefix %d" i)
          ops))

let run_scenario (g, model_idx, ops) =
  let model = List.nth Wfc_test_util.models model_idx in
  let order = Wfc_dag.Dag.topological_order g in
  let engine = Eval_engine.create model g ~order in
  let committed = ref (Array.make (Wfc_dag.Dag.n_tasks g) false) in
  List.iter
    (fun op ->
      (match op with
      | Flip v -> ignore (Eval_engine.flip engine v)
      | Set_all f -> Eval_engine.set_flags engine f
      | Rollback -> Eval_engine.rollback engine
      | Commit ->
          Eval_engine.commit engine;
          committed := Eval_engine.flags engine
      | Prefix upto ->
          (* the partial-evaluation cursor must not corrupt later full
             queries; also pin its value against the oracle's prefix sums *)
          let p = Eval_engine.prefix_makespan engine ~upto in
          let r =
            Evaluator.evaluate model g
              (Schedule.make g ~order:(Array.copy order)
                 ~checkpointed:(Eval_engine.flags engine))
          in
          let acc = ref 0. in
          for j = 0 to upto - 1 do
            acc := !acc +. r.Evaluator.per_position.(j)
          done;
          if not (rel_close p !acc) then
            Alcotest.failf "prefix %d: engine %.17g oracle %.17g" upto p !acc);
      (match op with
      | Rollback ->
          if Eval_engine.flags engine <> !committed then
            Alcotest.fail "rollback did not restore committed flags"
      | _ -> ());
      check_against_oracle model g ~order engine)
    ops;
  true

let differential =
  Wfc_test_util.qtest ~count:500 "any flip/set/rollback interleaving = oracle"
    gen_scenario print_scenario run_scenario

(* per-position and fault-probability vectors must agree with the oracle's
   too, not just their sum *)
let vectors_against_oracle =
  Wfc_test_util.qtest ~count:200 "per-position and fault vectors = oracle"
    gen_scenario print_scenario (fun (g, model_idx, ops) ->
      let model = List.nth Wfc_test_util.models model_idx in
      let order = Wfc_dag.Dag.topological_order g in
      let engine = Eval_engine.create model g ~order in
      List.iter
        (function
          | Flip v -> ignore (Eval_engine.flip engine v)
          | Set_all f -> Eval_engine.set_flags engine f
          | Rollback -> Eval_engine.rollback engine
          | Commit -> Eval_engine.commit engine
          | Prefix _ -> ())
        ops;
      let r =
        Evaluator.evaluate model g
          (Schedule.make g ~order:(Array.copy order)
             ~checkpointed:(Eval_engine.flags engine))
      in
      let pp = Eval_engine.per_position engine in
      let fp = Eval_engine.fault_probability engine in
      Array.iteri
        (fun i e ->
          if not (Wfc_test_util.close ~eps:1e-9 e r.Evaluator.per_position.(i))
          then
            Alcotest.failf "per_position.(%d): %.17g <> %.17g" i e
              r.Evaluator.per_position.(i))
        pp;
      Array.iteri
        (fun i p ->
          if
            not
              (Wfc_test_util.close ~eps:1e-9 p r.Evaluator.fault_probability.(i))
          then
            Alcotest.failf "fault_probability.(%d): %.17g <> %.17g" i p
              r.Evaluator.fault_probability.(i))
        fp;
      true)

(* ---- structured fixed cases ---- *)

let flip_walk model g =
  let order = Wfc_dag.Dag.topological_order g in
  let n = Wfc_dag.Dag.n_tasks g in
  let engine = Eval_engine.create model g ~order in
  check_against_oracle ~msg:"initial" model g ~order engine;
  (* walk every single flip on and off, then a rolling wave *)
  for v = 0 to n - 1 do
    ignore (Eval_engine.flip engine v);
    check_against_oracle ~msg:(Printf.sprintf "flip on %d" v) model g ~order
      engine
  done;
  for v = n - 1 downto 0 do
    ignore (Eval_engine.flip engine v);
    check_against_oracle ~msg:(Printf.sprintf "flip off %d" v) model g ~order
      engine
  done

let test_chain () =
  let g =
    Builders.chain
      ~weights:[| 6.; 2.; 8.; 4.; 5.; 3. |]
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ~recovery_cost:(fun _ w -> 0.15 *. w)
      ()
  in
  List.iter (fun model -> flip_walk model g) Wfc_test_util.models

let test_fork_and_join () =
  let fork =
    Builders.fork ~source_weight:5. ~sink_weights:[| 1.; 2.; 3.; 4. |]
      ~checkpoint_cost:(fun _ w -> 0.3 *. w)
      ~recovery_cost:(fun _ w -> 0.3 *. w)
      ()
  in
  let join =
    Builders.join
      ~source_weights:[| 4.; 3.; 2.; 1. |]
      ~sink_weight:6.
      ~checkpoint_cost:(fun _ w -> 0.1 *. w)
      ~recovery_cost:(fun _ w -> 0.1 *. w)
      ()
  in
  List.iter
    (fun model ->
      flip_walk model fork;
      flip_walk model join)
    Wfc_test_util.models

let test_single_task () =
  let g = Builders.chain ~weights:[| 7. |] ~checkpoint_cost:(fun _ _ -> 1.5) () in
  List.iter (fun model -> flip_walk model g) Wfc_test_util.models

let test_lambda_zero () =
  (* failure-free platform: makespan is exactly the flagged work sum *)
  let g =
    Builders.chain
      ~weights:[| 2.; 3.; 4. |]
      ~checkpoint_cost:(fun _ _ -> 0.5)
      ()
  in
  let model = FM.make ~lambda:0. () in
  let order = [| 0; 1; 2 |] in
  let engine = Eval_engine.create model g ~order in
  Alcotest.(check (float 1e-12)) "no flags" 9. (Eval_engine.makespan engine);
  ignore (Eval_engine.flip engine 1);
  Alcotest.(check (float 1e-12)) "one flag" 9.5 (Eval_engine.makespan engine);
  Eval_engine.set_flags engine [| true; true; true |];
  Alcotest.(check (float 1e-12)) "all flags" 10.5 (Eval_engine.makespan engine)

let test_rollback_is_bitwise () =
  (* same flags reached by different paths give bit-identical makespans *)
  let g =
    Builders.fork_join ~source_weight:4. ~middle_weights:[| 2.; 6. |]
      ~sink_weight:3.
      ~checkpoint_cost:(fun _ w -> 0.25 *. w)
      ()
  in
  let model = FM.make ~lambda:0.05 ~downtime:0.3 () in
  let order = Wfc_dag.Dag.topological_order g in
  let engine = Eval_engine.create model g ~order in
  let m0 = Eval_engine.makespan engine in
  Eval_engine.commit engine;
  ignore (Eval_engine.flip engine 0);
  ignore (Eval_engine.flip engine 2);
  Eval_engine.rollback engine;
  Alcotest.(check (float 0.)) "rollback restores bitwise" m0
    (Eval_engine.makespan engine);
  let fresh = Eval_engine.create model g ~order in
  ignore (Eval_engine.flip fresh 3);
  ignore (Eval_engine.flip engine 3);
  Alcotest.(check (float 0.)) "path-independent" (Eval_engine.makespan fresh)
    (Eval_engine.makespan engine)

let test_prefix_cursor () =
  (* mimic the branch-and-bound access pattern: assign flags left to right,
     asking only for prefix costs, with backtracking *)
  let g =
    let rng = Wfc_platform.Rng.create 11 in
    Builders.layered
      ~rand:(fun b -> Wfc_platform.Rng.int rng b)
      ~n_layers:3
      ~layer_width:(fun l -> if l = 1 then 3 else 2)
      ~weight:(fun i -> 2. +. float_of_int (i mod 3))
      ~checkpoint_cost:(fun _ _ -> 0.7)
      ~recovery_cost:(fun _ _ -> 0.4)
      ()
  in
  let model = FM.make ~lambda:0.08 ~downtime:0.1 () in
  let order = Wfc_dag.Dag.topological_order g in
  let n = Array.length order in
  let engine = Eval_engine.create model g ~order in
  let flags = Array.make n false in
  let oracle_prefix upto =
    let r =
      Evaluator.evaluate model g
        (Schedule.make g ~order:(Array.copy order)
           ~checkpointed:(Array.copy flags))
    in
    let acc = ref 0. in
    for j = 0 to upto - 1 do
      acc := !acc +. r.Evaluator.per_position.(j)
    done;
    !acc
  in
  let check_prefix upto =
    let p = Eval_engine.prefix_makespan engine ~upto in
    if not (rel_close p (oracle_prefix upto)) then
      Alcotest.failf "prefix %d: engine %.17g oracle %.17g" upto p
        (oracle_prefix upto)
  in
  (* depth-first walk over a few branches, as the solver would *)
  let rec walk i =
    if i < n then begin
      List.iter
        (fun b ->
          flags.(order.(i)) <- b;
          Eval_engine.set_flag_at engine ~pos:i b;
          check_prefix (i + 1);
          if i < 3 then walk (i + 1))
        [ true; false ]
    end
  in
  walk 0;
  check_prefix n

(* ---- batch evaluation ---- *)

let test_batch_matches_oracle_and_split () =
  let g =
    Builders.fork_join ~source_weight:2. ~middle_weights:[| 3.; 1.; 4. |]
      ~sink_weight:2.
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ()
  in
  let model = FM.make ~lambda:0.06 ~downtime:0.2 () in
  let order = Wfc_dag.Dag.topological_order g in
  let n = Array.length order in
  let rng = Wfc_platform.Rng.create 7 in
  let candidates =
    List.init 23 (fun _ ->
        Array.init n (fun _ -> Wfc_platform.Rng.int rng 2 = 0))
  in
  let results = Eval_engine.batch_evaluate ~domains:1 model g ~order candidates in
  List.iter2
    (fun flags m ->
      let m' = oracle model g ~order flags in
      if not (rel_close m m') then
        Alcotest.failf "batch vs oracle: %.17g <> %.17g" m m')
    candidates results;
  (* bit-identical whatever the parallelism degree *)
  List.iter
    (fun domains ->
      let r = Eval_engine.batch_evaluate ~domains model g ~order candidates in
      if not (List.for_all2 (fun a b -> a = b) results r) then
        Alcotest.failf "batch not deterministic at %d domains" domains)
    [ 2; 3; 5; 64 ]

(* ---- validation ---- *)

let test_validation () =
  let g = Builders.chain ~weights:[| 1.; 2. |] () in
  let model = FM.make ~lambda:0.1 () in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Eval_engine.create model g ~order:[| 1; 0 |]);
  expect_invalid (fun () ->
      Eval_engine.create ~flags:[| true |] model g ~order:[| 0; 1 |]);
  let engine = Eval_engine.create model g ~order:[| 0; 1 |] in
  expect_invalid (fun () -> Eval_engine.flip engine 2);
  expect_invalid (fun () -> Eval_engine.prefix_makespan engine ~upto:3);
  expect_invalid (fun () -> Eval_engine.set_flag_at engine ~pos:(-1) false);
  expect_invalid (fun () -> Eval_engine.set_flags engine [| true |]);
  expect_invalid (fun () ->
      Eval_engine.batch_evaluate ~domains:0 model g ~order:[| 0; 1 |]
        [ [| false; false |] ])

let () =
  Alcotest.run "eval_engine"
    [
      ( "differential",
        [ differential; vectors_against_oracle ] );
      ( "structures",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "fork and join" `Quick test_fork_and_join;
          Alcotest.test_case "single task" `Quick test_single_task;
          Alcotest.test_case "lambda = 0" `Quick test_lambda_zero;
        ] );
      ( "state",
        [
          Alcotest.test_case "rollback bitwise" `Quick test_rollback_is_bitwise;
          Alcotest.test_case "prefix cursor" `Quick test_prefix_cursor;
        ] );
      ( "batch",
        [
          Alcotest.test_case "oracle + split invariance" `Quick
            test_batch_matches_oracle_and_split;
        ] );
      ("validation", [ Alcotest.test_case "arguments" `Quick test_validation ]);
    ]
