(* Corpus sweep rig: directory ingestion with per-file error collection,
   scenario semantics, and the determinism contract (engine- and
   domain-invariant reports) that makes the golden cram test meaningful. *)

module Corpus = Wfc_corpus.Corpus
module Dag = Wfc_dag.Dag
module Json = Wfc_io.Json

let corpus_dir = "corpus" (* committed mini-corpus, a declared test dep *)

let mini_corpus () =
  match Corpus.load_dir ~cost:(Wfc_workflows.Cost_model.Proportional 0.1) corpus_dir with
  | Error e -> Alcotest.failf "load_dir: %s" e
  | Ok (instances, skipped) ->
      Alcotest.(check (list (pair string string))) "no skips" [] skipped;
      instances

(* the backend label is the only report field allowed to vary across
   engines; everything else must be byte-identical *)
let fingerprint report =
  Json.to_string (Corpus.to_json { report with Corpus.backend_name = "-" })

let quick_config =
  {
    Corpus.default_config with
    Corpus.scenarios = [ Corpus.Relative 0.5; Corpus.Law (Wfc_platform.Distribution.exponential ~rate:1e-2) ];
    search = Wfc_core.Heuristics.Grid 5;
    exact_budget = 20_000;
    exact_max_n = 12;
  }

let test_load_dir () =
  let instances = mini_corpus () in
  Alcotest.(check (list string))
    "sorted instances"
    [ "cybershake-12.json"; "diamond.dax"; "epigenomics-7.json"; "montage-20.dax" ]
    (List.map (fun i -> i.Corpus.name) instances);
  Alcotest.(check (list string))
    "formats" [ "json"; "dax"; "wfcommons"; "dax" ]
    (List.map
       (fun i -> Wfc_io.Workflow_io.format_name i.Corpus.format)
       instances);
  (* every instance is schedulable: costs were ensured *)
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (i.Corpus.name ^ " costed") true
        (Wfc_workflows.Cost_model.is_costed i.Corpus.dag))
    instances

let test_load_dir_errors () =
  let dir = Filename.temp_file "wfc_corpus" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "good.json" {|{"tasks": [{"id": 0, "weight": 2}], "edges": []}|};
  write "bad.json" "{ truncated";
  write "cyclic.dax"
    {|<adag><job id="a" runtime="1"/><job id="b" runtime="1"/>
      <child ref="a"><parent ref="b"/></child>
      <child ref="b"><parent ref="a"/></child></adag>|};
  write "notes.txt" "not a workflow, not scanned";
  (match Corpus.load_dir dir with
  | Error e -> Alcotest.failf "load_dir: %s" e
  | Ok (instances, skipped) ->
      Alcotest.(check (list string))
        "loaded" [ "good.json" ]
        (List.map (fun i -> i.Corpus.name) instances);
      Alcotest.(check (list string))
        "skipped files"
        [ Filename.concat dir "bad.json"; Filename.concat dir "cyclic.dax" ]
        (List.map fst skipped);
      List.iter
        (fun (path, msg) ->
          Alcotest.(check bool)
            (path ^ " names itself") true
            (String.length msg > String.length path
            && String.sub msg 0 (String.length path) = path))
        skipped);
  Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  Sys.rmdir dir;
  match Corpus.load_dir "/no/such/dir" with
  | Error (_ : string) -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing directory"

let test_scenarios () =
  let g = Dag.of_weights ~weights:[| 30.; 70. |] ~edges:[ (0, 1) ] () in
  Alcotest.(check string) "relative name" "mtbf=0.5W"
    (Corpus.scenario_name (Corpus.Relative 0.5));
  Wfc_test_util.check_close "relative mtbf" 50.
    (Corpus.scenario_mtbf (Corpus.Relative 0.5) g);
  let law = Wfc_platform.Distribution.weibull ~shape:0.7 ~scale:100. in
  Wfc_test_util.check_close "law mtbf"
    (Wfc_platform.Distribution.mean law)
    (Corpus.scenario_mtbf (Corpus.Law law) g);
  (* zero-weight instance: the relative scenario still yields a model *)
  let z = Dag.of_weights ~weights:[| 0. |] ~edges:[] () in
  Wfc_test_util.check_close "zero-weight fallback" 0.5
    (Corpus.scenario_mtbf (Corpus.Relative 0.5) z)

let test_sweep_shape () =
  let instances = mini_corpus () in
  let report = Corpus.sweep ~config:quick_config instances in
  Alcotest.(check int) "rows = instances x scenarios"
    (List.length instances * 2)
    (List.length report.Corpus.rows);
  Alcotest.(check (list string))
    "scenario names" [ "mtbf=0.5W"; "exp(0.01)" ] report.Corpus.scenario_names;
  List.iter
    (fun row ->
      Alcotest.(check int) "cells" 6 (List.length row.Corpus.cells);
      (* the winner really is the cell minimum *)
      List.iter
        (fun c ->
          if c.Corpus.ratio < row.Corpus.best_ratio then
            Alcotest.failf "%s: best %.17g beaten by %s %.17g" row.Corpus.workflow
              row.Corpus.best_ratio c.Corpus.heuristic c.Corpus.ratio)
        row.Corpus.cells;
      (* ratios are >= 1 up to rounding: failures only slow things down *)
      List.iter
        (fun c ->
          if c.Corpus.ratio < 0.999999 then
            Alcotest.failf "ratio %.17g < 1" c.Corpus.ratio)
        row.Corpus.cells;
      (* the exact column, when present, is never worse than the winner *)
      match row.Corpus.exact with
      | Some (_, r) when r > row.Corpus.best_ratio +. 1e-9 ->
          Alcotest.failf "%s: exact %.17g worse than best %.17g"
            row.Corpus.workflow r row.Corpus.best_ratio
      | _ -> ())
    report.Corpus.rows;
  (* tables render without raising and cover every scenario *)
  Alcotest.(check int) "tables" 2 (List.length (Corpus.tables report));
  (* the JSON report is valid JSON *)
  match Json.of_string (Json.to_string (Corpus.to_json report)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report JSON invalid: %s" e

let test_engine_invariance () =
  let instances = mini_corpus () in
  let with_backend backend =
    fingerprint
      (Corpus.sweep ~config:{ quick_config with Corpus.backend } instances)
  in
  let base = with_backend Wfc_core.Eval_engine.Incremental in
  Alcotest.(check string) "flat = incremental" base
    (with_backend Wfc_core.Eval_engine.Flat);
  Alcotest.(check string) "naive = incremental" base
    (with_backend Wfc_core.Eval_engine.Naive)

let test_domain_invariance () =
  let instances = mini_corpus () in
  let with_domains domains =
    fingerprint
      (Corpus.sweep ~config:{ quick_config with Corpus.domains } instances)
  in
  let base = with_domains 1 in
  Alcotest.(check string) "3 domains = 1 domain" base (with_domains 3);
  Alcotest.(check string) "8 domains = 1 domain" base (with_domains 8)

let test_rf_determinism () =
  (* RF streams are derived from the job index, so even the randomized
     linearization is reproducible run to run *)
  let instances = mini_corpus () in
  let config =
    {
      quick_config with
      Corpus.heuristics =
        [ (Wfc_dag.Linearize.Random_first, Wfc_core.Heuristics.Ckpt_weight) ];
      exact_budget = 0;
    }
  in
  let run () = fingerprint (Corpus.sweep ~config instances) in
  Alcotest.(check string) "reproducible" (run ()) (run ());
  let shifted =
    fingerprint (Corpus.sweep ~config:{ config with Corpus.seed = 43 } instances)
  in
  (* and the seed is actually consulted: RF with another seed may differ;
     we only pin that changing it is safe, not that it changes results *)
  ignore shifted

let () =
  Alcotest.run "corpus"
    [
      ( "ingestion",
        [
          Alcotest.test_case "load_dir" `Quick test_load_dir;
          Alcotest.test_case "load_dir errors" `Quick test_load_dir_errors;
        ] );
      ("scenarios", [ Alcotest.test_case "naming and mtbf" `Quick test_scenarios ]);
      ( "sweep",
        [
          Alcotest.test_case "shape and winners" `Quick test_sweep_shape;
          Alcotest.test_case "engine invariance" `Quick test_engine_invariance;
          Alcotest.test_case "domain invariance" `Quick test_domain_invariance;
          Alcotest.test_case "rf determinism" `Quick test_rf_determinism;
        ] );
    ]
