(* Workflow ingestion front door: format sniffing, round-trip identity
   through both JSON formats, differential DAX vs WfCommons loading, and
   the never-raise contract on hostile bytes. *)

open Wfc_io
module Dag = Wfc_dag.Dag
module Task = Wfc_dag.Task

let dag_equal a b =
  Dag.n_tasks a = Dag.n_tasks b
  && Dag.edges a = Dag.edges b
  && Array.for_all2 Task.equal (Dag.tasks a) (Dag.tasks b)

let load_ok what = function
  | Ok g -> g
  | Error e -> Alcotest.failf "%s failed: %s" what e

let expect_error what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error (_ : string) -> ()

(* ---- sniffing ---- *)

let test_sniff () =
  let check msg expected contents =
    Alcotest.(check (option string))
      msg expected
      (Option.map Workflow_io.format_name (Workflow_io.sniff contents))
  in
  check "dax" (Some "dax") "<adag name=\"x\"/>";
  check "dax bom+ws" (Some "dax") "\xef\xbb\xbf  \n<adag/>";
  check "wfcommons" (Some "wfcommons") {|{"workflow": {"tasks": []}}|};
  check "native" (Some "json") {|{"tasks": [], "edges": []}|};
  check "not json" None "garbage";
  check "empty" None "";
  check "ws only" None " \t\n"

let test_load_with_format () =
  let g = Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Montage ~n:20 ~seed:1 in
  let check_format ext save expected =
    let path = Filename.temp_file "wfc" ext in
    save path g;
    (match Workflow_io.load_with_format path with
    | Error e -> Alcotest.failf "load %s: %s" path e
    | Ok (fmt, g') ->
        Alcotest.(check string) "format" expected (Workflow_io.format_name fmt);
        Alcotest.(check int) "tasks" (Dag.n_tasks g) (Dag.n_tasks g'));
    Sys.remove path
  in
  check_format ".dax" (fun p g -> Dax.save p g) "dax";
  check_format ".json" (fun p g -> Wfcommons.save p g) "wfcommons";
  check_format ".json" (fun p g -> Workflow_format.save_dag p g) "json"

let test_extensions () =
  Alcotest.(check bool) "dax" true (Workflow_io.is_workflow_file "a/b.dax");
  Alcotest.(check bool) "xml" true (Workflow_io.is_workflow_file "b.xml");
  Alcotest.(check bool) "json" true (Workflow_io.is_workflow_file "c.json");
  Alcotest.(check bool) "readme" false (Workflow_io.is_workflow_file "README.md")

(* ---- round-trip identity (satellite 1) ---- *)

let gen_dag = Wfc_test_util.gen_dag ~max_n:12 ()
let print_dag g = Format.asprintf "%a" Dag.pp_stats g

let native_roundtrip =
  Wfc_test_util.qtest ~count:300 "dag -> native JSON -> dag identity" gen_dag
    print_dag (fun g ->
      let j = Workflow_format.dag_to_json ~name:"rt" g in
      match Workflow_format.dag_of_json j with
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e
      | Ok g' -> dag_equal g g')

let wfcommons_roundtrip =
  Wfc_test_util.qtest ~count:300 "dag -> WfCommons JSON -> dag identity"
    gen_dag print_dag (fun g ->
      (* serialize to *text* and back: the float printer is part of the
         contract under test *)
      match Json.of_string (Json.to_string (Wfcommons.to_json g)) with
      | Error e -> QCheck2.Test.fail_reportf "reparse failed: %s" e
      | Ok j -> (
          match Wfcommons.of_json j with
          | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e
          | Ok g' -> dag_equal g g'))

let sniffed_roundtrip =
  Wfc_test_util.qtest ~count:100 "load_string sniffs both JSON formats"
    gen_dag print_dag (fun g ->
      let native = Json.to_string (Workflow_format.dag_to_json g) in
      let wfc = Json.to_string (Wfcommons.to_json g) in
      dag_equal g (load_ok "native" (Workflow_io.load_string native))
      && dag_equal g (load_ok "wfcommons" (Workflow_io.load_string wfc)))

(* ---- differential: DAX vs WfCommons (satellite 3) ---- *)

let test_differential_formats () =
  List.iter
    (fun fam ->
      (* raw generator output: no costs, like real DAX/WfCommons files *)
      let g = Wfc_workflows.Pegasus.generate fam ~n:30 ~seed:11 in
      let dax_path = Filename.temp_file "wfc" ".dax" in
      let wfc_path = Filename.temp_file "wfc" ".json" in
      Dax.save dax_path g;
      Wfcommons.save wfc_path g;
      let from_dax = load_ok "dax" (Workflow_io.load dax_path) in
      let from_wfc = load_ok "wfcommons" (Workflow_io.load wfc_path) in
      Sys.remove dax_path;
      Sys.remove wfc_path;
      Alcotest.(check bool) "bit-identical DAGs" true (dag_equal from_dax from_wfc);
      (* identical E(M) under every heuristic and engine *)
      let cost = Wfc_workflows.Cost_model.Proportional 0.1 in
      let ga = Wfc_workflows.Cost_model.ensure cost from_dax in
      let gb = Wfc_workflows.Cost_model.ensure cost from_wfc in
      let model = Wfc_platform.Failure_model.make ~lambda:1e-3 () in
      List.iter
        (fun ckpt ->
          List.iter
            (fun backend ->
              let run g =
                (Wfc_core.Heuristics.run ~search:(Wfc_core.Heuristics.Grid 6)
                   ~backend model g ~lin:Wfc_dag.Linearize.Depth_first ~ckpt)
                  .Wfc_core.Heuristics.makespan
              in
              let ma = run ga and mb = run gb in
              if ma <> mb then
                Alcotest.failf "%s/%s: %.17g <> %.17g"
                  (Wfc_core.Heuristics.ckpt_strategy_name ckpt)
                  (Wfc_core.Eval_engine.backend_name backend)
                  ma mb)
            Wfc_core.Eval_engine.[ Naive; Incremental; Flat ])
        Wfc_core.Heuristics.all_ckpt_strategies)
    Wfc_workflows.Pegasus.[ Montage; Genome ]

(* ---- robustness: loaders never raise (satellite 2) ---- *)

let fuzz_never_raises =
  let gen =
    QCheck2.Gen.(
      oneof
        [
          string_size ~gen:char (int_range 0 300);
          string_size ~gen:printable (int_range 0 300);
          (* mutations of near-valid documents reach deeper decoder paths
             than uniform noise *)
          (let* base =
             oneofl
               [
                 {|{"workflow": {"tasks": [{"name": "a", "runtimeInSeconds": 1}]}}|};
                 {|{"tasks": [{"id": 0, "weight": 1}], "edges": []}|};
                 {|<adag><job id="a" runtime="1"/></adag>|};
               ]
           in
           let* cut = int_range 0 (String.length base) in
           let* extra = string_size ~gen:char (int_range 0 8) in
           return (String.sub base 0 cut ^ extra));
        ])
  in
  Wfc_test_util.qtest ~count:2000 "load_string never raises" gen
    (Printf.sprintf "%S") (fun contents ->
      match Workflow_io.load_string ~path:"fuzz" contents with
      | Ok _ | Error _ -> true)

let test_structured_errors () =
  let cases =
    [
      (* truncated documents *)
      ("truncated dax", "<adag><job id=\"a\" runtime=\"1\"");
      ("truncated json", {|{"workflow": {"tasks": [{"name": "a"|});
      (* cyclic edges *)
      ( "wfcommons cycle",
        {|{"workflow": {"tasks": [
            {"name": "a", "runtimeInSeconds": 1, "children": ["b"]},
            {"name": "b", "runtimeInSeconds": 1, "children": ["a"]}]}}|} );
      ("native cycle",
       {|{"tasks": [{"id": 0, "weight": 1}, {"id": 1, "weight": 1}],
          "edges": [[0, 1], [1, 0]]}|});
      (* duplicate identifiers *)
      ( "wfcommons duplicate id",
        {|{"workflow": {"tasks": [
            {"name": "a", "runtimeInSeconds": 1},
            {"name": "a", "runtimeInSeconds": 2}]}}|} );
      (* NaN / negative weights *)
      ( "wfcommons nan runtime",
        {|{"workflow": {"tasks": [{"name": "a", "runtimeInSeconds": nan}]}}|} );
      ( "wfcommons negative runtime",
        {|{"workflow": {"tasks": [{"name": "a", "runtimeInSeconds": -3}]}}|} );
      ("native negative weight", {|{"tasks": [{"id": 0, "weight": -1}], "edges": []}|});
      ("dax negative runtime", {|<adag><job id="a" runtime="-1"/></adag>|});
      (* unresolvable references *)
      ( "wfcommons unknown parent",
        {|{"workflow": {"tasks": [{"name": "a", "runtimeInSeconds": 1,
            "parents": ["ghost"]}]}}|} );
      (* wrong shapes *)
      ("wfcommons tasks not a list", {|{"workflow": {"tasks": 3}}|});
      ( "wfcommons parents not a list",
        {|{"workflow": {"tasks": [{"name": "a", "runtimeInSeconds": 1,
            "parents": "b"}]}}|} );
      ("empty", "");
    ]
  in
  List.iter
    (fun (what, contents) ->
      match Workflow_io.load_string ~path:"input.file" contents with
      | Ok _ -> Alcotest.failf "%s: expected an error" what
      | Error msg ->
          (* every message names the input *)
          if not (String.length msg >= 10 && String.sub msg 0 10 = "input.file")
          then Alcotest.failf "%s: message %S does not name the input" what msg)
    cases

let test_missing_file () =
  expect_error "missing file" (Workflow_io.load "/no/such/file.json");
  expect_error "missing dax" (Dax.load "/no/such/file.dax");
  expect_error "missing wfcommons" (Wfcommons.load "/no/such/file.json");
  expect_error "missing native" (Workflow_format.load_dag "/no/such/file.json")

let test_deep_nesting () =
  (* recursive-descent parsers must cap depth, not blow the stack *)
  let deep_json = String.concat "" (List.init 100_000 (fun _ -> "[")) in
  expect_error "deep json" (Json.of_string deep_json);
  let deep_xml = String.concat "" (List.init 100_000 (fun _ -> "<a>")) in
  expect_error "deep xml" (Xml.of_string deep_xml);
  expect_error "deep via front door" (Workflow_io.load_string deep_xml)

let test_char_references () =
  (* out-of-range character references must not raise (Char.chr) *)
  expect_error "negative" (Xml.of_string "<a>&#-5;</a>");
  expect_error "huge" (Xml.of_string "<a>&#99999999999;</a>");
  (match Xml.of_string "<a>&#65;&#x42;&#955;</a>" with
  | Error e -> Alcotest.failf "valid refs rejected: %s" e
  | Ok x ->
      (* ASCII decodes; astral/non-ASCII degrade to placeholders *)
      Alcotest.(check string) "text" "AB?" (Xml.text_content x));
  expect_error "front door" (Workflow_io.load_string "<adag>&#-5;</adag>")

let () =
  Alcotest.run "workflow_io"
    [
      ( "sniff",
        [
          Alcotest.test_case "formats" `Quick test_sniff;
          Alcotest.test_case "load_with_format" `Quick test_load_with_format;
          Alcotest.test_case "extensions" `Quick test_extensions;
        ] );
      ("roundtrip", [ native_roundtrip; wfcommons_roundtrip; sniffed_roundtrip ]);
      ( "differential",
        [ Alcotest.test_case "dax vs wfcommons" `Quick test_differential_formats ] );
      ( "robustness",
        [
          fuzz_never_raises;
          Alcotest.test_case "structured errors" `Quick test_structured_errors;
          Alcotest.test_case "missing files" `Quick test_missing_file;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "character references" `Quick test_char_references;
        ] );
    ]
