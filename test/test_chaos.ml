(* Chaos layer: the fault-spec grammar, seed determinism, and live
   proxying against an in-process daemon — a transparent proxy changes
   nothing, torn requests at every byte offset never hang or crash the
   daemon, and a seeded mini-soak upholds the crash-only invariants
   (completed replies byte-identical, daemon alive, zero engines leaked). *)

module Chaos = Wfc_serve.Chaos
module Server = Wfc_serve.Server
module Client = Wfc_serve.Client

(* ---- grammar ------------------------------------------------------------ *)

let test_grammar_roundtrip () =
  List.iter
    (fun s ->
      match Chaos.of_string s with
      | Ok spec -> Alcotest.(check string) s s (Chaos.to_string spec)
      | Error m -> Alcotest.failf "%S failed to parse: %s" s m)
    [ "none"; "tear@0"; "tear@17"; "reset@333"; "corrupt@5"; "corrupt@5:1";
      "corrupt@0:128"; "delay:2.5"; "trickle:3";
      "tear@9,corrupt@2:128,delay:10" ]

let test_grammar_rejects () =
  List.iter
    (fun s ->
      match Chaos.of_string s with
      | Error _ -> ()
      | Ok spec ->
          Alcotest.failf "%S must not parse (got %s)" s (Chaos.to_string spec))
    [ "tear"; "tear@"; "tear@-1"; "tear@x"; "corrupt@1:0"; "corrupt@1:256";
      "delay:-5"; "delay:inf"; "trickle:0"; "frobnicate@2"; "reset:5";
      "tear@1,," ]

let test_seed_determinism () =
  for seed = 0 to 50 do
    Alcotest.(check string) "same seed, same spec"
      (Chaos.to_string (Chaos.random ~seed))
      (Chaos.to_string (Chaos.random ~seed))
  done;
  let distinct =
    List.init 50 (fun seed -> Chaos.to_string (Chaos.random ~seed))
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "seeds actually vary" true (List.length distinct > 10);
  (* every derived spec is expressible in (and survives) the grammar *)
  for seed = 0 to 50 do
    let s = Chaos.to_string (Chaos.random ~seed) in
    match Chaos.of_string s with
    | Ok spec -> Alcotest.(check string) "grammar round-trip" s (Chaos.to_string spec)
    | Error m -> Alcotest.failf "derived spec %S does not reparse: %s" s m
  done

(* ---- live daemon helpers ------------------------------------------------ *)

let with_daemon f =
  let addr = ref None in
  let m = Mutex.create () and c = Condition.create () in
  let th =
    Thread.create
      (fun () ->
        match
          Server.serve
            ~ready:(fun a ->
              Mutex.protect m (fun () ->
                  addr := Some a;
                  Condition.signal c))
            (Server.Tcp 0)
        with
        | Ok () -> ()
        | Error msg -> failwith ("daemon failed to start: " ^ msg))
      ()
  in
  Mutex.protect m (fun () ->
      while !addr = None do
        Condition.wait c m
      done);
  let port =
    match !addr with
    | Some a -> (
        match String.rindex_opt a ':' with
        | Some i ->
            int_of_string (String.sub a (i + 1) (String.length a - i - 1))
        | None -> Alcotest.failf "unparsable daemon address %S" a)
    | None -> assert false
  in
  let target = Server.Tcp port in
  Fun.protect
    ~finally:(fun () ->
      (match Client.connect target with
      | Ok fd ->
          ignore (Client.exchange fd [ "shutdown" ]);
          (try Unix.close fd with Unix.Unix_error _ -> ())
      | Error _ -> ());
      Thread.join th)
    (fun () -> f target)

let exchange_via target lines =
  match Client.connect target with
  | Error msg -> Alcotest.failf "connect failed: %s" msg
  | Ok fd ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.
       with Unix.Unix_error _ -> ());
      let r = Client.exchange fd lines in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      r

(* ---- proxy behaviour ---------------------------------------------------- *)

let test_passthrough_identity () =
  with_daemon @@ fun target ->
  let lines = [ "ping"; "solve family=montage n=15 mtbf=100"; "ping" ] in
  let direct = exchange_via target lines in
  match Chaos.start ~target [] with
  | Error m -> Alcotest.failf "proxy failed to start: %s" m
  | Ok p ->
      let via_proxy = exchange_via (Chaos.listen p) lines in
      Chaos.stop p;
      Alcotest.(check bool) "transparent proxy changes nothing" true
        (via_proxy = direct);
      Alcotest.(check bool) "daemon still answers" true
        (exchange_via target [ "ping" ]
        = [ { Client.rid = 1L; body = Ok [ "pong" ] } ])

(* Tear the request stream at EVERY byte offset of a small batch: the
   client must get replies or a torn connection, never hang, and the
   daemon must survive all of it. *)
let test_torn_at_every_offset_live () =
  with_daemon @@ fun target ->
  let lines = [ "ping"; "ping" ] in
  let stream_len =
    List.fold_left (fun acc l -> acc + String.length l + 1) 0 lines
  in
  for cut = 0 to stream_len do
    match Chaos.start ~target [ Chaos.Tear cut ] with
    | Error m -> Alcotest.failf "proxy failed to start: %s" m
    | Ok p ->
        let replies = exchange_via (Chaos.listen p) lines in
        Chaos.stop p;
        (* whatever came back is a subset of the undamaged replies *)
        List.iter
          (fun (r : Client.reply) ->
            match r.body with
            | Ok body ->
                Alcotest.(check (list string))
                  (Printf.sprintf "cut=%d rid=%Ld" cut r.rid)
                  [ "pong" ] body
            | Error _ -> ())
          replies
  done;
  Alcotest.(check bool) "daemon alive after every tear" true
    (exchange_via target [ "ping" ]
    = [ { Client.rid = 1L; body = Ok [ "pong" ] } ])

let test_mini_soak () =
  with_daemon @@ fun target ->
  let seeds = List.init 30 (fun i -> i) in
  let r = Chaos.soak ~target ~seeds () in
  Alcotest.(check int) "all seeds ran" 30 r.Chaos.runs;
  Alcotest.(check int) "no byte mismatches" 0 r.Chaos.mismatched;
  Alcotest.(check int) "no leaked engines" 0 r.Chaos.leaked;
  Alcotest.(check bool) "daemon alive" true r.Chaos.alive;
  Alcotest.(check int) "every run classified" 30
    (r.Chaos.completed + r.Chaos.structured + r.Chaos.torn)

let () =
  Alcotest.run "chaos"
    [ ( "grammar",
        [ Alcotest.test_case "round-trips" `Quick test_grammar_roundtrip;
          Alcotest.test_case "rejects" `Quick test_grammar_rejects;
          Alcotest.test_case "seed determinism" `Quick test_seed_determinism ] );
      ( "proxy",
        [ Alcotest.test_case "transparent pass-through" `Quick
            test_passthrough_identity;
          Alcotest.test_case "torn at every offset, live" `Quick
            test_torn_at_every_offset_live ] );
      ( "soak",
        [ Alcotest.test_case "seeded mini-soak" `Quick test_mini_soak ] );
    ]
