open Wfc_core
module Dag = Wfc_dag.Dag
module Builders = Wfc_dag.Builders
module Linearize = Wfc_dag.Linearize
module FM = Wfc_platform.Failure_model

let test_names () =
  let expected =
    [ "CkptNvr"; "CkptAlws"; "CkptW"; "CkptC"; "CkptD"; "CkptPer" ]
  in
  Alcotest.(check (list string)) "names" expected
    (List.map Heuristics.ckpt_strategy_name Heuristics.all_ckpt_strategies);
  List.iter
    (fun s ->
      match Heuristics.ckpt_strategy_of_string (Heuristics.ckpt_strategy_name s) with
      | Some s' when s' = s -> ()
      | _ -> Alcotest.fail "round trip")
    Heuristics.all_ckpt_strategies;
  Alcotest.(check string) "combined" "DF-CkptW"
    (Heuristics.name Linearize.Depth_first Heuristics.Ckpt_weight)

let test_candidate_counts_exhaustive () =
  Alcotest.(check (list int)) "n=5" [ 1; 2; 3; 4 ]
    (Heuristics.candidate_counts Heuristics.Exhaustive ~n:5);
  Alcotest.(check (list int)) "n=1" []
    (Heuristics.candidate_counts Heuristics.Exhaustive ~n:1)

let test_candidate_counts_grid () =
  let counts = Heuristics.candidate_counts (Heuristics.Grid 16) ~n:200 in
  Alcotest.(check bool) "within budget (geo+lin overlap allowed)" true
    (List.length counts <= 18);
  Alcotest.(check bool) "contains 1" true (List.mem 1 counts);
  Alcotest.(check bool) "contains n-1" true (List.mem 199 counts);
  Alcotest.(check bool) "sorted strictly" true
    (List.sort_uniq compare counts = counts);
  (* small n degenerates to exhaustive *)
  Alcotest.(check (list int)) "n=8 exhaustive" [ 1; 2; 3; 4; 5; 6; 7 ]
    (Heuristics.candidate_counts (Heuristics.Grid 16) ~n:8)

let weights = [| 10.; 40.; 20.; 30. |]

let ranked_dag () =
  (* independent tasks: ids 0..3, weights above; c_i = [4;1;3;2];
     outweight ranking needs edges, so add 0 -> 1 (d_0 = 40). *)
  Dag.of_weights
    ~checkpoint_cost:(fun i _ -> [| 4.; 1.; 3.; 2. |].(i))
    ~weights ~edges:[ (0, 1) ] ()

let flags_to_list f = Array.to_list f

let test_flags_by_weight () =
  let g = ranked_dag () in
  let order = [| 0; 1; 2; 3 |] in
  let f = Heuristics.checkpoint_flags Heuristics.Ckpt_weight g ~order ~n_ckpt:2 in
  (* two heaviest: tasks 1 (40) and 3 (30) *)
  Alcotest.(check (list bool)) "top-2 by weight"
    [ false; true; false; true ] (flags_to_list f)

let test_flags_by_cost () =
  let g = ranked_dag () in
  let order = [| 0; 1; 2; 3 |] in
  let f = Heuristics.checkpoint_flags Heuristics.Ckpt_cost g ~order ~n_ckpt:2 in
  (* two cheapest checkpoints: tasks 1 (c=1) and 3 (c=2) *)
  Alcotest.(check (list bool)) "top-2 by cheap cost"
    [ false; true; false; true ] (flags_to_list f)

let test_flags_by_outweight () =
  let g = ranked_dag () in
  let order = [| 0; 1; 2; 3 |] in
  let f = Heuristics.checkpoint_flags Heuristics.Ckpt_outweight g ~order ~n_ckpt:1 in
  (* only task 0 has successors (d_0 = 40) *)
  Alcotest.(check (list bool)) "heaviest successors"
    [ true; false; false; false ] (flags_to_list f)

let test_flags_never_always () =
  let g = ranked_dag () in
  let order = [| 0; 1; 2; 3 |] in
  Alcotest.(check (list bool)) "never" [ false; false; false; false ]
    (flags_to_list (Heuristics.checkpoint_flags Heuristics.Ckpt_never g ~order ~n_ckpt:2));
  Alcotest.(check (list bool)) "always" [ true; true; true; true ]
    (flags_to_list (Heuristics.checkpoint_flags Heuristics.Ckpt_always g ~order ~n_ckpt:0))

let test_flags_periodic () =
  (* W = 100; N = 4: thresholds at 25, 50, 75 on the failure-free timeline
     10, 50, 70, 100 -> task 1 (first to finish past 25, also covering 50)
     and task 3 (first past 75). *)
  let g = ranked_dag () in
  let order = [| 0; 1; 2; 3 |] in
  let f = Heuristics.checkpoint_flags Heuristics.Ckpt_periodic g ~order ~n_ckpt:4 in
  Alcotest.(check (list bool)) "periodic placement"
    [ false; true; false; true ] (flags_to_list f);
  (* N = 1 means no checkpoint at all *)
  let f1 = Heuristics.checkpoint_flags Heuristics.Ckpt_periodic g ~order ~n_ckpt:1 in
  Alcotest.(check (list bool)) "N=1 no checkpoints"
    [ false; false; false; false ] (flags_to_list f1)

let test_flags_periodic_follows_order () =
  let g = ranked_dag () in
  (* different linearization shifts the timeline *)
  let order = [| 2; 3; 0; 1 |] in
  let f = Heuristics.checkpoint_flags Heuristics.Ckpt_periodic g ~order ~n_ckpt:2 in
  (* timeline 20, 50, 60, 100; single threshold at 50 -> task 3 *)
  Alcotest.(check (list bool)) "uses the given order"
    [ false; false; false; true ] (flags_to_list f)

let test_flags_validation () =
  let g = ranked_dag () in
  let order = [| 0; 1; 2; 3 |] in
  match Heuristics.checkpoint_flags Heuristics.Ckpt_weight g ~order ~n_ckpt:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n_ckpt > n accepted"

let model = FM.make ~lambda:0.02 ~downtime:0.1 ()

let chain_dag () =
  Builders.chain
    ~weights:[| 5.; 9.; 3.; 7.; 4.; 8. |]
    ~checkpoint_cost:(fun _ w -> 0.15 *. w)
    ~recovery_cost:(fun _ w -> 0.15 *. w)
    ()

let test_run_baselines () =
  let g = chain_dag () in
  let never = Heuristics.run model g ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_never in
  Alcotest.(check int) "never has 0 ckpt" 0
    (Schedule.checkpoint_count never.Heuristics.schedule);
  Alcotest.(check int) "never: single evaluation" 1 never.Heuristics.evaluations;
  let always = Heuristics.run model g ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_always in
  Alcotest.(check int) "always has n ckpt" 6
    (Schedule.checkpoint_count always.Heuristics.schedule)

let test_run_searches_n () =
  let g = chain_dag () in
  let o = Heuristics.run model g ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight in
  Alcotest.(check int) "tries all N in 1..n-1" 5 o.Heuristics.evaluations;
  Alcotest.(check int) "best N recorded" o.Heuristics.n_ckpt
    (Schedule.checkpoint_count o.Heuristics.schedule);
  (* result must be at least as good as both baselines *)
  let never = Heuristics.run model g ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_never in
  Alcotest.(check bool) "beats never" true
    (o.Heuristics.makespan <= never.Heuristics.makespan +. 1e-9)

let test_run_matches_brute_force_subset_family () =
  (* the heuristic's best-N schedule must match an explicit scan over N *)
  let g = chain_dag () in
  let order = Linearize.run Linearize.Depth_first g in
  let o = Heuristics.run model g ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_cost in
  let explicit =
    List.fold_left
      (fun acc n_ckpt ->
        let flags = Heuristics.checkpoint_flags Heuristics.Ckpt_cost g ~order ~n_ckpt in
        let s = Schedule.make g ~order ~checkpointed:flags in
        Float.min acc (Evaluator.expected_makespan model g s))
      infinity
      [ 1; 2; 3; 4; 5 ]
  in
  Wfc_test_util.check_close "same optimum" explicit o.Heuristics.makespan

let test_grid_close_to_exhaustive () =
  let g =
    Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Proportional 0.1)
      (Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Montage ~n:80 ~seed:2)
  in
  let model = FM.make ~lambda:1e-3 () in
  let full = Heuristics.run model g ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight in
  let grid =
    Heuristics.run ~search:(Heuristics.Grid 24) model g ~lin:Linearize.Depth_first
      ~ckpt:Heuristics.Ckpt_weight
  in
  Alcotest.(check bool) "grid within 2% of exhaustive" true
    (grid.Heuristics.makespan <= full.Heuristics.makespan *. 1.02)

let test_best_over_linearizations () =
  let g =
    Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Proportional 0.1)
      (Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Ligo ~n:60 ~seed:4)
  in
  let model = FM.make ~lambda:1e-3 () in
  let _, best =
    Heuristics.best_over_linearizations ~search:(Heuristics.Grid 16) model g
      ~ckpt:Heuristics.Ckpt_weight
  in
  List.iter
    (fun lin ->
      let o = Heuristics.run ~search:(Heuristics.Grid 16) model g ~lin ~ckpt:Heuristics.Ckpt_weight in
      Alcotest.(check bool)
        ("best <= " ^ Linearize.strategy_name lin)
        true
        (best.Heuristics.makespan <= o.Heuristics.makespan +. 1e-9))
    Linearize.all

let test_heuristics_near_brute_force () =
  (* on a tiny DAG the best heuristic should be close to the true optimum *)
  let g =
    Dag.of_weights
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ~recovery_cost:(fun _ w -> 0.2 *. w)
      ~weights:[| 4.; 2.; 6.; 3.; 5. |]
      ~edges:[ (0, 2); (1, 2); (2, 3); (2, 4) ]
      ()
  in
  let model = FM.make ~lambda:0.05 () in
  let _, opt = Brute_force.optimal model g in
  let best =
    List.fold_left
      (fun acc ckpt ->
        let _, o = Heuristics.best_over_linearizations model g ~ckpt in
        Float.min acc o.Heuristics.makespan)
      infinity Heuristics.all_ckpt_strategies
  in
  Alcotest.(check bool) "heuristics within 5% of optimal" true
    (best <= opt *. 1.05);
  Alcotest.(check bool) "heuristics not better than optimal" true
    (best >= opt -. 1e-9)

(* ---- candidate_counts edge cases ---- *)

let test_candidate_counts_edges () =
  (* n = 1: no positive count below n exists *)
  List.iter
    (fun search ->
      Alcotest.(check (list int)) "n=1 empty" []
        (Heuristics.candidate_counts search ~n:1))
    [ Heuristics.Exhaustive; Heuristics.Grid 2; Heuristics.Grid 100 ];
  (* n = 2: the only candidate is N = 1, whatever the search *)
  List.iter
    (fun search ->
      Alcotest.(check (list int)) "n=2 singleton" [ 1 ]
        (Heuristics.candidate_counts search ~n:2))
    [ Heuristics.Exhaustive; Heuristics.Grid 2; Heuristics.Grid 100 ];
  (* Grid 2 is the smallest accepted budget: endpoints only *)
  Alcotest.(check (list int)) "Grid 2 endpoints" [ 1; 99 ]
    (Heuristics.candidate_counts (Heuristics.Grid 2) ~n:100);
  (match Heuristics.candidate_counts (Heuristics.Grid 1) ~n:100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Grid 1 on large n must raise");
  (* budget >= n - 1 degenerates to the exhaustive scan *)
  List.iter
    (fun budget ->
      Alcotest.(check (list int)) "budget covers all"
        (Heuristics.candidate_counts Heuristics.Exhaustive ~n:12)
        (Heuristics.candidate_counts (Heuristics.Grid budget) ~n:12))
    [ 11; 12; 1000 ];
  (* emitted counts are unique, sorted, within [1, n-1] for many shapes *)
  List.iter
    (fun (budget, n) ->
      let counts = Heuristics.candidate_counts (Heuristics.Grid budget) ~n in
      Alcotest.(check bool) "sorted unique" true
        (List.sort_uniq compare counts = counts);
      Alcotest.(check bool) "in range" true
        (List.for_all (fun c -> 1 <= c && c <= n - 1) counts))
    [ (2, 3); (2, 1000); (3, 7); (5, 50); (16, 200); (16, 10000); (7, 9) ]

(* ---- backend invariance ---- *)

(* The incremental engine must not change what the search finds: same order,
   same flags, same reported makespan (bitwise), same bookkeeping, on a
   realistic 50-task instance. *)
let test_backend_invariance () =
  let module P = Wfc_workflows.Pegasus in
  let module CM = Wfc_workflows.Cost_model in
  let model = FM.make ~lambda:1e-3 ~downtime:1. () in
  List.iter
    (fun (family, seed) ->
      let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n:50 ~seed) in
      List.iter
        (fun ckpt ->
          List.iter
            (fun search ->
              let naive =
                Heuristics.run ~search ~backend:Eval_engine.Naive model g
                  ~lin:Linearize.Depth_first ~ckpt
              in
              List.iter
                (fun backend ->
                  let engine =
                    Heuristics.run ~search ~backend model g
                      ~lin:Linearize.Depth_first ~ckpt
                  in
                  let name =
                    Heuristics.ckpt_strategy_name ckpt ^ "/"
                    ^ Eval_engine.backend_name backend
                  in
                  Alcotest.(check bool)
                    (name ^ " same order") true
                    (naive.Heuristics.schedule.Schedule.order
                    = engine.Heuristics.schedule.Schedule.order);
                  Alcotest.(check bool)
                    (name ^ " same flags") true
                    (naive.Heuristics.schedule.Schedule.checkpointed
                    = engine.Heuristics.schedule.Schedule.checkpointed);
                  Alcotest.(check (float 0.))
                    (name ^ " same makespan") naive.Heuristics.makespan
                    engine.Heuristics.makespan;
                  Alcotest.(check int)
                    (name ^ " same n_ckpt") naive.Heuristics.n_ckpt
                    engine.Heuristics.n_ckpt;
                  Alcotest.(check int)
                    (name ^ " same evaluations") naive.Heuristics.evaluations
                    engine.Heuristics.evaluations)
                [ Eval_engine.Incremental; Eval_engine.Flat ])
            [ Heuristics.Exhaustive; Heuristics.Grid 8 ])
        Heuristics.all_ckpt_strategies)
    [ (P.Montage, 5); (P.Ligo, 9) ]

let () =
  Alcotest.run "heuristics"
    [
      ( "heuristics",
        [
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "counts exhaustive" `Quick
            test_candidate_counts_exhaustive;
          Alcotest.test_case "counts grid" `Quick test_candidate_counts_grid;
          Alcotest.test_case "counts edges" `Quick test_candidate_counts_edges;
          Alcotest.test_case "backend invariance" `Quick
            test_backend_invariance;
          Alcotest.test_case "flags by weight" `Quick test_flags_by_weight;
          Alcotest.test_case "flags by cost" `Quick test_flags_by_cost;
          Alcotest.test_case "flags by outweight" `Quick test_flags_by_outweight;
          Alcotest.test_case "flags never/always" `Quick test_flags_never_always;
          Alcotest.test_case "flags periodic" `Quick test_flags_periodic;
          Alcotest.test_case "periodic follows order" `Quick
            test_flags_periodic_follows_order;
          Alcotest.test_case "flags validation" `Quick test_flags_validation;
          Alcotest.test_case "run baselines" `Quick test_run_baselines;
          Alcotest.test_case "run searches N" `Quick test_run_searches_n;
          Alcotest.test_case "run = explicit N scan" `Quick
            test_run_matches_brute_force_subset_family;
          Alcotest.test_case "grid close to exhaustive" `Slow
            test_grid_close_to_exhaustive;
          Alcotest.test_case "best over linearizations" `Quick
            test_best_over_linearizations;
          Alcotest.test_case "near brute force" `Slow
            test_heuristics_near_brute_force;
        ] );
    ]
