Scheduling-as-a-service golden tests: a daemon on a Unix-domain socket,
driven end to end by wfc request. Solves are analytic and simulation is
seeded, so every response body below is a byte-stable pin; the only
deliberately nondeterministic surface (latency, uptime, qps) lives in the
stats endpoint and is filtered out where stats is checked.

Start a daemon; its own output goes to a log so this transcript stays
ordered, and the client retries the connect until the socket appears:

  $ ../bin/wfc.exe serve --socket s.sock --cache-size 8 > serve.log 2>&1 &
  $ ../bin/wfc.exe request --socket s.sock ping
  pong

A solve, then the same solve again: the second answer is served by a warm
engine out of the LRU and must be byte-identical:

  $ ../bin/wfc.exe request --socket s.sock solve family=montage n=15 mtbf=100 | tee first.out
  solve Montage-15 (15 tasks): DF-CkptW, tier heuristic
    E[makespan] = 203.67 s (ratio 1.2271)
    checkpoints = 14 (evaluations 14)
  $ ../bin/wfc.exe request --socket s.sock solve family=montage n=15 mtbf=100 > warm.out
  $ cmp first.out warm.out && echo identical
  identical

Binary mode ships the same request through the length-prefixed codec and
renders the decoded response with the same formatter — transcripts are
byte-comparable across the two wire modes:

  $ ../bin/wfc.exe request --socket s.sock --binary solve family=montage n=15 mtbf=100 > binary.out
  $ cmp first.out binary.out && echo identical
  identical

Deadline budgets map onto deterministic solver tiers — a node budget at a
fixed calibration rate, never a wall-clock abort — so tightening the
deadline degrades the tier, reproducibly:

  $ ../bin/wfc.exe request --socket s.sock solve family=montage n=15 mtbf=100 deadline=0.001
  solve Montage-15 (15 tasks): DF-CkptW, tier heuristic
    E[makespan] = 203.67 s (ratio 1.2271)
    checkpoints = 14 (evaluations 14)
  $ ../bin/wfc.exe request --socket s.sock solve family=montage n=15 mtbf=100 deadline=0.01
  solve Montage-15 (15 tasks): DF-CkptW, tier local-search
    E[makespan] = 202.55 s (ratio 1.2203)
    checkpoints = 11 (evaluations 45)
  $ ../bin/wfc.exe request --socket s.sock solve family=montage n=15 mtbf=100 deadline=60
  solve Montage-15 (15 tasks): DF-CkptW, tier exact
    E[makespan] = 202.55 s (ratio 1.2203)
    checkpoints = 11 (evaluations 655)

Seeded Monte Carlo rides the same solve (and the same cache key):

  $ ../bin/wfc.exe request --socket s.sock simulate family=montage n=15 mtbf=100 runs=300 mcseed=5
  solve Montage-15 (15 tasks): DF-CkptW, tier heuristic
    E[makespan] = 203.67 s (ratio 1.2271)
    checkpoints = 14 (evaluations 14)
    simulated mean = 202.10 s (95% CI [200.16, 204.04], 300 runs)
    failures per run = 1.95

Static-vs-adaptive comparison over shared failure traces:

  $ ../bin/wfc.exe request --socket s.sock adapt family=montage n=12 mtbf=200 true-mtbf=50 traces=20 mcseed=3
  adapt Montage-12: winner adaptive by cvar@0.95
  policy    mean   cvar@0.95  worst
  --------  -----  ---------  -----
  DF-CkptW  173.3  268.3      340.6
  adaptive  173.4  267.9      333.3

Malformed requests come back as structured errors, and the connection
survives them — pipeline a bad line between two good ones:

  $ printf 'ping\nsolve mtbf=-5\nping\n' | ../bin/wfc.exe request --socket s.sock --stdin
  pong
  error: bad-request MTBF must be positive (got '-5')
  pong
  [1]
  $ ../bin/wfc.exe request --socket s.sock solve frobnicate=1
  error: bad-request unknown solve parameter "frobnicate"
  [1]

The deterministic rows of the stats endpoint pin the whole session: the
seven solve requests include the rejected mtbf=-5 one (it parsed, then
failed validation), while frobnicate never parsed and counts nowhere.
The montage-15 engine warms on the first solve and hits four more times
(warm, binary, two deadline tiers short of exact — the exact tier drives
the solver directly) plus once under simulate; adapt's montage-12 is the
second miss. Every checkout came back: puts = hits + misses and nothing
is outstanding — the no-leak pin:

  $ ../bin/wfc.exe request --socket s.sock stats | grep -E '^(workers|queue\.|cache\.|requests\.|tier\.)' | sed 's/ *$//'
  workers                  2
  queue.depth              64
  cache.capacity           8
  cache.size               2
  cache.hits               5
  cache.misses             2
  cache.evictions          0
  cache.puts               7
  cache.outstanding        0
  requests.ping            3
  requests.solve           7
  requests.simulate        1
  requests.adapt           1
  requests.stats           1
  tier.exact               1
  tier.heuristic           6
  tier.local-search        1

Shutdown drains in-flight work, and the daemon removes its socket:

  $ ../bin/wfc.exe request --socket s.sock shutdown
  stopping
  $ wait
  $ cat serve.log
  wfc serve: listening on s.sock
  $ test -S s.sock || echo removed
  removed

Admission control: a depth-1 queue with a single worker sheds the second
of two pipelined compute requests with a structured busy error while the
sleep holds the only slot (replies print in request order; busy gets its
own exit code, 3, so scripts can back off and retry):

  $ ../bin/wfc.exe serve --socket s2.sock --queue-depth 1 --workers 1 > serve2.log 2>&1 &
  $ printf 'sleep ms=600\nsolve family=montage n=15 mtbf=100\n' | ../bin/wfc.exe request --socket s2.sock --stdin
  slept 0.6 s
  error: busy queue full (1 outstanding, depth 1)
  [3]
  $ ../bin/wfc.exe request --socket s2.sock shutdown
  stopping
  $ wait

Bad daemon flags die as one-line cmdliner usage errors (exit 124), through
the same validated converters as the rest of the CLI:

  $ ../bin/wfc.exe serve --port 70000 2>&1 | head -1
  wfc: option '--port': port must be in [0, 65535] (got '70000')
  $ ../bin/wfc.exe serve --port 70000 2>/dev/null; echo "exit: $?"
  exit: 124
  $ ../bin/wfc.exe serve --cache-size=-1 2>&1 | head -1
  wfc: option '--cache-size': cache size must be non-negative (got '-1')
  $ ../bin/wfc.exe serve --cache-size=-1 2>/dev/null; echo "exit: $?"
  exit: 124
  $ ../bin/wfc.exe serve --queue-depth 0 2>&1 | head -1
  wfc: option '--queue-depth': queue depth must be at least 1 (got '0')
  $ ../bin/wfc.exe serve --queue-depth 0 2>/dev/null; echo "exit: $?"
  exit: 124

And --deadline is now one shared converter: stress, corpus and the
protocol all reject a non-positive deadline with the same wording:

  $ mkdir -p d && ../bin/wfc.exe corpus d --deadline 0 2>&1 | head -1
  wfc: option '--deadline': deadline must be positive (got '0')
  $ ../bin/wfc.exe corpus d --deadline 0 2>/dev/null; echo "exit: $?"
  exit: 124
  $ ../bin/wfc.exe stress -w montage -n 12 --deadline=-2 2>&1 | head -1
  wfc: option '--deadline': deadline must be positive (got '-2')

The per-request watchdog is wall-clock, unlike the deterministic deadline
tiering: a runaway job is cooperatively cancelled mid-compute and answers
a structured timeout error (its own exit code, 4, distinct from busy's 3),
while requests that finish inside the budget are byte-for-byte unaffected.
The timeout message quotes the budget, never the elapsed time, so even
cancelled responses are byte-stable:

  $ ../bin/wfc.exe serve --socket s3.sock --timeout 0.05 > serve3.log 2>&1 &
  $ ../bin/wfc.exe request --socket s3.sock sleep ms=600
  error: timeout request exceeded its 0.05s compute budget
  [4]
  $ ../bin/wfc.exe request --socket s3.sock solve family=montage n=15 mtbf=100
  solve Montage-15 (15 tasks): DF-CkptW, tier heuristic
    E[makespan] = 203.67 s (ratio 1.2271)
    checkpoints = 14 (evaluations 14)
  $ ../bin/wfc.exe request --socket s3.sock stats | awk '$1 == "timeouts" { print $1, $2 }'
  timeouts 1
  $ ../bin/wfc.exe request --socket s3.sock shutdown
  stopping
  $ wait

Chaos soak: seeded, replayable fault schedules through an in-process
proxy — torn frames, corrupted bytes, trickled writes, delays, hard
connection resets — alternating the text and binary transports. Completed
replies must match a chaos-free exchange byte for byte, and afterwards
the daemon must still answer with zero warm engines checked out. The
damage breakdown depends on response interleaving, so only the invariant
line is pinned here:

  $ ../bin/wfc.exe serve --socket s4.sock > serve4.log 2>&1 &
  $ ../bin/wfc.exe chaos --socket s4.sock --seeds 40 | grep -E '^(chaos soak|invariants)'
  chaos soak: 40 runs (seed base 0)
  invariants: mismatched=0 leaked=0 alive=yes

A fixed spec replays one schedule on every run; a transparent one must
complete every exchange identically:

  $ ../bin/wfc.exe chaos --socket s4.sock --spec none --seeds 2
  chaos spec: none
  chaos soak: 2 runs (seed base 0)
    completed   2
    structured  0
    torn        0
    mismatched  0
  invariants: mismatched=0 leaked=0 alive=yes
  $ ../bin/wfc.exe request --socket s4.sock shutdown
  stopping
  $ wait

The fault grammar goes through a validated converter like every other
flag — bad specs die as one-line usage errors (exit 124):

  $ ../bin/wfc.exe chaos --socket s4.sock --spec "tear@x" 2>&1 | head -1
  wfc: option '--spec': chaos spec: tear: byte offset must be a non-negative
  $ ../bin/wfc.exe chaos --socket s4.sock --spec "tear@x" 2>/dev/null; echo "exit: $?"
  exit: 124
