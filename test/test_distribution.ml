module D = Wfc_platform.Distribution
module SF = Wfc_platform.Special_functions
module Rng = Wfc_platform.Rng
module Stats = Wfc_platform.Stats

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---- special functions ---- *)

let test_gamma_values () =
  Wfc_test_util.check_close ~eps:1e-10 "G(1)" 1. (SF.gamma 1.);
  Wfc_test_util.check_close ~eps:1e-10 "G(2)" 1. (SF.gamma 2.);
  Wfc_test_util.check_close ~eps:1e-10 "G(5)" 24. (SF.gamma 5.);
  Wfc_test_util.check_close ~eps:1e-10 "G(0.5)" (Float.sqrt Float.pi)
    (SF.gamma 0.5);
  Wfc_test_util.check_close ~eps:1e-10 "G(1.5)" (0.5 *. Float.sqrt Float.pi)
    (SF.gamma 1.5);
  Wfc_test_util.check_close ~eps:1e-9 "log G(10)" (Float.log 362880.)
    (SF.log_gamma 10.);
  expect_invalid (fun () -> ignore (SF.log_gamma 0.));
  expect_invalid (fun () -> ignore (SF.log_gamma (-1.)))

let test_gamma_recurrence () =
  (* Gamma(x+1) = x Gamma(x) across a range including reflection territory *)
  List.iter
    (fun x ->
      Wfc_test_util.check_close ~eps:1e-9 "recurrence" (x *. SF.gamma x)
        (SF.gamma (x +. 1.)))
    [ 0.1; 0.3; 0.7; 1.3; 2.5; 6.2 ]

(* ---- distributions ---- *)

let test_validation () =
  expect_invalid (fun () -> ignore (D.exponential ~rate:0.));
  expect_invalid (fun () -> ignore (D.weibull ~shape:0. ~scale:1.));
  expect_invalid (fun () -> ignore (D.weibull ~shape:1. ~scale:(-1.)));
  expect_invalid (fun () -> ignore (D.weibull_of_mean ~shape:1. ~mean:0.));
  expect_invalid (fun () -> ignore (D.constant (-1.)));
  expect_invalid (fun () -> ignore (D.constant Float.infinity));
  expect_invalid (fun () -> ignore (D.hyperexponential ~p:1.5 ~rate1:1. ~rate2:1.));
  expect_invalid (fun () -> ignore (D.hyperexponential ~p:0.5 ~rate1:0. ~rate2:1.));
  expect_invalid (fun () -> ignore (D.hyperexponential ~p:0.5 ~rate1:1. ~rate2:(-1.)))

let test_constant () =
  let c = D.constant 3.5 in
  Wfc_test_util.check_close ~eps:1e-12 "mean" 3.5 (D.mean c);
  Alcotest.(check (float 0.)) "survival below" 1. (D.survival c 2.);
  Alcotest.(check (float 0.)) "survival above" 0. (D.survival c 4.);
  (* degenerate sampling consumes no randomness: the stream is untouched *)
  let rng = Rng.create 77 in
  let witness = Rng.copy rng in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "sample" 3.5 (D.sample c rng)
  done;
  Alcotest.(check int64) "stream untouched" (Rng.bits64 witness) (Rng.bits64 rng)

let test_hyperexponential () =
  let p = 0.9 and rate1 = 0.03 and rate2 = 1. /. 700. in
  let h = D.hyperexponential ~p ~rate1 ~rate2 in
  Wfc_test_util.check_close ~eps:1e-12 "mean formula"
    ((p /. rate1) +. ((1. -. p) /. rate2))
    (D.mean h);
  Wfc_test_util.check_close ~eps:1e-12 "survival"
    ((p *. Float.exp (-.rate1 *. 100.))
    +. ((1. -. p) *. Float.exp (-.rate2 *. 100.)))
    (D.survival h 100.);
  (* sample mean agrees with the analytic mean *)
  let rng = Rng.create 23 in
  let s = Stats.create () in
  for _ = 1 to 100_000 do
    let x = D.sample h rng in
    if x < 0. then Alcotest.fail "negative sample";
    Stats.add s x
  done;
  if Float.abs (Stats.mean s -. D.mean h) > 6. *. Stats.std_error s then
    Alcotest.failf "sample mean %.2f vs %.2f" (Stats.mean s) (D.mean h)

let test_means () =
  Wfc_test_util.check_close "exp mean" 1000. (D.mean (D.exponential ~rate:1e-3));
  (* Weibull(k=1, scale) is exponential with mean = scale *)
  Wfc_test_util.check_close ~eps:1e-10 "weibull k=1 mean" 500.
    (D.mean (D.weibull ~shape:1. ~scale:500.));
  (* weibull_of_mean round-trips the mean for any shape *)
  List.iter
    (fun shape ->
      Wfc_test_util.check_close ~eps:1e-9 "of_mean" 1234.
        (D.mean (D.weibull_of_mean ~shape ~mean:1234.)))
    [ 0.5; 0.7; 1.; 1.5; 3. ]

let test_shape_one_is_exponential () =
  (* identical inverse-CDF draws from the same stream *)
  let a = Rng.create 9 and b = Rng.create 9 in
  let exp = D.exponential ~rate:0.01 and wei = D.weibull ~shape:1. ~scale:100. in
  for _ = 1 to 1000 do
    Wfc_test_util.check_close ~eps:1e-12 "same draw" (D.sample exp a)
      (D.sample wei b)
  done

let test_sample_means () =
  let check dist =
    let rng = Rng.create 21 in
    let s = Stats.create () in
    for _ = 1 to 100_000 do
      let x = D.sample dist rng in
      if x < 0. then Alcotest.fail "negative sample";
      Stats.add s x
    done;
    let se = Stats.std_error s in
    if Float.abs (Stats.mean s -. D.mean dist) > 6. *. se then
      Alcotest.failf "%s: sample mean %.2f vs %.2f" (D.name dist) (Stats.mean s)
        (D.mean dist)
  in
  check (D.exponential ~rate:2e-3);
  check (D.weibull_of_mean ~shape:0.7 ~mean:1000.);
  check (D.weibull_of_mean ~shape:2.5 ~mean:300.)

let test_survival () =
  let exp = D.exponential ~rate:0.01 in
  Wfc_test_util.check_close ~eps:1e-12 "exp survival" (Float.exp (-1.))
    (D.survival exp 100.);
  Alcotest.(check (float 0.)) "at zero" 1. (D.survival exp 0.);
  let wei = D.weibull ~shape:2. ~scale:100. in
  Wfc_test_util.check_close ~eps:1e-12 "weibull survival" (Float.exp (-4.))
    (D.survival wei 200.)

let test_survival_matches_samples () =
  let dist = D.weibull_of_mean ~shape:0.7 ~mean:100. in
  let rng = Rng.create 31 in
  let t = 150. in
  let n = 100_000 in
  let above = ref 0 in
  for _ = 1 to n do
    if D.sample dist rng > t then incr above
  done;
  Wfc_test_util.check_close ~eps:0.01 "empirical survival" (D.survival dist t)
    (float_of_int !above /. float_of_int n)

(* ---- renewal simulation ---- *)

let workflow () =
  Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Proportional 0.1)
    (Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Montage ~n:30 ~seed:4)

let schedule g =
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  let flags =
    Wfc_core.Heuristics.checkpoint_flags Wfc_core.Heuristics.Ckpt_weight g
      ~order ~n_ckpt:10
  in
  Wfc_core.Schedule.make g ~order ~checkpointed:flags

let test_renewal_exponential_matches_analytic () =
  (* for exponential inter-arrivals the renewal engine must agree with the
     analytic evaluator (and hence with the memoryless engine) *)
  let g = workflow () in
  let s = schedule g in
  let lambda = 2e-3 in
  let model = Wfc_platform.Failure_model.make ~lambda ~downtime:1. () in
  let analytic = Wfc_core.Evaluator.expected_makespan model g s in
  let est =
    Wfc_simulator.Monte_carlo.estimate_renewal ~runs:30_000 ~seed:3
      ~failures:(D.exponential ~rate:lambda) ~downtime:1. g s
  in
  if not (Wfc_simulator.Monte_carlo.agrees_with est ~expected:analytic ~sigmas:5.)
  then
    Alcotest.failf "renewal exp: %.2f vs analytic %.2f"
      (Stats.mean est.Wfc_simulator.Monte_carlo.makespan)
      analytic

let test_renewal_weibull_runs () =
  let g = workflow () in
  let s = schedule g in
  let est =
    Wfc_simulator.Monte_carlo.estimate_renewal ~runs:5000 ~seed:5
      ~failures:(D.weibull_of_mean ~shape:0.7 ~mean:500.)
      ~downtime:0. g s
  in
  let mean = Stats.mean est.Wfc_simulator.Monte_carlo.makespan in
  Alcotest.(check bool) "at least fail-free" true
    (mean >= Wfc_core.Evaluator.fail_free_time g);
  Alcotest.(check bool) "failures occur" true
    (Stats.mean est.Wfc_simulator.Monte_carlo.failures > 0.1)

let test_shape_robustness_band () =
  (* at equal MTBF, varying the Weibull shape perturbs the expected makespan
     only moderately (the direction depends on the workflow's segment
     lengths); check the three laws stay within a 25% band of each other *)
  let g = workflow () in
  let s = schedule g in
  let mean_of shape =
    let dist =
      if shape = 1. then D.exponential ~rate:(1. /. 400.)
      else D.weibull_of_mean ~shape ~mean:400.
    in
    let est =
      Wfc_simulator.Monte_carlo.estimate_renewal ~runs:30_000 ~seed:7
        ~failures:dist ~downtime:0. g s
    in
    Stats.mean est.Wfc_simulator.Monte_carlo.makespan
  in
  let ms = List.map mean_of [ 0.5; 1.; 3. ] in
  let lo = List.fold_left Float.min infinity ms in
  let hi = List.fold_left Float.max 0. ms in
  Alcotest.(check bool)
    (Printf.sprintf "band [%.0f, %.0f] within 25%%" lo hi)
    true
    (hi <= lo *. 1.25)

let () =
  Alcotest.run "distribution"
    [
      ( "special_functions",
        [
          Alcotest.test_case "gamma values" `Quick test_gamma_values;
          Alcotest.test_case "gamma recurrence" `Quick test_gamma_recurrence;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "constant" `Quick test_constant;
          Alcotest.test_case "hyperexponential" `Slow test_hyperexponential;
          Alcotest.test_case "means" `Quick test_means;
          Alcotest.test_case "shape 1 = exponential" `Quick
            test_shape_one_is_exponential;
          Alcotest.test_case "sample means" `Slow test_sample_means;
          Alcotest.test_case "survival" `Quick test_survival;
          Alcotest.test_case "survival vs samples" `Slow
            test_survival_matches_samples;
        ] );
      ( "renewal",
        [
          Alcotest.test_case "exponential matches analytic" `Slow
            test_renewal_exponential_matches_analytic;
          Alcotest.test_case "weibull runs" `Slow test_renewal_weibull_runs;
          Alcotest.test_case "shape robustness band" `Slow
            test_shape_robustness_band;
        ] );
    ]
