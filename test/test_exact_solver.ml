open Wfc_core
module Dag = Wfc_dag.Dag
module FM = Wfc_platform.Failure_model

(* ---- reference evaluator (executable specification) ---- *)

let prop_reference_evaluator_agrees =
  Wfc_test_util.qtest ~count:120 "optimized evaluator = literal Theorem 3"
    (Wfc_test_util.gen_dag_and_schedule ~max_n:8 ())
    Wfc_test_util.print_dag_schedule
    (fun (g, s) ->
      List.for_all
        (fun model ->
          Wfc_test_util.close ~eps:1e-9
            (Evaluator.expected_makespan model g s)
            (Evaluator_reference.expected_makespan model g s))
        Wfc_test_util.models)

let test_reference_on_figure1 () =
  let g =
    Dag.of_weights
      ~checkpoint_cost:(fun _ w -> 0.1 *. w)
      ~recovery_cost:(fun _ w -> 0.1 *. w)
      ~weights:[| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |]
      ~edges:[ (0, 3); (3, 4); (3, 5); (4, 6); (5, 6); (1, 2); (2, 7); (6, 7) ]
      ()
  in
  let s =
    Schedule.make g ~order:[| 0; 3; 1; 2; 4; 5; 6; 7 |]
      ~checkpointed:[| false; false; false; true; true; false; false; false |]
  in
  let model = FM.make ~lambda:0.05 ~downtime:0.3 () in
  Wfc_test_util.check_close ~eps:1e-9 "figure 1"
    (Evaluator.expected_makespan model g s)
    (Evaluator_reference.expected_makespan model g s)

(* ---- branch and bound ---- *)

let model = FM.make ~lambda:0.06 ~downtime:0.2 ()

let prop_bnb_equals_brute_force =
  Wfc_test_util.qtest ~count:40 "B&B = exhaustive subset search"
    (Wfc_test_util.gen_dag ~max_n:9 ())
    (Format.asprintf "%a" Dag.pp_stats)
    (fun g ->
      let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
      let sol = Exact_solver.optimal_checkpoints model g ~order in
      let _, brute = Brute_force.optimal_checkpoints_for_order model g ~order in
      Wfc_test_util.close ~eps:1e-9 sol.Exact_solver.makespan brute)

let test_bnb_beyond_brute_force () =
  (* 20-task workflow: impractical for the 2^20-subset enumerator (each
     subset costs a full evaluation), routine for B&B *)
  let g =
    Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Proportional 0.1)
      (Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Montage ~n:20 ~seed:5)
  in
  let model = FM.make ~lambda:5e-3 () in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  let sol = Exact_solver.optimal_checkpoints model g ~order in
  (* optimal must not exceed the best heuristic with the same order *)
  let heur =
    Heuristics.run model g ~lin:Wfc_dag.Linearize.Depth_first
      ~ckpt:Heuristics.Ckpt_weight
  in
  Alcotest.(check bool) "<= DF-CkptW" true
    (sol.Exact_solver.makespan <= heur.Heuristics.makespan +. 1e-9);
  (* and local search started from the exact solution cannot improve it *)
  let ls = Local_search.improve model g sol.Exact_solver.schedule in
  Wfc_test_util.check_close ~eps:1e-9 "flip-optimal"
    sol.Exact_solver.makespan ls.Local_search.makespan;
  (* the bound must prune a substantial part of the 2 * 2^20 node tree *)
  Alcotest.(check bool)
    (Printf.sprintf "pruning worked (%d nodes)" sol.Exact_solver.nodes)
    true
    (sol.Exact_solver.nodes < (1 lsl 20) / 2)

let test_bnb_budget () =
  let g =
    Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Proportional 0.1)
      (Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Ligo ~n:30 ~seed:5)
  in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  match Exact_solver.optimal_checkpoints ~max_nodes:5 model g ~order with
  | exception Exact_solver.Node_budget_exceeded -> ()
  | _ -> Alcotest.fail "budget of 5 nodes cannot suffice"

let test_bnb_within_budget () =
  let g =
    Wfc_workflows.Cost_model.apply (Wfc_workflows.Cost_model.Proportional 0.1)
      (Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Ligo ~n:30 ~seed:5)
  in
  let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
  (* a 5-node budget is exhausted immediately, yet the incumbent must be a
     finite, valid schedule no worse than the warm-start heuristic *)
  let sol, status =
    Exact_solver.optimal_checkpoints_within ~max_nodes:5 model g ~order
  in
  (match status with
  | `Budget_exhausted -> ()
  | `Optimal -> Alcotest.fail "budget of 5 nodes cannot suffice");
  Alcotest.(check bool) "finite incumbent" true
    (Float.is_finite sol.Exact_solver.makespan);
  let heur =
    List.fold_left
      (fun acc ckpt ->
        Float.min acc
          (Heuristics.run model g ~lin:Wfc_dag.Linearize.Depth_first ~ckpt)
            .Heuristics.makespan)
      infinity
      [ Heuristics.Ckpt_weight; Heuristics.Ckpt_periodic ]
  in
  Alcotest.(check bool) "no worse than warm start" true
    (sol.Exact_solver.makespan <= heur +. 1e-9);
  (* the caller-supplied stop predicate also exhausts the budget *)
  let _, status =
    Exact_solver.optimal_checkpoints_within
      ~should_stop:(fun () -> true)
      model g ~order
  in
  (match status with
  | `Budget_exhausted -> ()
  | `Optimal -> Alcotest.fail "should_stop ignored");
  (* and with room to breathe the status certifies optimality *)
  let g = Wfc_dag.Builders.chain ~weights:[| 1.; 2.; 3.; 4. |] () in
  let order = [| 0; 1; 2; 3 |] in
  let sol, status = Exact_solver.optimal_checkpoints_within model g ~order in
  (match status with
  | `Optimal -> ()
  | `Budget_exhausted -> Alcotest.fail "tiny instance must complete");
  Wfc_test_util.check_close "same optimum as the raising API"
    (Exact_solver.optimal_checkpoints model g ~order).Exact_solver.makespan
    sol.Exact_solver.makespan

let test_bnb_validates_order () =
  let g = Wfc_dag.Builders.chain ~weights:[| 1.; 2. |] () in
  match Exact_solver.optimal_checkpoints model g ~order:[| 1; 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid order accepted"

let test_bnb_fail_free () =
  let g =
    Wfc_dag.Builders.chain ~weights:[| 1.; 2.; 3. |]
      ~checkpoint_cost:(fun _ _ -> 0.5) ()
  in
  let sol =
    Exact_solver.optimal_checkpoints FM.fail_free g ~order:[| 0; 1; 2 |]
  in
  Alcotest.(check int) "no checkpoints when no failures" 0
    (Schedule.checkpoint_count sol.Exact_solver.schedule);
  Wfc_test_util.check_close "T_inf" 6. sol.Exact_solver.makespan

(* cursor-backed branch and bound must visit the same tree and land on the
   same optimum as the naive prefix evaluation *)
let test_backend_invariance () =
  let module P = Wfc_workflows.Pegasus in
  let module CM = Wfc_workflows.Cost_model in
  let model = FM.make ~lambda:5e-3 ~downtime:0.5 () in
  List.iter
    (fun (family, n, seed) ->
      let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n ~seed) in
      let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
      let naive, st_n =
        Exact_solver.optimal_checkpoints_within ~backend:Eval_engine.Naive
          model g ~order
      in
      let engine, st_e =
        Exact_solver.optimal_checkpoints_within
          ~backend:Eval_engine.Incremental model g ~order
      in
      Alcotest.(check bool) "both optimal" true
        (st_n = `Optimal && st_e = `Optimal);
      Alcotest.(check bool) "same flags" true
        (naive.Exact_solver.schedule.Schedule.checkpointed
        = engine.Exact_solver.schedule.Schedule.checkpointed);
      Alcotest.(check (float 0.)) "same makespan" naive.Exact_solver.makespan
        engine.Exact_solver.makespan;
      Alcotest.(check int) "same nodes" naive.Exact_solver.nodes
        engine.Exact_solver.nodes)
    [ (P.Montage, 14, 5); (P.Ligo, 12, 9); (P.Genome, 16, 3) ]

(* ---- flat branch and bound --------------------------------------------- *)

(* with pruning features off and one domain, the flat search must expand the
   same tree node for node as the sequential engine search *)
let test_flat_node_parity () =
  let module P = Wfc_workflows.Pegasus in
  let module CM = Wfc_workflows.Cost_model in
  let model = FM.make ~lambda:5e-3 ~downtime:0.5 () in
  List.iter
    (fun (family, n, seed) ->
      let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n ~seed) in
      let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
      let engine, st_e =
        Exact_solver.optimal_checkpoints_within
          ~backend:Eval_engine.Incremental model g ~order
      in
      let flat, st_f =
        Exact_solver.optimal_checkpoints_within ~backend:Eval_engine.Flat
          ~domains:1 ~dominance:false ~memo:false model g ~order
      in
      Alcotest.(check bool) "both optimal" true
        (st_e = `Optimal && st_f = `Optimal);
      Alcotest.(check bool) "same flags" true
        (engine.Exact_solver.schedule.Schedule.checkpointed
        = flat.Exact_solver.schedule.Schedule.checkpointed);
      Alcotest.(check (float 0.)) "same makespan" engine.Exact_solver.makespan
        flat.Exact_solver.makespan;
      Alcotest.(check int) "same nodes" engine.Exact_solver.nodes
        flat.Exact_solver.nodes)
    [ (P.Montage, 14, 5); (P.Ligo, 12, 9); (P.Genome, 16, 3) ]

(* dominance and memo must never change the optimum, only the node count *)
let prop_flat_bnb_equals_brute_force =
  Wfc_test_util.qtest ~count:40
    "flat B&B (dominance + memo) = exhaustive subset search"
    (Wfc_test_util.gen_dag ~max_n:9 ())
    (Format.asprintf "%a" Dag.pp_stats)
    (fun g ->
      let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
      let sol =
        Exact_solver.optimal_checkpoints ~backend:Eval_engine.Flat model g
          ~order
      in
      let _, brute = Brute_force.optimal_checkpoints_for_order model g ~order in
      Wfc_test_util.close ~eps:1e-9 sol.Exact_solver.makespan brute)

(* the always-checkpoint dominance rule only fires on free checkpoints with
   cheap recovery; force that regime on half the tasks and pin the result
   against the exhaustive enumerator *)
let prop_flat_dominance_zero_cost_exact =
  Wfc_test_util.qtest ~count:40
    "dominance stays exact under zero-cost checkpoints"
    (Wfc_test_util.gen_dag ~max_n:8 ())
    (Format.asprintf "%a" Dag.pp_stats)
    (fun g ->
      let n = Dag.n_tasks g in
      let weights = Array.init n (fun v -> (Dag.task g v).Wfc_dag.Task.weight) in
      let edges =
        List.concat
          (List.init n (fun v ->
               List.map (fun y -> (v, y)) (Dag.succs g v)))
      in
      let g =
        Dag.of_weights ~weights ~edges
          ~checkpoint_cost:(fun v w -> if v mod 2 = 0 then 0. else 0.15 *. w)
          ~recovery_cost:(fun v w -> if v mod 2 = 0 then 0.4 *. w else 0.2 *. w)
          ()
      in
      let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
      let sol =
        Exact_solver.optimal_checkpoints ~backend:Eval_engine.Flat
          ~dominance:true ~memo:false model g ~order
      in
      let _, brute = Brute_force.optimal_checkpoints_for_order model g ~order in
      Wfc_test_util.close ~eps:1e-9 sol.Exact_solver.makespan brute)

(* parallel subtree exploration must land on the single-domain optimum *)
let test_flat_parallel_agreement () =
  let module P = Wfc_workflows.Pegasus in
  let module CM = Wfc_workflows.Cost_model in
  let model = FM.make ~lambda:5e-3 ~downtime:0.5 () in
  List.iter
    (fun (family, n, seed) ->
      let g = CM.apply (CM.Proportional 0.1) (P.generate family ~n ~seed) in
      let order = Wfc_dag.Linearize.run Wfc_dag.Linearize.Depth_first g in
      let one, st_1 =
        Exact_solver.optimal_checkpoints_within ~backend:Eval_engine.Flat
          ~domains:1 model g ~order
      in
      let four, st_4 =
        Exact_solver.optimal_checkpoints_within ~backend:Eval_engine.Flat
          ~domains:4 model g ~order
      in
      Alcotest.(check bool) "both optimal" true
        (st_1 = `Optimal && st_4 = `Optimal);
      Wfc_test_util.check_close ~eps:1e-9 "same optimum"
        one.Exact_solver.makespan four.Exact_solver.makespan)
    [ (P.Montage, 14, 5); (P.Ligo, 12, 9); (P.Genome, 16, 3) ]

let () =
  Alcotest.run "exact_solver"
    [
      ( "reference evaluator",
        [
          prop_reference_evaluator_agrees;
          Alcotest.test_case "figure 1" `Quick test_reference_on_figure1;
        ] );
      ( "branch and bound",
        [
          prop_bnb_equals_brute_force;
          Alcotest.test_case "beyond brute force" `Slow
            test_bnb_beyond_brute_force;
          Alcotest.test_case "node budget" `Quick test_bnb_budget;
          Alcotest.test_case "within budget" `Slow test_bnb_within_budget;
          Alcotest.test_case "order validation" `Quick test_bnb_validates_order;
          Alcotest.test_case "fail-free" `Quick test_bnb_fail_free;
          Alcotest.test_case "backend invariance" `Quick
            test_backend_invariance;
        ] );
      ( "flat branch and bound",
        [
          Alcotest.test_case "node parity with sequential" `Quick
            test_flat_node_parity;
          prop_flat_bnb_equals_brute_force;
          prop_flat_dominance_zero_cost_exact;
          Alcotest.test_case "parallel = single domain" `Quick
            test_flat_parallel_agreement;
        ] );
    ]
