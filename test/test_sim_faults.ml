module D = Wfc_platform.Distribution
module FM = Wfc_platform.Failure_model
module Rng = Wfc_platform.Rng
module Stats = Wfc_platform.Stats
module SF = Wfc_simulator.Sim_faults
module MC = Wfc_simulator.Monte_carlo

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---- bit-identical equivalence with the trusted engine ---- *)

(* With all fault probabilities zero, constant downtime and exponential
   failures, Sim_faults.run must make exactly the same draws as Sim.run and
   return bit-identical results — the acceptance property of the issue. *)
let prop_zero_faults_bit_identical =
  Wfc_test_util.qtest ~count:150 "zero faults = Sim.run, bit for bit"
    QCheck2.Gen.(pair (Wfc_test_util.gen_dag_and_schedule ~max_n:8 ()) nat)
    (fun ((g, s), seed) ->
      Printf.sprintf "%s seed=%d" (Wfc_test_util.print_dag_schedule (g, s)) seed)
    (fun ((g, s), seed) ->
      List.for_all
        (fun model ->
          model.FM.lambda = 0.
          ||
          let reference =
            Wfc_simulator.Sim.run ~rng:(Rng.create seed) model g s
          in
          let faulty =
            SF.run ~rng:(Rng.create seed) (SF.nominal model) g s
          in
          (* exact float equality: same stream, same arithmetic *)
          reference.Wfc_simulator.Sim.makespan = faulty.SF.makespan
          && reference.Wfc_simulator.Sim.failures = faulty.SF.failures
          && reference.Wfc_simulator.Sim.wasted = faulty.SF.wasted
          && faulty.SF.corrupt_reads = 0
          && faulty.SF.failed_recoveries = 0
          && not faulty.SF.truncated)
        Wfc_test_util.models)

(* ---- corruption makes things strictly worse ---- *)

let chain_schedule () =
  (* every task checkpointed: corrupt checkpoints are the only fallback
     path, so p_ckpt_fail dominates the makespan *)
  let g =
    Wfc_dag.Builders.chain
      ~weights:[| 5.; 5.; 5.; 5.; 5.; 5. |]
      ~checkpoint_cost:(fun _ _ -> 0.5)
      ~recovery_cost:(fun _ _ -> 0.5)
      ()
  in
  let s =
    Wfc_core.Schedule.make g ~order:[| 0; 1; 2; 3; 4; 5 |]
      ~checkpointed:(Array.make 6 true)
  in
  (g, s)

let test_corruption_monotone () =
  let g, s = chain_schedule () in
  let nominal = SF.nominal (FM.make ~lambda:0.05 ~downtime:1. ()) in
  let mean p =
    let est =
      MC.estimate_faults ~runs:4000 ~seed:11
        { nominal with SF.p_ckpt_fail = p }
        g s
    in
    ( Stats.mean est.MC.summary.MC.makespan,
      Stats.mean est.MC.corrupt_reads )
  in
  let m0, c0 = mean 0. in
  let m04, c04 = mean 0.4 in
  let m08, c08 = mean 0.8 in
  Alcotest.(check (float 0.)) "no corruption at p=0" 0. c0;
  Alcotest.(check bool) "corrupt reads observed" true (c04 > 0.1 && c08 > c04);
  Alcotest.(check bool)
    (Printf.sprintf "means increase: %.1f < %.1f < %.1f" m0 m04 m08)
    true
    (m0 < m04 && m04 < m08)

let test_flaky_recovery_monotone () =
  let g, s = chain_schedule () in
  let nominal = SF.nominal (FM.make ~lambda:0.05 ~downtime:1. ()) in
  let mean p =
    let est =
      MC.estimate_faults ~runs:4000 ~seed:13
        { nominal with SF.p_rec_fail = p }
        g s
    in
    ( Stats.mean est.MC.summary.MC.makespan,
      Stats.mean est.MC.failed_recoveries )
  in
  let m0, f0 = mean 0. in
  let m05, f05 = mean 0.5 in
  Alcotest.(check (float 0.)) "no failed recoveries at p=0" 0. f0;
  Alcotest.(check bool) "failed recoveries observed" true (f05 > 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "flaky recovery costs: %.1f < %.1f" m0 m05)
    true (m0 < m05)

(* ---- downtime distributions ---- *)

let test_random_downtime_mean () =
  (* exponential downtime with the same mean as the constant leaves the
     expected makespan unchanged (downtime enters linearly) *)
  let g, s = chain_schedule () in
  let model = FM.make ~lambda:0.05 ~downtime:2. () in
  let nominal = SF.nominal model in
  let const_est = MC.estimate_faults ~runs:20_000 ~seed:17 nominal g s in
  let random_est =
    MC.estimate_faults ~runs:20_000 ~seed:19
      { nominal with SF.downtime = D.exponential ~rate:0.5 }
      g s
  in
  let mc = Stats.mean const_est.MC.summary.MC.makespan in
  let mr = Stats.mean random_est.MC.summary.MC.makespan in
  let se =
    Float.max
      (Stats.std_error const_est.MC.summary.MC.makespan)
      (Stats.std_error random_est.MC.summary.MC.makespan)
  in
  Alcotest.(check bool)
    (Printf.sprintf "same mean: %.2f vs %.2f" mc mr)
    true
    (Float.abs (mc -. mr) <= 6. *. se)

(* ---- the max_failures valve ---- *)

let test_truncation_valve () =
  (* a restart-only schedule under a harsh platform: without the valve this
     run would take e^{lambda W} attempts *)
  let g =
    Wfc_dag.Builders.chain ~weights:(Array.make 10 100.) ()
  in
  let s =
    Wfc_core.Schedule.make g
      ~order:(Array.init 10 Fun.id)
      ~checkpointed:(Array.make 10 false)
  in
  let params =
    {
      (SF.nominal (FM.make ~lambda:0.1 ~downtime:0. ())) with
      SF.max_failures = 50;
    }
  in
  let out = SF.run ~rng:(Rng.create 3) params g s in
  Alcotest.(check bool) "truncated" true out.SF.truncated;
  Alcotest.(check int) "stopped at the cap" 50 out.SF.failures;
  let est = MC.estimate_faults ~runs:20 ~seed:3 params g s in
  Alcotest.(check int) "all runs truncated" 20 est.MC.truncated_runs

(* ---- determinism and validation ---- *)

let test_estimate_deterministic () =
  let g, s = chain_schedule () in
  let params =
    {
      (SF.nominal (FM.make ~lambda:0.05 ~downtime:1. ())) with
      SF.p_ckpt_fail = 0.2;
      p_rec_fail = 0.1;
    }
  in
  let a = MC.estimate_faults ~runs:500 ~seed:42 params g s in
  let b = MC.estimate_faults ~runs:500 ~seed:42 params g s in
  Alcotest.(check (float 0.))
    "same mean"
    (Stats.mean a.MC.summary.MC.makespan)
    (Stats.mean b.MC.summary.MC.makespan);
  Alcotest.(check (float 0.))
    "same corrupt reads"
    (Stats.mean a.MC.corrupt_reads)
    (Stats.mean b.MC.corrupt_reads)

let test_validation () =
  let g, s = chain_schedule () in
  let nominal = SF.nominal (FM.make ~lambda:0.05 ()) in
  let run params = ignore (SF.run ~rng:(Rng.create 1) params g s) in
  expect_invalid (fun () -> run { nominal with SF.p_ckpt_fail = -0.1 });
  expect_invalid (fun () -> run { nominal with SF.p_ckpt_fail = 1.5 });
  expect_invalid (fun () -> run { nominal with SF.p_rec_fail = 1. });
  expect_invalid (fun () -> run { nominal with SF.max_failures = -1 });
  expect_invalid (fun () -> ignore (SF.nominal FM.fail_free));
  expect_invalid (fun () -> ignore (MC.estimate_faults ~runs:0 ~seed:1 nominal g s))

let () =
  Alcotest.run "sim_faults"
    [
      ( "equivalence",
        [ prop_zero_faults_bit_identical ] );
      ( "faults",
        [
          Alcotest.test_case "corruption monotone" `Slow
            test_corruption_monotone;
          Alcotest.test_case "flaky recovery monotone" `Slow
            test_flaky_recovery_monotone;
          Alcotest.test_case "random downtime mean" `Slow
            test_random_downtime_mean;
          Alcotest.test_case "truncation valve" `Quick test_truncation_valve;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "estimate deterministic" `Quick
            test_estimate_deterministic;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
