(* Tests for the extensions beyond the paper: bounds, the SIPHT family, the
   DF-BL linearization, the CkptE strategy, cost-model parsing, and the
   event-traced simulator. *)

open Wfc_core
module Dag = Wfc_dag.Dag
module Linearize = Wfc_dag.Linearize
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model

(* ---- bounds ---- *)

let test_bounds_bracket_optimum () =
  let g =
    Dag.of_weights
      ~checkpoint_cost:(fun _ w -> 0.2 *. w)
      ~recovery_cost:(fun _ w -> 0.2 *. w)
      ~weights:[| 4.; 2.; 6.; 3. |]
      ~edges:[ (0, 2); (1, 2); (2, 3) ]
      ()
  in
  List.iter
    (fun model ->
      let _, opt = Brute_force.optimal model g in
      let lb = Bounds.lower_bound model g in
      let ub = Bounds.upper_bound model g in
      if not (lb <= opt +. 1e-9 && opt <= ub +. 1e-9) then
        Alcotest.failf "bounds [%g, %g] do not bracket optimum %g" lb ub opt)
    Wfc_test_util.models

let test_bounds_fail_free () =
  let g = Wfc_dag.Builders.chain ~weights:[| 1.; 2.; 3. |] () in
  Wfc_test_util.check_close "lb = T_inf at lambda 0" 6.
    (Bounds.lower_bound FM.fail_free g);
  Wfc_test_util.check_close "ub = T_inf at lambda 0 (zero ckpt cost)" 6.
    (Bounds.upper_bound FM.fail_free g)

let test_optimality_gap () =
  let g =
    Wfc_workflows.Cost_model.apply (CM.Proportional 0.1)
      (P.generate P.Montage ~n:60 ~seed:3)
  in
  let model = FM.make ~lambda:1e-3 () in
  let o = Heuristics.run ~search:(Heuristics.Grid 16) model g
      ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight in
  let gap = Bounds.optimality_gap model g ~makespan:o.Heuristics.makespan in
  Alcotest.(check bool) "gap non-negative" true (gap >= 0.);
  (* the lower bound ignores dependencies entirely, so the gap is loose but
     should stay moderate in this benign regime *)
  Alcotest.(check bool) "gap below 50%" true (gap < 0.5);
  match Bounds.optimality_gap model g ~makespan:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sub-lower-bound makespan accepted"

(* ---- SIPHT ---- *)

let test_sipht_sizes () =
  List.iter
    (fun n ->
      let g = P.generate P.Sipht ~n ~seed:2 in
      Alcotest.(check int) (Printf.sprintf "n=%d" n) n (Dag.n_tasks g))
    [ 13; 14; 33; 50; 100; 200; 431 ]

let test_sipht_structure () =
  let g = P.generate P.Sipht ~n:66 ~seed:2 in
  (* two sub-workflows: two annotate sinks *)
  Alcotest.(check int) "two units -> two sinks" 2 (List.length (Dag.sinks g));
  List.iter
    (fun v ->
      let l = (Dag.task g v).Wfc_dag.Task.label in
      Alcotest.(check bool) "sink is annotate" true
        (String.length l >= 13 && String.sub l 0 13 = "SRNA_annotate"))
    (Dag.sinks g);
  (* average weight in the ~140 s ballpark *)
  let avg = Dag.total_weight g /. 66. in
  Alcotest.(check bool)
    (Printf.sprintf "avg weight %.0f in [90, 220]" avg)
    true
    (avg > 90. && avg < 220.)

let test_sipht_in_extended_only () =
  Alcotest.(check bool) "not in all" true (not (List.mem P.Sipht P.all));
  Alcotest.(check bool) "in extended" true (List.mem P.Sipht P.extended);
  Alcotest.(check bool) "name round trip" true
    (P.family_of_string "sipht" = Some P.Sipht)

(* ---- DF-BL linearization ---- *)

let test_blevel_values () =
  let g =
    Dag.of_weights ~weights:[| 1.; 2.; 3.; 4. |]
      ~edges:[ (0, 1); (1, 3); (0, 2) ] ()
  in
  let bl = Linearize.bottom_level g in
  Wfc_test_util.check_close "sink 3" 4. bl.(3);
  Wfc_test_util.check_close "sink 2" 3. bl.(2);
  Wfc_test_util.check_close "mid 1" 6. bl.(1);
  Wfc_test_util.check_close "source" 7. bl.(0)

let test_blevel_linearization_valid () =
  List.iter
    (fun fam ->
      let g = P.generate fam ~n:60 ~seed:5 in
      Alcotest.(check bool)
        (P.family_name fam ^ " DF-BL valid")
        true
        (Dag.is_linearization g (Linearize.run Linearize.Depth_first_blevel g)))
    P.extended

let test_blevel_prefers_critical_path () =
  (* two branches from a common source: a long chain of light tasks
     (1 -> 2 -> 3 -> 4, bottom level 12, outweight 3) versus a short branch
     with one heavy direct successor (5 -> 6, bottom level 9, outweight 8).
     Outweight-DF starts the short branch, b-level DF follows the heavier
     path. *)
  let g =
    Dag.of_weights ~weights:[| 1.; 3.; 3.; 3.; 3.; 1.; 8. |]
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (0, 5); (5, 6) ] ()
  in
  let df = Linearize.run Linearize.Depth_first g in
  let bl = Linearize.run Linearize.Depth_first_blevel g in
  Alcotest.(check int) "DF picks heavy direct successor" 5 df.(1);
  Alcotest.(check int) "DF-BL follows heavy path" 1 bl.(1)

let test_extended_lists () =
  Alcotest.(check int) "paper's three" 3 (List.length Linearize.all);
  Alcotest.(check int) "plus one" 4 (List.length Linearize.extended);
  Alcotest.(check bool) "DF-BL name" true
    (Linearize.strategy_of_string "df-bl" = Some Linearize.Depth_first_blevel)

(* ---- CkptE ---- *)

let test_ckpt_efficiency_ranking () =
  (* weights 10,40,20; costs 10,2,1: efficiency 1,20,20 -> tasks 1 and 2
     (tie broken by id) lead *)
  let g =
    Dag.of_weights
      ~checkpoint_cost:(fun i _ -> [| 10.; 2.; 1. |].(i))
      ~weights:[| 10.; 40.; 20. |] ~edges:[] ()
  in
  let flags =
    Heuristics.checkpoint_flags Heuristics.Ckpt_efficiency g
      ~order:[| 0; 1; 2 |] ~n_ckpt:2
  in
  Alcotest.(check (list bool)) "best ratio first" [ false; true; true ]
    (Array.to_list flags)

let test_ckpt_efficiency_runs () =
  let g =
    CM.apply (CM.Constant 5.) (P.generate P.Cybershake ~n:60 ~seed:4)
  in
  let model = FM.make ~lambda:1e-3 () in
  let e = Heuristics.run ~search:(Heuristics.Grid 16) model g
      ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_efficiency in
  let w = Heuristics.run ~search:(Heuristics.Grid 16) model g
      ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight in
  Alcotest.(check bool) "finite" true (Float.is_finite e.Heuristics.makespan);
  (* with constant costs, efficiency ranking = weight ranking *)
  Wfc_test_util.check_close "equals CkptW under constant costs"
    w.Heuristics.makespan e.Heuristics.makespan;
  Alcotest.(check string) "name" "CkptE"
    (Heuristics.ckpt_strategy_name Heuristics.Ckpt_efficiency);
  Alcotest.(check bool) "not in paper list" true
    (not (List.mem Heuristics.Ckpt_efficiency Heuristics.all_ckpt_strategies));
  Alcotest.(check bool) "in extended list" true
    (List.mem Heuristics.Ckpt_efficiency Heuristics.extended_ckpt_strategies)

(* ---- cost model parsing ---- *)

let test_cost_of_string () =
  Alcotest.(check bool) "0.1w" true (CM.of_string "0.1w" = Some (CM.Proportional 0.1));
  Alcotest.(check bool) "5s" true (CM.of_string "5s" = Some (CM.Constant 5.));
  Alcotest.(check bool) "c= prefix" true
    (CM.of_string "c=0.01w" = Some (CM.Proportional 0.01));
  Alcotest.(check bool) "garbage" true (CM.of_string "w5" = None);
  Alcotest.(check bool) "negative" true (CM.of_string "-1w" = None);
  Alcotest.(check bool) "empty" true (CM.of_string "" = None);
  (* round trip through name *)
  List.iter
    (fun cm ->
      match CM.of_string (CM.name cm) with
      | Some cm' when cm' = cm -> ()
      | _ -> Alcotest.fail "name round trip")
    [ CM.Proportional 0.1; CM.Constant 5. ]

(* ---- traced simulation ---- *)

let test_trace_consistent_with_summary () =
  let g =
    CM.apply (CM.Proportional 0.1) (P.generate P.Montage ~n:30 ~seed:9)
  in
  let order = Linearize.run Linearize.Depth_first g in
  let s = Schedule.all_checkpoints g ~order in
  let model = FM.make ~lambda:5e-3 ~downtime:2. () in
  let summary, events =
    Wfc_simulator.Sim_trace.run ~rng:(Wfc_platform.Rng.create 3) model g s
  in
  (* same RNG stream: the plain engine must produce the identical run *)
  let plain = Wfc_simulator.Sim.run ~rng:(Wfc_platform.Rng.create 3) model g s in
  Wfc_test_util.check_close "same makespan" plain.Wfc_simulator.Sim.makespan
    summary.Wfc_simulator.Sim.makespan;
  Alcotest.(check int) "same failures" plain.Wfc_simulator.Sim.failures
    summary.Wfc_simulator.Sim.failures;
  (* event-log invariants *)
  let completions =
    List.filter (function Wfc_simulator.Sim_trace.Completion _ -> true | _ -> false) events
  in
  let fails =
    List.filter (function Wfc_simulator.Sim_trace.Failure _ -> true | _ -> false) events
  in
  Alcotest.(check int) "one completion per task" 30 (List.length completions);
  Alcotest.(check int) "failure events match" summary.Wfc_simulator.Sim.failures
    (List.length fails);
  (* chronological and ending at the makespan *)
  let time_of = function
    | Wfc_simulator.Sim_trace.Attempt { start; _ } -> start
    | Wfc_simulator.Sim_trace.Completion { time; _ } -> time
    | Wfc_simulator.Sim_trace.Failure { time; _ } -> time
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> time_of a <= time_of b +. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (monotone events);
  match List.rev events with
  | Wfc_simulator.Sim_trace.Completion { time; _ } :: _ ->
      Wfc_test_util.check_close "last event at makespan" summary.Wfc_simulator.Sim.makespan time
  | _ -> Alcotest.fail "last event must be a completion"

let test_trace_timeline () =
  let g =
    CM.apply (CM.Proportional 0.1) (P.generate P.Montage ~n:15 ~seed:9)
  in
  let order = Linearize.run Linearize.Depth_first g in
  let s = Schedule.all_checkpoints g ~order in
  let model = FM.make ~lambda:5e-3 ~downtime:2. () in
  let summary, events =
    Wfc_simulator.Sim_trace.run ~rng:(Wfc_platform.Rng.create 5) model g s
  in
  let timeline = Wfc_simulator.Sim_trace.render_timeline ~width:60 events in
  let lines = String.split_on_char '\n' timeline in
  (* one lane per position plus the summary line and trailing empty *)
  Alcotest.(check int) "lane count" (15 + 2) (List.length lines);
  Alcotest.(check bool) "mentions duration" true
    (List.exists
       (fun l ->
         String.length l > 0
         && String.length l >= 5
         && String.sub l (String.length l - 2) 2 = " s")
       lines);
  (* failures (if any) render as x *)
  if summary.Wfc_simulator.Sim.failures > 0 then
    Alcotest.(check bool) "failure marks" true (String.contains timeline 'x');
  (* width validation *)
  match Wfc_simulator.Sim_trace.render_timeline ~width:2 events with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tiny width accepted"

let test_timeline_degenerate () =
  let module ST = Wfc_simulator.Sim_trace in
  (* empty log: a marker, not an exception or an empty string *)
  Alcotest.(check string) "empty log" "(empty trace)\n" (ST.render_timeline []);
  (* zero/negative widths are rejected like tiny ones; 8 is the floor *)
  List.iter
    (fun w ->
      match ST.render_timeline ~width:w [] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "width %d accepted" w)
    [ 0; -5; 7 ];
  (match ST.render_timeline ~width:8 [] with
  | _ -> ()
  | exception Invalid_argument _ -> Alcotest.fail "width 8 must be accepted");
  (* a failure at time 0 (zero-length span, zero horizon): the degenerate
     division guard must keep every column at 0 and still mark the x *)
  let t0_failure =
    [
      ST.Attempt { position = 0; task = 0; start = 0.; replay = 0.; work = 5. };
      ST.Failure { position = 0; task = 0; time = 0.; elapsed = 0. };
    ]
  in
  let timeline = ST.render_timeline ~width:10 t0_failure in
  Alcotest.(check bool) "t0 failure marked" true (String.contains timeline 'x');
  Alcotest.(check bool) "t0 horizon printed" true
    (String.length timeline > 0 && timeline.[String.length timeline - 1] = '\n');
  (* orphan outcomes (no opening attempt) and a trailing open attempt are
     dropped, not fatal *)
  let orphans =
    [
      ST.Completion { position = 0; task = 0; time = 1.; checkpointed = false };
      ST.Failure { position = 1; task = 1; time = 2.; elapsed = 2. };
    ]
  in
  Alcotest.(check string) "orphans ignored" "(empty trace)\n"
    (ST.render_timeline orphans);
  let open_attempt =
    [ ST.Attempt { position = 0; task = 2; start = 0.; replay = 0.; work = 3. } ]
  in
  Alcotest.(check string) "open attempt ignored" "(empty trace)\n"
    (ST.render_timeline open_attempt)

let test_pp_event_degenerate () =
  let module ST = Wfc_simulator.Sim_trace in
  (* all three constructors print, including at time 0 with nothing lost *)
  let printed e = Format.asprintf "%a" ST.pp_event e in
  let cases =
    [
      ST.Attempt { position = 0; task = 0; start = 0.; replay = 0.; work = 0. };
      ST.Completion { position = 0; task = 0; time = 0.; checkpointed = true };
      ST.Failure { position = 0; task = 0; time = 0.; elapsed = 0. };
    ]
  in
  List.iter
    (fun e ->
      let s = printed e in
      Alcotest.(check bool) "non-empty" true (String.length s > 0);
      Alcotest.(check bool) "names the task" true
        (String.length s > 2 && String.contains s 'T'))
    cases

let test_trace_pp () =
  let s =
    Format.asprintf "%a" Wfc_simulator.Sim_trace.pp_event
      (Wfc_simulator.Sim_trace.Failure
         { position = 3; task = 4; time = 12.25; elapsed = 5.125 })
  in
  Alcotest.(check bool) "mentions task" true
    (String.length s > 0
    &&
    let contains sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains "T4" && contains "FAIL")

let () =
  Alcotest.run "extensions"
    [
      ( "bounds",
        [
          Alcotest.test_case "bracket optimum" `Slow test_bounds_bracket_optimum;
          Alcotest.test_case "fail-free" `Quick test_bounds_fail_free;
          Alcotest.test_case "optimality gap" `Quick test_optimality_gap;
        ] );
      ( "sipht",
        [
          Alcotest.test_case "exact sizes" `Quick test_sipht_sizes;
          Alcotest.test_case "structure" `Quick test_sipht_structure;
          Alcotest.test_case "extended only" `Quick test_sipht_in_extended_only;
        ] );
      ( "df-bl",
        [
          Alcotest.test_case "bottom levels" `Quick test_blevel_values;
          Alcotest.test_case "valid linearizations" `Quick
            test_blevel_linearization_valid;
          Alcotest.test_case "prefers critical path" `Quick
            test_blevel_prefers_critical_path;
          Alcotest.test_case "strategy lists" `Quick test_extended_lists;
        ] );
      ( "ckpt-e",
        [
          Alcotest.test_case "ranking" `Quick test_ckpt_efficiency_ranking;
          Alcotest.test_case "runs" `Quick test_ckpt_efficiency_runs;
        ] );
      ( "cost-model",
        [ Alcotest.test_case "of_string" `Quick test_cost_of_string ] );
      ( "trace",
        [
          Alcotest.test_case "consistent with summary" `Quick
            test_trace_consistent_with_summary;
          Alcotest.test_case "timeline" `Quick test_trace_timeline;
          Alcotest.test_case "timeline degenerate inputs" `Quick
            test_timeline_degenerate;
          Alcotest.test_case "pp_event degenerate inputs" `Quick
            test_pp_event_degenerate;
          Alcotest.test_case "pp" `Quick test_trace_pp;
        ] );
    ]
