(* Protocol-level battery for the serving layer.

   Three load-bearing contracts:

   1. The binary codec is a bijection on well-formed values and NEVER
      raises on arbitrary bytes — a daemon must survive any client.
   2. A warm-cache solve is bit-identical to a cold one: same request
      through a cache-enabled server, a cache-disabled server, and again
      through the warm cache (hit path) must produce structurally equal
      responses, across all three evaluation backends and under
      interleaved eviction on a capacity-1 cache.
   3. The LRU's take/put checkout semantics hold their invariants
      (capacity bound, MRU ordering, eviction of the least recent), and
      the bounded pool admits exactly [depth] outstanding jobs. *)

module Pr = Wfc_serve.Protocol
module Codec = Wfc_serve.Codec
module Cache = Wfc_serve.Engine_cache
module Server = Wfc_serve.Server
module Key = Wfc_core.Engine_key
module EE = Wfc_core.Eval_engine
module H = Wfc_core.Heuristics
module Lin = Wfc_dag.Linearize
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model
module Pool = Wfc_platform.Domain_pool.Pool
open QCheck2

(* ---- generators -------------------------------------------------------- *)

let gen_family = Gen.oneofl P.extended
let gen_lin = Gen.oneofl Lin.[ Depth_first; Breadth_first; Random_first; Depth_first_blevel ]
let gen_ckpt = Gen.oneofl H.all_ckpt_strategies
let gen_backend = Gen.oneofl EE.[ Naive; Incremental; Flat ]

let gen_cost =
  Gen.(
    oneof
      [ map (fun f -> CM.Proportional f) (float_range 0.01 1.);
        map (fun f -> CM.Constant f) (float_range 0.1 10.) ])

let gen_spec =
  Gen.(
    oneof
      [ (let* family = gen_family and* n = int_range 1 500
         and* seed = int_range 0 9999 and* cost = gen_cost in
         return (Pr.Generated { family; n; seed; cost }));
        (let* name = string_small and* text = string_small
         and* cost = gen_cost in
         return (Pr.Inline { name; text; cost }));
        (let* path = string_small and* cost = gen_cost in
         return (Pr.File { path; cost }));
      ])

let gen_solve_params =
  Gen.(
    let* workflow = gen_spec and* mtbf = float_range 1. 1e6
    and* downtime = float_range 0. 100. and* lin = gen_lin
    and* ckpt = gen_ckpt and* grid = int_range 0 64
    and* backend = gen_backend
    and* deadline = option (float_range 0.001 100.) in
    return { Pr.workflow; mtbf; downtime; lin; ckpt; grid; backend; deadline })

let gen_request =
  Gen.(
    oneof
      [ return Pr.Ping;
        return Pr.Stats;
        return Pr.Shutdown;
        map (fun s -> Pr.Sleep s) (float_range 0. 10.);
        map (fun p -> Pr.Solve p) gen_solve_params;
        (let* params = gen_solve_params and* runs = int_range 1 100_000
         and* mcseed = int_range 0 9999 in
         return (Pr.Simulate { params; runs; mcseed }));
        (let* params = gen_solve_params and* true_mtbf = float_range 1. 1e6
         and* traces = int_range 1 1000 and* mcseed = int_range 0 9999 in
         return (Pr.Adapt { params; true_mtbf; traces; mcseed }));
        (let* dir = string_small
         and* ratios = list_size (int_range 1 5) (float_range 0.01 100.)
         and* grid = int_range 0 64 and* backend = gen_backend in
         return (Pr.Corpus { dir; ratios; grid; backend }));
      ])

let gen_solved =
  Gen.(
    let* source = string_small and* n_tasks = int_range 1 1000
    and* heuristic = string_small and* tier = string_small
    and* makespan = float_range 0. 1e9 and* ratio = float_range 0. 100.
    and* n_ckpt = int_range 0 100
    and* ckpt_tasks = list_size (int_range 0 20) (int_range 0 999)
    and* evaluations = int_range 0 1_000_000 in
    return
      { Pr.source; n_tasks; heuristic; tier; makespan; ratio; n_ckpt;
        ckpt_tasks; evaluations })

let gen_error_code =
  Gen.oneofl Pr.[ Bad_request; Busy; Too_large; Internal; Stopping; Timeout ]

let gen_response =
  Gen.(
    oneof
      [ return Pr.Pong;
        return Pr.Bye;
        map (fun s -> Pr.Slept s) (float_range 0. 10.);
        map (fun s -> Pr.Solved s) gen_solved;
        (let* solved = gen_solved and* runs = int_range 1 100_000
         and* sim_mean = float_range 0. 1e9 and* ci_lo = float_range 0. 1e9
         and* ci_hi = float_range 0. 1e9
         and* failures_mean = float_range 0. 1e4 in
         return
           (Pr.Simulated
              { solved; runs; sim_mean; ci_lo; ci_hi; failures_mean }));
        (let* asource = string_small and* winner = string_small
         and* policies =
           list_size (int_range 0 6)
             (quad string_small (float_range 0. 1e6) (float_range 0. 1e6)
                (float_range 0. 1e6))
         in
         return (Pr.Adapted { asource; winner; policies }));
        (let* instances = int_range 0 100 and* scenarios = int_range 0 100
         and* text = string_small in
         return (Pr.Corpus_report { instances; scenarios; text }));
        map (fun rows -> Pr.Stats_report rows)
          (list_size (int_range 0 20) (pair string_small string_small));
        (let* code = gen_error_code and* message = string_small in
         return (Pr.Error { code; message }));
      ])

let gen_id = Gen.(map Int64.of_int (int_range 0 0x3FFFFFFF))

(* ---- 1. codec round-trips and framing fuzz ----------------------------- *)

let prop_request_roundtrip =
  Wfc_test_util.qtest ~count:500 "codec: request round-trips exactly"
    Gen.(pair gen_id gen_request)
    (fun (id, _) -> Printf.sprintf "id=%Ld <request>" id)
    (fun (id, req) ->
      let bytes = Codec.encode_request ~id req in
      match Codec.decode_request bytes with
      | Error msg -> Test.fail_reportf "decode failed: %s" msg
      | Ok (id', req') ->
          id' = id && req' = req
          && Codec.encode_request ~id req' = bytes)

let prop_response_roundtrip =
  Wfc_test_util.qtest ~count:500 "codec: response round-trips exactly"
    Gen.(pair gen_id gen_response)
    (fun (id, _) -> Printf.sprintf "id=%Ld <response>" id)
    (fun (id, resp) ->
      let bytes = Codec.encode_response ~id resp in
      match Codec.decode_response bytes with
      | Error msg -> Test.fail_reportf "decode failed: %s" msg
      | Ok (id', resp') ->
          id' = id && resp' = resp
          && Codec.encode_response ~id resp' = bytes)

(* Non-finite floats can't be compared structurally, but the IEEE bits
   must still survive the wire: re-encoding the decoded value reproduces
   the exact bytes. *)
let test_nan_roundtrip () =
  List.iter
    (fun v ->
      let req = Pr.Sleep v in
      let bytes = Codec.encode_request ~id:7L req in
      match Codec.decode_request bytes with
      | Error msg -> Alcotest.failf "decode failed on %h: %s" v msg
      | Ok (id, req') ->
          Alcotest.(check int64) "id" 7L id;
          Alcotest.(check string) "re-encoded bytes"
            bytes
            (Codec.encode_request ~id:7L req'))
    [ Float.nan; Float.infinity; Float.neg_infinity; -0.; Float.min_float ]

let prop_decode_never_raises =
  Wfc_test_util.qtest ~count:2000 "codec: arbitrary bytes never raise"
    Gen.(string_size (int_range 0 300))
    String.escaped
    (fun junk ->
      (match Codec.decode_request junk with Ok _ | Error _ -> ());
      (match Codec.decode_response junk with Ok _ | Error _ -> ());
      (match Codec.read_frame (Codec.reader_of_string junk) with
      | Ok _ | Error _ -> ());
      true)

let prop_frame_roundtrip =
  Wfc_test_util.qtest ~count:300 "codec: framed payload reads back"
    Gen.(string_size (int_range 0 2000))
    String.escaped
    (fun payload ->
      let read = Codec.reader_of_string (Codec.frame payload) in
      match Codec.read_frame read with
      | Ok (Some p) -> p = payload && Codec.read_frame read = Ok None
      | _ -> false)

let test_frame_errors () =
  (* truncation mid-frame *)
  let framed = Codec.frame "hello" in
  let cut = String.sub framed 0 (String.length framed - 2) in
  (match Codec.read_frame (Codec.reader_of_string cut) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated frame must be an error");
  (* oversized declared length *)
  let big = "\x7F\xFF\xFF\xFF" in
  (match Codec.read_frame (Codec.reader_of_string big) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame must be an error");
  (* trailing garbage after a valid payload *)
  let bytes = Codec.encode_request ~id:1L Pr.Ping ^ "x" in
  match Codec.decode_request bytes with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes must be an error"

(* Mid-stream damage, exhaustively: a valid framed request torn at every
   byte offset must read back as a clean EOF (only at offset 0), a
   truncation error, or the full frame (only at the end) — never an
   exception, never a partial success. *)
let damaged_frame () =
  Codec.frame
    (Codec.encode_request ~id:9L
       (Result.get_ok (Pr.request_of_line "solve family=montage n=15 mtbf=100")))

let test_torn_at_every_offset () =
  let framed = damaged_frame () in
  let len = String.length framed in
  for cut = 0 to len do
    let prefix = String.sub framed 0 cut in
    match Codec.read_frame (Codec.reader_of_string prefix) with
    | Ok None ->
        if cut <> 0 then
          Alcotest.failf "cut at %d/%d read as a clean EOF" cut len
    | Ok (Some p) ->
        if cut <> len then
          Alcotest.failf "cut at %d/%d read as a whole frame" cut len;
        Alcotest.(check int) "payload length" (len - 4) (String.length p)
    | Error _ ->
        if cut = 0 || cut = len then
          Alcotest.failf "cut at %d/%d must not be an error" cut len
  done

(* Every single-bit flip of the same frame: the reader and decoder must
   return Ok or Error for all 8 * len damaged variants — completing the
   loop without an exception is the assertion. A flip may legitimately
   decode as a different valid request (there is no checksum); what it may
   never do is raise or hang. *)
let test_bitflip_every_byte () =
  let framed = damaged_frame () in
  for i = 0 to String.length framed - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string framed in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      let read = Codec.reader_of_string (Bytes.to_string b) in
      match Codec.read_frame read with
      | Error _ | Ok None -> ()
      | Ok (Some p) -> (
          match Codec.decode_request p with Ok _ | Error _ -> ())
    done
  done

(* Text-mode parse sanity: the same parser feeds both the daemon's text
   loop and the binary client, so pin a few lines. *)
let test_text_parse () =
  (match Pr.request_of_line "ping" with
  | Ok Pr.Ping -> ()
  | _ -> Alcotest.fail "ping");
  (match Pr.request_of_line "solve family=ligo n=12 mtbf=250 engine=flat" with
  | Ok
      (Pr.Solve
         { workflow = Pr.Generated { family = P.Ligo; n = 12; _ };
           mtbf = 250.;
           backend = EE.Flat;
           _
         }) -> ()
  | _ -> Alcotest.fail "solve line");
  (match Pr.request_of_line "solve frobnicate=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key must not parse");
  (match Pr.request_of_line "launch-missiles" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown command must not parse");
  match Pr.validate (Pr.Solve { Pr.default_solve with mtbf = -1. }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative MTBF must not validate"

(* ---- 2. warm cache == cold cache, bit for bit -------------------------- *)

let gen_warm_case =
  Gen.(
    let* family = gen_family and* n = int_range 5 40
    and* seed = int_range 0 99 and* mtbf = float_range 10. 1000.
    and* lin = gen_lin and* ckpt = gen_ckpt
    and* grid = oneofl [ 0; 4; 8 ]
    and* backend = gen_backend
    (* 0.05 s = a 1000-node exact budget: enough to hit the exact tier on
       small instances without making the property run for minutes *)
    and* deadline = oneofl [ None; Some 0.001; Some 0.01; Some 0.05 ] in
    let n = max n (P.min_size family) in
    let workflow =
      Pr.Generated { family; n; seed; cost = CM.Proportional 0.1 }
    in
    return
      (Pr.Solve
         { Pr.default_solve with workflow; mtbf; lin; ckpt; grid; backend;
           deadline }))

let print_warm_case = function
  | Pr.Solve
      { Pr.workflow = Pr.Generated { family; n; seed; _ }; mtbf; grid;
        backend; deadline; _ } ->
      Printf.sprintf "%s n=%d seed=%d mtbf=%g grid=%d engine=%s deadline=%s"
        (P.family_name family) n seed mtbf grid (EE.backend_name backend)
        (match deadline with None -> "-" | Some d -> string_of_float d)
  | _ -> "<other>"

let solve_twice server req = (Server.handle server req, Server.handle server req)

let prop_warm_equals_cold =
  Wfc_test_util.qtest ~count:30 "server: warm solve is bit-identical to cold"
    gen_warm_case print_warm_case
    (fun req ->
      let cold =
        Server.create ~config:{ Server.default_config with cache_size = 0 } ()
      in
      let warm = Server.create () in
      let r_cold = Server.handle cold req in
      let r_miss, r_hit = solve_twice warm req in
      if Pr.is_error r_cold then
        Test.fail_reportf "cold solve errored: %s"
          (String.concat "\n" (Pr.render_response r_cold));
      (* the cache only backs the heuristic and local-search plans: Naive
         has no warmable handle, and the exact tier drives the solver
         directly — those must still be byte-identical, just without a
         recorded hit *)
      let cacheable =
        match req with
        | Pr.Solve { backend = EE.Naive; _ } -> false
        | Pr.Solve { workflow = Pr.Generated { n; _ }; deadline = Some d; _ }
          when d >= 0.025 && n <= Server.default_config.exact_max_n ->
            false
        | _ -> true
      in
      r_miss = r_cold && r_hit = r_cold
      && Pr.render_response r_hit = Pr.render_response r_cold
      && ((not cacheable) || (Server.cache_stats warm).Cache.hits = 1))

let prop_eviction_churn_identical =
  Wfc_test_util.qtest ~count:10
    "server: capacity-1 eviction churn never changes bytes"
    Gen.(pair gen_warm_case gen_warm_case)
    (fun (a, b) ->
      Printf.sprintf "A=[%s] B=[%s]" (print_warm_case a) (print_warm_case b))
    (fun (req_a, req_b) ->
      let cold =
        Server.create ~config:{ Server.default_config with cache_size = 0 } ()
      in
      let tiny =
        Server.create ~config:{ Server.default_config with cache_size = 1 } ()
      in
      let a_cold = Server.handle cold req_a in
      let b_cold = Server.handle cold req_b in
      (* A warms, B evicts A (if keys differ), A rebuilds, B rebuilds … *)
      let seq =
        [ Server.handle tiny req_a; Server.handle tiny req_b;
          Server.handle tiny req_a; Server.handle tiny req_b;
          Server.handle tiny req_a ]
      in
      (Server.cache_stats tiny).Cache.size <= 1
      && List.for_all2
           (fun got want -> got = want)
           seq [ a_cold; b_cold; a_cold; b_cold; a_cold ])

let test_simulate_cached_identical () =
  (* montage keeps task weights (and so injected failures per run) small *)
  let mk () = Pr.request_of_line
      "simulate family=montage n=15 mtbf=100 runs=300 mcseed=5 engine=flat"
    |> Result.get_ok
  in
  let cold =
    Server.create ~config:{ Server.default_config with cache_size = 0 } ()
  in
  let warm = Server.create () in
  let want = Server.handle cold (mk ()) in
  let miss, hit = solve_twice warm (mk ()) in
  Alcotest.(check bool) "simulate miss == cold" true (miss = want);
  Alcotest.(check bool) "simulate hit == cold" true (hit = want)

(* ---- 3. LRU invariants -------------------------------------------------- *)

let key i =
  { Key.dag = Int64.of_int i; order = 0L; lambda = 0L; downtime = 0L;
    backend = EE.Incremental }

let dummy_handle =
  let g =
    Wfc_dag.Dag.of_weights
      ~checkpoint_cost:(fun _ _ -> 0.1)
      ~recovery_cost:(fun _ _ -> 0.1)
      ~weights:[| 1.; 1.; 1. |]
      ~edges:[ (0, 1); (1, 2) ] ()
  in
  EE.handle EE.Incremental (FM.of_mtbf ~mtbf:100. ()) g ~order:[| 0; 1; 2 |]

let test_lru_basics () =
  let c = Cache.create ~capacity:2 in
  Cache.put c (key 1) dummy_handle;
  Cache.put c (key 2) dummy_handle;
  Alcotest.(check bool) "MRU order" true (Cache.keys c = [ key 2; key 1 ]);
  Cache.put c (key 3) dummy_handle;
  Alcotest.(check bool) "LRU evicted" true (Cache.keys c = [ key 3; key 2 ]);
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.evictions;
  (* take checks the entry OUT *)
  Alcotest.(check bool) "take hit" true (Cache.take c (key 2) <> None);
  Alcotest.(check bool) "taken entry is gone" true (Cache.keys c = [ key 3 ]);
  Alcotest.(check bool) "second take misses" true (Cache.take c (key 2) = None);
  (* put-back restores MRU position; duplicate keys collapse *)
  Cache.put c (key 2) dummy_handle;
  Cache.put c (key 2) dummy_handle;
  Alcotest.(check int) "dedup" 2 (Cache.size c);
  Alcotest.(check bool) "put-back is MRU" true
    (Cache.keys c = [ key 2; key 3 ]);
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses

let test_lru_zero_and_negative () =
  let c = Cache.create ~capacity:0 in
  Cache.put c (key 1) dummy_handle;
  Alcotest.(check int) "capacity 0 stores nothing" 0 (Cache.size c);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Engine_cache.create: negative capacity") (fun () ->
      ignore (Cache.create ~capacity:(-1)))

(* Model-based: after an arbitrary put sequence, the cache holds exactly
   the last [capacity] distinct keys, most recent first. *)
let prop_lru_model =
  Wfc_test_util.qtest ~count:300 "cache: put sequence matches LRU model"
    Gen.(
      pair (int_range 1 5) (list_size (int_range 0 40) (int_range 0 9)))
    (fun (cap, puts) ->
      Printf.sprintf "cap=%d puts=[%s]" cap
        (String.concat ";" (List.map string_of_int puts)))
    (fun (cap, puts) ->
      let c = Cache.create ~capacity:cap in
      List.iter (fun i -> Cache.put c (key i) dummy_handle) puts;
      let expect =
        List.fold_left
          (fun acc i -> i :: List.filter (( <> ) i) acc)
          [] puts
        |> fun l -> List.filteri (fun i _ -> i < cap) l
      in
      Cache.keys c = List.map key expect && Cache.size c <= cap)

(* ---- 4. bounded-pool admission ------------------------------------------ *)

let test_pool_admission () =
  let pool = Pool.create ~workers:1 ~depth:2 in
  let gate = Atomic.make false in
  let ran = Atomic.make 0 in
  let job () =
    while not (Atomic.get gate) do
      Thread.yield ()
    done;
    Atomic.incr ran
  in
  Alcotest.(check bool) "first admitted" true (Pool.try_submit pool job);
  Alcotest.(check bool) "second admitted" true (Pool.try_submit pool job);
  Alcotest.(check bool) "third refused at depth" false
    (Pool.try_submit pool job);
  Alcotest.(check int) "outstanding = depth" 2 (Pool.outstanding pool);
  Atomic.set gate true;
  Pool.shutdown ~drain:true pool;
  Alcotest.(check int) "drained jobs all ran" 2 (Atomic.get ran);
  Alcotest.(check bool) "post-shutdown refused" false
    (Pool.try_submit pool job)

(* ---- 5. watchdog cancellation and checkout balance ---------------------- *)

module Cancel = Wfc_platform.Cancel

let test_cancel_expiry () =
  Alcotest.(check bool) "never is never cancelled" false
    (Cancel.cancelled Cancel.never);
  let c = Cancel.create () in
  Alcotest.(check bool) "fresh token live" false (Cancel.cancelled c);
  Cancel.cancel c;
  Alcotest.(check bool) "cancel latches" true (Cancel.cancelled c);
  let b = Cancel.create ~budget:0.005 () in
  Alcotest.(check bool) "budget not yet spent" false (Cancel.cancelled b);
  Unix.sleepf 0.02;
  Alcotest.(check bool) "expired budget cancels" true (Cancel.cancelled b);
  Alcotest.check_raises "check raises on a cancelled token" Cancel.Cancelled
    (fun () -> Cancel.check b)

(* A cancelled solve must answer a structured timeout, put its checked-out
   engine back (the Fun.protect leak fix), and leave the warm cache in a
   state where the SAME request later hits and still matches a cold server
   byte for byte — abort-only cancellation never poisons state. *)
let test_watchdog_cancel_no_leak () =
  let server = Server.create () in
  let req =
    Result.get_ok (Pr.request_of_line "solve family=montage n=15 mtbf=100")
  in
  let cancel = Cancel.create () in
  Cancel.cancel cancel;
  (match Server.handle ~cancel server req with
  | Pr.Error { code = Pr.Timeout; _ } -> ()
  | r ->
      Alcotest.failf "expected a timeout error, got: %s"
        (String.concat "\n" (Pr.render_response r)));
  Alcotest.(check int) "no engine outstanding after cancel" 0
    (Server.engines_outstanding server);
  let s = Server.cache_stats server in
  Alcotest.(check int) "cancelled checkout was put back" 1 s.Cache.puts;
  let cold =
    Server.create ~config:{ Server.default_config with cache_size = 0 } ()
  in
  let want = Server.handle cold req in
  let after = Server.handle server req in
  Alcotest.(check bool) "post-cancel solve == cold solve" true (after = want);
  let s = Server.cache_stats server in
  Alcotest.(check int) "engine survived the cancel warm" 1 s.Cache.hits;
  Alcotest.(check int) "puts balance every checkout" (s.Cache.hits + s.Cache.misses)
    s.Cache.puts;
  Alcotest.(check int) "still nothing outstanding" 0
    (Server.engines_outstanding server)

(* An almost-expired budget that trips mid-solve must also produce the
   structured timeout — the lazy-expiry path, not just the pre-cancelled
   one. The montage-400 local-search tier runs far longer than 1 ms on any
   hardware this test will meet. *)
let test_watchdog_budget_expiry () =
  let server = Server.create () in
  let req =
    Result.get_ok
      (Pr.request_of_line "solve family=montage n=400 mtbf=500 deadline=50")
  in
  let cancel = Cancel.create ~budget:0.001 () in
  match Server.handle ~cancel server req with
  | Pr.Error { code = Pr.Timeout; _ } ->
      Alcotest.(check int) "nothing outstanding" 0
        (Server.engines_outstanding server)
  | r ->
      Alcotest.failf "expected a timeout error, got: %s"
        (String.concat "\n" (Pr.render_response r))

(* Crash-only workers: a job that raises kills its worker domain, the
   supervisor restarts it (counted), and queued work still drains. *)
let test_pool_crash_restart () =
  let pool = Pool.create ~workers:1 ~depth:4 in
  Alcotest.(check int) "no restarts yet" 0 (Pool.restarts pool);
  Alcotest.(check bool) "crashing job admitted" true
    (Pool.try_submit pool (fun () -> failwith "boom"));
  let ran = Atomic.make false in
  Alcotest.(check bool) "follow-up admitted" true
    (Pool.try_submit pool (fun () -> Atomic.set ran true));
  Pool.shutdown ~drain:true pool;
  Alcotest.(check bool) "job after the crash still ran" true (Atomic.get ran);
  Alcotest.(check int) "restart counted" 1 (Pool.restarts pool)

(* ---- 6. deadline tiering pins ------------------------------------------- *)

let tier_of server line =
  match Server.handle server (Result.get_ok (Pr.request_of_line line)) with
  | Pr.Solved s -> s.Pr.tier
  | r -> Alcotest.failf "expected Solved, got: %s"
           (String.concat "\n" (Pr.render_response r))

let test_deadline_tiers () =
  let server = Server.create () in
  let base = "solve family=montage n=15 mtbf=100" in
  Alcotest.(check string) "no deadline" "heuristic" (tier_of server base);
  Alcotest.(check string) "tiny budget" "heuristic"
    (tier_of server (base ^ " deadline=0.001"));
  Alcotest.(check string) "small budget" "local-search"
    (tier_of server (base ^ " deadline=0.01"));
  Alcotest.(check string) "big budget" "exact"
    (tier_of server (base ^ " deadline=60"));
  (* above exact-max-n the exact tier is out of reach by construction *)
  Alcotest.(check string) "too many tasks for exact" "local-search"
    (tier_of server ("solve family=montage n=40 mtbf=100 deadline=60"))

let () =
  Alcotest.run "serve"
    [ ( "codec",
        [ prop_request_roundtrip; prop_response_roundtrip;
          Alcotest.test_case "non-finite floats" `Quick test_nan_roundtrip;
          prop_decode_never_raises; prop_frame_roundtrip;
          Alcotest.test_case "framing errors" `Quick test_frame_errors;
          Alcotest.test_case "torn at every offset" `Quick
            test_torn_at_every_offset;
          Alcotest.test_case "bit flips never raise" `Quick
            test_bitflip_every_byte;
          Alcotest.test_case "text parse" `Quick test_text_parse ] );
      ( "warm-cache",
        [ prop_warm_equals_cold; prop_eviction_churn_identical;
          Alcotest.test_case "simulate cached" `Quick
            test_simulate_cached_identical ] );
      ( "lru",
        [ Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "degenerate capacities" `Quick
            test_lru_zero_and_negative;
          prop_lru_model ] );
      ( "admission",
        [ Alcotest.test_case "bounded pool" `Quick test_pool_admission ] );
      ( "watchdog",
        [ Alcotest.test_case "cancel tokens" `Quick test_cancel_expiry;
          Alcotest.test_case "cancel leaks nothing" `Quick
            test_watchdog_cancel_no_leak;
          Alcotest.test_case "budget expiry mid-solve" `Quick
            test_watchdog_budget_expiry;
          Alcotest.test_case "crashed worker restarts" `Quick
            test_pool_crash_restart ] );
      ( "deadline",
        [ Alcotest.test_case "tier mapping" `Quick test_deadline_tiers ] );
    ]
