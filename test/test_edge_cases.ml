(* Edge-case battery across modules: degenerate sizes, extreme failure
   rates, zero weights, disconnected graphs, saturation regimes. *)

open Wfc_core
module Dag = Wfc_dag.Dag
module Builders = Wfc_dag.Builders
module Linearize = Wfc_dag.Linearize
module FM = Wfc_platform.Failure_model

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---- extreme failure rates ---- *)

let test_infinite_expectation_is_usable () =
  (* enormous lambda, long unchecked chain: the expectation overflows *)
  let g = Builders.chain ~weights:(Array.make 50 100.) () in
  let model = FM.make ~lambda:1. () in
  let s = Schedule.no_checkpoints g ~order:(Array.init 50 Fun.id) in
  let m = Evaluator.expected_makespan model g s in
  Alcotest.(check bool) "infinite" true (m = infinity);
  (* heuristics still return something finite by checkpointing *)
  let g' =
    Builders.chain
      ~weights:(Array.make 50 1.)
      ~checkpoint_cost:(fun _ _ -> 0.1)
      ~recovery_cost:(fun _ _ -> 0.1)
      ()
  in
  let o =
    Heuristics.run (FM.make ~lambda:1. ()) g' ~lin:Linearize.Depth_first
      ~ckpt:Heuristics.Ckpt_weight
  in
  Alcotest.(check bool) "heuristic stays finite" true
    (Float.is_finite o.Heuristics.makespan)

let test_infinity_comparisons_in_search () =
  (* the N search must prefer any finite value over infinity *)
  let g =
    Builders.chain ~weights:(Array.make 30 50.)
      ~checkpoint_cost:(fun _ _ -> 1.)
      ~recovery_cost:(fun _ _ -> 1.)
      ()
  in
  let model = FM.make ~lambda:0.5 () in
  let o = Heuristics.run model g ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight in
  Alcotest.(check bool) "finite outcome" true (Float.is_finite o.Heuristics.makespan)

(* ---- zero-weight tasks ---- *)

let test_zero_weight_task () =
  let g =
    Dag.of_weights ~weights:[| 0.; 5.; 0. |] ~edges:[ (0, 1); (1, 2) ] ()
  in
  let model = FM.make ~lambda:0.1 ~downtime:0.5 () in
  let s = Schedule.no_checkpoints g ~order:[| 0; 1; 2 |] in
  (* only the 5-second task contributes *)
  Wfc_test_util.check_close "only real work counts"
    (FM.expected_exec_time model ~work:5. ~checkpoint:0. ~recovery:0.)
    (Evaluator.expected_makespan model g s);
  (* simulator agrees *)
  let est = Wfc_simulator.Monte_carlo.estimate ~runs:20_000 ~seed:3 model g s in
  Alcotest.(check bool) "simulator agrees" true
    (Wfc_simulator.Monte_carlo.agrees_with est
       ~expected:(Evaluator.expected_makespan model g s)
       ~sigmas:5.)

(* ---- single-task workflows ---- *)

let test_single_task_everything () =
  let g = Dag.of_weights ~checkpoint_cost:(fun _ _ -> 1.) ~weights:[| 7. |] ~edges:[] () in
  let model = FM.make ~lambda:0.05 () in
  List.iter
    (fun ckpt ->
      let o = Heuristics.run model g ~lin:Linearize.Depth_first ~ckpt in
      Alcotest.(check bool)
        (Heuristics.ckpt_strategy_name ckpt ^ " finite")
        true
        (Float.is_finite o.Heuristics.makespan))
    Heuristics.extended_ckpt_strategies;
  let sol = Exact_solver.optimal_checkpoints model g ~order:[| 0 |] in
  Wfc_test_util.check_close "exact = E[t(w;0;0)] (no point checkpointing)"
    (FM.expected_exec_time model ~work:7. ~checkpoint:0. ~recovery:0.)
    sol.Exact_solver.makespan

(* ---- disconnected graphs ---- *)

let test_forest () =
  (* two disconnected chains *)
  let g =
    Dag.of_weights ~weights:[| 1.; 2.; 3.; 4. |] ~edges:[ (0, 1); (2, 3) ] ()
  in
  Alcotest.(check (list int)) "two sources" [ 0; 2 ] (Dag.sources g);
  List.iter
    (fun lin ->
      Alcotest.(check bool)
        (Linearize.strategy_name lin)
        true
        (Dag.is_linearization g (Linearize.run lin g)))
    Linearize.extended;
  (* interleaving the components is strictly worse: an output produced early
     and consumed late sits exposed in memory, so a failure in between forces
     its re-execution — the very reason the paper advocates depth-first
     linearizations *)
  let model = FM.make ~lambda:0.08 () in
  let m order =
    Evaluator.expected_makespan model g (Schedule.no_checkpoints g ~order)
  in
  Alcotest.(check bool) "depth-first beats interleaving" true
    (m [| 0; 1; 2; 3 |] < m [| 0; 2; 1; 3 |] -. 1e-9);
  (* component order, however, is irrelevant *)
  Wfc_test_util.check_close "component order irrelevant"
    (m [| 0; 1; 2; 3 |])
    (m [| 2; 3; 0; 1 |])

(* ---- structure recognition corner cases ---- *)

let test_two_task_chain_is_fork_and_join () =
  let g = Builders.chain ~weights:[| 3.; 4. |] () in
  Alcotest.(check bool) "fork" true (Fork_solver.is_fork g = Some 0);
  Alcotest.(check bool) "join" true (Join_solver.is_join g = Some 1);
  Alcotest.(check bool) "chain" true (Chain_solver.is_chain g);
  (* and all three solvers agree on the optimum *)
  let model = FM.make ~lambda:0.1 () in
  let fork = (Fork_solver.solve model g).Fork_solver.makespan in
  let join = (Join_solver.solve_exact model g).Join_solver.makespan in
  let chain = (Chain_solver.solve model g).Chain_solver.makespan in
  Wfc_test_util.check_close "fork = join" fork join;
  Wfc_test_util.check_close "fork = chain" fork chain

(* ---- heuristic plumbing ---- *)

let test_grid_budget_validation () =
  expect_invalid (fun () ->
      ignore (Heuristics.candidate_counts (Heuristics.Grid 1) ~n:100));
  Alcotest.(check (list int)) "n=2" [ 1 ]
    (Heuristics.candidate_counts Heuristics.Exhaustive ~n:2)

let test_join_sigma_validation () =
  let g = Builders.join ~source_weights:[| 1.; 2. |] ~sink_weight:1. () in
  let model = FM.make ~lambda:0.1 () in
  let ckpt = [| true; true; false |] in
  expect_invalid (fun () ->
      ignore (Join_solver.expected_makespan_order model g ~ckpt ~sigma:[ 0 ]));
  expect_invalid (fun () ->
      ignore (Join_solver.expected_makespan_order model g ~ckpt ~sigma:[ 0; 0 ]));
  (* explicit model in schedule_of changes tie-breaking but stays valid *)
  let s = Join_solver.schedule_of ~model g ~ckpt in
  Alcotest.(check bool) "sink last" true (Schedule.task_at s 2 = 2)

let test_cost_model_zero_recovery_factor () =
  let g = Wfc_workflows.Pegasus.generate Wfc_workflows.Pegasus.Montage ~n:20 ~seed:1 in
  let g' =
    Wfc_workflows.Cost_model.apply ~recovery_factor:0.
      (Wfc_workflows.Cost_model.Proportional 0.1) g
  in
  Array.iter
    (fun t -> Alcotest.(check (float 0.)) "r = 0" 0. t.Wfc_dag.Task.recovery_cost)
    (Dag.tasks g')

(* ---- generators at their minimum sizes ---- *)

let test_all_families_at_min_size () =
  List.iter
    (fun fam ->
      let n = Wfc_workflows.Pegasus.min_size fam in
      let g = Wfc_workflows.Pegasus.generate fam ~n ~seed:0 in
      Alcotest.(check int) (Wfc_workflows.Pegasus.family_name fam) n (Dag.n_tasks g);
      (* and they can be scheduled end to end *)
      let model = FM.make ~lambda:1e-3 () in
      let o = Heuristics.run model g ~lin:Linearize.Depth_first ~ckpt:Heuristics.Ckpt_weight in
      Alcotest.(check bool) "finite" true (Float.is_finite o.Heuristics.makespan))
    Wfc_workflows.Pegasus.extended

(* ---- misc plumbing ---- *)

let test_stats_single_sample_ci () =
  let s = Wfc_platform.Stats.create () in
  Wfc_platform.Stats.add s 5.;
  let lo, hi = Wfc_platform.Stats.confidence95 s in
  Wfc_test_util.check_close "degenerate CI lo" 5. lo;
  Wfc_test_util.check_close "degenerate CI hi" 5. hi

let test_rng_bound_one () =
  let rng = Wfc_platform.Rng.create 4 in
  for _ = 1 to 100 do
    Alcotest.(check int) "always 0" 0 (Wfc_platform.Rng.int rng 1)
  done

let test_pp_stats_mentions_counts () =
  let g = Builders.diamond ~width:3 () in
  let s = Format.asprintf "%a" Dag.pp_stats g in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "task count" true (contains "5 tasks");
  Alcotest.(check bool) "edge count" true (contains "6 edges")

let test_local_search_drops_useless_checkpoints_fail_free () =
  let g =
    Builders.chain ~weights:[| 1.; 2.; 3. |] ~checkpoint_cost:(fun _ _ -> 0.5) ()
  in
  let seed = Schedule.all_checkpoints g ~order:[| 0; 1; 2 |] in
  let r = Local_search.improve FM.fail_free g seed in
  Alcotest.(check int) "all checkpoints dropped" 0
    (Schedule.checkpoint_count r.Local_search.schedule);
  Wfc_test_util.check_close "T_inf reached" 6. r.Local_search.makespan

let test_evaluator_ratio () =
  let g =
    Builders.chain ~weights:[| 4.; 6. |] ~checkpoint_cost:(fun _ _ -> 1.) ()
  in
  let s = Schedule.all_checkpoints g ~order:[| 0; 1 |] in
  Wfc_test_util.check_close "ratio at lambda 0" 1.2
    (Evaluator.ratio FM.fail_free g s);
  let model = FM.make ~lambda:0.05 () in
  Wfc_test_util.check_close "ratio definition"
    (Evaluator.expected_makespan model g s /. 10.)
    (Evaluator.ratio model g s)

let test_agrees_with_semantics () =
  let g = Builders.chain ~weights:[| 5. |] () in
  let s = Schedule.no_checkpoints g ~order:[| 0 |] in
  let est =
    Wfc_simulator.Monte_carlo.estimate ~runs:100 ~seed:2 FM.fail_free g s
  in
  (* zero-variance samples: exact match accepted, anything else rejected *)
  Alcotest.(check bool) "exact accepted" true
    (Wfc_simulator.Monte_carlo.agrees_with est ~expected:5. ~sigmas:3.);
  Alcotest.(check bool) "off rejected" false
    (Wfc_simulator.Monte_carlo.agrees_with est ~expected:5.1 ~sigmas:3.)

let test_table_float_row_widths () =
  let t = Wfc_reporting.Table.create ~columns:[ "k"; "a"; "b" ] in
  Wfc_reporting.Table.add_float_row t "r" [ 3.; 0.123456789 ];
  let rendered = Wfc_reporting.Table.render t in
  let lines = String.split_on_char '\n' rendered in
  (* header, separator, one row, trailing blank *)
  Alcotest.(check int) "line count" 4 (List.length lines);
  (* the last column is not padded, so lines never end in whitespace; the
     separator and the widest row still agree on every column width *)
  List.iter
    (fun l ->
      Alcotest.(check bool) "no trailing whitespace" false
        (String.length l > 0 && l.[String.length l - 1] = ' '))
    lines;
  match List.filteri (fun i _ -> i < 3) lines with
  | [ _; sep; row ] ->
      Alcotest.(check int) "separator spans the widest row" (String.length row)
        (String.length sep)
  | _ -> Alcotest.fail "unexpected shape"

let test_periodic_period_equal_to_work () =
  let model = FM.make ~lambda:0.01 () in
  (* exactly one segment, unchecked *)
  Wfc_test_util.check_close "single full segment"
    (FM.expected_exec_time model ~work:40. ~checkpoint:0. ~recovery:0.)
    (Periodic.expected_time_divisible model ~work:40. ~checkpoint:2. ~recovery:2.
       ~period:40.)

let () =
  Alcotest.run "edge_cases"
    [
      ( "extremes",
        [
          Alcotest.test_case "infinite expectation" `Quick
            test_infinite_expectation_is_usable;
          Alcotest.test_case "infinity in search" `Quick
            test_infinity_comparisons_in_search;
          Alcotest.test_case "zero-weight tasks" `Slow test_zero_weight_task;
          Alcotest.test_case "single task" `Quick test_single_task_everything;
        ] );
      ( "structure",
        [
          Alcotest.test_case "forest" `Quick test_forest;
          Alcotest.test_case "2-chain is fork and join" `Quick
            test_two_task_chain_is_fork_and_join;
          Alcotest.test_case "families at min size" `Quick
            test_all_families_at_min_size;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "grid budget" `Quick test_grid_budget_validation;
          Alcotest.test_case "join sigma validation" `Quick
            test_join_sigma_validation;
          Alcotest.test_case "zero recovery factor" `Quick
            test_cost_model_zero_recovery_factor;
          Alcotest.test_case "single-sample CI" `Quick test_stats_single_sample_ci;
          Alcotest.test_case "rng bound 1" `Quick test_rng_bound_one;
          Alcotest.test_case "pp_stats" `Quick test_pp_stats_mentions_counts;
          Alcotest.test_case "local search, fail-free" `Quick
            test_local_search_drops_useless_checkpoints_fail_free;
          Alcotest.test_case "period = work" `Quick
            test_periodic_period_equal_to_work;
          Alcotest.test_case "evaluator ratio" `Quick test_evaluator_ratio;
          Alcotest.test_case "agrees_with" `Quick test_agrees_with_semantics;
          Alcotest.test_case "table float row" `Quick test_table_float_row_widths;
        ] );
    ]
