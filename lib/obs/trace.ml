type event = {
  name : string;
  ts : float;
  dur : float;
  kind : [ `Span | `Instant ];
  tid : int;
  depth : int;
  args : (string * string) list;
}

let enabled_flag = Atomic.make false
let clock = Atomic.make (fun () -> Unix.gettimeofday ())
let set_clock f = Atomic.set clock f
let epoch = Atomic.make 0.

(* Per-domain buffer: events are appended by the owning domain only, so the
   mutable fields need no synchronization; the global list below (mutated
   under a mutex, read at export after workers join) is how exporters find
   every buffer. *)
type dbuf = {
  tid : int;
  mutable rev_events : event list;
  mutable depth : int;
  mutable last : float; (* monotonic clamp, seconds since epoch *)
}

let buffers : dbuf list ref = ref []
let buffers_mutex = Mutex.create ()

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        { tid = (Domain.self () :> int); rev_events = []; depth = 0; last = 0. }
      in
      Mutex.protect buffers_mutex (fun () -> buffers := b :: !buffers);
      b)

let now b =
  let t = (Atomic.get clock) () -. Atomic.get epoch in
  if t < b.last then b.last else (b.last <- t; t)

let set_enabled on =
  if on && not (Atomic.get enabled_flag) then
    Atomic.set epoch ((Atomic.get clock) ());
  Atomic.set enabled_flag on

let enabled () = Atomic.get enabled_flag

let reset () =
  Atomic.set epoch ((Atomic.get clock) ());
  Mutex.protect buffers_mutex (fun () ->
      List.iter
        (fun b ->
          b.rev_events <- [];
          b.depth <- 0;
          b.last <- 0.)
        !buffers)

let with_span ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = Domain.DLS.get key in
    let t0 = now b in
    let depth = b.depth in
    b.depth <- depth + 1;
    Fun.protect
      ~finally:(fun () ->
        b.depth <- depth;
        let t1 = now b in
        b.rev_events <-
          { name; ts = t0; dur = t1 -. t0; kind = `Span; tid = b.tid; depth;
            args }
          :: b.rev_events)
      f
  end

let instant ?(args = []) name =
  if Atomic.get enabled_flag then begin
    let b = Domain.DLS.get key in
    let ts = now b in
    b.rev_events <-
      { name; ts; dur = 0.; kind = `Instant; tid = b.tid; depth = b.depth;
        args }
      :: b.rev_events
  end

let events () =
  let all =
    Mutex.protect buffers_mutex (fun () ->
        List.concat_map (fun b -> b.rev_events) !buffers)
  in
  List.sort
    (fun (x : event) (y : event) ->
      match Int.compare x.tid y.tid with
      | 0 -> (
          match Float.compare x.ts y.ts with
          | 0 -> Int.compare x.depth y.depth
          | c -> c)
      | c -> c)
    all

let event_count () =
  Mutex.protect buffers_mutex (fun () ->
      List.fold_left (fun acc b -> acc + List.length b.rev_events) 0 !buffers)

(* ---- JSON emission ---------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let args_json args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
         args)
  ^ "}"

let chrome_event e =
  match e.kind with
  | `Span ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"wfc\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}"
        (escape e.name) e.tid (e.ts *. 1e6) (e.dur *. 1e6)
        (args_json (("depth", string_of_int e.depth) :: e.args))
  | `Instant ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"wfc\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":%s}"
        (escape e.name) e.tid (e.ts *. 1e6)
        (args_json (("depth", string_of_int e.depth) :: e.args))

let to_chrome () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (chrome_event e))
    (events ());
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let jsonl_event e =
  let base =
    Printf.sprintf "{\"type\":\"%s\",\"name\":\"%s\",\"ts\":%.17g,\"dur\":%.17g,\"tid\":%d,\"depth\":%d"
      (match e.kind with `Span -> "span" | `Instant -> "instant")
      (escape e.name) e.ts e.dur e.tid e.depth
  in
  base
  ^ (if e.args = [] then "" else ",\"args\":" ^ args_json e.args)
  ^ "}"

let to_jsonl () =
  String.concat "" (List.map (fun e -> jsonl_event e ^ "\n") (events ()))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_chrome path = write_file path (to_chrome ())
let write_jsonl path = write_file path (to_jsonl ())
