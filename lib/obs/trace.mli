(** Span tracing on a per-domain monotonic clock.

    Spans nest: {!with_span} records the wall interval of its thunk together
    with the nesting depth at entry, per domain. Events accumulate in
    per-domain buffers (registered on a domain's first span, appended
    without synchronization) and are merged at export time into either
    Chrome trace-event JSON ([chrome://tracing] / Perfetto) or a flat JSONL
    event log, one object per line.

    Timestamps are seconds since the trace epoch (the moment tracing was
    enabled or last {!reset}). The clock is clamped per domain so exported
    timestamps never decrease within a [tid], even if the underlying wall
    clock steps backwards.

    Like metrics, tracing is off by default; a disabled {!with_span} is a
    single atomic load and a tail call of the thunk.

    Export functions read the buffers of every domain that ever traced;
    call them only after worker domains have been joined. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded events and restart the epoch. *)

val set_clock : (unit -> float) -> unit
(** Replace the wall clock (seconds). For deterministic tests. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span. The span is recorded when the thunk
    returns or raises. *)

val instant : ?args:(string * string) list -> string -> unit
(** Record a zero-duration point event at the current depth. *)

type event = {
  name : string;
  ts : float;  (** seconds since epoch, non-decreasing per [tid] *)
  dur : float;  (** seconds; 0 for instants *)
  kind : [ `Span | `Instant ];
  tid : int;  (** recording domain's id *)
  depth : int;  (** nesting depth at entry *)
  args : (string * string) list;
}

val events : unit -> event list
(** All recorded events, sorted by [(tid, ts, depth)] — parents before
    their children. *)

val event_count : unit -> int

val to_chrome : unit -> string
(** Chrome trace-event JSON: an object with a [traceEvents] array of
    complete ("ph":"X", microsecond ts/dur) and instant ("ph":"i")
    events. *)

val to_jsonl : unit -> string
(** One JSON object per line mirroring {!event} verbatim ([ts]/[dur] in
    seconds, full float precision, so parsing the lines back recovers the
    events exactly). *)

val write_chrome : string -> unit
val write_jsonl : string -> unit
