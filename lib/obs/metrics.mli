(** Process-wide metrics registry: counters, gauges and histograms with
    fixed log-scale buckets.

    Recording is lock-free: every metric owns an array of per-domain shards
    (indexed by [Domain.self () mod max_shards], each cell an [Atomic.t]),
    so {!Wfc_platform.Domain_pool} workers record without contention and
    without losing updates even if two live domains hash to the same shard.
    Reads merge the shards; the registry mutex is only taken when a metric
    is first created by name.

    The whole layer is off by default. Every record operation starts with a
    single atomic load of the enabled flag and returns immediately when it
    is false, so instrumented hot paths pay one predictable branch. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered metric (the registry itself is kept). Call only
    while no other domain is recording. *)

(** {1 Recording} *)

type counter

val counter : string -> counter
(** Find or create the counter registered under this name.
    @raise Invalid_argument if the name is registered as another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit

type gauge

val gauge : string -> gauge
val set : gauge -> float -> unit

type histogram

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Record one sample into its log-scale bucket (see {!bucket_of}). *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f ()] and records its wall-clock duration in seconds
    into [h] — the per-endpoint latency histograms of the serving layer.
    When the layer is disabled this is exactly [f ()] (no clock read); the
    sample is recorded even when [f] raises. *)

(** {1 Buckets} *)

val n_buckets : int
(** 64 power-of-two buckets: bucket [b] covers [[2^(b-32), 2^(b-31))];
    bucket 0 also absorbs every sample below its lower bound (including
    zero and negatives), bucket [n_buckets - 1] every sample above. *)

val bucket_of : float -> int
val bucket_upper : int -> float

(** {1 Reading} *)

type hist_snapshot = {
  hcount : int;  (** total samples *)
  hsum : float;  (** sum of raw sample values *)
  buckets : int array;  (** length {!n_buckets} *)
}

val hist_empty : hist_snapshot

val hist_merge : hist_snapshot -> hist_snapshot -> hist_snapshot
(** Pointwise sum. On [hcount] and [buckets] this is exactly associative,
    commutative and has {!hist_empty} as unit; [hsum] is a float sum, so it
    is associative only up to rounding. *)

val hist_quantile : hist_snapshot -> float -> float
(** Upper bound of the bucket containing the q-quantile sample (0 when the
    histogram is empty). *)

val counter_value : counter -> int
val gauge_value : gauge -> float
val hist_value : histogram -> hist_snapshot

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot
(** Merged view of every registered metric, each section sorted by name.
    Values recorded by domains joined before the call are all visible. *)
