let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let max_shards = 64

(* Domain ids grow monotonically over the process lifetime, so two live
   domains can share a shard only after 64 spawns; the cells are atomic, so
   even then no update is lost — collisions cost contention, not
   correctness. *)
let shard () = (Domain.self () :> int) land (max_shards - 1)

type counter = { c_cells : int Atomic.t array }
type gauge = { g_cell : float Atomic.t }

let n_buckets = 64

(* frexp: x = m * 2^e with m in [0.5, 1), so e-1 = floor(log2 x) and the
   bucket index e + 31 puts x = 1 at the lower edge of bucket 32. *)
let bucket_of x =
  if x < Float.ldexp 1. (-32) || Float.is_nan x then 0
  else
    let _, e = Float.frexp x in
    Int.min (n_buckets - 1) (Int.max 0 (e + 31))

let bucket_upper b = Float.ldexp 1. (b - 31)

type hist_shard = {
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
}

type histogram = { h_shards : hist_shard option Atomic.t array }

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let register name make select =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match select m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Metrics: %S already registered as another kind" name))
      | None ->
          let v = make () in
          Hashtbl.add registry name v;
          match select v with Some v -> v | None -> assert false)

let counter name =
  register name
    (fun () -> C { c_cells = Array.init max_shards (fun _ -> Atomic.make 0) })
    (function C c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> G { g_cell = Atomic.make 0. })
    (function G g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () -> H { h_shards = Array.init max_shards (fun _ -> Atomic.make None) })
    (function H h -> Some h | _ -> None)

(* ---- recording -------------------------------------------------------- *)

let add c k =
  if Atomic.get enabled_flag && k <> 0 then
    ignore (Atomic.fetch_and_add c.c_cells.(shard ()) k)

let incr c = add c 1
let set g v = if Atomic.get enabled_flag then Atomic.set g.g_cell v

(* CAS loop on the boxed float: compare_and_set is physical equality on the
   box we just read, so a lost race simply retries. *)
let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let hist_shard_of h =
  let slot = h.h_shards.(shard ()) in
  match Atomic.get slot with
  | Some s -> s
  | None ->
      let fresh =
        {
          h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.;
        }
      in
      if Atomic.compare_and_set slot None (Some fresh) then fresh
      else Option.get (Atomic.get slot)

let observe h x =
  if Atomic.get enabled_flag then begin
    let s = hist_shard_of h in
    Atomic.incr s.h_buckets.(bucket_of x);
    Atomic.incr s.h_count;
    atomic_add_float s.h_sum x
  end

let time h f =
  if Atomic.get enabled_flag then begin
    let t0 = Unix.gettimeofday () in
    let finally () = observe h (Unix.gettimeofday () -. t0) in
    Fun.protect ~finally f
  end
  else f ()

(* ---- reading ---------------------------------------------------------- *)

type hist_snapshot = { hcount : int; hsum : float; buckets : int array }

let hist_empty = { hcount = 0; hsum = 0.; buckets = Array.make n_buckets 0 }

let hist_merge a b =
  {
    hcount = a.hcount + b.hcount;
    hsum = a.hsum +. b.hsum;
    buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
  }

let hist_quantile s q =
  if s.hcount = 0 then 0.
  else begin
    let rank =
      Int.max 1 (int_of_float (Float.round (q *. float_of_int s.hcount)))
    in
    let acc = ref 0 and b = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + s.buckets.(i);
         if !acc >= rank then begin
           b := i;
           raise Exit
         end
       done;
       b := n_buckets - 1
     with Exit -> ());
    bucket_upper !b
  end

let counter_value c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.c_cells

let gauge_value g = Atomic.get g.g_cell

let hist_value h =
  Array.fold_left
    (fun acc slot ->
      match Atomic.get slot with
      | None -> acc
      | Some s ->
          hist_merge acc
            {
              hcount = Atomic.get s.h_count;
              hsum = Atomic.get s.h_sum;
              buckets = Array.map Atomic.get s.h_buckets;
            })
    hist_empty h.h_shards

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let snapshot () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter
        (fun name -> function
          | C c -> counters := (name, counter_value c) :: !counters
          | G g -> gauges := (name, gauge_value g) :: !gauges
          | H h -> histograms := (name, hist_value h) :: !histograms)
        registry);
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let reset () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | C c -> Array.iter (fun cell -> Atomic.set cell 0) c.c_cells
          | G g -> Atomic.set g.g_cell 0.
          | H h ->
              Array.iter
                (fun slot ->
                  match Atomic.get slot with
                  | None -> ()
                  | Some s ->
                      Array.iter (fun b -> Atomic.set b 0) s.h_buckets;
                      Atomic.set s.h_count 0;
                      Atomic.set s.h_sum 0.)
                h.h_shards)
        registry)
