(** Risk-aware schedule selection over shared failure-trace ensembles.

    Expectation under the nominal model ranks schedules by average luck;
    a risk-averse operator cares about the tail, and a misspecification-wary
    one about how much is lost when the platform's law is not the planned
    one. This module scores {e candidates} — static schedules and adaptive
    policies alike — on a {e shared} ensemble of recorded renewal traces
    ({!Wfc_simulator.Trace_io}): every candidate faces byte-identical
    failure sequences, so differences are pure policy, not sampling noise.
    The ensemble spans several failure laws at equal MTBF (exponential,
    Weibull bracketing shape 1, bursty hyperexponential), and the winner is
    picked by mean, CVaR{_ α} or worst-case makespan, with a per-scenario
    regret table against the per-scenario best candidate. *)

type criterion =
  | Mean  (** lowest mean makespan over the pooled ensemble *)
  | CVaR of float
      (** lowest expected makespan of the worst [(1 - alpha)] tail
          ({!Wfc_platform.Sample_set.cvar}); [alpha] in [\[0, 1\]] *)
  | Worst  (** lowest maximum makespan over the ensemble *)

val criterion_name : criterion -> string
(** ["mean"], ["cvar@0.95"] or ["worst"]. *)

val criterion_of_string : string -> criterion option
(** Parses ["mean"], ["worst"], ["cvar"] (alpha 0.95) and ["cvar:Q"] with
    [Q] in [\[0, 1\]]. *)

type scenario = {
  name : string;
  failures : Wfc_platform.Distribution.t;  (** inter-failure law *)
  downtime : Wfc_platform.Distribution.t;  (** per-failure repair law *)
}

val default_scenarios : Wfc_platform.Failure_model.t -> scenario list
(** Failure laws at the nominal model's MTBF — exponential, Weibull shapes
    0.7 and 1.5, and a mean-preserving bursty hyperexponential mix — all
    with the nominal constant downtime. Equal MTBF isolates the effect of
    the law's shape from its scale.

    @raise Invalid_argument if the model is fail-free ([lambda = 0]). *)

type lanes = {
  primary : Wfc_simulator.Trace_io.replay_state;
      (** the shared primary failure stream (copy 0 of every task) *)
  siblings : Wfc_simulator.Trace_io.replay_state array;
      (** independent streams for replica copies 1.. — as many as the
          candidate declared in [extra_lanes] *)
}
(** One replayed trace environment. Unreplicated candidates use only
    [primary]; replicated ones additionally consume sibling lanes. Because
    [primary] is shared across all candidates, checkpoint-only and
    replication policies still face byte-identical primary failures. *)

type candidate = {
  name : string;
  extra_lanes : int;
      (** sibling lanes the policy consumes: [max replica count - 1] *)
  execute : lanes -> Wfc_simulator.Sim.run;
      (** run the policy against one replayed trace environment *)
}

val static :
  ?replica_cost:float ->
  name:string ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  candidate
(** The fixed schedule, executed by {!Wfc_simulator.Sim.run_with_source} —
    or, when replicated, by {!Wfc_simulator.Sim.run_with_lanes} with the
    primary stream driving copy 0. *)

val adaptive :
  ?replica_cost:float ->
  name:string ->
  Wfc_simulator.Sim_adaptive.config ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  candidate
(** The adaptive executor starting from the given initial schedule;
    replicated schedules consume sibling lanes as in {!static}. *)

type score = {
  candidate : string;
  mean : float;  (** over the pooled ensemble (all scenarios) *)
  cvar : float;  (** at the report's [alpha] *)
  worst : float;
  per_scenario : (string * float) list;  (** mean makespan per scenario *)
  regret : (string * float) list;
      (** per scenario: mean makespan minus the best candidate's mean on
          that scenario (0 for the per-scenario winner) *)
  max_regret : float;
  exhausted : int;
      (** runs that consumed past the recorded horizon; their makespans are
          optimistic lower bounds — enlarge [min_uptime] if non-zero *)
}

type report = {
  criterion : criterion;
  alpha : float;  (** the CVaR level used in every [score.cvar] *)
  traces_per_scenario : int;
  scores : score list;  (** input candidate order *)
  winner : score;  (** best by [criterion]; ties to the earliest candidate *)
}

val evaluate :
  ?traces_per_scenario:int ->
  ?alpha:float ->
  seed:int ->
  min_uptime:float ->
  criterion:criterion ->
  scenarios:scenario list ->
  candidate list ->
  report
(** [evaluate ~seed ~min_uptime ~criterion ~scenarios candidates] draws
    [traces_per_scenario] (default 50) renewal traces per scenario —
    deterministic in [(seed, scenario index, trace index)], each covering at
    least [min_uptime] seconds of uptime — and replays {e every} candidate
    on {e every} trace. [alpha] (default 0.95) sets the CVaR level.

    When any candidate declares [extra_lanes > 0], every trace additionally
    carries that many sibling renewal traces, deterministic in
    [(seed, scenario, trace, lane)]; candidates consume a prefix. Lane 0 is
    the unchanged primary stream, so adding replicated candidates never
    perturbs the scores of existing ones.

    Pick [min_uptime] well above any plausible makespan (a generous multiple
    of the DAG's total weight) and check [exhausted].

    @raise Invalid_argument if [candidates] or [scenarios] is empty,
      [traces_per_scenario < 1], [alpha] or a [CVaR] level is outside
      [\[0, 1\]], or [min_uptime] is not positive and finite. *)
