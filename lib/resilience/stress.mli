(** Misspecification stress campaigns: how badly does a schedule optimized
    for a nominal platform degrade when the platform lies?

    The paper's schedules are tuned for an exact exponential law, constant
    downtime and flawless checkpoints. Related work shows the relative
    efficiency of restart vs. checkpointing is highly sensitive to the tail
    of the failure law (Sodre, arXiv:1802.07455), so expectation under the
    nominal model is a poor robustness certificate. A campaign re-simulates
    one fixed schedule against a grid of perturbed platforms — wrong MTBF,
    age-dependent (Weibull) hazards, bursty arrivals, random downtime,
    faulty checkpoint machinery — and reports {e tail} statistics (p95/p99)
    and degradation ratios against the nominal analytic expectation.

    Every campaign is deterministic in its seed, and — because each
    simulated run derives its own RNG stream from [(seed, scenario, run)] —
    bit-identical for any number of domains used to parallelize it. *)

type scenario = {
  name : string;
  params : Wfc_simulator.Sim_faults.params;  (** the platform actually simulated *)
}

val default_grid : Wfc_platform.Failure_model.t -> scenario list
(** The standard perturbation grid around a nominal model: the nominal
    platform itself, MTBF misestimated by 2× and 10× in both directions,
    Weibull shapes bracketing 1 (0.7 and 1.5) at the nominal MTBF, bursty
    hyperexponential arrivals at the nominal MTBF, exponentially distributed
    downtime, silently corrupting checkpoints, flaky recoveries, and one
    hostile combination of the above.

    @raise Invalid_argument if the model is fail-free ([lambda = 0]). *)

type scenario_result = {
  scenario : scenario;
  mean : float;  (** sample mean makespan under the scenario *)
  p95 : float;
  p99 : float;
  mean_degradation : float;  (** [mean /. nominal] analytic expectation *)
  tail_degradation : float;  (** [p99 /. nominal] analytic expectation *)
  divergent : int;
      (** runs stopped by the failure valve: the schedule essentially cannot
          finish under this scenario, and the statistics above are lower
          bounds *)
}

type report = {
  nominal_makespan : float;
      (** analytic expectation of the schedule under the nominal model *)
  results : scenario_result list;  (** one per scenario, input order *)
  robustness : float;
      (** the campaign's summary score: worst (largest) tail degradation
          across the grid — lower is more robust. [infinity] when any
          scenario had divergent runs: their truncated makespans are lower
          bounds, so the ratios are meaninglessly optimistic and the
          schedule must rank below every schedule that finished *)
}

val evaluate :
  ?replica_cost:float ->
  ?runs:int ->
  ?domains:int ->
  ?max_failures:int ->
  seed:int ->
  nominal:Wfc_platform.Failure_model.t ->
  scenarios:scenario list ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  report
(** [evaluate ~seed ~nominal ~scenarios g s] simulates [runs] (default
    [2000]) executions of [s] under every scenario, splitting the runs of
    each scenario across [domains] OCaml domains (default
    [Domain.recommended_domain_count () - 1], at least 1). The report is
    bit-identical for any [domains].

    [max_failures] (default [10_000]) caps the failures injected per run for
    scenarios that do not set their own cap; runs that hit it are counted as
    [divergent]. Without the valve, a schedule needing [e^{lambda W}]
    attempts under a harsh scenario would hang the campaign.

    Replicated schedules are simulated with the multi-lane fault engine
    ({!Wfc_simulator.Sim_faults.run}) at [replica_cost] per extra copy, and
    the nominal makespan goes through the replication-aware evaluator.

    @raise Invalid_argument if [runs <= 0], [domains <= 0],
    [max_failures <= 0] or [scenarios] is empty. *)

type ranked = {
  heuristic : string;  (** e.g. ["DF-CkptW"] *)
  outcome : Wfc_core.Heuristics.outcome;  (** optimized under the nominal model *)
  report : report;
}

val rank :
  ?runs:int ->
  ?domains:int ->
  ?max_failures:int ->
  ?search:Wfc_core.Heuristics.search ->
  ?backend:Wfc_core.Eval_engine.backend ->
  ?replication:Wfc_core.Replication.spec ->
  ?replica_cost:float ->
  seed:int ->
  nominal:Wfc_platform.Failure_model.t ->
  scenarios:scenario list ->
  Wfc_dag.Dag.t ->
  (Wfc_dag.Linearize.strategy * Wfc_core.Heuristics.ckpt_strategy) list ->
  ranked list
(** [rank ~seed ~nominal ~scenarios g heuristics] optimizes one schedule per
    heuristic under the nominal model, stress-tests each against the same
    scenario grid and returns the list sorted by increasing {!report}
    [robustness] (most robust first; ties broken by nominal makespan) — the
    ranking by tail behavior the expectation-only comparison cannot give.

    With [replication] (default none), each optimized schedule is
    additionally replicated by {!Wfc_core.Heuristics.replicate} before
    stress-testing, and its name gains a ["+policy"] suffix. *)
