open Wfc_core
module Metrics = Wfc_obs.Metrics
module Trace = Wfc_obs.Trace

type tier = Exact | Local_search | Heuristic

let tier_name = function
  | Exact -> "exact"
  | Local_search -> "local-search"
  | Heuristic -> "heuristic"

(* Every solve records which tier it landed on, and why, as both a counter
   (driver.tier.<name>) and a trace instant carrying the human-readable
   reason. *)
let record_tier tier reason =
  if Metrics.enabled () then
    Metrics.incr (Metrics.counter ("driver.tier." ^ tier_name tier));
  Trace.instant "driver.tier"
    ~args:[ ("tier", tier_name tier); ("reason", reason) ]

type config = {
  max_nodes : int;
  deadline : float option;
  search : Heuristics.search;
  fallbacks : (Wfc_dag.Linearize.strategy * Heuristics.ckpt_strategy) list;
  ls_evaluations : int;
  backend : Eval_engine.backend;
  bnb_domains : int;
}

let default_config =
  {
    max_nodes = 1_000_000;
    deadline = None;
    search = Heuristics.Exhaustive;
    backend = Eval_engine.Incremental;
    bnb_domains = 1;
    fallbacks =
      List.map
        (fun ckpt -> (Wfc_dag.Linearize.Depth_first, ckpt))
        [
          Heuristics.Ckpt_weight;
          Heuristics.Ckpt_cost;
          Heuristics.Ckpt_outweight;
          Heuristics.Ckpt_periodic;
        ];
    ls_evaluations = 2000;
  }

type result = {
  schedule : Schedule.t;
  makespan : float;
  tier : tier;
  reason : string;
  nodes : int;
  elapsed : float;
}

let solve ?(config = default_config) ?(cancel = Wfc_platform.Cancel.never)
    model g ~order =
  Trace.with_span "driver.solve" @@ fun () ->
  let finish r = record_tier r.tier r.reason; r in
  let t0 = Unix.gettimeofday () in
  let should_stop =
    match config.deadline with
    | None -> fun () -> false
    | Some limit -> fun () -> Unix.gettimeofday () -. t0 > limit
  in
  let sol, status =
    Trace.with_span "driver.exact" (fun () ->
        Exact_solver.optimal_checkpoints_within ~max_nodes:config.max_nodes
          ~should_stop ~cancel ~backend:config.backend
          ~domains:config.bnb_domains model g ~order)
  in
  let elapsed () = Unix.gettimeofday () -. t0 in
  match status with
  | `Optimal ->
      finish {
        schedule = sol.Exact_solver.schedule;
        makespan = sol.Exact_solver.makespan;
        tier = Exact;
        reason =
          Printf.sprintf "branch and bound completed within budget (%d nodes)"
            sol.Exact_solver.nodes;
        nodes = sol.Exact_solver.nodes;
        elapsed = elapsed ();
      }
  | `Budget_exhausted ->
      (* tier 2: refine the incumbent the truncated search left behind *)
      let ls =
        Trace.with_span "driver.local_search" (fun () ->
            Local_search.improve ~max_evaluations:config.ls_evaluations
              ~cancel ~backend:config.backend model g
              sol.Exact_solver.schedule)
      in
      (* tier 3: the configured heuristic chain, on their own linearizations *)
      let best_fallback =
        Trace.with_span "driver.fallbacks" @@ fun () ->
        List.fold_left
          (fun best (lin, ckpt) ->
            let o =
              Heuristics.run ~search:config.search ~backend:config.backend
                ~cancel model g ~lin ~ckpt
            in
            match best with
            | Some (_, b) when b.Heuristics.makespan <= o.Heuristics.makespan ->
                best
            | _ -> Some (Heuristics.name lin ckpt, o))
          None config.fallbacks
      in
      let stopped =
        (* the budget check fires on the node after the limit, so clamp for
           the human-facing count *)
        Printf.sprintf "exact search stopped after %d of %d nodes"
          (Int.min sol.Exact_solver.nodes config.max_nodes)
          config.max_nodes
      in
      let from_local_search reason_tail =
        finish {
          schedule = ls.Local_search.schedule;
          makespan = ls.Local_search.makespan;
          tier = Local_search;
          reason = Printf.sprintf "%s; %s" stopped reason_tail;
          nodes = sol.Exact_solver.nodes;
          elapsed = elapsed ();
        }
      in
      (match best_fallback with
      | Some (name, o) when o.Heuristics.makespan < ls.Local_search.makespan ->
          finish {
            schedule = o.Heuristics.schedule;
            makespan = o.Heuristics.makespan;
            tier = Heuristic;
            reason = Printf.sprintf "%s; fallback heuristic %s won" stopped name;
            nodes = sol.Exact_solver.nodes;
            elapsed = elapsed ();
          }
      | Some (name, _) ->
          from_local_search
            (Printf.sprintf "hill-climbed incumbent beat fallback %s" name)
      | None -> from_local_search "no fallback heuristics configured")

(* ---- suffix replanning ------------------------------------------------- *)

let m_replans = Metrics.counter "driver.suffix_replans"
let m_replan_evals = Metrics.counter "driver.suffix_evaluations"

type suffix_result = {
  flags : bool array;
  expected_remaining : float;
  evaluations : int;
}

let default_suffix_budget = 256

(* Candidate order is deterministic and identical for every backend:
   incumbent, suffix-all-off, suffix-all-on, then best-improvement single
   flips scanned in position order. Scores from a reused engine, a fresh
   engine and the oracle agree (bit-identically for engines — the makespan
   is a pure function of the flag vector — and at ~1e-12 for the oracle),
   so the search path and the returned flags are backend-independent. *)
let solve_suffix ?(budget = default_suffix_budget) ?engine
    ?(backend = Eval_engine.Incremental) model g ~order ~flags ~from =
  Trace.with_span "driver.solve_suffix" @@ fun () ->
  let n = Array.length order in
  if budget < 1 then invalid_arg "Solver_driver.solve_suffix: budget < 1";
  if Array.length flags <> n then
    invalid_arg "Solver_driver.solve_suffix: flags have the wrong size";
  if from < 0 || from > n then
    invalid_arg "Solver_driver.solve_suffix: position out of range";
  let score =
    match backend with
    | Eval_engine.Naive ->
        fun cand ->
          let s = Schedule.make g ~order ~checkpointed:cand in
          let r = Evaluator.evaluate model g s in
          let sum = ref 0. in
          for i = from to n - 1 do
            sum := !sum +. r.Evaluator.per_position.(i)
          done;
          !sum
    | Eval_engine.Incremental | Eval_engine.Flat ->
        let e =
          match engine with
          | None -> Eval_engine.handle backend model g ~order
          | Some e ->
              if Eval_engine.h_order e <> order then
                invalid_arg
                  "Solver_driver.solve_suffix: engine bound to another order";
              Eval_engine.h_set_model e model;
              e
        in
        fun cand ->
          Eval_engine.h_set_flags e cand;
          Eval_engine.h_suffix_makespan e ~from
  in
  let evals = ref 0 in
  let eval cand = incr evals; score cand in
  let best_flags = Array.copy flags in
  let best = ref (eval best_flags) in
  let consider cand =
    if !evals < budget && cand <> best_flags then begin
      let v = eval cand in
      if v < !best then begin
        best := v;
        Array.blit cand 0 best_flags 0 n
      end
    end
  in
  let suffix_tasks = Array.sub order from (n - from) in
  let with_suffix b =
    let c = Array.copy flags in
    Array.iter (fun v -> c.(v) <- b) suffix_tasks;
    c
  in
  consider (with_suffix false);
  consider (with_suffix true);
  let improved = ref true in
  while !improved && !evals < budget do
    improved := false;
    let round_best = ref !best and round_task = ref (-1) in
    let p = ref from in
    while !p < n && !evals < budget do
      let v = order.(!p) in
      best_flags.(v) <- not best_flags.(v);
      let sc = eval best_flags in
      best_flags.(v) <- not best_flags.(v);
      (* strict improvement, first position wins ties: deterministic *)
      if sc < !round_best then begin
        round_best := sc;
        round_task := v
      end;
      incr p
    done;
    if !round_task >= 0 then begin
      best_flags.(!round_task) <- not best_flags.(!round_task);
      best := !round_best;
      improved := true
    end
  done;
  (* leave a reused engine holding the chosen flags *)
  (match (backend, engine) with
  | (Eval_engine.Incremental | Eval_engine.Flat), Some e ->
      Eval_engine.h_set_flags e best_flags
  | _ -> ());
  if Metrics.enabled () then begin
    Metrics.incr m_replans;
    Metrics.add m_replan_evals !evals
  end;
  { flags = best_flags; expected_remaining = !best; evaluations = !evals }

(* Adapter wiring [solve_suffix] into the adaptive executor's callback slot
   (a callback because wfc_simulator must not depend back on this library).
   Engines are cached per order: an adaptive run keeps one order — two
   lineages with relinearization — so a tiny LRU covers every replan after
   the first, and [set_model] inside [solve_suffix] rebinds the estimated
   rate without losing the cached lost-work rows. *)
let replanner ?(budget = default_suffix_budget)
    ?(backend = Eval_engine.Incremental) ?relinearize g =
  let cache = ref [] in
  let max_cached = 4 in
  let engine_for model order =
    match backend with
    | Eval_engine.Naive -> None
    | Eval_engine.Incremental | Eval_engine.Flat -> (
        match List.find_opt (fun (o, _) -> o = order) !cache with
        | Some (_, e) -> Some e
        | None ->
            let e = Eval_engine.handle backend model g ~order in
            cache :=
              (Array.copy order, e)
              :: (if List.length !cache >= max_cached then
                    List.filteri (fun i _ -> i < max_cached - 1) !cache
                  else !cache);
            Some e)
  in
  fun ~model ~order ~flags ~from ->
    let solve ~budget order flags =
      let engine = engine_for model order in
      solve_suffix ~budget ?engine ~backend model g ~order ~flags ~from
    in
    match relinearize with
    | None ->
        let r = solve ~budget order flags in
        Some { Wfc_simulator.Sim_adaptive.order; flags = r.flags }
    | Some strategy ->
        let n = Array.length order in
        let in_prefix = Array.make n false in
        for p = 0 to from - 1 do
          in_prefix.(order.(p)) <- true
        done;
        (* prefix ++ (full relinearization filtered to remaining tasks):
           the prefix is ancestor-closed, so the result is a linearization *)
        let relin = Array.copy order in
        let q = ref from in
        Array.iter
          (fun v ->
            if not in_prefix.(v) then begin
              relin.(!q) <- v;
              incr q
            end)
          (Wfc_dag.Linearize.run strategy g);
        if relin = order then
          let r = solve ~budget order flags in
          Some { Wfc_simulator.Sim_adaptive.order; flags = r.flags }
        else begin
          let half = Int.max 1 (budget / 2) in
          let r0 = solve ~budget:half order flags in
          let r1 = solve ~budget:half relin flags in
          if r1.expected_remaining < r0.expected_remaining then
            Some { Wfc_simulator.Sim_adaptive.order = relin; flags = r1.flags }
          else Some { Wfc_simulator.Sim_adaptive.order; flags = r0.flags }
        end
