open Wfc_core
module Metrics = Wfc_obs.Metrics
module Trace = Wfc_obs.Trace

type tier = Exact | Local_search | Heuristic

let tier_name = function
  | Exact -> "exact"
  | Local_search -> "local-search"
  | Heuristic -> "heuristic"

(* Every solve records which tier it landed on, and why, as both a counter
   (driver.tier.<name>) and a trace instant carrying the human-readable
   reason. *)
let record_tier tier reason =
  if Metrics.enabled () then
    Metrics.incr (Metrics.counter ("driver.tier." ^ tier_name tier));
  Trace.instant "driver.tier"
    ~args:[ ("tier", tier_name tier); ("reason", reason) ]

type config = {
  max_nodes : int;
  deadline : float option;
  search : Heuristics.search;
  fallbacks : (Wfc_dag.Linearize.strategy * Heuristics.ckpt_strategy) list;
  ls_evaluations : int;
  backend : Eval_engine.backend;
}

let default_config =
  {
    max_nodes = 1_000_000;
    deadline = None;
    search = Heuristics.Exhaustive;
    backend = Eval_engine.Incremental;
    fallbacks =
      List.map
        (fun ckpt -> (Wfc_dag.Linearize.Depth_first, ckpt))
        [
          Heuristics.Ckpt_weight;
          Heuristics.Ckpt_cost;
          Heuristics.Ckpt_outweight;
          Heuristics.Ckpt_periodic;
        ];
    ls_evaluations = 2000;
  }

type result = {
  schedule : Schedule.t;
  makespan : float;
  tier : tier;
  reason : string;
  nodes : int;
  elapsed : float;
}

let solve ?(config = default_config) model g ~order =
  Trace.with_span "driver.solve" @@ fun () ->
  let finish r = record_tier r.tier r.reason; r in
  let t0 = Unix.gettimeofday () in
  let should_stop =
    match config.deadline with
    | None -> fun () -> false
    | Some limit -> fun () -> Unix.gettimeofday () -. t0 > limit
  in
  let sol, status =
    Trace.with_span "driver.exact" (fun () ->
        Exact_solver.optimal_checkpoints_within ~max_nodes:config.max_nodes
          ~should_stop ~backend:config.backend model g ~order)
  in
  let elapsed () = Unix.gettimeofday () -. t0 in
  match status with
  | `Optimal ->
      finish {
        schedule = sol.Exact_solver.schedule;
        makespan = sol.Exact_solver.makespan;
        tier = Exact;
        reason =
          Printf.sprintf "branch and bound completed within budget (%d nodes)"
            sol.Exact_solver.nodes;
        nodes = sol.Exact_solver.nodes;
        elapsed = elapsed ();
      }
  | `Budget_exhausted ->
      (* tier 2: refine the incumbent the truncated search left behind *)
      let ls =
        Trace.with_span "driver.local_search" (fun () ->
            Local_search.improve ~max_evaluations:config.ls_evaluations
              ~backend:config.backend model g sol.Exact_solver.schedule)
      in
      (* tier 3: the configured heuristic chain, on their own linearizations *)
      let best_fallback =
        Trace.with_span "driver.fallbacks" @@ fun () ->
        List.fold_left
          (fun best (lin, ckpt) ->
            let o =
              Heuristics.run ~search:config.search ~backend:config.backend
                model g ~lin ~ckpt
            in
            match best with
            | Some (_, b) when b.Heuristics.makespan <= o.Heuristics.makespan ->
                best
            | _ -> Some (Heuristics.name lin ckpt, o))
          None config.fallbacks
      in
      let stopped =
        (* the budget check fires on the node after the limit, so clamp for
           the human-facing count *)
        Printf.sprintf "exact search stopped after %d of %d nodes"
          (Int.min sol.Exact_solver.nodes config.max_nodes)
          config.max_nodes
      in
      let from_local_search reason_tail =
        finish {
          schedule = ls.Local_search.schedule;
          makespan = ls.Local_search.makespan;
          tier = Local_search;
          reason = Printf.sprintf "%s; %s" stopped reason_tail;
          nodes = sol.Exact_solver.nodes;
          elapsed = elapsed ();
        }
      in
      (match best_fallback with
      | Some (name, o) when o.Heuristics.makespan < ls.Local_search.makespan ->
          finish {
            schedule = o.Heuristics.schedule;
            makespan = o.Heuristics.makespan;
            tier = Heuristic;
            reason = Printf.sprintf "%s; fallback heuristic %s won" stopped name;
            nodes = sol.Exact_solver.nodes;
            elapsed = elapsed ();
          }
      | Some (name, _) ->
          from_local_search
            (Printf.sprintf "hill-climbed incumbent beat fallback %s" name)
      | None -> from_local_search "no fallback heuristics configured")
