(** Graceful degradation for the exact solver: always return the best answer
    the budget allows, and say which tier produced it.

    DAG-ChkptSched is NP-complete, so {!Wfc_core.Exact_solver} can blow any
    node budget or wall-clock deadline on an unlucky instance. A production
    toolchain must not fall over when that happens: this driver runs the
    branch and bound under both limits via
    {!Wfc_core.Exact_solver.optimal_checkpoints_within}, and on exhaustion
    falls back through a configurable chain — hill-climb the incumbent, then
    compare against the best fallback heuristic — returning whichever
    schedule is best, tagged with the tier that produced it and a
    human-readable reason. *)

type tier =
  | Exact  (** branch and bound completed: certified optimal for the order *)
  | Local_search
      (** budget exhausted; the hill-climbed incumbent won the fallback *)
  | Heuristic  (** budget exhausted; a fallback heuristic won *)

val tier_name : tier -> string
(** ["exact"], ["local-search"] or ["heuristic"]. *)

type config = {
  max_nodes : int;  (** branch-and-bound node budget *)
  deadline : float option;  (** wall-clock seconds for the exact attempt *)
  search : Wfc_core.Heuristics.search;  (** checkpoint-count search of the fallbacks *)
  fallbacks :
    (Wfc_dag.Linearize.strategy * Wfc_core.Heuristics.ckpt_strategy) list;
      (** heuristic chain tried on budget exhaustion, in order *)
  ls_evaluations : int;
      (** evaluator budget for hill climbing the exact incumbent *)
  backend : Wfc_core.Eval_engine.backend;
      (** evaluation backend threaded through every tier *)
  bnb_domains : int;
      (** domains for the exact tier's parallel branch and bound (flat
          backend only; the sequential backends ignore it) *)
}

val default_config : config
(** [max_nodes = 1_000_000], [deadline = None], exhaustive search, the
    paper's four searched strategies under DF as fallbacks,
    [ls_evaluations = 2000], incremental backend, [bnb_domains = 1]. *)

type result = {
  schedule : Wfc_core.Schedule.t;
  makespan : float;  (** analytic expectation of [schedule] *)
  tier : tier;
  reason : string;  (** why this tier answered, e.g. the budget that ran out *)
  nodes : int;  (** branch-and-bound nodes expanded *)
  elapsed : float;  (** wall-clock seconds spent in the driver *)
}

val solve :
  ?config:config ->
  ?cancel:Wfc_platform.Cancel.t ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  order:int array ->
  result
(** [solve model g ~order] never raises {!Wfc_core.Exact_solver.Node_budget_exceeded}:
    it degrades through the configured chain instead. The returned makespan
    is never worse than the best configured fallback heuristic's.

    [cancel] (default {!Wfc_platform.Cancel.never}) is threaded into every
    tier — the branch and bound's 1024-node poll, each local-search move,
    each fallback-heuristic candidate. Unlike [deadline] (which degrades to
    the next tier), a cancelled token aborts the whole solve with
    {!Wfc_platform.Cancel.Cancelled}: it is the serving layer's watchdog
    hook, for when nobody is waiting for any answer at all.

    @raise Invalid_argument if [order] is not a linearization of [g]. *)

type suffix_result = {
  flags : bool array;
      (** full flag vector by task id; entries of tasks at positions
          [< from] are exactly the input's (the prefix is pinned) *)
  expected_remaining : float;
      (** sum of [E(X_i)] over positions [>= from] under [flags] *)
  evaluations : int;  (** candidate evaluations spent (at most [budget]) *)
}

val solve_suffix :
  ?budget:int ->
  ?engine:Wfc_core.Eval_engine.handle ->
  ?backend:Wfc_core.Eval_engine.backend ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  order:int array ->
  flags:bool array ->
  from:int ->
  suffix_result
(** [solve_suffix model g ~order ~flags ~from] re-optimizes the checkpoint
    flags of the tasks at positions [>= from] — the not-yet-completed
    suffix of a running schedule — leaving the prefix flags pinned.
    Candidates share the prefix, so comparing suffix expectations is
    comparing full makespans; the objective is the unconditional Theorem 3
    suffix under [model] (exact for the memoryless platform the adaptive
    executor re-estimates).

    The search is deterministic (incumbent, suffix-all-off, suffix-all-on,
    then best-improvement single flips in position order, ties to the
    earliest position) and spends at most [budget] (default 256) candidate
    evaluations — the per-replan budget of the adaptive executor.

    With an engine backend ([Incremental], default, or [Flat]), [engine]
    supplies an {!Wfc_core.Eval_engine.handle} already bound to
    [(g, order)] to reuse across replans: the model is rebound with
    {!Wfc_core.Eval_engine.h_set_model} (cached lost-work rows survive) and
    each candidate costs only the suffix it dirties; on return the engine
    holds the chosen flags. Without [engine] a fresh one is built. The
    candidate sequence is backend-independent, so a reused engine, a fresh
    engine and the [Naive] oracle return the same flags and agree on
    [expected_remaining] to the usual 1e-9.

    @raise Invalid_argument if [budget < 1], [flags] has the wrong size,
      [from] is outside [\[0, n\]], [order] is not a linearization, or
      [engine] is bound to a different order. *)

val default_suffix_budget : int
(** Default per-replan candidate budget (256). *)

val replanner :
  ?budget:int ->
  ?backend:Wfc_core.Eval_engine.backend ->
  ?relinearize:Wfc_dag.Linearize.strategy ->
  Wfc_dag.Dag.t ->
  Wfc_simulator.Sim_adaptive.replan
(** [replanner g] wires {!solve_suffix} into
    {!Wfc_simulator.Sim_adaptive}'s callback slot, caching evaluation
    engines per order so successive replans reuse their lost-work rows
    (the re-estimated model is rebound with
    {!Wfc_core.Eval_engine.set_model}).

    With [relinearize], each replan also builds a second candidate order —
    the executed prefix followed by the given strategy's linearization
    filtered to the remaining tasks (always a valid linearization, because
    the prefix is ancestor-closed) — spends half the budget on each, and
    keeps whichever expected remaining time is lower (ties keep the
    current order). *)
