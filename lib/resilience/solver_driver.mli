(** Graceful degradation for the exact solver: always return the best answer
    the budget allows, and say which tier produced it.

    DAG-ChkptSched is NP-complete, so {!Wfc_core.Exact_solver} can blow any
    node budget or wall-clock deadline on an unlucky instance. A production
    toolchain must not fall over when that happens: this driver runs the
    branch and bound under both limits via
    {!Wfc_core.Exact_solver.optimal_checkpoints_within}, and on exhaustion
    falls back through a configurable chain — hill-climb the incumbent, then
    compare against the best fallback heuristic — returning whichever
    schedule is best, tagged with the tier that produced it and a
    human-readable reason. *)

type tier =
  | Exact  (** branch and bound completed: certified optimal for the order *)
  | Local_search
      (** budget exhausted; the hill-climbed incumbent won the fallback *)
  | Heuristic  (** budget exhausted; a fallback heuristic won *)

val tier_name : tier -> string
(** ["exact"], ["local-search"] or ["heuristic"]. *)

type config = {
  max_nodes : int;  (** branch-and-bound node budget *)
  deadline : float option;  (** wall-clock seconds for the exact attempt *)
  search : Wfc_core.Heuristics.search;  (** checkpoint-count search of the fallbacks *)
  fallbacks :
    (Wfc_dag.Linearize.strategy * Wfc_core.Heuristics.ckpt_strategy) list;
      (** heuristic chain tried on budget exhaustion, in order *)
  ls_evaluations : int;
      (** evaluator budget for hill climbing the exact incumbent *)
  backend : Wfc_core.Eval_engine.backend;
      (** evaluation backend threaded through every tier *)
}

val default_config : config
(** [max_nodes = 1_000_000], [deadline = None], exhaustive search, the
    paper's four searched strategies under DF as fallbacks,
    [ls_evaluations = 2000], incremental backend. *)

type result = {
  schedule : Wfc_core.Schedule.t;
  makespan : float;  (** analytic expectation of [schedule] *)
  tier : tier;
  reason : string;  (** why this tier answered, e.g. the budget that ran out *)
  nodes : int;  (** branch-and-bound nodes expanded *)
  elapsed : float;  (** wall-clock seconds spent in the driver *)
}

val solve :
  ?config:config ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  order:int array ->
  result
(** [solve model g ~order] never raises {!Wfc_core.Exact_solver.Node_budget_exceeded}:
    it degrades through the configured chain instead. The returned makespan
    is never worse than the best configured fallback heuristic's.

    @raise Invalid_argument if [order] is not a linearization of [g]. *)
