module D = Wfc_platform.Distribution
module FM = Wfc_platform.Failure_model
module Rng = Wfc_platform.Rng
module Sample_set = Wfc_platform.Sample_set
module SF = Wfc_simulator.Sim_faults
module Heuristics = Wfc_core.Heuristics

type scenario = { name : string; params : SF.params }

let default_grid nominal =
  let lambda = nominal.FM.lambda in
  if lambda = 0. then invalid_arg "Stress.default_grid: fail-free nominal";
  let mtbf = 1. /. lambda in
  let nominal_p = SF.nominal nominal in
  let clean failures = { nominal_p with SF.failures } in
  (* mean-preserving burst mix: 90% of gaps at MTBF/3, 10% at 7 MTBF *)
  let bursty =
    D.hyperexponential ~p:0.9 ~rate1:(3. /. mtbf) ~rate2:(1. /. (7. *. mtbf))
  in
  let random_downtime =
    D.exponential
      ~rate:(1. /. Float.max nominal.FM.downtime (0.01 *. mtbf))
  in
  [
    { name = "nominal"; params = nominal_p };
    { name = "mtbf/2"; params = clean (D.exponential ~rate:(2. *. lambda)) };
    { name = "mtbf/10"; params = clean (D.exponential ~rate:(10. *. lambda)) };
    { name = "mtbf*2"; params = clean (D.exponential ~rate:(lambda /. 2.)) };
    { name = "mtbf*10"; params = clean (D.exponential ~rate:(lambda /. 10.)) };
    {
      name = "weibull k=0.7";
      params = clean (D.weibull_of_mean ~shape:0.7 ~mean:mtbf);
    };
    {
      name = "weibull k=1.5";
      params = clean (D.weibull_of_mean ~shape:1.5 ~mean:mtbf);
    };
    { name = "bursty"; params = clean bursty };
    {
      name = "random downtime";
      params = { nominal_p with SF.downtime = random_downtime };
    };
    { name = "corrupt ckpt 10%"; params = { nominal_p with SF.p_ckpt_fail = 0.1 } };
    { name = "flaky recovery 10%"; params = { nominal_p with SF.p_rec_fail = 0.1 } };
    {
      name = "hostile";
      params =
        {
          SF.failures = D.weibull_of_mean ~shape:0.7 ~mean:(mtbf /. 5.);
          downtime = random_downtime;
          p_ckpt_fail = 0.05;
          p_rec_fail = 0.05;
          max_failures = 0;
        };
    };
  ]

type scenario_result = {
  scenario : scenario;
  mean : float;
  p95 : float;
  p99 : float;
  mean_degradation : float;
  tail_degradation : float;
  divergent : int;
}

type report = {
  nominal_makespan : float;
  results : scenario_result list;
  robustness : float;
}

(* One private stream per (seed, scenario, run): chunking the runs over
   domains cannot change any draw, so reports are domain-count invariant.
   SplitMix64 seeding mixes the raw integer, so affine combinations with
   large odd constants give well-separated streams. *)
let run_rng ~seed ~scenario ~run =
  Rng.create (seed + (scenario * 0x5851F42D) + (run * 0x9E3779B9))

let evaluate ?replica_cost ?(runs = 2000) ?domains ?(max_failures = 10_000)
    ~seed ~nominal ~scenarios g sched =
  if runs <= 0 then invalid_arg "Stress.evaluate: runs <= 0";
  if max_failures <= 0 then invalid_arg "Stress.evaluate: max_failures <= 0";
  if scenarios = [] then invalid_arg "Stress.evaluate: no scenarios";
  let domains =
    match domains with
    | Some d ->
        if d <= 0 then invalid_arg "Stress.evaluate: domains <= 0";
        d
    | None -> Int.max 1 (Domain.recommended_domain_count () - 1)
  in
  let domains = Int.min domains runs in
  let nominal_makespan =
    Wfc_core.Evaluator.expected_makespan ?replica_cost nominal g sched
  in
  let results =
    List.mapi
      (fun si sc ->
        (* divergent-run valve: a schedule that essentially cannot finish
           under the scenario (e^{lambda W} retries) would hang the campaign;
           scenarios may still opt into a tighter or looser cap of their own *)
        let params =
          if sc.params.SF.max_failures = 0 then
            { sc.params with SF.max_failures = max_failures }
          else sc.params
        in
        let samples = Array.make runs 0. in
        let truncs = Array.make runs false in
        let worker lo hi =
          for r = lo to hi - 1 do
            let out =
              SF.run ?replica_cost
                ~rng:(run_rng ~seed ~scenario:si ~run:r)
                params g sched
            in
            samples.(r) <- out.SF.makespan;
            truncs.(r) <- out.SF.truncated
          done
        in
        (* split [0, runs) into [domains] contiguous chunks; disjoint writes
           into [samples] need no synchronization *)
        let chunk = runs / domains and rem = runs mod domains in
        let start i = (i * chunk) + Int.min i rem in
        let handles =
          List.init (domains - 1) (fun i ->
              let i = i + 1 in
              Domain.spawn (fun () -> worker (start i) (start (i + 1))))
        in
        worker 0 (start 1);
        List.iter Domain.join handles;
        let set = Sample_set.create () in
        Array.iter (Sample_set.add set) samples;
        let mean = Sample_set.mean set in
        let p95 = Sample_set.quantile set 0.95 in
        let p99 = Sample_set.quantile set 0.99 in
        {
          scenario = sc;
          mean;
          p95;
          p99;
          mean_degradation = mean /. nominal_makespan;
          tail_degradation = p99 /. nominal_makespan;
          divergent =
            Array.fold_left (fun acc t -> if t then acc + 1 else acc) 0 truncs;
        })
      scenarios
  in
  let robustness =
    (* truncated makespans are lower bounds, so a divergent scenario makes
       every ratio meaningless-optimistic: a schedule that cannot finish must
       never outrank one that can *)
    if List.exists (fun r -> r.divergent > 0) results then Float.infinity
    else
      List.fold_left (fun acc r -> Float.max acc r.tail_degradation) 0. results
  in
  { nominal_makespan; results; robustness }

type ranked = {
  heuristic : string;
  outcome : Heuristics.outcome;
  report : report;
}

let rank ?runs ?domains ?max_failures ?(search = Heuristics.Exhaustive)
    ?backend ?replication ?replica_cost ~seed ~nominal ~scenarios g heuristics
    =
  List.map
    (fun (lin, ckpt) ->
      let outcome = Heuristics.run ~search ?backend nominal g ~lin ~ckpt in
      (* the checkpoint placement is optimized unreplicated; the replication
         policy then spends its budget on top, and the stressed schedule is
         the replicated one *)
      let outcome, suffix =
        match replication with
        | None | Some Wfc_core.Replication.No_replication -> (outcome, "")
        | Some spec ->
            ( Heuristics.replicate ?cost:replica_cost spec nominal g outcome,
              "+" ^ Wfc_core.Replication.spec_name spec )
      in
      let report =
        evaluate ?replica_cost ?runs ?domains ?max_failures ~seed ~nominal
          ~scenarios g outcome.Heuristics.schedule
      in
      { heuristic = Heuristics.name lin ckpt ^ suffix; outcome; report })
    heuristics
  |> List.stable_sort (fun a b ->
         match Float.compare a.report.robustness b.report.robustness with
         | 0 ->
             Float.compare a.outcome.Heuristics.makespan
               b.outcome.Heuristics.makespan
         | c -> c)
