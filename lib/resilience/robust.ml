module D = Wfc_platform.Distribution
module FM = Wfc_platform.Failure_model
module Rng = Wfc_platform.Rng
module Sample_set = Wfc_platform.Sample_set
module Sim = Wfc_simulator.Sim
module SA = Wfc_simulator.Sim_adaptive
module T = Wfc_simulator.Trace_io
module Metrics = Wfc_obs.Metrics
module Trace = Wfc_obs.Trace

let m_evaluations = Metrics.counter "robust.evaluations"
let m_replays = Metrics.counter "robust.replays"

type criterion = Mean | CVaR of float | Worst

let criterion_name = function
  | Mean -> "mean"
  | CVaR alpha -> Printf.sprintf "cvar@%g" alpha
  | Worst -> "worst"

let criterion_of_string s =
  match String.lowercase_ascii s with
  | "mean" -> Some Mean
  | "worst" -> Some Worst
  | "cvar" -> Some (CVaR 0.95)
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "cvar" -> (
          let q = String.sub s (i + 1) (String.length s - i - 1) in
          match float_of_string_opt q with
          | Some q when q >= 0. && q <= 1. -> Some (CVaR q)
          | _ -> None)
      | _ -> None)

type scenario = { name : string; failures : D.t; downtime : D.t }

let default_scenarios nominal =
  let lambda = nominal.FM.lambda in
  if lambda = 0. then invalid_arg "Robust.default_scenarios: fail-free nominal";
  let mtbf = 1. /. lambda in
  let downtime = D.constant nominal.FM.downtime in
  (* same mean-preserving burst mix as Stress: 90% of gaps at MTBF/3,
     10% at 7 MTBF *)
  let bursty =
    D.hyperexponential ~p:0.9 ~rate1:(3. /. mtbf) ~rate2:(1. /. (7. *. mtbf))
  in
  [
    { name = "exponential"; failures = D.exponential ~rate:lambda; downtime };
    {
      name = "weibull k=0.7";
      failures = D.weibull_of_mean ~shape:0.7 ~mean:mtbf;
      downtime;
    };
    {
      name = "weibull k=1.5";
      failures = D.weibull_of_mean ~shape:1.5 ~mean:mtbf;
      downtime;
    };
    { name = "bursty"; failures = bursty; downtime };
  ]

type lanes = { primary : T.replay_state; siblings : T.replay_state array }

type candidate = { name : string; extra_lanes : int; execute : lanes -> Sim.run }

let extra_lanes_of sched =
  if Wfc_core.Schedule.is_replicated sched then
    Wfc_core.Schedule.max_replica_count sched - 1
  else 0

let sources_of env ~extra =
  Array.map (fun s -> s.T.source) (Array.sub env.siblings 0 extra)

let static ?replica_cost ~name g sched =
  let extra = extra_lanes_of sched in
  if extra = 0 then
    {
      name;
      extra_lanes = 0;
      execute = (fun env -> Sim.run_with_source env.primary.T.source g sched);
    }
  else
    {
      name;
      extra_lanes = extra;
      execute =
        (fun env ->
          let lanes =
            Array.append [| env.primary.T.source |] (sources_of env ~extra)
          in
          Sim.run_with_lanes ?replica_cost lanes g sched);
    }

let adaptive ?replica_cost ~name config g sched =
  let extra = extra_lanes_of sched in
  {
    name;
    extra_lanes = extra;
    execute =
      (fun env ->
        (SA.run ~extra_lanes:(sources_of env ~extra) ?replica_cost config
           ~source:env.primary.T.source g sched)
          .SA.run);
  }

type score = {
  candidate : string;
  mean : float;
  cvar : float;
  worst : float;
  per_scenario : (string * float) list;
  regret : (string * float) list;
  max_regret : float;
  exhausted : int;
}

type report = {
  criterion : criterion;
  alpha : float;
  traces_per_scenario : int;
  scores : score list;
  winner : score;
}

(* One private stream per (seed, scenario, trace), mirroring Stress: the
   ensemble depends only on the seed and the scenario list, never on the
   candidates scored against it. *)
let trace_rng ~seed ~scenario ~trace =
  Rng.create (seed + (scenario * 0x5851F42D) + (trace * 0x9E3779B9))

(* Sibling failure lanes for replicated candidates: lane 0 is exactly the
   [trace_rng] stream (so adding replicated candidates never perturbs the
   primary ensemble or existing results), lanes >= 1 mix in a third odd
   constant. *)
let lane_rng ~seed ~scenario ~trace ~lane =
  Rng.create
    (seed + (scenario * 0x5851F42D) + (trace * 0x9E3779B9)
   + (lane * 0x2545F491))

let key_of criterion score =
  match criterion with
  | Mean -> score.mean
  | CVaR _ -> score.cvar
  | Worst -> score.worst

let evaluate ?(traces_per_scenario = 50) ?(alpha = 0.95) ~seed ~min_uptime
    ~criterion ~scenarios candidates =
  Trace.with_span "robust.evaluate"
    ~args:
      [
        ("criterion", criterion_name criterion);
        ("candidates", string_of_int (List.length candidates));
      ]
  @@ fun () ->
  if candidates = [] then invalid_arg "Robust.evaluate: no candidates";
  if scenarios = [] then invalid_arg "Robust.evaluate: no scenarios";
  if traces_per_scenario < 1 then
    invalid_arg "Robust.evaluate: traces_per_scenario < 1";
  if not (alpha >= 0. && alpha <= 1.) then
    invalid_arg "Robust.evaluate: alpha outside [0, 1]";
  (match criterion with
  | CVaR a when not (a >= 0. && a <= 1.) ->
      invalid_arg "Robust.evaluate: CVaR level outside [0, 1]"
  | _ -> ());
  if Metrics.enabled () then Metrics.incr m_evaluations;
  (* the shared ensemble: drawn once, replayed for every candidate. With
     replicated candidates in play, every trace carries enough sibling lane
     traces for the widest candidate; candidates use a prefix, so the
     ensemble is still independent of which candidates are scored. *)
  let max_extra =
    List.fold_left (fun acc c -> Int.max acc c.extra_lanes) 0 candidates
  in
  let ensemble =
    List.mapi
      (fun si sc ->
        ( sc,
          Array.init traces_per_scenario (fun ti ->
              let primary =
                T.draw_renewal
                  ~rng:(trace_rng ~seed ~scenario:si ~trace:ti)
                  ~failures:sc.failures ~downtime:sc.downtime ~min_uptime
              in
              let siblings =
                Array.init max_extra (fun li ->
                    T.draw_renewal
                      ~rng:
                        (lane_rng ~seed ~scenario:si ~trace:ti ~lane:(li + 1))
                      ~failures:sc.failures ~downtime:sc.downtime ~min_uptime)
              in
              (primary, siblings)) ))
      scenarios
  in
  let cvar_level = match criterion with CVaR a -> a | _ -> alpha in
  let scores =
    List.map
      (fun cand ->
        let pooled = Sample_set.create () in
        let exhausted = ref 0 in
        let per_scenario =
          List.map
            (fun ((sc : scenario), traces) ->
              let sum = ref 0. in
              Array.iter
                (fun (primary_trace, sibling_traces) ->
                  let env =
                    {
                      primary = T.replay_source primary_trace;
                      siblings =
                        Array.map T.replay_source
                          (Array.sub sibling_traces 0 cand.extra_lanes);
                    }
                  in
                  let run = cand.execute env in
                  if Metrics.enabled () then Metrics.incr m_replays;
                  if
                    env.primary.T.exhausted ()
                    || Array.exists (fun s -> s.T.exhausted ()) env.siblings
                  then incr exhausted;
                  Sample_set.add pooled run.Sim.makespan;
                  sum := !sum +. run.Sim.makespan)
                traces;
              (sc.name, !sum /. float_of_int traces_per_scenario))
            ensemble
        in
        {
          candidate = cand.name;
          mean = Sample_set.mean pooled;
          cvar = Sample_set.cvar pooled cvar_level;
          worst = Sample_set.quantile pooled 1.;
          per_scenario;
          regret = [];
          max_regret = 0.;
          exhausted = !exhausted;
        })
      candidates
  in
  (* regret vs the per-scenario best candidate *)
  let best_per_scenario =
    List.map
      (fun ((sc : scenario), _) ->
        ( sc.name,
          List.fold_left
            (fun acc s -> Float.min acc (List.assoc sc.name s.per_scenario))
            Float.infinity scores ))
      ensemble
  in
  let scores =
    List.map
      (fun s ->
        let regret =
          List.map
            (fun (name, m) -> (name, m -. List.assoc name best_per_scenario))
            s.per_scenario
        in
        let max_regret =
          List.fold_left (fun acc (_, r) -> Float.max acc r) 0. regret
        in
        { s with regret; max_regret })
      scores
  in
  let winner =
    List.fold_left
      (fun best s -> if key_of criterion s < key_of criterion best then s else best)
      (List.hd scores) (List.tl scores)
  in
  Trace.instant "robust.selected"
    ~args:
      [
        ("winner", winner.candidate);
        ("criterion", criterion_name criterion);
        ("key", Printf.sprintf "%.6g" (key_of criterion winner));
      ];
  { criterion; alpha = cvar_level; traces_per_scenario; scores; winner }
