(** Directed acyclic graphs of workflow tasks.

    A DAG couples an array of {!Task.t} (task [i] has [id = i]) with
    precedence edges. Values of this type are immutable once created and all
    structural invariants (valid ids, no self-loops, no duplicate edges,
    acyclicity) are enforced by {!create}. *)

type t

(** {1 Construction} *)

val create : tasks:Task.t array -> edges:(int * int) list -> t
(** [create ~tasks ~edges] builds a DAG whose vertex [i] is [tasks.(i)] and
    with an edge [(u, v)] for each pair in [edges], meaning [v] consumes the
    output of [u].

    @raise Invalid_argument if [tasks] is empty, if [tasks.(i).id <> i] for
    some [i], if an edge endpoint is out of range, on self-loops or duplicate
    edges, or if the graph has a cycle. *)

val of_weights :
  ?checkpoint_cost:(int -> float -> float) ->
  ?recovery_cost:(int -> float -> float) ->
  weights:float array ->
  edges:(int * int) list ->
  unit ->
  t
(** [of_weights ~weights ~edges ()] is a convenience wrapper building the
    task array from raw weights. The cost callbacks receive the task id and
    weight and default to [fun _ _ -> 0.]. *)

val map_tasks : (Task.t -> Task.t) -> t -> t
(** [map_tasks f g] applies [f] to every task, keeping the structure.

    @raise Invalid_argument if [f] changes a task id. *)

(** {1 Accessors} *)

val n_tasks : t -> int
val n_edges : t -> int

val task : t -> int -> Task.t
(** @raise Invalid_argument on out-of-range index. *)

val tasks : t -> Task.t array
(** Fresh copy of the task array. *)

val edges : t -> (int * int) list
(** All edges, sorted lexicographically. *)

val succs : t -> int -> int list
val preds : t -> int -> int list

val succs_array : t -> int -> int array
(** Borrowed internal array of successors of a vertex, in increasing order.
    Callers must not mutate it; meant for allocation-free hot loops. *)

val preds_array : t -> int -> int array
(** Borrowed internal array of predecessors. Same caveat as
    {!succs_array}. *)

val is_edge : t -> int -> int -> bool
val in_degree : t -> int -> int
val out_degree : t -> int -> int

val sources : t -> int list
(** Vertices with no predecessor (entry tasks), increasing order. *)

val sinks : t -> int list
(** Vertices with no successor (exit tasks), increasing order. *)

(** {1 Weights} *)

val weight : t -> int -> float
val total_weight : t -> float

val outweight : t -> int -> float
(** Sum of the weights of the direct successors — the priority used by the
    paper's list heuristics ([d_i] in the CkptD strategy). *)

(** {1 Structure} *)

val topological_order : t -> int array
(** Deterministic topological order (Kahn's algorithm, smallest ready id
    first). *)

val is_linearization : t -> int array -> bool
(** [is_linearization g order] checks that [order] is a permutation of
    [0..n-1] that schedules every task after all of its predecessors. *)

val levels : t -> int array
(** [levels g] maps each vertex to its depth: 0 for sources, otherwise
    [1 + max (levels of predecessors)]. *)

val ancestors : t -> int -> bool array
(** [ancestors g v] flags every strict ancestor of [v]. *)

val descendants : t -> int -> bool array
(** [descendants g v] flags every strict descendant of [v]. *)

val critical_path : t -> float
(** Weight of the heaviest path, including its endpoints. *)

val fingerprint : t -> int64
(** Deterministic 64-bit structural digest (FNV-1a over task count, labels,
    weight/cost bits and edges). Structurally equal DAGs — same tasks in the
    same positions, same edges — have equal fingerprints; the converse holds
    up to hash collision, the risk accepted by engine-cache keying. Stable
    across processes and platforms (no [Hashtbl.hash] involved). *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: task/edge counts, weight statistics, depth. *)
