type t = {
  tasks : Task.t array;
  succs : int array array;
  preds : int array array;
  n_edges : int;
}

let n_tasks g = Array.length g.tasks
let n_edges g = g.n_edges

let check_index g i name =
  if i < 0 || i >= n_tasks g then
    invalid_arg (Printf.sprintf "Dag.%s: index %d out of range" name i)

let task g i =
  check_index g i "task";
  g.tasks.(i)

let tasks g = Array.copy g.tasks

let succs_array g i =
  check_index g i "succs_array";
  g.succs.(i)

let preds_array g i =
  check_index g i "preds_array";
  g.preds.(i)

let succs g i = Array.to_list (succs_array g i)
let preds g i = Array.to_list (preds_array g i)

let edges g =
  let acc = ref [] in
  for u = n_tasks g - 1 downto 0 do
    let s = g.succs.(u) in
    for k = Array.length s - 1 downto 0 do
      acc := (u, s.(k)) :: !acc
    done
  done;
  !acc

let is_edge g u v =
  check_index g u "is_edge";
  check_index g v "is_edge";
  Array.exists (Int.equal v) g.succs.(u)

let in_degree g i = Array.length (preds_array g i)
let out_degree g i = Array.length (succs_array g i)

let sources g =
  List.filter (fun i -> in_degree g i = 0) (List.init (n_tasks g) Fun.id)

let sinks g =
  List.filter (fun i -> out_degree g i = 0) (List.init (n_tasks g) Fun.id)

(* Kahn's algorithm; raises if a cycle prevents scheduling every vertex. The
   ready set is a priority structure keyed by vertex id so the order is
   deterministic. *)
let topological_order g =
  let n = n_tasks g in
  let indeg = Array.init n (fun i -> in_degree g i) in
  let module Iset = Set.Make (Int) in
  let ready = ref Iset.empty in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then ready := Iset.add i !ready
  done;
  let order = Array.make n (-1) in
  let count = ref 0 in
  while not (Iset.is_empty !ready) do
    let v = Iset.min_elt !ready in
    ready := Iset.remove v !ready;
    order.(!count) <- v;
    incr count;
    Array.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then ready := Iset.add s !ready)
      g.succs.(v)
  done;
  if !count < n then invalid_arg "Dag: graph has a cycle";
  order

let create ~tasks ~edges =
  let n = Array.length tasks in
  if n = 0 then invalid_arg "Dag.create: empty task array";
  Array.iteri
    (fun i (t : Task.t) ->
      if t.Task.id <> i then
        invalid_arg
          (Printf.sprintf "Dag.create: tasks.(%d) has id %d" i t.Task.id))
    tasks;
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Dag.create: edge (%d,%d) out of range" u v);
      if u = v then
        invalid_arg (Printf.sprintf "Dag.create: self-loop on %d" u);
      if Hashtbl.mem seen (u, v) then
        invalid_arg (Printf.sprintf "Dag.create: duplicate edge (%d,%d)" u v);
      Hashtbl.add seen (u, v) ())
    edges;
  let succ_lists = Array.make n [] and pred_lists = Array.make n [] in
  List.iter
    (fun (u, v) ->
      succ_lists.(u) <- v :: succ_lists.(u);
      pred_lists.(v) <- u :: pred_lists.(v))
    edges;
  let sorted l = Array.of_list (List.sort_uniq Int.compare l) in
  let g =
    {
      tasks = Array.copy tasks;
      succs = Array.map sorted succ_lists;
      preds = Array.map sorted pred_lists;
      n_edges = List.length edges;
    }
  in
  ignore (topological_order g);
  g

let of_weights ?(checkpoint_cost = fun _ _ -> 0.)
    ?(recovery_cost = fun _ _ -> 0.) ~weights ~edges () =
  let tasks =
    Array.mapi
      (fun i w ->
        Task.make ~id:i ~weight:w ~checkpoint_cost:(checkpoint_cost i w)
          ~recovery_cost:(recovery_cost i w) ())
      weights
  in
  create ~tasks ~edges

let map_tasks f g =
  let tasks =
    Array.mapi
      (fun i t ->
        let t' = f t in
        if t'.Task.id <> i then
          invalid_arg "Dag.map_tasks: callback changed a task id";
        t')
      g.tasks
  in
  { g with tasks }

let weight g i = (task g i).Task.weight

let total_weight g =
  Array.fold_left (fun acc (t : Task.t) -> acc +. t.Task.weight) 0. g.tasks

let outweight g i =
  Array.fold_left
    (fun acc s -> acc +. g.tasks.(s).Task.weight)
    0. (succs_array g i)

let is_linearization g order =
  let n = n_tasks g in
  Array.length order = n
  &&
  let pos = Array.make n (-1) in
  let ok = ref true in
  Array.iteri
    (fun p v ->
      if v < 0 || v >= n || pos.(v) >= 0 then ok := false else pos.(v) <- p)
    order;
  !ok
  && Array.for_all (fun p -> p >= 0) pos
  && List.for_all (fun (u, v) -> pos.(u) < pos.(v)) (edges g)

let levels g =
  let order = topological_order g in
  let lvl = Array.make (n_tasks g) 0 in
  Array.iter
    (fun v ->
      Array.iter
        (fun p -> if lvl.(p) + 1 > lvl.(v) then lvl.(v) <- lvl.(p) + 1)
        g.preds.(v))
    order;
  lvl

let reachable adjacency g v =
  check_index g v "reachable";
  let n = n_tasks g in
  let mark = Array.make n false in
  let rec go u =
    Array.iter
      (fun x ->
        if not mark.(x) then begin
          mark.(x) <- true;
          go x
        end)
      (adjacency u)
  in
  go v;
  mark

let ancestors g v = reachable (fun u -> g.preds.(u)) g v
let descendants g v = reachable (fun u -> g.succs.(u)) g v

let critical_path g =
  let order = topological_order g in
  let best = Array.make (n_tasks g) 0. in
  let result = ref 0. in
  Array.iter
    (fun v ->
      let from_preds =
        Array.fold_left
          (fun acc p -> Float.max acc best.(p))
          0. g.preds.(v)
      in
      best.(v) <- from_preds +. weight g v;
      if best.(v) > !result then result := best.(v))
    order;
  !result

(* FNV-1a over the full structural content: task count, every task's label,
   weight and cost bits, and every edge. Two DAGs that evaluate identically
   under every model collide iff they are structurally equal (up to the
   2^-64 hash collision risk callers accept for cache keying). *)
let fingerprint g =
  let fnv_prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let step b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) fnv_prime
  in
  let int64 x =
    for shift = 0 to 7 do
      step (Int64.to_int (Int64.shift_right_logical x (shift * 8)))
    done
  in
  let float f = int64 (Int64.bits_of_float f) in
  let string s = String.iter (fun c -> step (Char.code c)) s; step 0xff in
  int64 (Int64.of_int (n_tasks g));
  Array.iter
    (fun (t : Task.t) ->
      string t.Task.label;
      float t.Task.weight;
      float t.Task.checkpoint_cost;
      float t.Task.recovery_cost)
    g.tasks;
  Array.iteri
    (fun u succs ->
      Array.iter
        (fun v ->
          int64 (Int64.of_int u);
          int64 (Int64.of_int v))
        succs)
    g.succs;
  !h

let pp_stats ppf g =
  let n = n_tasks g in
  let wmin = ref infinity and wmax = ref 0. in
  Array.iter
    (fun (t : Task.t) ->
      if t.Task.weight < !wmin then wmin := t.Task.weight;
      if t.Task.weight > !wmax then wmax := t.Task.weight)
    g.tasks;
  let depth = Array.fold_left Int.max 0 (levels g) in
  Format.fprintf ppf
    "dag: %d tasks, %d edges, depth %d, weight total %g (avg %g, min %g, max \
     %g)"
    n g.n_edges depth (total_weight g)
    (total_weight g /. float_of_int n)
    !wmin !wmax
