let default_domains () = Int.max 1 (Domain.recommended_domain_count () - 1)

let chunks ~total ~domains =
  if total < 0 then invalid_arg "Domain_pool.chunks: negative total";
  if domains <= 0 then invalid_arg "Domain_pool.chunks: domains <= 0";
  let domains = Int.max 1 (Int.min domains total) in
  let chunk = total / domains and rem = total mod domains in
  Array.init domains (fun i ->
      let len = chunk + if i < rem then 1 else 0 in
      let start = (i * chunk) + Int.min i rem in
      (start, len))

let run ~domains worker =
  if domains <= 0 then invalid_arg "Domain_pool.run: domains <= 0";
  if domains = 1 then [ worker 0 ]
  else
    (* spawn helpers for 1..domains-1, keep slice 0 on the calling domain so
       a single-domain split never pays a spawn *)
    let handles =
      List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    let first = worker 0 in
    first :: List.map Domain.join handles

(* Self-scheduling loop over an atomic cursor: every idle worker grabs the
   next unclaimed item, so imbalanced items (branch-and-bound subtrees) are
   stolen from the static round-robin owner instead of serializing on it.
   With [domains = 1] this degenerates to a plain sequential loop in item
   order (run spawns nothing), which is what makes single-domain runs
   deterministic node-for-node. *)
let self_schedule ~domains ~total f =
  if domains <= 0 then invalid_arg "Domain_pool.self_schedule: domains <= 0";
  if total < 0 then invalid_arg "Domain_pool.self_schedule: negative total";
  let cursor = Atomic.make 0 in
  let steals =
    run ~domains (fun w ->
        let stolen = ref 0 in
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add cursor 1 in
          if i >= total then continue := false
          else begin
            if i mod domains <> w then incr stolen;
            f ~worker:w i
          end
        done;
        !stolen)
  in
  List.fold_left ( + ) 0 steals
