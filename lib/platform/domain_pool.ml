let default_domains () = Int.max 1 (Domain.recommended_domain_count () - 1)

let chunks ~total ~domains =
  if total < 0 then invalid_arg "Domain_pool.chunks: negative total";
  if domains <= 0 then invalid_arg "Domain_pool.chunks: domains <= 0";
  let domains = Int.max 1 (Int.min domains total) in
  let chunk = total / domains and rem = total mod domains in
  Array.init domains (fun i ->
      let len = chunk + if i < rem then 1 else 0 in
      let start = (i * chunk) + Int.min i rem in
      (start, len))

let run ~domains worker =
  if domains <= 0 then invalid_arg "Domain_pool.run: domains <= 0";
  if domains = 1 then [ worker 0 ]
  else
    (* spawn helpers for 1..domains-1, keep slice 0 on the calling domain so
       a single-domain split never pays a spawn *)
    let handles =
      List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    let first = worker 0 in
    first :: List.map Domain.join handles

(* ---- persistent bounded pool (the serving layer's worker side) -------- *)

module Pool = struct
  type t = {
    mutex : Mutex.t;
    work_ready : Condition.t;
    jobs : (unit -> unit) Queue.t;
    mutable outstanding : int;  (* queued + running *)
    depth : int;
    mutable stopping : bool;
    mutable drained : bool;  (* workers must exit even with jobs queued *)
    mutable workers : unit Domain.t array;
    restarts : int Atomic.t;  (* workers resurrected after a crash *)
  }

  let worker_loop t =
    let rec next () =
      Mutex.lock t.mutex;
      let rec wait () =
        if Queue.is_empty t.jobs && not t.stopping then begin
          Condition.wait t.work_ready t.mutex;
          wait ()
        end
      in
      wait ();
      if Queue.is_empty t.jobs || t.drained then Mutex.unlock t.mutex
      else begin
        let job = Queue.pop t.jobs in
        Mutex.unlock t.mutex;
        (* crash-only: the outstanding count is settled whatever the job
           does. An exception escaping [job] kills this worker — the
           supervisor in [supervised] restarts it and counts the death —
           instead of being silently swallowed here. *)
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock t.mutex;
            t.outstanding <- t.outstanding - 1;
            Mutex.unlock t.mutex)
          job;
        next ()
      end
    in
    next ()

  (* Each spawned domain runs the worker loop under a supervisor: a crash
     (any exception escaping a job) is recorded and the loop is re-entered
     in place, so the pool keeps its full worker complement without the
     owner having to join and respawn domains. During shutdown the
     restarted loop observes [stopping] and exits normally. *)
  let supervised t =
    let rec go () =
      match worker_loop t with
      | () -> ()
      | exception _ ->
          Atomic.incr t.restarts;
          go ()
    in
    go ()

  let create ~workers ~depth =
    if workers <= 0 then invalid_arg "Domain_pool.Pool.create: workers <= 0";
    if depth <= 0 then invalid_arg "Domain_pool.Pool.create: depth <= 0";
    let t =
      {
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        jobs = Queue.create ();
        outstanding = 0;
        depth;
        stopping = false;
        drained = false;
        workers = [||];
        restarts = Atomic.make 0;
      }
    in
    t.workers <-
      Array.init workers (fun _ -> Domain.spawn (fun () -> supervised t));
    t

  let try_submit t job =
    Mutex.lock t.mutex;
    let admitted =
      if t.stopping || t.outstanding >= t.depth then false
      else begin
        t.outstanding <- t.outstanding + 1;
        Queue.push job t.jobs;
        Condition.signal t.work_ready;
        true
      end
    in
    Mutex.unlock t.mutex;
    admitted

  let outstanding t =
    Mutex.lock t.mutex;
    let n = t.outstanding in
    Mutex.unlock t.mutex;
    n

  let depth t = t.depth
  let restarts t = Atomic.get t.restarts

  let shutdown ?(drain = true) t =
    Mutex.lock t.mutex;
    t.stopping <- true;
    t.drained <- not drain;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers
end

(* Self-scheduling loop over an atomic cursor: every idle worker grabs the
   next unclaimed item, so imbalanced items (branch-and-bound subtrees) are
   stolen from the static round-robin owner instead of serializing on it.
   With [domains = 1] this degenerates to a plain sequential loop in item
   order (run spawns nothing), which is what makes single-domain runs
   deterministic node-for-node. *)
let self_schedule ~domains ~total f =
  if domains <= 0 then invalid_arg "Domain_pool.self_schedule: domains <= 0";
  if total < 0 then invalid_arg "Domain_pool.self_schedule: negative total";
  let cursor = Atomic.make 0 in
  let steals =
    run ~domains (fun w ->
        let stolen = ref 0 in
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add cursor 1 in
          if i >= total then continue := false
          else begin
            if i mod domains <> w then incr stolen;
            f ~worker:w i
          end
        done;
        !stolen)
  in
  List.fold_left ( + ) 0 steals
