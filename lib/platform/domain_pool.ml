let default_domains () = Int.max 1 (Domain.recommended_domain_count () - 1)

let chunks ~total ~domains =
  if total < 0 then invalid_arg "Domain_pool.chunks: negative total";
  if domains <= 0 then invalid_arg "Domain_pool.chunks: domains <= 0";
  let domains = Int.max 1 (Int.min domains total) in
  let chunk = total / domains and rem = total mod domains in
  Array.init domains (fun i ->
      let len = chunk + if i < rem then 1 else 0 in
      let start = (i * chunk) + Int.min i rem in
      (start, len))

let run ~domains worker =
  if domains <= 0 then invalid_arg "Domain_pool.run: domains <= 0";
  if domains = 1 then [ worker 0 ]
  else
    (* spawn helpers for 1..domains-1, keep slice 0 on the calling domain so
       a single-domain split never pays a spawn *)
    let handles =
      List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    let first = worker 0 in
    first :: List.map Domain.join handles
