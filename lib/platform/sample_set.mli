(** In-memory sample collections with order statistics.

    {!Stats} is streaming and keeps no samples; this small companion stores
    them, for quantiles and tail analysis of simulated makespans. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]], by linear interpolation between
    order statistics (type-7, the R default).

    @raise Invalid_argument on an empty set or [q] outside [\[0, 1\]]. *)

val median : t -> float

val cvar : t -> float -> float
(** [cvar t q] is the conditional value-at-risk at level [q]: the expected
    value of the tail above the [q]-quantile, computed as the exact integral
    of the same type-7 piecewise-linear quantile function {!quantile}
    interpolates — so [cvar t q >= quantile t q] always, with equality at
    [q = 1] (the sample maximum). [cvar t 0.] is the mean of the
    interpolated distribution (close to, but not identical with, the sample
    {!mean}). For makespans this reads "the expected severity of the worst
    [(1 - q)] fraction of runs".

    @raise Invalid_argument on an empty set or [q] outside [\[0, 1\]]. *)

val sorted : t -> float array

val to_stats : t -> Stats.t
(** Summarize into a streaming accumulator. *)
