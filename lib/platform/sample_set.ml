type t = {
  mutable data : float array;
  mutable size : int;
  mutable dirty : bool;  (* sorted cache invalid *)
}

let create () = { data = Array.make 16 0.; size = 0; dirty = false }

let add t x =
  if t.size = Array.length t.data then begin
    let bigger = Array.make (2 * t.size) 0. in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.dirty <- true

let count t = t.size

let mean t =
  if t.size = 0 then invalid_arg "Sample_set.mean: empty";
  let acc = ref 0. in
  for i = 0 to t.size - 1 do
    acc := !acc +. t.data.(i)
  done;
  !acc /. float_of_int t.size

let ensure_sorted t =
  if t.dirty then begin
    let live = Array.sub t.data 0 t.size in
    Array.sort Float.compare live;
    Array.blit live 0 t.data 0 t.size;
    t.dirty <- false
  end

let sorted t =
  ensure_sorted t;
  Array.sub t.data 0 t.size

let quantile t q =
  if t.size = 0 then invalid_arg "Sample_set.quantile: empty";
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Sample_set.quantile: q outside [0, 1]";
  ensure_sorted t;
  let h = q *. float_of_int (t.size - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = Int.min (lo + 1) (t.size - 1) in
  let frac = h -. float_of_int lo in
  ((1. -. frac) *. t.data.(lo)) +. (frac *. t.data.(hi))

let median t = quantile t 0.5

(* Exact integral of the type-7 piecewise-linear quantile function over
   [q, 1], divided by the tail mass. In index space (h = q * (n - 1)) the
   interpolant is linear between consecutive order statistics, so the
   integral is a partial trapezoid from h to the next knot plus full
   trapezoids to the top; consistency with [quantile] is by construction
   (cvar t q >= quantile t q, equality on one-point tails). *)
let cvar t q =
  if t.size = 0 then invalid_arg "Sample_set.cvar: empty";
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Sample_set.cvar: q outside [0, 1]";
  ensure_sorted t;
  if q = 1. || t.size = 1 then t.data.(t.size - 1)
  else begin
    let n1 = float_of_int (t.size - 1) in
    let h = q *. n1 in
    let lo = int_of_float (Float.floor h) in
    let frac = h -. float_of_int lo in
    let qv = ((1. -. frac) *. t.data.(lo)) +. (frac *. t.data.(lo + 1)) in
    let integral = ref ((float_of_int (lo + 1) -. h) *. (qv +. t.data.(lo + 1)) /. 2.) in
    for i = lo + 1 to t.size - 2 do
      integral := !integral +. ((t.data.(i) +. t.data.(i + 1)) /. 2.)
    done;
    !integral /. (n1 -. h)
  end

let to_stats t =
  let s = Stats.create () in
  for i = 0 to t.size - 1 do
    Stats.add s t.data.(i)
  done;
  s
