(** Cooperative cancellation tokens for long-running searches.

    A token is shared between the party that may abort a computation (the
    serving layer's per-request watchdog, a test harness) and the
    computation itself, which polls {!check} at its existing budget poll
    points. Polling {!never} is a single pattern match, so solver entry
    points take a [?cancel] defaulting to it at no cost to batch callers.

    Cancellation is abort-only: a poll either raises {!Cancelled} or
    leaves the computation untouched, so any run that completes produces
    bytes identical to an uncancellable run — the serving layer's
    byte-identity contract survives the watchdog. *)

exception Cancelled

type t

val never : t
(** The token that never cancels; polling it costs one pattern match. *)

val create : ?budget:float -> unit -> t
(** A fresh token. With [~budget:s] (seconds, must be positive and
    finite) the token self-cancels once [s] seconds of wall clock have
    elapsed from creation; expiry is detected lazily at poll time and
    latched, there is no watchdog thread. Without [budget] the token only
    cancels via {!cancel}. *)

val cancel : t -> unit
(** Request cancellation. Idempotent; a no-op on {!never}. *)

val cancelled : t -> bool
(** Has the token been cancelled (explicitly or by budget expiry)? *)

val check : t -> unit
(** Raise {!Cancelled} if {!cancelled} holds, else return. *)
