(* Cooperative cancellation token.

   A token is either [never] (polling it is a single pattern match — the
   default for every solver entry point, so unarmed paths pay nothing) or a
   shared atomic flag with an optional wall-clock expiry. Long-running
   searches poll [check] at their existing budget poll points; the serving
   layer arms one token per compute request and maps the {!Cancelled}
   escape to a structured [timeout] response.

   Cancellation only ever *aborts* — a poll point either raises or leaves
   the computation untouched — so a run that finishes without tripping a
   poll returns bytes identical to an uncancellable run. That is what lets
   the watchdog coexist with the serving layer's byte-identity contract. *)

exception Cancelled

type t =
  | Never
  | Token of { flag : bool Atomic.t; expires_at : float (* +inf = none *) }

let never = Never

let create ?budget () =
  let expires_at =
    match budget with
    | None -> Float.infinity
    | Some s ->
        if not (s > 0. && Float.is_finite s) then
          invalid_arg "Cancel.create: budget must be positive and finite";
        Unix.gettimeofday () +. s
  in
  Token { flag = Atomic.make false; expires_at }

let cancel = function Never -> () | Token { flag; _ } -> Atomic.set flag true

let cancelled = function
  | Never -> false
  | Token { flag; expires_at } ->
      Atomic.get flag
      || (expires_at < Float.infinity
          && Unix.gettimeofday () > expires_at
          && begin
               (* latch: later polls skip the clock read *)
               Atomic.set flag true;
               true
             end)

let check t = if cancelled t then raise Cancelled
