(** Minimal fork-join helper over OCaml 5 domains.

    Callers split deterministic work into per-domain slices (each slice
    deriving its own RNG stream or engine state from the slice index), so
    results are independent of the parallelism degree; this module only
    owns the spawn/join choreography. Used by {!Wfc_simulator.Monte_carlo}
    and by [Wfc_core.Eval_engine.batch_evaluate]. *)

val default_domains : unit -> int
(** [recommended_domain_count () - 1] (one domain is the caller), at
    least 1. *)

val chunks : total:int -> domains:int -> (int * int) array
(** [chunks ~total ~domains] splits [0..total-1] into at most [domains]
    contiguous [(start, length)] slices whose lengths differ by at most
    one. Returns fewer slices when [total < domains]; slices are never
    empty unless [total = 0].

    @raise Invalid_argument if [total < 0] or [domains <= 0]. *)

val run : domains:int -> (int -> 'a) -> 'a list
(** [run ~domains worker] evaluates [worker i] for [i = 0..domains-1],
    slice 0 on the calling domain and the rest on spawned domains, and
    returns the results in slice order.

    @raise Invalid_argument if [domains <= 0]. *)

val self_schedule :
  domains:int -> total:int -> (worker:int -> int -> unit) -> int
(** [self_schedule ~domains ~total f] runs [f ~worker i] for every item
    [i = 0..total-1], handed out through a shared atomic cursor: idle
    workers steal items their static round-robin owner has not reached,
    so unbalanced item costs never serialize the pool. Returns the number
    of items processed by a worker other than [i mod domains] (the steal
    count). With [domains = 1] items run sequentially in order on the
    calling domain.

    @raise Invalid_argument if [domains <= 0] or [total < 0]. *)
