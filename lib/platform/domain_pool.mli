(** Minimal fork-join helper over OCaml 5 domains.

    Callers split deterministic work into per-domain slices (each slice
    deriving its own RNG stream or engine state from the slice index), so
    results are independent of the parallelism degree; this module only
    owns the spawn/join choreography. Used by {!Wfc_simulator.Monte_carlo}
    and by [Wfc_core.Eval_engine.batch_evaluate]. *)

val default_domains : unit -> int
(** [recommended_domain_count () - 1] (one domain is the caller), at
    least 1. *)

val chunks : total:int -> domains:int -> (int * int) array
(** [chunks ~total ~domains] splits [0..total-1] into at most [domains]
    contiguous [(start, length)] slices whose lengths differ by at most
    one. Returns fewer slices when [total < domains]; slices are never
    empty unless [total = 0].

    @raise Invalid_argument if [total < 0] or [domains <= 0]. *)

val run : domains:int -> (int -> 'a) -> 'a list
(** [run ~domains worker] evaluates [worker i] for [i = 0..domains-1],
    slice 0 on the calling domain and the rest on spawned domains, and
    returns the results in slice order.

    @raise Invalid_argument if [domains <= 0]. *)

(** Persistent bounded worker pool — the compute side of the serving
    daemon. Unlike {!run} (fork-join, joined per call), a [Pool.t] keeps its
    worker domains alive across submissions and bounds the number of
    {e outstanding} jobs (queued plus running): {!Pool.try_submit} refuses
    work beyond the bound instead of queueing unboundedly, which is the
    admission-control contract the server turns into structured [busy]
    responses. *)
module Pool : sig
  type t

  val create : workers:int -> depth:int -> t
  (** [create ~workers ~depth] spawns [workers] domains that sleep on a
      shared queue. At most [depth] jobs may be outstanding at once.

      @raise Invalid_argument if [workers <= 0] or [depth <= 0]. *)

  val try_submit : t -> (unit -> unit) -> bool
  (** [try_submit t job] enqueues [job] and returns [true], or returns
      [false] without enqueueing when [depth] jobs are already outstanding
      (or the pool is shutting down). A job counts as outstanding from
      admission until it finishes running — even if it raises. An
      exception escaping [job] crashes that worker; the pool supervisor
      immediately restarts it (counted by {!restarts}), so the pool never
      loses capacity and never takes the owner down. *)

  val outstanding : t -> int
  (** Jobs admitted and not yet finished (queued + running). *)

  val depth : t -> int
  (** The admission bound. *)

  val restarts : t -> int
  (** Number of worker crashes survived: how many times a worker died on
      an escaped job exception and was restarted by the supervisor. 0 in
      a healthy pool. *)

  val shutdown : ?drain:bool -> t -> unit
  (** Stop accepting work and join every worker. With [drain] (default
      [true]) queued jobs run to completion first; with [~drain:false]
      queued jobs are dropped. Blocks until all workers exit; running jobs
      are never interrupted. *)
end

val self_schedule :
  domains:int -> total:int -> (worker:int -> int -> unit) -> int
(** [self_schedule ~domains ~total f] runs [f ~worker i] for every item
    [i = 0..total-1], handed out through a shared atomic cursor: idle
    workers steal items their static round-robin owner has not reached,
    so unbalanced item costs never serialize the pool. Returns the number
    of items processed by a worker other than [i mod domains] (the steal
    count). With [domains = 1] items run sequentially in order on the
    calling domain.

    @raise Invalid_argument if [domains <= 0] or [total < 0]. *)
