type t =
  | Exponential of float
  | Weibull of { shape : float; scale : float }
  | Constant of float
  | Hyperexponential of { p : float; rate1 : float; rate2 : float }

let exponential ~rate =
  if not (rate > 0. && Float.is_finite rate) then
    invalid_arg "Distribution.exponential: rate must be positive";
  Exponential rate

let weibull ~shape ~scale =
  if not (shape > 0. && Float.is_finite shape) then
    invalid_arg "Distribution.weibull: shape must be positive";
  if not (scale > 0. && Float.is_finite scale) then
    invalid_arg "Distribution.weibull: scale must be positive";
  Weibull { shape; scale }

let weibull_of_mean ~shape ~mean =
  if not (mean > 0.) then
    invalid_arg "Distribution.weibull_of_mean: mean must be positive";
  let scale = mean /. Special_functions.gamma (1. +. (1. /. shape)) in
  weibull ~shape ~scale

let constant c =
  if not (c >= 0. && Float.is_finite c) then
    invalid_arg "Distribution.constant: value must be non-negative and finite";
  Constant c

let hyperexponential ~p ~rate1 ~rate2 =
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Distribution.hyperexponential: p must be in [0, 1]";
  if not (rate1 > 0. && Float.is_finite rate1 && rate2 > 0. && Float.is_finite rate2)
  then invalid_arg "Distribution.hyperexponential: rates must be positive";
  Hyperexponential { p; rate1; rate2 }

let mean = function
  | Exponential rate -> 1. /. rate
  | Weibull { shape; scale } ->
      scale *. Special_functions.gamma (1. +. (1. /. shape))
  | Constant c -> c
  | Hyperexponential { p; rate1; rate2 } ->
      (p /. rate1) +. ((1. -. p) /. rate2)

(* -log (1 - u) is a unit exponential draw; u in [0,1) keeps the log finite *)
let unit_exponential rng = -.Float.log (1. -. Rng.uniform rng)

let sample t rng =
  match t with
  | Exponential rate -> unit_exponential rng /. rate
  | Weibull { shape; scale } -> scale *. (unit_exponential rng ** (1. /. shape))
  | Constant c -> c (* degenerate: consumes no randomness *)
  | Hyperexponential { p; rate1; rate2 } ->
      let rate = if Rng.uniform rng < p then rate1 else rate2 in
      unit_exponential rng /. rate

let survival t x =
  match t with
  | Constant c -> if x < c then 1. else 0.
  | _ when x <= 0. -> 1.
  | Exponential rate -> Float.exp (-.rate *. x)
  | Weibull { shape; scale } -> Float.exp (-.((x /. scale) ** shape))
  | Hyperexponential { p; rate1; rate2 } ->
      (p *. Float.exp (-.rate1 *. x)) +. ((1. -. p) *. Float.exp (-.rate2 *. x))

let name = function
  | Exponential rate -> Printf.sprintf "exp(%g)" rate
  | Weibull { shape; scale } -> Printf.sprintf "weibull(k=%g,s=%g)" shape scale
  | Constant c -> Printf.sprintf "const(%g)" c
  | Hyperexponential { p; rate1; rate2 } ->
      Printf.sprintf "hyperexp(p=%g,r1=%g,r2=%g)" p rate1 rate2
