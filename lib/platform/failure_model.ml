type t = { lambda : float; downtime : float }

let make ~lambda ?(downtime = 0.) () =
  if not (Float.is_finite lambda && lambda >= 0.) then
    invalid_arg "Failure_model.make: lambda must be finite and non-negative";
  if not (Float.is_finite downtime && downtime >= 0.) then
    invalid_arg "Failure_model.make: downtime must be finite and non-negative";
  { lambda; downtime }

let of_mtbf ~mtbf ?downtime () =
  if not (Float.is_finite mtbf && mtbf > 0.) then
    invalid_arg "Failure_model.of_mtbf: mtbf must be positive and finite";
  make ~lambda:(1. /. mtbf) ?downtime ()

let of_platform ~processors ~proc_mtbf ?downtime () =
  if processors <= 0 then
    invalid_arg "Failure_model.of_platform: processors must be positive";
  if not (Float.is_finite proc_mtbf && proc_mtbf > 0.) then
    invalid_arg "Failure_model.of_platform: proc_mtbf must be positive";
  make ~lambda:(float_of_int processors /. proc_mtbf) ?downtime ()

let fail_free = { lambda = 0.; downtime = 0. }
let mtbf m = if m.lambda = 0. then infinity else 1. /. m.lambda

let check_amount name x =
  if Float.is_nan x || x < 0. then
    invalid_arg (Printf.sprintf "Failure_model.%s: negative or NaN argument" name)

(* expm1 keeps precision when lambda * (w + c) is tiny, which is the common
   regime (task weights far below the MTBF). *)
let expected_exec_time m ~work ~checkpoint ~recovery =
  check_amount "expected_exec_time" work;
  check_amount "expected_exec_time" checkpoint;
  check_amount "expected_exec_time" recovery;
  if m.lambda = 0. then work +. checkpoint
  else
    Float.exp (m.lambda *. recovery)
    *. ((1. /. m.lambda) +. m.downtime)
    *. Float.expm1 (m.lambda *. (work +. checkpoint))

let expected_time_lost m ~work =
  check_amount "expected_time_lost" work;
  if m.lambda = 0. then
    invalid_arg "Failure_model.expected_time_lost: lambda is zero";
  if work = 0. then 0.
  else (1. /. m.lambda) -. (work /. Float.expm1 (m.lambda *. work))

let success_probability m ~work =
  check_amount "success_probability" work;
  Float.exp (-.m.lambda *. work)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* The two expm1 transforms every Theorem 3 fault row needs, batched over a
   contiguous span so the transcendental calls run back-to-back instead of
   interleaving with matrix walks. Takes the model (not a bare float) so the
   non-flambda native compiler passes one pointer and no caller ever boxes
   lambda: the span fill is allocation-free. *)
(* The explicit [vec] annotations matter: they pin the bigarray kind inside
   this compilation unit, so the accesses compile to specialized unboxed
   float64 loads/stores rather than the generic (boxing) path. *)
let expm1_span m ~(lost : vec) ~(u : vec) ~(x : vec) ~lo ~len =
  let dim = Bigarray.Array1.dim lost in
  if lo < 0 || len < 0 || lo + len > dim then
    invalid_arg "Failure_model.expm1_span: span out of range";
  if Bigarray.Array1.dim u < lo + len || Bigarray.Array1.dim x < lo + len then
    invalid_arg "Failure_model.expm1_span: output spans too short";
  let lambda = m.lambda in
  for j = lo to lo + len - 1 do
    let l = Bigarray.Array1.unsafe_get lost j in
    Bigarray.Array1.unsafe_set u j (Float.expm1 (-.lambda *. l));
    Bigarray.Array1.unsafe_set x j (Float.expm1 (lambda *. l))
  done

let pp ppf m =
  if m.lambda = 0. then Format.fprintf ppf "failure-free platform"
  else
    Format.fprintf ppf "platform: lambda=%g (MTBF %g s), downtime %g s"
      m.lambda (mtbf m) m.downtime
