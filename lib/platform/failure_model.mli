(** Exponential failure model of the platform (Section 3 of the paper).

    The [p] processors each fail independently with exponentially distributed
    inter-arrival times of rate [lambda_proc]; since every task runs on all
    processors, the platform behaves as a single macro-processor of rate
    [lambda = p * lambda_proc]. After each failure the platform is unavailable
    for a constant downtime [d] before execution can resume. *)

type t = private {
  lambda : float;  (** macro-processor failure rate (1 / MTBF), >= 0 *)
  downtime : float;  (** constant downtime [D] after each failure, >= 0 *)
}

val make : lambda:float -> ?downtime:float -> unit -> t
(** [make ~lambda ()] builds a failure model. [downtime] defaults to [0.].

    @raise Invalid_argument if [lambda < 0], [downtime < 0] or either is not
    finite. *)

val of_mtbf : mtbf:float -> ?downtime:float -> unit -> t
(** [of_mtbf ~mtbf ()] is [make ~lambda:(1. /. mtbf) ()].

    @raise Invalid_argument if [mtbf <= 0]. *)

val of_platform :
  processors:int -> proc_mtbf:float -> ?downtime:float -> unit -> t
(** [of_platform ~processors:p ~proc_mtbf ()] is the macro-processor model
    with [lambda = p /. proc_mtbf]: the MTBF of the whole platform is
    [proc_mtbf /. p].

    @raise Invalid_argument if [processors <= 0] or [proc_mtbf <= 0]. *)

val fail_free : t
(** The model with [lambda = 0]: no failures ever occur. *)

val mtbf : t -> float
(** [mtbf m] is [1 /. m.lambda] ([infinity] when [lambda = 0]). *)

val expected_exec_time : t -> work:float -> checkpoint:float -> recovery:float -> float
(** [expected_exec_time m ~work:w ~checkpoint:c ~recovery:r] is Equation (1)
    of the paper:
    [E\[t(w; c; r)\] = e^{lambda r} (1/lambda + D) (e^{lambda (w+c)} - 1)],
    the expected time to complete [w] seconds of work followed by a
    checkpoint of [c] seconds when every retry after a failure is preceded by
    a recovery of [r] seconds. Failures may strike during work, checkpoint
    and recovery alike. For [lambda = 0] this is exactly [w +. c].

    The result may be [infinity] when [lambda *. (w +. c)] is so large that
    the expectation overflows; callers compare such schedules as "worse than
    everything finite".

    @raise Invalid_argument on negative or NaN arguments. *)

val expected_time_lost : t -> work:float -> float
(** [expected_time_lost m ~work:w] is [E\[tlost(w)\] = 1/lambda - w /
    (e^{lambda w} - 1)], the expected time elapsed before the failure given
    that a failure strikes within an execution of [w] seconds.

    @raise Invalid_argument if [lambda = 0] (the event has probability 0). *)

val success_probability : t -> work:float -> float
(** [success_probability m ~work:w] is [e^{-lambda w}], the probability that
    [w] seconds of execution complete without failure. *)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Contiguous float64 buffer, the storage of the flat evaluation kernel. *)

val expm1_span : t -> lost:vec -> u:vec -> x:vec -> lo:int -> len:int -> unit
(** [expm1_span m ~lost ~u ~x ~lo ~len] fills, for [j] in
    [\[lo, lo + len)], [u.(j) = expm1 (-lambda * lost.(j))] and
    [x.(j) = expm1 (lambda * lost.(j))] — the survival and expectation
    transforms of a replay value, batched row-wise. Allocation-free.

    @raise Invalid_argument if the span exceeds any buffer. *)

val pp : Format.formatter -> t -> unit
