(** Failure inter-arrival distributions.

    The paper's theory is exact for exponential failures; its related work
    (Weibull fits of production logs, e.g. Gelenbe & Hernández 1990) motivates
    checking how exponential-optimal schedules behave under age-dependent
    failure processes. Failures form a renewal process: after each repair the
    inter-arrival clock restarts with a fresh draw. *)

type t =
  | Exponential of float  (** rate [lambda > 0] *)
  | Weibull of { shape : float; scale : float }
      (** hazard increasing for [shape > 1], infant-mortality for
          [shape < 1]; [shape = 1] is [Exponential (1 /. scale)] *)
  | Constant of float
      (** degenerate: always the same value; sampling consumes no
          randomness, so it models the paper's constant downtime [D]
          without perturbing the RNG stream *)
  | Hyperexponential of { p : float; rate1 : float; rate2 : float }
      (** mixture of two exponentials: with probability [p] the gap is
          [Exp(rate1)], else [Exp(rate2)]. With [rate1 >> rate2] this is the
          classic bursty renewal process — clusters of short gaps separated
          by long quiet stretches — at coefficient of variation [> 1] *)

val exponential : rate:float -> t
(** @raise Invalid_argument if [rate <= 0]. *)

val weibull : shape:float -> scale:float -> t
(** @raise Invalid_argument if either parameter is non-positive. *)

val weibull_of_mean : shape:float -> mean:float -> t
(** The Weibull with the given shape and mean: [scale = mean /.
    Gamma (1. +. 1. /. shape)]. Handy for comparing distributions at equal
    MTBF. *)

val constant : float -> t
(** @raise Invalid_argument if the value is negative or not finite. *)

val hyperexponential : p:float -> rate1:float -> rate2:float -> t
(** @raise Invalid_argument if [p] is outside [\[0, 1\]] or either rate is
    non-positive. *)

val mean : t -> float
(** Expected inter-arrival time (the MTBF). *)

val sample : t -> Rng.t -> float
(** One inter-arrival draw (inverse-CDF). *)

val survival : t -> float -> float
(** [survival d t] is [P(X > t)]. *)

val name : t -> string
(** e.g. ["exp(0.001)"] or ["weibull(k=0.7,s=1354)"]. *)
