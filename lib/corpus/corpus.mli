(** Corpus-scale golden sweeps over real workflow files.

    The figure harness measures the paper's heuristics on generated Pegasus
    workflows; this rig points the same machinery at a {e directory} of
    workflow files in the wild — Pegasus DAX, WfCommons instances, native
    JSON, all ingested through {!Wfc_io.Workflow_io} — and sweeps every
    instance across a grid of failure scenarios and heuristics, in parallel
    over {!Wfc_platform.Domain_pool}.

    Everything is analytic (Theorem 3 expectations, no simulation), so a
    sweep is a pure function of the corpus and the configuration: results
    are byte-identical across runs, across evaluation backends and across
    domain counts. That determinism is what makes the committed mini-corpus
    under [test/corpus/] a golden regression suite: re-run the sweep, diff
    the tables byte for byte. *)

type instance = {
  path : string;  (** where the file was read from *)
  name : string;  (** basename, the key used in tables and reports *)
  format : Wfc_io.Workflow_io.format;
  dag : Wfc_dag.Dag.t;
}

val load_paths :
  ?cost:Wfc_workflows.Cost_model.t ->
  string list ->
  instance list * (string * string) list
(** Load each path through {!Wfc_io.Workflow_io.load_with_format}. Files
    that fail to decode are returned as [(path, message)] in the second
    component (and counted on the [corpus.load_errors] counter) — a corpus
    sweep never dies on one bad file. With [cost], uncosted DAGs (raw
    runtimes only, see {!Wfc_workflows.Cost_model.is_costed}) get their
    checkpoint/recovery costs filled in; files that already carry costs are
    kept as-is. *)

val load_dir :
  ?cost:Wfc_workflows.Cost_model.t ->
  string ->
  (instance list * (string * string) list, string) result
(** Scan a directory (sorted entry order) for
    {!Wfc_io.Workflow_io.is_workflow_file} names and {!load_paths} them.
    [Error] only when the directory itself cannot be read. *)

(** A failure scenario pins the platform model for one instance. *)
type scenario =
  | Relative of float
      (** MTBF as a multiple of the instance's total weight [W] — the
          paper's MTBF/W axis, meaningful across instances of wildly
          different scale. [Relative 0.1] means a failure every tenth of
          the failure-free makespan. *)
  | Law of Wfc_platform.Distribution.t
      (** An absolute inter-arrival law (the [--failures] grammar); the
          analytic model uses its mean as the MTBF. *)

val scenario_name : scenario -> string
(** ["mtbf=0.1W"] or the distribution's name. *)

val scenario_mtbf : scenario -> Wfc_dag.Dag.t -> float
(** The MTBF the scenario induces for this instance; always positive (a
    zero-total-weight instance falls back to the bare ratio). *)

val scenario_model :
  ?downtime:float -> scenario -> Wfc_dag.Dag.t -> Wfc_platform.Failure_model.t

val default_scenarios : scenario list
(** [[Relative 0.1; Relative 1.; Relative 10.]]. *)

type config = {
  scenarios : scenario list;
  heuristics :
    (Wfc_dag.Linearize.strategy * Wfc_core.Heuristics.ckpt_strategy) list;
      (** table columns, in order *)
  search : Wfc_core.Heuristics.search;
  backend : Wfc_core.Eval_engine.backend;
  replication : Wfc_core.Replication.spec;
  replica_cost : float;  (** surcharge per extra replica *)
  downtime : float;
  exact_budget : int;
      (** branch-and-bound node budget for the {!Wfc_resilience.Solver_driver}
          column; [0] disables it *)
  exact_deadline : float option;
      (** optional wall-clock cap per exact attempt. [None] (the default)
          keeps the sweep deterministic; a deadline trades that for bounded
          latency, so golden runs must leave it unset *)
  exact_max_n : int;
      (** instances larger than this skip the exact column *)
  domains : int;  (** parallelism of the sweep; never affects results *)
  seed : int;  (** seeds the RF linearization, per job *)
}

val default_config : config
(** Default scenarios, the paper's six checkpoint strategies under DF,
    [Grid 16] search, incremental backend, no replication, no downtime,
    [exact_budget = 0], [exact_max_n = 24], one domain, seed 42. *)

type cell = {
  heuristic : string;
  ratio : float;  (** expected makespan over [T_inf] (Figures 2–7's axis) *)
  n_ckpt : int;
}

type row = {
  workflow : string;
  wf_format : string;
  n : int;
  n_edges : int;
  total_weight : float;
  scenario : string;
  mtbf : float;
  cells : cell list;  (** one per configured heuristic, in order *)
  best : string;  (** heuristic with the lowest ratio (ties: first) *)
  best_ratio : float;
  exact : (string * float) option;
      (** solver-driver tier name and ratio, when enabled *)
}

type report = {
  rows : row list;  (** instance-major, scenario-minor order *)
  skipped : (string * string) list;
  scenario_names : string list;
  heuristic_names : string list;
  backend_name : string;
}

val sweep :
  ?config:config ->
  ?skipped:(string * string) list ->
  instance list ->
  report
(** Evaluate every instance under every scenario. Jobs are distributed over
    [config.domains] with {!Wfc_platform.Domain_pool} in deterministic
    chunks; each job derives its own RF stream from [seed] and the job
    index, so the report is independent of the domain count. [skipped] is
    carried into the report verbatim. *)

val tables : report -> (string * Wfc_reporting.Table.t) list
(** One Figure-style table per scenario: a row per instance, a ratio column
    per heuristic, plus the winner and the exact column when present. *)

val print_report : report -> unit
(** Skipped-file warnings, then every table. *)

val to_json : report -> Wfc_io.Json.t
(** Deterministic JSON encoding of the full report (non-finite ratios are
    encoded as strings to stay valid JSON). *)
