module Dag = Wfc_dag.Dag
module Linearize = Wfc_dag.Linearize
module Dist = Wfc_platform.Distribution
module FM = Wfc_platform.Failure_model
module Heuristics = Wfc_core.Heuristics
module Metrics = Wfc_obs.Metrics
module Table = Wfc_reporting.Table

type instance = {
  path : string;
  name : string;
  format : Wfc_io.Workflow_io.format;
  dag : Dag.t;
}

(* ---- ingestion ---- *)

let load_paths ?cost paths =
  let loaded = Metrics.counter "corpus.instances" in
  let errors = Metrics.counter "corpus.load_errors" in
  let instances, skipped =
    List.fold_left
      (fun (instances, skipped) path ->
        match Wfc_io.Workflow_io.load_with_format path with
        | Error msg ->
            Metrics.incr errors;
            (instances, (path, msg) :: skipped)
        | Ok (format, dag) ->
            Metrics.incr loaded;
            let dag =
              match cost with
              | None -> dag
              | Some c -> Wfc_workflows.Cost_model.ensure c dag
            in
            ( { path; name = Filename.basename path; format; dag } :: instances,
              skipped ))
      ([], []) paths
  in
  (List.rev instances, List.rev skipped)

let load_dir ?cost dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | entries ->
      Array.sort compare entries;
      let paths =
        Array.to_list entries
        |> List.filter Wfc_io.Workflow_io.is_workflow_file
        |> List.map (Filename.concat dir)
      in
      Ok (load_paths ?cost paths)

(* ---- scenarios ---- *)

type scenario = Relative of float | Law of Dist.t

let scenario_name = function
  | Relative r -> Printf.sprintf "mtbf=%gW" r
  | Law d -> Dist.name d

let scenario_mtbf s g =
  match s with
  | Relative r ->
      let w = Dag.total_weight g in
      if w > 0. then r *. w else r
  | Law d -> Dist.mean d

let scenario_model ?downtime s g =
  FM.of_mtbf ~mtbf:(scenario_mtbf s g) ?downtime ()

let default_scenarios = [ Relative 0.1; Relative 1.; Relative 10. ]

(* ---- configuration ---- *)

type config = {
  scenarios : scenario list;
  heuristics : (Linearize.strategy * Heuristics.ckpt_strategy) list;
  search : Heuristics.search;
  backend : Wfc_core.Eval_engine.backend;
  replication : Wfc_core.Replication.spec;
  replica_cost : float;
  downtime : float;
  exact_budget : int;
  exact_deadline : float option;
  exact_max_n : int;
  domains : int;
  seed : int;
}

let default_config =
  {
    scenarios = default_scenarios;
    heuristics =
      List.map
        (fun ckpt -> (Linearize.Depth_first, ckpt))
        Heuristics.all_ckpt_strategies;
    search = Heuristics.Grid 16;
    backend = Wfc_core.Eval_engine.Incremental;
    replication = Wfc_core.Replication.No_replication;
    replica_cost = Wfc_core.Replication.default_cost;
    downtime = 0.;
    exact_budget = 0;
    exact_deadline = None;
    exact_max_n = 24;
    domains = 1;
    seed = 42;
  }

(* ---- sweep ---- *)

type cell = { heuristic : string; ratio : float; n_ckpt : int }

type row = {
  workflow : string;
  wf_format : string;
  n : int;
  n_edges : int;
  total_weight : float;
  scenario : string;
  mtbf : float;
  cells : cell list;
  best : string;
  best_ratio : float;
  exact : (string * float) option;
}

type report = {
  rows : row list;
  skipped : (string * string) list;
  scenario_names : string list;
  heuristic_names : string list;
  backend_name : string;
}

(* mirror of Evaluator.ratio's zero-weight convention *)
let ratio_of ~tinf m = if tinf > 0. then m /. tinf else if m = 0. then 1. else infinity

let job config instances scenarios k =
  let n_scen = Array.length scenarios in
  let inst = instances.(k / n_scen) in
  let scen = scenarios.(k mod n_scen) in
  let g = inst.dag in
  let model = scenario_model ~downtime:config.downtime scen g in
  let tinf = Wfc_core.Evaluator.fail_free_time g in
  (* each job owns its RF stream, derived from the job index: results do not
     depend on which domain runs the job *)
  let rng = Wfc_platform.Rng.create (config.seed + (7919 * k)) in
  let rand b = Wfc_platform.Rng.int rng b in
  let evals = Metrics.counter "corpus.evaluations" in
  let cells =
    List.map
      (fun (lin, ckpt) ->
        let o =
          Heuristics.run_replicated ~search:config.search
            ~backend:config.backend ~rand ~cost:config.replica_cost
            config.replication model g ~lin ~ckpt
        in
        Metrics.add evals o.Heuristics.evaluations;
        {
          heuristic = Heuristics.name lin ckpt;
          ratio = ratio_of ~tinf o.Heuristics.makespan;
          n_ckpt = o.Heuristics.n_ckpt;
        })
      config.heuristics
  in
  let best, best_ratio =
    List.fold_left
      (fun (bn, br) c -> if c.ratio < br then (c.heuristic, c.ratio) else (bn, br))
      ("-", infinity) cells
  in
  let exact =
    if config.exact_budget <= 0 || Dag.n_tasks g > config.exact_max_n then None
    else begin
      let order = Linearize.run Linearize.Depth_first g in
      let dconf =
        {
          Wfc_resilience.Solver_driver.default_config with
          max_nodes = config.exact_budget;
          deadline = config.exact_deadline;
          search = config.search;
          backend = config.backend;
        }
      in
      let r = Wfc_resilience.Solver_driver.solve ~config:dconf model g ~order in
      Some
        ( Wfc_resilience.Solver_driver.tier_name
            r.Wfc_resilience.Solver_driver.tier,
          ratio_of ~tinf r.Wfc_resilience.Solver_driver.makespan )
    end
  in
  Metrics.incr (Metrics.counter "corpus.jobs");
  {
    workflow = inst.name;
    wf_format = Wfc_io.Workflow_io.format_name inst.format;
    n = Dag.n_tasks g;
    n_edges = Dag.n_edges g;
    total_weight = Dag.total_weight g;
    scenario = scenario_name scen;
    mtbf = scenario_mtbf scen g;
    cells;
    best;
    best_ratio;
    exact;
  }

let sweep ?(config = default_config) ?(skipped = []) instances =
  let instances = Array.of_list instances in
  let scenarios = Array.of_list config.scenarios in
  let total = Array.length instances * Array.length scenarios in
  let rows =
    if total = 0 then []
    else begin
      let chunks =
        Wfc_platform.Domain_pool.chunks ~total ~domains:(max 1 config.domains)
      in
      Wfc_platform.Domain_pool.run ~domains:(Array.length chunks) (fun i ->
          let start, len = chunks.(i) in
          List.init len (fun j -> job config instances scenarios (start + j)))
      |> List.concat
    end
  in
  {
    rows;
    skipped;
    scenario_names = List.map scenario_name config.scenarios;
    heuristic_names =
      List.map (fun (l, c) -> Heuristics.name l c) config.heuristics;
    backend_name = Wfc_core.Eval_engine.backend_name config.backend;
  }

(* ---- rendering ---- *)

let ratio_text x = Printf.sprintf "%.4f" x

let tables report =
  let has_exact = List.exists (fun r -> r.exact <> None) report.rows in
  List.map
    (fun scen ->
      let columns =
        [ "workflow"; "fmt"; "n" ]
        @ report.heuristic_names
        @ [ "best" ]
        @ (if has_exact then [ "exact" ] else [])
      in
      let t = Table.create ~columns in
      List.iter
        (fun r ->
          if r.scenario = scen then
            Table.add_row t
              ([ r.workflow; r.wf_format; string_of_int r.n ]
              @ List.map (fun c -> ratio_text c.ratio) r.cells
              @ [ r.best ]
              @
              match (has_exact, r.exact) with
              | false, _ -> []
              | true, None -> [ "-" ]
              | true, Some (tier, ratio) ->
                  [ Printf.sprintf "%s %s" tier (ratio_text ratio) ]))
        report.rows;
      (scen, t))
    report.scenario_names

let print_report report =
  List.iter
    (fun (path, msg) -> Printf.printf "skipped %s: %s\n" path msg)
    report.skipped;
  List.iteri
    (fun i (scen, t) ->
      if i > 0 then print_newline ();
      Printf.printf "scenario %s (backend %s)\n" scen report.backend_name;
      Table.print t)
    (tables report)

let json_ratio x =
  if Float.is_finite x then Wfc_io.Json.Number x
  else Wfc_io.Json.String (Printf.sprintf "%h" x)

let to_json report =
  let open Wfc_io.Json in
  let strings l = List (Stdlib.List.map (fun s -> String s) l) in
  let cell c =
    Assoc
      [
        ("heuristic", String c.heuristic);
        ("ratio", json_ratio c.ratio);
        ("n_ckpt", Number (float_of_int c.n_ckpt));
      ]
  in
  let row r =
    Assoc
      [
        ("workflow", String r.workflow);
        ("format", String r.wf_format);
        ("n", Number (float_of_int r.n));
        ("edges", Number (float_of_int r.n_edges));
        ("total_weight", Number r.total_weight);
        ("scenario", String r.scenario);
        ("mtbf", Number r.mtbf);
        ("cells", List (Stdlib.List.map cell r.cells));
        ("best", String r.best);
        ("best_ratio", json_ratio r.best_ratio);
        ( "exact",
          match r.exact with
          | None -> Null
          | Some (tier, ratio) ->
              Assoc [ ("tier", String tier); ("ratio", json_ratio ratio) ] );
      ]
  in
  Assoc
    [
      ("schema", String "wfc-corpus/1");
      ("backend", String report.backend_name);
      ("scenarios", strings report.scenario_names);
      ("heuristics", strings report.heuristic_names);
      ( "skipped",
        List
          (Stdlib.List.map
             (fun (p, m) ->
               Assoc [ ("path", String p); ("error", String m) ])
             report.skipped) );
      ("rows", List (Stdlib.List.map row report.rows));
    ]
