module FM = Wfc_platform.Failure_model
module Metrics = Wfc_obs.Metrics
module Trace = Wfc_obs.Trace

let m_runs = Metrics.counter "adaptive.runs"
let m_replans = Metrics.counter "adaptive.replans"
let m_reestimates = Metrics.counter "adaptive.reestimates"
let m_rejected = Metrics.counter "adaptive.plans_kept"
let h_lambda = Metrics.histogram "adaptive.lambda_hat"

(* shared with Sim/Sim_faults through the registry *)
let m_replicas_placed = Metrics.counter "sim.replicas_placed"
let m_replica_saves = Metrics.counter "sim.replica_saves"

type trigger = Every_failure | Every_k of int | On_drift of float

type plan = { order : int array; flags : bool array }

type replan =
  model:FM.t -> order:int array -> flags:bool array -> from:int -> plan option

type config = {
  planning : FM.t;
  trigger : trigger;
  min_observations : int;
  replan : replan option;
}

let default_config planning =
  { planning; trigger = Every_failure; min_observations = 3; replan = None }

type result = {
  run : Sim.run;
  replans : int;
  reestimates : int;
  estimated : FM.t;
  final_order : int array;
  final_flags : bool array;
}

let validate_config c =
  (match c.trigger with
  | Every_failure -> ()
  | Every_k k ->
      if k < 1 then invalid_arg "Sim_adaptive: Every_k needs k >= 1"
  | On_drift f ->
      if not (f > 1.) then invalid_arg "Sim_adaptive: On_drift needs f > 1");
  if c.min_observations < 1 then
    invalid_arg "Sim_adaptive: min_observations must be at least 1"

(* A plan may only touch the not-yet-completed suffix: the executed prefix
   determines what is already on disk, so moving or re-flagging it would
   desynchronize the planner's view from the platform state. *)
let validate_plan g ~order ~flags ~from plan =
  let n = Array.length order in
  if Array.length plan.order <> n || Array.length plan.flags <> n then
    invalid_arg "Sim_adaptive: plan has the wrong size";
  for p = 0 to from - 1 do
    if plan.order.(p) <> order.(p) then
      invalid_arg "Sim_adaptive: plan moves a completed position";
    if plan.flags.(order.(p)) <> flags.(order.(p)) then
      invalid_arg "Sim_adaptive: plan re-flags a completed task"
  done;
  if not (Wfc_dag.Dag.is_linearization g plan.order) then
    invalid_arg "Sim_adaptive: plan order is not a linearization"

let run_plain config ~source g sched =
  Trace.with_span "adaptive.run" @@ fun () ->
  validate_config config;
  let n = Wfc_core.Schedule.n_tasks sched in
  let order = Array.init n (Wfc_core.Schedule.task_at sched) in
  let flags = Array.init n (Wfc_core.Schedule.is_checkpointed sched) in
  let weight v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.weight in
  let ckpt_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost in
  let st = Sim.make_state g ~n in
  let time = ref 0. and failures = ref 0 and wasted = ref 0. in
  (* observations feeding the MLE *)
  let exposure = ref 0. and downtime_sum = ref 0. in
  let replans = ref 0 and reestimates = ref 0 in
  let estimated = ref config.planning in
  (* the rate the current schedule was (re)planned for, for On_drift *)
  let plan_lambda = ref config.planning.FM.lambda in
  let estimate () =
    if !exposure > 0. then begin
      let lambda_hat = float_of_int !failures /. !exposure in
      let downtime_hat = !downtime_sum /. float_of_int !failures in
      incr reestimates;
      if Metrics.enabled () then begin
        Metrics.incr m_reestimates;
        Metrics.observe h_lambda lambda_hat
      end;
      estimated := FM.make ~lambda:lambda_hat ~downtime:downtime_hat ();
      true
    end
    else false
  in
  let should_replan () =
    match config.trigger with
    | Every_failure -> true
    | Every_k k -> !failures mod k = 0
    | On_drift f ->
        let lh = (!estimated).FM.lambda in
        if !plan_lambda = 0. then lh > 0.
        else Float.max (lh /. !plan_lambda) (!plan_lambda /. lh) >= f
  in
  let p = ref 0 in
  while !p < n do
    (* re-read after every attempt: a replan may have changed both *)
    let v = order.(!p) in
    let checkpointing = flags.(v) in
    let replay = Sim.replay_cost st v in
    let segment =
      replay +. weight v +. (if checkpointing then ckpt_cost v else 0.)
    in
    let fail_after = source.Sim.time_to_failure () in
    if fail_after >= segment then begin
      time := !time +. segment;
      wasted := !wasted +. replay;
      source.Sim.consume segment;
      exposure := !exposure +. segment;
      Sim.commit st v ~checkpointing;
      incr p
    end
    else begin
      let downtime = source.Sim.next_downtime () in
      time := !time +. fail_after +. downtime;
      wasted := !wasted +. fail_after +. downtime;
      incr failures;
      exposure := !exposure +. fail_after;
      downtime_sum := !downtime_sum +. downtime;
      Sim.wipe_memory st;
      source.Sim.after_failure ();
      if !failures >= config.min_observations && estimate () then
        match config.replan with
        | None -> ()
        | Some _ when not (should_replan ()) -> ()
        | Some cb -> (
            match
              Trace.with_span "adaptive.replan" (fun () ->
                  cb ~model:!estimated ~order:(Array.copy order)
                    ~flags:(Array.copy flags) ~from:!p)
            with
            | None -> Metrics.incr m_rejected
            | Some plan ->
                validate_plan g ~order ~flags ~from:!p plan;
                Array.blit plan.order 0 order 0 n;
                Array.blit plan.flags 0 flags 0 n;
                plan_lambda := (!estimated).FM.lambda;
                incr replans;
                if Metrics.enabled () then Metrics.incr m_replans;
                Trace.instant "adaptive.replanned"
                  ~args:
                    [
                      ("from", string_of_int !p);
                      ("failures", string_of_int !failures);
                      ( "lambda_hat",
                        Printf.sprintf "%.6g" (!estimated).FM.lambda );
                    ])
    end
  done;
  if Metrics.enabled () then Metrics.incr m_runs;
  let run =
    Sim.record_run
      { Sim.makespan = !time; failures = !failures; wasted = !wasted }
      ~recoveries:(Sim.recoveries st)
  in
  {
    run;
    replans = !replans;
    reestimates = !reestimates;
    estimated = !estimated;
    final_order = order;
    final_flags = flags;
  }

(* Replicated executor: the multi-lane attempt semantics of
   {!Sim.run_with_lanes} with the re-estimation/replan scaffolding on top.
   The MLE sees every lane: exposure accumulates [min (tau_j, segment)] per
   copy and the failure count is per-lane (each copy's death is an observed
   failure of the platform), while triggers, the replan boundary and the
   returned run count {e effective} failures — attempts where every copy
   died. Replica counts are fixed across replans, like the executed
   prefix. *)
let run_replicated ?(extra_lanes = [||]) ?replica_cost config ~source g sched =
  Trace.with_span "adaptive.run" @@ fun () ->
  validate_config config;
  let replica_cost =
    match replica_cost with
    | Some c -> c
    | None -> Wfc_core.Replication.default_cost
  in
  let n = Wfc_core.Schedule.n_tasks sched in
  let max_r = Wfc_core.Schedule.max_replica_count sched in
  let lanes = Array.append [| source |] extra_lanes in
  if Array.length lanes < max_r then
    invalid_arg "Sim_adaptive.run: fewer lanes than replicas";
  let order = Array.init n (Wfc_core.Schedule.task_at sched) in
  let flags = Array.init n (Wfc_core.Schedule.is_checkpointed sched) in
  let weight v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.weight in
  let ckpt_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost in
  let eff_w v =
    Wfc_core.Replication.effective_weight ~cost:replica_cost
      ~weight:(weight v)
      ~r:(Wfc_core.Schedule.replicas_of sched v)
  in
  let st = Sim.make_state g ~n in
  let time = ref 0. and failures = ref 0 and wasted = ref 0. in
  let saves = ref 0 in
  (* observations feeding the MLE, per lane *)
  let lane_failures = ref 0 in
  let exposure = ref 0. and downtime_sum = ref 0. in
  let replans = ref 0 and reestimates = ref 0 in
  let estimated = ref config.planning in
  let plan_lambda = ref config.planning.FM.lambda in
  let estimate () =
    if !exposure > 0. then begin
      let lambda_hat = float_of_int !lane_failures /. !exposure in
      let downtime_hat = !downtime_sum /. float_of_int !lane_failures in
      incr reestimates;
      if Metrics.enabled () then begin
        Metrics.incr m_reestimates;
        Metrics.observe h_lambda lambda_hat
      end;
      estimated := FM.make ~lambda:lambda_hat ~downtime:downtime_hat ();
      true
    end
    else false
  in
  let should_replan () =
    match config.trigger with
    | Every_failure -> true
    | Every_k k -> !failures mod k = 0
    | On_drift f ->
        let lh = (!estimated).FM.lambda in
        if !plan_lambda = 0. then lh > 0.
        else Float.max (lh /. !plan_lambda) (!plan_lambda /. lh) >= f
  in
  let p = ref 0 in
  while !p < n do
    let v = order.(!p) in
    let r = Wfc_core.Schedule.replicas_of sched v in
    let checkpointing = flags.(v) in
    let replay = Sim.replay_cost_weighted st ~weight_of:eff_w v in
    let segment =
      replay +. eff_w v +. (if checkpointing then ckpt_cost v else 0.)
    in
    let survivors = ref 0 and losses = ref 0 in
    let last_death = ref neg_infinity and last_downtime = ref 0. in
    for j = 0 to r - 1 do
      let lane = lanes.(j) in
      let fail_after = lane.Sim.time_to_failure () in
      if fail_after >= segment then begin
        lane.Sim.consume segment;
        exposure := !exposure +. segment;
        incr survivors
      end
      else begin
        let downtime = lane.Sim.next_downtime () in
        incr losses;
        incr lane_failures;
        exposure := !exposure +. fail_after;
        downtime_sum := !downtime_sum +. downtime;
        if fail_after > !last_death then begin
          last_death := fail_after;
          last_downtime := downtime
        end;
        lane.Sim.after_failure ()
      end
    done;
    if !survivors > 0 then begin
      time := !time +. segment;
      wasted := !wasted +. replay;
      Sim.commit st v ~checkpointing;
      if !losses > 0 then incr saves;
      incr p
    end
    else begin
      time := !time +. !last_death +. !last_downtime;
      wasted := !wasted +. !last_death +. !last_downtime;
      incr failures;
      Sim.wipe_memory st;
      if !failures >= config.min_observations && estimate () then
        match config.replan with
        | None -> ()
        | Some _ when not (should_replan ()) -> ()
        | Some cb -> (
            match
              Trace.with_span "adaptive.replan" (fun () ->
                  cb ~model:!estimated ~order:(Array.copy order)
                    ~flags:(Array.copy flags) ~from:!p)
            with
            | None -> Metrics.incr m_rejected
            | Some plan ->
                validate_plan g ~order ~flags ~from:!p plan;
                Array.blit plan.order 0 order 0 n;
                Array.blit plan.flags 0 flags 0 n;
                plan_lambda := (!estimated).FM.lambda;
                incr replans;
                if Metrics.enabled () then Metrics.incr m_replans;
                Trace.instant "adaptive.replanned"
                  ~args:
                    [
                      ("from", string_of_int !p);
                      ("failures", string_of_int !failures);
                      ( "lambda_hat",
                        Printf.sprintf "%.6g" (!estimated).FM.lambda );
                    ])
    end
  done;
  if Metrics.enabled () then begin
    Metrics.incr m_runs;
    Metrics.add m_replicas_placed (Wfc_core.Schedule.extra_replicas sched);
    Metrics.add m_replica_saves !saves
  end;
  let run =
    Sim.record_run
      { Sim.makespan = !time; failures = !failures; wasted = !wasted }
      ~recoveries:(Sim.recoveries st)
  in
  {
    run;
    replans = !replans;
    reestimates = !reestimates;
    estimated = !estimated;
    final_order = order;
    final_flags = flags;
  }

let run ?extra_lanes ?replica_cost config ~source g sched =
  if Wfc_core.Schedule.is_replicated sched then
    run_replicated ?extra_lanes ?replica_cost config ~source g sched
  else begin
    (match extra_lanes with
    | Some ls when Array.length ls > 0 ->
        invalid_arg "Sim_adaptive.run: extra lanes with an unreplicated \
                     schedule"
    | _ -> ());
    run_plain config ~source g sched
  end
