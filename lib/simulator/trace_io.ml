module Json = Wfc_io.Json
module Metrics = Wfc_obs.Metrics

let m_recorded = Metrics.counter "trace.recorded"
let m_events_recorded = Metrics.counter "trace.events_recorded"
let m_replays = Metrics.counter "trace.replays"
let m_saved = Metrics.counter "trace.saved"
let m_loaded = Metrics.counter "trace.loaded"

type attempt = Survived of float | Failed of { after : float; downtime : float }

type t =
  | Attempts of attempt array
  | Renewal of { uptimes : float array; downtimes : float array }
  | Replicated of { events : attempt array; replicas : int array }

let version = 1

let kind_name = function
  | Attempts _ -> "attempts"
  | Renewal _ -> "renewal"
  | Replicated _ -> "attempts-replicated"

let count_failed evs =
  Array.fold_left
    (fun acc ev -> match ev with Failed _ -> acc + 1 | Survived _ -> acc)
    0 evs

let n_events = function
  | Attempts evs | Replicated { events = evs; _ } -> Array.length evs
  | Renewal { uptimes; downtimes } ->
      Array.length uptimes + Array.length downtimes

let n_failures = function
  | Attempts evs | Replicated { events = evs; _ } -> count_failed evs
  | Renewal { downtimes; _ } -> Array.length downtimes

exception Divergence of string

(* {1 Recording} *)

type recorder = { mutable events : attempt list; mutable last_ttf : float }

let recorder () = { events = []; last_ttf = nan }

(* Relies on the engine contract from Sim.source: each attempt issues one
   [time_to_failure], then either [consume] (survived) or [next_downtime]
   followed by [after_failure] (failed). *)
let recording_source r (inner : Sim.source) =
  {
    Sim.time_to_failure =
      (fun () ->
        let v = inner.Sim.time_to_failure () in
        r.last_ttf <- v;
        v);
    consume =
      (fun dt ->
        r.events <- Survived r.last_ttf :: r.events;
        inner.Sim.consume dt);
    next_downtime =
      (fun () ->
        let d = inner.Sim.next_downtime () in
        r.events <- Failed { after = r.last_ttf; downtime = d } :: r.events;
        d);
    after_failure = inner.Sim.after_failure;
  }

let recorded r = Attempts (Array.of_list (List.rev r.events))

let count_recorded t =
  if Metrics.enabled () then begin
    Metrics.incr m_recorded;
    Metrics.add m_events_recorded (n_events t)
  end;
  t

let record_run ?replica_cost ~rng model g sched =
  if Wfc_core.Schedule.is_replicated sched then begin
    (* one recorder shared by every lane: run_with_lanes resolves each
       lane's outcome before polling the next, so the interleaved stream is
       totally ordered and replays through a single cursor *)
    let r = recorder () in
    let lanes =
      Array.init
        (Wfc_core.Schedule.max_replica_count sched)
        (fun _ -> recording_source r (Sim.source_of_model ~rng model))
    in
    let run = Sim.run_with_lanes ?replica_cost lanes g sched in
    let events =
      match recorded r with Attempts evs -> evs | _ -> assert false
    in
    let trace =
      Replicated { events; replicas = Wfc_core.Schedule.replica_counts sched }
    in
    (run, count_recorded trace)
  end
  else begin
    let r = recorder () in
    let src = recording_source r (Sim.source_of_model ~rng model) in
    let run = Sim.run_with_source src g sched in
    (run, count_recorded (recorded r))
  end

let record_renewal ~rng ~failures ~downtime g sched =
  if Wfc_core.Schedule.is_replicated sched then
    invalid_arg
      "Trace_io.record_renewal: a replicated schedule records one event per \
       lane attempt (record_run), not a single renewal stream";
  let ups = ref [] and downs = ref [] in
  let draw_up () =
    let u = Wfc_platform.Distribution.sample failures rng in
    ups := u :: !ups;
    u
  in
  let remaining = ref (draw_up ()) in
  let src =
    {
      Sim.time_to_failure = (fun () -> !remaining);
      consume = (fun dt -> remaining := !remaining -. dt);
      next_downtime =
        (fun () ->
          let d = Wfc_platform.Distribution.sample downtime rng in
          downs := d :: !downs;
          d);
      after_failure = (fun () -> remaining := draw_up ());
    }
  in
  let run = Sim.run_with_source src g sched in
  let trace =
    Renewal
      {
        uptimes = Array.of_list (List.rev !ups);
        downtimes = Array.of_list (List.rev !downs);
      }
  in
  (run, count_recorded trace)

let draw_renewal ~rng ~failures ~downtime ~min_uptime =
  if not (min_uptime > 0. && Float.is_finite min_uptime) then
    invalid_arg "Trace_io.draw_renewal: min_uptime must be positive and finite";
  let ups = ref [] and downs = ref [] in
  let cum = ref 0. in
  let draw_up () =
    let u = Wfc_platform.Distribution.sample failures rng in
    ups := u :: !ups;
    cum := !cum +. u
  in
  draw_up ();
  while !cum < min_uptime do
    downs := Wfc_platform.Distribution.sample downtime rng :: !downs;
    draw_up ()
  done;
  count_recorded
    (Renewal
       {
         uptimes = Array.of_list (List.rev !ups);
         downtimes = Array.of_list (List.rev !downs);
       })

(* An event log from Sim_trace.run is chronological and sequential: each
   Attempt is closed by the next Completion (survived — the draw itself is
   not logged, but on success it never enters the makespan arithmetic, so
   [infinity] replays identically) or Failure (whose [elapsed] is the exact
   draw). Downtime is the model's constant. *)
let of_events ~downtime events =
  if not (downtime >= 0.) then
    invalid_arg "Trace_io.of_events: negative downtime";
  let acc = ref [] and pending = ref false in
  List.iter
    (fun (e : Sim_trace.event) ->
      match e with
      | Sim_trace.Attempt _ -> pending := true
      | Completion _ ->
          if not !pending then
            invalid_arg "Trace_io.of_events: completion without an attempt";
          pending := false;
          acc := Survived infinity :: !acc
      | Failure { elapsed; _ } ->
          if not !pending then
            invalid_arg "Trace_io.of_events: failure without an attempt";
          pending := false;
          acc := Failed { after = elapsed; downtime } :: !acc)
    events;
  count_recorded (Attempts (Array.of_list (List.rev !acc)))

(* {1 Replay} *)

type replay_state = { source : Sim.source; exhausted : unit -> bool }

let replay_source t =
  match t with
  | Attempts evs | Replicated { events = evs; _ } ->
      let n = Array.length evs in
      let i = ref 0 in
      let exhausted = ref false in
      let diverge what =
        raise
          (Divergence (Printf.sprintf "attempt %d: %s" !i what))
      in
      {
        source =
          {
            Sim.time_to_failure =
              (fun () ->
                if !i >= n then begin
                  exhausted := true;
                  infinity
                end
                else
                  match evs.(!i) with
                  | Survived v -> v
                  | Failed { after; _ } -> after);
            consume =
              (fun _ ->
                if !i < n then begin
                  (match evs.(!i) with
                  | Survived _ -> ()
                  | Failed _ -> diverge "segment survived a recorded failure");
                  incr i
                end);
            next_downtime =
              (fun () ->
                if !i >= n then diverge "failure past the end of the trace"
                else
                  match evs.(!i) with
                  | Failed { downtime; _ } -> downtime
                  | Survived _ -> diverge "segment failed on a recorded survival");
            after_failure = (fun () -> incr i);
          };
        exhausted = (fun () -> !exhausted);
      }
  | Renewal { uptimes; downtimes } ->
      let ndown = Array.length downtimes in
      let idx = ref 0 in
      let remaining = ref (if Array.length uptimes = 0 then 0. else uptimes.(0)) in
      let exhausted = ref (Array.length uptimes = 0) in
      (* On the last recorded uptime no further failure can be served, so
         the platform is failure-free from there on; consuming past that
         final draw is what [exhausted] reports. *)
      let final () = !idx >= ndown in
      {
        source =
          {
            Sim.time_to_failure =
              (fun () -> if final () then infinity else !remaining);
            consume =
              (fun dt ->
                remaining := !remaining -. dt;
                if final () && !remaining < 0. then exhausted := true);
            next_downtime = (fun () -> downtimes.(!idx));
            after_failure =
              (fun () ->
                incr idx;
                if !idx < Array.length uptimes then remaining := uptimes.(!idx));
          };
        exhausted = (fun () -> !exhausted);
      }

let replay ?replica_cost t g sched =
  if Metrics.enabled () then Metrics.incr m_replays;
  match t with
  | Replicated { replicas; _ } ->
      (* an attempt's events only make sense against the replica counts that
         produced them: one event per live copy, in lane order. A different
         count would silently misattribute events to the wrong copies, so
         refuse loudly. *)
      if Wfc_core.Schedule.replica_counts sched <> replicas then
        raise
          (Divergence
             "replayed schedule's replica counts differ from the recorded \
              ones");
      let shared = (replay_source t).source in
      (* the single cursor serves every lane: run_with_lanes polls lanes in
         recorded order *)
      let lanes =
        Array.make (Wfc_core.Schedule.max_replica_count sched) shared
      in
      Sim.run_with_lanes ?replica_cost lanes g sched
  | Attempts _ | Renewal _ ->
      if Wfc_core.Schedule.is_replicated sched then
        raise
          (Divergence
             (Printf.sprintf
                "a %s trace records one failure lane and cannot drive a \
                 replicated schedule"
                (kind_name t)));
      Sim.run_with_source (replay_source t).source g sched

(* {1 Serialization} *)

let hex f = Printf.sprintf "%h" f

let to_string t =
  let buf = Buffer.create 1024 in
  let line j = Buffer.add_string buf (Json.to_string ~minify:true j ^ "\n") in
  let header =
    [
      ("format", Json.String "wfc-trace");
      ("version", Json.Number (float_of_int version));
      ("kind", Json.String (kind_name t));
    ]
  in
  let header =
    (* replica counts ride in the header — only for the replicated kind, so
       the plain header line stays byte-identical *)
    match t with
    | Replicated { replicas; _ } ->
        header
        @ [
            ( "replicas",
              Json.List
                (Array.to_list
                   (Array.map (fun r -> Json.Number (float_of_int r)) replicas))
            );
          ]
    | Attempts _ | Renewal _ -> header
  in
  line (Json.Assoc header);
  let attempt_line = function
    | Survived v -> line (Json.Assoc [ ("s", Json.String (hex v)) ])
    | Failed { after; downtime } ->
        line
          (Json.Assoc
             [
               ("f", Json.String (hex after)); ("d", Json.String (hex downtime));
             ])
  in
  (match t with
  | Attempts evs | Replicated { events = evs; _ } ->
      Array.iter attempt_line evs
  | Renewal { uptimes; downtimes } ->
      (* draw order: u0, then (d_i, u_{i+1}) per failure *)
      Array.iteri
        (fun i u ->
          if i > 0 then
            line (Json.Assoc [ ("d", Json.String (hex downtimes.(i - 1))) ]);
          line (Json.Assoc [ ("u", Json.String (hex u)) ]))
        uptimes);
  Buffer.contents buf

let ( let* ) = Json.( let* )

let float_field ~what ~finite ~nonneg name j =
  let* v = Json.member name j in
  let* s = Json.to_string_value v in
  match float_of_string_opt s with
  | Some f when not (Float.is_nan f) ->
      if finite && not (Float.is_finite f) then
        Error (Printf.sprintf "%s must be finite, got %S" what s)
      else if nonneg && not (f >= 0.) then
        Error (Printf.sprintf "%s must be non-negative, got %S" what s)
      else Ok f
  | _ -> Error (Printf.sprintf "unparseable %s %S" what s)

let parse_header line =
  let* j = Json.of_string line in
  let* fmt = Json.member "format" j in
  let* fmt = Json.to_string_value fmt in
  if fmt <> "wfc-trace" then Error (Printf.sprintf "unknown format %S" fmt)
  else
    let* v = Json.member "version" j in
    let* v = Json.to_int v in
    if v <> version then
      Error (Printf.sprintf "unsupported version %d (expected %d)" v version)
    else
      let* k = Json.member "kind" j in
      let* k = Json.to_string_value k in
      Ok (k, j)

let parse_replicas j =
  let* r = Json.member "replicas" j in
  let* l = Json.to_list r in
  let rec go acc = function
    | [] ->
        if acc = [] then Error "empty replica counts"
        else Ok (Array.of_list (List.rev acc))
    | x :: rest ->
        let* r = Json.to_int x in
        if r < 1 || r > Wfc_core.Schedule.max_replicas then
          Error
            (Printf.sprintf "replica count %d outside [1, %d]" r
               Wfc_core.Schedule.max_replicas)
        else go (r :: acc) rest
  in
  go [] l

let parse_attempt j =
  match Json.member "s" j with
  | Ok _ ->
      let* v = float_field ~what:"survival draw" ~finite:false ~nonneg:true "s" j in
      Ok (Survived v)
  | Error _ ->
      let* after =
        float_field ~what:"failure time" ~finite:true ~nonneg:true "f" j
      in
      let* downtime =
        float_field ~what:"downtime" ~finite:true ~nonneg:true "d" j
      in
      Ok (Failed { after; downtime })

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty trace file"
  | header :: events -> (
      let located i r =
        (* line 1 is the header *)
        Result.map_error (fun e -> Printf.sprintf "line %d: %s" (i + 2) e) r
      in
      let* kind, header_json =
        Result.map_error (fun e -> "line 1: " ^ e) (parse_header header)
      in
      let parse_attempts events =
        let rec go i acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | l :: rest ->
              let* ev =
                located i
                  (let* j = Json.of_string l in
                   parse_attempt j)
              in
              go (i + 1) (ev :: acc) rest
        in
        go 0 [] events
      in
      match kind with
      | "attempts" ->
          let* evs = parse_attempts events in
          if Metrics.enabled () then Metrics.incr m_loaded;
          Ok (Attempts evs)
      | "attempts-replicated" ->
          let* replicas =
            Result.map_error
              (fun e -> "line 1: " ^ e)
              (parse_replicas header_json)
          in
          let* evs = parse_attempts events in
          if Metrics.enabled () then Metrics.incr m_loaded;
          Ok (Replicated { events = evs; replicas })
      | "renewal" ->
          (* grammar: u (d u)* — validated by alternation *)
          let rec go i ~expect_up ups downs = function
            | [] ->
                if ups = [] then Error "renewal trace has no uptime draw"
                else if expect_up then
                  Error
                    "truncated renewal trace (ends on a downtime without the \
                     renewing uptime draw)"
                else
                  Ok
                    (Renewal
                       {
                         uptimes = Array.of_list (List.rev ups);
                         downtimes = Array.of_list (List.rev downs);
                       })
            | l :: rest ->
                let* j = located i (Json.of_string l) in
                if expect_up then
                  let* u =
                    located i
                      (float_field ~what:"uptime" ~finite:true ~nonneg:true "u"
                         j)
                  in
                  go (i + 1) ~expect_up:false (u :: ups) downs rest
                else if Result.is_ok (Json.member "d" j) then
                  let* d =
                    located i
                      (float_field ~what:"downtime" ~finite:true ~nonneg:true
                         "d" j)
                  in
                  go (i + 1) ~expect_up:true ups (d :: downs) rest
                else
                  Error
                    (Printf.sprintf "line %d: expected a downtime event"
                       (i + 2))
          in
          let* t = go 0 ~expect_up:true [] [] events in
          if Metrics.enabled () then Metrics.incr m_loaded;
          Ok t
      | k -> Error (Printf.sprintf "line 1: unknown trace kind %S" k))

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t));
  if Metrics.enabled () then Metrics.incr m_saved

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error e -> Error e
