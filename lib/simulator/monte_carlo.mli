(** Monte Carlo estimation of a schedule's expected makespan. *)

type estimate = {
  makespan : Wfc_platform.Stats.t;  (** makespan samples *)
  failures : Wfc_platform.Stats.t;  (** failures per run *)
  wasted : Wfc_platform.Stats.t;  (** wasted time per run *)
}

val estimate :
  ?replica_cost:float ->
  ?runs:int ->
  seed:int ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  estimate
(** [estimate ~seed model g s] aggregates [runs] (default 1000) independent
    simulated executions, deterministically in [seed]. Replicated schedules
    simulate with [replica_cost] per extra copy (see {!Sim.run}).

    @raise Invalid_argument if [runs <= 0]. *)

val estimate_renewal :
  ?replica_cost:float ->
  ?runs:int ->
  seed:int ->
  failures:Wfc_platform.Distribution.t ->
  downtime:float ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  estimate
(** Like {!estimate}, with {!Sim.run_renewal}: failures as a renewal process
    of arbitrary inter-arrival law. *)

val estimate_overlap :
  ?runs:int ->
  seed:int ->
  Sim_overlap.params ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  estimate
(** Like {!estimate}, with {!Sim_overlap.run}: non-blocking checkpoints. *)

type faults_estimate = {
  summary : estimate;  (** makespan / failures / wasted, as in {!estimate} *)
  corrupt_reads : Wfc_platform.Stats.t;
      (** corrupt checkpoints discovered per run *)
  failed_recoveries : Wfc_platform.Stats.t;
      (** transient recovery failures per run *)
  truncated_runs : int;
      (** runs stopped by the {!Sim_faults.params} [max_failures] valve;
          their makespans are lower bounds, so when this is non-zero the
          summary statistics underestimate the true severity *)
}

val estimate_faults :
  ?runs:int ->
  seed:int ->
  Sim_faults.params ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  faults_estimate
(** Like {!estimate}, with {!Sim_faults.run}: checkpoint corruption,
    transient recovery failures and random downtime.

    @raise Invalid_argument if [runs <= 0]. *)

val estimate_parallel :
  ?runs:int ->
  ?domains:int ->
  seed:int ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  estimate
(** Multicore {!estimate}: splits the runs across [domains] OCaml domains
    (default [Domain.recommended_domain_count () - 1], at least 1), each with
    its own deterministic RNG stream derived from [seed], and merges the
    accumulators. The result is deterministic in [(seed, domains, runs)] —
    and statistically equivalent to, but not bit-identical with, the
    sequential estimate.

    @raise Invalid_argument if [runs <= 0] or [domains <= 0]. *)

val makespan_samples :
  ?runs:int ->
  seed:int ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  Wfc_platform.Sample_set.t
(** Like {!estimate} but keeping every makespan sample, for quantile and
    tail analysis ({!Wfc_platform.Sample_set.quantile}). *)

type tails = {
  mean : float;
  p95 : float;  (** 95th-percentile makespan *)
  p99 : float;
  cvar95 : float;  (** expected makespan of the worst 5% of runs *)
  cvar99 : float;
  worst : float;  (** largest sampled makespan *)
}
(** Tail risk of a makespan distribution: the numbers a risk-averse
    selection ({!Wfc_resilience.Robust}) ranks schedules by. *)

val tails_of_samples : Wfc_platform.Sample_set.t -> tails
(** Quantiles via {!Wfc_platform.Sample_set.quantile}, CVaR via
    {!Wfc_platform.Sample_set.cvar}.

    @raise Invalid_argument on an empty sample set. *)

val estimate_tails :
  ?runs:int ->
  seed:int ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  tails
(** [tails_of_samples] of {!makespan_samples}. *)

val agrees_with :
  estimate -> expected:float -> sigmas:float -> bool
(** [agrees_with e ~expected ~sigmas] tells whether [expected] lies within
    [sigmas] standard errors of the sampled mean — the acceptance test used
    to cross-validate the analytic evaluator. *)
