(** Fault injection beyond the paper's model: the checkpoint/recovery
    machinery itself can fail.

    {!Sim} trusts the platform: checkpoints always land intact, recoveries
    always read back, downtime is a constant. This engine relaxes all three,
    in the spirit of replication/checkpointing systems that must detect and
    fall back from failed checkpoint operations (Setlur et al.,
    arXiv:1810.06361):

    - a completed checkpoint is {e silently corrupt} with probability
      [p_ckpt_fail]. Corruption is only discovered when a recovery reads the
      checkpoint: the read is charged, the checkpoint is discarded, and the
      task is recomputed from its own surviving ancestors (recursively —
      falling back to the previous surviving checkpoint, or to full
      re-execution when none survives);
    - each recovery read fails transiently with probability [p_rec_fail] and
      is retried (every attempt is charged its recovery cost);
    - downtime after a platform failure is drawn from an arbitrary
      {!Wfc_platform.Distribution.t} instead of being constant.

    Corruption is a property of the stored checkpoint, decided once at write
    time; a discovery therefore persists (the checkpoint stays discarded)
    even when a platform failure aborts the segment that made it.

    {b Equivalence guarantee}: with [p_ckpt_fail = p_rec_fail = 0],
    [downtime = Constant d] and [failures = Exponential lambda], {!run}
    makes exactly the same RNG draws as {!Sim.run} on the model
    [{ lambda; downtime = d }] and returns bit-identical results — enforced
    by a property test. Non-exponential failure laws run as a renewal
    process, as in {!Sim.run_renewal}. *)

type params = {
  failures : Wfc_platform.Distribution.t;
      (** inter-arrival law of platform failures. [Exponential] draws fresh
          per attempt (memoryless, matches {!Sim.run}); other laws renew on
          repair *)
  downtime : Wfc_platform.Distribution.t;  (** per-failure repair time *)
  p_ckpt_fail : float;  (** silent checkpoint corruption probability *)
  p_rec_fail : float;  (** transient recovery read failure probability *)
  max_failures : int;
      (** safety valve for divergent runs; [0] means unlimited. Under a
          grossly misspecified platform a schedule with too few checkpoints
          needs [e^{lambda W}] attempts — finite in expectation, astronomic
          in wall-clock. A run that injects this many failures stops early
          and comes back [truncated] (its makespan is then a lower bound) *)
}

val nominal : Wfc_platform.Failure_model.t -> params
(** The paper's platform as fault-injection parameters: exponential failures
    at the model's rate, constant downtime, no checkpoint/recovery faults,
    no failure cap.

    @raise Invalid_argument if the model is fail-free ([lambda = 0]). *)

type run = {
  makespan : float;  (** total simulated execution time *)
  failures : int;  (** platform failures injected *)
  wasted : float;  (** time on lost attempts, downtime and replays *)
  corrupt_reads : int;
      (** corrupt checkpoints discovered (and discarded) by a recovery *)
  failed_recoveries : int;  (** transient recovery read failures retried *)
  truncated : bool;  (** stopped early by the [max_failures] safety valve *)
}

val source_of_params : rng:Wfc_platform.Rng.t -> params -> Sim.source
(** The failure process [run] draws from when no [?source] is given:
    memoryless per-attempt draws for [Exponential], a renewal countdown
    otherwise, downtime sampled per failure. *)

val run :
  ?source:Sim.source ->
  ?lanes:Sim.source array ->
  ?replica_cost:float ->
  rng:Wfc_platform.Rng.t ->
  params ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  run
(** One simulated execution under checkpoint/recovery faults. [?source]
    overrides where platform failures and downtimes come from — e.g. a
    {!Trace_io} recording or replay wrapper; [rng] still drives the fault
    bernoullis, so full determinism additionally needs the same seed.

    Replicated schedules run on one failure lane per copy, as in
    {!Sim.run_with_lanes} ([?lanes] overrides the lanes; [?source] is
    rejected there), drawing fresh lanes from [rng] otherwise. The fault
    machinery generalizes per checkpoint {e copy}: a checkpointing task with
    [r] replicas writes [r] copies, each independently corrupt with
    [p_ckpt_fail]; a recovery read tries the copies in write order (each
    tried copy pays its transient-retry loop and one read) and recomputes
    only when {e all} copies are corrupt — a corrupt checkpoint on one
    replica does not doom its siblings. With all replica counts 1 this is
    the unreplicated path, draw for draw.

    @raise Invalid_argument if [p_ckpt_fail] is outside [\[0, 1\]],
    [p_rec_fail] outside [\[0, 1)] (a certain recovery failure would never
    terminate), [max_failures < 0], [?source] is combined with a replicated
    schedule, [?lanes] with an unreplicated one, or there are fewer lanes
    than replicas. *)
