type estimate = {
  makespan : Wfc_platform.Stats.t;
  failures : Wfc_platform.Stats.t;
  wasted : Wfc_platform.Stats.t;
}

let aggregate ~runs ~seed run_once =
  if runs <= 0 then invalid_arg "Monte_carlo: runs must be positive";
  Wfc_obs.Trace.with_span "monte_carlo.aggregate"
    ~args:[ ("runs", string_of_int runs) ]
  @@ fun () ->
  let rng = Wfc_platform.Rng.create seed in
  let makespan = Wfc_platform.Stats.create () in
  let failures = Wfc_platform.Stats.create () in
  let wasted = Wfc_platform.Stats.create () in
  for _ = 1 to runs do
    let r = run_once rng in
    Wfc_platform.Stats.add makespan r.Sim.makespan;
    Wfc_platform.Stats.add failures (float_of_int r.Sim.failures);
    Wfc_platform.Stats.add wasted r.Sim.wasted
  done;
  { makespan; failures; wasted }

let estimate ?replica_cost ?(runs = 1000) ~seed model g sched =
  aggregate ~runs ~seed (fun rng -> Sim.run ?replica_cost ~rng model g sched)

let estimate_renewal ?replica_cost ?(runs = 1000) ~seed ~failures ~downtime g
    sched =
  aggregate ~runs ~seed (fun rng ->
      Sim.run_renewal ?replica_cost ~rng ~failures ~downtime g sched)

let estimate_overlap ?(runs = 1000) ~seed params g sched =
  aggregate ~runs ~seed (fun rng -> Sim_overlap.run ~rng params g sched)

type faults_estimate = {
  summary : estimate;
  corrupt_reads : Wfc_platform.Stats.t;
  failed_recoveries : Wfc_platform.Stats.t;
  truncated_runs : int;
}

let estimate_faults ?(runs = 1000) ~seed params g sched =
  if runs <= 0 then invalid_arg "Monte_carlo.estimate_faults: runs <= 0";
  Wfc_obs.Trace.with_span "monte_carlo.estimate_faults"
    ~args:[ ("runs", string_of_int runs) ]
  @@ fun () ->
  let rng = Wfc_platform.Rng.create seed in
  let makespan = Wfc_platform.Stats.create () in
  let failures = Wfc_platform.Stats.create () in
  let wasted = Wfc_platform.Stats.create () in
  let corrupt_reads = Wfc_platform.Stats.create () in
  let failed_recoveries = Wfc_platform.Stats.create () in
  let truncated_runs = ref 0 in
  for _ = 1 to runs do
    let r = Sim_faults.run ~rng params g sched in
    Wfc_platform.Stats.add makespan r.Sim_faults.makespan;
    Wfc_platform.Stats.add failures (float_of_int r.Sim_faults.failures);
    Wfc_platform.Stats.add wasted r.Sim_faults.wasted;
    Wfc_platform.Stats.add corrupt_reads (float_of_int r.Sim_faults.corrupt_reads);
    Wfc_platform.Stats.add failed_recoveries
      (float_of_int r.Sim_faults.failed_recoveries);
    if r.Sim_faults.truncated then incr truncated_runs
  done;
  {
    summary = { makespan; failures; wasted };
    corrupt_reads;
    failed_recoveries;
    truncated_runs = !truncated_runs;
  }

let estimate_parallel ?(runs = 1000) ?domains ~seed model g sched =
  let domains =
    match domains with
    | Some d ->
        if d <= 0 then invalid_arg "Monte_carlo.estimate_parallel: domains <= 0";
        d
    | None -> Wfc_platform.Domain_pool.default_domains ()
  in
  if runs <= 0 then invalid_arg "Monte_carlo.estimate_parallel: runs <= 0";
  let slices = Wfc_platform.Domain_pool.chunks ~total:runs ~domains in
  let parts =
    Wfc_platform.Domain_pool.run ~domains:(Array.length slices) (fun i ->
        let _, runs = slices.(i) in
        (* distinct deterministic stream per domain *)
        aggregate ~runs ~seed:(seed + (i * 0x9E3779B9)) (fun rng ->
            Sim.run ~rng model g sched))
  in
  List.fold_left
    (fun acc e ->
      {
        makespan = Wfc_platform.Stats.merge acc.makespan e.makespan;
        failures = Wfc_platform.Stats.merge acc.failures e.failures;
        wasted = Wfc_platform.Stats.merge acc.wasted e.wasted;
      })
    (List.hd parts) (List.tl parts)

let makespan_samples ?(runs = 1000) ~seed model g sched =
  if runs <= 0 then invalid_arg "Monte_carlo: runs must be positive";
  let rng = Wfc_platform.Rng.create seed in
  let samples = Wfc_platform.Sample_set.create () in
  for _ = 1 to runs do
    Wfc_platform.Sample_set.add samples (Sim.run ~rng model g sched).Sim.makespan
  done;
  samples

type tails = {
  mean : float;
  p95 : float;
  p99 : float;
  cvar95 : float;
  cvar99 : float;
  worst : float;
}

let tails_of_samples samples =
  let module SS = Wfc_platform.Sample_set in
  {
    mean = SS.mean samples;
    p95 = SS.quantile samples 0.95;
    p99 = SS.quantile samples 0.99;
    cvar95 = SS.cvar samples 0.95;
    cvar99 = SS.cvar samples 0.99;
    worst = SS.quantile samples 1.;
  }

let estimate_tails ?runs ~seed model g sched =
  tails_of_samples (makespan_samples ?runs ~seed model g sched)

let agrees_with e ~expected ~sigmas =
  let mean = Wfc_platform.Stats.mean e.makespan in
  let err = Wfc_platform.Stats.std_error e.makespan in
  Float.abs (mean -. expected) <= sigmas *. Float.max err (1e-12 *. mean)
