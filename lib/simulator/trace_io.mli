(** Deterministic failure-trace record/replay.

    A trace captures the exact draws a failure {!Sim.source} handed to an
    execution engine, so that the same failure sequence can be re-examined
    offline or scored against a different policy. Two kinds exist because
    determinism and policy-independence pull in opposite directions:

    - {e attempts} traces log, per segment attempt, what [time_to_failure]
      returned and (on failure) the downtime that followed. Replaying one
      against the {b same} schedule reproduces the original run bit for bit
      — for memoryless {!Sim.run}, countdown-based {!Sim.run_renewal} and
      the failure process of {!Sim_faults.run} alike, because the engine
      sees the identical float at every decision point. Replaying against a
      schedule that makes different survive/fail decisions raises
      {!Divergence}: the recorded process is conditioned on the original
      attempt boundaries.
    - {e renewal} traces log the raw renewal draws — inter-failure uptimes
      and per-failure downtimes in platform time — which are independent of
      the schedule being executed. Any two policies replayed on one renewal
      trace face byte-identical failure sequences, which is the basis of
      {!Wfc_resilience.Robust} scoring and of adaptive-vs-static
      comparisons. Beyond the last recorded failure the replayed platform
      is failure-free; the [exhausted] flag reports when a run actually
      consumed past the recorded horizon (choose [min_uptime] generously).

    On disk a trace is JSONL: a versioned header line followed by one event
    per line, floats encoded as hexadecimal literals ([%h]) so the loader
    restores them bit-exactly. The loader validates the header, the event
    grammar and every float. *)

type attempt =
  | Survived of float
      (** the inter-failure draw; at least as long as the segment it let
          through (infinite for a fail-free platform) *)
  | Failed of { after : float; downtime : float }
      (** the segment failed [after] seconds in; repair took [downtime] *)

type t =
  | Attempts of attempt array
  | Renewal of { uptimes : float array; downtimes : float array }
      (** raw draws in platform time: [uptimes.(0)] at start, then after
          failure [i] repair takes [downtimes.(i)] and the clock restarts
          at [uptimes.(i + 1)] — so [length uptimes = length downtimes + 1] *)
  | Replicated of { events : attempt array; replicas : int array }
      (** attempts-kind events of a replicated run ({!Sim.run_with_lanes}):
          one event per {e live copy} of every attempt, interleaved in the
          engine's strict lane order, plus the per-task replica counts the
          run executed with — replay refuses any other counts, since the
          same stream sliced by different counts would attribute events to
          the wrong copies *)

val version : int
(** Current on-disk format version. *)

val kind_name : t -> string
(** ["attempts"], ["renewal"] or ["attempts-replicated"], as written in the
    header. *)

val n_events : t -> int
(** Number of event lines the trace serializes to. *)

val n_failures : t -> int
(** Failures the trace contains. *)

exception Divergence of string
(** Raised during attempts-kind replay when the executing schedule makes a
    survive/fail decision that contradicts the recorded one. *)

(** {1 Recording} *)

type recorder
(** Accumulates attempts-kind events from a wrapped source. *)

val recorder : unit -> recorder

val recording_source : recorder -> Sim.source -> Sim.source
(** Pass-through wrapper that logs one {!attempt} per segment attempt.
    Relies on the engine call order documented on {!Sim.source}. *)

val recorded : recorder -> t
(** The events logged so far, as an attempts-kind trace. *)

val record_run :
  ?replica_cost:float ->
  rng:Wfc_platform.Rng.t ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  Sim.run * t
(** {!Sim.run} with its draws captured as an attempts-kind trace. A
    replicated schedule runs through {!Sim.run_with_lanes} with every lane
    recorded into one stream, yielding a [Replicated] trace. *)

val record_renewal :
  rng:Wfc_platform.Rng.t ->
  failures:Wfc_platform.Distribution.t ->
  downtime:Wfc_platform.Distribution.t ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  Sim.run * t
(** A renewal execution (as {!Sim.run_renewal}, with distribution-drawn
    downtime) whose raw draws are captured as a renewal-kind trace.

    @raise Invalid_argument on a replicated schedule: its lanes are
      separate renewal processes, which a single renewal stream cannot
      represent — use {!record_run}. *)

val of_events : downtime:float -> Sim_trace.event list -> t
(** Reconstruct an attempts-kind trace from a {!Sim_trace.run} event log
    (whose downtime is the model's constant). Completed attempts replay as
    [Survived infinity] — bit-identical, since on success the draw never
    enters the makespan arithmetic.

    @raise Invalid_argument if [downtime] is negative or the log is not a
    chronological attempt/outcome sequence. *)

val draw_renewal :
  rng:Wfc_platform.Rng.t ->
  failures:Wfc_platform.Distribution.t ->
  downtime:Wfc_platform.Distribution.t ->
  min_uptime:float ->
  t
(** A standalone renewal-kind trace, independent of any execution: draws
    uptime/downtime pairs until cumulative uptime reaches [min_uptime].
    Replaying it is failure-free beyond that horizon, so pick [min_uptime]
    well above any plausible makespan and check {!replay_state.exhausted}.

    @raise Invalid_argument if [min_uptime] is not positive and finite. *)

(** {1 Replay} *)

type replay_state = {
  source : Sim.source;  (** feed to {!Sim.run_with_source} or any engine *)
  exhausted : unit -> bool;
      (** [true] once the run needed draws beyond the recorded horizon *)
}

val replay_source : t -> replay_state
(** A fresh source that serves the recorded draws in order. Each call
    starts from the beginning of the trace. *)

val replay :
  ?replica_cost:float -> t -> Wfc_dag.Dag.t -> Wfc_core.Schedule.t -> Sim.run
(** [Sim.run_with_source] on a fresh {!replay_source}. For an attempts
    trace recorded from the same schedule this reproduces the original
    {!Sim.run} result bit for bit. A [Replicated] trace replays through
    {!Sim.run_with_lanes}, every lane served by the single shared cursor —
    exact because the engine polls lanes in the recorded order.

    @raise Divergence as documented above; also when a [Replicated] trace
      meets a schedule whose replica counts differ from the recorded ones,
      or when an [Attempts]/[Renewal] trace (one failure lane) meets a
      replicated schedule. *)

(** {1 Serialization} *)

val to_string : t -> string
(** The JSONL document: header line plus one line per event. *)

val of_string : string -> (t, string) result
(** Parse and validate; the error names the offending line. *)

val save : string -> t -> unit
(** Write {!to_string} to a file. *)

val load : string -> (t, string) result
(** Read and {!of_string} a file; I/O errors come back as [Error]. *)
