(** Discrete-event fault injection: executes a schedule once against randomly
    drawn exponential failures, reproducing the paper's recovery semantics
    exactly.

    State: the set of task outputs currently in memory (all lost on every
    failure) and the set of checkpoints on stable storage (never lost, only
    appended when a checkpointed task's segment completes). Each position of
    the linearization is executed as a segment — replay of lost, still-needed
    ancestors (recoveries for checkpointed ones, recomputation for the rest),
    the task's own work and its optional checkpoint. A failure inside the
    segment wipes memory, costs the elapsed time plus the downtime, and the
    segment restarts from the surviving checkpoints.

    Cross-validating the mean of many runs against {!Wfc_core.Evaluator} is
    the strongest correctness argument for both implementations. *)

type run = {
  makespan : float;  (** total simulated execution time *)
  failures : int;  (** number of failures injected *)
  wasted : float;  (** time spent on lost attempts, downtime and replays *)
}

(** {1 Execution machinery}

    The pieces every blocking engine shares, exported so variants (the
    adaptive executor, fault injectors) reuse the exact replay semantics
    instead of reimplementing them. *)

type state
(** Platform memory/disk state: which task outputs are live in memory (all
    lost on failure) and which checkpoints sit on stable storage. *)

val make_state : Wfc_dag.Dag.t -> n:int -> state
(** Fresh state for an [n]-task DAG: nothing in memory, nothing on disk. *)

val replay_cost : state -> int -> float
(** Replay cost for executing task [v] now: recover lost checkpointed
    ancestors (at recovery cost), recompute lost plain ones (recursively,
    at their weight). Also notes which outputs the segment will bring back
    to memory, applied by the next {!commit}. *)

val replay_cost_weighted : state -> weight_of:(int -> float) -> int -> float
(** {!replay_cost} with recomputations priced by [weight_of] instead of the
    task weight — replicated runs pass surcharged effective weights, since a
    replayed task re-runs with its replicas. *)

val commit : state -> int -> checkpointing:bool -> unit
(** The segment of task [v] completed: its output (and everything the last
    {!replay_cost} restored) is in memory; with [checkpointing] its
    checkpoint is on disk. *)

val wipe_memory : state -> unit
(** A failure: every in-memory output is lost; disk survives. *)

val recoveries : state -> int
(** Checkpoint reads performed by replays so far. *)

val record_run : run -> recoveries:int -> run
(** Flush one replica's counters to the metrics layer (a no-op when
    disabled) and return the run unchanged. *)

type source = {
  time_to_failure : unit -> float;
      (** time until the next failure, measured from now; [infinity] means
          the current segment cannot fail *)
  consume : float -> unit;
      (** [consume dt]: [dt] seconds elapsed without a failure (lets renewal
          processes age their countdown; memoryless sources ignore it) *)
  next_downtime : unit -> float;  (** drawn once per failure *)
  after_failure : unit -> unit;
      (** the repair renews the process; called {e after} [next_downtime] —
          every engine and recording wrapper relies on that call order *)
}
(** A failure environment as seen by the blocking engine. *)

val source_of_model : rng:Wfc_platform.Rng.t -> Wfc_platform.Failure_model.t -> source
(** Memoryless exponential failures with constant downtime: a fresh
    inter-arrival draw per attempt, which is exact for the exponential law. *)

val renewal_source :
  rng:Wfc_platform.Rng.t ->
  failures:Wfc_platform.Distribution.t ->
  downtime:Wfc_platform.Distribution.t ->
  source
(** Renewal failures: one countdown drawn at start and after every repair,
    consumed by successful segments in between. *)

val run_with_source : source -> Wfc_dag.Dag.t -> Wfc_core.Schedule.t -> run
(** The generic blocking-checkpoint engine, parametric in the failure
    source. {!run} and {!run_renewal} are thin wrappers; {!Trace_io} wraps a
    [source] to record or replay the exact draws.

    @raise Invalid_argument on a replicated schedule — replicas need one
      failure lane per copy ({!run_with_lanes}); running them against a
      single source would silently under-protect them. *)

val run_with_lanes :
  ?replica_cost:float ->
  source array ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  run
(** Multi-lane engine for replicated schedules: the task at each position
    runs [Schedule.replicas_of] independent copies, copy [j] of every
    attempt drawing from [lanes.(j)]. Lanes are polled in ascending order,
    each lane's outcome fully resolved (consume, or downtime + renewal)
    before the next lane is queried — which makes a single recorded stream
    replay deterministically. An attempt is lost only when {e every} copy
    fails, charged at the last copy's death plus that copy's downtime; an
    attempt that lost copies but survived counts toward the
    [sim.replica_saves] counter. Execution is surcharged through
    {!Wfc_core.Replication.effective_weight} with [replica_cost] (default
    {!Wfc_core.Replication.default_cost}); checkpoint and recovery costs are
    shared, unscaled. [run_with_lanes [| s |]] on an unreplicated schedule
    replays {!run_with_source}'s draws and float operations bit for bit.

    @raise Invalid_argument with fewer lanes than
      {!Wfc_core.Schedule.max_replica_count}. *)

val run :
  ?replica_cost:float ->
  rng:Wfc_platform.Rng.t ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  run
(** One simulated execution. With [lambda = 0] the result is
    deterministic: the failure-free time plus all checkpoint costs.
    Replicated schedules run on one memoryless lane per copy
    ({!run_with_lanes}), all drawing from [rng]. *)

val run_renewal :
  ?replica_cost:float ->
  rng:Wfc_platform.Rng.t ->
  failures:Wfc_platform.Distribution.t ->
  downtime:float ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  run
(** Same execution semantics, but failures arrive as a {e renewal process}:
    one inter-arrival draw from [failures] at start and after every repair,
    instead of a fresh memoryless draw per attempt. For
    [Distribution.Exponential] this is statistically identical to {!run};
    for Weibull and other age-dependent laws it is the meaningful model.

    @raise Invalid_argument if [downtime < 0]. *)
