module Distribution = Wfc_platform.Distribution
module Rng = Wfc_platform.Rng
module Metrics = Wfc_obs.Metrics

(* The registry hands back Sim's counters for the shared names, so replica
   and failure totals aggregate across fault-free and fault-injecting
   engines; the remaining counters are specific to injected faults. *)
let m_replicas = Metrics.counter "sim.replicas"
let m_failures = Metrics.counter "sim.failures_injected"
let m_recoveries = Metrics.counter "sim.recoveries"
let h_lost_work = Metrics.histogram "sim.lost_work"
let m_corrupt = Metrics.counter "sim.faults.corrupt_ckpt_detected"
let m_failed_rec = Metrics.counter "sim.faults.failed_recoveries"
let m_truncated = Metrics.counter "sim.faults.truncated_runs"
let m_replicas_placed = Metrics.counter "sim.replicas_placed"
let m_replica_saves = Metrics.counter "sim.replica_saves"

type params = {
  failures : Distribution.t;
  downtime : Distribution.t;
  p_ckpt_fail : float;
  p_rec_fail : float;
  max_failures : int;
}

let nominal model =
  let lambda = model.Wfc_platform.Failure_model.lambda in
  if lambda = 0. then invalid_arg "Sim_faults.nominal: fail-free model";
  {
    failures = Distribution.exponential ~rate:lambda;
    downtime = Distribution.constant model.Wfc_platform.Failure_model.downtime;
    p_ckpt_fail = 0.;
    p_rec_fail = 0.;
    max_failures = 0;
  }

type run = {
  makespan : float;
  failures : int;
  wasted : float;
  corrupt_reads : int;
  failed_recoveries : int;
  truncated : bool;
}

let check_probability what ~strict p =
  if not (p >= 0. && (if strict then p < 1. else p <= 1.)) then
    invalid_arg (Printf.sprintf "Sim_faults: %s out of range" what)

(* Mirrors Sim.run draw for draw so that the zero-fault configuration is
   bit-identical to Sim.run on the same RNG stream: fault bernoullis and
   degenerate downtimes consume no randomness at all. *)
let source_of_params ~rng (params : params) =
  match params.failures with
  | Distribution.Exponential rate ->
      (* memoryless: a fresh draw per attempt is exact, as in Sim.run *)
      {
        Sim.time_to_failure = (fun () -> Rng.exponential rng ~rate);
        consume = (fun _ -> ());
        next_downtime = (fun () -> Distribution.sample params.downtime rng);
        after_failure = (fun () -> ());
      }
  | d ->
      (* renewal: countdown consumed by successful segments, redrawn after
         each repair, as in Sim.run_renewal *)
      Sim.renewal_source ~rng ~failures:d ~downtime:params.downtime

let validate_params (params : params) =
  check_probability "p_ckpt_fail" ~strict:false params.p_ckpt_fail;
  check_probability "p_rec_fail" ~strict:true params.p_rec_fail;
  if params.max_failures < 0 then
    invalid_arg "Sim_faults: max_failures must be non-negative"

let run_plain ?source ~rng params g sched =
  validate_params params;
  let n = Wfc_core.Schedule.n_tasks sched in
  let in_memory = Array.make n false in
  let on_disk = Array.make n false in
  let corrupt = Array.make n false in
  let seen = Array.make n false in
  let restored = ref [] in
  let corrupt_reads = ref 0 and failed_recoveries = ref 0 in
  let recoveries = ref 0 in
  let weight v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.weight in
  let ckpt_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost in
  let rec_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.recovery_cost in
  let bernoulli p = p > 0. && Rng.uniform rng < p in
  let src =
    match source with Some s -> s | None -> source_of_params ~rng params
  in
  (* Replay for task [v]: recover lost checkpointed ancestors, recompute lost
     plain ones. A recovery read retries on transient failure; a read of a
     corrupt checkpoint discards it and falls back to recomputing the task
     from its own ancestors. *)
  let replay_cost v =
    restored := [];
    Array.fill seen 0 n false;
    let cost = ref 0. in
    let rec visit v =
      Array.iter
        (fun u ->
          if (not in_memory.(u)) && not seen.(u) then begin
            seen.(u) <- true;
            restored := u :: !restored;
            if on_disk.(u) then begin
              let rc = rec_cost u in
              while bernoulli params.p_rec_fail do
                incr failed_recoveries;
                cost := !cost +. rc
              done;
              incr recoveries;
              cost := !cost +. rc;
              if corrupt.(u) then begin
                incr corrupt_reads;
                on_disk.(u) <- false;
                corrupt.(u) <- false;
                cost := !cost +. weight u;
                visit u
              end
            end
            else begin
              cost := !cost +. weight u;
              visit u
            end
          end)
        (Wfc_dag.Dag.preds_array g v)
    in
    visit v;
    !cost
  in
  let time = ref 0. and failures = ref 0 and wasted = ref 0. in
  let truncated = ref false in
  let exception Capped in
  (try
     for p = 0 to n - 1 do
       let v = Wfc_core.Schedule.task_at sched p in
       let checkpointing = Wfc_core.Schedule.is_checkpointed sched v in
       let finished = ref false in
       while not !finished do
         let replay = replay_cost v in
         let segment =
           replay +. weight v +. (if checkpointing then ckpt_cost v else 0.)
         in
         let fail_after = src.Sim.time_to_failure () in
         if fail_after >= segment then begin
           time := !time +. segment;
           wasted := !wasted +. replay;
           src.Sim.consume segment;
           List.iter (fun u -> in_memory.(u) <- true) !restored;
           in_memory.(v) <- true;
           if checkpointing then begin
             on_disk.(v) <- true;
             if bernoulli params.p_ckpt_fail then corrupt.(v) <- true
           end;
           finished := true
         end
         else begin
           let down = src.Sim.next_downtime () in
           time := !time +. fail_after +. down;
           wasted := !wasted +. fail_after +. down;
           incr failures;
           Array.fill in_memory 0 n false;
           src.Sim.after_failure ();
           if params.max_failures > 0 && !failures >= params.max_failures then
             raise Capped
         end
       done
     done
   with Capped -> truncated := true);
  if Metrics.enabled () then begin
    Metrics.incr m_replicas;
    Metrics.add m_failures !failures;
    Metrics.add m_recoveries !recoveries;
    Metrics.observe h_lost_work !wasted;
    Metrics.add m_corrupt !corrupt_reads;
    Metrics.add m_failed_rec !failed_recoveries;
    if !truncated then Metrics.incr m_truncated
  end;
  {
    makespan = !time;
    failures = !failures;
    wasted = !wasted;
    corrupt_reads = !corrupt_reads;
    failed_recoveries = !failed_recoveries;
    truncated = !truncated;
  }

(* Replicated engine: mirrors Sim.run_with_lanes draw for draw (so the
   zero-fault configuration is bit-identical to it on the same RNG stream)
   and generalizes the fault machinery per copy. A checkpointing task with r
   replicas writes r checkpoint copies, each independently corrupt with
   [p_ckpt_fail]; a replay read tries the copies in write order — paying the
   transient-retry loop and one recovery read per copy tried — and only
   falls back to recomputation when every copy is corrupt: a corrupt
   checkpoint on one replica must not doom its siblings. *)
let run_replicated ?lanes ?replica_cost ~rng params g sched =
  validate_params params;
  let replica_cost =
    match replica_cost with
    | Some c -> c
    | None -> Wfc_core.Replication.default_cost
  in
  let n = Wfc_core.Schedule.n_tasks sched in
  let max_r = Wfc_core.Schedule.max_replica_count sched in
  let lanes =
    match lanes with
    | Some ls ->
        if Array.length ls < max_r then
          invalid_arg "Sim_faults.run: fewer lanes than replicas";
        ls
    | None -> Array.init max_r (fun _ -> source_of_params ~rng params)
  in
  let in_memory = Array.make n false in
  let on_disk = Array.make n false in
  let copies = Array.make n 0 in
  let corrupt_mask = Array.make n 0 in
  let seen = Array.make n false in
  let restored = ref [] in
  let corrupt_reads = ref 0 and failed_recoveries = ref 0 in
  let recoveries = ref 0 in
  let weight v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.weight in
  let ckpt_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost in
  let rec_cost v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.recovery_cost in
  let replicas v = Wfc_core.Schedule.replicas_of sched v in
  let eff_w v =
    Wfc_core.Replication.effective_weight ~cost:replica_cost
      ~weight:(weight v) ~r:(replicas v)
  in
  let bernoulli p = p > 0. && Rng.uniform rng < p in
  let replay_cost v =
    restored := [];
    Array.fill seen 0 n false;
    let cost = ref 0. in
    let rec visit v =
      Array.iter
        (fun u ->
          if (not in_memory.(u)) && not seen.(u) then begin
            seen.(u) <- true;
            restored := u :: !restored;
            if on_disk.(u) then begin
              let rc = rec_cost u in
              (* try the checkpoint copies in write order; stop at the first
                 good one *)
              let found = ref false and j = ref 0 in
              while (not !found) && !j < copies.(u) do
                while bernoulli params.p_rec_fail do
                  incr failed_recoveries;
                  cost := !cost +. rc
                done;
                incr recoveries;
                cost := !cost +. rc;
                if corrupt_mask.(u) land (1 lsl !j) <> 0 then
                  incr corrupt_reads
                else found := true;
                incr j
              done;
              if not !found then begin
                (* every copy corrupt: discard them all and recompute *)
                on_disk.(u) <- false;
                copies.(u) <- 0;
                corrupt_mask.(u) <- 0;
                cost := !cost +. eff_w u;
                visit u
              end
            end
            else begin
              cost := !cost +. eff_w u;
              visit u
            end
          end)
        (Wfc_dag.Dag.preds_array g v)
    in
    visit v;
    !cost
  in
  let time = ref 0. and failures = ref 0 and wasted = ref 0. in
  let saves = ref 0 in
  let truncated = ref false in
  let exception Capped in
  (try
     for p = 0 to n - 1 do
       let v = Wfc_core.Schedule.task_at sched p in
       let r = replicas v in
       let checkpointing = Wfc_core.Schedule.is_checkpointed sched v in
       let finished = ref false in
       while not !finished do
         let replay = replay_cost v in
         let segment =
           replay +. eff_w v +. (if checkpointing then ckpt_cost v else 0.)
         in
         let survivors = ref 0 and losses = ref 0 in
         let last_death = ref neg_infinity and last_downtime = ref 0. in
         for j = 0 to r - 1 do
           let lane = lanes.(j) in
           let fail_after = lane.Sim.time_to_failure () in
           if fail_after >= segment then begin
             lane.Sim.consume segment;
             incr survivors
           end
           else begin
             let down = lane.Sim.next_downtime () in
             incr losses;
             if fail_after > !last_death then begin
               last_death := fail_after;
               last_downtime := down
             end;
             lane.Sim.after_failure ()
           end
         done;
         if !survivors > 0 then begin
           time := !time +. segment;
           wasted := !wasted +. replay;
           List.iter (fun u -> in_memory.(u) <- true) !restored;
           in_memory.(v) <- true;
           if checkpointing then begin
             on_disk.(v) <- true;
             copies.(v) <- r;
             let mask = ref 0 in
             for j = 0 to r - 1 do
               if bernoulli params.p_ckpt_fail then mask := !mask lor (1 lsl j)
             done;
             corrupt_mask.(v) <- !mask
           end;
           if !losses > 0 then incr saves;
           finished := true
         end
         else begin
           time := !time +. !last_death +. !last_downtime;
           wasted := !wasted +. !last_death +. !last_downtime;
           incr failures;
           Array.fill in_memory 0 n false;
           if params.max_failures > 0 && !failures >= params.max_failures then
             raise Capped
         end
       done
     done
   with Capped -> truncated := true);
  if Metrics.enabled () then begin
    Metrics.incr m_replicas;
    Metrics.add m_failures !failures;
    Metrics.add m_recoveries !recoveries;
    Metrics.observe h_lost_work !wasted;
    Metrics.add m_corrupt !corrupt_reads;
    Metrics.add m_failed_rec !failed_recoveries;
    Metrics.add m_replicas_placed (Wfc_core.Schedule.extra_replicas sched);
    Metrics.add m_replica_saves !saves;
    if !truncated then Metrics.incr m_truncated
  end;
  {
    makespan = !time;
    failures = !failures;
    wasted = !wasted;
    corrupt_reads = !corrupt_reads;
    failed_recoveries = !failed_recoveries;
    truncated = !truncated;
  }

let run ?source ?lanes ?replica_cost ~rng params g sched =
  if Wfc_core.Schedule.is_replicated sched then begin
    if Option.is_some source then
      invalid_arg
        "Sim_faults.run: replicated schedule needs failure lanes, not a \
         single source";
    run_replicated ?lanes ?replica_cost ~rng params g sched
  end
  else begin
    if Option.is_some lanes then
      invalid_arg "Sim_faults.run: ?lanes with an unreplicated schedule";
    run_plain ?source ~rng params g sched
  end
