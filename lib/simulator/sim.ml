type run = { makespan : float; failures : int; wasted : float }

module Metrics = Wfc_obs.Metrics

(* One flush per simulated replica, whichever engine ran it: Sim.run,
   Sim.run_renewal or the fault-injecting Sim_faults.run (which shares these
   counters and adds its own). *)
let m_replicas = Metrics.counter "sim.replicas"
let m_failures = Metrics.counter "sim.failures_injected"
let m_recoveries = Metrics.counter "sim.recoveries"
let h_lost_work = Metrics.histogram "sim.lost_work"

(* Task-replication counters: extra copies a replicated run placed, and
   attempts that lost at least one copy but survived on a sibling. *)
let m_replicas_placed = Metrics.counter "sim.replicas_placed"
let m_replica_saves = Metrics.counter "sim.replica_saves"

let record_run r ~recoveries =
  if Metrics.enabled () then begin
    Metrics.incr m_replicas;
    Metrics.add m_failures r.failures;
    Metrics.add m_recoveries recoveries;
    Metrics.observe h_lost_work r.wasted
  end;
  r

(* Shared state and replay-closure computation for all execution engines. *)
type state = {
  g : Wfc_dag.Dag.t;
  in_memory : bool array;
  on_disk : bool array;
  seen : bool array;  (* scratch for the closure walk *)
  mutable restored : int list;  (* outputs the current segment brings back *)
  mutable recoveries : int;  (* checkpoint reads performed during replays *)
}

let make_state g ~n =
  {
    g;
    in_memory = Array.make n false;
    on_disk = Array.make n false;
    seen = Array.make n false;
    restored = [];
    recoveries = 0;
  }

let weight st v = (Wfc_dag.Dag.task st.g v).Wfc_dag.Task.weight
let ckpt_cost st v = (Wfc_dag.Dag.task st.g v).Wfc_dag.Task.checkpoint_cost
let rec_cost st v = (Wfc_dag.Dag.task st.g v).Wfc_dag.Task.recovery_cost

(* Replay cost for task [v]: recover lost checkpointed ancestors, recompute
   lost plain ones (recursively). Fills [st.restored] with the outputs the
   segment will bring back to memory on success. [weight_of] prices a
   recomputation — replicated runs pass surcharged weights, since a replayed
   task re-runs with its replicas. *)
let replay_cost_weighted st ~weight_of v =
  st.restored <- [];
  Array.fill st.seen 0 (Array.length st.seen) false;
  let cost = ref 0. in
  let rec visit v =
    Array.iter
      (fun u ->
        if (not st.in_memory.(u)) && not st.seen.(u) then begin
          st.seen.(u) <- true;
          st.restored <- u :: st.restored;
          if st.on_disk.(u) then begin
            st.recoveries <- st.recoveries + 1;
            cost := !cost +. rec_cost st u
          end
          else begin
            cost := !cost +. weight_of u;
            visit u
          end
        end)
      (Wfc_dag.Dag.preds_array st.g v)
  in
  visit v;
  !cost

let replay_cost st v = replay_cost_weighted st ~weight_of:(weight st) v

let commit st v ~checkpointing =
  List.iter (fun u -> st.in_memory.(u) <- true) st.restored;
  st.in_memory.(v) <- true;
  if checkpointing then st.on_disk.(v) <- true

let wipe_memory st = Array.fill st.in_memory 0 (Array.length st.in_memory) false
let recoveries st = st.recoveries

(* A failure environment as seen by the blocking engine. [time_to_failure]
   returns the time until the next failure measured from now; [consume dt]
   tells the process that [dt] seconds elapsed without failure;
   [next_downtime] is drawn once per failure, before [after_failure] lets
   renewal processes redraw — the call order every engine (and every
   recording wrapper) relies on. *)
type source = {
  time_to_failure : unit -> float;
  consume : float -> unit;
  next_downtime : unit -> float;
  after_failure : unit -> unit;
}

let source_of_model ~rng model =
  let lambda = model.Wfc_platform.Failure_model.lambda in
  let downtime = model.Wfc_platform.Failure_model.downtime in
  {
    (* memoryless: a fresh draw per attempt is exact for exponential *)
    time_to_failure =
      (fun () ->
        if lambda = 0. then infinity
        else Wfc_platform.Rng.exponential rng ~rate:lambda);
    consume = (fun _ -> ());
    next_downtime = (fun () -> downtime);
    after_failure = (fun () -> ());
  }

let renewal_source ~rng ~failures ~downtime =
  (* countdown to the next failure: consumed by successful segments, redrawn
     after each repair (the repair renews the process) *)
  let remaining = ref (Wfc_platform.Distribution.sample failures rng) in
  {
    time_to_failure = (fun () -> !remaining);
    consume = (fun dt -> remaining := !remaining -. dt);
    next_downtime = (fun () -> Wfc_platform.Distribution.sample downtime rng);
    after_failure =
      (fun () -> remaining := Wfc_platform.Distribution.sample failures rng);
  }

(* Generic blocking-checkpoint engine, parametric in the failure source. *)
let run_with_source source g sched =
  if Wfc_core.Schedule.is_replicated sched then
    invalid_arg
      "Sim.run_with_source: replicated schedule needs failure lanes \
       (run_with_lanes)";
  let n = Wfc_core.Schedule.n_tasks sched in
  let st = make_state g ~n in
  let time = ref 0. and failures = ref 0 and wasted = ref 0. in
  for p = 0 to n - 1 do
    let v = Wfc_core.Schedule.task_at sched p in
    let checkpointing = Wfc_core.Schedule.is_checkpointed sched v in
    let finished = ref false in
    while not !finished do
      let replay = replay_cost st v in
      let segment =
        replay +. weight st v +. (if checkpointing then ckpt_cost st v else 0.)
      in
      let fail_after = source.time_to_failure () in
      if fail_after >= segment then begin
        time := !time +. segment;
        wasted := !wasted +. replay;
        source.consume segment;
        commit st v ~checkpointing;
        finished := true
      end
      else begin
        let downtime = source.next_downtime () in
        time := !time +. fail_after +. downtime;
        wasted := !wasted +. fail_after +. downtime;
        incr failures;
        wipe_memory st;
        source.after_failure ()
      end
    done
  done;
  record_run
    { makespan = !time; failures = !failures; wasted = !wasted }
    ~recoveries:st.recoveries

(* Multi-lane engine for replicated schedules: the task at each position
   runs [Schedule.replicas_of] independent copies, lane [j] of the attempt
   drawing from [lanes.(j)]. Lanes are polled in strict ascending order and
   each lane's outcome (consume, or downtime + renewal) is resolved before
   the next lane is queried, so a single recorded stream replays
   deterministically. The attempt is lost only when every copy fails; the
   loss is charged at the last copy's death, with that copy's downtime. With
   [lanes = [| s |]] and an unreplicated schedule this replays
   {!run_with_source}'s draws and float operations exactly. *)
let run_with_lanes ?(replica_cost = Wfc_core.Replication.default_cost) lanes g
    sched =
  let n = Wfc_core.Schedule.n_tasks sched in
  if Array.length lanes < Wfc_core.Schedule.max_replica_count sched then
    invalid_arg "Sim.run_with_lanes: fewer lanes than replicas";
  let st = make_state g ~n in
  let eff_w v =
    Wfc_core.Replication.effective_weight ~cost:replica_cost
      ~weight:(weight st v)
      ~r:(Wfc_core.Schedule.replicas_of sched v)
  in
  let time = ref 0. and failures = ref 0 and wasted = ref 0. in
  let saves = ref 0 in
  for p = 0 to n - 1 do
    let v = Wfc_core.Schedule.task_at sched p in
    let r = Wfc_core.Schedule.replicas_of sched v in
    let checkpointing = Wfc_core.Schedule.is_checkpointed sched v in
    let finished = ref false in
    while not !finished do
      let replay = replay_cost_weighted st ~weight_of:eff_w v in
      let segment =
        replay +. eff_w v +. (if checkpointing then ckpt_cost st v else 0.)
      in
      let survivors = ref 0 and losses = ref 0 in
      let last_death = ref neg_infinity and last_downtime = ref 0. in
      for j = 0 to r - 1 do
        let lane = lanes.(j) in
        let fail_after = lane.time_to_failure () in
        if fail_after >= segment then begin
          lane.consume segment;
          incr survivors
        end
        else begin
          let downtime = lane.next_downtime () in
          incr losses;
          if fail_after > !last_death then begin
            last_death := fail_after;
            last_downtime := downtime
          end;
          lane.after_failure ()
        end
      done;
      if !survivors > 0 then begin
        time := !time +. segment;
        wasted := !wasted +. replay;
        commit st v ~checkpointing;
        if !losses > 0 then incr saves;
        finished := true
      end
      else begin
        time := !time +. !last_death +. !last_downtime;
        wasted := !wasted +. !last_death +. !last_downtime;
        incr failures;
        wipe_memory st
      end
    done
  done;
  if Metrics.enabled () then begin
    Metrics.add m_replicas_placed (Wfc_core.Schedule.extra_replicas sched);
    Metrics.add m_replica_saves !saves
  end;
  record_run
    { makespan = !time; failures = !failures; wasted = !wasted }
    ~recoveries:st.recoveries

let run ?replica_cost ~rng model g sched =
  if Wfc_core.Schedule.is_replicated sched then
    (* one source per lane: sequential creation on a shared rng gives
       independent draws, and the memoryless source draws nothing before its
       first attempt *)
    let lanes =
      Array.init
        (Wfc_core.Schedule.max_replica_count sched)
        (fun _ -> source_of_model ~rng model)
    in
    run_with_lanes ?replica_cost lanes g sched
  else run_with_source (source_of_model ~rng model) g sched

let run_renewal ?replica_cost ~rng ~failures ~downtime g sched =
  if downtime < 0. then invalid_arg "Sim.run_renewal: negative downtime";
  let downtime = Wfc_platform.Distribution.Constant downtime in
  if Wfc_core.Schedule.is_replicated sched then
    (* renewal lanes draw their first countdown at creation, in lane order *)
    let lanes =
      Array.init
        (Wfc_core.Schedule.max_replica_count sched)
        (fun _ -> renewal_source ~rng ~failures ~downtime)
    in
    run_with_lanes ?replica_cost lanes g sched
  else run_with_source (renewal_source ~rng ~failures ~downtime) g sched
