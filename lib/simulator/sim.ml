type run = { makespan : float; failures : int; wasted : float }

module Metrics = Wfc_obs.Metrics

(* One flush per simulated replica, whichever engine ran it: Sim.run,
   Sim.run_renewal or the fault-injecting Sim_faults.run (which shares these
   counters and adds its own). *)
let m_replicas = Metrics.counter "sim.replicas"
let m_failures = Metrics.counter "sim.failures_injected"
let m_recoveries = Metrics.counter "sim.recoveries"
let h_lost_work = Metrics.histogram "sim.lost_work"

let record_run r ~recoveries =
  if Metrics.enabled () then begin
    Metrics.incr m_replicas;
    Metrics.add m_failures r.failures;
    Metrics.add m_recoveries recoveries;
    Metrics.observe h_lost_work r.wasted
  end;
  r

(* Shared state and replay-closure computation for all execution engines. *)
type state = {
  g : Wfc_dag.Dag.t;
  in_memory : bool array;
  on_disk : bool array;
  seen : bool array;  (* scratch for the closure walk *)
  mutable restored : int list;  (* outputs the current segment brings back *)
  mutable recoveries : int;  (* checkpoint reads performed during replays *)
}

let make_state g ~n =
  {
    g;
    in_memory = Array.make n false;
    on_disk = Array.make n false;
    seen = Array.make n false;
    restored = [];
    recoveries = 0;
  }

let weight st v = (Wfc_dag.Dag.task st.g v).Wfc_dag.Task.weight
let ckpt_cost st v = (Wfc_dag.Dag.task st.g v).Wfc_dag.Task.checkpoint_cost
let rec_cost st v = (Wfc_dag.Dag.task st.g v).Wfc_dag.Task.recovery_cost

(* Replay cost for task [v]: recover lost checkpointed ancestors, recompute
   lost plain ones (recursively). Fills [st.restored] with the outputs the
   segment will bring back to memory on success. *)
let replay_cost st v =
  st.restored <- [];
  Array.fill st.seen 0 (Array.length st.seen) false;
  let cost = ref 0. in
  let rec visit v =
    Array.iter
      (fun u ->
        if (not st.in_memory.(u)) && not st.seen.(u) then begin
          st.seen.(u) <- true;
          st.restored <- u :: st.restored;
          if st.on_disk.(u) then begin
            st.recoveries <- st.recoveries + 1;
            cost := !cost +. rec_cost st u
          end
          else begin
            cost := !cost +. weight st u;
            visit u
          end
        end)
      (Wfc_dag.Dag.preds_array st.g v)
  in
  visit v;
  !cost

let commit st v ~checkpointing =
  List.iter (fun u -> st.in_memory.(u) <- true) st.restored;
  st.in_memory.(v) <- true;
  if checkpointing then st.on_disk.(v) <- true

let wipe_memory st = Array.fill st.in_memory 0 (Array.length st.in_memory) false
let recoveries st = st.recoveries

(* A failure environment as seen by the blocking engine. [time_to_failure]
   returns the time until the next failure measured from now; [consume dt]
   tells the process that [dt] seconds elapsed without failure;
   [next_downtime] is drawn once per failure, before [after_failure] lets
   renewal processes redraw — the call order every engine (and every
   recording wrapper) relies on. *)
type source = {
  time_to_failure : unit -> float;
  consume : float -> unit;
  next_downtime : unit -> float;
  after_failure : unit -> unit;
}

let source_of_model ~rng model =
  let lambda = model.Wfc_platform.Failure_model.lambda in
  let downtime = model.Wfc_platform.Failure_model.downtime in
  {
    (* memoryless: a fresh draw per attempt is exact for exponential *)
    time_to_failure =
      (fun () ->
        if lambda = 0. then infinity
        else Wfc_platform.Rng.exponential rng ~rate:lambda);
    consume = (fun _ -> ());
    next_downtime = (fun () -> downtime);
    after_failure = (fun () -> ());
  }

let renewal_source ~rng ~failures ~downtime =
  (* countdown to the next failure: consumed by successful segments, redrawn
     after each repair (the repair renews the process) *)
  let remaining = ref (Wfc_platform.Distribution.sample failures rng) in
  {
    time_to_failure = (fun () -> !remaining);
    consume = (fun dt -> remaining := !remaining -. dt);
    next_downtime = (fun () -> Wfc_platform.Distribution.sample downtime rng);
    after_failure =
      (fun () -> remaining := Wfc_platform.Distribution.sample failures rng);
  }

(* Generic blocking-checkpoint engine, parametric in the failure source. *)
let run_with_source source g sched =
  let n = Wfc_core.Schedule.n_tasks sched in
  let st = make_state g ~n in
  let time = ref 0. and failures = ref 0 and wasted = ref 0. in
  for p = 0 to n - 1 do
    let v = Wfc_core.Schedule.task_at sched p in
    let checkpointing = Wfc_core.Schedule.is_checkpointed sched v in
    let finished = ref false in
    while not !finished do
      let replay = replay_cost st v in
      let segment =
        replay +. weight st v +. (if checkpointing then ckpt_cost st v else 0.)
      in
      let fail_after = source.time_to_failure () in
      if fail_after >= segment then begin
        time := !time +. segment;
        wasted := !wasted +. replay;
        source.consume segment;
        commit st v ~checkpointing;
        finished := true
      end
      else begin
        let downtime = source.next_downtime () in
        time := !time +. fail_after +. downtime;
        wasted := !wasted +. fail_after +. downtime;
        incr failures;
        wipe_memory st;
        source.after_failure ()
      end
    done
  done;
  record_run
    { makespan = !time; failures = !failures; wasted = !wasted }
    ~recoveries:st.recoveries

let run ~rng model g sched = run_with_source (source_of_model ~rng model) g sched

let run_renewal ~rng ~failures ~downtime g sched =
  if downtime < 0. then invalid_arg "Sim.run_renewal: negative downtime";
  run_with_source
    (renewal_source ~rng ~failures
       ~downtime:(Wfc_platform.Distribution.Constant downtime))
    g sched
