(** Adaptive online execution: re-estimate the failure rate from observed
    failures and re-optimize the rest of the schedule while it runs.

    The static pipeline fixes a linearization and checkpoint flags before
    the first failure. This executor runs the same blocking semantics as
    {!Sim.run_with_source} but, at failure boundaries, (1) re-estimates the
    platform's failure rate by maximum likelihood from everything observed
    so far — [failures / total uptime], where uptime counts completed
    segments and elapsed-at-failure times alike (the censored-exposure MLE
    for the exponential law) — and the mean of the observed downtimes, and
    (2) when the configured {!trigger} fires, hands the suffix of the
    schedule to a {!replan} callback together with the re-estimated model.
    The callback (typically {!Wfc_resilience.Solver_driver} — a callback
    keeps this library free of a dependency cycle) may re-flag and/or
    re-order the not-yet-completed tasks; the executed prefix is pinned.

    With [replan = None] the executor makes exactly the draws of
    {!Sim.run_with_source} on the same source and returns a bit-identical
    {!Sim.run} — pinned by a property test, and the reason adaptive and
    static policies can be scored on one recorded {!Trace_io} trace. *)

type trigger =
  | Every_failure  (** replan at every failure (once observable) *)
  | Every_k of int  (** replan every [k]-th failure *)
  | On_drift of float
      (** replan when the estimated rate drifts from the rate last planned
          for by at least this factor (in either direction):
          [max (l_hat /. l_plan, l_plan /. l_hat) >= f]. A fail-free belief
          ([l_plan = 0]) counts as infinitely drifted-from once a failure
          is observed. *)

type plan = { order : int array; flags : bool array }
(** A replanned suffix: the full (position -> task) order and per-task
    checkpoint flags. Positions [< from] must be untouched. *)

type replan =
  model:Wfc_platform.Failure_model.t ->
  order:int array ->
  flags:bool array ->
  from:int ->
  plan option
(** Called at a replan point with the re-estimated [model], the current
    order and flags (fresh copies) and the first not-yet-completed position
    [from]. Return [None] to keep the current schedule. *)

type config = {
  planning : Wfc_platform.Failure_model.t;
      (** the believed platform the initial schedule was optimized for —
          the baseline the drift trigger compares against *)
  trigger : trigger;
  min_observations : int;
      (** failures to observe before the first re-estimate/replan (the MLE
          needs data); at least 1 *)
  replan : replan option;  (** [None]: observe and estimate, never replan *)
}

val default_config : Wfc_platform.Failure_model.t -> config
(** [Every_failure], [min_observations = 3], no replanner. *)

type result = {
  run : Sim.run;  (** the executed makespan/failures/wasted *)
  replans : int;  (** replan callbacks that returned a new plan *)
  reestimates : int;  (** rate re-estimates performed *)
  estimated : Wfc_platform.Failure_model.t;
      (** final estimate; [planning] when nothing was ever observed *)
  final_order : int array;
  final_flags : bool array;  (** the schedule actually executed, by task *)
}

val run :
  ?extra_lanes:Sim.source array ->
  ?replica_cost:float ->
  config ->
  source:Sim.source ->
  Wfc_dag.Dag.t ->
  Wfc_core.Schedule.t ->
  result
(** Execute [sched] against [source] (live, or a {!Trace_io} replay — a
    renewal-kind trace makes two policies face byte-identical failures).

    A replicated schedule runs with the multi-lane semantics of
    {!Sim.run_with_lanes}: [source] drives copy 0 and [extra_lanes] the
    remaining copies (so an unreplicated candidate and a replicated one can
    share the primary failure stream). The MLE then observes {e every} lane
    — per-copy censored exposure and per-copy failures — while triggers and
    the reported run count effective failures (attempts where all copies
    died). Replica counts are fixed across replans.

    @raise Invalid_argument if the trigger is malformed ([Every_k k] with
      [k < 1], [On_drift f] with [f <= 1]), [min_observations < 1], a
      replan returns a plan that moves or re-flags completed positions or
      is not a linearization of the DAG, [source] and [extra_lanes] provide
      fewer lanes than {!Wfc_core.Schedule.max_replica_count}, or
      [extra_lanes] is non-empty for an unreplicated schedule. *)
