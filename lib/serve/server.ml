(* The scheduling service: a pure request dispatcher (usable in-process by
   tests and the bench) plus the socket serving loop around it.

   Responses must be byte-identical whether the warm-engine cache is on or
   off, across evaluation backends and across worker/domain counts — that
   is the regression contract the serve bench pins. Consequently:

   - the warm cache only short-circuits the engine {e build}; the search it
     feeds ([Heuristics.run ?engine]) is bit-identical to a cold run;
   - request deadlines map to solver budgets {e deterministically}
     (a node budget at a fixed calibration rate, never a wall-clock abort);
   - everything nondeterministic (latency, uptime, hit rates) is only
     reachable through the [Stats] endpoint. *)

module FM = Wfc_platform.Failure_model
module Stats = Wfc_platform.Stats
module Pool = Wfc_platform.Domain_pool.Pool
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module Dag = Wfc_dag.Dag
module Lin = Wfc_dag.Linearize
module H = Wfc_core.Heuristics
module E = Wfc_core.Eval_engine
module Key = Wfc_core.Engine_key
module Schedule = Wfc_core.Schedule
module Evaluator = Wfc_core.Evaluator
module LS = Wfc_core.Local_search
module Driver = Wfc_resilience.Solver_driver
module Robust = Wfc_resilience.Robust
module SA = Wfc_simulator.Sim_adaptive
module MC = Wfc_simulator.Monte_carlo
module Corpus = Wfc_corpus.Corpus
module Table = Wfc_reporting.Table
module Metrics = Wfc_obs.Metrics
module Cancel = Wfc_platform.Cancel
module Pr = Protocol

type config = {
  cache_size : int;  (* warm engines kept; 0 disables the cache *)
  queue_depth : int;  (* admission bound: queued + running compute jobs *)
  workers : int;  (* worker domains draining the queue *)
  domains : int;  (* corpus-sweep parallelism (never affects bytes) *)
  max_frame : int;
  exact_max_n : int;  (* deadline tiering: largest n going exact *)
  nodes_per_second : float;  (* deadline seconds -> node budget *)
  timeout : float option;
      (* per-request wall-clock watchdog (seconds); cancelled requests
         answer a structured [timeout]. None disables the watchdog. *)
}

let default_config =
  {
    cache_size = 32;
    queue_depth = 64;
    workers = 2;
    domains = 1;
    max_frame = Codec.default_max_frame;
    exact_max_n = 24;
    nodes_per_second = 20_000.;
    timeout = None;
  }

(* ---- per-endpoint stats (server-local, so tests stay isolated) -------- *)

let endpoints =
  [| "ping"; "solve"; "simulate"; "adapt"; "corpus"; "stats"; "sleep";
     "shutdown" |]

let endpoint_index = function
  | Pr.Ping -> 0
  | Pr.Solve _ -> 1
  | Pr.Simulate _ -> 2
  | Pr.Adapt _ -> 3
  | Pr.Corpus _ -> 4
  | Pr.Stats -> 5
  | Pr.Sleep _ -> 6
  | Pr.Shutdown -> 7

type ep_stats = {
  mutable count : int;
  mutable errors : int;
  lat_buckets : int array;  (* Metrics log-scale buckets, seconds *)
  mutable lat_count : int;
  mutable lat_sum : float;
}

type t = {
  config : config;
  cache : Engine_cache.t;
  mutex : Mutex.t;
  eps : ep_stats array;
  tiers : (string, int) Hashtbl.t;
  mutable busy_count : int;
  mutable timeout_count : int;
  engines_out : int Atomic.t;
      (* warm engines currently checked out of the cache: incremented at
         checkout, decremented in the check-in finalizer, so a non-zero
         value at rest IS a leak — the invariant the chaos soak pins *)
  mutable pool : Pool.t option;  (* attached by [serve] for stats *)
  started : float;
  stop : bool Atomic.t;
}

let create ?(config = default_config) () =
  {
    config;
    cache = Engine_cache.create ~capacity:config.cache_size;
    mutex = Mutex.create ();
    eps =
      Array.init (Array.length endpoints) (fun _ ->
          {
            count = 0;
            errors = 0;
            lat_buckets = Array.make Metrics.n_buckets 0;
            lat_count = 0;
            lat_sum = 0.;
          });
    tiers = Hashtbl.create 4;
    busy_count = 0;
    timeout_count = 0;
    engines_out = Atomic.make 0;
    pool = None;
    started = Unix.gettimeofday ();
    stop = Atomic.make false;
  }

let cache_stats t = Engine_cache.stats t.cache
let stopping t = Atomic.get t.stop

let mcounter name = Metrics.incr (Metrics.counter name)

let note_busy t =
  Mutex.protect t.mutex (fun () -> t.busy_count <- t.busy_count + 1);
  mcounter "serve.busy"

let note_timeout t =
  Mutex.protect t.mutex (fun () -> t.timeout_count <- t.timeout_count + 1);
  mcounter "serve.timeouts"

let engines_outstanding t = Atomic.get t.engines_out

let note_tier t tier =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.replace t.tiers tier
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.tiers tier)));
  mcounter ("serve.tier." ^ tier)

let err code message = Pr.Error { code; message }

(* ---- solve ------------------------------------------------------------ *)

let dag_of_spec = function
  | Pr.Generated { family; n; seed; cost } ->
      if n < P.min_size family then
        Stdlib.Error
          (Printf.sprintf "%s needs at least %d tasks" (P.family_name family)
             (P.min_size family))
      else Ok (CM.apply cost (P.generate family ~n ~seed))
  | Pr.Inline { name; text; cost } ->
      Result.map (CM.ensure cost) (Wfc_io.Workflow_io.load_string ~path:name text)
  | Pr.File { path; cost } ->
      Result.map (CM.ensure cost) (Wfc_io.Workflow_io.load path)

(* Deadline seconds -> solver tier, deterministically: the budget is a node
   count at a fixed calibration rate, so the same request always gets the
   same tier and the same answer — a deliberate trade against wall-clock
   accuracy (an unlucky instance can overrun its deadline; it can never
   return different bytes). *)
let deadline_plan cfg ~n d =
  let nodes = int_of_float (Float.min (d *. cfg.nodes_per_second) 1e9) in
  if nodes >= 500 && n <= cfg.exact_max_n then `Exact nodes
  else if nodes >= 100 then `Local_search (Int.min 2000 nodes)
  else `Heuristic

(* Warm-engine checkout around a solve: [take] removes the cached engine
   (two workers must never share one — a concurrent same-key request just
   builds cold), the solve runs, and check-in re-inserts at MRU.

   Crash-only discipline: the check-in finalizer is installed the moment an
   engine exists and nothing else runs between checkout and [Fun.protect] —
   a handler exception (including a watchdog [Cancelled]), a crashing
   worker or a vanished client can never strand a warm engine. The paired
   [engines_out] counter is the observable pin: it is non-zero only while a
   checkout is live, so [cache.outstanding] in [stats] must read 0 at
   rest. *)
let checked_out t key engine counter f =
  Atomic.incr t.engines_out;
  Fun.protect
    ~finally:(fun () ->
      Engine_cache.put t.cache key engine;
      Atomic.decr t.engines_out)
    (fun () ->
      mcounter counter;
      f (Some engine))

let with_engine t (p : Pr.solve_params) model g ~order f =
  if Engine_cache.capacity t.cache = 0 || p.backend = E.Naive then f None
  else begin
    let key = Key.make p.backend model g ~order in
    match Engine_cache.take t.cache key with
    | Some h -> checked_out t key h "serve.cache.hit" f
    | None ->
        let h = E.handle p.backend model g ~order in
        checked_out t key h "serve.cache.miss" f
  end

let run_solve t ~cancel (p : Pr.solve_params) =
  match dag_of_spec p.workflow with
  | Stdlib.Error msg -> Stdlib.Error msg
  | Ok g ->
      let model = FM.of_mtbf ~mtbf:p.mtbf ~downtime:p.downtime () in
      let order = Lin.run p.lin g in
      let search = if p.grid <= 0 then H.Exhaustive else H.Grid p.grid in
      let heuristic = H.name p.lin p.ckpt in
      let finish ~tier ~evaluations sched makespan =
        note_tier t tier;
        let tinf = Evaluator.fail_free_time g in
        ( {
            Pr.source = Pr.spec_source p.workflow;
            n_tasks = Dag.n_tasks g;
            heuristic;
            tier;
            makespan;
            ratio = (if tinf > 0. then makespan /. tinf else 1.);
            n_ckpt = Schedule.checkpoint_count sched;
            ckpt_tasks = Schedule.checkpointed_tasks sched;
            evaluations;
          },
          sched,
          g,
          model )
      in
      let heuristic_tier () =
        with_engine t p model g ~order (fun engine ->
            let o =
              H.run ~search ~backend:p.backend ?engine ~cancel model g
                ~lin:p.lin ~ckpt:p.ckpt
            in
            finish ~tier:(Driver.tier_name Driver.Heuristic)
              ~evaluations:o.H.evaluations o.H.schedule o.H.makespan)
      in
      let plan =
        match p.deadline with
        | None -> `Heuristic
        | Some d -> deadline_plan t.config ~n:(Dag.n_tasks g) d
      in
      Ok
        (match plan with
        | `Heuristic -> heuristic_tier ()
        | `Local_search evals ->
            with_engine t p model g ~order (fun engine ->
                let o =
                  H.run ~search ~backend:p.backend ?engine ~cancel model g
                    ~lin:p.lin ~ckpt:p.ckpt
                in
                let ls =
                  LS.improve ~max_evaluations:evals ~backend:p.backend ~cancel
                    model g o.H.schedule
                in
                finish
                  ~tier:(Driver.tier_name Driver.Local_search)
                  ~evaluations:(o.H.evaluations + ls.LS.evaluations)
                  ls.LS.schedule ls.LS.makespan)
        | `Exact nodes ->
            let config =
              { Driver.default_config with
                Driver.max_nodes = nodes;
                search;
                backend = p.backend;
              }
            in
            let r = Driver.solve ~config ~cancel model g ~order in
            finish ~tier:(Driver.tier_name r.Driver.tier) ~evaluations:r.Driver.nodes
              r.Driver.schedule r.Driver.makespan)

(* ---- the other compute endpoints -------------------------------------- *)

let run_simulate t ~cancel (p : Pr.solve_params) ~runs ~mcseed =
  Result.map
    (fun (solved, sched, g, model) ->
      let est = MC.estimate ~runs ~seed:mcseed model g sched in
      let ci_lo, ci_hi = Stats.confidence95 est.MC.makespan in
      {
        Pr.solved;
        runs;
        sim_mean = Stats.mean est.MC.makespan;
        ci_lo;
        ci_hi;
        failures_mean = Stats.mean est.MC.failures;
      })
    (run_solve t ~cancel p)

let run_adapt t ~cancel (p : Pr.solve_params) ~true_mtbf ~traces ~mcseed =
  Result.map
    (fun ((solved : Pr.solved), sched, g, planning) ->
      let truth = FM.of_mtbf ~mtbf:true_mtbf ~downtime:p.downtime () in
      let scenarios = Robust.default_scenarios truth in
      let replanner = Driver.replanner ~backend:p.backend g in
      let config =
        { (SA.default_config planning) with SA.replan = Some replanner }
      in
      let candidates =
        [
          Robust.static ~name:solved.Pr.heuristic g sched;
          Robust.adaptive ~name:"adaptive" config g sched;
        ]
      in
      let min_uptime = 200. *. Dag.total_weight g in
      let r =
        Robust.evaluate ~traces_per_scenario:traces ~seed:mcseed ~min_uptime
          ~criterion:(Robust.CVaR 0.95) ~scenarios candidates
      in
      {
        Pr.asource = solved.Pr.source;
        winner = r.Robust.winner.Robust.candidate;
        policies =
          List.map
            (fun (s : Robust.score) ->
              (s.Robust.candidate, s.Robust.mean, s.Robust.cvar, s.Robust.worst))
            r.Robust.scores;
      })
    (run_solve t ~cancel p)

let run_corpus t ~dir ~ratios ~grid ~backend =
  match Corpus.load_dir ~cost:(CM.Proportional 0.1) dir with
  | Stdlib.Error msg -> err Pr.Bad_request msg
  | Ok ([], _) -> err Pr.Bad_request ("no workflow files in " ^ dir)
  | Ok (instances, skipped) ->
      let config =
        { Corpus.default_config with
          Corpus.scenarios = List.map (fun r -> Corpus.Relative r) ratios;
          search = (if grid <= 0 then H.Exhaustive else H.Grid grid);
          backend;
          domains = t.config.domains;
        }
      in
      let report = Corpus.sweep ~config ~skipped instances in
      let buf = Buffer.create 1024 in
      List.iter
        (fun (path, msg) ->
          Buffer.add_string buf (Printf.sprintf "skipped %s: %s\n" path msg))
        report.Corpus.skipped;
      List.iter
        (fun (name, table) ->
          Buffer.add_string buf (name ^ "\n");
          Buffer.add_string buf (Table.render table);
          Buffer.add_char buf '\n')
        (Corpus.tables report);
      Pr.Corpus_report
        {
          instances = List.length instances;
          scenarios = List.length report.Corpus.scenario_names;
          text = Buffer.contents buf;
        }

(* ---- stats endpoint ---------------------------------------------------- *)

let stats_rows t =
  let cs = Engine_cache.stats t.cache in
  let uptime = Unix.gettimeofday () -. t.started in
  Mutex.protect t.mutex (fun () ->
      let rows = ref [] in
      let add name value = rows := (name, value) :: !rows in
      let addi name v = add name (string_of_int v) in
      (* deterministic rows first: cram output pins these and filters the
         latency/uptime tail *)
      addi "workers" t.config.workers;
      addi "queue.depth" t.config.queue_depth;
      addi "cache.capacity" cs.Engine_cache.capacity;
      addi "cache.size" cs.Engine_cache.size;
      addi "cache.hits" cs.Engine_cache.hits;
      addi "cache.misses" cs.Engine_cache.misses;
      addi "cache.evictions" cs.Engine_cache.evictions;
      addi "cache.puts" cs.Engine_cache.puts;
      (* checked-out engines right now: 0 at rest, or something leaked *)
      addi "cache.outstanding" (Atomic.get t.engines_out);
      Array.iteri
        (fun i (ep : ep_stats) ->
          if ep.count > 0 then addi ("requests." ^ endpoints.(i)) ep.count)
        t.eps;
      Array.iteri
        (fun i (ep : ep_stats) ->
          if ep.errors > 0 then addi ("errors." ^ endpoints.(i)) ep.errors)
        t.eps;
      if t.busy_count > 0 then addi "busy" t.busy_count;
      if t.timeout_count > 0 then addi "timeouts" t.timeout_count;
      (match t.pool with
      | Some pool ->
          let r = Pool.restarts pool in
          if r > 0 then addi "pool.restarts" r
      | None -> ());
      Hashtbl.fold (fun tier n acc -> (tier, n) :: acc) t.tiers []
      |> List.sort compare
      |> List.iter (fun (tier, n) -> addi ("tier." ^ tier) n);
      (* nondeterministic tail *)
      add "uptime_s" (Printf.sprintf "%.1f" uptime);
      let total = Array.fold_left (fun acc ep -> acc + ep.count) 0 t.eps in
      add "qps"
        (Printf.sprintf "%.1f"
           (if uptime > 0. then float_of_int total /. uptime else 0.));
      Array.iteri
        (fun i (ep : ep_stats) ->
          if ep.lat_count > 0 then begin
            let snap =
              {
                Metrics.hcount = ep.lat_count;
                hsum = ep.lat_sum;
                buckets = Array.copy ep.lat_buckets;
              }
            in
            let q p = 1000. *. Metrics.hist_quantile snap p in
            add
              (Printf.sprintf "latency.%s.p50_ms" endpoints.(i))
              (Printf.sprintf "%.3f" (q 0.5));
            add
              (Printf.sprintf "latency.%s.p99_ms" endpoints.(i))
              (Printf.sprintf "%.3f" (q 0.99))
          end)
        t.eps;
      List.rev !rows)

(* ---- dispatch ---------------------------------------------------------- *)

(* Ping, Stats and Shutdown are control plane: answered inline by the
   socket layer and never armed with a watchdog. *)
let inline_request = function
  | Pr.Ping | Pr.Stats | Pr.Shutdown -> true
  | Pr.Solve _ | Pr.Simulate _ | Pr.Adapt _ | Pr.Corpus _ | Pr.Sleep _ ->
      false

let dispatch t ~cancel req =
  match Pr.validate req with
  | Stdlib.Error msg -> err Pr.Bad_request msg
  | Ok () -> (
      match req with
      | Pr.Ping -> Pr.Pong
      | Pr.Stats -> Pr.Stats_report (stats_rows t)
      | Pr.Shutdown ->
          Atomic.set t.stop true;
          Pr.Bye
      | Pr.Sleep s ->
          (* sleep in short slices so the watchdog can interrupt; the
             response reports the requested duration, so a non-cancelled
             sleep answers the same bytes as an unsliced one *)
          let rec nap remaining =
            Cancel.check cancel;
            if remaining > 0. then begin
              Unix.sleepf (Float.min 0.01 remaining);
              nap (remaining -. 0.01)
            end
          in
          nap s;
          Pr.Slept s
      | Pr.Solve p -> (
          match run_solve t ~cancel p with
          | Ok (solved, _, _, _) -> Pr.Solved solved
          | Stdlib.Error msg -> err Pr.Bad_request msg)
      | Pr.Simulate { params; runs; mcseed } -> (
          match run_simulate t ~cancel params ~runs ~mcseed with
          | Ok s -> Pr.Simulated s
          | Stdlib.Error msg -> err Pr.Bad_request msg)
      | Pr.Adapt { params; true_mtbf; traces; mcseed } -> (
          match run_adapt t ~cancel params ~true_mtbf ~traces ~mcseed with
          | Ok a -> Pr.Adapted a
          | Stdlib.Error msg -> err Pr.Bad_request msg)
      | Pr.Corpus { dir; ratios; grid; backend } ->
          run_corpus t ~dir ~ratios ~grid ~backend)

let handle ?cancel t req =
  let i = endpoint_index req in
  Mutex.protect t.mutex (fun () -> t.eps.(i).count <- t.eps.(i).count + 1);
  mcounter ("serve.requests." ^ endpoints.(i));
  let hist = Metrics.histogram ("serve.latency." ^ endpoints.(i)) in
  (* the watchdog arms compute requests only; its budget is wall-clock but
     the [timeout] message is deterministic (the budget, never the elapsed
     time), so cancelled responses are pinnable too *)
  let budget = t.config.timeout in
  let cancel =
    match cancel with
    | Some c -> c
    | None -> (
        match budget with
        | Some s when not (inline_request req) -> Cancel.create ~budget:s ()
        | _ -> Cancel.never)
  in
  let t0 = Unix.gettimeofday () in
  let resp =
    Metrics.time hist (fun () ->
        try dispatch t ~cancel req with
        | Cancel.Cancelled ->
            note_timeout t;
            err Pr.Timeout
              (match budget with
              | Some s ->
                  Printf.sprintf "request exceeded its %gs compute budget" s
              | None -> "request cancelled by watchdog")
        | exn -> err Pr.Internal (Printexc.to_string exn))
  in
  let dt = Unix.gettimeofday () -. t0 in
  Mutex.protect t.mutex (fun () ->
      let ep = t.eps.(i) in
      let b = Metrics.bucket_of dt in
      ep.lat_buckets.(b) <- ep.lat_buckets.(b) + 1;
      ep.lat_count <- ep.lat_count + 1;
      ep.lat_sum <- ep.lat_sum +. dt;
      if Pr.is_error resp then ep.errors <- ep.errors + 1);
  resp

(* ---- socket layer ------------------------------------------------------ *)

type listen = Tcp of int | Unix_sock of string

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

(* Tiny buffered reader: lets the first-byte mode sniff push the byte back,
   serves both line reads (text mode) and the Codec read contract. *)
type bufreader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
}

let bufreader fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0 }

let refill br =
  let n = Unix.read br.fd br.buf 0 (Bytes.length br.buf) in
  br.pos <- 0;
  br.len <- n;
  n

let read_byte br =
  if br.pos < br.len then begin
    let c = Bytes.get br.buf br.pos in
    br.pos <- br.pos + 1;
    Some c
  end
  else if refill br = 0 then None
  else begin
    let c = Bytes.get br.buf 0 in
    br.pos <- 1;
    Some c
  end

let unread_byte br = br.pos <- br.pos - 1

let reader_fn br buf off len =
  if br.pos < br.len then begin
    let n = Int.min len (br.len - br.pos) in
    Bytes.blit br.buf br.pos buf off n;
    br.pos <- br.pos + n;
    n
  end
  else Unix.read br.fd buf off len

let read_line br =
  let b = Buffer.create 80 in
  let rec go () =
    match read_byte br with
    | None -> if Buffer.length b = 0 then None else Some (Buffer.contents b)
    | Some '\n' -> Some (Buffer.contents b)
    | Some '\r' -> go ()
    | Some c ->
        Buffer.add_char b c;
        go ()
  in
  go ()

type conn = {
  cfd : Unix.file_descr;
  wmutex : Mutex.t;  (* workers and the reader interleave whole responses *)
  pmutex : Mutex.t;
  done_cond : Condition.t;
  mutable pending : int;  (* jobs admitted for this connection, not yet sent *)
}

let send_binary conn ~id resp =
  Mutex.protect conn.wmutex (fun () ->
      write_all conn.cfd (Codec.frame (Codec.encode_response ~id resp)))

(* Text framing: `ok ID` + body + `.`, or a single `error ID CODE MESSAGE`
   line. The client sorts blocks by ID, so pipelined cram output is
   deterministic even when jobs complete out of order. *)
let send_text conn ~id resp =
  let block =
    match resp with
    | Pr.Error { code; message } ->
        Printf.sprintf "error %Ld %s %s\n" id (Pr.error_code_name code) message
    | _ ->
        let b = Buffer.create 256 in
        Buffer.add_string b (Printf.sprintf "ok %Ld\n" id);
        List.iter
          (fun l ->
            Buffer.add_string b l;
            Buffer.add_char b '\n')
          (Pr.render_response resp);
        Buffer.add_string b ".\n";
        Buffer.contents b
  in
  Mutex.protect conn.wmutex (fun () -> write_all conn.cfd block)

let job_done conn =
  Mutex.protect conn.pmutex (fun () ->
      conn.pending <- conn.pending - 1;
      Condition.signal conn.done_cond)

(* Ping, Stats and Shutdown answer inline from the reader thread — the
   control plane stays responsive while the queue sheds compute load. *)
let process t pool conn ~send ~id req =
  if inline_request req then send ~id (handle t req)
  else if Atomic.get t.stop then
    send ~id (err Pr.Stopping "server is shutting down")
  else begin
    Mutex.protect conn.pmutex (fun () -> conn.pending <- conn.pending + 1);
    let job () =
      Fun.protect
        ~finally:(fun () -> job_done conn)
        (fun () ->
          let resp = handle t req in
          try send ~id resp with _ -> ())
    in
    if not (Pool.try_submit pool job) then begin
      job_done conn;
      note_busy t;
      send ~id
        (err Pr.Busy
           (Printf.sprintf "queue full (%d outstanding, depth %d)"
              (Pool.outstanding pool) (Pool.depth pool)))
    end
  end

let binary_loop t pool conn br =
  let read = reader_fn br in
  let rec loop () =
    match Codec.read_frame ~max_frame:t.config.max_frame read with
    | Ok None -> ()
    | Stdlib.Error msg ->
        (* the stream is no longer frame-aligned: answer once and drop *)
        let code =
          if String.length msg >= 15 && String.sub msg 0 15 = "frame too large"
          then Pr.Too_large
          else Pr.Bad_request
        in
        (try send_binary conn ~id:0L (err code msg) with _ -> ())
    | Ok (Some payload) -> (
        match Codec.decode_request payload with
        | Stdlib.Error msg ->
            (* framing is still aligned: report and keep the connection *)
            send_binary conn ~id:0L (err Pr.Bad_request msg);
            loop ()
        | Ok (id, req) ->
            process t pool conn ~send:(send_binary conn) ~id req;
            loop ())
  in
  loop ()

let text_loop t pool conn br =
  let next_id = ref 0L in
  let rec loop () =
    match read_line br with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line ->
        next_id := Int64.add !next_id 1L;
        let id = !next_id in
        (match Pr.request_of_line line with
        | Stdlib.Error msg -> send_text conn ~id (err Pr.Bad_request msg)
        | Ok req -> process t pool conn ~send:(send_text conn) ~id req);
        loop ()
  in
  loop ()

let handle_conn t pool fd =
  let conn =
    {
      cfd = fd;
      wmutex = Mutex.create ();
      pmutex = Mutex.create ();
      done_cond = Condition.create ();
      pending = 0;
    }
  in
  let br = bufreader fd in
  (try
     match read_byte br with
     | None -> ()
     | Some '\000' ->
         unread_byte br;
         binary_loop t pool conn br
     | Some _ ->
         unread_byte br;
         text_loop t pool conn br
   with _ -> ());
  (* responses may still be in flight on worker domains: close only once
     every admitted job for this connection has sent *)
  Mutex.protect conn.pmutex (fun () ->
      while conn.pending > 0 do
        Condition.wait conn.done_cond conn.pmutex
      done);
  try Unix.close fd with _ -> ()

let bind_listener = function
  | Tcp port -> (
      try
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen fd 64;
        let port =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        Ok (fd, (fun () -> ()), Printf.sprintf "127.0.0.1:%d" port)
      with Unix.Unix_error (e, _, _) ->
        Stdlib.Error
          (Printf.sprintf "cannot listen on port %d: %s" port
             (Unix.error_message e)))
  | Unix_sock path -> (
      if Sys.file_exists path then
        Stdlib.Error (Printf.sprintf "socket path %s already exists" path)
      else
        try
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.bind fd (Unix.ADDR_UNIX path);
          Unix.listen fd 64;
          Ok (fd, (fun () -> try Sys.remove path with Sys_error _ -> ()), path)
        with Unix.Unix_error (e, _, _) ->
          Stdlib.Error
            (Printf.sprintf "cannot listen on %s: %s" path
               (Unix.error_message e)))

let serve ?(config = default_config) ?(ready = fun _ -> ()) listen_on =
  (* a client vanishing mid-response must be an EPIPE, not a fatal signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match bind_listener listen_on with
  | Stdlib.Error _ as e -> e
  | Ok (sock, cleanup, desc) ->
      let t = create ~config () in
      let pool = Pool.create ~workers:config.workers ~depth:config.queue_depth in
      t.pool <- Some pool;
      ready desc;
      let rec accept_loop () =
        if not (Atomic.get t.stop) then begin
          (match Unix.select [ sock ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept sock with
              | fd, _ ->
                  ignore (Thread.create (fun () -> handle_conn t pool fd) ())
              | exception Unix.Unix_error _ -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      (* drain: every admitted job still answers before the process exits *)
      Pool.shutdown ~drain:true pool;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      cleanup ();
      Ok ()
