(** Deterministic socket fault injection for [wfc serve].

    {!start} runs an in-process TCP proxy between a client and a live
    daemon and applies a {!spec} — a list of byte-level faults — to the
    streams it forwards: tearing the request at an exact byte offset,
    XOR-corrupting a request byte, delaying or trickling the request
    bytes, and hard-resetting the connection mid-response. Every fault is
    positioned by byte offset or fixed duration and specs are derived from
    integer seeds ({!random}), so a failing chaos run replays exactly from
    its seed.

    {!soak} drives hundreds of seeded schedules against a daemon and
    checks the crash-only serving invariants: every request that completes
    is byte-identical to its chaos-free twin, damaged exchanges fail
    structurally (a framing/decode error or a torn connection, never a
    hang or an exception), and afterwards the daemon still answers pings
    with zero warm engines checked out. *)

(** One byte-level fault. Offsets count from byte 0 of the stream in the
    stated direction; faults beyond the stream's length never fire. *)
type fault =
  | Tear of int
      (** forward exactly this many request bytes, then half-close the
          server side (the daemon sees a mid-frame EOF) *)
  | Reset of int
      (** after forwarding this many response bytes, shut the connection
          down in both directions (the client sees a truncated reply) *)
  | Corrupt of int * int
      (** [Corrupt (off, mask)]: XOR the request byte at offset [off]
          with [mask] (1–255) *)
  | Delay of float  (** seconds to sleep before the first forwarded byte *)
  | Trickle of int
      (** forward the request in writes of at most this many bytes *)

type spec = fault list
(** Applied together on one connection; [[]] is a transparent proxy. *)

val to_string : spec -> string
(** Round-trips through {!of_string}. [[]] prints as ["none"]. *)

val of_string : string -> (spec, string) result
(** Parse the comma-separated grammar
    [tear@K | reset@K | corrupt@K\[:MASK\] | delay:MS | trickle:N | none]:
    offsets are non-negative bytes, [MASK] (default 255) is 1–255, [MS]
    is a non-negative duration in milliseconds, [N] is a positive chunk
    size. Unknown faults, malformed numbers and out-of-range values are
    [Error]s (the [wfc chaos] CLI turns them into usage failures). *)

val random : seed:int -> spec
(** Derive a spec from a seed via {!Wfc_platform.Rng} (equal seeds yield
    equal specs): one or two faults with offsets sized to the serve
    protocol's small frames. *)

type proxy

val start : target:Server.listen -> spec -> (proxy, string) result
(** Listen on a fresh loopback TCP port and forward every accepted
    connection to [target] with the spec's faults applied. Faults are
    per-connection: each connection gets the full schedule from offset 0. *)

val listen : proxy -> Server.listen
(** Where clients should connect ([Tcp port]). *)

val stop : proxy -> unit
(** Close the listener and every live connection; idempotent. *)

type report = {
  runs : int;  (** chaos exchanges attempted *)
  completed : int;  (** replies byte-identical to the chaos-free reference *)
  mismatched : int;
      (** completed replies whose bytes differ from the reference — the
          invariant violation; must be 0 *)
  structured : int;
      (** exchanges that failed with a structured transport error
          (framing, decode, garbled header) *)
  torn : int;  (** exchanges cut short: fewer replies than requests *)
  alive : bool;  (** the daemon still answers a ping after the soak *)
  leaked : int;
      (** warm engines still checked out afterwards ([cache.outstanding]
          from the stats endpoint); must be 0 *)
}

val soak :
  ?lines:string list ->
  ?recv_timeout:float ->
  ?spec:spec ->
  target:Server.listen ->
  seeds:int list ->
  unit ->
  report
(** For each seed: derive {!random}[ ~seed] (or use [spec] for every run
    when given — the replay knob of [wfc chaos --spec]), proxy it in front of
    [target] and run one {!Client.exchange} of [lines] through the proxy
    (even seeds use text mode, odd seeds binary, so both transports face
    every fault class), classifying the outcome against a chaos-free
    reference exchange captured once per mode. Client sockets carry a
    [recv_timeout]-second receive timeout (default 10) so a hung daemon
    fails the run instead of blocking the soak. Afterwards [alive] and
    [leaked] are probed over a direct connection. Runs are independent:
    every proxy is stopped before the next seed starts. *)
