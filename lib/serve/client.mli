(** Client side of [wfc request].

    Ships a batch of text-mode request lines over one connection — as text
    lines or as binary frames ([binary]) — and returns the responses sorted
    by request id, so pipelined output is deterministic even when the
    server's workers complete out of order. Binary mode parses the same
    lines locally, encodes them through {!Codec} and renders decoded
    responses with {!Protocol.render_response}: text and binary transcripts
    of the same batch are byte-comparable. *)

type reply = {
  rid : int64;
  body : (string list, string) result;
      (** [Ok lines] rendered body; [Error "CODE MESSAGE"] for error
          responses *)
}

val connect :
  ?retry:float -> Server.listen -> (Unix.file_descr, string) result
(** Connect to the daemon, retrying connection-refused / not-found with
    capped exponential backoff — sleeps of 50 ms doubling to a flat
    800 ms, deterministic (no jitter) — until at most [retry] seconds
    (default 5) have been spent sleeping; lets scripts race the daemon's
    startup without hammering the listener. Any other connect error, or
    budget exhaustion, returns [Error]. *)

val exchange : ?binary:bool -> Unix.file_descr -> string list -> reply list
(** Send every line, half-close the write side, read until EOF or all
    responses arrive. The caller closes the descriptor.

    Damage never passes silently: a text body cut off before its ["."]
    terminator, a truncated binary frame, or an undecodable payload all
    come back as [Error] replies (truncated/framing/decode) — an [Ok]
    body is always a complete response, which is what lets the chaos
    soak hold completed replies to byte-identity. *)
