(** Request/response vocabulary of [wfc serve].

    One set of types is shared by the binary codec ({!Codec}), the
    line-oriented text mode and the in-process dispatcher ({!Server.handle}).
    The types themselves carry no semantic invariants — {!validate} is the
    single gate both transports pass through before dispatch, so a bad
    parameter produces the same structured [bad-request] whether it arrived
    as a binary frame or as a text line. *)

type workflow_spec =
  | Generated of {
      family : Wfc_workflows.Pegasus.family;
      n : int;
      seed : int;
      cost : Wfc_workflows.Cost_model.t;
    }
  | Inline of { name : string; text : string; cost : Wfc_workflows.Cost_model.t }
      (** a workflow file shipped inside the request; any format
          {!Wfc_io.Workflow_io.load_string} can sniff *)
  | File of { path : string; cost : Wfc_workflows.Cost_model.t }
      (** a server-side path, loaded like [corpus] directories *)

type solve_params = {
  workflow : workflow_spec;
  mtbf : float;
  downtime : float;
  lin : Wfc_dag.Linearize.strategy;
  ckpt : Wfc_core.Heuristics.ckpt_strategy;
  grid : int;  (** 0 = exhaustive checkpoint-count search *)
  backend : Wfc_core.Eval_engine.backend;
  deadline : float option;
      (** compute budget in seconds; mapped deterministically onto the
          solver-driver tiers (never a wall-clock abort, so responses stay
          byte-stable) *)
}

type request =
  | Ping
  | Solve of solve_params
  | Simulate of { params : solve_params; runs : int; mcseed : int }
  | Adapt of {
      params : solve_params;
      true_mtbf : float;
      traces : int;
      mcseed : int;
    }
  | Corpus of {
      dir : string;
      ratios : float list;
      grid : int;
      backend : Wfc_core.Eval_engine.backend;
    }
  | Stats
  | Sleep of float  (** seconds; deterministic load for tests and bench *)
  | Shutdown

type error_code =
  | Bad_request
  | Busy
  | Too_large
  | Internal
  | Stopping
  | Timeout
      (** the per-request watchdog cancelled a runaway compute job —
          distinct from [Busy] (refused at admission, nothing was
          computed): a [Timeout] request was admitted, ran, and was
          aborted mid-compute *)

val error_code_name : error_code -> string
(** "bad-request", "busy", "too-large", "internal", "stopping" or
    "timeout". *)

val error_code_of_string : string -> error_code option

(** Responses deliberately carry no timing, cache or backend fields: a warm
    solve must be byte-identical to a cold one (and identical across
    engines), so everything nondeterministic lives in the [Stats] endpoint
    only. *)
type solved = {
  source : string;
  n_tasks : int;
  heuristic : string;
  tier : string;
  makespan : float;
  ratio : float;
  n_ckpt : int;
  ckpt_tasks : int list;
  evaluations : int;
}

type simulated = {
  solved : solved;
  runs : int;
  sim_mean : float;
  ci_lo : float;
  ci_hi : float;
  failures_mean : float;
}

type adapted = {
  asource : string;
  winner : string;
  policies : (string * float * float * float) list;
      (** policy, mean, cvar\@0.95, worst *)
}

type response =
  | Pong
  | Solved of solved
  | Simulated of simulated
  | Adapted of adapted
  | Corpus_report of { instances : int; scenarios : int; text : string }
  | Stats_report of (string * string) list
  | Slept of float
  | Bye
  | Error of { code : error_code; message : string }

val validate : request -> (unit, string) result
(** Semantic validation (positive MTBF, positive deadline, bounded sleep,
    non-empty ratio lists, …). Both transports call this before dispatch;
    an [Error msg] becomes a [bad-request] response. *)

val max_inline_bytes : int
(** Size cap on [Inline] workflow text (8 MiB). *)

val spec_source : workflow_spec -> string
(** Display name: ["montage-30"], the inline name, or the file path. *)

val default_solve : solve_params
(** Text-mode defaults: montage n=30 seed=42 cost=0.1w mtbf=1000 downtime=0
    lin=DF ckpt=CkptW grid=0 engine=incremental, no deadline. *)

val request_of_line : string -> (request, string) result
(** Parse one text-mode line, e.g.
    ["solve family=montage n=30 mtbf=500 ckpt=CkptW grid=8 engine=flat"].
    Unknown commands, unknown keys and unparsable values are [Error]s;
    semantic range checks are left to {!validate}. *)

val render_response : response -> string list
(** Body lines of a response (no header, no ["."] terminator — the server
    frames them). Fixed formats, so cram output is pinnable. *)

val is_error : response -> bool
