(* Deterministic socket fault injection: an in-process TCP proxy that
   damages the byte streams between a client and a live daemon at exact
   byte offsets, plus the seeded soak harness that checks the crash-only
   serving invariants against hundreds of derived fault schedules.

   Faults are positioned by byte offset (not time), and seeds map to specs
   through the repo's SplitMix64 generator, so a failing soak run replays
   exactly from its seed — the whole point of chaos testing a daemon whose
   regression contract is byte-identity. *)

module Pr = Protocol
module Rng = Wfc_platform.Rng
module Metrics = Wfc_obs.Metrics

type fault =
  | Tear of int
  | Reset of int
  | Corrupt of int * int
  | Delay of float
  | Trickle of int

type spec = fault list

(* ---- grammar ----------------------------------------------------------- *)

let fault_to_string = function
  | Tear k -> Printf.sprintf "tear@%d" k
  | Reset k -> Printf.sprintf "reset@%d" k
  | Corrupt (k, 255) -> Printf.sprintf "corrupt@%d" k
  | Corrupt (k, m) -> Printf.sprintf "corrupt@%d:%d" k m
  | Delay s -> Printf.sprintf "delay:%g" (s *. 1000.)
  | Trickle n -> Printf.sprintf "trickle:%d" n

let to_string = function
  | [] -> "none"
  | spec -> String.concat "," (List.map fault_to_string spec)

let offset_arg name v =
  match int_of_string_opt v with
  | Some k when k >= 0 -> Ok k
  | _ ->
      Error
        (Printf.sprintf "%s: byte offset must be a non-negative integer, got %S"
           name v)

let fault_of_token tok =
  match String.index_opt tok '@' with
  | Some i -> (
      let name = String.sub tok 0 i in
      let arg = String.sub tok (i + 1) (String.length tok - i - 1) in
      match name with
      | "tear" -> Result.map (fun k -> Tear k) (offset_arg "tear" arg)
      | "reset" -> Result.map (fun k -> Reset k) (offset_arg "reset" arg)
      | "corrupt" -> (
          let off, mask =
            match String.index_opt arg ':' with
            | None -> (arg, "255")
            | Some j ->
                ( String.sub arg 0 j,
                  String.sub arg (j + 1) (String.length arg - j - 1) )
          in
          match offset_arg "corrupt" off with
          | Error _ as e -> e
          | Ok k -> (
              match int_of_string_opt mask with
              | Some m when m >= 1 && m <= 255 -> Ok (Corrupt (k, m))
              | _ ->
                  Error
                    (Printf.sprintf "corrupt: mask must be in 1..255, got %S"
                       mask)))
      | _ -> Error (Printf.sprintf "unknown fault %S" name))
  | None -> (
      match String.index_opt tok ':' with
      | Some i -> (
          let name = String.sub tok 0 i in
          let arg = String.sub tok (i + 1) (String.length tok - i - 1) in
          match name with
          | "delay" -> (
              match float_of_string_opt arg with
              | Some ms when ms >= 0. && Float.is_finite ms ->
                  Ok (Delay (ms /. 1000.))
              | _ ->
                  Error
                    (Printf.sprintf
                       "delay: milliseconds must be non-negative, got %S" arg))
          | "trickle" -> (
              match int_of_string_opt arg with
              | Some n when n >= 1 -> Ok (Trickle n)
              | _ ->
                  Error
                    (Printf.sprintf
                       "trickle: chunk size must be a positive integer, got %S"
                       arg))
          | _ -> Error (Printf.sprintf "unknown fault %S" name))
      | None -> Error (Printf.sprintf "unknown fault %S (try tear@K, reset@K, corrupt@K:MASK, delay:MS, trickle:N or none)" tok))

let of_string s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | tok :: rest -> (
          match fault_of_token (String.trim tok) with
          | Ok f -> go (f :: acc) rest
          | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' s)

(* Seed -> spec. Offsets are sized to the serve protocol's small streams
   (a text batch is tens of bytes, a binary one a few hundred), so most
   derived faults actually land inside the stream they target. *)
let random ~seed =
  let rng = Rng.create seed in
  let fault () =
    match Rng.int rng 6 with
    | 0 -> Tear (Rng.int rng 160)
    | 1 -> Reset (Rng.int rng 400)
    | 2 | 5 -> Corrupt (Rng.int rng 120, 1 + Rng.int rng 255)
    | 3 -> Delay (float_of_int (Rng.int rng 20) /. 1000.)
    | _ -> Trickle (1 + Rng.int rng 7)
  in
  let n = 1 + Rng.int rng 2 in
  (* explicit recursion: List.init does not promise an evaluation order,
     and the rng draws must happen in a fixed one *)
  let rec build acc k = if k = 0 then List.rev acc else build (fault () :: acc) (k - 1) in
  build [] n

(* ---- proxy ------------------------------------------------------------- *)

let mcounter name = Metrics.incr (Metrics.counter name)

type proxy = {
  sock : Unix.file_descr;
  port : int;
  stopped : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  conns : (int, Unix.file_descr * Unix.file_descr) Hashtbl.t;
  cmutex : Mutex.t;
  conn_ids : int Atomic.t;
  spec : spec;
  target : Unix.sockaddr;
}

let listen p = Server.Tcp p.port

let addr_of_target = function
  | Server.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
  | Server.Unix_sock path -> Unix.ADDR_UNIX path

let shutdown_quiet fd how = try Unix.shutdown fd how with Unix.Unix_error _ -> ()
let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec write_all fd b pos len =
  if len > 0 then
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)

(* Client -> server direction: Delay, Corrupt, Trickle, Tear. After a tear
   the server side is half-closed (it sees a mid-stream EOF) but the client
   side keeps draining so the client's own writes never block. *)
let pump_request ~spec ~src ~dst =
  let corrupts =
    List.filter_map (function Corrupt (k, m) -> Some (k, m) | _ -> None) spec
  in
  let tear =
    List.fold_left
      (fun acc -> function Tear k -> Some (match acc with Some a -> min a k | None -> k) | _ -> acc)
      None spec
  in
  let delay =
    List.fold_left (fun acc -> function Delay s -> acc +. s | _ -> acc) 0. spec
  in
  let chunk =
    List.fold_left
      (fun acc -> function Trickle n -> min acc n | _ -> acc)
      4096 spec
  in
  let buf = Bytes.create 4096 in
  let off = ref 0 in
  let torn = ref false in
  if delay > 0. then Unix.sleepf delay;
  let forward n =
    List.iter
      (fun (k, mask) ->
        if k >= !off && k < !off + n then begin
          let i = k - !off in
          Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor mask));
          mcounter "chaos.corrupted"
        end)
      corrupts;
    let keep =
      match tear with Some t when !off + n >= t -> max 0 (t - !off) | _ -> n
    in
    (try
       let pos = ref 0 in
       while !pos < keep do
         let c = min chunk (keep - !pos) in
         write_all dst buf !pos c;
         if chunk < 4096 then Thread.yield ();
         pos := !pos + c
       done
     with Unix.Unix_error _ -> torn := true);
    off := !off + n;
    match tear with
    | Some t when !off >= t && not !torn ->
        torn := true;
        mcounter "chaos.torn";
        shutdown_quiet dst Unix.SHUTDOWN_SEND
    | _ -> ()
  in
  let rec loop () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 -> if not !torn then shutdown_quiet dst Unix.SHUTDOWN_SEND
    | exception Unix.Unix_error _ ->
        if not !torn then shutdown_quiet dst Unix.SHUTDOWN_SEND
    | n ->
        forward n;
        if !torn then drain () else loop ()
  and drain () =
    (* discard the rest of the client's bytes after a tear *)
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 -> ()
    | exception Unix.Unix_error _ -> ()
    | _ -> drain ()
  in
  loop ()

(* Server -> client direction: Reset. At the reset offset both sockets are
   shut down in both directions, so the client observes a truncated
   response and the server a vanished peer — the mid-write failure mode a
   crash-only server must confine to that one connection. *)
let pump_response ~spec ~src ~dst =
  let reset =
    List.fold_left
      (fun acc -> function Reset k -> Some (match acc with Some a -> min a k | None -> k) | _ -> acc)
      None spec
  in
  let buf = Bytes.create 4096 in
  let off = ref 0 in
  let rec loop () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 -> shutdown_quiet dst Unix.SHUTDOWN_SEND
    | exception Unix.Unix_error _ -> shutdown_quiet dst Unix.SHUTDOWN_SEND
    | n -> (
        let keep =
          match reset with
          | Some r when !off + n >= r -> max 0 (r - !off)
          | _ -> n
        in
        (try write_all dst buf 0 keep with Unix.Unix_error _ -> ());
        off := !off + n;
        match reset with
        | Some r when !off >= r ->
            mcounter "chaos.reset";
            shutdown_quiet src Unix.SHUTDOWN_ALL;
            shutdown_quiet dst Unix.SHUTDOWN_ALL
        | _ -> loop ())
  in
  loop ()

let handle_conn p client_fd =
  match Unix.socket (Unix.domain_of_sockaddr p.target) Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> close_quiet client_fd
  | server_fd -> (
      match Unix.connect server_fd p.target with
      | exception Unix.Unix_error _ ->
          close_quiet server_fd;
          close_quiet client_fd
      | () ->
          mcounter "chaos.connections";
          let id = Atomic.fetch_and_add p.conn_ids 1 in
          Mutex.protect p.cmutex (fun () ->
              Hashtbl.replace p.conns id (client_fd, server_fd));
          let req =
            Thread.create
              (fun () -> pump_request ~spec:p.spec ~src:client_fd ~dst:server_fd)
              ()
          in
          pump_response ~spec:p.spec ~src:server_fd ~dst:client_fd;
          Thread.join req;
          Mutex.protect p.cmutex (fun () -> Hashtbl.remove p.conns id);
          close_quiet client_fd;
          close_quiet server_fd)

let rec accept_loop p =
  if not (Atomic.get p.stopped) then begin
    (match Unix.select [ p.sock ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept p.sock with
        | fd, _ -> ignore (Thread.create (handle_conn p) fd)
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ());
    accept_loop p
  end

let start ~target spec =
  (* a peer vanishing mid-write must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  try
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    Unix.listen sock 16;
    let port =
      match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> 0
    in
    let p =
      {
        sock;
        port;
        stopped = Atomic.make false;
        accept_thread = None;
        conns = Hashtbl.create 8;
        cmutex = Mutex.create ();
        conn_ids = Atomic.make 0;
        spec;
        target = addr_of_target target;
      }
    in
    p.accept_thread <- Some (Thread.create accept_loop p);
    Ok p
  with Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "chaos proxy cannot listen: %s" (Unix.error_message e))

let stop p =
  if not (Atomic.exchange p.stopped true) then begin
    (match p.accept_thread with Some t -> Thread.join t | None -> ());
    close_quiet p.sock;
    (* nudge live pumps loose; their own threads close the descriptors *)
    Mutex.protect p.cmutex (fun () ->
        Hashtbl.iter
          (fun _ (a, b) ->
            shutdown_quiet a Unix.SHUTDOWN_ALL;
            shutdown_quiet b Unix.SHUTDOWN_ALL)
          p.conns)
  end

(* ---- soak -------------------------------------------------------------- *)

type report = {
  runs : int;
  completed : int;
  mismatched : int;
  structured : int;
  torn : int;
  alive : bool;
  leaked : int;
}

let default_lines =
  [ "ping"; "solve family=montage n=20 seed=7 mtbf=500"; "ping" ]

(* Byte spans of each request in the outgoing stream, so the soak knows
   which requests a given fault schedule provably did not touch. Text-mode
   ids are the daemon's 1-based line counter; binary ids are assigned the
   same way by the client, so span ids line up with reply ids in both
   modes. *)
let request_spans ~binary lines =
  let rec go i off acc = function
    | [] -> List.rev acc
    | line :: rest ->
        let rid = Int64.of_int (i + 1) in
        let len =
          if binary then
            match Pr.request_of_line line with
            | Ok req ->
                String.length (Codec.frame (Codec.encode_request ~id:rid req))
            | Error _ -> 0 (* rejected locally, never hits the wire *)
          else String.length line + 1
        in
        go (i + 1) (off + len) ((rid, off, off + len) :: acc) rest
  in
  go 0 0 [] lines

(* Ids whose request bytes lie wholly before every damage point of the
   spec. Damage at offset K can garble framing (or, in text mode, inject a
   newline) for everything at or after K, so only the prefix before the
   first tear/corrupt is held to byte-identity. *)
let untouched_ids spans spec =
  let first_damage =
    List.fold_left
      (fun acc -> function
        | Tear k | Corrupt (k, _) -> min acc k
        | Reset _ | Delay _ | Trickle _ -> acc)
      max_int spec
  in
  List.filter_map
    (fun (rid, _, stop) -> if stop <= first_damage then Some rid else None)
    spans

type outcome = Completed | Mismatched | Structured | Torn

let classify ~reference ~safe replies =
  if replies = reference then Completed
  else
    let mismatch =
      List.exists
        (fun (r : Client.reply) ->
          List.mem r.rid safe
          && (match r.body with
             | Ok b ->
                 List.exists
                   (fun (q : Client.reply) ->
                     q.rid = r.rid
                     && match q.body with Ok b' -> b' <> b | Error _ -> false)
                   reference
             | Error _ -> false))
        replies
    in
    if mismatch then Mismatched
    else if List.length replies < List.length reference then Torn
    else Structured

let direct_exchange ?recv_timeout ~binary target lines =
  match Client.connect target with
  | Error _ -> None
  | Ok fd ->
      (match recv_timeout with
      | Some t -> (
          try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t
          with Unix.Unix_error _ | Invalid_argument _ -> ())
      | None -> ());
      let r = try Some (Client.exchange ~binary fd lines) with _ -> None in
      close_quiet fd;
      r

let run_one ~target ~recv_timeout ~binary ~lines ~reference ~safe spec =
  match start ~target spec with
  | Error _ -> Torn
  | Ok p ->
      let outcome =
        match Client.connect ~retry:2. (listen p) with
        | Error _ -> Torn
        | Ok fd ->
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_timeout
             with Unix.Unix_error _ | Invalid_argument _ -> ());
            let res = try Ok (Client.exchange ~binary fd lines) with e -> Error e in
            close_quiet fd;
            (match res with
            | Error _ -> Torn
            | Ok replies -> classify ~reference ~safe replies)
      in
      stop p;
      outcome

let parse_outstanding lines =
  List.fold_left
    (fun acc line ->
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | [ "cache.outstanding"; v ] -> (
          match int_of_string_opt v with Some n -> n | None -> acc)
      | _ -> acc)
    0 lines

let soak ?(lines = default_lines) ?(recv_timeout = 10.) ?spec ~target ~seeds ()
    =
  let reference_for binary = direct_exchange ~binary target lines in
  let text_ref = reference_for false and bin_ref = reference_for true in
  let counts = Hashtbl.create 4 in
  let bump o = Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)) in
  let runs = ref 0 in
  List.iter
    (fun seed ->
      let binary = seed land 1 = 1 in
      match if binary then bin_ref else text_ref with
      | None -> ()
      | Some reference ->
          incr runs;
          let spec = match spec with Some s -> s | None -> random ~seed in
          let safe = untouched_ids (request_spans ~binary lines) spec in
          bump (run_one ~target ~recv_timeout ~binary ~lines ~reference ~safe spec))
    seeds;
  let get o = Option.value ~default:0 (Hashtbl.find_opt counts o) in
  let alive, leaked =
    match direct_exchange ~recv_timeout ~binary:false target [ "ping"; "stats" ] with
    | None -> (false, 0)
    | Some replies ->
        let alive =
          List.exists
            (fun (r : Client.reply) -> r.body = Ok [ "pong" ])
            replies
        in
        let leaked =
          List.fold_left
            (fun acc (r : Client.reply) ->
              match r.body with
              | Ok body -> max acc (parse_outstanding body)
              | Error _ -> acc)
            0 replies
        in
        (alive, leaked)
  in
  {
    runs = !runs;
    completed = get Completed;
    mismatched = get Mismatched;
    structured = get Structured;
    torn = get Torn;
    alive;
    leaked;
  }
