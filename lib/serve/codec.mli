(** Binary wire format of [wfc serve].

    A frame is a 4-byte big-endian payload length followed by the payload,
    capped at {!default_max_frame}. A payload is a version byte, an 8-byte
    request id (chosen by the client, echoed on the response) and a tagged
    body. Floats travel as IEEE bits, so values round-trip exactly.

    Connections are sniffed by their first byte: payload lengths stay far
    below [2^24], so a binary frame always begins with [0x00], while every
    text command begins with a letter.

    Decoding NEVER raises: arbitrary bytes produce [Error _]. Lengths and
    counts are validated against the bytes actually remaining before any
    allocation, and decoded payloads must be consumed exactly (trailing
    bytes are an error), which is what makes encode/decode a bijection on
    well-formed values. *)

val version : int
val default_max_frame : int  (** 16 MiB *)

val encode_request : id:int64 -> Protocol.request -> string
(** The payload (unframed). *)

val encode_response : id:int64 -> Protocol.response -> string

val decode_request : string -> (int64 * Protocol.request, string) result
val decode_response : string -> (int64 * Protocol.response, string) result

val frame : string -> string
(** Prepend the 4-byte length header. *)

val read_frame :
  ?max_frame:int ->
  (bytes -> int -> int -> int) ->
  (string option, string) result
(** [read_frame read] pulls one frame through [read buf off len] (the
    [Unix.read] contract; 0 = EOF). [Ok None] is a clean EOF at a frame
    boundary; truncation mid-frame, oversized frames and reader exceptions
    are [Error]s. *)

val reader_of_string : string -> bytes -> int -> int -> int
(** A [read] function over an in-memory string — the fuzz harness feeds
    arbitrary bytes through this. *)
