(** Bounded LRU of warm evaluation engines, keyed by
    {!Wfc_core.Engine_key}. Thread-safe.

    The cache uses {e checkout} semantics: {!take} removes the entry it
    returns and the caller {!put}s the engine back once done. Engine
    handles are mutable, so concurrent solves for the same key must never
    share one — a concurrent second taker misses and builds cold, and the
    later check-in wins the slot. [put] inserts at the MRU position;
    when the cache is over capacity the LRU tail is evicted.

    A capacity of 0 disables the cache: every [take] misses and [put] is a
    no-op. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  puts : int;
      (** check-ins recorded (capacity > 0 only) — the leak pin: at rest,
          every cacheable checkout must have been followed by a [put], so
          [hits <= puts] whenever no engine is currently checked out *)
  size : int;  (** entries currently stored (checked-out engines excluded) *)
  capacity : int;
}

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 0]. *)

val capacity : t -> int

val take : t -> Wfc_core.Engine_key.t -> Wfc_core.Eval_engine.handle option
(** Checkout: removes and returns the cached engine for this key, counting
    a hit, or counts a miss and returns [None]. *)

val put : t -> Wfc_core.Engine_key.t -> Wfc_core.Eval_engine.handle -> unit
(** Check-in at the MRU position. Replaces any entry with the same key;
    evicts from the LRU tail beyond capacity. *)

val keys : t -> Wfc_core.Engine_key.t list
(** Stored keys, MRU first (the eviction order is the reverse). *)

val size : t -> int
val stats : t -> stats
