(** The scheduling service behind [wfc serve].

    {!handle} is a pure in-process dispatcher (what unit tests and the
    bench drive directly); {!serve} wraps it in a socket loop with a
    persistent {!Wfc_platform.Domain_pool.Pool} of worker domains, a
    bounded admission queue and the two wire modes of {!Codec} (binary,
    sniffed by a [0x00] first byte) and {!Protocol} (line-oriented text).

    The serving regression contract: responses are byte-identical with the
    warm-engine cache on or off, across evaluation backends, and across
    worker/domain counts. Deadlines therefore map to {e deterministic}
    solver budgets (node counts at a fixed calibration rate) rather than
    wall-clock aborts, and everything nondeterministic — latency
    histograms, uptime, hit rates — is reachable only through the [Stats]
    endpoint. *)

type config = {
  cache_size : int;
      (** warm evaluation engines kept in the LRU; 0 disables the cache *)
  queue_depth : int;
      (** admission bound on outstanding (queued + running) compute jobs;
          beyond it requests get a structured [busy] error *)
  workers : int;  (** worker domains draining the queue *)
  domains : int;
      (** parallelism handed to corpus sweeps (never affects result bytes) *)
  max_frame : int;  (** binary-frame size cap *)
  exact_max_n : int;
      (** deadline tiering: instances larger than this never go exact *)
  nodes_per_second : float;
      (** calibration rate turning deadline seconds into a
          branch-and-bound node budget *)
  timeout : float option;
      (** per-request wall-clock watchdog (seconds): compute requests
          exceeding it are cooperatively cancelled mid-solve and answer a
          structured [timeout] error ([None] disables, the default).
          Distinct from the deterministic [deadline] tiering — the
          watchdog is the abort-of-last-resort for runaway jobs; its
          [timeout] message quotes the budget (never the elapsed time) so
          even cancelled responses are byte-deterministic. Non-cancelled
          responses are bit-for-bit unaffected by the watchdog. *)
}

val default_config : config
(** cache 32, depth 64, 2 workers, 1 domain, 16 MiB frames,
    [exact_max_n = 24], 20k nodes/s, no watchdog. *)

type t

val create : ?config:config -> unit -> t

val handle :
  ?cancel:Wfc_platform.Cancel.t -> t -> Protocol.request -> Protocol.response
(** Validate, dispatch, and record per-endpoint stats. Never raises: an
    escaping exception becomes an [internal] error response, and a
    watchdog cancellation a [timeout] one. The deadline
    mapping: budget [= deadline * nodes_per_second] nodes; at least 500
    nodes and at most [exact_max_n] tasks runs the budgeted
    {!Wfc_resilience.Solver_driver} (tier [exact], degrading itself);
    at least 100 nodes hill-climbs the heuristic winner (tier
    [local-search]); below that, the heuristic sweep alone (tier
    [heuristic], also the no-deadline default).

    [cancel] overrides the watchdog token for this request (tests hand in
    pre-cancelled tokens); without it, a compute request is armed with a
    fresh [config.timeout]-budget token, control-plane requests with
    {!Wfc_platform.Cancel.never}. *)

val cache_stats : t -> Engine_cache.stats

val engines_outstanding : t -> int
(** Warm engines currently checked out of the cache (the [cache.outstanding]
    stats row). 0 whenever no request is mid-solve; a non-zero value at
    rest is a checkout leak. *)

val stopping : t -> bool
(** Whether a [Shutdown] request has been dispatched. *)

type listen = Tcp of int | Unix_sock of string
(** TCP binds 127.0.0.1; port 0 picks a free port. The Unix-socket path
    must not already exist and is removed on exit. *)

val serve :
  ?config:config -> ?ready:(string -> unit) -> listen -> (unit, string) result
(** Run the daemon until a [Shutdown] request. [ready] is called once with
    the bound address ("127.0.0.1:PORT" or the socket path) after [listen]
    succeeds. Admitted jobs are drained before returning; [Error] only on
    bind failures. Ping/Stats/Shutdown answer inline from connection
    reader threads (the control plane stays responsive under load);
    everything else goes through the bounded pool. *)
