(* Request/response vocabulary of the scheduling service, shared by the
   binary codec, the line-oriented text mode and the in-process dispatcher.

   The types carry no invariants beyond well-formedness of their OCaml
   values: the codec decodes whatever arrives and {!validate} is the single
   semantic gate both transports go through, so a nonsense parameter yields
   the same structured [bad-request] whether it came over the wire or from
   a text line. *)

module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module Lin = Wfc_dag.Linearize
module H = Wfc_core.Heuristics
module E = Wfc_core.Eval_engine

type workflow_spec =
  | Generated of { family : P.family; n : int; seed : int; cost : CM.t }
  | Inline of { name : string; text : string; cost : CM.t }
      (** a workflow file shipped in the request (any sniffable format) *)
  | File of { path : string; cost : CM.t }  (** server-side path *)

type solve_params = {
  workflow : workflow_spec;
  mtbf : float;
  downtime : float;
  lin : Lin.strategy;
  ckpt : H.ckpt_strategy;
  grid : int;  (* 0 = exhaustive checkpoint-count search *)
  backend : E.backend;
  deadline : float option;
      (* compute budget in seconds, mapped deterministically onto the
         solver-driver tiers (see Server) *)
}

type request =
  | Ping
  | Solve of solve_params
  | Simulate of { params : solve_params; runs : int; mcseed : int }
  | Adapt of {
      params : solve_params;
      true_mtbf : float;
      traces : int;
      mcseed : int;
    }
  | Corpus of {
      dir : string;
      ratios : float list;
      grid : int;
      backend : E.backend;
    }
  | Stats
  | Sleep of float  (* seconds; a test and bench aid *)
  | Shutdown

type error_code =
  | Bad_request
  | Busy
  | Too_large
  | Internal
  | Stopping
  | Timeout

let error_code_name = function
  | Bad_request -> "bad-request"
  | Busy -> "busy"
  | Too_large -> "too-large"
  | Internal -> "internal"
  | Stopping -> "stopping"
  | Timeout -> "timeout"

let error_code_of_string = function
  | "bad-request" -> Some Bad_request
  | "busy" -> Some Busy
  | "too-large" -> Some Too_large
  | "internal" -> Some Internal
  | "stopping" -> Some Stopping
  | "timeout" -> Some Timeout
  | _ -> None

(* ---- semantic validation (one gate for both transports) --------------- *)

let positive what v =
  if v > 0. && Float.is_finite v then Ok ()
  else Error (Printf.sprintf "%s must be positive (got '%g')" what v)

let nonneg what v =
  if v >= 0. && Float.is_finite v then Ok ()
  else Error (Printf.sprintf "%s must be non-negative (got '%g')" what v)

let ( let* ) = Result.bind

let max_inline_bytes = 8 * 1024 * 1024

let validate_spec = function
  | Generated { n; _ } ->
      if n < 1 then Error "task count must be at least 1"
      else if n > 100_000 then Error "task count must be at most 100000"
      else Ok ()
  | Inline { text; _ } ->
      if String.length text > max_inline_bytes then
        Error "inline workflow too large (8 MiB cap)"
      else Ok ()
  | File { path; _ } ->
      if path = "" then Error "workflow file path must not be empty" else Ok ()

let validate_solve p =
  let* () = validate_spec p.workflow in
  let* () = positive "MTBF" p.mtbf in
  let* () = nonneg "downtime" p.downtime in
  let* () =
    if p.grid >= 0 then Ok () else Error "grid must be non-negative"
  in
  match p.deadline with None -> Ok () | Some d -> positive "deadline" d

let validate = function
  | Ping | Stats | Shutdown -> Ok ()
  | Solve p -> validate_solve p
  | Simulate { params; runs; _ } ->
      let* () = validate_solve params in
      if runs < 1 then Error "run count must be at least 1"
      else if runs > 10_000_000 then Error "run count must be at most 10000000"
      else Ok ()
  | Adapt { params; true_mtbf; traces; _ } ->
      let* () = validate_solve params in
      let* () = positive "true MTBF" true_mtbf in
      if traces < 1 then Error "trace count must be at least 1"
      else if traces > 10_000 then Error "trace count must be at most 10000"
      else Ok ()
  | Corpus { dir; ratios; grid; _ } ->
      let* () = if dir = "" then Error "corpus dir must not be empty" else Ok () in
      let* () =
        if ratios = [] then Error "corpus needs at least one MTBF ratio"
        else Ok ()
      in
      let* () =
        List.fold_left
          (fun acc r ->
            let* () = acc in
            positive "MTBF ratio" r)
          (Ok ()) ratios
      in
      if grid >= 0 then Ok () else Error "grid must be non-negative"
  | Sleep s ->
      if s >= 0. && s <= 10. then Ok ()
      else Error (Printf.sprintf "sleep must be in [0, 10] s (got '%g')" s)

(* ---- text mode --------------------------------------------------------- *)

(* One request per line, `cmd key=value ...`; the response block is written
   by the server as an `ok ID` / `error ID CODE MESSAGE` header, the body
   lines of {!render_response}, and a lone `.` terminator. *)

let spec_source = function
  | Generated { family; n; _ } ->
      Printf.sprintf "%s-%d" (P.family_name family) n
  | Inline { name; _ } -> name
  | File { path; _ } -> path

let default_solve =
  {
    workflow =
      Generated
        { family = P.Montage; n = 30; seed = 42; cost = CM.Proportional 0.1 };
    mtbf = 1000.;
    downtime = 0.;
    lin = Lin.Depth_first;
    ckpt = H.Ckpt_weight;
    grid = 0;
    backend = E.Incremental;
    deadline = None;
  }

let kvs_of_tokens tokens =
  List.fold_left
    (fun acc tok ->
      let* acc = acc in
      match String.index_opt tok '=' with
      | Some i when i > 0 ->
          Ok
            ((String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1))
            :: acc)
      | _ -> Error (Printf.sprintf "expected key=value, got %S" tok))
    (Ok []) tokens
  |> Result.map List.rev

let parse_float what v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "invalid %s %S" what v)

let parse_int what v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "invalid %s %S" what v)

let parse_with what of_string v =
  match of_string v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "unknown %s %S" what v)

let parse_ratios v =
  List.fold_left
    (fun acc part ->
      let* acc = acc in
      let* r = parse_float "MTBF ratio" (String.trim part) in
      Ok (r :: acc))
    (Ok [])
    (String.split_on_char ',' v)
  |> Result.map List.rev

(* The generator keys and [file=] are folded into the workflow spec last so
   their order on the line does not matter. *)
type spec_acc = {
  family : P.family;
  sn : int;
  sseed : int;
  scost : CM.t;
  file : string option;
}

let solve_of_kvs kvs =
  let spec =
    { family = P.Montage; sn = 30; sseed = 42;
      scost = CM.Proportional 0.1; file = None }
  in
  let* p, spec, rest =
    List.fold_left
      (fun acc (k, v) ->
        let* p, spec, rest = acc in
        match k with
        | "family" ->
            let* f = parse_with "workflow family" P.family_of_string v in
            Ok (p, { spec with family = f }, rest)
        | "n" ->
            let* n = parse_int "task count" v in
            Ok (p, { spec with sn = n }, rest)
        | "seed" ->
            let* s = parse_int "seed" v in
            Ok (p, { spec with sseed = s }, rest)
        | "cost" ->
            let* c = parse_with "cost model" CM.of_string v in
            Ok (p, { spec with scost = c }, rest)
        | "file" -> Ok (p, { spec with file = Some v }, rest)
        | "mtbf" ->
            let* f = parse_float "MTBF" v in
            Ok ({ p with mtbf = f }, spec, rest)
        | "downtime" ->
            let* f = parse_float "downtime" v in
            Ok ({ p with downtime = f }, spec, rest)
        | "lin" ->
            let* l = parse_with "linearization" Lin.strategy_of_string v in
            Ok ({ p with lin = l }, spec, rest)
        | "ckpt" ->
            let* c =
              parse_with "checkpoint strategy" H.ckpt_strategy_of_string v
            in
            Ok ({ p with ckpt = c }, spec, rest)
        | "grid" ->
            let* g = parse_int "grid" v in
            Ok ({ p with grid = g }, spec, rest)
        | "engine" ->
            let* b = parse_with "engine" E.backend_of_string v in
            Ok ({ p with backend = b }, spec, rest)
        | "deadline" ->
            let* d = parse_float "deadline" v in
            Ok ({ p with deadline = Some d }, spec, rest)
        | _ -> Ok (p, spec, (k, v) :: rest))
      (Ok (default_solve, spec, []))
      kvs
  in
  let workflow =
    match spec.file with
    | Some path -> File { path; cost = spec.scost }
    | None ->
        Generated
          { family = spec.family; n = spec.sn; seed = spec.sseed;
            cost = spec.scost }
  in
  Ok ({ p with workflow }, List.rev rest)

let no_extras cmd rest k =
  match rest with
  | [] -> k ()
  | (key, _) :: _ ->
      Error (Printf.sprintf "unknown %s parameter %S" cmd key)

let request_of_line line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Error "empty request"
  | cmd :: args -> (
      let* kvs = kvs_of_tokens args in
      match cmd with
      | "ping" -> no_extras cmd kvs (fun () -> Ok Ping)
      | "stats" -> no_extras cmd kvs (fun () -> Ok Stats)
      | "shutdown" -> no_extras cmd kvs (fun () -> Ok Shutdown)
      | "sleep" ->
          let* ms, rest =
            List.fold_left
              (fun acc (k, v) ->
                let* ms, rest = acc in
                match k with
                | "ms" ->
                    let* f = parse_float "sleep duration" v in
                    Ok (f, rest)
                | _ -> Ok (ms, (k, v) :: rest))
              (Ok (0., [])) kvs
          in
          no_extras cmd rest (fun () -> Ok (Sleep (ms /. 1000.)))
      | "solve" ->
          let* p, rest = solve_of_kvs kvs in
          no_extras cmd rest (fun () -> Ok (Solve p))
      | "simulate" ->
          let* p, rest = solve_of_kvs kvs in
          let* (runs, mcseed), rest =
            List.fold_left
              (fun acc (k, v) ->
                let* (runs, mcseed), rest = acc in
                match k with
                | "runs" ->
                    let* r = parse_int "run count" v in
                    Ok ((r, mcseed), rest)
                | "mcseed" ->
                    let* s = parse_int "mcseed" v in
                    Ok ((runs, s), rest)
                | _ -> Ok ((runs, mcseed), (k, v) :: rest))
              (Ok ((1000, 42), []))
              rest
          in
          no_extras cmd rest (fun () ->
              Ok (Simulate { params = p; runs; mcseed }))
      | "adapt" ->
          let* p, rest = solve_of_kvs kvs in
          let* (true_mtbf, traces, mcseed), rest =
            List.fold_left
              (fun acc (k, v) ->
                let* (tm, tr, ms), rest = acc in
                match k with
                | "true-mtbf" ->
                    let* f = parse_float "true MTBF" v in
                    Ok ((Some f, tr, ms), rest)
                | "traces" ->
                    let* t = parse_int "trace count" v in
                    Ok ((tm, t, ms), rest)
                | "mcseed" ->
                    let* s = parse_int "mcseed" v in
                    Ok ((tm, tr, s), rest)
                | _ -> Ok ((tm, tr, ms), (k, v) :: rest))
              (Ok ((None, 20, 42), []))
              rest
          in
          no_extras cmd rest (fun () ->
              Ok
                (Adapt
                   {
                     params = p;
                     true_mtbf = Option.value true_mtbf ~default:p.mtbf;
                     traces;
                     mcseed;
                   }))
      | "corpus" ->
          let* (dir, ratios, grid, backend), rest =
            List.fold_left
              (fun acc (k, v) ->
                let* (dir, ratios, grid, backend), rest = acc in
                match k with
                | "dir" -> Ok ((Some v, ratios, grid, backend), rest)
                | "ratios" ->
                    let* rs = parse_ratios v in
                    Ok ((dir, rs, grid, backend), rest)
                | "grid" ->
                    let* g = parse_int "grid" v in
                    Ok ((dir, ratios, g, backend), rest)
                | "engine" ->
                    let* b = parse_with "engine" E.backend_of_string v in
                    Ok ((dir, ratios, grid, b), rest)
                | _ -> Ok ((dir, ratios, grid, backend), (k, v) :: rest))
              (Ok ((None, [ 0.1; 1.; 10. ], 16, E.Incremental), []))
              kvs
          in
          no_extras cmd rest (fun () ->
              match dir with
              | None -> Error "corpus needs dir=PATH"
              | Some dir -> Ok (Corpus { dir; ratios; grid; backend }))
      | _ ->
          Error
            (Printf.sprintf
               "unknown command %S (ping, solve, simulate, adapt, corpus, \
                stats, sleep, shutdown)"
               cmd))

type solved = {
  source : string;
  n_tasks : int;
  heuristic : string;
  tier : string;  (* Solver_driver tier that answered *)
  makespan : float;
  ratio : float;  (* makespan / fail-free time *)
  n_ckpt : int;
  ckpt_tasks : int list;  (* checkpointed task ids, execution order *)
  evaluations : int;
}

type simulated = {
  solved : solved;
  runs : int;
  sim_mean : float;
  ci_lo : float;
  ci_hi : float;
  failures_mean : float;
}

type adapted = {
  asource : string;
  winner : string;
  policies : (string * float * float * float) list;
      (* policy, mean, cvar@0.95, worst *)
}

type response =
  | Pong
  | Solved of solved
  | Simulated of simulated
  | Adapted of adapted
  | Corpus_report of { instances : int; scenarios : int; text : string }
  | Stats_report of (string * string) list
  | Slept of float
  | Bye
  | Error of { code : error_code; message : string }

(* ---- rendering --------------------------------------------------------- *)

let solved_lines s =
  [
    Printf.sprintf "solve %s (%d tasks): %s, tier %s" s.source s.n_tasks
      s.heuristic s.tier;
    Printf.sprintf "  E[makespan] = %.2f s (ratio %.4f)" s.makespan s.ratio;
    Printf.sprintf "  checkpoints = %d (evaluations %d)" s.n_ckpt
      s.evaluations;
  ]

let render_response = function
  | Pong -> [ "pong" ]
  | Solved s -> solved_lines s
  | Simulated r ->
      solved_lines r.solved
      @ [
          Printf.sprintf "  simulated mean = %.2f s (95%% CI [%.2f, %.2f], %d runs)"
            r.sim_mean r.ci_lo r.ci_hi r.runs;
          Printf.sprintf "  failures per run = %.2f" r.failures_mean;
        ]
  | Adapted a ->
      let table =
        Wfc_reporting.Table.create
          ~columns:[ "policy"; "mean"; "cvar@0.95"; "worst" ]
      in
      List.iter
        (fun (name, mean, cvar, worst) ->
          Wfc_reporting.Table.add_row table
            [
              name;
              Printf.sprintf "%.1f" mean;
              Printf.sprintf "%.1f" cvar;
              Printf.sprintf "%.1f" worst;
            ])
        a.policies;
      (Printf.sprintf "adapt %s: winner %s by cvar@0.95" a.asource a.winner
      :: String.split_on_char '\n' (Wfc_reporting.Table.render table))
      |> List.filter (fun l -> l <> "")
  | Corpus_report { instances; scenarios; text } ->
      Printf.sprintf "corpus: %d instances x %d scenarios" instances scenarios
      :: String.split_on_char '\n' text
  | Stats_report rows ->
      let table = Wfc_reporting.Table.create ~columns:[ "stat"; "value" ] in
      List.iter
        (fun (name, value) -> Wfc_reporting.Table.add_row table [ name; value ])
        rows;
      String.split_on_char '\n' (Wfc_reporting.Table.render table)
      |> List.filter (fun l -> l <> "")
  | Slept s -> [ Printf.sprintf "slept %g s" s ]
  | Bye -> [ "stopping" ]
  | Error { code; message } ->
      [ Printf.sprintf "error %s %s" (error_code_name code) message ]

let is_error = function Error _ -> true | _ -> false
