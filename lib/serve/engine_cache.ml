(* Bounded LRU of warm evaluation engines, keyed by Engine_key.

   Checkout semantics: [take] REMOVES the entry it returns, and the server
   [put]s the engine back after the solve. An engine handle is mutable
   state, so two workers solving the same keyed workflow concurrently must
   not share one — the second taker simply misses and builds cold, and the
   later of the two check-ins wins the cache slot. [put] re-inserts at the
   MRU position, which is what gives take/put classic LRU recency.

   The entry list is a plain MRU-first assoc list: capacities are small
   (tens to hundreds of engines, each holding O(n) arrays), so an O(cap)
   scan is cheaper to verify than an intrusive doubly-linked list and is
   nowhere near any hot path. *)

module Key = Wfc_core.Engine_key

type entry = Key.t * Wfc_core.Eval_engine.handle

type t = {
  mutex : Mutex.t;
  capacity : int;
  mutable entries : entry list;  (* MRU first, length <= capacity *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable puts : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  puts : int;
  size : int;
  capacity : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Engine_cache.create: negative capacity";
  {
    mutex = Mutex.create ();
    capacity;
    entries = [];
    hits = 0;
    misses = 0;
    evictions = 0;
    puts = 0;
  }

let capacity (t : t) = t.capacity

let take (t : t) key =
  Mutex.protect t.mutex (fun () ->
      let rec split acc = function
        | [] -> None
        | ((k, h) :: rest : entry list) ->
            if Key.equal k key then begin
              t.entries <- List.rev_append acc rest;
              Some h
            end
            else split ((k, h) :: acc) rest
      in
      match split [] t.entries with
      | Some h ->
          t.hits <- t.hits + 1;
          Some h
      | None ->
          t.misses <- t.misses + 1;
          None)

let put (t : t) key handle =
  if t.capacity > 0 then
    Mutex.protect t.mutex (fun () ->
        t.puts <- t.puts + 1;
        let without = List.filter (fun (k, _) -> not (Key.equal k key)) t.entries in
        let entries = (key, handle) :: without in
        let rec trim n = function
          | [] -> []
          | kept :: rest ->
              if n < t.capacity then kept :: trim (n + 1) rest
              else begin
                t.evictions <- t.evictions + (1 + List.length rest);
                []
              end
        in
        t.entries <- trim 0 entries)

let keys (t : t) = Mutex.protect t.mutex (fun () -> List.map fst t.entries)
let size (t : t) = Mutex.protect t.mutex (fun () -> List.length t.entries)

let stats (t : t) =
  Mutex.protect t.mutex (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        puts = t.puts;
        size = List.length t.entries;
        capacity = t.capacity;
      })
